// Package repro is a production-quality Go reproduction of Ponnusamy,
// Thakur, Choudhary and Fox, "Scheduling Regular and Irregular
// Communication Patterns on the CM-5" (SC 1992).
//
// The public API lives in package repro/cm5: a typed Algorithm
// registry and the Run(Job) -> Result entry point over a deterministic
// discrete-event simulation of a CM-5 partition. The benchmark harness
// in bench_test.go regenerates every table and figure of the paper's
// evaluation, and the trace subsystem (internal/trace) records the
// real communication of the bundled CG/FFT/Euler applications and
// replays the recordings as schedulable workloads (the "apps"
// experiment family).
//
// Commands:
//
//	cmd/cmexp      regenerate the paper's tables and figures; parallel,
//	               incremental via the content-addressed result store
//	               (-store), output as text, JSON or CSV (-format)
//	cmd/cmtrace    run one algorithm with tracing: rendezvous waits,
//	               per-level/link utilization, per-step completions;
//	               -record/-replay capture a bundled application's real
//	               communication and schedule the recording
//	cmd/cmserve    experiment-as-a-service HTTP daemon over the result
//	               store (single-flight coalescing, streaming sweeps;
//	               see docs/API.md)
//	cmd/expdiff    regression verdict between two benchmark reports or
//	               result stores (CI's perf gate)
//	cmd/benchjson  topology x algorithm benchmarks as JSON
//	cmd/schedview  the paper's schedule tables for arbitrary sizes
//	cmd/meshgen    mesh and halo pattern statistics behind Table 12
//
// See README.md for the quickstart, the experiment catalogue, and the
// repository layout, and ARCHITECTURE.md for the package map.
package repro
