// Package repro is a production-quality Go reproduction of Ponnusamy,
// Thakur, Choudhary and Fox, "Scheduling Regular and Irregular
// Communication Patterns on the CM-5" (SC 1992).
//
// The public API lives in package repro/cm5. The benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation; the cmd/cmexp tool prints them as tables, fanning the
// independent simulation cells across all CPUs. See README.md for the
// quickstart, the experiment catalogue, and the repository layout.
package repro
