package repro

// BenchmarkTopology is the perf-trajectory benchmark behind `make
// bench-json`: one cell per (topology, algorithm), each iteration
// scheduling and simulating the stencil3d workload on 64 nodes over
// that interconnect. cmd/benchjson turns the output into
// BENCH_topo.json (ns/op per topology x algorithm) so CI tracks the
// generalized solver's host cost across PRs.

import (
	"fmt"
	"testing"

	"repro/cm5"
	"repro/internal/exp"
)

func BenchmarkTopology(b *testing.B) {
	const (
		n      = 64
		nbytes = 256
	)
	for _, topoName := range exp.TopologyNames {
		tp, err := cm5.NewTopology(topoName, n)
		if err != nil {
			b.Fatal(err)
		}
		p, err := cm5.WorkloadPattern("stencil3d", n, nbytes, int64(n))
		if err != nil {
			b.Fatal(err)
		}
		for _, alg := range exp.IrregularAlgs {
			b.Run(fmt.Sprintf("%s/%s", topoName, alg), func(b *testing.B) {
				a := cm5.MustAlgorithm(alg)
				total := 0.0
				for i := 0; i < b.N; i++ {
					res, err := cm5.Run(cm5.PatternJob(a, p, cm5.WithTopology(tp)))
					if err != nil {
						b.Fatal(err)
					}
					total += res.Elapsed.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}
