package repro

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark iteration simulates the full experiment once and
// reports the simulated time as the "sim_ms" metric (host ns/op measures
// simulator speed, not CM-5 time).

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/apps/fft"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
)

func reportSim(b *testing.B, totalMs float64) {
	b.Helper()
	b.ReportMetric(totalMs/float64(b.N), "sim_ms")
}

// BenchmarkFig5CompleteExchange32 regenerates Figure 5: the four
// complete-exchange algorithms on 32 nodes across message sizes.
func BenchmarkFig5CompleteExchange32(b *testing.B) {
	cfg := network.DefaultConfig()
	for _, alg := range exp.ExchangeAlgs {
		for _, size := range []int{0, 256, 1024, 2048} {
			b.Run(fmt.Sprintf("%s/%dB", alg, size), func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					d, err := sched.Exchange(alg, 32, size, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += d.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}

// BenchmarkFig6ExchangeScaling regenerates Figure 6: 0- and 256-byte
// exchanges across machine sizes.
func BenchmarkFig6ExchangeScaling(b *testing.B) {
	benchScaling(b, []int{0, 256})
}

// BenchmarkFig7ExchangeScaling512 regenerates Figure 7.
func BenchmarkFig7ExchangeScaling512(b *testing.B) {
	benchScaling(b, []int{512})
}

// BenchmarkFig8ExchangeScaling1920 regenerates Figure 8.
func BenchmarkFig8ExchangeScaling1920(b *testing.B) {
	benchScaling(b, []int{1920})
}

func benchScaling(b *testing.B, sizes []int) {
	cfg := network.DefaultConfig()
	for _, size := range sizes {
		for _, n := range []int{16, 64, 256} {
			for _, alg := range []string{"PEX", "REX", "BEX"} {
				b.Run(fmt.Sprintf("%dB/N%d/%s", size, n, alg), func(b *testing.B) {
					total := 0.0
					for i := 0; i < b.N; i++ {
						d, err := sched.Exchange(alg, n, size, cfg)
						if err != nil {
							b.Fatal(err)
						}
						total += d.Millis()
					}
					reportSim(b, total)
				})
			}
		}
	}
}

// BenchmarkTable5FFT regenerates Table 5 at benchmark-friendly scale:
// the distributed 2-D FFT on 32 nodes (256^2 and 512^2) and 256 nodes
// (256^2). cmd/cmexp table5 runs the full table.
func BenchmarkTable5FFT(b *testing.B) {
	cfg := network.DefaultConfig()
	cases := []struct{ procs, size int }{
		{32, 256}, {32, 512}, {256, 256},
	}
	for _, cse := range cases {
		input := benchInput(cse.size)
		for _, alg := range exp.ExchangeAlgs {
			b.Run(fmt.Sprintf("P%d/%dx%d/%s", cse.procs, cse.size, cse.size, alg), func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					res, err := fft.Run2D(cse.procs, input, alg, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Elapsed.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}

func benchInput(size int) [][]complex128 {
	rng := rand.New(rand.NewSource(int64(size)))
	a := make([][]complex128, size)
	for r := range a {
		a[r] = make([]complex128, size)
		for c := range a[r] {
			a[r][c] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	return a
}

// BenchmarkFig10Broadcast32 regenerates Figure 10: LIB, REB and the
// system broadcast on 32 nodes across message sizes.
func BenchmarkFig10Broadcast32(b *testing.B) {
	cfg := network.DefaultConfig()
	for _, alg := range []string{"LIB", "REB", "SYS"} {
		for _, size := range []int{0, 1024, 8192} {
			b.Run(fmt.Sprintf("%s/%dB", alg, size), func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					d, err := sched.Broadcast(alg, 32, 0, size, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += d.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}

// BenchmarkFig11BroadcastScaling regenerates Figure 11: REB versus the
// system broadcast across machine sizes.
func BenchmarkFig11BroadcastScaling(b *testing.B) {
	cfg := network.DefaultConfig()
	for _, n := range []int{32, 128, 256} {
		for _, alg := range []string{"REB", "SYS"} {
			b.Run(fmt.Sprintf("N%d/%s/2048B", n, alg), func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					d, err := sched.Broadcast(alg, n, 0, 2048, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += d.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}

// BenchmarkTable11Synthetic regenerates Table 11: the four irregular
// schedulers on synthetic patterns of varying density on 32 processors.
func BenchmarkTable11Synthetic(b *testing.B) {
	cfg := network.DefaultConfig()
	for _, density := range exp.Table11Densities {
		p := pattern.Synthetic(32, float64(density)/100, 256, int64(density*1000+256))
		for _, alg := range exp.IrregularAlgs {
			b.Run(fmt.Sprintf("%d%%/%s/256B", density, alg), func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					s, err := sched.Irregular(alg, p)
					if err != nil {
						b.Fatal(err)
					}
					d, err := sched.Run(s, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += d.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}

// BenchmarkTable12RealPatterns regenerates Table 12: the four schedulers
// on the real halo patterns (CG 16K and the Euler meshes).
func BenchmarkTable12RealPatterns(b *testing.B) {
	cfg := network.DefaultConfig()
	patterns, err := exp.RealPatterns(32)
	if err != nil {
		b.Fatal(err)
	}
	for i, prob := range exp.PaperTable12 {
		p := patterns[i]
		for _, alg := range exp.IrregularAlgs {
			b.Run(fmt.Sprintf("%s/%s", prob.Name, alg), func(b *testing.B) {
				total := 0.0
				for i := 0; i < b.N; i++ {
					s, err := sched.Irregular(alg, p)
					if err != nil {
						b.Fatal(err)
					}
					d, err := sched.Run(s, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += d.Millis()
				}
				reportSim(b, total)
			})
		}
	}
}

// BenchmarkScheduleConstruction measures schedule-building cost alone
// (the paper amortizes it over iterations; this shows it is negligible).
func BenchmarkScheduleConstruction(b *testing.B) {
	p := pattern.Synthetic(32, 0.5, 256, 9)
	for _, alg := range exp.IrregularAlgs {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Irregular(alg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5TableSweep regenerates the whole Figure 5 table through
// the experiment orchestrator, serially and with one worker per CPU.
// The parallel/serial ratio measures the orchestrator's fan-out win on
// the host (on a single-CPU machine the two are equivalent).
func BenchmarkFig5TableSweep(b *testing.B) {
	cfg := network.DefaultConfig()
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := exp.Fig5Spec(cfg)
				r := &exp.Runner{Workers: workers}
				if err := r.Run(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrchestratorOverhead measures the pure cost of pushing one
// cell through the worker pool (no simulation inside).
func BenchmarkOrchestratorOverhead(b *testing.B) {
	spec := &exp.TableSpec{Name: "bench"}
	for i := 0; i < 1000; i++ {
		spec.AddCell(fmt.Sprintf("bench/%d", i), func(ctx context.Context, _ int64, rec *exp.Rec) error { return nil })
	}
	r := exp.NewRunner(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}
