// cgsolver reproduces the paper's conjugate-gradient workload: CG on a
// 16K-vertex unstructured mesh distributed over 32 simulated CM-5 nodes,
// with the per-iteration halo exchange scheduled by each of the paper's
// four irregular algorithms (Table 12, first column).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps/cg"
	"repro/internal/mesh"
	"repro/internal/network"
)

func main() {
	const vertices, procs = 16384, 32
	m := mesh.Generate(vertices, 16384)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, m.NumVertices())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cfg := network.DefaultConfig()

	fmt.Printf("Distributed CG on a %d-vertex mesh, %d simulated nodes\n\n", m.NumVertices(), procs)
	fmt.Printf("%6s  %8s  %12s  %10s  %9s\n", "alg", "iters", "residual", "sim time", "steps/exch")
	for _, alg := range []string{"LS", "PS", "BS", "GS"} {
		res, err := cg.Solve(procs, m, b, cg.Options{Alg: alg, Tol: 1e-8, MaxIter: 400}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6s  %8d  %12.2e  %9.3f s  %9d\n",
			alg, res.Iters, res.Residual, res.Elapsed.Seconds(), res.Schedule.NumSteps())
	}
	pat, err := cg.Solve(procs, m, b, cg.Options{Alg: "GS", Tol: 1e-2, MaxIter: 1}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHalo pattern: %d messages, %.0f%% density, %.0f bytes/message average\n",
		pat.Pattern.Messages(), 100*pat.Pattern.Density(), pat.Pattern.AvgBytes())
	fmt.Println("The schedule is built once and amortized over all iterations (paper Section 4.5).")
}
