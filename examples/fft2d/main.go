// fft2d runs the paper's 2-D FFT application study (Table 5) at reduced
// scale: a 256x256 array on 16 simulated nodes, transposed with each of
// the four complete-exchange algorithms, with the result verified
// against a sequential FFT.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"repro/internal/apps/fft"
	"repro/internal/network"
)

func main() {
	const size, procs = 256, 16
	rng := rand.New(rand.NewSource(42))
	input := make([][]complex128, size)
	for r := range input {
		input[r] = make([]complex128, size)
		for c := range input[r] {
			input[r][c] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	// Sequential reference.
	ref := make([][]complex128, size)
	for r := range input {
		ref[r] = append([]complex128(nil), input[r]...)
	}
	fft.FFT2D(ref)

	cfg := network.DefaultConfig()
	fmt.Printf("2-D FFT, %dx%d array on %d simulated CM-5 nodes\n\n", size, size, procs)
	fmt.Printf("%6s  %12s  %14s  %10s\n", "alg", "sim time (s)", "bytes per pair", "max error")
	for _, alg := range []string{"LEX", "PEX", "REX", "BEX"} {
		res, err := fft.Run2D(procs, input, alg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for c := 0; c < size; c++ {
			for r := 0; r < size; r++ {
				if d := cmplx.Abs(res.Out[c][r] - ref[r][c]); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("%6s  %12.4f  %14d  %10.2e\n", alg, res.Elapsed.Seconds(), res.BytesPerPair, worst)
	}
	fmt.Println("\nThe transform travels as single-precision complex numbers, so errors")
	fmt.Println("around 1e-3 of the peak magnitude are the expected wire precision.")
}
