// eulersweep runs the distributed Euler solver on the paper's mesh-size
// sweep (545, 2K, 3K, 9K vertices — Table 12's Euler columns), comparing
// the Greedy and Linear schedulers that bracket the paper's results.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/euler"
	"repro/internal/mesh"
	"repro/internal/network"
)

func main() {
	const procs, steps = 32, 5
	cfg := network.DefaultConfig()
	init := func(p mesh.Point) euler.State {
		return euler.Freestream(1.0+0.05*p.X/40, 0.5, 0.0, 1.0)
	}
	fmt.Printf("Euler solver, %d explicit steps on %d simulated nodes\n\n", steps, procs)
	fmt.Printf("%10s  %9s  %9s  %9s  %8s\n", "mesh", "GS time", "LS time", "LS/GS", "density")
	for _, nv := range []int{545, 2048, 3072, 9216} {
		m := mesh.Generate(nv, int64(nv))
		gs, err := euler.Run(procs, m, init, euler.Options{Alg: "GS", Steps: steps}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ls, err := euler.Run(procs, m, init, euler.Options{Alg: "LS", Steps: steps}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Both schedulers must advance the flow identically.
		for v := range gs.U {
			for k := 0; k < 4; k++ {
				if gs.U[v][k] != ls.U[v][k] {
					log.Fatalf("mesh %d: GS and LS disagree at vertex %d", nv, v)
				}
			}
		}
		fmt.Printf("%10d  %7.2f ms  %7.2f ms  %8.2fx  %7.0f%%\n",
			nv, gs.Elapsed.Millis(), ls.Elapsed.Millis(),
			ls.Elapsed.Seconds()/gs.Elapsed.Seconds(), 100*gs.Pattern.Density())
	}
	fmt.Println("\nGreedy scheduling wins on every mesh because halo patterns sit well")
	fmt.Println("below 50% density — the paper's Table 12 conclusion.")
}
