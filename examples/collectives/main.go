// Collectives: every collective operation of the cm5 library run on a
// simulated 32-node CM-5, both as its natural CMMD node program and as
// a communication matrix scheduled with the paper's greedy scheduler —
// the two interchangeable forms the scenario harness compares at scale.
package main

import (
	"fmt"
	"log"

	"repro/cm5"
)

func main() {
	cfg := cm5.DefaultConfig()
	const n, nbytes = 32, 1024

	gs := cm5.MustAlgorithm("GS")
	fmt.Printf("Collectives on a simulated %d-node CM-5, %d B blocks (times in ms)\n\n", n, nbytes)
	fmt.Printf("%-10s  %10s  %12s  %6s\n", "collective", "CMMD prog", "GS schedule", "msgs")
	for _, a := range cm5.AlgorithmsOf(cm5.KindCollective) {
		direct, err := cm5.Run(cm5.NewJob(a, n, nbytes, cm5.WithConfig(cfg)))
		if err != nil {
			log.Fatal(err)
		}
		p, err := cm5.CollectivePattern(a.Name(), n, nbytes)
		if err != nil {
			log.Fatal(err)
		}
		scheduled, err := cm5.Run(cm5.PatternJob(gs, p, cm5.WithConfig(cfg)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %10.3f  %12.3f  %6d\n",
			a.Name(), direct.Elapsed.Millis(), scheduled.Elapsed.Millis(), scheduled.Messages)
	}

	// The data-carrying side of the same API: a global vector sum.
	m, err := cm5.NewMachine(n, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	elapsed, err := m.Run(func(nd *cm5.Node) {
		res := nd.AllReduceData([]float64{float64(nd.ID())}, cm5.OpSum)
		if nd.ID() == 0 {
			sum = res[0]
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallreduce of ranks 0..%d = %.0f in %.3f ms simulated\n", n-1, sum, elapsed.Millis())
	fmt.Println("\nThe rendezvous model shows through: the ring allgather and the butterfly")
	fmt.Println("allreduce pipeline perfectly, while any schedule of the same traffic pays")
	fmt.Println("the scheduler's step structure (see `cmexp collectives` for the sweep).")
}
