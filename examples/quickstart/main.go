// Quickstart: compare the paper's four complete-exchange algorithms on a
// simulated 32-node CM-5, the experiment behind Figure 5.
package main

import (
	"fmt"
	"log"

	"repro/cm5"
)

func main() {
	cfg := cm5.DefaultConfig()
	fmt.Println("Complete exchange on a simulated 32-node CM-5 (times in ms)")
	fmt.Printf("%8s  %8s  %8s  %8s  %8s\n", "bytes", "LEX", "PEX", "REX", "BEX")
	for _, size := range []int{0, 256, 1024, 2048} {
		fmt.Printf("%8d", size)
		for _, alg := range cm5.ExchangeAlgorithms() {
			d, err := cm5.CompleteExchange(alg, 32, size, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.3f", d.Millis())
		}
		fmt.Println()
	}
	fmt.Println("\nLEX collapses under CMMD's synchronous sends; BEX wins at large sizes")
	fmt.Println("by balancing local and root-crossing traffic (paper Sections 3.1-3.5).")

	// The same machinery exposes node-level programming:
	m, err := cm5.NewMachine(8, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed, err := m.Run(func(n *cm5.Node) {
		// Ring shift with the deadlock-free ordering of Figure 2.
		right, left := (n.ID()+1)%n.N(), (n.ID()+n.N()-1)%n.N()
		if n.ID()%2 == 0 {
			n.SendN(right, 0, 512)
			n.Recv(left, 0)
		} else {
			n.Recv(left, 0)
			n.SendN(right, 0, 512)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-node ring shift of 512 B: %.1f us simulated\n", elapsed.Micros())
}
