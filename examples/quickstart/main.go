// Quickstart: compare the paper's four complete-exchange algorithms on a
// simulated 32-node CM-5 — the experiment behind Figure 5 — through the
// registry-backed Run(Job) -> Result API.
package main

import (
	"fmt"
	"log"

	"repro/cm5"
)

func main() {
	fmt.Println("Complete exchange on a simulated 32-node CM-5 (times in ms)")
	fmt.Printf("%8s  %8s  %8s  %8s  %8s\n", "bytes", "LEX", "PEX", "REX", "BEX")
	for _, size := range []int{0, 256, 1024, 2048} {
		fmt.Printf("%8d", size)
		for _, name := range cm5.ExchangeAlgorithms() {
			res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm(name), 32, size))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.3f", res.Elapsed.Millis())
		}
		fmt.Println()
	}
	fmt.Println("\nLEX collapses under CMMD's synchronous sends; BEX wins at large sizes")
	fmt.Println("by balancing local and root-crossing traffic (paper Sections 3.1-3.5).")

	// The Result carries more than the makespan: schedule statistics and
	// per-level fat-tree utilization explain *why* the times differ.
	fmt.Printf("\n%8s  %6s  %7s  %7s  %10s\n",
		"alg", "steps", "msgs", "fan-in", "node links")
	for _, name := range []string{"LEX", "BEX"} {
		res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm(name), 32, 1024))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8s  %6d  %7d  %7d  %9.1f%%\n",
			name, res.Steps, res.Messages, res.MaxFanIn,
			100*res.LevelUtilization[0])
	}
	fmt.Println("\nLEX's fan-in of 31 serializes every step at one receiver, so the network")
	fmt.Println("idles; BEX's pairwise steps keep every link busy.")

	// The same machinery exposes node-level programming:
	m, err := cm5.NewMachine(8, cm5.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	elapsed, err := m.Run(func(n *cm5.Node) {
		// Ring shift with the deadlock-free ordering of Figure 2.
		right, left := (n.ID()+1)%n.N(), (n.ID()+n.N()-1)%n.N()
		if n.ID()%2 == 0 {
			n.SendN(right, 0, 512)
			n.Recv(left, 0)
		} else {
			n.Recv(left, 0)
			n.SendN(right, 0, 512)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-node ring shift of 512 B: %.1f us simulated\n", elapsed.Micros())
}
