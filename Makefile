GO ?= go

.PHONY: build test race bench bench-smoke bench-json bench-baseline cover perf-check lint vet fmt-check tables examples linkcheck api api-check serve-smoke faults-smoke apps-smoke obs-smoke workers-smoke profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the concurrent code introduced by the experiment
# orchestrator, the rewritten simulation engine, the result store's
# concurrent writers, the serving layer's coalescing/admission paths,
# and the fault model's scheduler/topology surface (the adaptive
# scheduler's shared planner runs under the engine's single-process
# guarantee — the race pass holds it to that). -short trims the
# heaviest deterministic sweeps; `make test` still runs them raceless.
race:
	$(GO) test -race -short ./internal/exp/ ./internal/sim/ ./internal/cmmd/ ./internal/network/ ./internal/store/ ./internal/serve/ ./internal/sched/ ./internal/topo/ ./internal/trace/ ./internal/obs/

# Full-suite run with a coverage profile plus a function summary; on
# CI's stable leg this IS the test step (one execution, not two), and
# coverage.out uploads as an artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 30

# Full paper-scale experiment benchmarks (host ns/op + simulated-time
# metrics); see also the engine micro-benchmarks in internal/sim.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# One iteration of every Figure-5 benchmark: catches compile or assertion
# breakage in the benchmark harness without paying for stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench Fig5 -benchtime 1x .

# Topology x algorithm benchmark results as machine-readable JSON
# (BENCH_topo.json: ns/op + sim_ms per cell), so the perf trajectory of
# the generalized max-min solver is tracked across PRs. CI runs this as
# a smoke step; run with a higher -benchtime locally for stable numbers.
BENCHTIME ?= 1x
bench-json:
	@out="$$(mktemp)"; \
	if ! $(GO) test -run '^$$' -bench BenchmarkTopology -benchtime $(BENCHTIME) . > "$$out"; then \
		cat "$$out"; rm -f "$$out"; echo "bench-json: benchmark run failed"; exit 1; fi; \
	cat "$$out"; \
	$(GO) run ./cmd/benchjson -out BENCH_topo.json < "$$out"; rm -f "$$out"
	@echo "bench-json: wrote BENCH_topo.json"

# Gate the freshly generated BENCH_topo.json against a baseline (the
# latest main artifact in CI, or the committed BENCH_topo.baseline.json
# fallback): ns/op slowdowns beyond THRESHOLD and any sim_ms drift
# beyond SIM_THRESHOLD fail.
BASELINE ?= BENCH_topo.baseline.json
THRESHOLD ?= 25%
SIM_THRESHOLD ?= 0.1%
perf-check:
	$(GO) run ./cmd/expdiff -threshold $(THRESHOLD) -sim-threshold $(SIM_THRESHOLD) $(BASELINE) BENCH_topo.json

# Refresh the committed perf baseline after an intentional perf or
# simulation change (commit the result alongside the change).
bench-baseline:
	$(MAKE) bench-json BENCHTIME=5x
	cp BENCH_topo.json BENCH_topo.baseline.json
	@echo "bench-baseline: wrote BENCH_topo.baseline.json"

# Run every example program end to end — the documentation smoke test.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; $(GO) run ./$$d >/dev/null; done
	@echo "examples: all ran"

# Verify that every relative markdown link in the repo resolves.
linkcheck:
	$(GO) run ./cmd/linkcheck

# End-to-end smoke test of cmd/cmserve over real HTTP: served bodies
# byte-identical to -oneshot, repeats hit the store, and sweep output
# byte-identical to cmexp stdout on a shared store (CI's serve-smoke
# step; see scripts/serve_smoke.sh).
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke test of the fault-injection family: a small
# `cmexp faults -store` sweep run twice — the cold run simulates, the
# warm run must be 100% cache hits with byte-identical output (CI's
# faults-smoke step; see scripts/faults_smoke.sh).
faults-smoke:
	sh scripts/faults_smoke.sh

# End-to-end smoke test of the trace subsystem: a small `cmexp apps
# -store` sweep run twice — the cold run records the applications and
# simulates, the warm run must be 100% cache hits with byte-identical
# output and never re-run an application (CI's apps-smoke step; see
# scripts/apps_smoke.sh).
apps-smoke:
	sh scripts/apps_smoke.sh

# End-to-end smoke test of the observability layer: /v1/metrics serves
# Prometheus text whose counters move with real requests and agree
# with /v1/stats, and `cmexp -timeline` writes valid, deterministic
# Chrome trace-event files (CI's obs-smoke step; see
# scripts/obs_smoke.sh).
obs-smoke:
	sh scripts/obs_smoke.sh

# End-to-end smoke test of the distributed sweep fabric: a two-worker
# `cmexp -workers` fleet sharing a cmserve-hosted HTTP store, one
# worker SIGKILLed mid-sweep — the survivor steals the dead worker's
# expired leases and completes, a final -resume is 100% replayed, and
# both outputs are byte-identical to a storeless run (CI's
# workers-smoke step; see scripts/workers_smoke.sh).
workers-smoke:
	sh scripts/workers_smoke.sh

# CPU + heap profiles of the topology benchmark (the perf gate's
# workload) via the standard pprof flags; inspect with
# `go tool pprof cpu.pprof`. CI uploads both files as artifacts.
profile:
	$(GO) test -run '^$$' -bench BenchmarkTopology -benchtime 3x \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "profile: wrote cpu.pprof and mem.pprof"

# Snapshot the public API surface. Run after intentionally changing
# exported cm5 declarations; CI's api job diffs against this file.
api:
	$(GO) doc -all ./cm5 > cm5/api.txt

# Fail when the exported cm5 surface drifts from the api.txt snapshot.
api-check:
	@tmp="$$(mktemp)"; $(GO) doc -all ./cm5 > "$$tmp"; \
	if ! diff -u cm5/api.txt "$$tmp"; then \
		echo; echo "public cm5 API changed: run 'make api' and commit cm5/api.txt"; \
		rm -f "$$tmp"; exit 1; fi; rm -f "$$tmp"; \
	echo "api-check: cm5 surface matches cm5/api.txt"

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# CI and humans run the same thing: vet + gofmt always; golangci-lint
# (configured by .golangci.yml) when installed.
lint: vet fmt-check
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; go vet + gofmt ran"; fi

# Regenerate every table and figure of the paper on all CPUs.
tables:
	$(GO) run ./cmd/cmexp -v all
