#!/bin/sh
# workers_smoke.sh — end-to-end smoke test of the distributed sweep
# fabric (CI's workers-smoke step; `make workers-smoke` locally).
#
# Starts cmserve on a temporary store and points a two-worker cmexp
# fleet at it over real HTTP, then asserts the fabric's crash contract
# from the outside:
#
#   1. worker 1 is SIGKILLed mid-sweep (-9: no cleanup, no lease
#      release — a real crash leaving leases to expire);
#   2. worker 2 completes the sweep anyway — stealing whatever the
#      corpse held once its leases expire — and its stdout is
#      byte-identical to a single-process storeless run;
#   3. a final `cmexp -resume` against the daemon replays every cell
#      and simulates none: the sweep survived the crash complete.
#
# Exits non-zero on the first failed assertion.
set -eu

PORT="${PORT:-18128}"
GO="${GO:-go}"
FAMILY=ablation-async # 16 cells
tmp="$(mktemp -d)"
serve_pid=""
w1_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	[ -n "$w1_pid" ] && kill -9 "$w1_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build"
"$GO" build -o "$tmp/cmserve" ./cmd/cmserve
"$GO" build -o "$tmp/cmexp" ./cmd/cmexp

echo "== storeless reference run"
"$tmp/cmexp" "$FAMILY" >"$tmp/ref.txt"

echo "== start daemon on :$PORT (store $tmp/store)"
"$tmp/cmserve" -addr "127.0.0.1:$PORT" -store "$tmp/store" &
serve_pid=$!
url="http://127.0.0.1:$PORT"

i=0
until curl -sf "$url/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "workers-smoke: daemon never became healthy"; exit 1; }
	sleep 0.1
done

echo "== launch two workers against $url, SIGKILL worker 1 mid-sweep"
"$tmp/cmexp" -workers -store "$url" -worker-id w1 -parallel 1 -lease-ttl 2s -v "$FAMILY" \
	>"$tmp/w1.out" 2>"$tmp/w1.err" &
w1_pid=$!
"$tmp/cmexp" -workers -store "$url" -worker-id w2 -parallel 2 -lease-ttl 2s -v "$FAMILY" \
	>"$tmp/w2.out" 2>"$tmp/w2.err" &
w2_pid=$!

# Kill worker 1 the moment its first per-cell progress line proves it
# is mid-sweep. SIGKILL: no deferred cleanup runs, its leases die with
# it and must be stolen by worker 2 after the TTL.
i=0
until grep -q '^\[' "$tmp/w1.err" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && break
	sleep 0.02
done
kill -9 "$w1_pid" 2>/dev/null || echo "workers-smoke: note: worker 1 finished before the kill landed"
wait "$w1_pid" 2>/dev/null || true
w1_pid=""

echo "== worker 2 must complete the sweep and match the storeless reference"
wait "$w2_pid" || { echo "workers-smoke: worker 2 failed"; cat "$tmp/w2.err"; exit 1; }
cmp "$tmp/ref.txt" "$tmp/w2.out" || {
	echo "workers-smoke: worker 2 output differs from the storeless reference"; exit 1; }

echo "== -resume replays the complete sweep over HTTP, simulating nothing"
"$tmp/cmexp" -resume -store "$url" "$FAMILY" >"$tmp/resumed.out" 2>"$tmp/resumed.err"
cmp "$tmp/ref.txt" "$tmp/resumed.out" || {
	echo "workers-smoke: resumed output differs from the storeless reference"; exit 1; }
grep -q '16 cells replayed' "$tmp/resumed.err" || {
	echo "workers-smoke: resume did not replay all 16 cells:"; cat "$tmp/resumed.err"; exit 1; }
grep -q ' 0 simulated' "$tmp/resumed.err" || {
	echo "workers-smoke: resume re-simulated cells:"; cat "$tmp/resumed.err"; exit 1; }

echo "workers-smoke: all assertions passed"
