#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of cmd/cmserve (CI's
# serve-smoke step; `make serve-smoke` locally).
#
# Starts a daemon on a temporary store and asserts the serving layer's
# byte-identity guarantees from the outside, over real HTTP:
#
#   1. a served job body is byte-identical to `cmserve -oneshot` for
#      the same spec;
#   2. repeating the request is a store hit (X-Cache: hit) with the
#      identical body;
#   3. a sweep's final `output` field is byte-identical to cmexp's
#      stdout for the same experiments, filter, and format — and,
#      because the store is shared, the sweep replays the cells cmexp
#      just simulated.
#
# Requires curl; jq is optional (the sweep comparison is skipped
# without it). Exits non-zero on the first failed assertion.
set -eu

PORT="${PORT:-18127}"
GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build"
"$GO" build -o "$tmp/cmserve" ./cmd/cmserve
"$GO" build -o "$tmp/cmexp" ./cmd/cmexp

echo "== start daemon on :$PORT (store $tmp/store)"
"$tmp/cmserve" -addr "127.0.0.1:$PORT" -store "$tmp/store" &
pid=$!

i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "serve-smoke: daemon never became healthy"; exit 1; }
	sleep 0.1
done

spec='{"algorithm":"BEX","n":32,"bytes":1024}'
echo "$spec" >"$tmp/spec.json"

echo "== job request is byte-identical to cmserve -oneshot"
curl -sf -D "$tmp/h1" "http://127.0.0.1:$PORT/v1/jobs" -d "$spec" >"$tmp/served.json"
"$tmp/cmserve" -oneshot "$tmp/spec.json" >"$tmp/oneshot.json"
cmp "$tmp/oneshot.json" "$tmp/served.json"
grep -qi '^x-cache: miss' "$tmp/h1" || { echo "serve-smoke: first request was not a miss"; cat "$tmp/h1"; exit 1; }

echo "== repeat request hits the store with the identical body"
curl -sf -D "$tmp/h2" "http://127.0.0.1:$PORT/v1/jobs" -d "$spec" >"$tmp/served2.json"
cmp "$tmp/served.json" "$tmp/served2.json"
grep -qi '^x-cache: hit' "$tmp/h2" || { echo "serve-smoke: repeat request was not a hit"; cat "$tmp/h2"; exit 1; }

if command -v jq >/dev/null 2>&1; then
	echo "== sweep output is byte-identical to cmexp stdout (shared store)"
	filter='scenarios/transpose/(LS|GS)/N16$'
	"$tmp/cmexp" -store "$tmp/store" -format json -run "$filter" scenarios >"$tmp/cmexp.json"
	curl -sfN "http://127.0.0.1:$PORT/v1/sweep" \
		-d "{\"experiments\":[\"scenarios\"],\"run\":\"scenarios/transpose/(LS|GS)/N16\$\",\"format\":\"json\"}" \
		>"$tmp/sweep.ndjson"
	tail -n 1 "$tmp/sweep.ndjson" | jq -rj .output >"$tmp/sweep_output.json"
	cmp "$tmp/cmexp.json" "$tmp/sweep_output.json"
	replayed="$(tail -n 1 "$tmp/sweep.ndjson" | jq .replayed)"
	[ "$replayed" = "2" ] || { echo "serve-smoke: sweep replayed $replayed cells, want 2 (store not shared?)"; exit 1; }
else
	echo "== jq not installed; skipping the sweep comparison"
fi

echo "serve-smoke: all assertions passed"
