#!/bin/sh
# faults_smoke.sh — end-to-end smoke test of the fault-injection
# experiment family (CI's faults-smoke step; `make faults-smoke`
# locally).
#
# Runs a small `cmexp faults` sweep against a fresh result store twice
# and asserts the family's caching contract from the outside:
#
#   1. the cold run simulates every selected cell (0 replayed);
#   2. the warm run replays every cell from the store (0 simulated) —
#      each cell's fault plan is part of its content address, so faulty
#      results cache exactly like healthy ones;
#   3. both runs' rendered tables are byte-identical.
#
# Exits non-zero on the first failed assertion.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "== build"
"$GO" build -o "$tmp/cmexp" ./cmd/cmexp

# Every fault profile x scheduler at the smallest machine size:
# 5 profiles x 5 schedulers = 25 cells.
filter='/N16$'
cells=25

echo "== cold sweep simulates every cell"
"$tmp/cmexp" -store "$tmp/store" -run "$filter" -v faults >"$tmp/cold.txt" 2>"$tmp/cold.log"
grep -q "cmexp: 0 cells replayed from .*, $cells simulated" "$tmp/cold.log" || {
	echo "faults-smoke: cold run was not $cells simulations:"
	tail -n 2 "$tmp/cold.log"
	exit 1
}

echo "== warm sweep is 100% cache hits"
"$tmp/cmexp" -store "$tmp/store" -run "$filter" -v faults >"$tmp/warm.txt" 2>"$tmp/warm.log"
grep -q "cmexp: $cells cells replayed from .*, 0 simulated" "$tmp/warm.log" || {
	echo "faults-smoke: warm run was not $cells cache hits:"
	tail -n 2 "$tmp/warm.log"
	exit 1
}

echo "== warm replay is byte-identical to the cold run"
cmp "$tmp/cold.txt" "$tmp/warm.txt"

echo "faults-smoke: all assertions passed"
