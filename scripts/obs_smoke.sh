#!/bin/sh
# obs_smoke.sh — end-to-end smoke test of the observability layer (CI's
# obs-smoke step; `make obs-smoke` locally).
#
# Asserts, from the outside over real HTTP:
#
#   1. GET /v1/metrics serves Prometheus text whose serve counters
#      start at zero and move in lockstep with the requests we send:
#      one miss, one hit, a herd of identical concurrent requests that
#      must coalesce;
#   2. the counters agree with GET /v1/stats — same registry, two
#      renderings;
#   3. `cmexp -timeline` writes one valid Chrome trace-event JSON file
#      per simulated cell, byte-identical across two runs (jq required
#      for the validity check; skipped without it).
#
# Requires curl; jq is optional. Exits non-zero on the first failed
# assertion.
set -eu

PORT="${PORT:-18128}"
GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# metric NAME FILE — extract one unlabeled sample value.
metric() {
	awk -v name="$1" '$1 == name { print $2; found = 1 } END { if (!found) print "MISSING" }' "$2"
}

echo "== build"
"$GO" build -o "$tmp/cmserve" ./cmd/cmserve
"$GO" build -o "$tmp/cmexp" ./cmd/cmexp

echo "== start daemon on :$PORT (store $tmp/store)"
"$tmp/cmserve" -addr "127.0.0.1:$PORT" -store "$tmp/store" &
pid=$!

i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "obs-smoke: daemon never became healthy"; exit 1; }
	sleep 0.1
done

echo "== fresh daemon exposes zeroed serve counters"
curl -sf "http://127.0.0.1:$PORT/v1/metrics" >"$tmp/m0"
for name in serve_hits_total serve_misses_total serve_coalesced_total; do
	v="$(metric "$name" "$tmp/m0")"
	[ "$v" = "0" ] || { echo "obs-smoke: fresh $name = $v, want 0"; exit 1; }
done

spec='{"algorithm":"BEX","n":32,"bytes":1024}'

echo "== one miss, one hit move the counters"
curl -sf "http://127.0.0.1:$PORT/v1/jobs" -d "$spec" >/dev/null
curl -sf "http://127.0.0.1:$PORT/v1/jobs" -d "$spec" >/dev/null
curl -sf "http://127.0.0.1:$PORT/v1/metrics" >"$tmp/m1"
[ "$(metric serve_misses_total "$tmp/m1")" = "1" ] || { echo "obs-smoke: serve_misses_total != 1 after cold POST"; exit 1; }
[ "$(metric serve_hits_total "$tmp/m1")" = "1" ] || { echo "obs-smoke: serve_hits_total != 1 after warm POST"; exit 1; }
[ "$(metric sim_events_fired_total "$tmp/m1")" != "MISSING" ] || { echo "obs-smoke: sim counters missing from /v1/metrics"; exit 1; }
[ "$(metric store_get_misses_total "$tmp/m1")" != "MISSING" ] || { echo "obs-smoke: store counters missing from /v1/metrics"; exit 1; }

echo "== a herd of one fresh spec coalesces"
herd='{"algorithm":"GS","n":64,"bytes":256,"workload":"hotspot"}'
herd_pids=""
for _ in 1 2 3 4 5 6 7 8; do
	curl -sf "http://127.0.0.1:$PORT/v1/jobs" -d "$herd" >/dev/null &
	herd_pids="$herd_pids $!"
done
# wait on the curls specifically — a bare `wait` would also wait on
# the daemon, which never exits.
for p in $herd_pids; do
	wait "$p"
done
curl -sf "http://127.0.0.1:$PORT/v1/metrics" >"$tmp/m2"
misses="$(metric serve_misses_total "$tmp/m2")"
hits="$(metric serve_hits_total "$tmp/m2")"
coalesced="$(metric serve_coalesced_total "$tmp/m2")"
[ "$misses" = "2" ] || { echo "obs-smoke: herd should cost exactly one more simulation (misses=$misses, want 2)"; exit 1; }
total=$((misses + hits + coalesced))
[ "$total" = "10" ] || { echo "obs-smoke: miss+hit+coalesced = $total, want 10"; exit 1; }

echo "== /v1/metrics counters agree with /v1/stats"
curl -sf "http://127.0.0.1:$PORT/v1/stats" >"$tmp/stats.json"
if command -v jq >/dev/null 2>&1; then
	for pair in "hits serve_hits_total" "misses serve_misses_total" "coalesced serve_coalesced_total"; do
		key="${pair% *}"; name="${pair#* }"
		sv="$(jq -r ".$key" "$tmp/stats.json")"
		mv_="$(metric "$name" "$tmp/m2")"
		[ "$sv" = "$mv_" ] || { echo "obs-smoke: /v1/stats $key=$sv but /v1/metrics $name=$mv_"; exit 1; }
	done
else
	echo "   (jq not installed; skipping the field-by-field comparison)"
fi

echo "== cmexp -timeline writes valid, deterministic trace files"
"$tmp/cmexp" -parallel 2 -timeline "$tmp/tl1" ablation-async >/dev/null
"$tmp/cmexp" -parallel 2 -timeline "$tmp/tl2" ablation-async >/dev/null
n="$(ls "$tmp/tl1"/*.trace.json | wc -l | tr -d ' ')"
[ "$n" = "16" ] || { echo "obs-smoke: wrote $n timeline files, want 16"; exit 1; }
for f in "$tmp/tl1"/*.trace.json; do
	cmp "$f" "$tmp/tl2/$(basename "$f")" || { echo "obs-smoke: $f differs between identical runs"; exit 1; }
	if command -v jq >/dev/null 2>&1; then
		unit="$(jq -r .displayTimeUnit "$f")"
		[ "$unit" = "ns" ] || { echo "obs-smoke: $f displayTimeUnit=$unit, want ns"; exit 1; }
		events="$(jq '.traceEvents | length' "$f")"
		[ "$events" -gt 0 ] || { echo "obs-smoke: $f has no trace events"; exit 1; }
	fi
done

echo "obs-smoke: all assertions passed"
