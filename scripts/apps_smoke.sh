#!/bin/sh
# apps_smoke.sh — end-to-end smoke test of the trace-driven apps
# experiment family (CI's apps-smoke step; `make apps-smoke` locally).
#
# Runs a small `cmexp apps` sweep against a fresh result store twice
# and asserts the trace subsystem's caching contract from the outside:
#
#   1. the cold run records the applications and simulates every
#      selected cell (0 replayed), persisting the recordings as
#      content-addressed trace records alongside the results;
#   2. the warm run replays every cell from the store (0 simulated) —
#      each cell's trace hash + trace version is part of its content
#      address, so trace-driven results cache exactly like synthetic
#      ones, and the applications never run again;
#   3. both runs' rendered tables are byte-identical.
#
# Exits non-zero on the first failed assertion.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "== build"
"$GO" build -o "$tmp/cmexp" ./cmd/cmexp

# Every application x interconnect x scheduler at the smaller machine
# size, plus that size's stats rows: 3 x 2 x 5 + 3 = 33 cells.
filter='/P8$'
cells=33

echo "== cold sweep records the apps and simulates every cell"
"$tmp/cmexp" -store "$tmp/store" -run "$filter" -v apps >"$tmp/cold.txt" 2>"$tmp/cold.log"
grep -q "cmexp: 0 cells replayed from .*, $cells simulated" "$tmp/cold.log" || {
	echo "apps-smoke: cold run was not $cells simulations:"
	tail -n 2 "$tmp/cold.log"
	exit 1
}

echo "== warm sweep is 100% cache hits"
"$tmp/cmexp" -store "$tmp/store" -run "$filter" -v apps >"$tmp/warm.txt" 2>"$tmp/warm.log"
grep -q "cmexp: $cells cells replayed from .*, 0 simulated" "$tmp/warm.log" || {
	echo "apps-smoke: warm run was not $cells cache hits:"
	tail -n 2 "$tmp/warm.log"
	exit 1
}

echo "== warm replay is byte-identical to the cold run"
cmp "$tmp/cold.txt" "$tmp/warm.txt"

echo "apps-smoke: all assertions passed"
