package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// cmexpOut drives run() exactly as main does and returns stdout/stderr.
func cmexpOut(t *testing.T, args []string, o options) (string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	if err := run(context.Background(), &stdout, &stderr, args, o); err != nil {
		t.Fatalf("cmexp %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestStoreOutputByteIdentical is the acceptance contract: the same
// experiment with no store, a cold store, and a warm store must print
// byte-identical tables, and the warm run must replay every cell.
func TestStoreOutputByteIdentical(t *testing.T) {
	args := []string{"ablation-async"}
	storeless, _ := cmexpOut(t, args, options{parallel: 2})

	dir := filepath.Join(t.TempDir(), "results")
	cold, _ := cmexpOut(t, args, options{parallel: 2, storeDir: dir})
	warm, warmErr := cmexpOut(t, args, options{parallel: 2, storeDir: dir, resume: true})

	if cold != storeless {
		t.Fatalf("cold store output differs from storeless:\n%s\nvs\n%s", cold, storeless)
	}
	if warm != storeless {
		t.Fatalf("warm store output differs from storeless:\n%s\nvs\n%s", warm, storeless)
	}
	if !strings.Contains(warmErr, "16 cells replayed") || !strings.Contains(warmErr, "0 simulated") {
		t.Fatalf("warm -resume should replay all 16 cells:\n%s", warmErr)
	}
}

// TestResumeAfterInterruptedSweep: a sweep that died mid-way (here:
// only some cells ran, selected by -run) leaves a partial store;
// -resume finishes the remaining cells and produces the full output.
func TestResumeAfterInterruptedSweep(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	args := []string{"ablation-async"}

	// The "interrupted" sweep: only the LEX cells completed.
	_, _ = cmexpOut(t, args, options{parallel: 2, storeDir: dir, runPat: "LEX"})

	full, resumeErr := cmexpOut(t, args, options{parallel: 2, storeDir: dir, resume: true})
	if !strings.Contains(resumeErr, "8 cells replayed") || !strings.Contains(resumeErr, "8 simulated") {
		t.Fatalf("resume should replay the 8 completed cells and simulate 8:\n%s", resumeErr)
	}
	want, _ := cmexpOut(t, args, options{parallel: 2})
	if full != want {
		t.Fatalf("resumed output differs from a fresh full sweep:\n%s\nvs\n%s", full, want)
	}
}

func TestResumeRequiresExistingStore(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run(context.Background(), &stdout, &stderr, []string{"fig5"},
		options{resume: true, format: "text"})
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("-resume without -store should fail mentioning -store, got %v", err)
	}
	err = run(context.Background(), &stdout, &stderr, []string{"fig5"},
		options{resume: true, storeDir: filepath.Join(t.TempDir(), "missing"), format: "text"})
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("-resume with a missing store should fail, got %v", err)
	}
}

func TestInvalidateForcesResimulation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	args := []string{"ablation-async"}
	cmexpOut(t, args, options{parallel: 2, storeDir: dir})

	_, stderr := cmexpOut(t, args, options{
		parallel: 2, storeDir: dir, resume: true, invalidate: "LEX",
	})
	if !strings.Contains(stderr, "invalidated 8 stored cells") {
		t.Fatalf("expected 8 invalidations:\n%s", stderr)
	}
	if !strings.Contains(stderr, "8 cells replayed") || !strings.Contains(stderr, "8 simulated") {
		t.Fatalf("invalidated cells should re-simulate:\n%s", stderr)
	}

	// Invalidate-only invocation: no experiments, just the deletion.
	_, stderr2 := cmexpOut(t, nil, options{storeDir: dir, invalidate: "PEX"})
	if !strings.Contains(stderr2, "invalidated 8 stored cells") {
		t.Fatalf("invalidate-only run:\n%s", stderr2)
	}
}

func TestFormatJSONAndCSV(t *testing.T) {
	jsonOut, _ := cmexpOut(t, []string{"ablation-async"}, options{parallel: 2, format: "json"})
	if !strings.Contains(jsonOut, `"schema": "cmexp-tables/v1"`) ||
		!strings.Contains(jsonOut, `"title": "Ablation: synchronous vs buffered sends on 32 nodes (ms)"`) {
		t.Fatalf("json output missing schema or table:\n%s", jsonOut)
	}
	csvOut, _ := cmexpOut(t, []string{"ablation-async"}, options{parallel: 2, format: "csv"})
	if !strings.HasPrefix(csvOut, "table,row,column,value\n") {
		t.Fatalf("csv output missing header:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "LEX sync") {
		t.Fatalf("csv output missing cells:\n%s", csvOut)
	}

	var stdout, stderr strings.Builder
	if err := run(context.Background(), &stdout, &stderr, []string{"fig5"},
		options{format: "xml"}); err == nil {
		t.Fatal("unknown -format should fail")
	}
}

func TestUnknownExperimentListsKnown(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run(context.Background(), &stdout, &stderr, []string{"nope"}, options{format: "text"})
	if err == nil || !strings.Contains(err.Error(), "fig5") {
		t.Fatalf("unknown experiment should list known ones, got %v", err)
	}
}
