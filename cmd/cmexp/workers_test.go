package main

import (
	"bufio"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/serve"
	"repro/internal/store"
)

// TestCmexpWorkerHelperProcess is not a test: it is the body of the
// worker process TestWorkersKillAndResumeByteIdentical spawns. It runs
// one cmexp -workers sweep against the store URL in CMEXP_WORKER_STORE,
// printing per-cell progress to stderr so the parent can kill it
// mid-sweep.
func TestCmexpWorkerHelperProcess(t *testing.T) {
	url := os.Getenv("CMEXP_WORKER_STORE")
	if url == "" {
		t.Skip("helper process entry point; spawned by TestWorkersKillAndResumeByteIdentical")
	}
	o := options{
		parallel: 1,
		storeDir: url,
		workers:  true,
		workerID: os.Getenv("CMEXP_WORKER_ID"),
		leaseTTL: 2 * time.Second,
		verbose:  true,
	}
	var stdout strings.Builder
	if err := run(context.Background(), &stdout, os.Stderr, []string{os.Getenv("CMEXP_WORKER_FAMILY")}, o); err != nil {
		t.Fatalf("worker sweep: %v", err)
	}
}

// TestWorkersKillAndResumeByteIdentical is the distributed sweep's
// crash contract, end to end over real sockets and processes: a worker
// fleet shares a cmserve-hosted HTTP store; one worker is SIGKILLed
// mid-sweep (its leases die with it); a surviving worker completes the
// sweep anyway — stealing whatever the corpse held once the leases
// expire — and renders output byte-identical to a single-process
// storeless run. A final -resume replays everything without simulating
// a single cell.
func TestWorkersKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process and real sockets; skipped in -short")
	}
	const family = "ablation-async" // 16 cells: big enough to die inside
	baseline, _ := cmexpOut(t, []string{family}, options{parallel: 2})

	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(network.DefaultConfig(), disk).Handler())
	defer ts.Close()

	// Worker 1: a real OS process, killed with SIGKILL (no cleanup, no
	// release — exactly a crash) as soon as its first progress line
	// shows it is mid-sweep.
	cmd := exec.Command(os.Args[0], "-test.run=TestCmexpWorkerHelperProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"CMEXP_WORKER_STORE="+ts.URL,
		"CMEXP_WORKER_ID=doomed",
		"CMEXP_WORKER_FAMILY="+family,
	)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	scanner := bufio.NewScanner(stderrPipe)
	for scanner.Scan() {
		if strings.HasPrefix(scanner.Text(), "[") { // "[1/16] ablation-async/..."
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			killed = true
			break
		}
	}
	cmd.Wait() // reap; a killed process reports an error, which is the point
	if !killed {
		// The worker finished every cell before printing progress —
		// impossible with -v, so the pipe must have broken.
		t.Fatal("worker 1 produced no progress output; cannot test mid-sweep death")
	}
	if disk.Len() >= 16 {
		t.Skipf("worker 1 finished all %d cells before the kill landed; nothing to recover", disk.Len())
	}

	// Worker 2 survives: it replays what the corpse stored, waits out
	// the corpse's leases, steals them, and completes the sweep.
	var w2out, w2err strings.Builder
	o2 := options{parallel: 2, storeDir: ts.URL, workers: true, workerID: "survivor", leaseTTL: 2 * time.Second}
	if err := run(context.Background(), &w2out, &w2err, []string{family}, o2); err != nil {
		t.Fatalf("surviving worker: %v\nstderr:\n%s", err, w2err.String())
	}
	if w2out.String() != baseline {
		t.Fatalf("survivor's output differs from the storeless baseline:\n%s\nvs\n%s",
			w2out.String(), baseline)
	}

	// The sweep is complete on the shared store: -resume replays all 16
	// cells over HTTP and simulates none.
	resumed, resumedErr := cmexpOut(t, []string{family},
		options{parallel: 2, storeDir: ts.URL, resume: true})
	if resumed != baseline {
		t.Fatalf("-resume output differs from the storeless baseline:\n%s\nvs\n%s", resumed, baseline)
	}
	if !strings.Contains(resumedErr, "16 cells replayed") || !strings.Contains(resumedErr, "0 simulated") {
		t.Fatalf("-resume should replay all 16 cells and simulate none:\n%s", resumedErr)
	}
}

// TestWorkersFlagValidation pins the CLI contract around the new
// flags: -workers and URL stores are rejected cleanly when misused.
func TestWorkersFlagValidation(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), &out, &errb, []string{"fig5"}, options{workers: true}); err == nil ||
		!strings.Contains(err.Error(), "-workers requires -store") {
		t.Fatalf("-workers without -store: err=%v", err)
	}
	if err := run(context.Background(), &out, &errb, []string{"fig5"},
		options{storeDir: "http://"}); err == nil {
		t.Fatal("hostless store URL accepted")
	}
	// -resume against an unreachable daemon fails fast instead of
	// sweeping into the void.
	if err := run(context.Background(), &out, &errb, []string{"fig5"},
		options{storeDir: "http://127.0.0.1:1", resume: true}); err == nil ||
		!strings.Contains(err.Error(), "-resume") {
		t.Fatalf("-resume against a dead daemon: err=%v", err)
	}
}
