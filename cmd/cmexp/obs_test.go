package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTimelineFiles runs a small family with -timeline and checks the
// emitted files: one valid Chrome trace-event JSON per cell, tables
// byte-identical to a run without -timeline, and the files themselves
// byte-identical across two runs (sim time is deterministic).
func TestTimelineFiles(t *testing.T) {
	args := []string{"ablation-async"}
	plain, _ := cmexpOut(t, args, options{parallel: 2})

	dir := filepath.Join(t.TempDir(), "timelines")
	traced, _ := cmexpOut(t, args, options{parallel: 2, timelineDir: dir})
	if traced != plain {
		t.Fatalf("-timeline changed the rendered tables:\n%s\nvs\n%s", traced, plain)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 16 {
		t.Fatalf("wrote %d timeline files, want one per cell (16): %v", len(files), files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			DisplayTimeUnit string           `json:"displayTimeUnit"`
			TraceEvents     []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: not valid trace-event JSON: %v", f, err)
		}
		if doc.DisplayTimeUnit != "ns" {
			t.Fatalf("%s: displayTimeUnit %q, want ns", f, doc.DisplayTimeUnit)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("%s: empty timeline", f)
		}
		for _, ev := range doc.TraceEvents {
			if ph := ev["ph"]; ph != "X" && ph != "i" {
				t.Fatalf("%s: unexpected event phase %v", f, ph)
			}
		}
	}

	// Determinism: a second traced run writes the identical bytes.
	dir2 := filepath.Join(t.TempDir(), "timelines2")
	cmexpOut(t, args, options{parallel: 2, timelineDir: dir2})
	for _, f := range files {
		a, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, filepath.Base(f)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between two identical runs", filepath.Base(f))
		}
	}
}

// TestTimelineSkipsReplayedCells: cells replayed from the store never
// simulate, so a warm -timeline run writes no files for them.
func TestTimelineSkipsReplayedCells(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "results")
	args := []string{"ablation-async"}
	cmexpOut(t, args, options{parallel: 2, storeDir: storeDir})

	dir := filepath.Join(t.TempDir(), "timelines")
	cmexpOut(t, args, options{parallel: 2, storeDir: storeDir, timelineDir: dir})
	files, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("warm run wrote %d timeline files for replayed cells, want 0: %v", len(files), files)
	}
}

// TestVerboseSummaryLine: -v ends with the replayed/simulated/wall
// summary read back from the sweep's metrics registry.
func TestVerboseSummaryLine(t *testing.T) {
	_, stderr := cmexpOut(t, []string{"ablation-async"}, options{parallel: 2, verbose: true})
	if !strings.Contains(stderr, "0 replayed, 16 simulated,") {
		t.Fatalf("-v summary should report '0 replayed, 16 simulated,':\n%s", stderr)
	}
}
