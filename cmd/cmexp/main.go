// Command cmexp regenerates every table and figure of the paper's
// evaluation on the CM-5 simulator.
//
// Usage:
//
//	cmexp [flags] <experiment>...
//
// Experiments: fig5 fig6 fig7 fig8 fig10 fig11 table5 table11 table12
// schedules all
//
// Flags:
//
//	-procs N     processor count for table5 (default: both 32 and 256)
//	-maxsize S   largest FFT array edge for table5 (default 2048)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/network"
)

func main() {
	procs := flag.Int("procs", 0, "processor count for table5 (0 = both 32 and 256)")
	maxSize := flag.Int("maxsize", 2048, "largest FFT array edge for table5")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cmexp [flags] fig5|fig6|fig7|fig8|fig10|fig11|table5|table11|table12|schedules|ablations|all")
		os.Exit(2)
	}
	cfg := network.DefaultConfig()
	for _, arg := range flag.Args() {
		if err := run(arg, cfg, *procs, *maxSize); err != nil {
			fmt.Fprintf(os.Stderr, "cmexp %s: %v\n", arg, err)
			os.Exit(1)
		}
	}
}

func run(name string, cfg network.Config, procs, maxSize int) error {
	show := func(t *exp.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		return nil
	}
	switch name {
	case "fig5":
		return show(exp.Fig5(cfg))
	case "fig6":
		return show(exp.Fig6(cfg))
	case "fig7":
		return show(exp.Fig7(cfg))
	case "fig8":
		return show(exp.Fig8(cfg))
	case "fig10":
		return show(exp.Fig10(cfg))
	case "fig11":
		return show(exp.Fig11(cfg))
	case "table5":
		sizes := []int{32, 256}
		if procs != 0 {
			sizes = []int{procs}
		}
		for _, n := range sizes {
			if err := show(exp.Table5(n, maxSize, cfg)); err != nil {
				return err
			}
		}
		return nil
	case "table11":
		return show(exp.Table11(cfg))
	case "table12":
		t, _, err := exp.Table12(cfg)
		return show(t, err)
	case "schedules":
		fmt.Println(exp.ScheduleTables())
		return nil
	case "ablation-async":
		return show(exp.AblationAsync(cfg))
	case "ablation-fattree":
		return show(exp.AblationFatTree(cfg))
	case "ablation-greedy":
		return show(exp.AblationGreedy(cfg))
	case "ablation-crossover":
		return show(exp.AblationCrossover(cfg))
	case "ablation-crystal":
		return show(exp.AblationCrystal(cfg))
	case "ablations":
		for _, sub := range []string{"ablation-async", "ablation-fattree",
			"ablation-greedy", "ablation-crossover", "ablation-crystal"} {
			if err := run(sub, cfg, procs, maxSize); err != nil {
				return err
			}
		}
		return nil
	case "all":
		for _, sub := range []string{"schedules", "fig5", "fig6", "fig7", "fig8",
			"table5", "fig10", "fig11", "table11", "table12", "ablations"} {
			if err := run(sub, cfg, procs, maxSize); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", name)
}
