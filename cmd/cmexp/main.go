// Command cmexp regenerates every table and figure of the paper's
// evaluation on the CM-5 simulator.
//
// Usage:
//
//	cmexp [flags] <experiment>...
//
// Experiments: fig5 fig6 fig7 fig8 fig10 fig11 table5 table11 table12
// schedules scenarios collectives topology ablation-async
// ablation-fattree ablation-greedy ablation-crossover ablation-crystal
// ablations all
//
// Beyond the paper's evaluation, "scenarios" sweeps the workload
// catalogue of internal/pattern (transpose, butterfly, hotspot,
// permutation, stencils, bisection) through all four irregular
// schedulers at several machine sizes plus a per-pattern statistics
// table, "collectives" scales every collective operation to 1024
// nodes both as a direct CMMD node program and as a scheduled matrix,
// and "topology" re-runs the workload catalogue under every irregular
// scheduler on each interconnect of internal/topo (fat tree, 2-D
// torus, hypercube, dragonfly) at 64 and 256 nodes.
//
// Flags:
//
//	-procs N      processor count for table5 (default: both 32 and 256)
//	-maxsize S    largest FFT array edge for table5 (default 2048)
//	-parallel N   worker pool size (default 0 = all CPUs)
//	-seed S       perturb the per-cell seeds of stochastic cells
//	              (default 0 = the canonical tables)
//	-run REGEXP   only run cells whose key matches (unselected cells
//	              stay blank in the rendered tables; derived columns
//	              of partially-selected tables stay blank too)
//	-v            report per-cell progress and wall-clock time on stderr
//
// All experiment cells — one simulation per (figure, algorithm, machine
// size, message size) tuple — are fanned across one worker pool, so a
// full "all" sweep uses every core. Results are deterministic: the
// rendered tables are byte-identical for any -parallel value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"time"

	"repro/cm5"
	"repro/internal/exp"
	"repro/internal/network"
)

var tableExperiments = []string{
	"fig5", "fig6", "fig7", "fig8", "table5", "fig10", "fig11",
	"table11", "table12", "scenarios", "collectives", "topology",
	"ablation-async", "ablation-fattree", "ablation-greedy",
	"ablation-crossover", "ablation-crystal",
}

var ablationExperiments = []string{
	"ablation-async", "ablation-fattree", "ablation-greedy",
	"ablation-crossover", "ablation-crystal",
}

func main() {
	procs := flag.Int("procs", 0, "processor count for table5 (0 = both 32 and 256)")
	maxSize := flag.Int("maxsize", 2048, "largest FFT array edge for table5")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all CPUs)")
	seed := flag.Int64("seed", 0, "perturb the per-cell seeds of stochastic cells (0 = canonical tables)")
	runPat := flag.String("run", "", "only run cells whose key matches this regexp")
	verbose := flag.Bool("v", false, "report per-cell progress on stderr")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cmexp [flags] fig5|fig6|fig7|fig8|fig10|fig11|table5|table11|table12|scenarios|collectives|topology|schedules|ablations|all")
		os.Exit(2)
	}
	if err := run(flag.Args(), *procs, *maxSize, *parallel, *seed, *runPat, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "cmexp: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, procs, maxSize, parallel int, seed int64, runPat string, verbose bool) error {
	cfg := network.DefaultConfig()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Release the signal registration as soon as the first interrupt
	// cancels the sweep: in-flight cells only notice cancellation when
	// they finish, and a second Ctrl-C should kill the process rather
	// than be swallowed.
	go func() {
		<-ctx.Done()
		stop()
	}()

	// Expand the grouping aliases, preserving the canonical print order.
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, arg := range args {
		switch arg {
		case "all":
			add("schedules")
			for _, n := range tableExperiments {
				add(n)
			}
		case "ablations":
			for _, n := range ablationExperiments {
				add(n)
			}
		default:
			add(arg)
		}
	}

	// Build the specs for every requested experiment; their cells all
	// feed one shared worker pool.
	var specs []*exp.TableSpec
	printSchedules := false
	for _, name := range names {
		switch name {
		case "schedules":
			printSchedules = true
		case "fig5":
			specs = append(specs, exp.Fig5Spec(cfg))
		case "fig6":
			specs = append(specs, exp.Fig6Spec(cfg))
		case "fig7":
			specs = append(specs, exp.Fig7Spec(cfg))
		case "fig8":
			specs = append(specs, exp.Fig8Spec(cfg))
		case "fig10":
			specs = append(specs, exp.Fig10Spec(cfg))
		case "fig11":
			specs = append(specs, exp.Fig11Spec(cfg))
		case "table5":
			sizes := []int{32, 256}
			if procs != 0 {
				sizes = []int{procs}
			}
			for _, n := range sizes {
				specs = append(specs, exp.Table5Spec(n, maxSize, cfg))
			}
		case "scenarios":
			specs = append(specs, exp.ScenariosSpec(cfg), exp.ScenarioStatsSpec(cfg))
		case "topology":
			specs = append(specs, exp.TopologySpecs(cfg)...)
		case "collectives":
			specs = append(specs, exp.CollectivesSpec(cfg))
		case "table11":
			specs = append(specs, exp.Table11Spec(cfg))
		case "table12":
			spec, _, err := exp.Table12Spec(cfg)
			if err != nil {
				return err
			}
			specs = append(specs, spec)
		case "ablation-async":
			specs = append(specs, exp.AblationAsyncSpec(cfg))
		case "ablation-fattree":
			specs = append(specs, exp.AblationFatTreeSpec(cfg))
		case "ablation-greedy":
			specs = append(specs, exp.AblationGreedySpec(cfg))
		case "ablation-crossover":
			specs = append(specs, exp.AblationCrossoverSpec(cfg))
		case "ablation-crystal":
			specs = append(specs, exp.AblationCrystalSpec(cfg))
		default:
			return fmt.Errorf("unknown experiment %q (known: schedules %s ablations all)",
				name, strings.Join(tableExperiments, " "))
		}
	}

	runner := exp.NewRunner(parallel)
	runner.Seed = seed
	if runPat != "" {
		re, err := regexp.Compile(runPat)
		if err != nil {
			return fmt.Errorf("bad -run pattern: %w", err)
		}
		selected := 0
		for _, s := range specs {
			for _, c := range s.Cells {
				if re.MatchString(c.Key) {
					selected++
				}
			}
		}
		if selected == 0 {
			var algs []string
			for _, a := range cm5.Algorithms() {
				algs = append(algs, a.Name())
			}
			return fmt.Errorf("-run %q matches no cell of the selected experiments; "+
				"keys look like fig5/PEX/N32/256B and name the registry's algorithms (known: %s)",
				runPat, strings.Join(algs, " "))
		}
		runner.Filter = re
	}
	if verbose {
		runner.OnProgress = func(p exp.Progress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", p.Done, p.Total, p.Key)
		}
	}

	start := time.Now()
	if printSchedules {
		fmt.Println(exp.ScheduleTables())
	}
	if err := runner.Run(ctx, specs...); err != nil {
		return err
	}
	for _, s := range specs {
		fmt.Println(s.Table.Render())
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "cmexp: %d tables, %d workers, %.2fs wall\n",
			len(specs), runner.Workers, time.Since(start).Seconds())
	}
	return nil
}
