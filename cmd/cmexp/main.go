// Command cmexp regenerates every table and figure of the paper's
// evaluation on the CM-5 simulator.
//
// Usage:
//
//	cmexp [flags] <experiment>...
//
// Experiments: fig5 fig6 fig7 fig8 fig10 fig11 table5 table11 table12
// schedules scenarios collectives topology faults apps ablation-async
// ablation-fattree ablation-greedy ablation-crossover ablation-crystal
// ablations all
//
// Beyond the paper's evaluation, "scenarios" sweeps the workload
// catalogue of internal/pattern (transpose, butterfly, hotspot,
// permutation, stencils, bisection) through all four irregular
// schedulers at several machine sizes plus a per-pattern statistics
// table, "collectives" scales every collective operation to 1024
// nodes both as a direct CMMD node program and as a scheduled matrix,
// "topology" re-runs the workload catalogue under every irregular
// scheduler on each interconnect of internal/topo (fat tree, 2-D
// torus, hypercube, dragonfly) at 64 and 256 nodes, and "faults" runs
// the butterfly workload on the hypercube under every named fault
// profile (healthy, link-down, degrade, straggler, crosstraffic),
// comparing the paper's static schedulers against the adaptive
// scheduler AS, which re-plans mid-run from observed transfer rates.
// Each faults cell's seed-deterministic fault plan is hashed into its
// -store address, so faulty runs cache and replay exactly like healthy
// ones. "apps" records the real communication of the paper's three
// applications (CG, 2-D FFT, unstructured-mesh Euler; internal/trace)
// and replays each recorded trace through LS/PS/BS/GS/AS on the fat
// tree and the hypercube at 8 and 16 processors, plus a per-trace
// statistics table; with -store the recordings themselves persist
// content-addressed, so warm sweeps never rerun the applications.
//
// Flags:
//
//	-procs N      processor count for table5 (default: both 32 and 256)
//	-maxsize S    largest FFT array edge for table5 (default 2048)
//	-parallel N   worker pool size (default 0 = all CPUs)
//	-seed S       perturb the per-cell seeds of stochastic cells
//	              (default 0 = the canonical tables)
//	-run REGEXP   only run cells whose key matches (unselected cells
//	              stay blank in the rendered tables; derived columns
//	              of partially-selected tables stay blank too)
//	-store LOC    content-addressed result store: cells whose full
//	              specification (family, cell, axes, seed, config, code
//	              version) is already stored replay byte-identically
//	              instead of re-simulating; fresh results persist for
//	              the next run. LOC is a directory (created if missing)
//	              or a cmserve URL ("http://host:port") — with a URL the
//	              records live on the daemon and any number of cmexp
//	              processes on any machine share them.
//	-resume       continue an interrupted sweep: like -store LOC, but
//	              the store must already exist (directories must be
//	              present, URLs reachable), and the replayed/simulated
//	              split is reported on stderr. Requires -store.
//	-workers      run as one worker of a fleet sharing -store: before
//	              simulating a cell, lease its content hash through the
//	              backend, so concurrent workers partition the sweep
//	              among themselves with no scheduler. Cells leased by a
//	              live worker are deferred and replayed once stored;
//	              leases of dead workers expire and are stolen, so any
//	              worker's death is survivable — rerun (or just wait for
//	              the fleet) and the sweep completes. Every worker still
//	              renders the complete byte-identical output. Requires
//	              -store.
//	-worker-id S  this worker's lease identity (default
//	              <hostname>-<pid>-<starttime>, unique fleet-wide; if
//	              set, make it unique per live process)
//	-lease-ttl D  how long a claimed cell stays leased (default 1m).
//	              Must comfortably exceed one cell's simulation time;
//	              an expired lease invites a steal and the cell is
//	              computed twice (harmlessly, but wastefully).
//	-invalidate REGEXP
//	              delete stored results whose cell key matches, before
//	              the sweep (with no experiments: invalidate and exit).
//	              Requires -store.
//	-format F     output format: text (aligned tables, default), json
//	              (one schema-versioned document), csv (one record per
//	              cell). The static "schedules" listing is text-only
//	              and is skipped under json/csv.
//	-v            report per-cell progress and wall-clock time on stderr
//	              (cached cells are marked "(store)"), plus a final
//	              replayed/simulated/wall summary from the sweep's
//	              metrics registry
//	-timeline DIR write one Chrome trace-event JSON timeline per
//	              simulated cell into DIR (open in Perfetto or
//	              chrome://tracing); cells replayed from the store are
//	              skipped — they never simulate
//	-cpuprofile F write a CPU profile of the whole sweep to F
//	-memprofile F write a heap profile (taken after the sweep) to F
//
// All experiment cells — one simulation per (figure, algorithm, machine
// size, message size) tuple — are fanned across one worker pool, so a
// full "all" sweep uses every core. Results are deterministic: the
// rendered tables are byte-identical for any -parallel value, and
// byte-identical with the result store cold, warm, or disabled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/cm5"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/store"
)

// options carries every flag so tests can drive run directly.
type options struct {
	procs       int
	maxSize     int
	parallel    int
	seed        int64
	runPat      string
	storeDir    string
	resume      bool
	workers     bool
	workerID    string
	leaseTTL    time.Duration
	invalidate  string
	format      string
	verbose     bool
	timelineDir string
	cpuProfile  string
	memProfile  string
}

func main() {
	var o options
	flag.IntVar(&o.procs, "procs", 0, "processor count for table5 (0 = both 32 and 256)")
	flag.IntVar(&o.maxSize, "maxsize", 2048, "largest FFT array edge for table5")
	flag.IntVar(&o.parallel, "parallel", 0, "worker pool size (0 = all CPUs)")
	flag.Int64Var(&o.seed, "seed", 0, "perturb the per-cell seeds of stochastic cells (0 = canonical tables)")
	flag.StringVar(&o.runPat, "run", "", "only run cells whose key matches this regexp")
	flag.StringVar(&o.storeDir, "store", "", "content-addressed result store: a directory or a cmserve URL (cache hits replay instead of re-simulating)")
	flag.BoolVar(&o.resume, "resume", false, "continue an interrupted sweep from an existing -store (reports the replayed/simulated split)")
	flag.BoolVar(&o.workers, "workers", false, "run as one worker of a fleet sharing -store: lease cells before simulating, steal expired leases of dead workers")
	flag.StringVar(&o.workerID, "worker-id", "", "this worker's lease identity (default <hostname>-<pid>-<starttime>)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", time.Minute, "how long a claimed cell stays leased in -workers mode")
	flag.StringVar(&o.invalidate, "invalidate", "", "delete stored results whose cell key matches this regexp before the sweep (requires -store)")
	flag.StringVar(&o.format, "format", "text", "output format: text, json, or csv")
	flag.BoolVar(&o.verbose, "v", false, "report per-cell progress on stderr")
	flag.StringVar(&o.timelineDir, "timeline", "", "write one Chrome trace-event JSON timeline per simulated cell into this directory")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the sweep to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile (after the sweep) to this file")
	flag.Parse()
	if flag.NArg() == 0 && o.invalidate == "" {
		fmt.Fprintln(os.Stderr, "usage: cmexp [flags] fig5|fig6|fig7|fig8|fig10|fig11|table5|table11|table12|scenarios|collectives|topology|faults|apps|schedules|ablations|all")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Release the signal registration as soon as the first interrupt
	// cancels the sweep: in-flight cells only notice cancellation when
	// they finish, and a second Ctrl-C should kill the process rather
	// than be swallowed.
	go func() {
		<-ctx.Done()
		stop()
	}()

	if err := run(ctx, os.Stdout, os.Stderr, flag.Args(), o); err != nil {
		fmt.Fprintf(os.Stderr, "cmexp: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, stdout, stderr io.Writer, args []string, o options) error {
	cfg := network.DefaultConfig()
	format, err := exp.ParseFormat(o.format)
	if err != nil {
		return err
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "cmexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "cmexp: -memprofile: %v\n", err)
			}
		}()
	}

	// The result store: -resume demands an existing one (resuming from
	// nothing is a misspelled path or a dead daemon, not a fresh sweep),
	// -store creates directories on first use. The location's scheme
	// picks the backend: a plain path is a local disk store, an
	// http(s):// URL is a cmserve-hosted one shared by every process
	// that points at it.
	var st store.Backend
	if o.resume && o.storeDir == "" {
		return fmt.Errorf("-resume requires -store LOC (the store the interrupted sweep was writing)")
	}
	if o.workers && o.storeDir == "" {
		return fmt.Errorf("-workers requires -store LOC (the backend the fleet coordinates through)")
	}
	if o.invalidate != "" && o.storeDir == "" {
		return fmt.Errorf("-invalidate requires -store LOC")
	}
	if o.storeDir != "" {
		isURL := strings.HasPrefix(o.storeDir, "http://") || strings.HasPrefix(o.storeDir, "https://")
		if o.resume && !isURL {
			if fi, err := os.Stat(o.storeDir); err != nil || !fi.IsDir() {
				return fmt.Errorf("-resume: store %s does not exist", o.storeDir)
			}
		}
		if st, err = store.OpenBackend(o.storeDir); err != nil {
			return err
		}
		if isURL && o.resume {
			if err := st.(*store.HTTPBackend).Ping(); err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
		}
	}
	if o.invalidate != "" {
		re, err := regexp.Compile(o.invalidate)
		if err != nil {
			return fmt.Errorf("bad -invalidate pattern: %w", err)
		}
		n, err := st.Invalidate(re)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "cmexp: invalidated %d stored cells matching %q\n", n, o.invalidate)
		if len(args) == 0 {
			return nil
		}
	}

	// Expand the grouping aliases, preserving the canonical print
	// order, then build the specs for every requested experiment; their
	// cells all feed one shared worker pool. The name catalogue is
	// shared with the cmserve sweep endpoint (exp.FamilySpecs); only
	// table5 stays here because its -procs/-maxsize flags change its
	// shape.
	names, err := exp.ExpandFamilies(args)
	if err != nil {
		return err
	}
	var specs []*exp.TableSpec
	printSchedules := false
	for _, name := range names {
		switch {
		case name == "schedules":
			printSchedules = true
		case name == "table5" && (o.procs != 0 || o.maxSize != exp.Table5DefaultMaxSize):
			sizes := []int{32, 256}
			if o.procs != 0 {
				sizes = []int{o.procs}
			}
			for _, n := range sizes {
				specs = append(specs, exp.Table5Spec(n, o.maxSize, cfg))
			}
		default:
			ss, err := exp.FamilySpecsStore(name, cfg, st)
			if err != nil {
				return err
			}
			specs = append(specs, ss...)
		}
	}

	runner := exp.NewRunner(o.parallel)
	runner.Seed = o.seed
	runner.TimelineDir = o.timelineDir
	// The registry is cmexp's own sweep bookkeeping: the runner counts
	// replayed and simulated cells (and per-cell wall time) into it, and
	// the -v summary line reads those counters back. Metrics are
	// passive, so the rendered tables stay byte-identical.
	reg := cm5.NewMetricsRegistry()
	runner.Metrics = reg
	if st != nil {
		runner.Store = st
		runner.StoreBase = exp.StoreBase(cfg)
		if o.workers {
			runner.Lease = &exp.LeaseConfig{Owner: o.workerID, TTL: o.leaseTTL}
		}
	}
	if o.runPat != "" {
		re, err := regexp.Compile(o.runPat)
		if err != nil {
			return fmt.Errorf("bad -run pattern: %w", err)
		}
		selected := 0
		for _, s := range specs {
			for _, c := range s.Cells {
				if re.MatchString(c.Key) {
					selected++
				}
			}
		}
		if selected == 0 {
			var algs []string
			for _, a := range cm5.Algorithms() {
				algs = append(algs, a.Name())
			}
			return fmt.Errorf("-run %q matches no cell of the selected experiments; "+
				"keys look like fig5/PEX/N32/256B and name the registry's algorithms (known: %s)",
				o.runPat, strings.Join(algs, " "))
		}
		runner.Filter = re
	}
	if o.verbose {
		runner.OnProgress = func(p exp.Progress) {
			mark := ""
			if p.Cached {
				mark = " (store)"
			}
			fmt.Fprintf(stderr, "[%d/%d] %s%s\n", p.Done, p.Total, p.Key, mark)
		}
	}

	start := time.Now()
	if printSchedules && format == exp.FormatText {
		fmt.Fprintln(stdout, exp.ScheduleTables())
	}
	if err := runner.Run(ctx, specs...); err != nil {
		return err
	}
	tables := make([]*exp.Table, len(specs))
	for i, s := range specs {
		tables[i] = s.Table
	}
	if err := exp.WriteTables(stdout, format, tables); err != nil {
		return err
	}
	if st != nil && (o.resume || o.verbose) {
		fmt.Fprintf(stderr, "cmexp: %d cells replayed from %s, %d simulated\n",
			runner.CacheHits(), o.storeDir, runner.CacheMisses())
	}
	if o.verbose {
		fmt.Fprintf(stderr, "cmexp: %d replayed, %d simulated, %d tables, %d workers, %.2fs wall\n",
			reg.Counter("exp_cells_replayed_total").Value(),
			reg.Counter("exp_cells_simulated_total").Value(),
			len(specs), runner.Workers, time.Since(start).Seconds())
	}
	return nil
}
