// Command meshgen generates the synthetic unstructured meshes standing
// in for the paper's CG and Euler problems, partitions them, and reports
// the halo-exchange pattern statistics that drive Table 12.
//
// Usage:
//
//	meshgen -vertices 2048 -procs 32 -bytes 32
//	meshgen -all            # the paper's five problems
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/mesh"
)

func main() {
	vertices := flag.Int("vertices", 2048, "approximate vertex count")
	procs := flag.Int("procs", 32, "processor count (power of two)")
	bytes := flag.Int("bytes", 32, "bytes per ghost vertex (8 for CG, 32 for Euler)")
	seed := flag.Int64("seed", 0, "mesh seed (default: vertex count)")
	all := flag.Bool("all", false, "report all five problems from the paper's Table 12")
	showPattern := flag.Bool("matrix", false, "print the full communication matrix")
	flag.Parse()

	if *all {
		for _, prob := range exp.PaperTable12 {
			report(prob.Vertices, *procs, prob.BytesPerVertex, int64(prob.Vertices), false, prob.Name,
				prob.PaperDensityPct, prob.PaperAvgBytes)
		}
		return
	}
	s := *seed
	if s == 0 {
		s = int64(*vertices)
	}
	report(*vertices, *procs, *bytes, s, *showPattern, fmt.Sprintf("mesh-%d", *vertices), -1, -1)
}

func report(nv, procs, bytesPer int, seed int64, showPattern bool, name string, paperDensity, paperAvg int) {
	m := mesh.Generate(nv, seed)
	if err := m.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "meshgen:", err)
		os.Exit(1)
	}
	owner := mesh.PartitionRCB(m, procs)
	pt, err := mesh.NewPartition(m, owner, procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshgen:", err)
		os.Exit(1)
	}
	p := pt.HaloPattern(bytesPer)
	fmt.Printf("%s: %d vertices, %d triangles, %d edges, %d processors\n",
		name, m.NumVertices(), m.NumTriangles(), len(m.Edges()), procs)
	fmt.Printf("  halo pattern: %d messages, density %.0f%%, avg %.0f bytes/message\n",
		p.Messages(), 100*p.Density(), p.AvgBytes())
	if paperDensity >= 0 {
		fmt.Printf("  paper reported: density %d%%, avg %d bytes/message\n", paperDensity, paperAvg)
	}
	counts := pt.NeighborCounts()
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	fmt.Printf("  neighbors per processor: min %d, max %d\n\n", min, max)
	if showPattern {
		fmt.Println(p)
	}
}
