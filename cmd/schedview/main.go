// Command schedview prints communication schedules in the style of the
// paper's Tables 1-4 (regular algorithms) and 7-10 (irregular schedulers
// on a pattern), planned through the cm5 algorithm registry.
//
// Usage:
//
//	schedview -alg pex -n 8              # regular: lex pex rex bex
//	schedview -alg shift -n 8 -offset 3  # circular shift
//	schedview -alg gs -pattern P         # irregular on the paper's P
//	schedview -alg ps -n 16 -density 0.4 # irregular on a synthetic pattern
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cm5"
	"repro/internal/fattree"
)

func main() {
	alg := flag.String("alg", "pex", "schedule-backed algorithm: lex|pex|rex|bex|shift regular, or ls|ps|bs|gs|gsr irregular")
	n := flag.Int("n", 8, "processor count (power of two)")
	patName := flag.String("pattern", "", "irregular pattern: 'P' for the paper's Table 6 example")
	density := flag.Float64("density", 0.5, "density for synthetic irregular patterns")
	bytes := flag.Int("bytes", 1, "bytes per message")
	offset := flag.Int("offset", 1, "offset for the shift schedule")
	seed := flag.Int64("seed", 1, "seed for synthetic patterns and the gsr tie-break")
	global := flag.Bool("global", false, "also print per-step top-of-tree crossing counts")
	flag.Parse()

	s, p, err := build(*alg, *n, *patName, *density, *bytes, *offset, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedview:", err)
		os.Exit(1)
	}
	if p != nil {
		fmt.Printf("Pattern (%d processors, %d messages, %.0f%% density):\n%s\n",
			p.N(), p.Messages(), 100*p.Density(), p)
	}
	fmt.Printf("%s schedule, %d steps, %d messages, %d bytes total:\n\n%s\n",
		s.Algorithm, s.NumSteps(), s.Messages(), s.TotalBytes(), s.Table())
	if *global {
		topo := fattree.MustNew(s.N)
		fmt.Printf("top-of-tree crossings per step: %v\n", s.GlobalExchangesPerStep(topo))
	}
}

func build(alg string, n int, patName string, density float64, bytes, offset int, seed int64) (*cm5.Schedule, cm5.Pattern, error) {
	a, err := cm5.LookupAlgorithm(alg)
	if err != nil {
		return nil, nil, err
	}
	if a.Kind() != cm5.KindIrregular {
		s, err := cm5.Plan(cm5.NewJob(a, n, bytes, cm5.WithOffset(offset)))
		return s, nil, err
	}
	var p cm5.Pattern
	switch {
	case strings.EqualFold(patName, "P"):
		p = cm5.PaperPatternP(bytes)
	case patName == "":
		p = cm5.SyntheticPattern(n, density, bytes, seed)
	default:
		return nil, nil, fmt.Errorf("unknown pattern %q (use 'P' or empty for synthetic)", patName)
	}
	s, err := cm5.Plan(cm5.PatternJob(a, p, cm5.WithSeed(seed)))
	return s, p, err
}
