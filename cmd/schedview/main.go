// Command schedview prints communication schedules in the style of the
// paper's Tables 1-4 (regular algorithms) and 7-10 (irregular schedulers
// on a pattern).
//
// Usage:
//
//	schedview -alg pex -n 8              # regular: lex pex rex bex
//	schedview -alg gs -pattern P         # irregular on the paper's P
//	schedview -alg ps -n 16 -density 0.4 # irregular on a synthetic pattern
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fattree"
	"repro/internal/pattern"
	"repro/internal/sched"
)

func main() {
	alg := flag.String("alg", "pex", "algorithm: lex|pex|rex|bex|lib-like regular, or ls|ps|bs|gs irregular")
	n := flag.Int("n", 8, "processor count (power of two)")
	patName := flag.String("pattern", "", "irregular pattern: 'P' for the paper's Table 6 example")
	density := flag.Float64("density", 0.5, "density for synthetic irregular patterns")
	bytes := flag.Int("bytes", 1, "bytes per message")
	seed := flag.Int64("seed", 1, "seed for synthetic patterns")
	global := flag.Bool("global", false, "also print per-step top-of-tree crossing counts")
	flag.Parse()

	s, p, err := build(strings.ToUpper(*alg), *n, *patName, *density, *bytes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedview:", err)
		os.Exit(1)
	}
	if p != nil {
		fmt.Printf("Pattern (%d processors, %d messages, %.0f%% density):\n%s\n",
			p.N(), p.Messages(), 100*p.Density(), p)
	}
	fmt.Printf("%s schedule, %d steps, %d messages, %d bytes total:\n\n%s\n",
		s.Algorithm, s.NumSteps(), s.Messages(), s.TotalBytes(), s.Table())
	if *global {
		topo := fattree.MustNew(s.N)
		fmt.Printf("top-of-tree crossings per step: %v\n", s.GlobalExchangesPerStep(topo))
	}
}

func build(alg string, n int, patName string, density float64, bytes int, seed int64) (*sched.Schedule, pattern.Matrix, error) {
	switch alg {
	case "LEX":
		return sched.LEX(n, bytes), nil, nil
	case "PEX":
		return sched.PEX(n, bytes), nil, nil
	case "REX":
		return sched.REX(n, bytes), nil, nil
	case "BEX":
		return sched.BEX(n, bytes), nil, nil
	case "LS", "PS", "BS", "GS":
		var p pattern.Matrix
		switch {
		case strings.EqualFold(patName, "P"):
			p = pattern.PaperP(bytes)
		case patName == "":
			p = pattern.Synthetic(n, density, bytes, seed)
		default:
			return nil, nil, fmt.Errorf("unknown pattern %q (use 'P' or empty for synthetic)", patName)
		}
		s, err := sched.Irregular(alg, p)
		return s, p, err
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q", alg)
}
