package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Deliberately NOT in sorted order: the report must sort regardless of
// how `go test` interleaved the benchmark lines.
const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: whatever
BenchmarkTopology/torus2d/GS-8          	       2	   1523000 ns/op
BenchmarkTopology/fat-tree/LS-8         	       1	  52124875 ns/op	        13.45 sim_ms
BenchmarkFig5CompleteExchange32/LEX/0B-8	       1	   9000000 ns/op	        36.90 sim_ms
PASS
ok  	repro	1.234s
`

func TestRunParsesBenchOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.GoOS, rep.GoArch)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rep.Results))
	}
	// Sorted by benchmark name, not input order.
	wantOrder := []string{
		"BenchmarkFig5CompleteExchange32/LEX/0B",
		"BenchmarkTopology/fat-tree/LS",
		"BenchmarkTopology/torus2d/GS",
	}
	for i, want := range wantOrder {
		if rep.Results[i].Benchmark != want {
			t.Fatalf("result %d = %q, want %q (sorted)", i, rep.Results[i].Benchmark, want)
		}
	}
	ft := rep.Results[1]
	if ft.Topology != "fat-tree" || ft.Algorithm != "LS" {
		t.Errorf("topology/algorithm = %q/%q", ft.Topology, ft.Algorithm)
	}
	if ft.NsPerOp != 52124875 || ft.Iterations != 1 || ft.SimMs != 13.45 {
		t.Errorf("fat-tree result fields wrong: %+v", ft)
	}
	if rep.Results[2].SimMs != 0 {
		t.Errorf("missing sim_ms should stay zero, got %v", rep.Results[2].SimMs)
	}
	if rep.Results[0].Topology != "" {
		t.Errorf("non-topology benchmarks should not get a topology label: %+v", rep.Results[0])
	}
}

func TestRunOutputDeterministic(t *testing.T) {
	a := filepath.Join(t.TempDir(), "a.json")
	b := filepath.Join(t.TempDir(), "b.json")
	// Same lines, different interleaving: identical bytes out.
	shuffled := strings.Replace(sample,
		"BenchmarkTopology/torus2d/GS-8          \t       2\t   1523000 ns/op\nBenchmarkTopology/fat-tree/LS-8         \t       1\t  52124875 ns/op\t        13.45 sim_ms",
		"BenchmarkTopology/fat-tree/LS-8         \t       1\t  52124875 ns/op\t        13.45 sim_ms\nBenchmarkTopology/torus2d/GS-8          \t       2\t   1523000 ns/op", 1)
	if shuffled == sample {
		t.Fatal("test bug: shuffle did nothing")
	}
	if err := run(strings.NewReader(sample), a); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(shuffled), b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatalf("reordered input changed the report:\n%s\nvs\n%s", da, db)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("PASS\n"), ""); err == nil {
		t.Fatal("empty bench output should error")
	}
}
