package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: whatever
BenchmarkTopology/fat-tree/LS-8         	       1	  52124875 ns/op	        13.45 sim_ms
BenchmarkTopology/torus2d/GS-8          	       2	   1523000 ns/op
BenchmarkFig5CompleteExchange32/LEX/0B-8	       1	   9000000 ns/op	        36.90 sim_ms
PASS
ok  	repro	1.234s
`

func TestRunParsesBenchOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.GoOS, rep.GoArch)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rep.Results))
	}
	first := rep.Results[0]
	if first.Topology != "fat-tree" || first.Algorithm != "LS" {
		t.Errorf("topology/algorithm = %q/%q", first.Topology, first.Algorithm)
	}
	if first.NsPerOp != 52124875 || first.Iterations != 1 || first.SimMs != 13.45 {
		t.Errorf("first result fields wrong: %+v", first)
	}
	if rep.Results[1].SimMs != 0 {
		t.Errorf("missing sim_ms should stay zero, got %v", rep.Results[1].SimMs)
	}
	if rep.Results[2].Topology != "" {
		t.Errorf("non-topology benchmarks should not get a topology label: %+v", rep.Results[2])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("PASS\n"), ""); err == nil {
		t.Fatal("empty bench output should error")
	}
}
