// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark report. It understands the BenchmarkTopology/<topo>/<alg>
// naming of this repo's topology benchmarks and records ns/op per
// (topology, algorithm) cell; other benchmark lines pass through with
// the sub-benchmark path split on "/".
//
// Usage (what `make bench-json` runs):
//
//	go test -run '^$' -bench BenchmarkTopology -benchtime 1x . | benchjson -out BENCH_topo.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Benchmark  string  `json:"benchmark"`
	Topology   string  `json:"topology,omitempty"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	SimMs      float64 `json:"sim_ms,omitempty"`
}

// ReportSchema versions the report format so downstream consumers
// (cmd/expdiff, CI artifact diffs) can detect incompatible files.
const ReportSchema = "repro-bench/v1"

// Report is the file benchjson writes. Results are sorted by benchmark
// name, so reports are deterministic across runs and diff cleanly.
type Report struct {
	Schema  string   `json:"schema"`
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkTopology/fat-tree/BS-8   1   123456 ns/op   0.42 sim_ms
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) sim_ms)?`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath string) error {
	rep := Report{Schema: ReportSchema}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		r := Result{Benchmark: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			if r.SimMs, err = strconv.ParseFloat(m[4], 64); err != nil {
				return fmt.Errorf("bad sim_ms in %q: %w", line, err)
			}
		}
		// BenchmarkTopology/<topology>/<algorithm>: name the axes.
		if parts := strings.Split(m[1], "/"); len(parts) == 3 && parts[0] == "BenchmarkTopology" {
			r.Topology, r.Algorithm = parts[1], parts[2]
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (did the bench run fail?)")
	}
	// Deterministic order regardless of how `go test` interleaved the
	// benchmarks: sorted by name (names are unique per run).
	sort.Slice(rep.Results, func(i, j int) bool {
		return rep.Results[i].Benchmark < rep.Results[j].Benchmark
	})
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}
