// Command cmserve is the experiment-as-a-service daemon: a
// long-running HTTP server where clients POST a job specification —
// algorithm, workload, topology, machine size, seed — and receive the
// full simulated Result. Results are served straight from the
// content-addressed result store on a hash hit; misses simulate with
// single-flight coalescing, so any thundering herd of identical
// requests costs exactly one simulation.
//
// Usage:
//
//	cmserve [flags]
//	cmserve -oneshot spec.json   # run one spec offline, print the payload
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /v1/jobs          run one job spec, return its Result JSON
//	POST /v1/sweep         run experiment families, stream cells as NDJSON
//	GET  /v1/registry      every listable registry in one uniform shape
//	GET  /v1/registry/{kind}  one registry (algorithms, topologies,
//	                       workloads, faultprofiles, traces)
//	GET  /v1/algorithms    (alias) the typed registry's algorithms
//	GET  /v1/topologies    (alias) the interconnect families
//	GET  /v1/workloads     (alias) the scenario catalogue (+ "synthetic")
//	GET  /v1/traces        (alias) the recordable applications
//	GET  /v1/store/*       the attached store served over HTTP: objects,
//	                       index, and claim leases — point any number of
//	                       `cmexp -workers -store http://this-daemon` at
//	                       it and they share records and partition sweeps
//	GET  /v1/stats         hits, misses, coalesced, in-flight, queue depth
//	GET  /v1/metrics       the same counters (and more) as Prometheus text
//	GET  /healthz          liveness
//
// Flags:
//
//	-addr HOST:PORT  listen address (default :8127)
//	-store LOC       content-addressed result store shared with cmexp: a
//	                 directory (created if missing) or the URL of another
//	                 cmserve whose store this daemon should use (empty =
//	                 serve without a cache). With a directory attached the
//	                 /v1/store API serves it to remote workers.
//	-workers N       concurrent simulations (default: all CPUs)
//	-queue N         admission queue depth beyond the busy workers;
//	                 overflowing requests get 429 (default 64)
//	-timeout D       per-request deadline (default 2m; 0 disables)
//	-pprof HOST:PORT mount net/http/pprof on a separate debug listener
//	                 (empty = off). Kept off the service mux so profiling
//	                 is never exposed on the public address.
//	-oneshot FILE    do not serve: read one job spec (JSON; "-" =
//	                 stdin), run it, print the canonical payload to
//	                 stdout, exit. Byte-identical to the body a running
//	                 server returns for the same spec.
//
// The store directory is shared with cmexp: a sweep warmed by `cmexp
// -store DIR` serves the same cells without re-simulating, and job
// payloads written by the daemon survive restarts. Stop with SIGINT or
// SIGTERM; in-flight requests drain before exit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/network"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8127", "listen address")
		dir       = flag.String("store", "", "content-addressed result store: a directory or a cmserve URL (empty: no cache)")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = all CPUs)")
		queue     = flag.Int("queue", 64, "admission queue depth beyond the busy workers")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request deadline (0 disables)")
		pprofAddr = flag.String("pprof", "", "mount net/http/pprof on this separate debug address (empty: off)")
		oneshot   = flag.String("oneshot", "", "run one job spec from this file (\"-\" = stdin) and exit")
	)
	flag.Parse()
	if err := run(*addr, *dir, *workers, *queue, *timeout, *pprofAddr, *oneshot); err != nil {
		fmt.Fprintf(os.Stderr, "cmserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers, queue int, timeout time.Duration, pprofAddr, oneshot string) error {
	cfg := network.DefaultConfig()
	if oneshot != "" {
		return runOneshot(oneshot, cfg)
	}

	if pprofAddr != "" {
		// The profiler gets its own mux on its own listener: the service
		// address never exposes /debug/pprof, and the debug server's
		// lifetime is simply the process's.
		go func() {
			dbg := http.NewServeMux()
			dbg.HandleFunc("/debug/pprof/", pprof.Index)
			dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Fprintf(os.Stderr, "cmserve: pprof on http://%s/debug/pprof/\n", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, dbg); err != nil {
				fmt.Fprintf(os.Stderr, "cmserve: pprof listener: %v\n", err)
			}
		}()
	}

	var st store.Backend
	if dir != "" {
		var err error
		if st, err = store.OpenBackend(dir); err != nil {
			return err
		}
	}
	opts := []serve.Option{serve.WithQueueDepth(queue), serve.WithTimeout(timeout)}
	if workers > 0 {
		opts = append(opts, serve.WithWorkers(workers))
	}
	srv := serve.New(cfg, st, opts...)

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if dir != "" {
			fmt.Fprintf(os.Stderr, "cmserve: listening on %s (store %s, %d records)\n",
				addr, dir, st.Len())
		} else {
			fmt.Fprintf(os.Stderr, "cmserve: listening on %s (no store: every miss simulates)\n", addr)
		}
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cmserve: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	return nil
}

// runOneshot runs one job spec through the exact serving path —
// validation, hashing, simulation, canonical encoding — without a
// server or a store, and prints the payload bytes a daemon would
// respond with.
func runOneshot(path string, cfg network.Config) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var js serve.JobSpec
	if err := dec.Decode(&js); err != nil {
		return fmt.Errorf("bad job spec: %w", err)
	}
	payload, err := serve.RunOne(js, cfg)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(payload)
	return err
}
