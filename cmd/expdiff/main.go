// Command expdiff compares two experiment-result snapshots and exits
// non-zero when the new one regressed. It understands two inputs:
//
//   - two benchjson reports (BENCH_topo.json files): per-benchmark
//     ns/op deltas gated by -threshold (host performance), and sim_ms
//     drift gated by -sim-threshold (the simulation is deterministic,
//     so sim drift means the model's answers changed);
//   - two result-store directories (cmexp -store): per-cell drift of
//     every stored table value, gated by -sim-threshold.
//
// CI runs the bench form against the latest main artifact so max-min
// solver or sim-engine slowdowns fail the PR instead of landing
// silently; the store form answers "did any simulated number move
// between these two sweeps, and by how much".
//
// Usage:
//
//	expdiff [-threshold 25%] [-sim-threshold 0.1%] OLD NEW
//
// OLD and NEW must both be report files or both be store directories.
// Exit status: 0 when everything is within threshold, 1 on regression
// or drift, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
)

func main() {
	threshold := flag.String("threshold", "25%", "max allowed ns/op slowdown (percent, or 'none' to disable; bench reports only)")
	simThreshold := flag.String("sim-threshold", "0.1%", "max allowed simulated-result drift (percent, or 'none' to disable)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: expdiff [-threshold 25%] [-sim-threshold 0.1%] OLD NEW")
		os.Exit(2)
	}
	th, err := parsePercent(*threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expdiff:", err)
		os.Exit(2)
	}
	sth, err := parsePercent(*simThreshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expdiff:", err)
		os.Exit(2)
	}
	regressions, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), th, sth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}

// parsePercent accepts "25", "25%", "0.5%", and "none" (disable this
// gate — used by CI to run the ns/op and sim gates against different
// baselines).
func parsePercent(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "none") {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 || math.IsNaN(v) {
		return 0, fmt.Errorf("bad percentage %q (want e.g. 25%%, 0.5%%, or none)", s)
	}
	return v, nil
}

// run compares old and new and returns how many gated regressions it
// found (0 = pass). Usage-level problems (unreadable inputs, mixed
// kinds) return an error instead.
func run(w io.Writer, oldPath, newPath string, threshold, simThreshold float64) (int, error) {
	oldDir, err := isDir(oldPath)
	if err != nil {
		return 0, err
	}
	newDir, err := isDir(newPath)
	if err != nil {
		return 0, err
	}
	if oldDir != newDir {
		return 0, fmt.Errorf("cannot compare a store directory with a report file (%s vs %s)", oldPath, newPath)
	}
	if oldDir {
		return diffStores(w, oldPath, newPath, simThreshold)
	}
	return diffBench(w, oldPath, newPath, threshold, simThreshold)
}

func isDir(path string) (bool, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return false, err
	}
	return fi.IsDir(), nil
}

// benchResult mirrors cmd/benchjson's Result; schemaless pre-v1 files
// decode fine (unknown fields ignored, missing schema tolerated).
type benchResult struct {
	Benchmark string  `json:"benchmark"`
	NsPerOp   float64 `json:"ns_per_op"`
	SimMs     float64 `json:"sim_ms"`
}

type benchReport struct {
	Schema  string        `json:"schema"`
	Results []benchResult `json:"results"`
}

func loadBench(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	out := make(map[string]benchResult, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Benchmark] = r
	}
	return out, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old * 100
}

func diffBench(w io.Writer, oldPath, newPath string, threshold, simThreshold float64) (int, error) {
	oldRes, err := loadBench(oldPath)
	if err != nil {
		return 0, err
	}
	newRes, err := loadBench(newPath)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(oldRes))
	for n := range oldRes {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "expdiff: %s -> %s (ns/op gate %.4g%%, sim gate %.4g%%)\n",
		oldPath, newPath, threshold, simThreshold)
	regressions, drifts, missing := 0, 0, 0
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			// A vanished benchmark can hide a regression: gate it.
			fmt.Fprintf(w, "  MISSING  %s: present in %s, absent in %s\n", name, oldPath, newPath)
			missing++
			continue
		}
		nsDelta := pct(o.NsPerOp, n.NsPerOp)
		verdict := ""
		if nsDelta > threshold {
			verdict = fmt.Sprintf("  REGRESSION (> %.4g%%)", threshold)
			regressions++
		}
		fmt.Fprintf(w, "  %-55s ns/op %12.0f -> %12.0f  %+7.1f%%%s\n",
			name, o.NsPerOp, n.NsPerOp, nsDelta, verdict)
		if simDelta := math.Abs(pct(o.SimMs, n.SimMs)); simDelta > simThreshold {
			fmt.Fprintf(w, "  SIM DRIFT %s: sim_ms %.4g -> %.4g (%+.2f%%) — simulated results changed\n",
				name, o.SimMs, n.SimMs, pct(o.SimMs, n.SimMs))
			drifts++
		}
	}
	added := 0
	for n := range newRes {
		if _, ok := oldRes[n]; !ok {
			fmt.Fprintf(w, "  new benchmark %s (no baseline)\n", n)
			added++
		}
	}
	total := regressions + drifts + missing
	fmt.Fprintf(w, "expdiff: %d ns/op regressions, %d sim drifts, %d missing, %d new, %d compared\n",
		regressions, drifts, missing, added, len(names)-missing)
	return total, nil
}

// diffStores compares every stored cell's table writes and named
// scalars between two cmexp result stores.
func diffStores(w io.Writer, oldPath, newPath string, simThreshold float64) (int, error) {
	oldRecs, err := loadStore(oldPath)
	if err != nil {
		return 0, err
	}
	newRecs, err := loadStore(newPath)
	if err != nil {
		return 0, err
	}
	cells := make([]string, 0, len(oldRecs))
	for c := range oldRecs {
		cells = append(cells, c)
	}
	sort.Strings(cells)

	fmt.Fprintf(w, "expdiff: store %s -> %s (sim gate %.4g%%)\n", oldPath, newPath, simThreshold)
	drifts, missing, identical := 0, 0, 0
	for _, cell := range cells {
		o := oldRecs[cell]
		n, ok := newRecs[cell]
		if !ok {
			fmt.Fprintf(w, "  MISSING  %s: not in %s\n", cell, newPath)
			missing++
			continue
		}
		if diff := diffRecord(o, n, simThreshold); diff != "" {
			fmt.Fprintf(w, "  DRIFT    %s: %s\n", cell, diff)
			drifts++
		} else {
			identical++
		}
	}
	added := 0
	for c := range newRecs {
		if _, ok := oldRecs[c]; !ok {
			added++
		}
	}
	fmt.Fprintf(w, "expdiff: %d cells drifted, %d missing, %d new, %d identical\n",
		drifts, missing, added, identical)
	return drifts + missing, nil
}

func loadStore(dir string) (map[string]*store.Record, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	recs, err := st.All()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: empty result store", dir)
	}
	out := make(map[string]*store.Record, len(recs))
	for _, r := range recs {
		out[r.Cell] = r
	}
	return out, nil
}

// diffRecord describes the first difference between two records of the
// same cell, or "" when they agree within the threshold. Numeric
// values compare by percent drift; non-numeric strings exactly.
func diffRecord(o, n *store.Record, simThreshold float64) string {
	if len(o.Writes) != len(n.Writes) {
		return fmt.Sprintf("%d writes -> %d writes", len(o.Writes), len(n.Writes))
	}
	for i, ow := range o.Writes {
		nw := n.Writes[i]
		if ow.Row != nw.Row || ow.Col != nw.Col {
			return fmt.Sprintf("write %d moved (%d,%d) -> (%d,%d)", i, ow.Row, ow.Col, nw.Row, nw.Col)
		}
		if ow.Val == nw.Val {
			continue
		}
		ov, oerr := strconv.ParseFloat(ow.Val, 64)
		nv, nerr := strconv.ParseFloat(nw.Val, 64)
		if oerr == nil && nerr == nil {
			if d := math.Abs(pct(ov, nv)); d > simThreshold {
				return fmt.Sprintf("(%d,%d) %s -> %s (%+.2f%%)", ow.Row, ow.Col, ow.Val, nw.Val, pct(ov, nv))
			}
			continue
		}
		return fmt.Sprintf("(%d,%d) %q -> %q", ow.Row, ow.Col, ow.Val, nw.Val)
	}
	// Sorted names: identical inputs must produce identical report text.
	names := make([]string, 0, len(o.Values))
	for name := range o.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ov := o.Values[name]
		nv, ok := n.Values[name]
		if !ok {
			return fmt.Sprintf("scalar %s vanished", name)
		}
		if d := math.Abs(pct(ov, nv)); d > simThreshold {
			return fmt.Sprintf("scalar %s %.6g -> %.6g (%+.2f%%)", name, ov, nv, pct(ov, nv))
		}
	}
	return ""
}
