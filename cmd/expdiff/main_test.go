package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/store"
)

func writeBench(t *testing.T, path string, results []benchResult) {
	t.Helper()
	data, err := json.Marshal(benchReport{Schema: "repro-bench/v1", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func baselineBench() []benchResult {
	return []benchResult{
		{Benchmark: "BenchmarkTopology/fat-tree/BS", NsPerOp: 1000000, SimMs: 2.936},
		{Benchmark: "BenchmarkTopology/fat-tree/GS", NsPerOp: 2000000, SimMs: 1.5},
		{Benchmark: "BenchmarkTopology/torus2d/LS", NsPerOp: 3000000, SimMs: 13.45},
	}
}

func TestBenchWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBench(t, oldP, baselineBench())
	moved := baselineBench()
	moved[0].NsPerOp *= 1.10 // +10% < 25%
	moved[1].NsPerOp *= 0.5  // improvements never gate
	writeBench(t, newP, moved)
	var sb strings.Builder
	n, err := run(&sb, oldP, newP, 25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("within-threshold diff reported %d regressions:\n%s", n, sb.String())
	}
}

// TestBenchInjectedRegressionFails is the CI gate's contract: an
// injected ns/op slowdown beyond the threshold must produce a non-zero
// regression count (and thus exit 1).
func TestBenchInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBench(t, oldP, baselineBench())
	slow := baselineBench()
	slow[2].NsPerOp *= 1.60 // +60% > 25%
	writeBench(t, newP, slow)
	var sb strings.Builder
	n, err := run(&sb, oldP, newP, 25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("injected +60%% regression: got %d regressions, want 1\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "torus2d/LS") {
		t.Fatalf("report does not name the regression:\n%s", sb.String())
	}
}

func TestBenchSimDriftGates(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBench(t, oldP, baselineBench())
	drifted := baselineBench()
	drifted[0].SimMs = 3.5 // ~19% drift: the simulation's answer changed
	writeBench(t, newP, drifted)
	var sb strings.Builder
	n, err := run(&sb, oldP, newP, 25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(sb.String(), "SIM DRIFT") {
		t.Fatalf("sim drift not gated (n=%d):\n%s", n, sb.String())
	}
}

func TestBenchMissingBenchmarkGates(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBench(t, oldP, baselineBench())
	writeBench(t, newP, baselineBench()[:2])
	var sb strings.Builder
	n, err := run(&sb, oldP, newP, 25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(sb.String(), "MISSING") {
		t.Fatalf("vanished benchmark not gated (n=%d):\n%s", n, sb.String())
	}
}

func TestParsePercent(t *testing.T) {
	for in, want := range map[string]float64{"25%": 25, "25": 25, "0.5%": 0.5, " 10% ": 10} {
		got, err := parsePercent(in)
		if err != nil || got != want {
			t.Fatalf("parsePercent(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "x%", "-3%"} {
		if _, err := parsePercent(bad); err == nil {
			t.Fatalf("parsePercent(%q) should fail", bad)
		}
	}
	v, err := parsePercent("none")
	if err != nil || !math.IsInf(v, 1) {
		t.Fatalf("parsePercent(none) = %v, %v, want +Inf", v, err)
	}
}

// TestDisabledGates: "none" must let CI gate ns/op and sim drift
// against different baselines without the other dimension interfering.
func TestDisabledGates(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBench(t, oldP, baselineBench())
	changed := baselineBench()
	changed[0].NsPerOp *= 10 // massive slowdown
	changed[1].SimMs *= 2    // massive sim drift
	writeBench(t, newP, changed)

	var sb strings.Builder
	n, err := run(&sb, oldP, newP, math.Inf(1), 0.1) // ns gate off
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("with -threshold none only the sim drift should gate (n=%d):\n%s", n, sb.String())
	}
	sb.Reset()
	n, err = run(&sb, oldP, newP, 25, math.Inf(1)) // sim gate off
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || strings.Contains(sb.String(), "SIM DRIFT") {
		t.Fatalf("with -sim-threshold none only the ns/op regression should gate (n=%d):\n%s", n, sb.String())
	}
}

func TestMixedKindsRejected(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.json")
	writeBench(t, file, baselineBench())
	if _, err := run(io.Discard, dir, file, 25, 0.1); err == nil {
		t.Fatal("store-vs-file comparison should be a usage error")
	}
}

// sweepStore runs a real (cheap) experiment family into a fresh store.
func sweepStore(t *testing.T, dir string, seed int64) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := exp.NewRunner(2)
	r.Store = st
	r.StoreBase = exp.StoreBase(network.DefaultConfig())
	r.Seed = seed
	if err := r.Run(context.Background(), exp.AblationAsyncSpec(network.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDiffIdenticalPasses(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	sweepStore(t, a, 0)
	sweepStore(t, b, 0)
	var sb strings.Builder
	n, err := run(&sb, a, b, 25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !strings.Contains(sb.String(), "16 identical") {
		t.Fatalf("identical sweeps should pass (n=%d):\n%s", n, sb.String())
	}
}

func TestStoreDiffDetectsDrift(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	sweepStore(t, a, 0)
	sweepStore(t, b, 0)
	// Inject drift: rewrite one stored record of b with a perturbed
	// table value (what a silent solver change would produce).
	st, err := store.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	victim := recs[3]
	victim.Writes[0].Val = fmt.Sprintf("%.3f", 999.999)
	if err := st.Put(victim); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	n, err := run(&sb, a, b, 25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(sb.String(), "DRIFT") || !strings.Contains(sb.String(), victim.Cell) {
		t.Fatalf("injected drift not reported (n=%d):\n%s", n, sb.String())
	}
}
