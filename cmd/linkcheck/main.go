// Command linkcheck verifies intra-repository markdown links: every
// relative link target in every *.md file must exist on disk. External
// links (http/https/mailto), pure anchors, and links that resolve
// outside the repository root (GitHub-relative tricks like CI badge
// paths) are skipped. Exit status 1 with one line per broken link.
//
// Usage:
//
//	linkcheck [root]
//
// root defaults to the current directory.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches the target of inline markdown links: [text](target).
var linkRE = regexp.MustCompile(`\]\(([^()\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	broken := 0
	checked := 0
	err = filepath.WalkDir(absRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".github" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(absRoot, path)
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(path), target)
			if !strings.HasPrefix(resolved, absRoot+string(filepath.Separator)) {
				continue // escapes the repo (e.g. GitHub badge paths)
			}
			checked++
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: broken link %q\n", rel, m[1])
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	fmt.Printf("linkcheck: %d intra-repo links checked, %d broken\n", checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}
