package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// The simulator is fully deterministic, so cmtrace's reports are too:
// each case must match its golden file byte for byte. The per-level
// fat-tree utilization table is fed from Result.LevelUtilization, the
// -steps table from Result.StepTimes, and the -nodes table from
// Result.Trace.
func TestGolden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"pex_n16_256.golden", []string{"-alg", "pex", "-n", "16", "-bytes", "256"}},
		{"bex_n16_1024_steps.golden", []string{"-alg", "bex", "-n", "16", "-bytes", "1024", "-steps"}},
		{"gs_hotspot_n16.golden", []string{"-alg", "gs", "-n", "16", "-pattern", "hotspot", "-bytes", "256", "-nodes"}},
		{"bs_bisection_n16_dragonfly.golden", []string{"-alg", "bs", "-n", "16", "-pattern", "bisection",
			"-bytes", "256", "-topo", "dragonfly", "-links"}},
		{"pex_n16_torus2d_links.golden", []string{"-alg", "pex", "-n", "16", "-bytes", "256",
			"-topo", "torus2d", "-links"}},
		{"record_fft_n4_s8.golden", []string{"-record", "fft", "-n", "4", "-size", "8"}},
		{"replay_cg_n8_s64_bs.golden", []string{"-replay", "cg", "-n", "8", "-size", "64",
			"-alg", "bs", "-nodes"}},
		{"replay_euler_n8_gs.golden", []string{"-replay", "euler", "-n", "8", "-alg", "gs"}},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(c.args, &out); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.golden)
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update to regenerate):\ngot:\n%s\nwant:\n%s",
					path, out.Bytes(), want)
			}
		})
	}
}

func TestUnknownAlgorithmListsRegistry(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "bogus"}, &out)
	if err == nil {
		t.Fatal("unknown algorithm should error")
	}
	for _, name := range []string{"LEX", "GS", "allgather"} {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("error should list registry name %s: %v", name, err)
		}
	}
}

func TestUnknownTopologyListsNames(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "pex", "-topo", "moebius"}, &out)
	if err == nil {
		t.Fatal("unknown topology should error")
	}
	for _, name := range []string{"fat-tree", "torus2d", "hypercube", "dragonfly"} {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("error should list topology name %s: %v", name, err)
		}
	}
}

// A trace recorded to a file replays identically to recording the same
// app on the fly: the file round-trip (Encode, Decode) is lossless.
func TestReplayFileMatchesReplayApp(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "cg.trace")
	var recOut bytes.Buffer
	if err := run([]string{"-record", "cg", "-n", "8", "-size", "64", "-out", file}, &recOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(recOut.Bytes(), []byte("recorded cg: size 64, 8 nodes, seed 1 -> ")) {
		t.Errorf("unexpected -record summary: %s", recOut.Bytes())
	}
	var fromFile, fromApp bytes.Buffer
	if err := run([]string{"-replay", file, "-alg", "bs"}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-replay", "cg", "-n", "8", "-size", "64", "-alg", "bs"}, &fromApp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.Bytes(), fromApp.Bytes()) {
		t.Errorf("file replay differs from on-the-fly replay:\nfile:\n%s\napp:\n%s",
			fromFile.Bytes(), fromApp.Bytes())
	}
}

func TestUnknownTraceAppListsNames(t *testing.T) {
	for _, args := range [][]string{
		{"-record", "bogus"},
		{"-replay", "bogus", "-alg", "bs"},
	} {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil {
			t.Fatalf("%v: unknown app should error", args)
		}
		for _, name := range []string{"cg", "fft", "euler"} {
			if !bytes.Contains([]byte(err.Error()), []byte(name)) {
				t.Errorf("%v: error should list app name %s: %v", args, name, err)
			}
		}
	}
}

func TestReplayNeedsIrregularScheduler(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-replay", "cg", "-alg", "pex"}, &out)
	if err == nil {
		t.Fatal("replay with a regular algorithm should error")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("irregular scheduler")) {
		t.Errorf("error should explain the irregular-scheduler requirement: %v", err)
	}
}

func TestUnknownPatternListsWorkloads(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "gs", "-pattern", "bogus"}, &out)
	if err == nil {
		t.Fatal("unknown workload should error")
	}
	for _, name := range []string{"transpose", "hotspot", "bisection"} {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("error should list workload name %s: %v", name, err)
		}
	}
}
