package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// The simulator is fully deterministic, so cmtrace's reports are too:
// each case must match its golden file byte for byte. The per-level
// fat-tree utilization table is fed from Result.LevelUtilization, the
// -steps table from Result.StepTimes, and the -nodes table from
// Result.Trace.
func TestGolden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"pex_n16_256.golden", []string{"-alg", "pex", "-n", "16", "-bytes", "256"}},
		{"bex_n16_1024_steps.golden", []string{"-alg", "bex", "-n", "16", "-bytes", "1024", "-steps"}},
		{"gs_hotspot_n16.golden", []string{"-alg", "gs", "-n", "16", "-pattern", "hotspot", "-bytes", "256", "-nodes"}},
		{"bs_bisection_n16_dragonfly.golden", []string{"-alg", "bs", "-n", "16", "-pattern", "bisection",
			"-bytes", "256", "-topo", "dragonfly", "-links"}},
		{"pex_n16_torus2d_links.golden", []string{"-alg", "pex", "-n", "16", "-bytes", "256",
			"-topo", "torus2d", "-links"}},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(c.args, &out); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.golden)
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update to regenerate):\ngot:\n%s\nwant:\n%s",
					path, out.Bytes(), want)
			}
		})
	}
}

func TestUnknownAlgorithmListsRegistry(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "bogus"}, &out)
	if err == nil {
		t.Fatal("unknown algorithm should error")
	}
	for _, name := range []string{"LEX", "GS", "allgather"} {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("error should list registry name %s: %v", name, err)
		}
	}
}

func TestUnknownTopologyListsNames(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "pex", "-topo", "moebius"}, &out)
	if err == nil {
		t.Fatal("unknown topology should error")
	}
	for _, name := range []string{"fat-tree", "torus2d", "hypercube", "dragonfly"} {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("error should list topology name %s: %v", name, err)
		}
	}
}

func TestUnknownPatternListsWorkloads(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "gs", "-pattern", "bogus"}, &out)
	if err == nil {
		t.Fatal("unknown workload should error")
	}
	for _, name := range []string{"transpose", "hotspot", "bisection"} {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("error should list workload name %s: %v", name, err)
		}
	}
}
