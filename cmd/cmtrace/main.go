// Command cmtrace runs one complete-exchange or irregular schedule with
// message tracing enabled and reports where the time went: per-node
// rendezvous waiting and per-level fat-tree utilization. This is the
// diagnostic view behind the paper's scheduling arguments — LEX's wait
// explosion and PEX's bursty use of the thinned upper tree are directly
// visible.
//
// Usage:
//
//	cmtrace -alg lex -n 32 -bytes 256
//	cmtrace -alg gs -n 32 -density 0.25 -bytes 256
//	cmtrace -alg gs -n 64 -pattern hotspot -nodes
//
// With -pattern, the irregular schedulers trace a workload from the
// scenario catalogue (transpose, butterfly, hotspot, permutation,
// stencil2d, stencil3d, bisection) instead of a synthetic random
// pattern. -nodes appends the per-node rendezvous wait table.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
)

func main() {
	alg := flag.String("alg", "pex", "lex|pex|bex (regular) or ls|ps|bs|gs (irregular)")
	n := flag.Int("n", 32, "processor count (power of two)")
	bytes := flag.Int("bytes", 256, "bytes per message")
	density := flag.Float64("density", 0.5, "density for irregular patterns")
	seed := flag.Int64("seed", 1, "pattern seed")
	workload := flag.String("pattern", "", "catalogue workload for the irregular schedulers "+
		"(transpose|butterfly|hotspot|permutation|stencil2d|stencil3d|bisection); empty = synthetic")
	perNode := flag.Bool("nodes", false, "print the per-node wait table")
	flag.Parse()

	var s *sched.Schedule
	switch strings.ToUpper(*alg) {
	case "LEX":
		s = sched.LEX(*n, *bytes)
	case "PEX":
		s = sched.PEX(*n, *bytes)
	case "BEX":
		s = sched.BEX(*n, *bytes)
	case "LS", "PS", "BS", "GS":
		var p pattern.Matrix
		if *workload != "" {
			w, ok := pattern.WorkloadByName(*workload)
			if !ok {
				fmt.Fprintf(os.Stderr, "cmtrace: unknown workload %q (have %s)\n",
					*workload, strings.Join(pattern.WorkloadNames(), " "))
				os.Exit(1)
			}
			if *n < 2 || *n&(*n-1) != 0 {
				fmt.Fprintf(os.Stderr, "cmtrace: -n %d must be a power of two >= 2\n", *n)
				os.Exit(1)
			}
			p = w.Gen(*n, *bytes, *seed)
		} else {
			p = pattern.Synthetic(*n, *density, *bytes, *seed)
		}
		var err error
		s, err = sched.Irregular(strings.ToUpper(*alg), p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmtrace:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "cmtrace: unknown algorithm", *alg)
		os.Exit(1)
	}

	cfg := network.DefaultConfig()
	m, err := cmmd.NewMachine(*n, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmtrace:", err)
		os.Exit(1)
	}
	m.EnableTrace()
	elapsed, err := sched.RunOn(m, s, sched.DataHooks{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmtrace:", err)
		os.Exit(1)
	}

	tr := m.Trace()
	fmt.Printf("%s on %d nodes: %d steps, %d messages, makespan %.3f ms\n",
		s.Algorithm, *n, s.NumSteps(), len(tr.Events), elapsed.Millis())
	fmt.Printf("total rendezvous wait: %.3f ms (%.1f ms per node average)\n",
		tr.TotalWait().Millis(), tr.TotalWait().Millis()/float64(*n))

	util := m.Net().LevelUtilization(elapsed)
	var levels []int
	for l := range util {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	fmt.Println("\nfat-tree utilization by level (fraction of level capacity x makespan):")
	for _, l := range levels {
		name := fmt.Sprintf("level %d", l)
		if l == 0 {
			name = "node links"
		}
		fmt.Printf("  %-10s  %5.1f%%\n", name, 100*util[l])
	}
	if *perNode {
		fmt.Println()
		fmt.Print(tr.Summary(*n))
	}
}
