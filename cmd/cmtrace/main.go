// Command cmtrace runs one algorithm from the cm5 registry with message
// tracing enabled and reports where the time went: per-node rendezvous
// waiting, per-step completion times, and per-level fat-tree
// utilization. This is the diagnostic view behind the paper's
// scheduling arguments — LEX's wait explosion and PEX's bursty use of
// the thinned upper tree are directly visible.
//
// Usage:
//
//	cmtrace -alg lex -n 32 -bytes 256
//	cmtrace -alg gs -n 32 -density 0.25 -bytes 256
//	cmtrace -alg gs -n 64 -pattern hotspot -nodes
//	cmtrace -alg bex -n 32 -bytes 1024 -steps
//	cmtrace -alg bs -n 64 -pattern bisection -topo dragonfly -links
//	cmtrace -record cg -n 16 -out cg16.trace
//	cmtrace -replay cg16.trace -alg bs -nodes
//	cmtrace -replay euler -n 8 -alg gs
//
// -alg accepts any registered algorithm name (see cm5.Algorithms):
// exchanges and broadcasts take -n and -bytes, the irregular schedulers
// trace either a synthetic pattern (-density, -seed) or a catalogue
// workload (-pattern), and the collectives take -bytes per block.
// -topo runs the data network over any named topology from
// cm5.Topologies (fat-tree, tapered, torus2d, torus3d, hypercube,
// dragonfly) instead of the default CM-5 fat tree.
// -steps appends the per-step completion table (schedule-backed
// algorithms only); -nodes appends the per-node rendezvous wait table;
// -links appends the busiest-links table from Result.LinkUtilization.
//
// -record APP runs one of the bundled applications (cg, fft, euler —
// see cm5.Traces) for real on -n simulated nodes and writes its
// recorded communication as a canonical trace file (-out FILE, default
// stdout) instead of tracing a scheduler. -replay FILE|APP loads a
// trace file (or records the named app on the fly) and replays its
// collapsed traffic matrix as the workload of an irregular -alg — the
// same diagnostic report, driven by a real application's communication.
//
// -timeline FILE additionally records the run's sim-time timeline —
// message rendezvous waits and wire transfers, flow lifetimes,
// scheduler steps and phases, fault events — and writes it as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing. Sim time
// is deterministic, so the file is byte-identical across runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/cm5"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cmtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cmtrace", flag.ContinueOnError)
	alg := fs.String("alg", "pex", "any registered algorithm (lex|pex|rex|bex, lib|reb|sys, ls|ps|bs|gs, collectives)")
	n := fs.Int("n", 32, "processor count (power of two)")
	bytes := fs.Int("bytes", 256, "bytes per message")
	density := fs.Float64("density", 0.5, "density for irregular patterns")
	offset := fs.Int("offset", 1, "offset for the shift algorithm")
	seed := fs.Int64("seed", 1, "pattern seed")
	workload := fs.String("pattern", "", "catalogue workload for the irregular schedulers "+
		"(transpose|butterfly|hotspot|permutation|stencil2d|stencil3d|bisection); empty = synthetic")
	topoName := fs.String("topo", "", "data-network topology "+
		"(fat-tree|tapered|torus2d|torus3d|hypercube|dragonfly); empty = the CM-5 fat tree")
	perStep := fs.Bool("steps", false, "print the per-step completion table")
	perNode := fs.Bool("nodes", false, "print the per-node wait table")
	perLink := fs.Bool("links", false, "print the busiest-links table")
	record := fs.String("record", "", "record a bundled application's communication as a trace "+
		"(cg|fft|euler) instead of tracing a scheduler; see -out, -size")
	replay := fs.String("replay", "", "replay a trace file (or record the named app on the fly) "+
		"as the workload of an irregular -alg")
	size := fs.Int("size", 0, "problem size for -record/-replay recordings (0 = the app's default)")
	outFile := fs.String("out", "", "write the -record trace to this file (default: stdout)")
	timelineFile := fs.String("timeline", "", "write the run's sim-time timeline as Chrome trace-event JSON to this file (open in Perfetto)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *record != "" && *replay != "" {
		return fmt.Errorf("-record and -replay are mutually exclusive")
	}
	if *record != "" {
		return recordTrace(out, *record, *size, *n, *seed, *outFile)
	}

	a, err := cm5.LookupAlgorithm(*alg)
	if err != nil {
		return err
	}

	// -replay loads (or records) its trace before the topology is built:
	// the machine size comes from the trace, not -n.
	var replayTrace *cm5.AppTrace
	if *replay != "" {
		if a.Kind() != cm5.KindIrregular {
			return fmt.Errorf("-replay needs an irregular scheduler for -alg (ls|ps|bs|gs|gsr|crystal), not %s", a.Name())
		}
		if replayTrace, err = loadTrace(*replay, *size, *n, *seed); err != nil {
			return err
		}
		*n = replayTrace.Procs
	}

	var opts []cm5.JobOption
	topoLabel := "fat-tree"
	if *topoName != "" {
		tp, err := cm5.NewTopology(*topoName, *n)
		if err != nil {
			return err
		}
		topoLabel = tp.Name()
		opts = append(opts, cm5.WithTopology(tp))
	}

	var job cm5.Job
	switch {
	case replayTrace != nil:
		fmt.Fprintf(out, "replaying %s trace: size %d, %d nodes, seed %d, %d recorded events, %d bytes\n",
			replayTrace.App, replayTrace.Size, replayTrace.Procs, replayTrace.Seed,
			len(replayTrace.Events), replayTrace.TotalBytes())
		job = cm5.NewJob(a, 0, 0, append(opts,
			cm5.WithTraceWorkload(replayTrace), cm5.WithTrace(), cm5.WithSeed(*seed))...)
	case a.Kind() == cm5.KindIrregular:
		var p cm5.Pattern
		if *workload != "" {
			p, err = cm5.WorkloadPattern(*workload, *n, *bytes, *seed)
			if err != nil {
				return err
			}
		} else {
			p = cm5.SyntheticPattern(*n, *density, *bytes, *seed)
		}
		job = cm5.PatternJob(a, p, append(opts, cm5.WithTrace(), cm5.WithSeed(*seed))...)
	default:
		job = cm5.NewJob(a, *n, *bytes, append(opts, cm5.WithTrace(), cm5.WithOffset(*offset))...)
	}

	if *timelineFile != "" {
		job = job.With(cm5.WithTimeline(nil))
	}

	res, err := cm5.Run(job)
	if err != nil {
		return err
	}

	if *timelineFile != "" {
		if err := res.Timeline.WriteFile(*timelineFile); err != nil {
			return err
		}
		spans, instants := res.Timeline.Len()
		fmt.Fprintf(out, "timeline: %d spans, %d instants -> %s\n", spans, instants, *timelineFile)
	}

	fmt.Fprintf(out, "%s on %d nodes: %d steps, %d messages, makespan %.3f ms\n",
		res.Algorithm.Name(), *n, res.Steps, len(res.Trace.Events), res.Elapsed.Millis())
	fmt.Fprintf(out, "total rendezvous wait: %.3f ms (%.1f ms per node average)\n",
		res.Trace.TotalWait().Millis(), res.Trace.TotalWait().Millis()/float64(*n))

	printLevelUtilization(out, res, topoLabel)
	if *perStep {
		printStepTimes(out, res)
	}
	if *perLink {
		printLinkUtilization(out, res)
	}
	if *perNode {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.Trace.Summary(*n))
	}
	return nil
}

// recordTrace implements -record: run the application, write the
// canonical trace (stdout when outFile is empty), report where it went.
func recordTrace(out io.Writer, app string, size, nprocs int, seed int64, outFile string) error {
	tr, err := cm5.RecordTrace(app, size, nprocs, seed, cm5.DefaultConfig())
	if err != nil {
		return err
	}
	data, err := tr.Encode()
	if err != nil {
		return err
	}
	if outFile == "" {
		_, err := out.Write(data)
		return err
	}
	if err := os.WriteFile(outFile, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %s: size %d, %d nodes, seed %d -> %s (%d events, %d bytes, span %.3f ms)\n",
		tr.App, tr.Size, tr.Procs, tr.Seed, outFile, len(tr.Events), tr.TotalBytes(), tr.Span().Millis())
	return nil
}

// loadTrace resolves a -replay argument: an existing file parses as a
// canonical trace; anything else records the named bundled app on the
// fly (so an app-name miss lists the known names).
func loadTrace(arg string, size, nprocs int, seed int64) (*cm5.AppTrace, error) {
	if data, err := os.ReadFile(arg); err == nil {
		tr, derr := cm5.DecodeTrace(data)
		if derr != nil {
			return nil, fmt.Errorf("%s: %w", arg, derr)
		}
		return tr, nil
	}
	return cm5.RecordTrace(arg, size, nprocs, seed, cm5.DefaultConfig())
}

// printLevelUtilization renders Result.LevelUtilization as the
// per-level topology table.
func printLevelUtilization(out io.Writer, res cm5.Result, topoLabel string) {
	var levels []int
	for l := range res.LevelUtilization {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	fmt.Fprintf(out, "\n%s utilization by level (fraction of level capacity x makespan):\n", topoLabel)
	for _, l := range levels {
		name := fmt.Sprintf("level %d", l)
		if l == 0 {
			name = "node links"
		}
		fmt.Fprintf(out, "  %-10s  %5.1f%%\n", name, 100*res.LevelUtilization[l])
	}
}

// maxLinkRows bounds the -links table to the busiest links.
const maxLinkRows = 12

// printLinkUtilization renders the busiest entries of
// Result.LinkUtilization: which individual links the run leaned on.
func printLinkUtilization(out io.Writer, res cm5.Result) {
	links := append([]cm5.LinkUtil(nil), res.LinkUtilization...)
	sort.SliceStable(links, func(i, j int) bool { return links[i].Carried > links[j].Carried })
	shown := len(links)
	if shown > maxLinkRows {
		shown = maxLinkRows
	}
	fmt.Fprintf(out, "\nbusiest links (%d of %d that carried traffic):\n", shown, len(links))
	fmt.Fprintf(out, "  %-16s  %5s  %12s  %5s\n", "link", "level", "wire bytes", "util")
	for _, l := range links[:shown] {
		fmt.Fprintf(out, "  %-16s  %5d  %12.0f  %4.1f%%\n", l.Name, l.Level, l.Carried, 100*l.Utilization)
	}
}

// printStepTimes renders Result.StepTimes: when the last node finished
// each step, and the increment over the previous step.
func printStepTimes(out io.Writer, res cm5.Result) {
	if len(res.StepTimes) == 0 {
		fmt.Fprintln(out, "\nno per-step times: program-backed algorithm with no static schedule")
		return
	}
	fmt.Fprintln(out, "\nstep completion times:")
	fmt.Fprintf(out, "  %4s  %12s  %12s\n", "step", "done at", "step cost")
	prev := cm5.Duration(0)
	for i, at := range res.StepTimes {
		fmt.Fprintf(out, "  %4d  %9.3f ms  %9.3f ms\n", i+1, at.Millis(), (at - prev).Millis())
		prev = at
	}
}
