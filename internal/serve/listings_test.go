package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/network"
)

// TestLegacyListingBytesPinned pins the five historical listing
// endpoints to the exact bytes the pre-collapse handlers served
// (testdata/listing/*.json, captured from the hand-rolled handlers).
// The registry-table collapse must be invisible on the wire.
func TestLegacyListingBytesPinned(t *testing.T) {
	s := New(network.DefaultConfig(), nil)
	h := s.Handler()
	for path, golden := range map[string]string{
		"/v1/algorithms":    "algorithms.json",
		"/v1/topologies":    "topologies.json",
		"/v1/workloads":     "workloads.json",
		"/v1/faultprofiles": "faultprofiles.json",
		"/v1/traces":        "traces.json",
	} {
		want, err := os.ReadFile(filepath.Join("testdata", "listing", golden))
		if err != nil {
			t.Fatal(err)
		}
		w := get(h, path)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
		if got := w.Body.String(); got != string(want) {
			t.Errorf("GET %s drifted from the pinned bytes:\ngot:  %s\nwant: %s", path, got, want)
		}
	}
}

// TestTracesListingWithStore covers the store-dependent branch the
// pinned capture (taken storeless) misses: an attached empty store adds
// "recorded":[] and nothing else.
func TestTracesListingWithStore(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	w := get(s.Handler(), "/v1/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["recorded"]) != "[]" {
		t.Fatalf("recorded = %s, want []", doc["recorded"])
	}
}

// TestRegistryUniformShape exercises the collapsed endpoints: every
// registry appears under /v1/registry with the shared (name, kind, doc)
// row shape, and /v1/registry/{kind} serves the same rows one registry
// at a time.
func TestRegistryUniformShape(t *testing.T) {
	s := New(network.DefaultConfig(), nil)
	h := s.Handler()

	w := get(h, "/v1/registry")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/registry: status %d", w.Code)
	}
	var all struct {
		Registry []struct {
			Kind    string         `json:"kind"`
			Entries []listingEntry `json:"entries"`
		} `json:"registry"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	wantKinds := []string{"algorithms", "topologies", "workloads", "faultprofiles", "traces"}
	if len(all.Registry) != len(wantKinds) {
		t.Fatalf("registry lists %d groups, want %d", len(all.Registry), len(wantKinds))
	}
	for i, g := range all.Registry {
		if g.Kind != wantKinds[i] {
			t.Errorf("group %d = %q, want %q", i, g.Kind, wantKinds[i])
		}
		if len(g.Entries) == 0 {
			t.Errorf("registry %q is empty", g.Kind)
		}
		for _, e := range g.Entries {
			if e.Name == "" || e.Doc == "" {
				t.Errorf("registry %q row %+v missing name or doc", g.Kind, e)
			}
			if (g.Kind == "algorithms") != (e.Kind != "") {
				t.Errorf("registry %q row %q kind = %q; only algorithms carry a subtype", g.Kind, e.Name, e.Kind)
			}
		}
	}

	// Per-kind view serves the same rows.
	for _, kind := range wantKinds {
		w := get(h, "/v1/registry/"+kind)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/registry/%s: status %d", kind, w.Code)
		}
		var one struct {
			Kind    string         `json:"kind"`
			Entries []listingEntry `json:"entries"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil {
			t.Fatal(err)
		}
		if one.Kind != kind || len(one.Entries) == 0 {
			t.Errorf("/v1/registry/%s = kind %q with %d entries", kind, one.Kind, len(one.Entries))
		}
	}

	if w := get(h, "/v1/registry/nonsense"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown registry kind: status %d, want 404", w.Code)
	}
}
