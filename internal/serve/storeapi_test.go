package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/store"
)

// newStoreAPIServer mounts a real disk store behind the daemon's
// /v1/store API and returns an HTTPBackend speaking to it over real
// sockets — the full distributed-store stack in one process.
func newStoreAPIServer(t *testing.T) (*store.Store, *store.HTTPBackend) {
	t.Helper()
	disk := testStore(t)
	ts := httptest.NewServer(New(network.DefaultConfig(), disk).Handler())
	t.Cleanup(ts.Close)
	remote, err := store.NewHTTPBackend(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return disk, remote
}

func payloadRecord(t *testing.T, family, cell string, payload string) *store.Record {
	t.Helper()
	rec, err := store.NewRecord(family, cell, store.Spec{"family": family, "cell": cell})
	if err != nil {
		t.Fatal(err)
	}
	rec.Payload = json.RawMessage(payload)
	return rec
}

// TestHTTPBackendRoundTrip drives the Backend interface end to end
// through the daemon: what a worker Puts over HTTP, the disk store
// holds, and any other worker Gets back — payload, writes, index and
// all.
func TestHTTPBackendRoundTrip(t *testing.T) {
	disk, remote := newStoreAPIServer(t)

	if err := remote.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if loc := remote.Location(); !strings.HasPrefix(loc, "http://") {
		t.Fatalf("Location() = %q, want the server URL", loc)
	}

	// Miss before anything is stored.
	if _, ok, err := remote.Get("00deadbeef00"); err != nil || ok {
		t.Fatalf("get on empty store: ok=%v err=%v", ok, err)
	}

	rec := payloadRecord(t, "fig5", "fig5/LEX/N32/256B", `{"x":1}`)
	rec.Writes = []store.Write{{Row: 0, Col: 1, Val: "42.5"}}
	rec.Values = map[string]float64{"ms": 42.5}
	if err := remote.Put(rec); err != nil {
		t.Fatalf("put over HTTP: %v", err)
	}

	// The record is on the daemon's disk...
	if got, ok, err := disk.Get(rec.Hash); err != nil || !ok || string(got.Payload) == "" {
		t.Fatalf("record did not land on the daemon's disk store: ok=%v err=%v", ok, err)
	}
	// ...and comes back over HTTP intact.
	got, ok, err := remote.Get(rec.Hash)
	if err != nil || !ok {
		t.Fatalf("get over HTTP: ok=%v err=%v", ok, err)
	}
	if got.Family != "fig5" || got.Cell != rec.Cell || len(got.Writes) != 1 || got.Values["ms"] != 42.5 {
		t.Fatalf("round-tripped record mangled: %+v", got)
	}
	var payload map[string]int
	if err := json.Unmarshal(got.Payload, &payload); err != nil || payload["x"] != 1 {
		t.Fatalf("payload mangled: %s (err=%v)", got.Payload, err)
	}

	if remote.Len() != 1 {
		t.Fatalf("remote Len = %d, want 1", remote.Len())
	}
	idx := remote.Index()
	if len(idx) != 1 || idx[0].Hash != rec.Hash || idx[0].Cell != rec.Cell {
		t.Fatalf("remote index = %+v", idx)
	}
	all, err := remote.All()
	if err != nil || len(all) != 1 || all[0].Hash != rec.Hash {
		t.Fatalf("remote All = %d records (err=%v)", len(all), err)
	}

	// Invalidate through the API removes it everywhere.
	n, err := remote.Invalidate(regexp.MustCompile(`fig5/`))
	if err != nil || n != 1 {
		t.Fatalf("invalidate: removed %d (err=%v)", n, err)
	}
	if disk.Len() != 0 || remote.Len() != 0 {
		t.Fatalf("record survived invalidate: disk=%d remote=%d", disk.Len(), remote.Len())
	}
	if err := remote.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestHTTPBackendClaims exercises the lease protocol over the wire:
// acquire, conflict, refresh, release, and steal-after-expiry behave
// exactly like the disk store's — the server's store arbitrates.
func TestHTTPBackendClaims(t *testing.T) {
	_, remote := newStoreAPIServer(t)
	// The wire API only accepts the full 64-hex form HashSpec emits.
	hash := strings.Repeat("ab12cd34", 8)

	cl, err := remote.Claim(hash, "w1", time.Minute)
	if err != nil || !cl.Acquired || cl.Stolen {
		t.Fatalf("first claim = %+v err=%v, want acquired fresh", cl, err)
	}
	// A second worker bounces off and learns the holder.
	cl2, err := remote.Claim(hash, "w2", time.Minute)
	if err != nil || cl2.Acquired || cl2.Holder != "w1" {
		t.Fatalf("conflicting claim = %+v err=%v, want refused with holder w1", cl2, err)
	}
	// The holder refreshes.
	cl3, err := remote.Claim(hash, "w1", time.Hour)
	if err != nil || !cl3.Acquired || cl3.ExpiresUnixNS <= cl.ExpiresUnixNS {
		t.Fatalf("refresh = %+v err=%v (previous expiry %d)", cl3, err, cl.ExpiresUnixNS)
	}
	// Release frees it.
	if err := remote.Release(hash, "w1"); err != nil {
		t.Fatal(err)
	}
	if cl, err := remote.Claim(hash, "w2", time.Minute); err != nil || !cl.Acquired {
		t.Fatalf("claim after release = %+v err=%v", cl, err)
	}

	// Work-stealing over HTTP: a dead worker's expired lease is stolen.
	dead := strings.Repeat("deadbeef", 8)
	if cl, err := remote.Claim(dead, "dead-worker", time.Millisecond); err != nil || !cl.Acquired {
		t.Fatalf("seed claim = %+v err=%v", cl, err)
	}
	time.Sleep(5 * time.Millisecond)
	cl4, err := remote.Claim(dead, "thief", time.Minute)
	if err != nil || !cl4.Acquired || !cl4.Stolen {
		t.Fatalf("claim on expired lease = %+v err=%v, want acquired with Stolen", cl4, err)
	}
}

// TestStoreAPIRejections pins the API's failure modes: no store → 503
// on every route; malformed records → 400 with per-field errors; a
// path/record hash mismatch → 400.
func TestStoreAPIRejections(t *testing.T) {
	storeless := New(network.DefaultConfig(), nil).Handler()
	for _, req := range []struct{ method, path, body string }{
		{http.MethodGet, "/v1/store/index", ""},
		{http.MethodGet, "/v1/store/objects/abcdef012345", ""},
		{http.MethodPut, "/v1/store/objects/abcdef012345", "{}"},
		{http.MethodPost, "/v1/store/claims", `{"op":"claim","hash":"ab","owner":"w","ttl_ms":1000}`},
		{http.MethodPost, "/v1/store/invalidate", `{"pattern":"x"}`},
		{http.MethodPost, "/v1/store/flush", ""},
	} {
		r := httptest.NewRequest(req.method, req.path, strings.NewReader(req.body))
		w := httptest.NewRecorder()
		storeless.ServeHTTP(w, r)
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s without a store: status %d, want 503", req.method, req.path, w.Code)
		}
	}

	h := New(network.DefaultConfig(), testStore(t)).Handler()

	// A record whose spec does not hash to the path is refused with the
	// validator's per-field error, and nothing is stored.
	rec := payloadRecord(t, "fig5", "fig5/LEX/N32/0B", `{}`)
	body, _ := json.Marshal(rec)
	r := httptest.NewRequest(http.MethodPut, "/v1/store/objects/"+strings.Repeat("0", 64), strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "does not match path hash") {
		t.Fatalf("hash-mismatched PUT: status %d body %s", w.Code, w.Body)
	}

	// A malformed record (empty family) is a 400 naming the field.
	bad := `{"hash":"` + rec.Hash + `","cell":"c","spec":{"family":"fig5","cell":"fig5/LEX/N32/0B"}}`
	r = httptest.NewRequest(http.MethodPut, "/v1/store/objects/"+rec.Hash, strings.NewReader(bad))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "family: empty") {
		t.Fatalf("malformed PUT: status %d body %s", w.Code, w.Body)
	}

	// Claim requests are validated too.
	for _, body := range []string{
		`{"op":"claim","hash":"ab","owner":"","ttl_ms":1000}`,
		`{"op":"claim","hash":"ab","owner":"w"}`,
		`{"op":"chew","hash":"ab","owner":"w"}`,
		`{"op":"claim","hash":"x","owner":"w","ttl_ms":1000}`,
	} {
		w := post(h, "/v1/store/claims", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("claim %s: status %d, want 400", body, w.Code)
		}
	}

	// GET of an absent record is a 404 the client maps to a miss.
	if w := get(h, "/v1/store/objects/"+strings.Repeat("1", 64)); w.Code != http.StatusNotFound {
		t.Fatalf("absent object: status %d, want 404", w.Code)
	}

	// Traversal-shaped hashes never reach the filesystem. ServeMux
	// decodes %2F inside the {hash} wildcard, so the encoded form
	// arrives at the handler with real slashes; GET treats anything
	// that is not a well-formed hash as a plain miss, while PUT and
	// claims refuse it outright.
	for _, path := range []string{
		"/v1/store/objects/..%2F..%2F..%2Fetc%2Fpasswd",
		"/v1/store/objects/..%2Findex",
	} {
		if w := get(h, path); w.Code != http.StatusNotFound {
			t.Errorf("traversal GET %s: status %d, want 404", path, w.Code)
		}
	}
	r = httptest.NewRequest(http.MethodPut, "/v1/store/objects/..%2F..%2Fpwn", strings.NewReader("{}"))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Errorf("traversal PUT: status %d, want 400", w.Code)
	}
	if w := post(h, "/v1/store/claims",
		`{"op":"claim","hash":"../../../../tmp/pwn","owner":"w","ttl_ms":1000}`); w.Code != http.StatusBadRequest {
		t.Errorf("traversal claim: status %d, want 400", w.Code)
	}
}

// TestHTTPBackendRetriesTransientErrors drops every other connection
// at the server before a byte of response is written and verifies the
// client retries through it: a brief daemon hiccup must degrade into
// latency, not into the firstErr that cancels a whole leased sweep.
func TestHTTPBackendRetriesTransientErrors(t *testing.T) {
	disk := testStore(t)
	real := New(network.DefaultConfig(), disk).Handler()
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // the client sees a dropped connection
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)
	remote, err := store.NewHTTPBackend(flaky.URL)
	if err != nil {
		t.Fatal(err)
	}

	rec := payloadRecord(t, "fig5", "fig5/LEX/N32/256B", `{"x":1}`)
	if err := remote.Put(rec); err != nil {
		t.Fatalf("put through flaky server: %v", err)
	}
	if _, ok, err := remote.Get(rec.Hash); err != nil || !ok {
		t.Fatalf("get through flaky server: ok=%v err=%v", ok, err)
	}
	if cl, err := remote.Claim(rec.Hash, "w1", time.Minute); err != nil || !cl.Acquired {
		t.Fatalf("claim through flaky server: %+v err=%v", cl, err)
	}
	if err := remote.Release(rec.Hash, "w1"); err != nil {
		t.Fatalf("release through flaky server: %v", err)
	}
	if got := disk.Len(); got != 1 {
		t.Fatalf("disk store has %d records after flaky put, want 1", got)
	}
}
