// Package serve is the experiment-as-a-service layer behind
// cmd/cmserve: a long-running HTTP daemon that answers job requests —
// one simulation each — straight from the content-addressed result
// store on a hash hit, and simulates on a miss with single-flight
// coalescing, so a thundering herd of identical requests costs exactly
// one simulation. It reuses the PR-3 typed registry (cm5.Run), the
// PR-5 store (payload records keyed by store.HashSpec), and the
// experiment harness (exp.Runner drives the streaming sweep endpoint
// with the same cell records cmexp writes).
package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/cm5"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/store"
	"repro/internal/topo"
	"repro/internal/trace"
)

// ResultSchema versions the job-result document; it participates in
// every job hash, so bumping it invalidates stored payloads at once.
const ResultSchema = "cmserve-result/v1"

// SyntheticWorkload is the extra workload name the job API accepts
// beyond the scenario catalogue: a random pattern of the given density
// (cm5.SyntheticPattern), the shape behind the paper's Table 11.
const SyntheticWorkload = "synthetic"

// JobSpec is the wire form of one job request: everything that
// influences the simulated result. The zero value of every optional
// field is its canonical default, so two clients describing the same
// run always hash to the same store record.
type JobSpec struct {
	// Algorithm is a registry name (GET /v1/algorithms lists them).
	Algorithm string `json:"algorithm"`
	// N is the machine size, a power of two >= 2.
	N int `json:"n"`
	// Bytes is the per-message size (exchanges: per pair; broadcasts:
	// total; collectives: per block; workloads: per matrix entry).
	Bytes int `json:"bytes,omitempty"`
	// Workload names a catalogue pattern (GET /v1/workloads) or
	// "synthetic"; required for irregular schedulers, rejected
	// otherwise.
	Workload string `json:"workload,omitempty"`
	// Density is the synthetic workload's fill fraction in (0, 1];
	// only valid with workload "synthetic".
	Density float64 `json:"density,omitempty"`
	// Trace names a recordable application (GET /v1/traces) whose
	// recorded communication becomes the job's pattern — the
	// alternative to Workload for irregular schedulers. The trace is
	// recorded (or fetched from the store) deterministically from
	// (trace, trace_size, n, seed, config).
	Trace string `json:"trace,omitempty"`
	// TraceSize is the traced application's problem size; 0 means the
	// app's default. Only valid with Trace.
	TraceSize int `json:"trace_size,omitempty"`
	// Topology names the interconnect (GET /v1/topologies); empty means
	// the calibrated CM-5 fat tree.
	Topology string `json:"topology,omitempty"`
	// Seed feeds the workload generator and stochastic planners.
	Seed int64 `json:"seed,omitempty"`
	// FaultProfile names a fault profile (GET /v1/faultprofiles) to
	// inject into the run, built deterministically from the run's
	// topology and Seed; empty means a healthy machine ("healthy" is a
	// valid, equivalent value).
	FaultProfile string `json:"fault_profile,omitempty"`
	// Root is the broadcast root; Offset the SHIFT distance.
	Root   int  `json:"root,omitempty"`
	Offset int  `json:"offset,omitempty"`
	Async  bool `json:"async,omitempty"`
}

// Validate resolves the spec against the registries and reports the
// first problem; the error text carries each registry's known-names
// listing, exactly as the CLI tools print it.
func (js JobSpec) Validate() error {
	if js.Algorithm == "" {
		return fmt.Errorf("missing algorithm (known: %s)", knownAlgorithms())
	}
	a, err := cm5.LookupAlgorithm(js.Algorithm)
	if err != nil {
		return err
	}
	if js.N < 2 || js.N&(js.N-1) != 0 {
		return fmt.Errorf("n %d must be a power of two >= 2", js.N)
	}
	if js.Bytes < 0 {
		return fmt.Errorf("bytes %d must be >= 0", js.Bytes)
	}
	switch {
	case js.Trace != "":
		if a.Kind() != cm5.KindIrregular {
			return fmt.Errorf("algorithm %s (%s) cannot replay a trace: traces schedule through the irregular schedulers",
				a.Name(), a.Kind())
		}
		if cm5.TraceDoc(js.Trace) == "" {
			return fmt.Errorf("unknown trace app %q (known: %s)",
				js.Trace, strings.Join(cm5.Traces(), " "))
		}
		if js.Workload != "" || js.Density != 0 {
			return fmt.Errorf("trace and workload are mutually exclusive")
		}
		if js.TraceSize < 0 {
			return fmt.Errorf("trace_size %d must be >= 0", js.TraceSize)
		}
		if js.Bytes != 0 {
			return fmt.Errorf("bytes is not valid with a trace: message sizes come from the recording")
		}
	case js.TraceSize != 0:
		return fmt.Errorf("trace_size is only valid with a trace")
	case a.Kind() == cm5.KindIrregular:
		switch {
		case js.Workload == "":
			return fmt.Errorf("algorithm %s schedules a pattern: set workload (known: %s %s) or trace (known: %s)",
				a.Name(), strings.Join(pattern.WorkloadNames(), " "), SyntheticWorkload,
				strings.Join(cm5.Traces(), " "))
		case js.Workload == SyntheticWorkload:
			if js.Density <= 0 || js.Density > 1 {
				return fmt.Errorf("synthetic workload density %g must be in (0, 1]", js.Density)
			}
		default:
			if _, ok := pattern.WorkloadByName(js.Workload); !ok {
				return fmt.Errorf("unknown workload %q (known: %s %s)",
					js.Workload, strings.Join(pattern.WorkloadNames(), " "), SyntheticWorkload)
			}
			if js.Density != 0 {
				return fmt.Errorf("density is only valid with workload %q", SyntheticWorkload)
			}
		}
	case js.Workload != "" || js.Density != 0:
		return fmt.Errorf("algorithm %s (%s) takes n and bytes, not a workload",
			a.Name(), a.Kind())
	}
	if js.Topology != "" && topo.Doc(js.Topology) == "" {
		return fmt.Errorf("unknown topology %q (known: %s)",
			js.Topology, strings.Join(cm5.Topologies(), " "))
	}
	if js.FaultProfile != "" && cm5.FaultProfileDoc(js.FaultProfile) == "" {
		return fmt.Errorf("unknown fault profile %q (known: %s)",
			js.FaultProfile, strings.Join(cm5.FaultProfiles(), " "))
	}
	return nil
}

// job lowers a validated spec onto a runnable cm5.Job. Trace-driven
// jobs resolve their recording through lib — the server's store-backed
// library, or a memo-only one — so a recorded trace is fetched, not
// re-run, whenever it is already known.
func (js JobSpec) job(cfg network.Config, lib *trace.Library) (cm5.Job, error) {
	a, err := cm5.LookupAlgorithm(js.Algorithm)
	if err != nil {
		return cm5.Job{}, err
	}
	opts := []cm5.JobOption{
		cm5.WithConfig(cfg), cm5.WithSeed(js.Seed),
		cm5.WithRoot(js.Root), cm5.WithOffset(js.Offset),
		cm5.WithAsync(js.Async),
	}
	var tp cm5.Topology
	if js.Topology != "" {
		if tp, err = topo.New(js.Topology, js.N, cfg.TopologyRates()); err != nil {
			return cm5.Job{}, err
		}
		opts = append(opts, cm5.WithTopology(tp))
	}
	if js.FaultProfile != "" {
		if tp == nil {
			// The plan must be built against the same link graph the job
			// runs on — for topology-less jobs, the config's fat tree.
			if tp, err = cfg.FatTree(js.N); err != nil {
				return cm5.Job{}, err
			}
		}
		plan, err := cm5.NewFaultPlan(js.FaultProfile, tp, js.Seed)
		if err != nil {
			return cm5.Job{}, err
		}
		opts = append(opts, cm5.WithFaults(plan))
	}
	if a.Kind() != cm5.KindIrregular {
		return cm5.NewJob(a, js.N, js.Bytes, opts...), nil
	}
	if js.Trace != "" {
		tr, _, err := lib.Get(js.Trace, js.TraceSize, js.N, js.Seed, cfg)
		if err != nil {
			return cm5.Job{}, err
		}
		return cm5.NewJob(a, 0, 0, append(opts, cm5.WithTraceWorkload(tr))...), nil
	}
	var p cm5.Pattern
	if js.Workload == SyntheticWorkload {
		p = cm5.SyntheticPattern(js.N, js.Density, js.Bytes, js.Seed)
	} else {
		if p, err = cm5.WorkloadPattern(js.Workload, js.N, js.Bytes, js.Seed); err != nil {
			return cm5.Job{}, err
		}
	}
	return cm5.PatternJob(a, p, opts...), nil
}

// storeSpec is the full content-address specification of a job result:
// every JobSpec field (zero values included, so the canonical JSON is
// stable), the result-document schema, plus exp.StoreBase's sweep-wide
// fields — the network config and experiment-code version — so serve
// records invalidate on exactly the same events as cmexp cell records.
func (js JobSpec) storeSpec(cfg network.Config) store.Spec {
	s := exp.StoreBase(cfg)
	s["kind"] = "serve-job"
	s["schema"] = ResultSchema
	s["algorithm"] = js.Algorithm
	s["n"] = js.N
	s["bytes"] = js.Bytes
	s["workload"] = js.Workload
	// Exact float literal via canonical JSON round-trip is fine, but a
	// string keeps the hash readable and immune to formatting drift.
	s["density"] = fmt.Sprintf("%g", js.Density)
	s["topology"] = js.Topology
	s["fault_profile"] = js.FaultProfile
	s["fault_plan_version"] = network.FaultPlanVersion
	s["trace"] = js.Trace
	s["trace_size"] = js.TraceSize
	s["trace_version"] = trace.TraceVersion
	// Seeds are 64-bit: decimal string, like exp.Runner's cell specs.
	s["seed"] = fmt.Sprintf("%d", js.Seed)
	s["root"] = js.Root
	s["offset"] = js.Offset
	s["async"] = js.Async
	return s
}

// Hash returns the content address of the spec's result under cfg.
func (js JobSpec) Hash(cfg network.Config) (string, error) {
	return store.HashSpec(js.storeSpec(cfg))
}

// JobResult is the response document of POST /v1/jobs: the canonical
// spec echoed back, the content hash, and the full cm5.Result metrics.
// Field order is fixed and maps marshal key-sorted, so the encoding is
// deterministic — a store replay is byte-identical to the simulation
// that produced it.
type JobResult struct {
	Schema string  `json:"schema"`
	Spec   JobSpec `json:"spec"`
	Hash   string  `json:"hash"`
	Result Metrics `json:"result"`
}

// Metrics is the wire form of cm5.Result.
type Metrics struct {
	Algorithm string `json:"algorithm"`
	Kind      string `json:"kind"`
	ElapsedNS int64  `json:"elapsed_ns"`
	// ElapsedMS is Elapsed rendered exactly as cmexp's tables render
	// it ("%.3f" milliseconds), so responses cross-check against
	// cmexp output byte for byte.
	ElapsedMS        string          `json:"elapsed_ms"`
	Steps            int             `json:"steps"`
	Messages         int             `json:"messages"`
	TotalBytes       int64           `json:"total_bytes"`
	MaxFanIn         int             `json:"max_fan_in"`
	StepTimesNS      []int64         `json:"step_times_ns,omitempty"`
	LevelUtilization map[int]float64 `json:"level_utilization,omitempty"`
	Flows            int             `json:"flows"`
	WireBytes        int64           `json:"wire_bytes"`
	// Faults reports what the spec's fault profile did to the run;
	// omitted for healthy runs (the zero value marshals away).
	Faults *network.FaultStats `json:"faults,omitempty"`
}

// encodeResult renders the canonical payload bytes for one completed
// job: compact JSON plus a trailing newline. These exact bytes are
// stored as the record's payload and served on every subsequent hit.
func encodeResult(js JobSpec, hash string, res cm5.Result) ([]byte, error) {
	m := Metrics{
		Algorithm:  res.Algorithm.Name(),
		Kind:       string(res.Algorithm.Kind()),
		ElapsedNS:  int64(res.Elapsed),
		ElapsedMS:  fmt.Sprintf("%.3f", res.Elapsed.Millis()),
		Steps:      res.Steps,
		Messages:   res.Messages,
		TotalBytes: res.TotalBytes,
		MaxFanIn:   res.MaxFanIn,
		Flows:      res.Flows,
		WireBytes:  res.WireBytes,
	}
	if len(res.StepTimes) > 0 {
		m.StepTimesNS = make([]int64, len(res.StepTimes))
		for i, t := range res.StepTimes {
			m.StepTimesNS[i] = int64(t)
		}
	}
	if len(res.LevelUtilization) > 0 {
		m.LevelUtilization = res.LevelUtilization
	}
	if res.Faults != (cm5.FaultStats{}) {
		f := res.Faults
		m.Faults = &f
	}
	data, err := json.Marshal(JobResult{Schema: ResultSchema, Spec: js, Hash: hash, Result: m})
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RunOne validates and runs one job spec outside any server — the
// cmserve -oneshot path — returning the identical payload bytes a
// served request yields, minus the HTTP around them.
func RunOne(js JobSpec, cfg network.Config) ([]byte, error) {
	if err := js.Validate(); err != nil {
		return nil, err
	}
	hash, err := js.Hash(cfg)
	if err != nil {
		return nil, err
	}
	job, err := js.job(cfg, trace.NewLibrary(nil))
	if err != nil {
		return nil, err
	}
	res, err := cm5.Run(job)
	if err != nil {
		return nil, err
	}
	return encodeResult(js, hash, res)
}

func knownAlgorithms() string {
	var names []string
	for _, a := range cm5.Algorithms() {
		names = append(names, a.Name())
	}
	return strings.Join(names, " ")
}
