package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/network"
)

// promValue extracts one sample value from a Prometheus text
// exposition; series names the full sample line prefix, labels
// included.
func promValue(t *testing.T, text, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, rest, err)
			}
			return int64(v)
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, text)
	return 0
}

// TestMetricsEndpoint drives a miss, a hit and a coalesce-free repeat
// through the job path and checks that /v1/metrics renders valid
// Prometheus text whose serve counters match /v1/stats exactly — they
// are the same registry underneath, so any mismatch is a bug in the
// rendering, not a race.
func TestMetricsEndpoint(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	h := s.Handler()

	if w := post(h, "/v1/jobs", bexSpec); w.Code != http.StatusOK {
		t.Fatalf("cold POST: status %d, body %s", w.Code, w.Body)
	}
	if w := post(h, "/v1/jobs", bexSpec); w.Code != http.StatusOK {
		t.Fatalf("warm POST: status %d, body %s", w.Code, w.Body)
	}

	mw := get(h, "/v1/metrics")
	if mw.Code != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", mw.Code)
	}
	if ct := mw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /v1/metrics: Content-Type %q, want text/plain", ct)
	}
	text := mw.Body.String()

	// Structural sanity: every non-comment line is "name{labels} value",
	// every family has a # TYPE line, families are name-sorted.
	var lastFamily string
	families := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(name)[0]
			if fam < lastFamily {
				t.Fatalf("family %s out of order after %s", fam, lastFamily)
			}
			lastFamily = fam
			families[fam] = true
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		name = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		if !families[name] && !families[strings.TrimSuffix(name, "_bucket")] {
			t.Fatalf("sample %q precedes its # TYPE line", line)
		}
	}

	// The serve counters agree with /v1/stats.
	var stats map[string]any
	if err := json.NewDecoder(get(h, "/v1/stats").Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for stat, series := range map[string]string{
		"served":    "serve_served_total",
		"hits":      "serve_hits_total",
		"misses":    "serve_misses_total",
		"coalesced": "serve_coalesced_total",
		"rejected":  "serve_rejected_total",
	} {
		want := int64(stats[stat].(float64))
		if got := promValue(t, text, series); got != want {
			t.Errorf("%s: /v1/metrics %d, /v1/stats %d", series, got, want)
		}
	}
	if hits := promValue(t, text, "serve_hits_total"); hits != 1 {
		t.Errorf("serve_hits_total = %d after one warm POST, want 1", hits)
	}
	if misses := promValue(t, text, "serve_misses_total"); misses != 1 {
		t.Errorf("serve_misses_total = %d after one cold POST, want 1", misses)
	}

	// The sim layer's counters flowed into the same registry via the
	// job path, and the store contributed its series.
	for _, series := range []string{"sim_events_fired_total", "net_flows_started_total",
		"store_get_hits_total", "store_get_misses_total"} {
		if promValue(t, text, series) <= 0 {
			t.Errorf("%s should be positive after a simulated job", series)
		}
	}

	// Per-route accounting saw both job POSTs as one miss and one hit.
	for _, series := range []string{
		`serve_requests_total{cache="miss",route="/v1/jobs",status="200"}`,
		`serve_requests_total{cache="hit",route="/v1/jobs",status="200"}`,
	} {
		if got := promValue(t, text, series); got != 1 {
			t.Errorf("%s = %d, want 1", series, got)
		}
	}
}

// TestStatsMetricsSameRegistry hammers the job path concurrently and
// then checks /v1/stats against /v1/metrics: reading the same counters
// through two renderings must agree once the requests settle.
func TestStatsMetricsSameRegistry(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	h := s.Handler()
	for i := 0; i < 4; i++ {
		spec := fmt.Sprintf(`{"algorithm":"BEX","n":8,"bytes":%d}`, 64<<i)
		post(h, "/v1/jobs", spec)
		post(h, "/v1/jobs", spec)
	}
	var stats map[string]any
	if err := json.NewDecoder(get(h, "/v1/stats").Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	text := get(h, "/v1/metrics").Body.String()
	if got, want := promValue(t, text, "serve_misses_total"), int64(stats["misses"].(float64)); got != want {
		t.Fatalf("misses: metrics %d, stats %d", got, want)
	}
	if got, want := promValue(t, text, "serve_hits_total"), int64(stats["hits"].(float64)); got != want {
		t.Fatalf("hits: metrics %d, stats %d", got, want)
	}
	if got := promValue(t, text, "serve_misses_total"); got != 4 {
		t.Fatalf("serve_misses_total = %d, want 4", got)
	}
}
