package serve

import (
	"context"
	"sync"
)

// flightGroup is a hand-rolled single-flight group keyed by content
// hash (the module has no dependencies, so golang.org/x/sync is
// deliberately not one). The first caller for a key becomes the leader
// and runs the function; every caller that arrives while the leader is
// in flight waits for the leader's payload instead of duplicating the
// work. Followers honor their own context — a follower whose deadline
// expires abandons the wait without disturbing the leader, whose
// simulation is not interruptible anyway.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{} // closed when the leader finished
	payload []byte
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// join returns the in-flight call for key, creating one — and electing
// the caller leader — when none exists.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// lead runs fn as the call's leader, publishes the outcome to every
// follower, and retires the key so later requests start fresh (or hit
// the store, where a successful payload now lives).
func (g *flightGroup) lead(key string, c *flightCall, fn func() ([]byte, error)) ([]byte, error) {
	c.payload, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.payload, c.err
}

// wait blocks until the leader publishes or ctx ends.
func (c *flightCall) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.payload, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
