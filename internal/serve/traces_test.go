package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/network"
)

const traceSpec = `{"algorithm":"BS","n":8,"trace":"cg","trace_size":64,"seed":1}`

// A trace-driven job behaves exactly like any other: the first request
// records the app and simulates, the warm replay is byte-identical, and
// the recording itself lands in the store so a fresh server over the
// same directory never re-runs the application.
func TestTraceJobMissThenHit(t *testing.T) {
	st := testStore(t)
	s := New(network.DefaultConfig(), st)
	h := s.Handler()

	cold := post(h, "/v1/jobs", traceSpec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold POST: status %d, body %s", cold.Code, cold.Body)
	}
	if c := cold.Header().Get("X-Cache"); c != "miss" {
		t.Fatalf("cold POST: X-Cache %q, want miss", c)
	}
	warm := post(h, "/v1/jobs", traceSpec)
	if c := warm.Header().Get("X-Cache"); c != "hit" {
		t.Fatalf("warm POST: X-Cache %q, want hit", c)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Errorf("warm payload differs from cold:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}

	var doc struct {
		Spec struct {
			Trace     string `json:"trace"`
			TraceSize int    `json:"trace_size"`
		} `json:"spec"`
		Result struct {
			Messages int `json:"messages"`
		} `json:"result"`
	}
	if err := json.Unmarshal(cold.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Spec.Trace != "cg" || doc.Spec.TraceSize != 64 {
		t.Errorf("echoed spec lost the trace fields: %s", cold.Body)
	}
	if doc.Result.Messages == 0 {
		t.Errorf("trace job moved no messages: %s", cold.Body)
	}

	// The recording persisted alongside the job result: a second server
	// over the same store serves the job as a pure hit, and the trace
	// record is listed by GET /v1/traces.
	recs, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	traces := 0
	for _, rec := range recs {
		if rec.Family == "trace" {
			traces++
		}
	}
	if traces != 1 {
		t.Errorf("store holds %d trace records, want 1", traces)
	}

	listing := get(h, "/v1/traces")
	if listing.Code != http.StatusOK {
		t.Fatalf("GET /v1/traces: status %d", listing.Code)
	}
	var tl struct {
		TraceVersion int `json:"trace_version"`
		Apps         []struct {
			Name        string `json:"name"`
			Doc         string `json:"doc"`
			DefaultSize int    `json:"default_size"`
		} `json:"apps"`
		Recorded []struct {
			Cell string `json:"cell"`
			Hash string `json:"hash"`
		} `json:"recorded"`
	}
	if err := json.Unmarshal(listing.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.TraceVersion != 1 {
		t.Errorf("trace_version = %d, want 1", tl.TraceVersion)
	}
	var names []string
	for _, a := range tl.Apps {
		names = append(names, a.Name)
		if a.Doc == "" || a.DefaultSize == 0 {
			t.Errorf("app %s listed without doc or default size", a.Name)
		}
	}
	if got := strings.Join(names, " "); got != "cg fft euler" {
		t.Errorf("apps = %q, want \"cg fft euler\"", got)
	}
	if len(tl.Recorded) != 1 || !strings.HasPrefix(tl.Recorded[0].Cell, "trace/cg/") {
		t.Errorf("recorded listing = %+v, want the one cg recording", tl.Recorded)
	}
}

// Invalid trace specs fail validation with the registry listings, like
// every other axis of the job API.
func TestTraceSpecValidation(t *testing.T) {
	s := New(network.DefaultConfig(), nil)
	h := s.Handler()
	cases := []struct {
		name, body, want string
	}{
		{"unknown app", `{"algorithm":"BS","n":8,"trace":"bogus"}`, "known: cg fft euler"},
		{"regular algorithm", `{"algorithm":"PEX","n":8,"trace":"cg"}`, "irregular schedulers"},
		{"trace plus workload", `{"algorithm":"BS","n":8,"trace":"cg","workload":"hotspot"}`, "mutually exclusive"},
		{"bytes with trace", `{"algorithm":"BS","n":8,"trace":"cg","bytes":64}`, "message sizes come from the recording"},
		{"trace_size without trace", `{"algorithm":"BS","n":8,"workload":"hotspot","bytes":64,"trace_size":64}`, "only valid with a trace"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := post(h, "/v1/jobs", c.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			if !strings.Contains(w.Body.String(), c.want) {
				t.Errorf("error %s should mention %q", w.Body, c.want)
			}
		})
	}
}
