package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/network"
)

const faultJobSpec = `{"algorithm":"GS","n":16,"bytes":256,"workload":"butterfly",` +
	`"topology":"hypercube","seed":16,"fault_profile":"straggler"}`

func TestFaultProfilesEndpoint(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	w := get(s.Handler(), "/v1/faultprofiles")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	for _, want := range []string{`"healthy"`, `"link-down"`, `"degrade"`, `"straggler"`, `"crosstraffic"`, `"doc"`} {
		if !strings.Contains(w.Body.String(), want) {
			t.Fatalf("body %s does not contain %s", w.Body, want)
		}
	}
}

// TestFaultJobMissThenHit: a faulty job simulates once, reports its
// fault stats, and replays byte-identically from the store.
func TestFaultJobMissThenHit(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	h := s.Handler()

	cold := post(h, "/v1/jobs", faultJobSpec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.Code, cold.Body)
	}
	for _, want := range []string{`"faults"`, `"stragglers"`, `"fault_profile":"straggler"`} {
		if !strings.Contains(cold.Body.String(), want) {
			t.Fatalf("cold body %s does not contain %s", cold.Body, want)
		}
	}
	warm := post(h, "/v1/jobs", faultJobSpec)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm status %d", warm.Code)
	}
	if cold.Body.String() != warm.Body.String() {
		t.Fatal("store replay of a faulty job is not byte-identical")
	}
}

func TestFaultJobValidation(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	w := post(s.Handler(), "/v1/jobs", `{"algorithm":"BEX","n":8,"bytes":64,"fault_profile":"meteor"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if !strings.Contains(w.Body.String(), "healthy") {
		t.Fatalf("error %s does not list the known profiles", w.Body)
	}
}

// TestFaultProfileAddressesTheStore: the profile is part of the job's
// content address — the same job healthy and faulty never collide, and
// the empty profile hashes like an unset field.
func TestFaultProfileAddressesTheStore(t *testing.T) {
	cfg := network.DefaultConfig()
	base := JobSpec{Algorithm: "GS", N: 16, Bytes: 256, Workload: "butterfly", Topology: "hypercube", Seed: 16}
	faulty := base
	faulty.FaultProfile = "straggler"
	h1, err := base.Hash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := faulty.Hash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("healthy and faulty specs hash to the same address")
	}
}
