package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/cm5"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// post drives one request straight through the handler (no sockets:
// thousands of concurrent calls stay cheap and deterministic).
func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// waitFor polls until cond holds; the failure message names what never
// happened.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

const bexSpec = `{"algorithm":"BEX","n":8,"bytes":64}`

func TestJobMissThenHitByteIdentical(t *testing.T) {
	st := testStore(t)
	s := New(network.DefaultConfig(), st)
	h := s.Handler()

	cold := post(h, "/v1/jobs", bexSpec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold POST: status %d, body %s", cold.Code, cold.Body)
	}
	if c := cold.Header().Get("X-Cache"); c != "miss" {
		t.Fatalf("cold POST: X-Cache %q, want miss", c)
	}
	warm := post(h, "/v1/jobs", bexSpec)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm POST: status %d, body %s", warm.Code, warm.Body)
	}
	if c := warm.Header().Get("X-Cache"); c != "hit" {
		t.Fatalf("warm POST: X-Cache %q, want hit", c)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatalf("warm body differs from cold:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", st.Len())
	}

	// The offline -oneshot path produces the identical bytes.
	var js JobSpec
	if err := json.Unmarshal([]byte(bexSpec), &js); err != nil {
		t.Fatal(err)
	}
	payload, err := RunOne(js, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, cold.Body.Bytes()) {
		t.Fatalf("RunOne differs from served body:\noneshot: %s\nserved:  %s", payload, cold.Body)
	}

	// The payload parses back and carries the simulated metrics.
	var doc JobResult
	if err := json.Unmarshal(cold.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ResultSchema || doc.Result.Algorithm != "BEX" || doc.Result.ElapsedNS <= 0 {
		t.Fatalf("implausible result document: %+v", doc)
	}
	if want := fmt.Sprintf("%.3f", float64(doc.Result.ElapsedNS)/1e6); doc.Result.ElapsedMS != want {
		t.Fatalf("elapsed_ms %q does not render elapsed_ns (want %q)", doc.Result.ElapsedMS, want)
	}
	if doc.Hash != cold.Header().Get("X-Result-Hash") {
		t.Fatalf("hash header %q != document hash %q", cold.Header().Get("X-Result-Hash"), doc.Hash)
	}
}

// TestJobMalformedSpecs pins the 400 path: every bad spec is rejected
// before any simulation, with the registries' known-names error text.
func TestJobMalformedSpecs(t *testing.T) {
	st := testStore(t)
	s := New(network.DefaultConfig(), st)
	h := s.Handler()
	cases := []struct {
		name, body, want string
	}{
		{"not json", `{"algorithm"`, "bad job spec"},
		{"unknown field", `{"algoritm":"BEX","n":8}`, "unknown field"},
		{"missing algorithm", `{"n":8,"bytes":64}`, "missing algorithm"},
		{"unknown algorithm", `{"algorithm":"XEX","n":8}`, "unknown algorithm"},
		{"unknown algorithm lists names", `{"algorithm":"XEX","n":8}`, "BEX"},
		{"n not power of two", `{"algorithm":"BEX","n":31}`, "power of two"},
		{"negative bytes", `{"algorithm":"BEX","n":8,"bytes":-1}`, "must be >= 0"},
		{"irregular without workload", `{"algorithm":"GS","n":16}`, "set workload"},
		{"unknown workload", `{"algorithm":"GS","n":16,"workload":"nope"}`, "unknown workload"},
		{"unknown workload lists names", `{"algorithm":"GS","n":16,"workload":"nope"}`, "transpose"},
		{"workload on exchange", `{"algorithm":"BEX","n":8,"workload":"transpose"}`, "takes n and bytes"},
		{"bad synthetic density", `{"algorithm":"GS","n":16,"workload":"synthetic","density":1.5}`, "in (0, 1]"},
		{"density without synthetic", `{"algorithm":"GS","n":16,"workload":"transpose","density":0.5}`, "only valid with"},
		{"unknown topology", `{"algorithm":"BEX","n":8,"topology":"mesh"}`, "unknown topology"},
		{"unknown topology lists names", `{"algorithm":"BEX","n":8,"topology":"mesh"}`, "fat-tree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(h, "/v1/jobs", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			var doc map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
				t.Fatalf("error body is not JSON: %s", w.Body)
			}
			if !strings.Contains(doc["error"], tc.want) {
				t.Fatalf("error %q does not mention %q", doc["error"], tc.want)
			}
		})
	}
	if st.Len() != 0 {
		t.Fatalf("rejected specs wrote %d store records", st.Len())
	}
	// A spec that validates but cannot run (broadcast root outside the
	// machine) is also the client's 400, and is never cached.
	w := post(h, "/v1/jobs", `{"algorithm":"REB","n":8,"bytes":64,"root":64}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range root: status %d, want 400 (body %s)", w.Code, w.Body)
	}
	if st.Len() != 0 {
		t.Fatalf("failed run wrote %d store records", st.Len())
	}
}

// TestCoalescingThunderingHerd is the core serving guarantee: 1000
// concurrent identical requests trigger exactly one simulation, and
// every response carries byte-identical payloads. The simulator stub
// blocks until all 999 followers have joined, so the assertion is
// deterministic, not a race won by a fast machine.
func TestCoalescingThunderingHerd(t *testing.T) {
	const herd = 1000
	st := testStore(t)
	s := New(network.DefaultConfig(), st, WithWorkers(4), WithQueueDepth(16))
	var sims atomic.Int64
	release := make(chan struct{})
	s.simulate = func(job cm5.Job) (cm5.Result, error) {
		sims.Add(1)
		<-release
		return cm5.Run(job)
	}
	h := s.Handler()

	spec := `{"algorithm":"GS","n":16,"bytes":64,"workload":"transpose"}`
	var wg sync.WaitGroup
	responses := make([]*httptest.ResponseRecorder, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = post(h, "/v1/jobs", spec)
		}(i)
	}
	// One leader entered the simulator; everyone else joined its flight.
	waitFor(t, "herd to coalesce", func() bool {
		return sims.Load() == 1 && s.stats.coalesced.Value() == herd-1
	})
	close(release)
	wg.Wait()

	if got := sims.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want exactly 1", herd, got)
	}
	first := responses[0].Body.Bytes()
	misses, coalesced := 0, 0
	for i, w := range responses {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), first) {
			t.Fatalf("request %d: body differs within the herd", i)
		}
		switch w.Header().Get("X-Cache") {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		}
	}
	if misses != 1 || coalesced != herd-1 {
		t.Fatalf("cache split miss=%d coalesced=%d, want 1/%d", misses, coalesced, herd-1)
	}
	// The herd's one simulation persisted: the next request is a store
	// hit without any in-flight leader.
	w := post(h, "/v1/jobs", spec)
	if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("post-herd request: status %d X-Cache %q, want 200/hit", w.Code, w.Header().Get("X-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), first) {
		t.Fatal("store replay differs from the herd's payload")
	}
}

// TestQueueOverflow429 fills the one worker and the one queue slot
// with distinct specs, then asserts the next distinct spec bounces
// with 429 and Retry-After while the first two still complete.
func TestQueueOverflow429(t *testing.T) {
	s := New(network.DefaultConfig(), nil, WithWorkers(1), WithQueueDepth(1))
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.simulate = func(job cm5.Job) (cm5.Result, error) {
		entered <- struct{}{}
		<-release
		return cm5.Run(job)
	}
	h := s.Handler()
	spec := func(seed int) string {
		return fmt.Sprintf(`{"algorithm":"GS","n":16,"bytes":64,"workload":"synthetic","density":0.5,"seed":%d}`, seed)
	}

	var wg sync.WaitGroup
	first := make([]*httptest.ResponseRecorder, 2)
	wg.Add(1)
	go func() { defer wg.Done(); first[0] = post(h, "/v1/jobs", spec(1)) }()
	<-entered // spec 1 occupies the worker
	wg.Add(1)
	go func() { defer wg.Done(); first[1] = post(h, "/v1/jobs", spec(2)) }()
	waitFor(t, "second request to queue", func() bool { return s.pending.Load() == 2 })

	rejected := post(h, "/v1/jobs", spec(3))
	if rejected.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429 (body %s)", rejected.Code, rejected.Body)
	}
	if rejected.Header().Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After")
	}
	if s.stats.rejected.Value() != 1 {
		t.Fatalf("rejected counter %d, want 1", s.stats.rejected.Value())
	}

	close(release)
	wg.Wait()
	for i, w := range first {
		if w.Code != http.StatusOK {
			t.Fatalf("admitted request %d: status %d, body %s", i, w.Code, w.Body)
		}
	}
}

// TestDeadlineCancellation pins both context-sensitive waits: a leader
// stuck in the admission queue and a follower stuck behind a slow
// leader each give up with 504 when their request deadline passes.
func TestDeadlineCancellation(t *testing.T) {
	s := New(network.DefaultConfig(), nil, WithWorkers(1), WithQueueDepth(4))
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.simulate = func(job cm5.Job) (cm5.Result, error) {
		entered <- struct{}{}
		<-release
		return cm5.Run(job)
	}
	h := s.Handler()
	slow := `{"algorithm":"GS","n":16,"bytes":64,"workload":"transpose"}`
	other := `{"algorithm":"GS","n":16,"bytes":64,"workload":"butterfly"}`

	var wg sync.WaitGroup
	var leader *httptest.ResponseRecorder
	wg.Add(1)
	go func() { defer wg.Done(); leader = post(h, "/v1/jobs", slow) }()
	<-entered

	withDeadline := func(body string) *httptest.ResponseRecorder {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)).WithContext(ctx)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	// Queue wait: a distinct spec cannot get the busy worker in time.
	if w := withDeadline(other); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued request past deadline: status %d, want 504 (body %s)", w.Code, w.Body)
	}
	// Coalescing wait: an identical spec rides the stuck leader and
	// abandons it on deadline without disturbing it.
	if w := withDeadline(slow); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("coalesced request past deadline: status %d, want 504 (body %s)", w.Code, w.Body)
	}

	close(release)
	wg.Wait()
	if leader.Code != http.StatusOK {
		t.Fatalf("leader: status %d, body %s", leader.Code, leader.Body)
	}
}

func TestListingsAndHealth(t *testing.T) {
	s := New(network.DefaultConfig(), testStore(t))
	h := s.Handler()
	checks := []struct {
		path string
		want []string
	}{
		{"/healthz", []string{`"status":"ok"`}},
		{"/v1/algorithms", []string{`"BEX"`, `"GS"`, `"exchange"`, `"irregular"`, `"allgather"`}},
		{"/v1/topologies", []string{`"fat-tree"`, `"dragonfly"`, `"hypercube"`}},
		{"/v1/workloads", []string{`"transpose"`, `"bisection"`, `"synthetic"`}},
		{"/v1/stats", []string{`"workers"`, `"queued"`, `"hits"`, `"misses"`, `"coalesced"`, `"records"`}},
	}
	for _, c := range checks {
		w := get(h, c.path)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", c.path, w.Code)
		}
		for _, want := range c.want {
			if !strings.Contains(w.Body.String(), want) {
				t.Fatalf("GET %s: body %s does not contain %s", c.path, w.Body, want)
			}
		}
	}
	// Method misroutes are 405s from the typed mux, not panics.
	if w := get(h, "/v1/jobs"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: status %d, want 405", w.Code)
	}
}

const sweepFilter = "^scenarios/transpose/(GS|LS)/N16$"

func sweepBody(format string) string {
	return fmt.Sprintf(`{"experiments":["scenarios"],"run":%q,"format":%q}`, sweepFilter, format)
}

// decodeSweep parses an NDJSON stream into its events.
func decodeSweep(t *testing.T, body *bytes.Buffer) []sweepEvent {
	t.Helper()
	var events []sweepEvent
	sc := bufio.NewScanner(bytes.NewReader(body.Bytes()))
	sc.Buffer(nil, 1<<22)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return events
}

// TestSweepStreamsAndMatchesHarness runs a filtered scenario sweep
// twice: the cold pass simulates and streams each cell as it
// completes; the warm pass replays every cell from the shared store.
// Both outputs must be byte-identical to rendering the same specs
// through the experiment harness directly — which is exactly what
// cmexp prints for the same experiments, filter, and format.
func TestSweepStreamsAndMatchesHarness(t *testing.T) {
	cfg := network.DefaultConfig()
	st := testStore(t)
	s := New(cfg, st, WithWorkers(2))
	h := s.Handler()

	// The reference rendering, straight through the harness.
	specs, err := exp.FamilySpecs("scenarios", cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner := exp.NewRunner(1)
	runner.Filter = regexp.MustCompile(sweepFilter)
	if err := runner.Run(context.Background(), specs...); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	tables := []*exp.Table{}
	for _, sp := range specs {
		tables = append(tables, sp.Table)
	}
	if err := exp.WriteTables(&want, exp.FormatJSON, tables); err != nil {
		t.Fatal(err)
	}

	// The cold pass must run first — a map literal here would randomize
	// the order and intermittently assert cache hits on a fresh store.
	for _, p := range []struct {
		pass       string
		wantCached bool
	}{{"cold", false}, {"warm", true}} {
		pass, wantCached := p.pass, p.wantCached
		w := post(h, "/v1/sweep", sweepBody("json"))
		if w.Code != http.StatusOK {
			t.Fatalf("%s sweep: status %d, body %s", pass, w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%s sweep: Content-Type %q", pass, ct)
		}
		events := decodeSweep(t, w.Body)
		if len(events) != 3 {
			t.Fatalf("%s sweep: %d events, want 2 cells + 1 final: %+v", pass, len(events), events)
		}
		final := events[len(events)-1]
		if !final.Finished || final.Cells != 2 {
			t.Fatalf("%s sweep: bad final event %+v", pass, final)
		}
		cellEvents := events[:len(events)-1]
		for _, ev := range cellEvents {
			if ev.Total != 2 || !strings.HasPrefix(ev.Cell, "scenarios/transpose/") {
				t.Fatalf("%s sweep: bad cell event %+v", pass, ev)
			}
			if ev.Cached != wantCached {
				t.Fatalf("%s sweep: cell %s cached=%v, want %v", pass, ev.Cell, ev.Cached, wantCached)
			}
		}
		if wantCached && (final.Replayed != 2 || final.Simulated != 0) {
			t.Fatalf("warm sweep split replayed=%d simulated=%d, want 2/0", final.Replayed, final.Simulated)
		}
		if !wantCached && (final.Replayed != 0 || final.Simulated != 2) {
			t.Fatalf("cold sweep split replayed=%d simulated=%d, want 0/2", final.Replayed, final.Simulated)
		}
		if final.Output != want.String() {
			t.Fatalf("%s sweep output differs from the harness rendering:\n%s\n---\n%s",
				pass, final.Output, want.String())
		}
	}
}

func TestSweepValidation(t *testing.T) {
	s := New(network.DefaultConfig(), nil)
	h := s.Handler()
	cases := []struct {
		name, body, want string
	}{
		{"empty", `{}`, "no experiments"},
		{"unknown family", `{"experiments":["fig99"]}`, "unknown experiment"},
		{"unknown family lists names", `{"experiments":["fig99"]}`, "scenarios"},
		{"static schedules", `{"experiments":["schedules"]}`, "static listing"},
		{"bad regexp", `{"experiments":["fig5"],"run":"("}`, "bad run pattern"},
		{"bad format", `{"experiments":["fig5"],"format":"xml"}`, "unknown format"},
		{"matches nothing", `{"experiments":["fig5"],"run":"zzz"}`, "matches no cell"},
		{"unknown field", `{"experiment":["fig5"]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(h, "/v1/sweep", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.want) {
				t.Fatalf("body %s does not mention %q", w.Body, tc.want)
			}
		})
	}
}
