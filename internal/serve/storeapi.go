package serve

import (
	"encoding/json"
	"net/http"
	"regexp"
	"time"

	"repro/internal/store"
)

// The /v1/store API serves the daemon's attached backend over HTTP —
// the server half of store.HTTPBackend. One cmserve with a -store
// directory becomes the hub of a distributed sweep: any number of
// cmexp -workers processes point their -store flag at the daemon URL
// and share its records and its claim space, so they partition cells
// among themselves with no scheduler and survive each other's deaths.
//
// Routes (all JSON; 503 on every one when the daemon has no store):
//
//	GET  /v1/store/index           -> {len, entries: [{hash,family,cell}]}
//	GET  /v1/store/objects/{hash}  -> Record        (404: miss)
//	PUT  /v1/store/objects/{hash}  <- Record        (204; 400: invalid)
//	POST /v1/store/claims          <- {op, hash, owner, ttl_ms}
//	POST /v1/store/invalidate      <- {pattern}     -> {removed}
//	POST /v1/store/flush           -> {flushed}

// requireStore guards every store route; a daemon started without
// -store has nothing to serve and says so.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.store == nil {
		httpError(w, http.StatusServiceUnavailable, "no store attached: start cmserve with -store")
		return false
	}
	return true
}

func (s *Server) handleStoreIndex(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	entries := s.store.Index()
	if entries == nil {
		entries = []store.IndexEntry{}
	}
	writeJSON(w, struct {
		Len     int                `json:"len"`
		Entries []store.IndexEntry `json:"entries"`
	}{Len: len(entries), Entries: entries})
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	hash := r.PathValue("hash")
	// PathValue decodes %2F, so a client-supplied hash could carry path
	// elements; only the exact 64-hex form HashSpec emits may reach the
	// store (and, on the disk backend, the filesystem). Anything else
	// can name no record, so it is a plain miss.
	if !store.ValidHash(hash) {
		httpError(w, http.StatusNotFound, "no record under %.12s (not a valid hash)", hash)
		return
	}
	rec, ok, err := s.store.Get(hash)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "get %.12s: %v", hash, err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no record under %.12s", hash)
		return
	}
	writeJSON(w, rec)
}

func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	hash := r.PathValue("hash")
	if !store.ValidHash(hash) {
		httpError(w, http.StatusBadRequest,
			"bad hash %q: want 64 lowercase hex characters", hash)
		return
	}
	// Payload records (a whole sweep table or trace recording) are the
	// large case; 16 MiB is far above any real record.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var rec store.Record
	if err := dec.Decode(&rec); err != nil {
		httpError(w, http.StatusBadRequest, "bad record: %v", err)
		return
	}
	if rec.Hash == "" {
		rec.Hash = hash
	}
	if rec.Hash != hash {
		httpError(w, http.StatusBadRequest,
			"record hash %.12s does not match path hash %.12s", rec.Hash, hash)
		return
	}
	// Validate before Put so a malformed record is the client's 400
	// (with per-field errors) and only real disk trouble is our 500.
	if err := rec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.store.Put(&rec); err != nil {
		httpError(w, http.StatusInternalServerError, "put %s: %v", rec.Cell, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// storeClaimRequest is the wire form of POST /v1/store/claims — the
// request store.HTTPBackend.Claim/Release send.
type storeClaimRequest struct {
	Op    string `json:"op"` // "claim" or "release"
	Hash  string `json:"hash"`
	Owner string `json:"owner"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

func (s *Server) handleStoreClaims(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req storeClaimRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad claim request: %v", err)
		return
	}
	if !store.ValidHash(req.Hash) {
		httpError(w, http.StatusBadRequest,
			"bad hash %q: want 64 lowercase hex characters", req.Hash)
		return
	}
	if req.Owner == "" {
		httpError(w, http.StatusBadRequest, "claim needs an owner")
		return
	}
	switch req.Op {
	case "claim":
		if req.TTLMS <= 0 {
			httpError(w, http.StatusBadRequest, "claim needs ttl_ms > 0")
			return
		}
		cl, err := s.store.Claim(req.Hash, req.Owner, time.Duration(req.TTLMS)*time.Millisecond)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "claim %.12s: %v", req.Hash, err)
			return
		}
		writeJSON(w, cl)
	case "release":
		if err := s.store.Release(req.Hash, req.Owner); err != nil {
			httpError(w, http.StatusInternalServerError, "release %.12s: %v", req.Hash, err)
			return
		}
		writeJSON(w, map[string]bool{"released": true})
	default:
		httpError(w, http.StatusBadRequest, "unknown claim op %q (want claim or release)", req.Op)
	}
}

// storeInvalidateRequest is the wire form of POST /v1/store/invalidate.
type storeInvalidateRequest struct {
	Pattern string `json:"pattern"`
}

func (s *Server) handleStoreInvalidate(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req storeInvalidateRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad invalidate request: %v", err)
		return
	}
	re, err := regexp.Compile(req.Pattern)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad pattern: %v", err)
		return
	}
	n, err := s.store.Invalidate(re)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "invalidate: %v", err)
		return
	}
	s.store.Flush()
	writeJSON(w, map[string]int{"removed": n})
}

func (s *Server) handleStoreFlush(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	if err := s.store.Flush(); err != nil {
		httpError(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	writeJSON(w, map[string]bool{"flushed": true})
}
