package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/cm5"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
)

// errBusy is the admission queue's overflow signal, mapped to 429.
var errBusy = errors.New("server at capacity: admission queue full")

// Server is the simulation daemon: an HTTP/JSON front end over the
// typed algorithm registry and the content-addressed result store.
//
// Request lifecycle of POST /v1/jobs: hash the spec; on a store hit,
// serve the recorded payload verbatim (no lock, no queue — hits can
// never be rejected); on a miss, join the single-flight group, so one
// leader per unique spec simulates while every concurrent duplicate
// waits for its payload; the leader passes the bounded admission queue
// (429 beyond workers+queue), simulates, persists, responds. Every
// stage honors the request context, so deadlines cancel queue and
// coalescing waits.
type Server struct {
	cfg     network.Config
	store   store.Backend // nil: serve without a cache
	workers int
	queue   int
	timeout time.Duration

	// traces resolves trace-driven jobs' recordings: memoized per
	// process and, when a store is attached, persisted content-addressed
	// — so each (app, size, nprocs, seed) records at most once ever.
	traces *trace.Library

	flight  *flightGroup
	sem     chan struct{} // admission: one slot per simulating worker
	pending atomic.Int64  // admitted + waiting leaders

	// simulate is cm5.Run, replaceable by tests to count and gate
	// simulations deterministically.
	simulate func(cm5.Job) (cm5.Result, error)

	start time.Time

	// reg is the server's metrics registry: the serve counters below,
	// the store's hit/miss/latency series, per-route request counters
	// and latency histograms, and the sim-level counters of every job
	// and sweep the server runs. GET /v1/metrics renders it; /v1/stats
	// reads the same counters, so the two views can never drift.
	reg   *obs.Registry
	stats serveStats
}

// serveStats are the daemon's request-outcome counters, held as obs
// handles so /v1/stats and /v1/metrics read identical values.
type serveStats struct {
	served, hits, misses, coalesced *obs.Counter
	rejected, failed, sweeps        *obs.Counter
}

// Option configures a Server.
type Option func(*Server)

// WithWorkers bounds how many simulations run concurrently (default:
// GOMAXPROCS).
func WithWorkers(n int) Option { return func(s *Server) { s.workers = n } }

// WithQueueDepth bounds how many simulation leaders may wait behind
// the busy workers before new ones are rejected with 429 (default 64).
// Store hits and coalesced duplicates never occupy the queue.
func WithQueueDepth(n int) Option { return func(s *Server) { s.queue = n } }

// WithTimeout sets the per-request deadline applied to every handler
// (default 2m; 0 disables).
func WithTimeout(d time.Duration) Option { return func(s *Server) { s.timeout = d } }

// New builds a Server over the given network configuration and result
// store backend — a local *store.Store, a remote *store.HTTPBackend,
// or nil for an uncached server. With a disk store attached the server
// also mounts the /v1/store API over it, becoming the hub of a
// distributed sweep: remote cmexp -workers processes read, write, and
// lease cells through this daemon.
func New(cfg network.Config, st store.Backend, opts ...Option) *Server {
	// Normalize a typed-nil backend pointer so the nil checks below
	// (and every handler's) see one kind of "no store".
	if b, ok := st.(*store.Store); ok && b == nil {
		st = nil
	}
	if b, ok := st.(*store.HTTPBackend); ok && b == nil {
		st = nil
	}
	s := &Server{
		cfg:      cfg,
		store:    st,
		traces:   trace.NewLibrary(st),
		workers:  runtime.GOMAXPROCS(0),
		queue:    64,
		timeout:  2 * time.Minute,
		flight:   newFlightGroup(),
		simulate: cm5.Run,
		start:    time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	if s.queue < 0 {
		s.queue = 0
	}
	s.sem = make(chan struct{}, s.workers)

	s.reg = obs.NewRegistry()
	s.stats = serveStats{
		served:    s.reg.Counter("serve_served_total"),
		hits:      s.reg.Counter("serve_hits_total"),
		misses:    s.reg.Counter("serve_misses_total"),
		coalesced: s.reg.Counter("serve_coalesced_total"),
		rejected:  s.reg.Counter("serve_rejected_total"),
		failed:    s.reg.Counter("serve_failed_total"),
		sweeps:    s.reg.Counter("serve_sweeps_total"),
	}
	s.reg.GaugeFunc("serve_in_flight", func() float64 { return float64(len(s.sem)) })
	s.reg.GaugeFunc("serve_queue_depth", func() float64 {
		if q := int(s.pending.Load()) - len(s.sem); q > 0 {
			return float64(q)
		}
		return 0
	})
	s.reg.GaugeFunc("serve_workers", func() float64 { return float64(s.workers) })
	s.reg.GaugeFunc("serve_queue_capacity", func() float64 { return float64(s.queue) })
	if st != nil {
		// Only the disk store owns counters; a remote backend's metrics
		// live on the daemon that hosts it.
		if ms, ok := st.(interface{ SetMetrics(*obs.Registry) }); ok {
			ms.SetMetrics(s.reg)
		}
		s.reg.GaugeFunc("store_records", func() float64 { return float64(st.Len()) })
	}
	return s
}

// Registry returns the server's metrics registry (the one /v1/metrics
// renders).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the daemon's full route table. Every route is
// wrapped with the per-route instrumentation middleware, so
// serve_requests_total{route,status,cache} and the latency histograms
// cover the whole surface, /v1/metrics itself included.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("GET /v1/metrics", s.instrument("/v1/metrics", s.handleMetrics))
	// The historical listing endpoints are aliases over one registry
	// table (listings.go); their response bytes are pinned by tests.
	for _, reg := range registries {
		mux.HandleFunc("GET "+reg.path, s.instrument(reg.path, s.handleLegacyListing(reg)))
	}
	mux.HandleFunc("GET /v1/registry", s.instrument("/v1/registry", s.handleRegistry))
	mux.HandleFunc("GET /v1/registry/{kind}", s.instrument("/v1/registry/{kind}", s.handleRegistryKind))
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJob))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	// The store API: the attached backend served over HTTP, which is
	// what lets remote cmexp -workers treat this daemon as their store.
	mux.HandleFunc("GET /v1/store/index", s.instrument("/v1/store/index", s.handleStoreIndex))
	mux.HandleFunc("GET /v1/store/objects/{hash}", s.instrument("/v1/store/objects", s.handleStoreGet))
	mux.HandleFunc("PUT /v1/store/objects/{hash}", s.instrument("/v1/store/objects", s.handleStorePut))
	mux.HandleFunc("POST /v1/store/claims", s.instrument("/v1/store/claims", s.handleStoreClaims))
	mux.HandleFunc("POST /v1/store/invalidate", s.instrument("/v1/store/invalidate", s.handleStoreInvalidate))
	mux.HandleFunc("POST /v1/store/flush", s.instrument("/v1/store/flush", s.handleStoreFlush))
	return s.withDeadline(mux)
}

// statusRecorder captures the response status (and the X-Cache header
// the job path sets) for the instrumentation middleware. It forwards
// Flush so the sweep stream keeps flushing through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with request counting by
// (route, status, cache outcome) and a per-route latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("serve_request_seconds", obs.SecondsBuckets(),
		obs.Label{Key: "route", Value: route})
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sr, r)
		hist.Observe(time.Since(t0).Seconds())
		cache := sr.Header().Get("X-Cache")
		if cache == "" {
			cache = "none"
		}
		s.reg.Counter("serve_requests_total",
			obs.Label{Key: "route", Value: route},
			obs.Label{Key: "status", Value: strconv.Itoa(sr.status)},
			obs.Label{Key: "cache", Value: cache},
		).Add(1)
	}
}

// handleMetrics renders the registry in Prometheus text exposition
// format — the same counters /v1/stats reports, plus the store, sim
// and per-route series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// withDeadline applies the per-request timeout to every handler's
// context; queue waits, coalescing waits, and sweep cell boundaries
// all observe it.
func (s *Server) withDeadline(h http.Handler) http.Handler {
	if s.timeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// httpError writes a JSON error document with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	doc, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(doc, '\n'))
}

// statusFor maps a job execution error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		// A validated spec that still cannot run (a broadcast root
		// outside the machine, a collective the size rejects) is the
		// client's problem, not the server's.
		return http.StatusBadRequest
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.stats.served.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var js JobSpec
	if err := dec.Decode(&js); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := js.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	hash, err := js.Hash(s.cfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hash spec: %v", err)
		return
	}
	payload, cache, err := s.runJob(r.Context(), js, hash)
	if err != nil {
		s.stats.failed.Add(1)
		if errors.Is(err, errBusy) {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, statusFor(err), "job %s: %v", hash[:12], err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Header().Set("X-Result-Hash", hash)
	w.Write(payload)
}

// runJob produces the canonical payload for one validated spec and
// reports how: "hit" (store), "miss" (this request simulated), or
// "coalesced" (an identical request was already in flight and this one
// rode along).
func (s *Server) runJob(ctx context.Context, js JobSpec, hash string) ([]byte, string, error) {
	if payload, ok := s.storeGet(hash); ok {
		s.stats.hits.Add(1)
		return payload, "hit", nil
	}
	c, leader := s.flight.join(hash)
	if !leader {
		s.stats.coalesced.Add(1)
		payload, err := c.wait(ctx)
		return payload, "coalesced", err
	}
	payload, err := s.flight.lead(hash, c, func() ([]byte, error) {
		release, err := s.admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		job, err := js.job(s.cfg, s.traces)
		if err != nil {
			return nil, err
		}
		// Sim-level counters (engine events, flows, solver wall time)
		// accumulate into the server registry; metrics are passive, so
		// the payload stays byte-identical.
		res, err := s.simulate(job.With(cm5.WithMetrics(s.reg)))
		if err != nil {
			return nil, err
		}
		s.stats.misses.Add(1)
		payload, err := encodeResult(js, hash, res)
		if err != nil {
			return nil, err
		}
		s.storePut(js, hash, payload)
		return payload, nil
	})
	return payload, "miss", err
}

// admit acquires one simulation slot, waiting in the bounded queue.
// Beyond workers+queue leaders in the system, it rejects immediately
// (429); a context deadline abandons the wait.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if int(s.pending.Add(1)) > s.workers+s.queue {
		s.pending.Add(-1)
		s.stats.rejected.Add(1)
		return nil, errBusy
	}
	select {
	case s.sem <- struct{}{}:
		return func() {
			<-s.sem
			s.pending.Add(-1)
		}, nil
	case <-ctx.Done():
		s.pending.Add(-1)
		return nil, ctx.Err()
	}
}

// storeGet returns the canonical payload recorded under hash. The
// object file holds it re-indented inside the record, so it is
// compacted back to the exact bytes encodeResult produced — warm
// responses are byte-identical to the cold ones.
func (s *Server) storeGet(hash string) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	rec, ok, err := s.store.Get(hash)
	if err != nil || !ok || len(rec.Payload) == 0 {
		// Read errors and payload-less records (table cells) fall
		// through to a fresh simulation, never to a failed request.
		return nil, false
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, rec.Payload); err != nil {
		return nil, false
	}
	buf.WriteByte('\n')
	return buf.Bytes(), true
}

// storePut persists a payload record; failures are deliberately
// swallowed — the cache can only ever cost a re-simulation, never a
// failed response.
func (s *Server) storePut(js JobSpec, hash string, payload []byte) {
	if s.store == nil {
		return
	}
	// NewRecord recomputes the hash from the spec and validates; a
	// drift between JobSpec.Hash and storeSpec would surface right here
	// instead of becoming a permanently unreachable record.
	rec, err := store.NewRecord("serve", fmt.Sprintf("serve/%s", hash[:12]), js.storeSpec(s.cfg))
	if err != nil || rec.Hash != hash {
		return
	}
	rec.Payload = json.RawMessage(payload)
	if s.store.Put(rec) == nil {
		s.store.Flush()
	}
}

// sweepRequest is the wire form of POST /v1/sweep: experiment families
// by name (the cmexp catalogue, aliases included), an optional cell
// regexp and seed, and the output format of the final rendering.
type sweepRequest struct {
	Experiments []string `json:"experiments"`
	Run         string   `json:"run,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Format      string   `json:"format,omitempty"`
}

// sweepEvent is one NDJSON line of the sweep stream. Cell events carry
// Cell/Done/Total/Cached as each cell completes; the final event
// carries Done=total plus the rendered output and the replay split; an
// Error event ends a stream that cannot continue.
type sweepEvent struct {
	Cell      string `json:"cell,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Finished  bool   `json:"finished,omitempty"`
	Cells     int    `json:"cells,omitempty"`
	Replayed  int    `json:"replayed,omitempty"`
	Simulated int    `json:"simulated,omitempty"`
	Format    string `json:"format,omitempty"`
	// Output is the families' rendered tables, byte-identical to
	// cmexp's stdout for the same experiments and format.
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.stats.served.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req sweepRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	if len(req.Experiments) == 0 {
		httpError(w, http.StatusBadRequest, "no experiments requested (known: %s)",
			strings.Join(exp.FamilyNames(), " "))
		return
	}
	format, err := exp.ParseFormat(req.Format)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	names, err := exp.ExpandFamilies(req.Experiments)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	explicit := map[string]bool{}
	for _, name := range req.Experiments {
		explicit[name] = true
	}
	var specs []*exp.TableSpec
	for _, name := range names {
		if name == "schedules" && !explicit[name] {
			// The static listing has no cells; when it arrives via the
			// "all" alias, skipping it beats failing the sweep. Asking
			// for it by name still gets FamilySpecs' explanation below.
			continue
		}
		ss, err := exp.FamilySpecsStore(name, s.cfg, s.store)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		specs = append(specs, ss...)
	}
	var filter *regexp.Regexp
	if req.Run != "" {
		if filter, err = regexp.Compile(req.Run); err != nil {
			httpError(w, http.StatusBadRequest, "bad run pattern: %v", err)
			return
		}
	}
	selected := 0
	for _, sp := range specs {
		for _, c := range sp.Cells {
			if filter == nil || filter.MatchString(c.Key) {
				selected++
			}
		}
	}
	if selected == 0 {
		httpError(w, http.StatusBadRequest,
			"run %q matches no cell of the selected experiments (keys look like scenarios/transpose/GS/N64)",
			req.Run)
		return
	}

	// A sweep occupies one admission slot for its whole duration (its
	// cells fan across the runner's own pool), so sweeps and job
	// leaders share the same overload behavior.
	release, err := s.admit(r.Context())
	if err != nil {
		s.stats.failed.Add(1)
		if errors.Is(err, errBusy) {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, statusFor(err), "sweep: %v", err)
		return
	}
	defer release()
	s.stats.sweeps.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev sweepEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	runner := exp.NewRunner(s.workers)
	runner.Seed = req.Seed
	runner.Filter = filter
	runner.Metrics = s.reg
	if s.store != nil {
		runner.Store = s.store
		runner.StoreBase = exp.StoreBase(s.cfg)
	}
	// OnProgress calls are serialized by the runner, so emit needs no
	// extra lock; each cell streams out the moment it completes.
	runner.OnProgress = func(p exp.Progress) {
		emit(sweepEvent{Cell: p.Key, Done: p.Done, Total: p.Total, Cached: p.Cached})
	}
	if err := runner.Run(r.Context(), specs...); err != nil {
		s.stats.failed.Add(1)
		emit(sweepEvent{Error: err.Error()})
		return
	}
	tables := make([]*exp.Table, len(specs))
	for i, sp := range specs {
		tables[i] = sp.Table
	}
	var out bytes.Buffer
	if err := exp.WriteTables(&out, format, tables); err != nil {
		s.stats.failed.Add(1)
		emit(sweepEvent{Error: err.Error()})
		return
	}
	emit(sweepEvent{
		Finished: true, Cells: selected,
		Replayed: runner.CacheHits(), Simulated: runner.CacheMisses(),
		Format: string(format), Output: out.String(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{"status": "ok"}
	if s.store != nil {
		doc["store"] = s.store.Location()
	}
	writeJSON(w, doc)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	inFlight := len(s.sem)
	pending := int(s.pending.Load())
	queued := pending - inFlight
	if queued < 0 {
		queued = 0
	}
	doc := map[string]any{
		"served":         s.stats.served.Value(),
		"hits":           s.stats.hits.Value(),
		"misses":         s.stats.misses.Value(),
		"coalesced":      s.stats.coalesced.Value(),
		"rejected":       s.stats.rejected.Value(),
		"failed":         s.stats.failed.Value(),
		"sweeps":         s.stats.sweeps.Value(),
		"in_flight":      inFlight,
		"queued":         queued,
		"workers":        s.workers,
		"queue_capacity": s.queue,
		"uptime_s":       time.Since(s.start).Seconds(),
	}
	if s.store != nil {
		doc["store"] = map[string]any{"dir": s.store.Location(), "records": s.store.Len()}
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(doc)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Write(append(data, '\n'))
}
