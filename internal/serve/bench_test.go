package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/network"
	"repro/internal/store"
)

// herdSize is the acceptance-criterion load: this many concurrent
// identical requests must trigger exactly one simulation.
const herdSize = 1000

// BenchmarkHerdIdentical is the in-repo load generator: each iteration
// fires herdSize concurrent POSTs of one never-before-seen spec (the
// seed advances per iteration, so every herd starts cold) and asserts
// that exactly one simulation ran for all of them. req/op and sims/op
// are reported so the coalescing ratio is visible in benchmark output:
//
//	go test ./internal/serve/ -bench HerdIdentical -benchtime 10x
func BenchmarkHerdIdentical(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s := New(network.DefaultConfig(), st, WithWorkers(4))
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := fmt.Sprintf(
			`{"algorithm":"GS","n":32,"bytes":64,"workload":"synthetic","density":0.25,"seed":%d}`,
			int64(i)+1)
		before := s.stats.misses.Value()
		var wg sync.WaitGroup
		var bad atomic.Int64
		for j := 0; j < herdSize; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(spec))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					bad.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := bad.Load(); n != 0 {
			b.Fatalf("iteration %d: %d of %d requests failed", i, n, herdSize)
		}
		if sims := s.stats.misses.Value() - before; sims != 1 {
			b.Fatalf("iteration %d: %d concurrent identical requests ran %d simulations, want exactly 1",
				i, herdSize, sims)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(herdSize), "req/op")
	b.ReportMetric(float64(s.stats.misses.Value())/float64(b.N), "sims/op")
}

// BenchmarkWarmHit measures pure store-hit throughput: a single spec
// simulated once up front, then replayed from the store every
// iteration (RunParallel saturates the handler from all CPUs).
func BenchmarkWarmHit(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s := New(network.DefaultConfig(), st)
	h := s.Handler()
	const spec = `{"algorithm":"BEX","n":32,"bytes":256}`
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(spec)))
	if warm.Code != http.StatusOK {
		b.Fatalf("warmup: status %d, body %s", warm.Code, warm.Body)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(spec))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	b.StopTimer()
	if s.stats.misses.Value() != 1 {
		b.Fatalf("warm benchmark simulated %d times, want 1", s.stats.misses.Value())
	}
}

// BenchmarkColdDistinct is the anti-benchmark: every request is a
// distinct spec, so nothing coalesces and nothing hits — the cost of
// one simulation per request, bounded by the admission queue.
func BenchmarkColdDistinct(b *testing.B) {
	s := New(network.DefaultConfig(), nil, WithQueueDepth(1<<20))
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			spec := fmt.Sprintf(`{"algorithm":"BEX","n":32,"bytes":64,"seed":%d}`, seed.Add(1))
			req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(spec))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d, body %s", w.Code, w.Body)
			}
		}
	})
}
