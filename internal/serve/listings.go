package serve

import (
	"bytes"
	"encoding/json"
	"net/http"

	"repro/cm5"
	"repro/internal/pattern"
	"repro/internal/trace"
)

// The daemon's five historical listing endpoints (/v1/algorithms,
// /v1/topologies, /v1/workloads, /v1/faultprofiles, /v1/traces) grew
// as five hand-rolled handlers with five slightly different JSON
// shapes. This file collapses them into one registry table: every
// listable name reduces to a uniform (name, kind, doc) row, served
// both through the uniform /v1/registry endpoints and through the
// historical paths — which remain byte-for-byte aliases, each
// rendering the same rows back into its original shape.

// listingEntry is the uniform registry row. Kind is the entry's
// subtype where the registry distinguishes one (algorithm kinds like
// "exchange" or "collective"); empty elsewhere.
type listingEntry struct {
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`
	Doc  string `json:"doc"`
}

// kv is one ordered JSON field of a legacy response object.
type kv struct {
	k string
	v any
}

// marshalOrdered renders fields as a JSON object preserving their
// order — the legacy shapes were struct-marshalled, so their field
// order is part of the pinned bytes and map marshalling (which sorts
// keys) cannot reproduce them.
func marshalOrdered(fields []kv) json.RawMessage {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, f := range fields {
		if i > 0 {
			buf.WriteByte(',')
		}
		k, _ := json.Marshal(f.k)
		v, _ := json.Marshal(f.v)
		buf.Write(k)
		buf.WriteByte(':')
		buf.Write(v)
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

// registryDef describes one listable registry: where its rows come
// from, and how the historical endpoint shaped them.
type registryDef struct {
	kind     string // registry name, also the /v1/registry/{kind} segment
	path     string // historical endpoint, kept as a pinned alias
	wrapper  string // historical top-level key ("algorithms", "fault_profiles", "apps")
	docKey   string // historical doc field name: "doc" or "desc"
	withKind bool   // historical entries carried the subtype field

	entries func(s *Server) []listingEntry
	// entryExtras appends historical trailer fields the uniform shape
	// drops (traces' default_size).
	entryExtras func(e listingEntry) []kv
	// docExtras adds historical top-level fields next to the wrapper
	// (traces' trace_version and recorded).
	docExtras func(s *Server) map[string]any
}

// registries is the single source every listing route serves from.
var registries = []registryDef{
	{
		kind: "algorithms", path: "/v1/algorithms", wrapper: "algorithms",
		docKey: "doc", withKind: true,
		entries: func(*Server) []listingEntry {
			var list []listingEntry
			for _, a := range cm5.Algorithms() {
				list = append(list, listingEntry{Name: a.Name(), Kind: string(a.Kind()), Doc: a.Doc()})
			}
			return list
		},
	},
	{
		kind: "topologies", path: "/v1/topologies", wrapper: "topologies", docKey: "doc",
		entries: func(*Server) []listingEntry {
			var list []listingEntry
			for _, name := range cm5.Topologies() {
				list = append(list, listingEntry{Name: name, Doc: cm5.TopologyDoc(name)})
			}
			return list
		},
	},
	{
		kind: "workloads", path: "/v1/workloads", wrapper: "workloads", docKey: "desc",
		entries: func(*Server) []listingEntry {
			var list []listingEntry
			for _, wl := range pattern.Workloads() {
				list = append(list, listingEntry{Name: wl.Name, Doc: wl.Desc})
			}
			return append(list, listingEntry{
				Name: SyntheticWorkload,
				Doc:  "random pattern of the given density (the paper's Table 11 shape)",
			})
		},
	},
	{
		kind: "faultprofiles", path: "/v1/faultprofiles", wrapper: "fault_profiles", docKey: "doc",
		entries: func(*Server) []listingEntry {
			var list []listingEntry
			for _, name := range cm5.FaultProfiles() {
				list = append(list, listingEntry{Name: name, Doc: cm5.FaultProfileDoc(name)})
			}
			return list
		},
	},
	{
		kind: "traces", path: "/v1/traces", wrapper: "apps", docKey: "doc",
		entries: func(*Server) []listingEntry {
			var list []listingEntry
			for _, name := range cm5.Traces() {
				a, _ := trace.Lookup(name)
				list = append(list, listingEntry{Name: name, Doc: a.Doc})
			}
			return list
		},
		entryExtras: func(e listingEntry) []kv {
			a, _ := trace.Lookup(e.Name)
			return []kv{{"default_size", a.DefaultSize}}
		},
		docExtras: func(s *Server) map[string]any {
			doc := map[string]any{"trace_version": trace.TraceVersion}
			if s.store != nil {
				// The recordings this store already holds, addressable
				// without re-running anything.
				recorded := []json.RawMessage{}
				if recs, err := s.store.All(); err == nil {
					for _, rec := range recs {
						if rec.Family == "trace" {
							recorded = append(recorded, marshalOrdered([]kv{{"cell", rec.Cell}, {"hash", rec.Hash}}))
						}
					}
				}
				doc["recorded"] = recorded
			}
			return doc
		},
	},
}

// legacyEntry renders one uniform row back into reg's historical
// per-entry shape.
func (reg registryDef) legacyEntry(e listingEntry) json.RawMessage {
	fields := []kv{{"name", e.Name}}
	if reg.withKind {
		fields = append(fields, kv{"kind", e.Kind})
	}
	fields = append(fields, kv{reg.docKey, e.Doc})
	if reg.entryExtras != nil {
		fields = append(fields, reg.entryExtras(e)...)
	}
	return marshalOrdered(fields)
}

// handleLegacyListing serves one historical listing path from the
// registry table, byte-identical to the handler it replaced.
func (s *Server) handleLegacyListing(reg registryDef) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var list []json.RawMessage
		for _, e := range reg.entries(s) {
			list = append(list, reg.legacyEntry(e))
		}
		doc := map[string]any{reg.wrapper: list}
		if reg.docExtras != nil {
			for k, v := range reg.docExtras(s) {
				doc[k] = v
			}
		}
		writeJSON(w, doc)
	}
}

// handleRegistry serves every registry in the one uniform shape:
// {"registry":[{"kind":...,"entries":[{name,kind,doc}...]}...]}.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	type group struct {
		Kind    string         `json:"kind"`
		Entries []listingEntry `json:"entries"`
	}
	groups := make([]group, 0, len(registries))
	for _, reg := range registries {
		entries := reg.entries(s)
		if entries == nil {
			entries = []listingEntry{}
		}
		groups = append(groups, group{Kind: reg.kind, Entries: entries})
	}
	writeJSON(w, map[string]any{"registry": groups})
}

// handleRegistryKind serves one registry's uniform rows.
func (s *Server) handleRegistryKind(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	for _, reg := range registries {
		if reg.kind != kind {
			continue
		}
		entries := reg.entries(s)
		if entries == nil {
			entries = []listingEntry{}
		}
		writeJSON(w, map[string]any{"kind": reg.kind, "entries": entries})
		return
	}
	known := make([]string, 0, len(registries))
	for _, reg := range registries {
		known = append(known, reg.kind)
	}
	httpError(w, http.StatusNotFound, "unknown registry %q (known: %v)", kind, known)
}
