package topo

import "fmt"

// Hypercube is a binary d-cube with e-cube routing: a message corrects
// the differing address bits from lowest to highest, each correction
// crossing the directed link between the current node and its neighbor
// across that dimension. E-cube's fixed correction order makes routes
// deterministic and deadlock-free.
type Hypercube struct {
	n, dims  int
	nodeRate float64
	linkRate float64
	name     string
}

// NewHypercube builds a hypercube over n nodes; n must be a power of
// two >= 2.
func NewHypercube(n int, nodeRate, linkRate float64) (*Hypercube, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("topo: hypercube size %d must be a power of two >= 2", n)
	}
	if !(nodeRate > 0) || !(linkRate > 0) {
		return nil, fmt.Errorf("topo: hypercube rates (node %v, link %v) must be positive", nodeRate, linkRate)
	}
	return &Hypercube{
		n: n, dims: log2(n),
		nodeRate: nodeRate, linkRate: linkRate,
		name: fmt.Sprintf("hypercube(%dd)", log2(n)),
	}, nil
}

// Name identifies the topology family and shape.
func (h *Hypercube) Name() string { return h.name }

// N returns the number of nodes.
func (h *Hypercube) N() int { return h.n }

// Dims returns the cube dimension (lg N).
func (h *Hypercube) Dims() int { return h.dims }

// NumLinks returns the number of directed links: 2 node links per node
// plus one outgoing cube edge per (node, dimension).
func (h *Hypercube) NumLinks() int { return 2*h.n + h.n*h.dims }

// edgeIndex returns the directed link from node across dimension d.
func (h *Hypercube) edgeIndex(node, d int) int { return 2*h.n + node*h.dims + d }

// Link returns the static description of link i.
func (h *Hypercube) Link(i int) Link {
	if i < 0 || i >= h.NumLinks() {
		panic(fmt.Sprintf("topo: hypercube link %d out of range [0,%d)", i, h.NumLinks()))
	}
	if i < 2*h.n {
		return Link{Cap: h.nodeRate, Level: 0, Name: nodeLinkName(i)}
	}
	rel := i - 2*h.n
	return Link{Cap: h.linkRate, Level: 1,
		Name: fmt.Sprintf("cube/n%d/d%d", rel/h.dims, rel%h.dims)}
}

// RouteAppend performs e-cube routing: correct differing bits from
// dimension 0 upward.
func (h *Hypercube) RouteAppend(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	h.checkNode(src)
	h.checkNode(dst)
	buf = append(buf, 2*src)
	cur := src
	for d := 0; d < h.dims; d++ {
		if (src^dst)>>uint(d)&1 == 0 {
			continue
		}
		buf = append(buf, h.edgeIndex(cur, d))
		cur ^= 1 << uint(d)
	}
	return append(buf, 2*dst+1)
}

func (h *Hypercube) checkNode(node int) {
	if node < 0 || node >= h.n {
		panic(fmt.Sprintf("topo: hypercube node %d out of range [0,%d)", node, h.n))
	}
}
