package topo_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fattree"
	"repro/internal/topo"
)

var testRates = topo.Rates{NodeLink: 20e6, Cluster4Up: 40e6, ThinPerNode: 5e6}

// routeCheck validates the generic route invariants for every pair of
// an n-node topology: routes start at src's injection link, end at
// dst's ejection link, stay in range, never repeat a link, and are
// empty exactly for src == dst.
func routeCheck(t *testing.T, tp topo.Topology) {
	t.Helper()
	n := tp.N()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			route := tp.RouteAppend(nil, src, dst)
			if src == dst {
				if len(route) != 0 {
					t.Fatalf("%s: self-route %d->%d not empty: %v", tp.Name(), src, dst, route)
				}
				continue
			}
			if len(route) < 2 {
				t.Fatalf("%s: route %d->%d too short: %v", tp.Name(), src, dst, route)
			}
			if route[0] != 2*src || route[len(route)-1] != 2*dst+1 {
				t.Fatalf("%s: route %d->%d must start at injection and end at ejection: %v",
					tp.Name(), src, dst, route)
			}
			seen := map[int]bool{}
			for _, l := range route {
				if l < 0 || l >= tp.NumLinks() {
					t.Fatalf("%s: route %d->%d link %d out of range [0,%d)",
						tp.Name(), src, dst, l, tp.NumLinks())
				}
				if seen[l] {
					t.Fatalf("%s: route %d->%d repeats link %d (%s)",
						tp.Name(), src, dst, l, tp.Link(l).Name)
				}
				seen[l] = true
				if c := tp.Link(l).Cap; !(c > 0) {
					t.Fatalf("%s: link %d (%s) capacity %v not positive",
						tp.Name(), l, tp.Link(l).Name, c)
				}
			}
		}
	}
}

func TestRegistryRoutesAllSizes(t *testing.T) {
	for _, name := range topo.Names() {
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			tp, err := topo.New(name, n, testRates)
			if err != nil {
				t.Fatalf("New(%s, %d): %v", name, n, err)
			}
			if tp.N() != n {
				t.Fatalf("New(%s, %d).N() = %d", name, n, tp.N())
			}
			routeCheck(t, tp)
		}
	}
}

// The fat-tree adapter must agree with the original fattree package on
// every route: same number of links, same traversal order, same
// level/group/direction per hop, and the original solver's capacities.
func TestFatTreeMatchesOriginalRouting(t *testing.T) {
	for _, n := range []int{2, 8, 16, 32, 64} {
		ft, err := topo.NewFatTree(n, testRates)
		if err != nil {
			t.Fatal(err)
		}
		tree := fattree.MustNew(n)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				want := tree.Route(src, dst)
				got := ft.RouteAppend(nil, src, dst)
				if len(got) != len(want) {
					t.Fatalf("n=%d %d->%d: %d links, original %d", n, src, dst, len(got), len(want))
				}
				for i, li := range got {
					l := ft.Link(li)
					if l.Name != want[i].String() {
						t.Fatalf("n=%d %d->%d hop %d: %s, original %s", n, src, dst, i, l.Name, want[i])
					}
					wantCap := 20e6
					switch {
					case want[i].Level == 1:
						wantCap = 40e6
					case want[i].Level >= 2:
						wantCap = float64(int(1)<<(2*uint(want[i].Level))) * 5e6
					}
					if l.Cap != wantCap {
						t.Fatalf("n=%d link %s: cap %v, want %v", n, want[i], l.Cap, wantCap)
					}
				}
			}
		}
	}
}

func TestTaperedFatTreeCaps(t *testing.T) {
	ft, err := topo.NewTaperedFatTree(64, 20e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Level-1 uplink: 4 nodes * 20e6 * 0.5 = 40e6; level-2: 16 * 20e6 * 0.25 = 80e6.
	wantByLevel := map[int]float64{1: 40e6, 2: 80e6}
	seen := map[int]bool{}
	for i := 0; i < ft.NumLinks(); i++ {
		l := ft.Link(i)
		if l.Level == 0 {
			continue
		}
		if l.Cap != wantByLevel[l.Level] {
			t.Fatalf("level %d cap %v, want %v", l.Level, l.Cap, wantByLevel[l.Level])
		}
		seen[l.Level] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("expected levels 1 and 2 to exist, saw %v", seen)
	}
}

func TestTorusRouting(t *testing.T) {
	tor, err := topo.NewTorus([]int{4, 4}, 20e6, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 3 in a 4-ring wraps backward: one hop, not three.
	route := tor.RouteAppend(nil, 0, 3)
	if len(route) != 3 {
		t.Fatalf("0->3 on a 4x4 torus should be inject + 1 wrap hop + eject, got %d links", len(route))
	}
	if name := tor.Link(route[1]).Name; !strings.Contains(name, "-d0") {
		t.Fatalf("0->3 should wrap negatively in dim 0, crossed %s", name)
	}
	// 0 -> 10 = (2,2): two hops per dimension.
	if route := tor.RouteAppend(nil, 0, 10); len(route) != 6 {
		t.Fatalf("0->10 should take 4 hops + node links, got %d", len(route))
	}
}

func TestHypercubeRouting(t *testing.T) {
	h, err := topo.NewHypercube(16, 20e6, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	// 5 -> 10 differs in all 4 bits: 4 cube hops, lowest dimension first.
	route := h.RouteAppend(nil, 5, 10)
	if len(route) != 6 {
		t.Fatalf("5->10 should take 4 cube hops + node links, got %d", len(route))
	}
	wantHops := []string{"cube/n5/d0", "cube/n4/d1", "cube/n6/d2", "cube/n2/d3"}
	for i, want := range wantHops {
		if got := h.Link(route[1+i]).Name; got != want {
			t.Fatalf("hop %d: %s, want %s", i, got, want)
		}
	}
}

func TestDragonflyRouting(t *testing.T) {
	df, err := topo.NewDragonfly(4, 4, 20e6, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	// Intra-group: inject, router, eject.
	if route := df.RouteAppend(nil, 0, 1); len(route) != 3 {
		t.Fatalf("intra-group route should have 3 links, got %d", len(route))
	}
	// Inter-group: inject, router, global, router, eject.
	route := df.RouteAppend(nil, 0, 5)
	if len(route) != 5 {
		t.Fatalf("inter-group route should have 5 links, got %d", len(route))
	}
	if name := df.Link(route[2]).Name; name != "global/g0-g1" {
		t.Fatalf("middle hop should be the g0->g1 global link, got %s", name)
	}
	if lvl := df.Link(route[2]).Level; lvl != 2 {
		t.Fatalf("global link level = %d, want 2", lvl)
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"fat-tree bad size", func() error { _, err := topo.NewFatTree(3, testRates); return err }},
		{"fat-tree zero rate", func() error {
			_, err := topo.NewFatTree(16, topo.Rates{NodeLink: 0, Cluster4Up: 1, ThinPerNode: 1})
			return err
		}},
		{"tapered bad ratio", func() error { _, err := topo.NewTaperedFatTree(16, 20e6, 0); return err }},
		{"tapered ratio > 1", func() error { _, err := topo.NewTaperedFatTree(16, 20e6, 1.5); return err }},
		{"torus bad dim", func() error { _, err := topo.NewTorus([]int{0, 4}, 1, 1); return err }},
		{"torus no dims", func() error { _, err := topo.NewTorus(nil, 1, 1); return err }},
		{"torus one node", func() error { _, err := topo.NewTorus([]int{1}, 1, 1); return err }},
		{"torus bad rate", func() error { _, err := topo.NewTorus([]int{4, 4}, -1, 1); return err }},
		{"hypercube bad size", func() error { _, err := topo.NewHypercube(12, 1, 1); return err }},
		{"hypercube bad rate", func() error { _, err := topo.NewHypercube(16, 1, 0); return err }},
		{"dragonfly one group", func() error { _, err := topo.NewDragonfly(1, 8, 1, 1); return err }},
		{"dragonfly bad rate", func() error { _, err := topo.NewDragonfly(4, 4, 1, -2); return err }},
		{"registry bad size", func() error { _, err := topo.New("fat-tree", 12, testRates); return err }},
	}
	for _, c := range cases {
		if err := c.err(); err == nil {
			t.Errorf("%s: expected a descriptive error, got nil", c.name)
		}
	}
}

func TestUnknownTopologyListsNames(t *testing.T) {
	_, err := topo.New("moebius", 16, testRates)
	if !errors.Is(err, topo.ErrUnknownTopology) {
		t.Fatalf("expected ErrUnknownTopology, got %v", err)
	}
	for _, name := range topo.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error should list %q: %v", name, err)
		}
	}
}

func TestDocCoversEveryName(t *testing.T) {
	for _, name := range topo.Names() {
		if topo.Doc(name) == "" {
			t.Errorf("no doc line for topology %q", name)
		}
	}
	if topo.Doc("moebius") != "" {
		t.Errorf("unknown names should have empty docs")
	}
}

func ExampleNew() {
	tp, _ := topo.New("hypercube", 8, topo.Rates{NodeLink: 20e6, Cluster4Up: 40e6, ThinPerNode: 5e6})
	route := tp.RouteAppend(nil, 0, 7)
	fmt.Println(tp.Name(), len(route))
	// Output: hypercube(3d) 5
}
