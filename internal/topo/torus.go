package topo

import (
	"fmt"
	"strings"
)

// Torus is a k-dimensional wrap-around mesh with dimension-order
// routing: a message corrects its coordinate in dimension 0 first, then
// dimension 1, and so on, always along the shorter wrap direction
// (ties go the positive way). Each hop crosses one directed
// neighbor link of capacity linkRate; injection and ejection links cap
// every flow at nodeRate.
type Torus struct {
	dims               []int
	stride             []int // stride[d]: node-index step of +1 in dimension d
	n                  int
	name               string
	nodeRate, linkRate float64
}

// NewTorus builds a torus with the given dimension sizes (2-D and 3-D
// are the common cases; any length >= 1 works). Every dimension must be
// at least 1 and the total node count at least 2.
func NewTorus(dims []int, nodeRate, linkRate float64) (*Torus, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topo: torus needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topo: torus dimension %d must be at least 1", d)
		}
		n *= d
	}
	if n < 2 {
		return nil, fmt.Errorf("topo: torus with %d node(s) needs at least 2", n)
	}
	if !(nodeRate > 0) || !(linkRate > 0) {
		return nil, fmt.Errorf("topo: torus rates (node %v, link %v) must be positive", nodeRate, linkRate)
	}
	t := &Torus{
		dims:     append([]int(nil), dims...),
		stride:   make([]int, len(dims)),
		n:        n,
		nodeRate: nodeRate,
		linkRate: linkRate,
	}
	s := 1
	for d := range dims {
		t.stride[d] = s
		s *= dims[d]
	}
	shape := make([]string, len(dims))
	for i, d := range dims {
		shape[i] = fmt.Sprint(d)
	}
	t.name = fmt.Sprintf("torus%dd(%s)", len(dims), strings.Join(shape, "x"))
	return t, nil
}

// Dims returns the dimension sizes.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

// Name identifies the topology family and shape.
func (t *Torus) Name() string { return t.name }

// N returns the number of nodes.
func (t *Torus) N() int { return t.n }

// NumLinks returns the number of directed links: 2 node links per node
// plus a +/- neighbor link per (node, dimension).
func (t *Torus) NumLinks() int { return 2*t.n + 2*t.n*len(t.dims) }

// hopIndex returns the directed neighbor link leaving node in dimension
// d, positively (plus) or negatively.
func (t *Torus) hopIndex(node, d int, plus bool) int {
	i := 2*t.n + 2*(node*len(t.dims)+d)
	if !plus {
		i++
	}
	return i
}

// Link returns the static description of link i.
func (t *Torus) Link(i int) Link {
	if i < 0 || i >= t.NumLinks() {
		panic(fmt.Sprintf("topo: torus link %d out of range [0,%d)", i, t.NumLinks()))
	}
	if i < 2*t.n {
		return Link{Cap: t.nodeRate, Level: 0, Name: nodeLinkName(i)}
	}
	rel := i - 2*t.n
	node, d, dir := rel/2/len(t.dims), rel/2%len(t.dims), "+"
	if rel%2 == 1 {
		dir = "-"
	}
	return Link{Cap: t.linkRate, Level: 1, Name: fmt.Sprintf("torus/n%d/%sd%d", node, dir, d)}
}

// coord returns node's coordinate in dimension d.
func (t *Torus) coord(node, d int) int { return node / t.stride[d] % t.dims[d] }

// RouteAppend performs dimension-order routing along the shorter wrap
// direction in each dimension.
func (t *Torus) RouteAppend(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	t.checkNode(src)
	t.checkNode(dst)
	buf = append(buf, 2*src)
	cur := src
	for d := range t.dims {
		size := t.dims[d]
		delta := (t.coord(dst, d) - t.coord(cur, d) + size) % size
		if delta == 0 {
			continue
		}
		forward, backward := delta, size-delta
		if forward <= backward {
			for s := 0; s < forward; s++ {
				buf = append(buf, t.hopIndex(cur, d, true))
				cur = t.step(cur, d, 1)
			}
		} else {
			for s := 0; s < backward; s++ {
				buf = append(buf, t.hopIndex(cur, d, false))
				cur = t.step(cur, d, -1)
			}
		}
	}
	return append(buf, 2*dst+1)
}

// step moves node by dir (+1 or -1) in dimension d with wrap-around.
func (t *Torus) step(node, d, dir int) int {
	c := t.coord(node, d)
	next := (c + dir + t.dims[d]) % t.dims[d]
	return node + (next-c)*t.stride[d]
}

func (t *Torus) checkNode(node int) {
	if node < 0 || node >= t.n {
		panic(fmt.Sprintf("topo: torus node %d out of range [0,%d)", node, t.n))
	}
}

// nodeLinkName renders the shared Level-0 link naming: "node<i>/in"
// (injection, toward the network) and "node<i>/out" (ejection).
func nodeLinkName(i int) string {
	dir := "in"
	if i%2 == 1 {
		dir = "out"
	}
	return fmt.Sprintf("node%d/%s", i/2, dir)
}
