package topo

// Fault-aware routing. A Topology's RouteAppend is static and minimal;
// when links fail at runtime the data network needs routes over the
// surviving link graph. Topologies expose no adjacency structure beyond
// the routing function itself, so the reroute primitive is built from
// it: if the direct route crosses a dead link, the message detours
// through an intermediate node ("via") whose two legs — src -> via and
// via -> dst — are both clean. The via scan order is a deterministic
// function of the pair, so reroutes are bit-reproducible and detour
// load spreads across candidate intermediates instead of piling onto
// node 0.
//
// A detour route traverses the via node's ejection and injection links,
// modeling cut-through forwarding through that node's network
// interface: the via pays interface bandwidth for traffic it relays,
// exactly the cost that makes rerouting around a dead link expensive
// rather than free.

// RouteClean reports whether no link of route is down.
func RouteClean(route []int, down func(int) bool) bool {
	for _, l := range route {
		if down(l) {
			return false
		}
	}
	return true
}

// DetourRoute appends a src -> dst route that avoids every link for
// which down returns true. The direct route is used when it is already
// clean; otherwise the message detours through the first intermediate
// node (in a deterministic pair-dependent scan order) whose both legs
// are clean. The second return is false when no such route exists —
// src or dst has a dead interface link, or the failures cut the
// network — in which case buf's extension is meaningless.
func DetourRoute(t Topology, buf []int, src, dst int, down func(int) bool) ([]int, bool) {
	base := len(buf)
	buf = t.RouteAppend(buf, src, dst)
	if RouteClean(buf[base:], down) {
		return buf, true
	}
	n := t.N()
	// Scan vias starting at a pair-dependent offset: deterministic, and
	// different pairs favor different intermediates.
	start := (src*31 + dst*17) % n
	for k := 0; k < n; k++ {
		via := (start + k) % n
		if via == src || via == dst {
			continue
		}
		buf = buf[:base]
		buf = t.RouteAppend(buf, src, via)
		if !RouteClean(buf[base:], down) {
			continue
		}
		mid := len(buf)
		buf = t.RouteAppend(buf, via, dst)
		if RouteClean(buf[mid:], down) {
			return buf, true
		}
	}
	return buf[:base], false
}
