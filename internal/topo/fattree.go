package topo

import (
	"fmt"

	"repro/internal/fattree"
)

// FatTree is the 4-ary fat tree as a link-capacity graph: each node has
// an injection and an ejection link, and each level-l cluster has one
// aggregated uplink bundle and one downlink bundle toward the level
// above. Capacities come either from the calibrated CM-5 rates
// (NewFatTree — 20/10/5 MB/s envelope, byte-identical to the original
// hardwired solver) or from a geometric taper (NewTaperedFatTree).
type FatTree struct {
	tree    *fattree.Topology
	name    string
	caps    []float64 // caps[l]: capacity of one level-l cluster uplink (l >= 1)
	offset  []int     // offset[l]: first link index of level l's bundles
	nodeCap float64
	nLinks  int
}

// NewFatTree builds the CM-5 fat tree over n nodes with the machine's
// rate constants: node links at r.NodeLink, level-1 cluster uplinks at
// r.Cluster4Up, and level-l uplinks (l >= 2) at 4^l * r.ThinPerNode —
// exactly the capacities the original fixed-topology solver used, so
// simulations over this topology are byte-identical to it.
func NewFatTree(n int, r Rates) (*FatTree, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return newFatTree(n, "fat-tree", r.NodeLink, func(level int) float64 {
		if level == 1 {
			return r.Cluster4Up
		}
		nodes := 1 << (2 * uint(level))
		return float64(nodes) * r.ThinPerNode
	})
}

// NewTaperedFatTree builds a fat tree whose per-node bandwidth share
// shrinks geometrically toward the root: a level-l cluster uplink has
// capacity 4^l * nodeRate * taper^l. taper = 1 is a full-bandwidth
// (non-blocking) tree; taper = 0.5 halves the per-node share at every
// level (the CM-5 matches it at levels 1-2 before flattening at
// 5 MB/s). taper must be in (0, 1].
func NewTaperedFatTree(n int, nodeRate, taper float64) (*FatTree, error) {
	if !(nodeRate > 0) {
		return nil, fmt.Errorf("topo: tapered fat-tree node rate %v must be positive", nodeRate)
	}
	if !(taper > 0) || taper > 1 {
		return nil, fmt.Errorf("topo: taper ratio %v must be in (0, 1]", taper)
	}
	// perNode[l] = nodeRate * taper^l, built multiplicatively so the
	// floats are deterministic without math.Pow.
	name := fmt.Sprintf("tapered(%g)", taper)
	perNode := nodeRate
	shares := []float64{}
	for c := 1; c < n; c *= fattree.Arity {
		perNode *= taper
		shares = append(shares, perNode)
	}
	return newFatTree(n, name, nodeRate, func(level int) float64 {
		nodes := 1 << (2 * uint(level))
		return float64(nodes) * shares[level-1]
	})
}

// newFatTree assembles the link index space: node links first (2 per
// node), then per level l = 1..Levels()-1 the cluster bundles (2 per
// cluster). The top level has no uplink — routes never cross it.
func newFatTree(n int, name string, nodeCap float64, capAt func(level int) float64) (*FatTree, error) {
	tree, err := fattree.New(n)
	if err != nil {
		return nil, err
	}
	f := &FatTree{tree: tree, name: name, nodeCap: nodeCap}
	f.caps = make([]float64, tree.Levels())
	f.offset = make([]int, tree.Levels())
	idx := 2 * n
	for l := 1; l < tree.Levels(); l++ {
		f.caps[l] = capAt(l)
		f.offset[l] = idx
		idx += 2 * tree.NumGroups(l)
	}
	f.nLinks = idx
	return f, nil
}

// Name identifies the topology family.
func (f *FatTree) Name() string { return f.name }

// N returns the number of nodes.
func (f *FatTree) N() int { return f.tree.N() }

// NumLinks returns the number of directed links.
func (f *FatTree) NumLinks() int { return f.nLinks }

// Tree returns the underlying grouping structure.
func (f *FatTree) Tree() *fattree.Topology { return f.tree }

// linkIndex returns the index of the level-l bundle of cluster g in the
// given direction (l >= 1).
func (f *FatTree) linkIndex(level, group int, up bool) int {
	i := f.offset[level] + 2*group
	if !up {
		i++
	}
	return i
}

// Link returns the static description of link i.
func (f *FatTree) Link(i int) Link {
	if i < 0 || i >= f.nLinks {
		panic(fmt.Sprintf("topo: fat-tree link %d out of range [0,%d)", i, f.nLinks))
	}
	if i < 2*f.tree.N() {
		id := fattree.LinkID{Level: 0, Group: i / 2, Up: i%2 == 0}
		return Link{Cap: f.nodeCap, Level: 0, Name: id.String()}
	}
	level := len(f.offset) - 1
	for l := 1; l < len(f.offset); l++ {
		if i < f.offset[l] {
			level = l - 1
			break
		}
	}
	rel := i - f.offset[level]
	id := fattree.LinkID{Level: level, Group: rel / 2, Up: rel%2 == 0}
	return Link{Cap: f.caps[level], Level: level, Name: id.String()}
}

// RouteAppend appends src's injection link, the uplinks of src's
// clusters below the LCA, the downlinks of dst's clusters below the
// LCA, and dst's ejection link — the exact traversal order of the
// original solver.
func (f *FatTree) RouteAppend(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	lca := f.tree.LCALevel(src, dst)
	buf = append(buf, 2*src)
	for l := 1; l < lca; l++ {
		buf = append(buf, f.linkIndex(l, f.tree.Group(src, l), true))
	}
	for l := lca - 1; l >= 1; l-- {
		buf = append(buf, f.linkIndex(l, f.tree.Group(dst, l), false))
	}
	return append(buf, 2*dst+1)
}
