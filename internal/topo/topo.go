// Package topo models interconnect topologies for the flow-level data
// network simulator: a Topology is a directed link-capacity graph plus a
// routing function mapping a (src, dst) node pair to the ordered list of
// links its messages traverse.
//
// The max-min fair solver in internal/network is topology-agnostic: it
// only sees link indices and capacities. Every constructor here —
// the CM-5 fat tree (the calibrated default), tapered fat trees, 2-D and
// 3-D tori with dimension-order routing, hypercubes with e-cube routing,
// and dragonflies (groups joined by global links) — therefore plugs into
// the same simulator, multiplying every workload and scheduling
// algorithm by a topology axis.
//
// Conventions shared by all constructors:
//
//   - Every node has a dedicated injection link (index 2*node) and
//     ejection link (index 2*node+1) at Level 0, so any single flow is
//     capped by the node interface rate exactly as on the real machine.
//   - Interior links use Level >= 1; the level is the topology's natural
//     reporting tier (tree level, mesh hop class, dragonfly local/global).
//   - Routing is deterministic and minimal: the same (src, dst) pair
//     always yields the same link sequence, so simulations are
//     bit-reproducible.
package topo

import (
	"errors"
	"fmt"
	"strings"
)

// Link describes one directed link's static properties.
type Link struct {
	// Cap is the link capacity in bytes per second.
	Cap float64
	// Level is the reporting tier: 0 for node injection/ejection links,
	// >= 1 for interior links (tree level, torus/hypercube hop class,
	// dragonfly router=1 / global=2).
	Level int
	// Name is a stable diagnostic identifier, e.g. "L2/3/up" or
	// "torus/n5/+d0".
	Name string
}

// Topology is a directed link-capacity graph plus a routing function.
// Implementations must be deterministic: Route must return the same
// link sequence for the same pair every time, and all capacities must
// be fixed at construction.
type Topology interface {
	// Name identifies the topology family and shape, e.g. "fat-tree" or
	// "torus2d(8x8)".
	Name() string
	// N returns the number of nodes.
	N() int
	// NumLinks returns the number of directed links; valid link indices
	// are [0, NumLinks).
	NumLinks() int
	// Link returns the static description of link i.
	Link(i int) Link
	// RouteAppend appends the link indices a src -> dst message
	// traverses, in traversal order, to buf and returns the extended
	// slice. src == dst appends nothing: node-local data never enters
	// the network.
	RouteAppend(buf []int, src, dst int) []int
}

// Rates carries the machine rate constants topology constructors consume
// (a subset of the network Config, kept separate so this package stays
// free of simulator dependencies). All rates are bytes per second.
type Rates struct {
	// NodeLink is the node injection/ejection capacity (20 MB/s on the
	// CM-5) — the peak rate of any single flow on every topology.
	NodeLink float64
	// Cluster4Up is the fat tree's level-1 cluster uplink capacity
	// (40 MB/s on the CM-5).
	Cluster4Up float64
	// ThinPerNode is the fat tree's guaranteed per-node share above
	// level 1 (5 MB/s on the CM-5).
	ThinPerNode float64
}

// Validate rejects rate sets that would drive the max-min solver to NaN
// or zero-progress allocations.
func (r Rates) Validate() error {
	switch {
	case !(r.NodeLink > 0):
		return fmt.Errorf("topo: node link rate %v must be positive", r.NodeLink)
	case !(r.Cluster4Up > 0):
		return fmt.Errorf("topo: cluster-4 uplink rate %v must be positive", r.Cluster4Up)
	case !(r.ThinPerNode > 0):
		return fmt.Errorf("topo: thin per-node rate %v must be positive", r.ThinPerNode)
	}
	return nil
}

// ErrUnknownTopology is returned (wrapped, with the requested name and
// the known names) by New on a registry miss.
var ErrUnknownTopology = errors.New("unknown topology")

// builder constructs a registered topology for an n-node machine.
type builder struct {
	name  string
	doc   string
	build func(n int, r Rates) (Topology, error)
}

// builders lists the registered topology families in canonical order.
// Machine sizes are powers of two throughout the simulator, and every
// default shape below is defined for any power of two >= 2.
var builders = []builder{
	{"fat-tree", "the calibrated CM-5 4-ary fat tree (20/10/5 MB/s envelope)",
		func(n int, r Rates) (Topology, error) { return NewFatTree(n, r) }},
	{"tapered", "fat tree whose uplink capacity shrinks geometrically (taper 0.5) at every level",
		func(n int, r Rates) (Topology, error) { return NewTaperedFatTree(n, r.NodeLink, 0.5) }},
	{"torus2d", "2-D torus, near-square shape, dimension-order routing",
		func(n int, r Rates) (Topology, error) { return NewTorus(splitDims(n, 2), r.NodeLink, r.NodeLink) }},
	{"torus3d", "3-D torus, near-cubic shape, dimension-order routing",
		func(n int, r Rates) (Topology, error) { return NewTorus(splitDims(n, 3), r.NodeLink, r.NodeLink) }},
	{"hypercube", "binary hypercube, e-cube (lowest-dimension-first) routing",
		func(n int, r Rates) (Topology, error) { return NewHypercube(n, r.NodeLink, r.NodeLink) }},
	{"dragonfly", "fully connected groups joined by tapered all-to-all global links",
		func(n int, r Rates) (Topology, error) {
			g := 1 << ((log2(n) + 1) / 2) // near-square split: groups >= group size
			return NewDragonfly(g, n/g, r.NodeLink, r.NodeLink)
		}},
}

// Names returns the registered topology names in canonical order.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.name
	}
	return out
}

// Doc returns the one-line description of a registered topology name,
// or "" for an unknown name.
func Doc(name string) string {
	for _, b := range builders {
		if b.name == name {
			return b.doc
		}
	}
	return ""
}

// New builds the named topology in its default shape for an n-node
// machine using the given rates. n must be a power of two >= 2 (machine
// sizes are powers of two throughout the simulator). A name miss
// returns an error wrapping ErrUnknownTopology that lists every known
// name.
func New(name string, n int, r Rates) (Topology, error) {
	for _, b := range builders {
		if b.name == name {
			if n < 2 || n&(n-1) != 0 {
				return nil, fmt.Errorf("topo: %s size %d must be a power of two >= 2", name, n)
			}
			if err := r.Validate(); err != nil {
				return nil, err
			}
			return b.build(n, r)
		}
	}
	return nil, fmt.Errorf("topo: %w %q (known: %s)",
		ErrUnknownTopology, name, strings.Join(Names(), " "))
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// splitDims factors a power of two into d near-equal power-of-two
// dimensions, largest first, each at least 1.
func splitDims(n, d int) []int {
	lg := log2(n)
	dims := make([]int, d)
	for i := range dims {
		m := d - i            // dimensions still to fill
		e := (lg + m - 1) / m // distribute the exponent, largest first
		dims[i] = 1 << e
		lg -= e
	}
	return dims
}
