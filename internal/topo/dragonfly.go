package topo

import "fmt"

// Dragonfly is the aggregated two-tier dragonfly: nodes are partitioned
// into groups, each group's router serves its nodes through a shared
// local crossbar link (Level 1), and every ordered group pair is joined
// by one directed global link (Level 2). Routes are minimal: source
// router, one global hop, destination router. The global links are the
// tapered, contended resource — exactly the role the upper fat-tree
// levels play on the CM-5 — while the router links model finite local
// switching capacity.
type Dragonfly struct {
	groups, size int
	nodeRate     float64
	localRate    float64 // per-group router crossbar capacity
	globalRate   float64 // per directed group-pair global link capacity
	name         string
}

// NewDragonfly builds a dragonfly of groups x size nodes. The router
// crossbar capacity is size * nodeRate (full local injection bandwidth),
// and each directed global link gets size * nodeRate / (2 * (groups-1)):
// a group's aggregate global bandwidth is half its injection bandwidth,
// spread evenly over its peers — a balanced, tapered global tier.
func NewDragonfly(groups, size int, nodeRate, linkRate float64) (*Dragonfly, error) {
	if groups < 2 || size < 1 {
		return nil, fmt.Errorf("topo: dragonfly needs >= 2 groups of >= 1 node (got %dx%d)", groups, size)
	}
	if !(nodeRate > 0) || !(linkRate > 0) {
		return nil, fmt.Errorf("topo: dragonfly rates (node %v, link %v) must be positive", nodeRate, linkRate)
	}
	return &Dragonfly{
		groups: groups, size: size,
		nodeRate:   nodeRate,
		localRate:  float64(size) * linkRate,
		globalRate: float64(size) * linkRate / (2 * float64(groups-1)),
		name:       fmt.Sprintf("dragonfly(%dx%d)", groups, size),
	}, nil
}

// Name identifies the topology family and shape.
func (g *Dragonfly) Name() string { return g.name }

// N returns the number of nodes.
func (g *Dragonfly) N() int { return g.groups * g.size }

// Groups returns the group count and group size.
func (g *Dragonfly) Groups() (groups, size int) { return g.groups, g.size }

// NumLinks returns the number of directed links: 2 node links per node,
// one router link per group, and one global link per ordered group pair.
func (g *Dragonfly) NumLinks() int {
	n := g.N()
	return 2*n + g.groups + g.groups*(g.groups-1)
}

// routerIndex returns group gr's shared crossbar link.
func (g *Dragonfly) routerIndex(gr int) int { return 2*g.N() + gr }

// globalIndex returns the directed global link from group a to group b.
func (g *Dragonfly) globalIndex(a, b int) int {
	rel := b
	if b > a {
		rel--
	}
	return 2*g.N() + g.groups + a*(g.groups-1) + rel
}

// Link returns the static description of link i.
func (g *Dragonfly) Link(i int) Link {
	n := g.N()
	if i < 0 || i >= g.NumLinks() {
		panic(fmt.Sprintf("topo: dragonfly link %d out of range [0,%d)", i, g.NumLinks()))
	}
	switch {
	case i < 2*n:
		return Link{Cap: g.nodeRate, Level: 0, Name: nodeLinkName(i)}
	case i < 2*n+g.groups:
		return Link{Cap: g.localRate, Level: 1, Name: fmt.Sprintf("router/g%d", i-2*n)}
	default:
		rel := i - 2*n - g.groups
		a, b := rel/(g.groups-1), rel%(g.groups-1)
		if b >= a {
			b++
		}
		return Link{Cap: g.globalRate, Level: 2, Name: fmt.Sprintf("global/g%d-g%d", a, b)}
	}
}

// RouteAppend routes minimally: injection, source router, a global hop
// when the groups differ, destination router, ejection. Intra-group
// traffic crosses its group's router once.
func (g *Dragonfly) RouteAppend(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	g.checkNode(src)
	g.checkNode(dst)
	buf = append(buf, 2*src)
	gs, gd := src/g.size, dst/g.size
	if gs == gd {
		buf = append(buf, g.routerIndex(gs))
	} else {
		buf = append(buf, g.routerIndex(gs), g.globalIndex(gs, gd), g.routerIndex(gd))
	}
	return append(buf, 2*dst+1)
}

func (g *Dragonfly) checkNode(node int) {
	if node < 0 || node >= g.N() {
		panic(fmt.Sprintf("topo: dragonfly node %d out of range [0,%d)", node, g.N()))
	}
}
