// Package cmmd provides a CMMD-like node programming model on top of the
// CM-5 simulator: each simulated SPARC node runs a Go function and
// communicates through synchronous (rendezvous) message passing, plus
// control-network collectives.
//
// The semantics deliberately mirror the CMMD library version the paper
// used: "the current version of CM-5 software supports only synchronous
// communication". A Send blocks until the destination posts a matching
// Recv and the transfer completes; a node serves one rendezvous at a
// time. This receiver-side serialization is the effect that makes the
// paper's Linear Exchange and Linear Scheduling algorithms collapse.
//
// Timing model per message:
//
//	sender:   SendOverhead (CPU) -> wait for rendezvous -> transfer -> return
//	transfer: WireLatency + wire bytes at the flow's max-min fair rate
//	receiver: wait for sender -> transfer -> RecvOverhead (copy-out) -> return
//
// A lone 0-byte message therefore costs SendOverhead + WireLatency +
// 1 packet + RecvOverhead = 88 us with the default configuration — the
// paper's measured CM-5 latency.
package cmmd

import (
	"fmt"

	"repro/internal/fattree"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Wildcards for Recv matching.
const (
	AnySrc = -1
	AnyTag = -1
)

// Message is a received message.
type Message struct {
	Src  int
	Tag  int
	Data []byte // nil for size-only messages sent with SendN
	Size int    // user bytes (== len(Data) when Data != nil)
}

// sendReq is a sender waiting to rendezvous with the destination
// (synchronous mode), or an in-flight buffered message (asynchronous
// mode).
type sendReq struct {
	src, dst, tag int
	data          []byte
	size          int
	proc          *sim.Proc

	// Asynchronous-mode state.
	async   bool
	arrived bool
	waiter  *recvReq // receiver parked on this in-flight message

	posted sim.Time // when the sender entered the rendezvous (for tracing)
}

// recvReq is a posted receive waiting for a matching sender.
type recvReq struct {
	src, tag int // wanted source/tag (may be AnySrc/AnyTag)
	proc     *sim.Proc
	result   Message
	got      bool
}

// Node is one simulated processing node. All methods must be called from
// the node's own program function.
type Node struct {
	id   int
	m    *Machine
	proc *sim.Proc

	pendingSends []*sendReq // inbound senders in arrival order
	postedRecv   *recvReq   // at most one: programs are single-threaded

	finished sim.Time
	sends    int
	recvs    int
	sentUser int64

	// slow is the straggler multiplier applied to every local time cost
	// (send/recv overheads, memory copies, compute) from the moment a
	// fault event sets it; 0 means healthy. Engine-set, engine-read.
	slow float64
}

// ID returns this node's rank in [0, N).
func (n *Node) ID() int { return n.id }

// N returns the partition size.
func (n *Node) N() int { return len(n.m.nodes) }

// Now returns the current virtual time.
func (n *Node) Now() sim.Time { return n.proc.Now() }

// Machine returns the machine this node belongs to.
func (n *Node) Machine() *Machine { return n.m }

// Compute advances this node's virtual time by d (models local CPU
// work). A straggler node (see Machine.ApplyFaults) stretches every
// local cost by its slowdown factor.
func (n *Node) Compute(d sim.Time) { n.proc.Sleep(n.scaled(d)) }

// scaled applies the node's straggler slowdown to a local time cost.
func (n *Node) scaled(d sim.Time) sim.Time {
	if n.slow > 1 {
		return sim.Time(float64(d)*n.slow + 0.5)
	}
	return d
}

// ComputeFlops models executing the given number of floating-point
// operations at the configured node throughput.
func (n *Node) ComputeFlops(flops float64) {
	n.Compute(n.m.cfg.ComputeTime(flops))
}

// MemCopy models a node-local copy of nbytes (used for pack/unpack).
func (n *Node) MemCopy(nbytes int) {
	n.Compute(n.m.cfg.MemCopyTime(nbytes))
}

// Send transmits data to node dst with the given tag and blocks until the
// transfer completes (synchronous CMMD semantics). Sending to self
// panics: CMMD programs keep local data local.
func (n *Node) Send(dst, tag int, data []byte) {
	n.send(dst, tag, data, len(data))
}

// SendN is Send for a synthetic message of nbytes with no payload. The
// timing is identical to Send with a real buffer of that size.
func (n *Node) SendN(dst, tag, nbytes int) {
	if nbytes < 0 {
		nbytes = 0
	}
	n.send(dst, tag, nil, nbytes)
}

func (n *Node) send(dst, tag int, data []byte, size int) {
	if dst == n.id {
		panic(fmt.Sprintf("cmmd: node %d sending to itself", n.id))
	}
	if dst < 0 || dst >= n.N() {
		panic(fmt.Sprintf("cmmd: node %d sending to invalid node %d", n.id, dst))
	}
	n.sends++
	n.sentUser += int64(size)
	n.Compute(n.m.cfg.SendOverhead) // CMMD_send software setup

	req := &sendReq{src: n.id, dst: dst, tag: tag, data: data, size: size, proc: n.proc}
	req.posted = n.Now()
	peer := n.m.nodes[dst]

	if n.m.async {
		// Asynchronous (buffered) mode: the ablation of the paper's
		// Section 3.1 remark that non-blocking communication would fix
		// LEX. The transfer starts immediately; the sender proceeds
		// without waiting for the receiver.
		req.async = true
		if data != nil {
			// Buffered semantics: snapshot the payload at send time.
			req.data = append([]byte(nil), data...)
		}
		if r := peer.postedRecv; r != nil && matches(r, req) {
			// The receiver is already parked on this message.
			peer.postedRecv = nil
			req.waiter = r
		} else {
			peer.pendingSends = append(peer.pendingSends, req)
		}
		m := n.m
		started := m.eng.Now()
		m.eng.After(m.cfg.WireLatency, func() {
			m.net.Start(req.src, req.dst, req.size, func() {
				req.arrived = true
				m.recordEvent(MsgEvent{
					Src: req.src, Dst: req.dst, Tag: req.tag, Bytes: req.size,
					Posted: req.posted, Started: started, Ended: m.eng.Now(),
				})
				if req.waiter != nil {
					m.deliver(req, req.waiter)
					m.eng.Ready(req.waiter.proc)
				}
			})
		})
		return
	}

	if r := peer.postedRecv; r != nil && matches(r, req) {
		peer.postedRecv = nil
		n.m.beginTransfer(req, r)
	} else {
		peer.pendingSends = append(peer.pendingSends, req)
	}
	n.proc.Park() // woken when the transfer completes
}

// Recv blocks until a message matching (src, tag) arrives; src and tag
// may be AnySrc / AnyTag. It returns the message after the receive-side
// copy-out overhead.
func (n *Node) Recv(src, tag int) Message {
	if src != AnySrc && (src < 0 || src >= n.N()) {
		panic(fmt.Sprintf("cmmd: node %d receiving from invalid node %d", n.id, src))
	}
	if src == n.id {
		panic(fmt.Sprintf("cmmd: node %d receiving from itself", n.id))
	}
	n.recvs++
	r := &recvReq{src: src, tag: tag, proc: n.proc}
	// Match the earliest pending sender.
	for i, s := range n.pendingSends {
		if matches(r, s) {
			n.pendingSends = append(n.pendingSends[:i], n.pendingSends[i+1:]...)
			if s.async {
				if s.arrived {
					n.m.deliver(s, r) // already buffered locally
				} else {
					s.waiter = r // wait for the in-flight transfer
					n.proc.Park()
				}
			} else {
				n.m.beginTransfer(s, r)
				n.proc.Park()
			}
			n.Compute(n.m.cfg.RecvOverhead) // copy-out
			return r.result
		}
	}
	if n.postedRecv != nil {
		panic(fmt.Sprintf("cmmd: node %d posted two receives", n.id))
	}
	n.postedRecv = r
	n.proc.Park()
	n.Compute(n.m.cfg.RecvOverhead)
	return r.result
}

func matches(r *recvReq, s *sendReq) bool {
	if r.src != AnySrc && r.src != s.src {
		return false
	}
	if r.tag != AnyTag && r.tag != s.tag {
		return false
	}
	return true
}

// Stats returns this node's message counters: sends, receives, user bytes
// sent.
func (n *Node) Stats() (sends, recvs int, userBytes int64) {
	return n.sends, n.recvs, n.sentUser
}

// Machine is a simulated CM-5 partition. Its data network runs over a
// pluggable topology (the calibrated CM-5 fat tree by default; see
// NewMachineOn), while the control network always models the CM-5's
// hardware broadcast/combine tree.
type Machine struct {
	eng   *sim.Engine
	topo  *fattree.Topology // control-network tree (and default data topology shape)
	data  topo.Topology     // data-network link graph
	net   *network.DataNet
	ctrl  *network.ControlNet
	cfg   network.Config
	nodes []*Node

	coll  collective
	ran   bool
	async bool
	trace *Trace
	sink  func(MsgEvent)
	met   *obs.SimMetrics
	tl    *obs.Timeline

	faultEvents int // fault plan events scheduled (see ApplyFaults)
	stragglers  int // straggler events applied so far
}

// SetAsyncSends switches the machine to buffered (non-blocking) send
// semantics: a Send returns after its software overhead and the transfer
// proceeds in the background. This is NOT how the paper's CM-5 behaved —
// CMMD 1.x was synchronous-only — but it implements the paper's
// Section 3.1 remark that "if asynchronous communication is allowed,
// processors need not wait for their messages to be received", enabling
// the what-if ablation in internal/exp. Must be called before Run.
func (m *Machine) SetAsyncSends(on bool) { m.async = on }

// NewMachine builds an n-node partition with the given configuration,
// its data network on the calibrated CM-5 fat tree. n must be a power
// of two in [2, 16384].
func NewMachine(n int, cfg network.Config) (*Machine, error) {
	data, err := cfg.FatTree(n)
	if err != nil {
		return nil, err
	}
	return NewMachineOn(data, cfg) // NewMachineOn runs cfg.Validate
}

// NewMachineOn builds a partition whose data network runs over the
// given topology's link graph; the node count is the topology's. The
// control network (barriers, system broadcast, combine) keeps the CM-5
// tree model regardless of the data topology, so node programs work
// unchanged. The node count must be a power of two in [2, 16384].
func NewMachineOn(data topo.Topology, cfg network.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if data == nil {
		return nil, fmt.Errorf("cmmd: nil topology")
	}
	ctrlTree, err := fattree.New(data.N())
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	m := &Machine{
		eng:  eng,
		topo: ctrlTree,
		data: data,
		net:  network.NewDataNet(eng, data, cfg),
		ctrl: network.NewControlNet(ctrlTree, cfg),
		cfg:  cfg,
	}
	m.nodes = make([]*Node, data.N())
	for i := range m.nodes {
		m.nodes[i] = &Node{id: i, m: m}
	}
	return m, nil
}

// MustNewMachine is NewMachine but panics on error.
func MustNewMachine(n int, cfg network.Config) *Machine {
	m, err := NewMachine(n, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the partition size.
func (m *Machine) N() int { return len(m.nodes) }

// Config returns the timing constants in use.
func (m *Machine) Config() network.Config { return m.cfg }

// Topology returns the partition's fat-tree grouping structure (the
// control network's tree, and the default data topology's shape).
func (m *Machine) Topology() *fattree.Topology { return m.topo }

// DataTopology returns the link graph the data network runs over.
func (m *Machine) DataTopology() topo.Topology { return m.data }

// Net returns the data network (for statistics).
func (m *Machine) Net() *network.DataNet { return m.net }

// ApplyFaults validates the plan against the data topology and
// schedules its events into the run: link failures and degradations on
// the data network, straggler slowdowns on the nodes, background
// cross-traffic bursts. Events at time 0 are applied immediately — the
// machine starts the run already failed/degraded/slowed, as the profile
// docs promise — because the engine runs every node's first actions
// before firing time-0 events, which would let the run's opening costs
// slip in under the fault. The nil plan and the zero-event healthy plan
// change nothing, bit for bit. Must be called before Run.
func (m *Machine) ApplyFaults(p *network.FaultPlan) error {
	if p == nil || len(p.Events) == 0 {
		if p != nil {
			return p.Validate(m.data)
		}
		return nil
	}
	if m.ran {
		return fmt.Errorf("cmmd: machine already ran")
	}
	if err := p.Validate(m.data); err != nil {
		return err
	}
	m.faultEvents += len(p.Events)
	for _, ev := range p.Events {
		ev := ev
		var apply func()
		switch ev.Kind {
		case network.FaultLinkDown:
			apply = func() { m.net.FailLink(ev.Link) }
		case network.FaultDegrade:
			apply = func() { m.net.DegradeLink(ev.Link, ev.Factor) }
		case network.FaultStraggler:
			apply = func() {
				m.nodes[ev.Node].slow = ev.Factor
				m.stragglers++
			}
		case network.FaultBackground:
			apply = func() { m.net.InjectBackground(ev.Flows, ev.Bytes, ev.Seed) }
		}
		if m.tl != nil {
			inner := apply
			apply = func() { m.faultInstant(ev); inner() }
		}
		if ev.At == 0 {
			apply()
		} else {
			m.eng.Schedule(ev.At, apply)
		}
	}
	return nil
}

// FaultStats returns what the applied fault plan did to the run: the
// data network's counters plus the machine-level event and straggler
// counts. The zero value is a fault-free run.
func (m *Machine) FaultStats() network.FaultStats {
	st := m.net.FaultStats()
	st.Events = m.faultEvents
	st.Stragglers = m.stragglers
	return st
}

// Run executes program on every node concurrently and returns the
// simulated completion time of the slowest node. The engine may keep
// running past that point — draining background fault traffic, firing
// post-drain fault events — without affecting the returned makespan.
// A Machine is one-shot: Run may only be called once.
func (m *Machine) Run(program func(*Node)) (sim.Time, error) {
	if m.ran {
		return 0, fmt.Errorf("cmmd: machine already ran")
	}
	m.ran = true
	for _, node := range m.nodes {
		node := node
		node.proc = m.eng.Spawn(fmt.Sprintf("node%d", node.id), func(p *sim.Proc) {
			program(node)
			node.finished = p.Now()
		})
	}
	end, err := m.eng.Run()
	if m.met != nil {
		st := m.eng.Stats()
		m.met.EventsFired.Add(st.EventsFired)
		m.met.EventsPooled.Add(st.EventsPooled)
		m.met.EventsAllocated.Add(st.EventsAllocated)
		m.met.HeapHighWater.SetMax(float64(st.HeapHighWater))
	}
	if err != nil {
		return end, err
	}
	var finish sim.Time
	for _, node := range m.nodes {
		if node.finished > finish {
			finish = node.finished
		}
	}
	return finish, nil
}

// UserBytesSent returns the total user bytes sent across all nodes.
// Valid after Run.
func (m *Machine) UserBytesSent() int64 {
	var total int64
	for _, n := range m.nodes {
		total += n.sentUser
	}
	return total
}

// NodeFinishTimes returns each node's program completion time. Valid
// after Run.
func (m *Machine) NodeFinishTimes() []sim.Time {
	out := make([]sim.Time, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = n.finished
	}
	return out
}

// deliver fills a receive request from a send request (no timing).
func (m *Machine) deliver(s *sendReq, r *recvReq) {
	r.result = Message{Src: s.src, Tag: s.tag, Size: s.size}
	if s.data != nil {
		r.result.Data = append([]byte(nil), s.data...)
	}
	r.got = true
}

// beginTransfer starts the network transfer for a matched rendezvous and
// arranges for both parties to wake when it completes.
func (m *Machine) beginTransfer(s *sendReq, r *recvReq) {
	// Copy at match time so sender buffer reuse cannot corrupt the
	// receiver.
	m.deliver(s, r)
	dst := s.dst
	started := m.eng.Now()
	m.eng.After(m.cfg.WireLatency, func() {
		m.net.Start(s.src, dst, s.size, func() {
			m.recordEvent(MsgEvent{
				Src: s.src, Dst: dst, Tag: s.tag, Bytes: s.size,
				Posted: s.posted, Started: started, Ended: m.eng.Now(),
			})
			m.eng.Ready(s.proc)
			m.eng.Ready(r.proc)
		})
	})
}
