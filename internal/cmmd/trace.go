package cmmd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// MsgEvent records one message's lifecycle: when the sender finished its
// software overhead and entered the rendezvous (Posted), when the wire
// transfer began (Started — the rendezvous wait is Started-Posted), and
// when the last byte arrived (Ended).
type MsgEvent struct {
	Src, Dst, Tag int
	Bytes         int
	Posted        sim.Time
	Started       sim.Time
	Ended         sim.Time
}

// Wait returns how long the message waited for its rendezvous partner
// (zero under buffered sends).
func (e MsgEvent) Wait() sim.Time { return e.Started - e.Posted }

// Trace collects message events for a machine run.
type Trace struct {
	Events []MsgEvent
}

// NodeSummary aggregates one node's sending behaviour.
type NodeSummary struct {
	Node      int
	Messages  int
	Bytes     int64
	TotalWait sim.Time
	MaxWait   sim.Time
}

// BySender returns per-sending-node summaries, indexed by node id.
func (t *Trace) BySender(n int) []NodeSummary {
	out := make([]NodeSummary, n)
	for i := range out {
		out[i].Node = i
	}
	for _, e := range t.Events {
		s := &out[e.Src]
		s.Messages++
		s.Bytes += int64(e.Bytes)
		w := e.Wait()
		s.TotalWait += w
		if w > s.MaxWait {
			s.MaxWait = w
		}
	}
	return out
}

// TotalWait sums rendezvous waiting across all messages — the idle time
// the paper's scheduling algorithms compete to eliminate.
func (t *Trace) TotalWait() sim.Time {
	var total sim.Time
	for _, e := range t.Events {
		total += e.Wait()
	}
	return total
}

// Summary renders a compact per-node wait report.
func (t *Trace) Summary(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %8s  %10s  %12s  %12s\n", "node", "msgs", "bytes", "wait total", "wait max")
	rows := t.BySender(n)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d  %8d  %10d  %9.3f ms  %9.3f ms\n",
			r.Node, r.Messages, r.Bytes, r.TotalWait.Millis(), r.MaxWait.Millis())
	}
	return b.String()
}

// EnableTrace turns on message tracing; must be called before Run.
func (m *Machine) EnableTrace() {
	if m.trace == nil {
		m.trace = &Trace{}
	}
}

// Trace returns the recorded events (nil unless EnableTrace was called).
func (m *Machine) Trace() *Trace { return m.trace }

// SetTraceSink registers fn to receive every message event as it
// completes, independently of EnableTrace — the tee behind the trace
// recorder of internal/trace. Must be called before Run. The callback
// runs inside the simulation (single engine goroutine) and must not
// block; a nil fn detaches the sink.
func (m *Machine) SetTraceSink(fn func(MsgEvent)) { m.sink = fn }

// recordEvent files one completed message with the trace buffer, the
// sink, and the timeline, whichever are attached.
func (m *Machine) recordEvent(ev MsgEvent) {
	if m.trace != nil {
		m.trace.Events = append(m.trace.Events, ev)
	}
	if m.sink != nil {
		m.sink(ev)
	}
	if m.tl != nil {
		m.recordTimeline(ev)
	}
}
