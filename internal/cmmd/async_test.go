package cmmd

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
)

func asyncMach(t *testing.T, n int) *Machine {
	t.Helper()
	m := mach(t, n)
	m.SetAsyncSends(true)
	return m
}

func TestAsyncSendReturnsWithoutReceiver(t *testing.T) {
	m := asyncMach(t, 2)
	var sendDone sim.Time
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 64)
			sendDone = n.Now()
		} else {
			n.Compute(10 * sim.Millisecond) // receiver shows up late
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sendDone > 100*sim.Microsecond {
		t.Fatalf("async send blocked until %v", sendDone)
	}
}

func TestAsyncDataDelivered(t *testing.T) {
	m := asyncMach(t, 2)
	var got Message
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			buf := []byte{1, 2, 3}
			n.Send(1, 5, buf)
			buf[0] = 99 // buffered semantics: receiver sees the snapshot
		} else {
			got = n.Recv(0, 5)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Data[0] != 1 || got.Size != 3 || got.Src != 0 || got.Tag != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestAsyncRecvBeforeSend(t *testing.T) {
	// Receiver posts first: delivery happens at transfer completion.
	m := asyncMach(t, 2)
	var got Message
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Compute(5 * sim.Millisecond)
			n.Send(1, 0, []byte("late"))
		} else {
			got = n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(got.Data) != "late" {
		t.Fatalf("got %+v", got)
	}
}

func TestAsyncManyInFlight(t *testing.T) {
	// One sender floods a receiver with buffered messages; all arrive in
	// order by tag.
	m := asyncMach(t, 2)
	var tags []int
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			for i := 0; i < 10; i++ {
				n.SendN(1, i, 128)
			}
		} else {
			n.Compute(sim.Millisecond)
			for i := 0; i < 10; i++ {
				msg := n.Recv(0, AnyTag)
				tags = append(tags, msg.Tag)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, tag := range tags {
		if tag != i {
			t.Fatalf("tags out of order: %v", tags)
		}
	}
}

func TestAsyncLinearFunnelMuchFasterThanSync(t *testing.T) {
	// The paper's Section 3.1 hypothesis: LEX-style funnels suffer only
	// under synchronous sends.
	run := func(async bool) sim.Time {
		m := mach(t, 16)
		m.SetAsyncSends(async)
		end, err := m.Run(func(n *Node) {
			// Step i: everyone sends to node i (LEX structure).
			for i := 0; i < n.N(); i++ {
				if n.ID() == i {
					for j := 0; j < n.N(); j++ {
						if j != i {
							n.Recv(j, i)
						}
					}
				} else {
					n.SendN(i, i, 256)
				}
			}
		})
		if err != nil {
			t.Fatalf("Run(async=%v): %v", async, err)
		}
		return end
	}
	sync := run(false)
	async := run(true)
	// Buffered sends free the senders, but the funnel receivers still
	// serialize their copy-outs, so the win is bounded (roughly 2x here,
	// growing with message size).
	if async*3 >= sync*2 {
		t.Fatalf("async funnel (%v) should be clearly faster than sync (%v)", async, sync)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := asyncMach(t, 8)
		end, err := m.Run(func(n *Node) {
			for j := 1; j < n.N(); j++ {
				peer := n.ID() ^ j
				n.SendN(peer, j, 512)
			}
			for j := 1; j < n.N(); j++ {
				n.Recv(n.ID()^j, j)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return end
	}
	a := run()
	for i := 0; i < 3; i++ {
		if b := run(); b != a {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestAsyncConfigUnchanged(t *testing.T) {
	// DefaultConfig machines stay synchronous unless opted in.
	m := mach(t, 2)
	if m.async {
		t.Fatal("machines must default to synchronous CMMD semantics")
	}
	_ = network.DefaultConfig()
}
