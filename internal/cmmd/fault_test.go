package cmmd

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topo"
)

// The fault-injection contract, pinned: every fault kind, fired before
// the run, mid-run, and after the traffic has drained, produces an
// exact simulated makespan under a fixed machine and program. The
// pinned times are the model's regression surface — a change to fault
// semantics, rerouting, the max-min solver or the cost model moves them
// and must retire these constants deliberately.

// faultMachine builds an 8-node hypercube machine: path diversity so
// link kills are survivable by detour.
func faultMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := network.DefaultConfig()
	tp, err := topo.New("hypercube", 8, cfg.TopologyRates())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachineOn(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pairProgram is the fixed workload under test: nodes pair up (0-1,
// 2-3, 4-5, 6-7), even ranks each sending 64 KB to their partner. One
// flow per pair, no contention between pairs on a healthy hypercube.
func pairProgram(nd *Node) {
	if nd.ID()%2 == 0 {
		nd.SendN(nd.ID()+1, 1, 65536)
	} else {
		nd.Recv(nd.ID()-1, 1)
	}
}

// victimLink returns the first interior link on the 0 -> 1 route — the
// link the link-down and degrade cases target, carrying pair 0-1's
// flow.
func victimLink(t *testing.T, m *Machine) int {
	t.Helper()
	tp := m.Net().Topology()
	for _, l := range tp.RouteAppend(nil, 0, 1) {
		if tp.Link(l).Level >= 1 {
			return l
		}
	}
	t.Fatal("no interior link on route 0->1")
	return -1
}

// The three injection times: before the run starts, mid-transfer (the
// healthy run takes ~4.2 ms), and long after the traffic has drained.
const (
	atStart = sim.Time(0)
	atMid   = sim.Millisecond
	atDrain = sim.Second
)

func TestFaultKindsPinnedTimes(t *testing.T) {
	// The healthy makespan, the reference every after-drain case must
	// reproduce exactly.
	const healthy = sim.Time(4183001)

	cases := []struct {
		name  string
		event func(m *Machine) network.FaultEvent
		at    sim.Time
		want  sim.Time
		check func(t *testing.T, st network.FaultStats)
	}{
		{name: "healthy baseline", want: healthy},

		// A dead link forces pair 0-1 onto a detour through a via node's
		// interface, halving its bandwidth share: slower than healthy
		// whether it detours from the start or reroutes in flight.
		{name: "link-down before run", at: atStart, want: 8279001,
			event: func(m *Machine) network.FaultEvent {
				return network.FaultEvent{Kind: network.FaultLinkDown, Link: victimLink(t, m)}
			},
			check: func(t *testing.T, st network.FaultStats) {
				if st.LinksDown != 1 || st.Rerouted != 1 {
					t.Errorf("stats = %+v, want 1 link down, 1 reroute", st)
				}
			}},
		{name: "link-down mid-run", at: atMid, want: 7326001,
			event: func(m *Machine) network.FaultEvent {
				return network.FaultEvent{Kind: network.FaultLinkDown, Link: victimLink(t, m)}
			},
			check: func(t *testing.T, st network.FaultStats) {
				if st.LinksDown != 1 || st.Rerouted != 1 {
					t.Errorf("stats = %+v, want 1 link down, 1 in-flight reroute", st)
				}
			}},
		{name: "link-down after drain", at: atDrain, want: healthy,
			event: func(m *Machine) network.FaultEvent {
				return network.FaultEvent{Kind: network.FaultLinkDown, Link: victimLink(t, m)}
			},
			check: func(t *testing.T, st network.FaultStats) {
				if st.LinksDown != 1 || st.Rerouted != 0 {
					t.Errorf("stats = %+v, want 1 link down into an idle machine, 0 reroutes", st)
				}
			}},

		// Quarter capacity on pair 0-1's interior link: the link (40 MB/s
		// healthy) drops below the 20 MB/s interface rate and becomes the
		// bottleneck.
		{name: "degrade before run", at: atStart, want: 16471001,
			event: func(m *Machine) network.FaultEvent {
				return network.FaultEvent{Kind: network.FaultDegrade, Link: victimLink(t, m), Factor: 0.25}
			},
			check: func(t *testing.T, st network.FaultStats) {
				if st.LinksDegraded != 1 {
					t.Errorf("stats = %+v, want 1 degraded link", st)
				}
			}},
		{name: "degrade mid-run", at: atMid, want: 13612001, event: degradeEvent,
			check: func(t *testing.T, st network.FaultStats) {
				if st.LinksDegraded != 1 {
					t.Errorf("stats = %+v, want 1 degraded link", st)
				}
			}},
		{name: "degrade after drain", at: atDrain, want: healthy, event: degradeEvent},

		// Node 0 running 4x slow stretches its software overheads and
		// memory copies, not the wire: a small, exact makespan shift.
		{name: "straggler before run", at: atStart, want: 4303001, event: stragglerEvent,
			check: func(t *testing.T, st network.FaultStats) {
				if st.Stragglers != 1 {
					t.Errorf("stats = %+v, want 1 straggler", st)
				}
			}},
		// By 1 ms node 0 has posted its only local cost (the send setup)
		// and sits parked on the synchronous transfer: a straggler that
		// arrives then has nothing left to slow on this program.
		{name: "straggler mid-run", at: atMid, want: healthy, event: stragglerEvent},
		{name: "straggler after drain", at: atDrain, want: healthy, event: stragglerEvent},

		// An 8-flow background burst steals link shares while it drains,
		// stretching whatever schedule traffic it overlaps.
		{name: "background before run", at: atStart, want: 4520001, event: backgroundEvent,
			check: func(t *testing.T, st network.FaultStats) {
				if st.BackgroundFlows != 8 {
					t.Errorf("stats = %+v, want 8 background flows", st)
				}
			}},
		{name: "background mid-run", at: atMid, want: 4567002, event: backgroundEvent},
		{name: "background after drain", at: atDrain, want: healthy, event: backgroundEvent,
			check: func(t *testing.T, st network.FaultStats) {
				if st.BackgroundFlows != 8 {
					t.Errorf("stats = %+v, want the idle-machine burst counted", st)
				}
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := faultMachine(t)
			if c.event != nil {
				ev := c.event(m)
				ev.At = c.at
				plan := network.NewHealthyPlan()
				plan.Events = append(plan.Events, ev)
				if err := m.ApplyFaults(plan); err != nil {
					t.Fatal(err)
				}
			}
			elapsed, err := m.Run(pairProgram)
			if err != nil {
				t.Fatal(err)
			}
			if elapsed != c.want {
				t.Errorf("elapsed = %d, want %d", elapsed, c.want)
			}
			st := m.FaultStats()
			if c.event != nil && st.Events != 1 {
				t.Errorf("stats = %+v, want exactly 1 event applied", st)
			}
			if c.check != nil {
				c.check(t, st)
			}
		})
	}
}

func degradeEvent(m *Machine) network.FaultEvent {
	tp := m.Net().Topology()
	for _, l := range tp.RouteAppend(nil, 0, 1) {
		if tp.Link(l).Level >= 1 {
			return network.FaultEvent{Kind: network.FaultDegrade, Link: l, Factor: 0.25}
		}
	}
	panic("no interior link on route 0->1")
}

func stragglerEvent(m *Machine) network.FaultEvent {
	return network.FaultEvent{Kind: network.FaultStraggler, Node: 0, Factor: 4}
}

func backgroundEvent(m *Machine) network.FaultEvent {
	return network.FaultEvent{Kind: network.FaultBackground, Flows: 8, Bytes: 2048, Seed: 7}
}

// TestApplyFaultsAfterRunFails pins the lifecycle rule: fault plans
// attach before the machine runs, never after.
func TestApplyFaultsAfterRunFails(t *testing.T) {
	m := faultMachine(t)
	if _, err := m.Run(func(nd *Node) {}); err != nil {
		t.Fatal(err)
	}
	plan := network.NewHealthyPlan()
	plan.Events = append(plan.Events, stragglerEvent(m))
	if err := m.ApplyFaults(plan); err == nil {
		t.Fatal("ApplyFaults after Run should fail")
	}
}

// TestApplyFaultsRejectsInvalidPlan: validation runs against the
// machine's own data topology.
func TestApplyFaultsRejectsInvalidPlan(t *testing.T) {
	m := faultMachine(t)
	plan := network.NewHealthyPlan()
	plan.Events = append(plan.Events, network.FaultEvent{Kind: network.FaultLinkDown, Link: 0})
	if err := m.ApplyFaults(plan); err == nil {
		t.Fatal("node-link kill should not validate")
	}
}

// TestHealthyPlanIsIdentity: applying the zero-event plan (or nil)
// changes nothing about a run, bit for bit.
func TestHealthyPlanIsIdentity(t *testing.T) {
	runWith := func(plan *network.FaultPlan) sim.Time {
		m := faultMachine(t)
		if err := m.ApplyFaults(plan); err != nil {
			t.Fatal(err)
		}
		elapsed, err := m.Run(pairProgram)
		if err != nil {
			t.Fatal(err)
		}
		if st := m.FaultStats(); st != (network.FaultStats{}) {
			t.Fatalf("healthy run has fault stats %+v", st)
		}
		return elapsed
	}
	bare := runWith(nil)
	healthy := runWith(network.NewHealthyPlan())
	if bare != healthy {
		t.Fatalf("healthy plan changed the run: %d vs %d", healthy, bare)
	}
}
