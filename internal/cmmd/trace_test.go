package cmmd

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTraceRecordsMessages(t *testing.T) {
	m := mach(t, 4)
	m.EnableTrace()
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 3, 256)
		} else if n.ID() == 1 {
			n.Recv(0, 3)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := m.Trace()
	if tr == nil || len(tr.Events) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	e := tr.Events[0]
	if e.Src != 0 || e.Dst != 1 || e.Tag != 3 || e.Bytes != 256 {
		t.Fatalf("event = %+v", e)
	}
	if !(e.Posted <= e.Started && e.Started < e.Ended) {
		t.Fatalf("event times out of order: %+v", e)
	}
}

func TestTraceWaitMeasuresRendezvousDelay(t *testing.T) {
	const lateness = 2 * sim.Millisecond
	m := mach(t, 2)
	m.EnableTrace()
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 64)
		} else {
			n.Compute(lateness)
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	e := m.Trace().Events[0]
	if e.Wait() < lateness-100*sim.Microsecond {
		t.Fatalf("wait = %v, want ~%v", e.Wait(), lateness)
	}
}

func TestTraceBySenderAggregates(t *testing.T) {
	m := mach(t, 4)
	m.EnableTrace()
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 100)
			n.SendN(2, 0, 200)
		} else if n.ID() == 1 || n.ID() == 2 {
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows := m.Trace().BySender(4)
	if rows[0].Messages != 2 || rows[0].Bytes != 300 {
		t.Fatalf("sender 0 summary = %+v", rows[0])
	}
	if rows[3].Messages != 0 {
		t.Fatalf("sender 3 should be idle: %+v", rows[3])
	}
	if m.Trace().TotalWait() < 0 {
		t.Fatal("negative total wait")
	}
	out := m.Trace().Summary(4)
	if !strings.Contains(out, "node") || !strings.Contains(out, "wait total") {
		t.Fatalf("summary header missing:\n%s", out)
	}
}

func TestTraceAsyncMode(t *testing.T) {
	m := asyncMach(t, 2)
	m.EnableTrace()
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 512)
		} else {
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	events := m.Trace().Events
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	// Buffered sends start transferring immediately: zero rendezvous wait.
	if events[0].Wait() != 0 {
		t.Fatalf("async wait = %v, want 0", events[0].Wait())
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := mach(t, 2)
	_, err := m.Run(func(n *Node) {})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Trace() != nil {
		t.Fatal("trace should be nil unless enabled")
	}
}
