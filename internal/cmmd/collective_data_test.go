package cmmd

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sim"
)

// nodeVecs builds one deterministic float64 vector per node.
func nodeVecs(n, vlen int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, vlen)
		for j := range vecs[i] {
			vecs[i][j] = rng.Float64()*200 - 100
		}
	}
	return vecs
}

// refReduce folds the vectors element-wise with op — the sequential
// reference the data-network reductions must reproduce exactly.
func refReduce(vecs [][]float64, op ReduceOp) []float64 {
	ref := append([]float64(nil), vecs[0]...)
	for _, v := range vecs[1:] {
		for j := range ref {
			ref[j] = op.apply(ref[j], v[j])
		}
	}
	return ref
}

func TestReduceDataMatchesReference(t *testing.T) {
	for _, op := range []ReduceOp{OpSum, OpMax, OpMin} {
		for _, root := range []int{0, 3, 7} {
			m := mach(t, 8)
			vecs := nodeVecs(8, 16, 42)
			var got []float64
			_, err := m.Run(func(n *Node) {
				res := n.ReduceData(root, vecs[n.ID()], op)
				if n.ID() == root {
					got = res
				} else if res != nil {
					t.Errorf("non-root node %d got a result", n.ID())
				}
			})
			if err != nil {
				t.Fatalf("op %v root %d: %v", op, root, err)
			}
			ref := refReduce(vecs, op)
			// The binomial tree combines in a different association order
			// than the sequential fold, so sums may differ in the last
			// ulps; max/min are exact.
			for j := range ref {
				diff := math.Abs(got[j] - ref[j])
				if op == OpSum && diff > 1e-9 || op != OpSum && diff != 0 {
					t.Fatalf("op %v root %d elem %d: reduce = %v, want %v", op, root, j, got[j], ref[j])
				}
			}
		}
	}
}

func TestAllReduceDataMatchesReferenceEverywhere(t *testing.T) {
	const n = 16
	m := mach(t, n)
	vecs := nodeVecs(n, 8, 7)
	results := make([][]float64, n)
	_, err := m.Run(func(nd *Node) {
		results[nd.ID()] = nd.AllReduceData(vecs[nd.ID()], OpMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := refReduce(vecs, OpMax)
	for i, r := range results {
		if !reflect.DeepEqual(r, ref) {
			t.Fatalf("node %d: allreduce = %v, want %v", i, r, ref)
		}
	}
}

func TestAllReduceDataSumIsBitIdenticalAcrossNodes(t *testing.T) {
	// Floating-point sums depend on combination order; the butterfly
	// applies op to identical operand pairs on both sides of every
	// exchange, so all nodes must agree bit-for-bit.
	const n = 32
	m := mach(t, n)
	vecs := nodeVecs(n, 4, 99)
	results := make([][]float64, n)
	_, err := m.Run(func(nd *Node) {
		results[nd.ID()] = nd.AllReduceData(vecs[nd.ID()], OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("node %d disagrees with node 0: %v vs %v", i, results[i], results[0])
		}
	}
}

func TestTransposeDeliversEveryBlock(t *testing.T) {
	const n = 8
	m := mach(t, n)
	results := make([][][]byte, n)
	_, err := m.Run(func(nd *Node) {
		parts := make([][]byte, n)
		for j := range parts {
			parts[j] = []byte(fmt.Sprintf("%d->%d", nd.ID(), j))
		}
		results[nd.ID()] = nd.Transpose(parts)
	})
	if err != nil {
		t.Fatal(err)
	}
	for dst, blocks := range results {
		if len(blocks) != n {
			t.Fatalf("node %d has %d blocks", dst, len(blocks))
		}
		for src, b := range blocks {
			if want := fmt.Sprintf("%d->%d", src, dst); string(b) != want {
				t.Fatalf("node %d block %d = %q, want %q", dst, src, b, want)
			}
		}
	}
}

func TestCShiftRotates(t *testing.T) {
	const n = 16
	for _, offset := range []int{0, 1, 2, 3, 5, 8, 15, -1, 20} {
		m := mach(t, n)
		results := make([][]byte, n)
		_, err := m.Run(func(nd *Node) {
			results[nd.ID()] = nd.CShift(offset, []byte{byte(nd.ID())})
		})
		if err != nil {
			t.Fatalf("offset %d: %v", offset, err)
		}
		for i, r := range results {
			want := byte((i - offset%n + 2*n) % n)
			if len(r) != 1 || r[0] != want {
				t.Fatalf("offset %d: node %d got %v, want [%d]", offset, i, r, want)
			}
		}
	}
}

func TestGhostExchangeStencil(t *testing.T) {
	const n = 16
	halo := pattern.Stencil2D(n, 4)
	m := mach(t, n)
	results := make([][][]byte, n)
	_, err := m.Run(func(nd *Node) {
		out := make([][]byte, n)
		for j := 0; j < n; j++ {
			if halo[nd.ID()][j] > 0 {
				out[j] = []byte(fmt.Sprintf("g%02d", nd.ID()))
			}
		}
		results[nd.ID()] = nd.GhostExchange(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range results {
		for j := 0; j < n; j++ {
			if halo[j][i] > 0 {
				if want := fmt.Sprintf("g%02d", j); string(in[j]) != want {
					t.Fatalf("node %d ghost from %d = %q, want %q", i, j, in[j], want)
				}
			} else if in[j] != nil {
				t.Fatalf("node %d has unexpected ghost from %d", i, j)
			}
		}
	}
}

func TestGhostExchangeAsymmetricShapeDeadlocks(t *testing.T) {
	m := mach(t, 4)
	_, err := m.Run(func(nd *Node) {
		out := make([][]byte, 4)
		if nd.ID() == 0 {
			out[1] = []byte("x") // node 1 does not reciprocate
		}
		nd.GhostExchange(out)
	})
	var dead *sim.DeadlockError
	if err == nil {
		t.Fatal("asymmetric ghost exchange should deadlock")
	}
	if !errorsAs(err, &dead) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **sim.DeadlockError) bool {
	d, ok := err.(*sim.DeadlockError)
	if ok {
		*target = d
	}
	return ok
}

// runCollectiveOnce runs a fixed mix of the data-network collectives on
// one machine and returns the elapsed virtual time plus a digest of
// every node's results — the determinism witness.
func runCollectiveOnce(t *testing.T, seed int64) (sim.Time, string) {
	t.Helper()
	const n = 16
	m := mach(t, n)
	vecs := nodeVecs(n, 8, seed)
	var buf bytes.Buffer
	digests := make([][]byte, n)
	_, err := m.Run(func(nd *Node) {
		sum := nd.AllReduceData(vecs[nd.ID()], OpSum)
		parts := make([][]byte, n)
		for j := range parts {
			parts[j] = []byte{byte(nd.ID()), byte(j)}
		}
		blocks := nd.Transpose(parts)
		shifted := nd.CShift(3, []byte{byte(nd.ID())})
		var d bytes.Buffer
		fmt.Fprintf(&d, "%x|%v|%v", encodeFloats(sum), blocks, shifted)
		digests[nd.ID()] = d.Bytes()
	})
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	for _, ft := range m.NodeFinishTimes() {
		if ft > elapsed {
			elapsed = ft
		}
	}
	for _, d := range digests {
		buf.Write(d)
		buf.WriteByte('\n')
	}
	return elapsed, buf.String()
}

func TestCollectivesDeterministicAcrossRuns(t *testing.T) {
	e1, d1 := runCollectiveOnce(t, 11)
	e2, d2 := runCollectiveOnce(t, 11)
	if e1 != e2 {
		t.Fatalf("elapsed differs across identical runs: %v vs %v", e1, e2)
	}
	if d1 != d2 {
		t.Fatal("results differ across identical runs")
	}
	// A different seed changes the data but not the schedule shape.
	e3, _ := runCollectiveOnce(t, 12)
	if e1 != e3 {
		t.Fatalf("elapsed should not depend on payload values: %v vs %v", e1, e3)
	}
}
