package cmmd

import (
	"bytes"
	"fmt"
	"testing"
)

func TestGatherCollectsAll(t *testing.T) {
	m := mach(t, 8)
	var got [][]byte
	_, err := m.Run(func(n *Node) {
		data := []byte(fmt.Sprintf("node-%d", n.ID()))
		res := n.Gather(3, data)
		if n.ID() == 3 {
			got = res
		} else if res != nil {
			t.Errorf("node %d got non-nil gather result", n.ID())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("gathered %d", len(got))
	}
	for i, b := range got {
		if want := fmt.Sprintf("node-%d", i); string(b) != want {
			t.Fatalf("slot %d = %q, want %q", i, b, want)
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	m := mach(t, 8)
	results := make([][]byte, 8)
	_, err := m.Run(func(n *Node) {
		var parts [][]byte
		if n.ID() == 0 {
			for i := 0; i < 8; i++ {
				parts = append(parts, []byte{byte(i * 11)})
			}
		}
		results[n.ID()] = n.Scatter(0, parts)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != byte(i*11) {
			t.Fatalf("node %d got %v", i, r)
		}
	}
}

func TestScatterValidatesParts(t *testing.T) {
	m := mach(t, 4)
	panicked := false
	_, _ = m.Run(func(n *Node) {
		if n.ID() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			n.Scatter(0, make([][]byte, 2))
		}
	})
	if !panicked {
		t.Fatal("wrong part count should panic")
	}
}

func TestAllGatherEveryNodeGetsEverything(t *testing.T) {
	m := mach(t, 16)
	results := make([][][]byte, 16)
	_, err := m.Run(func(n *Node) {
		data := []byte{byte(n.ID()), byte(n.ID() * 3)}
		results[n.ID()] = n.AllGather(data)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for node, blocks := range results {
		if len(blocks) != 16 {
			t.Fatalf("node %d has %d blocks", node, len(blocks))
		}
		for rank, b := range blocks {
			want := []byte{byte(rank), byte(rank * 3)}
			if !bytes.Equal(b, want) {
				t.Fatalf("node %d block %d = %v, want %v", node, rank, b, want)
			}
		}
	}
}

func TestAllGatherTwoNodes(t *testing.T) {
	m := mach(t, 2)
	var r0, r1 [][]byte
	_, err := m.Run(func(n *Node) {
		res := n.AllGather([]byte{byte(100 + n.ID())})
		if n.ID() == 0 {
			r0 = res
		} else {
			r1 = res
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, r := range [][][]byte{r0, r1} {
		if r[0][0] != 100 || r[1][0] != 101 {
			t.Fatalf("allgather(2) = %v", r)
		}
	}
}

func TestGatherRootOutOfRangePanics(t *testing.T) {
	m := mach(t, 2)
	panicked := false
	_, _ = m.Run(func(n *Node) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		n.Gather(7, nil)
	})
	if !panicked {
		t.Fatal("bad root should panic")
	}
}
