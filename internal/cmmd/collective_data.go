package cmmd

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Data-network collectives beyond Gather/Scatter/AllGather: reductions
// carrying real vectors, the all-to-all-personalized transpose, circular
// shift, and the halo/ghost exchange of stencil codes. All of them are
// node programs over synchronous rendezvous messaging — every step is a
// perfect matching (or a tree edge), so none can deadlock under CMMD's
// blocking sends.

// Tags reserved by these collectives (continuing the gather.go range).
const (
	tagReduce    = 1<<28 + 3
	tagAllReduce = 1<<28 + 4
	tagTranspose = 1<<28 + 5
	tagCShift    = 1<<28 + 6
	tagHalo      = 1<<28 + 7
)

// encodeFloats packs a float64 vector into its 8-byte-per-element wire
// form (what CMMD programs put on the data network for vector
// reductions).
func encodeFloats(vec []float64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// decodeFloats unpacks the wire form produced by encodeFloats.
func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// ReduceData combines one float64 vector per node element-wise with op
// and delivers the result to root over the data network, using a
// binomial tree of lg N rounds (the vector analogue of the
// control-network AllReduce, which moves only a scalar). All nodes must
// call it with equal-length vectors; non-root nodes return nil.
func (n *Node) ReduceData(root int, vec []float64, op ReduceOp) []float64 {
	size := n.N()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("cmmd: reduce root %d out of range", root))
	}
	rel := (n.id - root + size) % size
	acc := append([]float64(nil), vec...)
	for bit := 1; bit < size; bit <<= 1 {
		if rel&bit != 0 {
			// This subtree is folded: hand the partial to the parent.
			parent := (rel - bit + root) % size
			n.Send(parent, tagReduce, encodeFloats(acc))
			return nil
		}
		if rel+bit < size {
			child := (rel + bit + root) % size
			other := decodeFloats(n.Recv(child, tagReduce).Data)
			if len(other) != len(acc) {
				panic(fmt.Sprintf("cmmd: reduce vector length %d != %d", len(other), len(acc)))
			}
			for i := range acc {
				acc[i] = op.apply(acc[i], other[i])
			}
		}
	}
	return acc
}

// AllReduceData combines one float64 vector per node element-wise with
// op and delivers the result to every node, using the recursive-doubling
// butterfly: lg N rounds of pairwise exchange with partner id XOR 2^k.
// Each round is a perfect matching, executed with Figure 2's
// lower-rank-receives-first ordering. All nodes get bit-identical
// results (op is applied to the same operand pair on both sides of every
// exchange).
func (n *Node) AllReduceData(vec []float64, op ReduceOp) []float64 {
	size := n.N()
	acc := append([]float64(nil), vec...)
	for bit := 1; bit < size; bit <<= 1 {
		peer := n.id ^ bit
		var got Message
		if n.id < peer {
			got = n.Recv(peer, tagAllReduce)
			n.Send(peer, tagAllReduce, encodeFloats(acc))
		} else {
			n.Send(peer, tagAllReduce, encodeFloats(acc))
			got = n.Recv(peer, tagAllReduce)
		}
		other := decodeFloats(got.Data)
		if len(other) != len(acc) {
			panic(fmt.Sprintf("cmmd: allreduce vector length %d != %d", len(other), len(acc)))
		}
		for i := range acc {
			acc[i] = op.apply(acc[i], other[i])
		}
	}
	return acc
}

// Transpose performs the all-to-all personalized exchange: parts[j] goes
// to node j, and the returned slice holds the block received from every
// node (the local block is kept, charged one memory copy). The N-1
// rounds follow the Pairwise Exchange pairing (partner id XOR j) with
// the deadlock-free ordering of the paper's Figure 2.
func (n *Node) Transpose(parts [][]byte) [][]byte {
	size := n.N()
	if len(parts) != size {
		panic(fmt.Sprintf("cmmd: transpose with %d parts for %d nodes", len(parts), size))
	}
	out := make([][]byte, size)
	out[n.id] = append([]byte(nil), parts[n.id]...)
	n.MemCopy(len(parts[n.id]))
	for j := 1; j < size; j++ {
		peer := n.id ^ j
		if n.id < peer {
			got := n.Recv(peer, tagTranspose)
			n.Send(peer, tagTranspose, parts[peer])
			out[peer] = got.Data
		} else {
			n.Send(peer, tagTranspose, parts[peer])
			out[peer] = n.Recv(peer, tagTranspose).Data
		}
	}
	return out
}

// CShift circularly shifts data by offset: every node sends its buffer
// to (id + offset) mod N and returns the buffer received from
// (id - offset) mod N. The shift permutation decomposes into cycles of
// even length (N is a power of two); alternating send-first and
// receive-first positions around each cycle completes the shift in two
// parallel waves instead of cascading serially. A zero offset is a local
// copy.
func (n *Node) CShift(offset int, data []byte) []byte {
	size := n.N()
	offset = ((offset % size) + size) % size
	if offset == 0 {
		n.MemCopy(len(data))
		return append([]byte(nil), data...)
	}
	dst := (n.id + offset) % size
	src := (n.id - offset + size) % size
	// The cycles of i -> i+offset are the residue classes mod
	// g = gcd(N, offset), and position parity within a cycle reduces to
	// (id/g) mod 2 (both N and g are powers of two, so every cycle has
	// even length and the 2-coloring is consistent).
	g := gcd(size, offset)
	if (n.id/g)%2 == 0 {
		n.Send(dst, tagCShift, data)
		return n.Recv(src, tagCShift).Data
	}
	got := n.Recv(src, tagCShift).Data
	n.Send(dst, tagCShift, data)
	return got
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GhostExchange swaps halo data with neighbors: out[j] non-nil means
// "send out[j] to node j and expect a block back from j". The returned
// slice holds the received blocks, indexed by neighbor. The exchange
// shape must be symmetric (j expects me iff I expect j — the
// pattern.Matrix IsSymmetricShape property every halo pattern has);
// an asymmetric shape deadlocks the machine, which Run reports as a
// DeadlockError. Rounds follow the Pairwise Exchange pairing, so nodes
// whose neighbor sets are sparse skip all-but-a-few rounds for free.
func (n *Node) GhostExchange(out [][]byte) [][]byte {
	size := n.N()
	if len(out) != size {
		panic(fmt.Sprintf("cmmd: ghost exchange with %d slots for %d nodes", len(out), size))
	}
	if out[n.id] != nil {
		panic(fmt.Sprintf("cmmd: node %d lists itself as a ghost neighbor", n.id))
	}
	in := make([][]byte, size)
	for j := 1; j < size; j++ {
		peer := n.id ^ j
		if out[peer] == nil {
			continue
		}
		if n.id < peer {
			in[peer] = n.Recv(peer, tagHalo).Data
			n.Send(peer, tagHalo, out[peer])
		} else {
			n.Send(peer, tagHalo, out[peer])
			in[peer] = n.Recv(peer, tagHalo).Data
		}
	}
	return in
}
