package cmmd

import "fmt"

// Tags reserved by the data-network collectives below. User programs
// should avoid tags in this range when mixing their own messages with
// these collectives.
const (
	tagGather  = 1 << 28
	tagScatter = 1<<28 + 1
	tagRing    = 1<<28 + 2
)

// Gather collects one buffer from every node at root over the data
// network (point-to-point; the CM-5 control network had no
// variable-length gather). All nodes must call it; non-root nodes
// receive nil. The root receives the buffers indexed by rank, its own
// entry being its local data.
func (n *Node) Gather(root int, data []byte) [][]byte {
	if root < 0 || root >= n.N() {
		panic(fmt.Sprintf("cmmd: gather root %d out of range", root))
	}
	if n.id != root {
		n.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, n.N())
	out[n.id] = append([]byte(nil), data...)
	// Drain in arrival order: fixed rank order would idle the root while
	// later-ranked senders wait, exactly the LEX failure mode.
	for i := 0; i < n.N()-1; i++ {
		msg := n.Recv(AnySrc, tagGather)
		out[msg.Src] = msg.Data
	}
	return out
}

// Scatter distributes parts[i] from root to node i. All nodes call it;
// every node returns its own part (the root's part costs one memcpy).
func (n *Node) Scatter(root int, parts [][]byte) []byte {
	if root < 0 || root >= n.N() {
		panic(fmt.Sprintf("cmmd: scatter root %d out of range", root))
	}
	if n.id == root {
		if len(parts) != n.N() {
			panic(fmt.Sprintf("cmmd: scatter with %d parts for %d nodes", len(parts), n.N()))
		}
		for i := 0; i < n.N(); i++ {
			if i != root {
				n.Send(i, tagScatter, parts[i])
			}
		}
		own := append([]byte(nil), parts[root]...)
		n.MemCopy(len(own))
		return own
	}
	return n.Recv(root, tagScatter).Data
}

// AllGather collects one buffer from every node at every node using the
// ring algorithm: N-1 steps, each node forwarding the newest block to
// its right neighbor while receiving from its left. Bandwidth-optimal,
// and every step is a disjoint ring shift the data network handles at
// full node rate.
func (n *Node) AllGather(data []byte) [][]byte {
	size := n.N()
	out := make([][]byte, size)
	out[n.id] = append([]byte(nil), data...)
	right := (n.id + 1) % size
	left := (n.id + size - 1) % size
	current := n.id // rank of the block we forward next
	for step := 0; step < size-1; step++ {
		var got Message
		if n.id%2 == 0 {
			n.Send(right, tagRing+step, out[current])
			got = n.Recv(left, tagRing+step)
		} else {
			got = n.Recv(left, tagRing+step)
			n.Send(right, tagRing+step, out[current])
		}
		current = (current + size - 1) % size
		out[current] = got.Data
	}
	return out
}
