package cmmd

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// Every collective exists in two forms: a CMMD node program (the methods
// in gather.go and collective_data.go) and a pattern.Matrix describing
// the same wire traffic, so the experiment harness can run it either
// directly or through the LS/PS/BS/GS schedulers and compare.

// CollectiveNames lists the collectives in canonical order. Roots
// default to node 0, the circular shift to offset 1, and the halo
// exchange to the 2-D stencil of the machine size.
func CollectiveNames() []string {
	return []string{"scatter", "gather", "allgather", "reduce", "allreduce",
		"transpose", "cshift", "halo"}
}

// reduceWireBytes is the vector payload the reduction collectives put on
// the wire for a requested block size: whole float64 elements, at least
// one.
func reduceWireBytes(nbytes int) int {
	if nbytes < 8 {
		return 8
	}
	return 8 * (nbytes / 8)
}

// reduceVec returns the per-node input vector matching reduceWireBytes.
func reduceVec(id, nbytes int) []float64 {
	vec := make([]float64, reduceWireBytes(nbytes)/8)
	for i := range vec {
		vec[i] = float64(id + i)
	}
	return vec
}

// CollectivePattern returns the communication matrix of the named
// collective on n nodes with nbytes per block: its logical
// direct-delivery traffic (every block point-to-point from producer to
// consumer) as a schedulable workload. For the store-and-forward
// algorithms this differs from the node program's wire traffic — the
// ring AllGather forwards blocks hop by hop — which is exactly what the
// collectives experiment compares.
func CollectivePattern(name string, n, nbytes int) (pattern.Matrix, error) {
	m := pattern.New(n)
	switch name {
	case "scatter":
		for j := 1; j < n; j++ {
			m[0][j] = nbytes
		}
	case "gather":
		for i := 1; i < n; i++ {
			m[i][0] = nbytes
		}
	case "allgather", "transpose":
		m = pattern.CompleteExchange(n, nbytes)
	case "reduce":
		// Binomial tree to root 0: every node hands its partial to the
		// node that clears its lowest set bit.
		wire := reduceWireBytes(nbytes)
		for i := 1; i < n; i++ {
			m[i][i&(i-1)] = wire
		}
	case "allreduce":
		// Recursive-doubling butterfly: all hypercube edges.
		wire := reduceWireBytes(nbytes)
		for i := 0; i < n; i++ {
			for bit := 1; bit < n; bit <<= 1 {
				m[i][i^bit] = wire
			}
		}
	case "cshift":
		for i := 0; i < n; i++ {
			m[i][(i+1)%n] = nbytes
		}
	case "halo":
		m = pattern.Stencil2D(n, nbytes)
	default:
		return nil, fmt.Errorf("cmmd: unknown collective %q", name)
	}
	return m, nil
}

// RunCollective executes the named collective as a node program on a
// fresh n-node machine with nbytes per block and returns the simulated
// completion time of the slowest node.
func RunCollective(name string, n, nbytes int, cfg network.Config) (sim.Time, error) {
	program, err := CollectiveProgram(name, n, nbytes)
	if err != nil {
		return 0, err
	}
	m, err := NewMachine(n, cfg)
	if err != nil {
		return 0, err
	}
	return m.Run(program)
}

// CollectiveProgram returns the node program of the named collective for
// an n-node machine with nbytes per block, so callers can run it on a
// machine they configured themselves (tracing, observers, async sends).
func CollectiveProgram(name string, n, nbytes int) (func(*Node), error) {
	var program func(*Node)
	switch name {
	case "scatter":
		program = func(nd *Node) {
			var parts [][]byte
			if nd.ID() == 0 {
				parts = make([][]byte, nd.N())
				for i := range parts {
					parts[i] = make([]byte, nbytes)
				}
			}
			nd.Scatter(0, parts)
		}
	case "gather":
		program = func(nd *Node) { nd.Gather(0, make([]byte, nbytes)) }
	case "allgather":
		program = func(nd *Node) { nd.AllGather(make([]byte, nbytes)) }
	case "reduce":
		program = func(nd *Node) { nd.ReduceData(0, reduceVec(nd.ID(), nbytes), OpSum) }
	case "allreduce":
		program = func(nd *Node) { nd.AllReduceData(reduceVec(nd.ID(), nbytes), OpSum) }
	case "transpose":
		program = func(nd *Node) {
			parts := make([][]byte, nd.N())
			for i := range parts {
				parts[i] = make([]byte, nbytes)
			}
			nd.Transpose(parts)
		}
	case "cshift":
		program = func(nd *Node) { nd.CShift(1, make([]byte, nbytes)) }
	case "halo":
		return GhostExchangeProgram(pattern.Stencil2D(n, nbytes))
	default:
		return nil, fmt.Errorf("cmmd: unknown collective %q", name)
	}
	return program, nil
}

// RunGhostExchange executes the halo exchange for an arbitrary
// symmetric-shape pattern as a node program on a fresh machine: node i
// sends p[i][j] bytes to every neighbor j and receives p[j][i] back.
func RunGhostExchange(p pattern.Matrix, cfg network.Config) (sim.Time, error) {
	program, err := GhostExchangeProgram(p)
	if err != nil {
		return 0, err
	}
	m, err := NewMachine(p.N(), cfg)
	if err != nil {
		return 0, err
	}
	return m.Run(program)
}

// GhostExchangeProgram returns the halo-exchange node program for an
// arbitrary symmetric-shape pattern.
func GhostExchangeProgram(p pattern.Matrix) (func(*Node), error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsSymmetricShape() {
		return nil, fmt.Errorf("cmmd: ghost exchange needs a symmetric-shape pattern")
	}
	return func(nd *Node) {
		row := p[nd.ID()]
		out := make([][]byte, nd.N())
		for j, b := range row {
			if b > 0 {
				out[j] = make([]byte, b)
			}
		}
		nd.GhostExchange(out)
	}, nil
}
