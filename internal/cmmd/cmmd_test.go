package cmmd

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
)

func mach(t *testing.T, n int) *Machine {
	t.Helper()
	m, err := NewMachine(n, network.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine(%d): %v", n, err)
	}
	return m
}

func TestNewMachineRejectsBadSize(t *testing.T) {
	if _, err := NewMachine(5, network.DefaultConfig()); err == nil {
		t.Fatal("NewMachine(5) should fail")
	}
	if _, err := NewMachine(0, network.DefaultConfig()); err == nil {
		t.Fatal("NewMachine(0) should fail")
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := mach(t, 2)
	if _, err := m.Run(func(n *Node) {}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := m.Run(func(n *Node) {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestPingDataDelivery(t *testing.T) {
	m := mach(t, 2)
	var got Message
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Send(1, 7, []byte("hello cm-5"))
		} else {
			got = n.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Src != 0 || got.Tag != 7 || got.Size != 10 || !bytes.Equal(got.Data, []byte("hello cm-5")) {
		t.Fatalf("got %+v", got)
	}
}

func TestZeroByteMessageCosts88us(t *testing.T) {
	// The paper: "a communication latency - sending a 0 byte message - of
	// 88 microseconds". Receiver finishes at SendOverhead + WireLatency +
	// 1 packet + RecvOverhead = 40 + 7 + 1 + 40 = 88 us.
	m := mach(t, 2)
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 0)
		} else {
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recvDone := m.NodeFinishTimes()[1].Micros()
	if math.Abs(recvDone-88) > 0.5 {
		t.Fatalf("0-byte message cost %.2f us, want 88", recvDone)
	}
}

func TestSenderBlocksUntilRecvPosted(t *testing.T) {
	// Synchronous semantics: the sender cannot complete before the
	// receiver posts, even for a tiny message.
	m := mach(t, 2)
	const lateness = 5 * sim.Millisecond
	var sendDone sim.Time
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 16)
			sendDone = n.Now()
		} else {
			n.Compute(lateness)
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sendDone < lateness {
		t.Fatalf("send returned at %v before receiver posted at %v", sendDone, lateness)
	}
}

func TestRecvBlocksUntilSendArrives(t *testing.T) {
	m := mach(t, 2)
	const lateness = 3 * sim.Millisecond
	var recvDone sim.Time
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Compute(lateness)
			n.SendN(1, 0, 16)
		} else {
			n.Recv(0, 0)
			recvDone = n.Now()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvDone < lateness {
		t.Fatalf("recv returned at %v before sender arrived", recvDone)
	}
}

func TestTagMatching(t *testing.T) {
	// Two pending senders with different tags; the receiver asks for the
	// later-arriving tag first. Matching must go by tag, not arrival.
	m := mach(t, 4)
	var first, second Message
	_, err := m.Run(func(n *Node) {
		switch n.ID() {
		case 1:
			n.Send(0, 1, []byte("one"))
		case 2:
			n.Compute(100 * sim.Microsecond)
			n.Send(0, 2, []byte("two"))
		case 0:
			n.Compute(sim.Millisecond) // let both sends become pending
			first = n.Recv(AnySrc, 2)
			second = n.Recv(AnySrc, 1)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(first.Data) != "two" || first.Src != 2 {
		t.Fatalf("first = %+v", first)
	}
	if string(second.Data) != "one" || second.Src != 1 {
		t.Fatalf("second = %+v", second)
	}
}

func TestAnySrcAnyTag(t *testing.T) {
	m := mach(t, 4)
	var got []int
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			for i := 1; i < 4; i++ {
				msg := n.Recv(AnySrc, AnyTag)
				got = append(got, msg.Src)
			}
		} else {
			n.SendN(0, n.ID()*10, 8)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("received %d messages", len(got))
	}
	seen := map[int]bool{}
	for _, s := range got {
		seen[s] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("sources = %v", got)
	}
}

func TestSelfSendPanics(t *testing.T) {
	m := mach(t, 2)
	panicked := false
	_, _ = m.Run(func(n *Node) {
		if n.ID() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			n.SendN(0, 0, 4)
		}
	})
	if !panicked {
		t.Fatal("self send should panic")
	}
}

func TestInvalidDestinationPanics(t *testing.T) {
	m := mach(t, 2)
	panicked := false
	_, _ = m.Run(func(n *Node) {
		if n.ID() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			n.SendN(5, 0, 4)
		}
	})
	if !panicked {
		t.Fatal("invalid destination should panic")
	}
}

func TestDeadlockReported(t *testing.T) {
	// Both nodes receive first: classic deadlock under rendezvous.
	m := mach(t, 2)
	_, err := m.Run(func(n *Node) {
		n.Recv((n.ID()+1)%2, 0)
		n.SendN((n.ID()+1)%2, 0, 4)
	})
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestPairwiseExchangeNoDeadlock(t *testing.T) {
	// The paper's Figure 2 ordering: lower rank receives first.
	m := mach(t, 8)
	end, err := m.Run(func(n *Node) {
		for j := 1; j < n.N(); j++ {
			peer := n.ID() ^ j
			if n.ID() < peer {
				n.Recv(peer, j)
				n.SendN(peer, j, 64)
			} else {
				n.SendN(peer, j, 64)
				n.Recv(peer, j)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestMessageDataIsolatedFromSenderBuffer(t *testing.T) {
	m := mach(t, 2)
	var got Message
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			buf := []byte{1, 2, 3, 4}
			n.Send(1, 0, buf)
			buf[0] = 99 // must not affect the delivered message
		} else {
			got = n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Data[0] != 1 {
		t.Fatalf("receiver saw sender's mutation: %v", got.Data)
	}
}

func TestNodeStats(t *testing.T) {
	m := mach(t, 2)
	var s0, r0 int
	var b0 int64
	_, err := m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.SendN(1, 0, 100)
			n.SendN(1, 1, 50)
			n.Recv(1, 2)
			s0, r0, b0 = n.Stats()
		} else {
			n.Recv(0, 0)
			n.Recv(0, 1)
			n.SendN(0, 2, 10)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s0 != 2 || r0 != 1 || b0 != 150 {
		t.Fatalf("stats = %d %d %d", s0, r0, b0)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m := mach(t, 8)
	var after []sim.Time
	_, err := m.Run(func(n *Node) {
		n.Compute(sim.Time(n.ID()) * sim.Millisecond)
		n.Barrier()
		after = append(after, n.Now())
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(after) != 8 {
		t.Fatalf("%d nodes passed barrier", len(after))
	}
	for _, ts := range after {
		if ts != after[0] {
			t.Fatalf("nodes released at different times: %v", after)
		}
		if ts < 7*sim.Millisecond {
			t.Fatalf("released at %v before slowest node arrived", ts)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	m := mach(t, 4)
	count := 0
	_, err := m.Run(func(n *Node) {
		for i := 0; i < 10; i++ {
			n.Barrier()
		}
		if n.ID() == 0 {
			count = 10
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 10 {
		t.Fatal("barriers did not all complete")
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	m := mach(t, 8)
	payload := []byte("broadcast payload")
	results := make([][]byte, 8)
	_, err := m.Run(func(n *Node) {
		var data []byte
		if n.ID() == 3 {
			data = payload
		}
		results[n.ID()] = n.Bcast(3, data)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range results {
		if !bytes.Equal(r, payload) {
			t.Fatalf("node %d got %q", i, r)
		}
	}
}

func TestBcastTimeGrowsWithSize(t *testing.T) {
	timeFor := func(nbytes int) sim.Time {
		m := mach(t, 8)
		end, err := m.Run(func(n *Node) {
			var data []byte
			if n.ID() == 0 {
				data = make([]byte, nbytes)
			}
			n.Bcast(0, data)
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return end
	}
	small, big := timeFor(64), timeFor(4096)
	if big <= small {
		t.Fatalf("bcast 4096B (%v) not slower than 64B (%v)", big, small)
	}
}

func TestAllReduceSum(t *testing.T) {
	m := mach(t, 16)
	results := make([]float64, 16)
	_, err := m.Run(func(n *Node) {
		results[n.ID()] = n.AllReduce(float64(n.ID()), OpSum)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 120.0 // sum 0..15
	for i, r := range results {
		if r != want {
			t.Fatalf("node %d reduce = %g, want %g", i, r, want)
		}
	}
}

func TestAllReduceMaxMin(t *testing.T) {
	m := mach(t, 4)
	var maxR, minR float64
	_, err := m.Run(func(n *Node) {
		x := float64((n.ID()*7)%5) - 2 // -2..2 scattered
		mx := n.AllReduce(x, OpMax)
		mn := n.AllReduce(x, OpMin)
		if n.ID() == 0 {
			maxR, minR = mx, mn
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxR != 2 || minR != -2 {
		t.Fatalf("max=%g min=%g", maxR, minR)
	}
}

func TestScanAdd(t *testing.T) {
	m := mach(t, 8)
	results := make([]float64, 8)
	_, err := m.Run(func(n *Node) {
		results[n.ID()] = n.ScanAdd(1.0)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range results {
		if r != float64(i+1) {
			t.Fatalf("scan[%d] = %g, want %d", i, r, i+1)
		}
	}
}

func TestCollectiveLatencyIsMicroseconds(t *testing.T) {
	m := mach(t, 32)
	end, err := m.Run(func(n *Node) { n.Barrier() })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end > 20*sim.Microsecond {
		t.Fatalf("barrier on idle machine took %v ns, want microseconds", int64(end))
	}
	if end < 2*sim.Microsecond {
		t.Fatalf("barrier too fast: %v ns", int64(end))
	}
}

func TestSendOverheadOccupiesSender(t *testing.T) {
	// Two back-to-back sends from one node must serialize their
	// overheads even when receivers are ready.
	m := mach(t, 4)
	var senderDone sim.Time
	_, err := m.Run(func(n *Node) {
		switch n.ID() {
		case 0:
			n.SendN(1, 0, 0)
			n.SendN(2, 0, 0)
			senderDone = n.Now()
		case 1, 2:
			n.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg := m.Config()
	minimum := 2 * (cfg.SendOverhead + cfg.WireLatency)
	if senderDone < minimum {
		t.Fatalf("sender done at %v, want >= %v", senderDone, minimum)
	}
}

func TestManyNodesComplete(t *testing.T) {
	m := mach(t, 64)
	finished := 0
	_, err := m.Run(func(n *Node) {
		// Ring shift: everyone sends right, receives from left.
		right := (n.ID() + 1) % n.N()
		left := (n.ID() + n.N() - 1) % n.N()
		if n.ID()%2 == 0 {
			n.SendN(right, 0, 128)
			n.Recv(left, 0)
		} else {
			n.Recv(left, 0)
			n.SendN(right, 0, 128)
		}
		finished++
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if finished != 64 {
		t.Fatalf("finished = %d", finished)
	}
}

func TestDeterministicEndTime(t *testing.T) {
	runOnce := func() sim.Time {
		m := mach(t, 16)
		end, err := m.Run(func(n *Node) {
			for j := 1; j < n.N(); j++ {
				peer := n.ID() ^ j
				if n.ID() < peer {
					n.Recv(peer, j)
					n.SendN(peer, j, 256)
				} else {
					n.SendN(peer, j, 256)
					n.Recv(peer, j)
				}
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return end
	}
	a := runOnce()
	for i := 0; i < 5; i++ {
		if b := runOnce(); b != a {
			t.Fatalf("nondeterministic end time: %v vs %v", a, b)
		}
	}
}

// A bad timing Config must fail machine construction with a
// descriptive error instead of driving the flow solver to NaN rates.
func TestNewMachineRejectsBadConfig(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.NodeLinkRate = 0
	if _, err := NewMachine(16, cfg); err == nil {
		t.Fatal("zero node rate should fail NewMachine")
	}
	if _, err := NewMachineOn(nil, network.DefaultConfig()); err == nil {
		t.Fatal("nil topology should fail NewMachineOn")
	}
}
