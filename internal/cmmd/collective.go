package cmmd

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ReduceOp is a binary reduction operator for AllReduce.
type ReduceOp int

// Supported reduction operators (the CM-5 control network implemented
// these in hardware).
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic(fmt.Sprintf("cmmd: unknown reduce op %d", op))
}

type collKind int

const (
	collNone collKind = iota
	collBarrier
	collBcast
	collReduce
	collScan
)

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "barrier"
	case collBcast:
		return "bcast"
	case collReduce:
		return "reduce"
	case collScan:
		return "scan"
	}
	return "none"
}

type collWaiter struct {
	node    *Node
	outData *[]byte
	outVal  *float64
	inVal   float64
}

// collective tracks one in-progress control-network operation. Because
// every node must join before any is released, a single state struct
// suffices: a node cannot start collective k+1 until k has released it.
type collective struct {
	kind    collKind
	root    int
	arrived int
	waiters []collWaiter
	data    []byte
	acc     float64
	op      ReduceOp
}

// join adds the calling node to the current collective, validating that
// all participants are performing the same operation.
func (m *Machine) join(n *Node, kind collKind, w collWaiter, complete func()) {
	c := &m.coll
	if c.arrived == 0 {
		c.kind = kind
	} else if c.kind != kind {
		panic(fmt.Sprintf("cmmd: node %d joined %v while a %v is in progress", n.id, kind, c.kind))
	}
	c.arrived++
	c.waiters = append(c.waiters, w)
	if c.arrived == m.N() {
		complete()
	}
	n.proc.Park()
}

// release wakes all waiters after the given control-network duration and
// resets the collective for the next phase. finish runs at release time,
// before any waiter resumes, to populate their outputs.
func (m *Machine) release(dur sim.Time, finish func(waiters []collWaiter)) {
	c := &m.coll
	waiters := c.waiters
	*c = collective{}
	m.eng.After(dur, func() {
		if finish != nil {
			finish(waiters)
		}
		for _, w := range waiters {
			m.eng.Ready(w.node.proc)
		}
	})
}

// Barrier blocks until every node in the partition has called Barrier.
// The release costs one control-network traversal (a few microseconds).
func (n *Node) Barrier() {
	m := n.m
	m.join(n, collBarrier, collWaiter{node: n}, func() {
		m.release(m.ctrl.BarrierTime(), nil)
	})
}

// Bcast performs the system broadcast over the control network: root's
// data reaches every node. All nodes must call Bcast with the same root;
// every caller (including root) receives a copy of the data. This models
// CMMD's built-in broadcast, which "requires all processors in the
// partition to participate" — the limitation the paper's Recursive
// Broadcast works around.
func (n *Node) Bcast(root int, data []byte) []byte {
	m := n.m
	if root < 0 || root >= n.N() {
		panic(fmt.Sprintf("cmmd: bcast root %d out of range", root))
	}
	var out []byte
	c := &m.coll
	if c.arrived == 0 {
		c.root = root
	} else if c.root != root {
		panic(fmt.Sprintf("cmmd: node %d bcast root %d != %d", n.id, root, c.root))
	}
	if n.id == root {
		c.data = data
	}
	m.join(n, collBcast, collWaiter{node: n, outData: &out}, func() {
		payload := c.data
		m.release(m.ctrl.BcastTime(len(payload)), func(ws []collWaiter) {
			for _, w := range ws {
				*w.outData = append([]byte(nil), payload...)
			}
		})
	})
	return out
}

// AllReduce combines one float64 from every node with op and returns the
// result to all of them, using the control network's hardware combine.
func (n *Node) AllReduce(x float64, op ReduceOp) float64 {
	m := n.m
	var out float64
	c := &m.coll
	if c.arrived == 0 {
		c.acc = x
		c.op = op
	} else {
		if c.op != op {
			panic(fmt.Sprintf("cmmd: node %d reduce op mismatch", n.id))
		}
		c.acc = op.apply(c.acc, x)
	}
	m.join(n, collReduce, collWaiter{node: n, outVal: &out}, func() {
		result := c.acc
		m.release(m.ctrl.CombineTime(8), func(ws []collWaiter) {
			for _, w := range ws {
				*w.outVal = result
			}
		})
	})
	return out
}

// ScanAdd returns the inclusive prefix sum of x by node rank: node i
// receives sum over nodes 0..i. It models the control network's
// parallel-prefix hardware.
func (n *Node) ScanAdd(x float64) float64 {
	m := n.m
	var out float64
	m.join(n, collScan, collWaiter{node: n, outVal: &out, inVal: x}, func() {
		m.release(m.ctrl.CombineTime(8), func(ws []collWaiter) {
			// Waiters arrive in arbitrary rank order; accumulate by rank.
			byRank := make(map[int]collWaiter, len(ws))
			maxRank := 0
			for _, w := range ws {
				byRank[w.node.id] = w
				if w.node.id > maxRank {
					maxRank = w.node.id
				}
			}
			sum := 0.0
			for r := 0; r <= maxRank; r++ {
				w, ok := byRank[r]
				if !ok {
					continue
				}
				sum += w.inVal
				*w.outVal = sum
			}
		})
	})
	return out
}
