package cmmd

import (
	"strconv"

	"repro/internal/network"
	"repro/internal/obs"
)

// SetMetrics attaches the observability counter bundle to the machine
// and its data network (nil detaches). The engine's event counters are
// folded in when Run finishes; everything else updates live. Metrics
// are passive — attaching them never changes simulated timing.
func (m *Machine) SetMetrics(met *obs.SimMetrics) {
	m.met = met
	m.net.SetMetrics(met)
}

// SetTimeline attaches a sim-time timeline recorder (nil detaches):
// flow lifetimes from the data network, message wait/transfer spans
// from the trace path, and fault instants from the plan applied by
// ApplyFaults. Must be called before ApplyFaults for fault instants to
// be captured, and before Run like every other machine option.
func (m *Machine) SetTimeline(tl *obs.Timeline) {
	m.tl = tl
	m.net.SetTimeline(tl)
}

// recordTimeline files one completed message with the timeline: the
// rendezvous wait (when any) and the wire transfer, both on the
// sender's track.
func (m *Machine) recordTimeline(ev MsgEvent) {
	name := strconv.Itoa(ev.Src) + "->" + strconv.Itoa(ev.Dst)
	args := []obs.Arg{{Key: "bytes", Val: int64(ev.Bytes)}, {Key: "tag", Val: int64(ev.Tag)}}
	if ev.Started > ev.Posted {
		m.tl.RecordSpan(obs.Span{
			Cat: "msg", Name: "wait " + name, Tid: ev.Src,
			Start: int64(ev.Posted), End: int64(ev.Started), Args: args,
		})
	}
	m.tl.RecordSpan(obs.Span{
		Cat: "msg", Name: "msg " + name, Tid: ev.Src,
		Start: int64(ev.Started), End: int64(ev.Ended), Args: args,
	})
}

// faultInstant records one fault event firing, on the run-scoped track.
func (m *Machine) faultInstant(ev network.FaultEvent) {
	var args []obs.Arg
	switch ev.Kind {
	case network.FaultLinkDown, network.FaultDegrade:
		args = []obs.Arg{{Key: "link", Val: int64(ev.Link)}}
	case network.FaultStraggler:
		args = []obs.Arg{{Key: "node", Val: int64(ev.Node)}}
	case network.FaultBackground:
		args = []obs.Arg{{Key: "flows", Val: int64(ev.Flows)}}
	}
	m.tl.RecordInstant(obs.Instant{
		Cat: "fault", Name: "fault " + string(ev.Kind), Tid: -1,
		At: int64(ev.At), Args: args,
	})
}
