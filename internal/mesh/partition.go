package mesh

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
)

// Partition describes a mesh distributed over p processors: ownership,
// per-processor vertex lists, and the ghost-exchange lists that drive the
// irregular communication of the paper's CG and Euler solvers.
type Partition struct {
	Mesh  *Mesh
	P     int
	Owner []int

	// Owned[p] lists the vertices owned by processor p, ascending.
	Owned [][]int

	// SendList[p][q] lists the vertices owned by p whose values q needs
	// (p's boundary vertices adjacent to q's vertices), ascending.
	// Receive lists are the mirror: proc q receives SendList[p][q] from p.
	SendList [][]map[int]bool

	sendSorted [][][]int
}

// NewPartition builds the distribution structures for a mesh and an
// ownership vector over p processors.
func NewPartition(m *Mesh, owner []int, p int) (*Partition, error) {
	if len(owner) != m.NumVertices() {
		return nil, fmt.Errorf("mesh: owner vector has %d entries for %d vertices", len(owner), m.NumVertices())
	}
	for v, o := range owner {
		if o < 0 || o >= p {
			return nil, fmt.Errorf("mesh: vertex %d assigned to processor %d of %d", v, o, p)
		}
	}
	pt := &Partition{Mesh: m, P: p, Owner: owner}
	pt.Owned = make([][]int, p)
	for v, o := range owner {
		pt.Owned[o] = append(pt.Owned[o], v)
	}
	pt.SendList = make([][]map[int]bool, p)
	for i := range pt.SendList {
		pt.SendList[i] = make([]map[int]bool, p)
	}
	for _, e := range m.Edges() {
		a, b := e[0], e[1]
		oa, ob := owner[a], owner[b]
		if oa == ob {
			continue
		}
		// b's owner needs a's value and vice versa.
		addSend(pt, oa, ob, a)
		addSend(pt, ob, oa, b)
	}
	pt.sendSorted = make([][][]int, p)
	for src := 0; src < p; src++ {
		pt.sendSorted[src] = make([][]int, p)
		for dst := 0; dst < p; dst++ {
			set := pt.SendList[src][dst]
			if set == nil {
				continue
			}
			lst := make([]int, 0, len(set))
			for v := range set {
				lst = append(lst, v)
			}
			sort.Ints(lst)
			pt.sendSorted[src][dst] = lst
		}
	}
	return pt, nil
}

func addSend(pt *Partition, from, to, vertex int) {
	if pt.SendList[from][to] == nil {
		pt.SendList[from][to] = make(map[int]bool)
	}
	pt.SendList[from][to][vertex] = true
}

// SendVertices returns the sorted vertices processor src must send to
// dst each halo exchange (nil if none).
func (pt *Partition) SendVertices(src, dst int) []int {
	return pt.sendSorted[src][dst]
}

// HaloPattern returns the communication matrix for one halo exchange
// with bytesPerVertex bytes per ghost value — the input the paper's
// irregular schedulers consume. For the conjugate-gradient solver
// bytesPerVertex is 8 (one float64); for the Euler solver it is 32
// (four conserved variables).
func (pt *Partition) HaloPattern(bytesPerVertex int) pattern.Matrix {
	m := pattern.New(pt.P)
	for src := 0; src < pt.P; src++ {
		for dst := 0; dst < pt.P; dst++ {
			if lst := pt.sendSorted[src][dst]; len(lst) > 0 {
				m[src][dst] = len(lst) * bytesPerVertex
			}
		}
	}
	return m
}

// NeighborCounts returns, per processor, how many other processors it
// exchanges halos with.
func (pt *Partition) NeighborCounts() []int {
	counts := make([]int, pt.P)
	for src := 0; src < pt.P; src++ {
		for dst := 0; dst < pt.P; dst++ {
			if len(pt.sendSorted[src][dst]) > 0 {
				counts[src]++
			}
		}
	}
	return counts
}

// WideHaloPattern returns the communication matrix for a distance-2
// halo exchange: processor q receives every vertex of p within two graph
// hops of q's owned set. Wider halos model the richer processor
// connectivity of the paper's three-dimensional Euler meshes (and of
// higher-order/multigrid stencils generally): they raise both pattern
// density and per-message size relative to HaloPattern.
func (pt *Partition) WideHaloPattern(bytesPerVertex int) pattern.Matrix {
	adj := pt.Mesh.Adjacency()
	m := pattern.New(pt.P)
	// For each vertex v, the set of processors owning vertices within
	// distance 2 of v; v's owner must send v to each of them.
	for v := range adj {
		src := pt.Owner[v]
		needed := make(map[int]bool)
		for _, w := range adj[v] {
			needed[pt.Owner[w]] = true
			for _, x := range adj[w] {
				needed[pt.Owner[x]] = true
			}
		}
		for dst := range needed {
			if dst != src {
				m[src][dst] += bytesPerVertex
			}
		}
	}
	return m
}

// GhostVertices returns the sorted vertices processor p needs but does
// not own (the union of what its neighbors send it).
func (pt *Partition) GhostVertices(p int) []int {
	set := make(map[int]bool)
	for src := 0; src < pt.P; src++ {
		for _, v := range pt.sendSorted[src][p] {
			set[v] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
