// Package mesh provides the unstructured-mesh substrate for the paper's
// irregular-communication experiments: synthetic planar triangular meshes
// standing in for the Mavriplis Euler meshes (545/2K/3K/9K vertices) and
// the 16K-vertex conjugate-gradient problem, a recursive coordinate
// bisection partitioner, and halo-exchange pattern extraction.
//
// The substitution is documented in README.md: the paper's schedulers
// consume only the communication matrix (density, bytes per neighbor
// pair), which synthetic meshes of matched size and partitioning
// reproduce.
package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is a 2-D vertex position.
type Point struct{ X, Y float64 }

// Mesh is an unstructured triangular mesh.
type Mesh struct {
	Pts  []Point
	Tris [][3]int

	edges [][2]int // unique vertex pairs (a < b), built lazily
	adj   [][]int  // vertex adjacency, built lazily
}

// NumVertices returns the vertex count.
func (m *Mesh) NumVertices() int { return len(m.Pts) }

// NumTriangles returns the triangle count.
func (m *Mesh) NumTriangles() int { return len(m.Tris) }

// Generate builds a jittered triangulated grid with approximately nv
// vertices (exactly rows*cols where rows*cols is the closest grid at or
// above nv's square root split). Interior vertices are perturbed
// pseudo-randomly so partition boundaries are irregular, like a real
// unstructured CFD mesh. Deterministic for a given seed.
func Generate(nv int, seed int64) *Mesh {
	if nv < 4 {
		nv = 4
	}
	rows := int(math.Sqrt(float64(nv)))
	if rows < 2 {
		rows = 2
	}
	cols := (nv + rows - 1) / rows
	rng := rand.New(rand.NewSource(seed))

	m := &Mesh{}
	jitter := 0.35
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x, y := float64(c), float64(r)
			if r > 0 && r < rows-1 && c > 0 && c < cols-1 {
				x += jitter * (2*rng.Float64() - 1)
				y += jitter * (2*rng.Float64() - 1)
			}
			m.Pts = append(m.Pts, Point{X: x, Y: y})
		}
	}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows-1; r++ {
		for c := 0; c < cols-1; c++ {
			a, b := id(r, c), id(r, c+1)
			d, e := id(r+1, c), id(r+1, c+1)
			// Alternate the quad diagonal pseudo-randomly for
			// irregularity.
			if rng.Intn(2) == 0 {
				m.Tris = append(m.Tris, [3]int{a, b, d}, [3]int{b, e, d})
			} else {
				m.Tris = append(m.Tris, [3]int{a, b, e}, [3]int{a, e, d})
			}
		}
	}
	return m
}

// Edges returns the unique undirected edges (a < b), sorted.
func (m *Mesh) Edges() [][2]int {
	if m.edges != nil {
		return m.edges
	}
	seen := make(map[[2]int]bool)
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		seen[[2]int{a, b}] = true
	}
	for _, t := range m.Tris {
		add(t[0], t[1])
		add(t[1], t[2])
		add(t[0], t[2])
	}
	edges := make([][2]int, 0, len(seen))
	for e := range seen {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	m.edges = edges
	return edges
}

// Adjacency returns, for each vertex, its sorted neighbor list.
func (m *Mesh) Adjacency() [][]int {
	if m.adj != nil {
		return m.adj
	}
	adj := make([][]int, m.NumVertices())
	for _, e := range m.Edges() {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	m.adj = adj
	return adj
}

// Validate checks structural invariants: triangle indices in range,
// non-degenerate triangles, and a connected vertex set.
func (m *Mesh) Validate() error {
	n := m.NumVertices()
	for ti, t := range m.Tris {
		for _, v := range t {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: triangle %d references vertex %d of %d", ti, v, n)
			}
		}
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			return fmt.Errorf("mesh: degenerate triangle %d: %v", ti, t)
		}
	}
	if n > 0 && !m.connected() {
		return fmt.Errorf("mesh: vertex graph is not connected")
	}
	return nil
}

func (m *Mesh) connected() bool {
	n := m.NumVertices()
	if n == 0 {
		return true
	}
	adj := m.Adjacency()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// PartitionRCB assigns each vertex to one of p parts by recursive
// coordinate bisection: split the vertex set at the median of its wider
// coordinate extent, recursing until p parts exist. p must be a power of
// two. The result balances part sizes within one vertex.
func PartitionRCB(m *Mesh, p int) []int {
	if p < 1 || p&(p-1) != 0 {
		panic(fmt.Sprintf("mesh: part count %d must be a power of two", p))
	}
	owner := make([]int, m.NumVertices())
	idx := make([]int, m.NumVertices())
	for i := range idx {
		idx[i] = i
	}
	rcb(m.Pts, idx, 0, p, owner)
	return owner
}

func rcb(pts []Point, idx []int, base, parts int, owner []int) {
	if parts == 1 {
		for _, v := range idx {
			owner[v] = base
		}
		return
	}
	// Choose the wider axis.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range idx {
		p := pts[v]
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	byX := maxX-minX >= maxY-minY
	sort.Slice(idx, func(i, j int) bool {
		a, b := pts[idx[i]], pts[idx[j]]
		if byX {
			if a.X != b.X {
				return a.X < b.X
			}
			return a.Y < b.Y
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	mid := len(idx) / 2
	rcb(pts, idx[:mid], base, parts/2, owner)
	rcb(pts, idx[mid:], base+parts/2, parts/2, owner)
}

// PartSizes returns the number of vertices per part.
func PartSizes(owner []int, p int) []int {
	sizes := make([]int, p)
	for _, o := range owner {
		sizes[o]++
	}
	return sizes
}
