package mesh

import (
	"testing"
	"testing/quick"
)

func TestGenerateBasics(t *testing.T) {
	for _, nv := range []int{16, 100, 545, 2000} {
		m := Generate(nv, 1)
		if got := m.NumVertices(); got < nv || got > nv+int(2*float64(nv)/10)+64 {
			t.Fatalf("Generate(%d) produced %d vertices", nv, got)
		}
		if m.NumTriangles() == 0 {
			t.Fatalf("Generate(%d): no triangles", nv)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Generate(%d): %v", nv, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(200, 42), Generate(200, 42)
	if a.NumVertices() != b.NumVertices() || a.NumTriangles() != b.NumTriangles() {
		t.Fatal("same seed, different mesh")
	}
	for i := range a.Pts {
		if a.Pts[i] != b.Pts[i] {
			t.Fatal("same seed, different vertex positions")
		}
	}
	c := Generate(200, 43)
	same := true
	for i := range a.Pts {
		if a.Pts[i] != c.Pts[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestEdgesAreUniqueAndSorted(t *testing.T) {
	m := Generate(100, 3)
	edges := m.Edges()
	for i, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
		if i > 0 {
			p := edges[i-1]
			if p[0] > e[0] || (p[0] == e[0] && p[1] >= e[1]) {
				t.Fatalf("edges not sorted: %v before %v", p, e)
			}
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	m := Generate(150, 9)
	adj := m.Adjacency()
	for v, ns := range adj {
		for _, w := range ns {
			found := false
			for _, x := range adj[w] {
				if x == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d->%d", v, w)
			}
		}
	}
}

func TestValidateCatchesBadTriangles(t *testing.T) {
	m := &Mesh{Pts: []Point{{0, 0}, {1, 0}, {0, 1}}, Tris: [][3]int{{0, 1, 5}}}
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range vertex should fail")
	}
	m = &Mesh{Pts: []Point{{0, 0}, {1, 0}, {0, 1}}, Tris: [][3]int{{0, 1, 1}}}
	if err := m.Validate(); err == nil {
		t.Fatal("degenerate triangle should fail")
	}
}

func TestPartitionRCBBalanced(t *testing.T) {
	m := Generate(545, 2)
	for _, p := range []int{2, 8, 32} {
		owner := PartitionRCB(m, p)
		sizes := PartSizes(owner, p)
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("p=%d: imbalanced parts: min %d max %d", p, min, max)
		}
	}
}

func TestPartitionRCBRejectsBadCounts(t *testing.T) {
	m := Generate(64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two parts should panic")
		}
	}()
	PartitionRCB(m, 6)
}

func TestNewPartitionStructures(t *testing.T) {
	m := Generate(545, 5)
	owner := PartitionRCB(m, 32)
	pt, err := NewPartition(m, owner, 32)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	// Every vertex owned exactly once.
	total := 0
	for p := 0; p < 32; p++ {
		total += len(pt.Owned[p])
		for _, v := range pt.Owned[p] {
			if owner[v] != p {
				t.Fatalf("vertex %d in Owned[%d] but owner %d", v, p, owner[v])
			}
		}
	}
	if total != m.NumVertices() {
		t.Fatalf("owned total %d != %d vertices", total, m.NumVertices())
	}
}

func TestSendListsMirrorGhosts(t *testing.T) {
	m := Generate(300, 8)
	owner := PartitionRCB(m, 8)
	pt, err := NewPartition(m, owner, 8)
	if err != nil {
		t.Fatal(err)
	}
	// What p sends to q is exactly owned by p, and appears in q's ghosts.
	for p := 0; p < 8; p++ {
		ghostsOf := make(map[int]bool)
		for _, v := range pt.GhostVertices(p) {
			ghostsOf[v] = true
			if owner[v] == p {
				t.Fatalf("proc %d ghost %d is its own vertex", p, v)
			}
		}
		for q := 0; q < 8; q++ {
			for _, v := range pt.SendVertices(q, p) {
				if owner[v] != q {
					t.Fatalf("proc %d sends vertex %d it does not own", q, v)
				}
				if !ghostsOf[v] {
					t.Fatalf("sent vertex %d missing from proc %d ghosts", v, p)
				}
			}
		}
	}
}

func TestSendListsCoverCutEdges(t *testing.T) {
	m := Generate(300, 8)
	owner := PartitionRCB(m, 8)
	pt, _ := NewPartition(m, owner, 8)
	for _, e := range m.Edges() {
		a, b := e[0], e[1]
		if owner[a] == owner[b] {
			continue
		}
		if !pt.SendList[owner[a]][owner[b]][a] {
			t.Fatalf("cut edge (%d,%d): %d not in send list %d->%d", a, b, a, owner[a], owner[b])
		}
		if !pt.SendList[owner[b]][owner[a]][b] {
			t.Fatalf("cut edge (%d,%d): %d not in send list %d->%d", a, b, b, owner[b], owner[a])
		}
	}
}

func TestHaloPatternProperties(t *testing.T) {
	m := Generate(2000, 12)
	owner := PartitionRCB(m, 32)
	pt, _ := NewPartition(m, owner, 32)
	pat := pt.HaloPattern(8)
	if err := pat.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !pat.IsSymmetricShape() {
		t.Fatal("halo patterns are symmetric in shape")
	}
	d := pat.Density()
	// Planar RCB partitions have sparse processor graphs: the paper's
	// real problems range 9-44%.
	if d <= 0.03 || d >= 0.6 {
		t.Fatalf("density %.2f implausible for a planar mesh", d)
	}
}

func TestHaloPatternScalesWithBytesPerVertex(t *testing.T) {
	m := Generate(500, 4)
	owner := PartitionRCB(m, 8)
	pt, _ := NewPartition(m, owner, 8)
	p8 := pt.HaloPattern(8)
	p32 := pt.HaloPattern(32)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if p32[i][j] != 4*p8[i][j] {
				t.Fatalf("scaling broken at [%d][%d]", i, j)
			}
		}
	}
}

func TestNewPartitionValidation(t *testing.T) {
	m := Generate(64, 1)
	if _, err := NewPartition(m, make([]int, 3), 4); err == nil {
		t.Fatal("short owner vector should fail")
	}
	bad := make([]int, m.NumVertices())
	bad[0] = 99
	if _, err := NewPartition(m, bad, 4); err == nil {
		t.Fatal("out-of-range owner should fail")
	}
}

func TestNeighborCounts(t *testing.T) {
	m := Generate(1000, 6)
	owner := PartitionRCB(m, 16)
	pt, _ := NewPartition(m, owner, 16)
	counts := pt.NeighborCounts()
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("proc %d has no neighbors in a connected mesh", p)
		}
		if c >= 16 {
			t.Fatalf("proc %d claims %d neighbors", p, c)
		}
	}
}

// Property: partitioning any generated mesh keeps ownership within range
// and halo patterns structurally valid.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64, nvRaw uint16, pIdx uint8) bool {
		nv := 64 + int(nvRaw%1000)
		ps := []int{2, 4, 8, 16}
		p := ps[int(pIdx)%len(ps)]
		m := Generate(nv, seed)
		owner := PartitionRCB(m, p)
		pt, err := NewPartition(m, owner, p)
		if err != nil {
			return false
		}
		pat := pt.HaloPattern(8)
		return pat.Validate() == nil && pat.IsSymmetricShape()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWideHaloPatternSupersetsOneHop(t *testing.T) {
	m := Generate(800, 21)
	owner := PartitionRCB(m, 16)
	pt, _ := NewPartition(m, owner, 16)
	one := pt.HaloPattern(8)
	wide := pt.WideHaloPattern(8)
	if err := wide.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !wide.IsSymmetricShape() {
		t.Fatal("wide halo must be symmetric in shape")
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if wide[i][j] < one[i][j] {
				t.Fatalf("wide halo smaller than one-hop at [%d][%d]: %d < %d",
					i, j, wide[i][j], one[i][j])
			}
		}
	}
	if wide.TotalBytes() <= one.TotalBytes() {
		t.Fatal("wide halo should move strictly more data")
	}
	if wide.Density() < one.Density() {
		t.Fatal("wide halo should not lower density")
	}
}
