// Package cg implements the paper's conjugate-gradient application: a
// distributed CG solver on an unstructured-mesh operator whose
// per-iteration halo exchange is an irregular communication pattern
// scheduled by any of the paper's four algorithms (Section 4.5,
// Table 12's "Conj. Grad. 16K" column).
//
// The operator is the graph Laplacian of the mesh plus the identity
// (symmetric positive definite), row-distributed by the mesh partition.
// Dot products use the CM-5 control network's hardware reduction.
package cg

import (
	"fmt"
	"math"

	"repro/internal/cmmd"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sim"
)

// CSR is a compressed sparse row matrix.
type CSR struct {
	N      int
	RowPtr []int
	ColIdx []int
	Vals   []float64
}

// BuildLaplacianPlusI assembles A = L + I for the mesh graph: A[i][i] =
// degree(i) + 1, A[i][j] = -1 for every edge (i,j). The result is
// symmetric positive definite.
func BuildLaplacianPlusI(m *mesh.Mesh) *CSR {
	adj := m.Adjacency()
	n := m.NumVertices()
	csr := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		csr.RowPtr[i+1] = csr.RowPtr[i] + len(adj[i]) + 1
	}
	nnz := csr.RowPtr[n]
	csr.ColIdx = make([]int, 0, nnz)
	csr.Vals = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		// Diagonal first, then neighbors ascending (adjacency is sorted).
		csr.ColIdx = append(csr.ColIdx, i)
		csr.Vals = append(csr.Vals, float64(len(adj[i]))+1)
		for _, j := range adj[i] {
			csr.ColIdx = append(csr.ColIdx, j)
			csr.Vals = append(csr.Vals, -1)
		}
	}
	return csr
}

// MatVec computes y = A x.
func (a *CSR) MatVec(x, y []float64) {
	for i := 0; i < a.N; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Vals[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Vals) }

// SolveSequential runs plain CG to relative residual tol, returning the
// solution and iteration count. The single-machine oracle for the
// distributed solver.
func SolveSequential(a *CSR, b []float64, tol float64, maxIter int) ([]float64, int) {
	n := a.N
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rr := dot(r, r)
	bNorm := math.Sqrt(dot(b, b))
	if bNorm == 0 {
		return x, 0
	}
	for iter := 1; iter <= maxIter; iter++ {
		a.MatVec(p, ap)
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		if math.Sqrt(rrNew)/bNorm < tol {
			return x, iter
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return x, maxIter
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Options configures a distributed solve.
type Options struct {
	Alg     string // irregular scheduler: LS, PS, BS, GS
	Tol     float64
	MaxIter int
	// TraceSink, when non-nil, receives every data-network message
	// event of the run (cmmd.Machine.SetTraceSink) — the recording
	// entry point of internal/trace. It never changes simulated timing.
	TraceSink func(cmmd.MsgEvent)
}

// Result reports a distributed solve.
type Result struct {
	X        []float64
	Iters    int
	Residual float64 // final relative residual
	Elapsed  sim.Time
	Pattern  pattern.Matrix // the halo pattern the scheduler consumed
	Schedule *sched.Schedule
}

// Solve runs distributed CG on nprocs simulated CM-5 nodes. The mesh is
// partitioned with recursive coordinate bisection; the halo-exchange
// schedule is built once (the paper: "the communication schedule needs to
// be created only once and can be used thereafter ... amortized over all
// the iterations") and re-executed every iteration.
func Solve(nprocs int, m *mesh.Mesh, b []float64, opts Options, cfg network.Config) (*Result, error) {
	if len(b) != m.NumVertices() {
		return nil, fmt.Errorf("cg: b has %d entries for %d vertices", len(b), m.NumVertices())
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500
	}
	owner := mesh.PartitionRCB(m, nprocs)
	pt, err := mesh.NewPartition(m, owner, nprocs)
	if err != nil {
		return nil, err
	}
	halo := pt.HaloPattern(8)
	schedule, err := sched.Irregular(opts.Alg, halo)
	if err != nil {
		return nil, err
	}
	a := BuildLaplacianPlusI(m)

	mach, err := cmmd.NewMachine(nprocs, cfg)
	if err != nil {
		return nil, err
	}
	if opts.TraceSink != nil {
		mach.SetTraceSink(opts.TraceSink)
	}

	n := m.NumVertices()
	x := make([]float64, n) // final solution, owned entries written per node
	iters := make([]int, nprocs)
	finalRes := make([]float64, nprocs)

	program := func(node *cmmd.Node) {
		me := node.ID()
		mine := pt.Owned[me]
		// Full-length local vectors; only owned (+ ghost for p) entries
		// are meaningful on this node.
		xl := make([]float64, n)
		r := make([]float64, n)
		p := make([]float64, n)
		ap := make([]float64, n)
		for _, v := range mine {
			r[v] = b[v]
			p[v] = b[v]
		}
		exchange := func(vec []float64) {
			hooks := sched.DataHooks{
				OnSend: func(step, src, dst int) []byte {
					verts := pt.SendVertices(me, dst)
					buf := make([]byte, 8*len(verts))
					for i, v := range verts {
						putFloat64(buf[8*i:], vec[v])
					}
					node.MemCopy(len(buf))
					return buf
				},
				OnRecv: func(step int, msg cmmd.Message) {
					verts := pt.SendVertices(msg.Src, me)
					for i, v := range verts {
						vec[v] = getFloat64(msg.Data[8*i:])
					}
					node.MemCopy(len(msg.Data))
				},
			}
			sched.ExecuteNode(node, schedule, hooks)
		}
		localDot := func(u, w []float64) float64 {
			s := 0.0
			for _, v := range mine {
				s += u[v] * w[v]
			}
			node.ComputeFlops(2 * float64(len(mine)))
			return s
		}
		matVecLocal := func() {
			flops := 0.0
			for _, i := range mine {
				sum := 0.0
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					sum += a.Vals[k] * p[a.ColIdx[k]]
				}
				ap[i] = sum
				flops += 2 * float64(a.RowPtr[i+1]-a.RowPtr[i])
			}
			node.ComputeFlops(flops)
		}

		rr := node.AllReduce(localDot(r, r), cmmd.OpSum)
		bNorm := math.Sqrt(node.AllReduce(localDot(r, r), cmmd.OpSum))
		if bNorm == 0 {
			return
		}
		it := 0
		res := math.Sqrt(rr) / bNorm
		for it < opts.MaxIter && res >= opts.Tol {
			it++
			exchange(p) // ghost values of p for the local matvec
			matVecLocal()
			pap := node.AllReduce(localDot(p, ap), cmmd.OpSum)
			alpha := rr / pap
			for _, v := range mine {
				xl[v] += alpha * p[v]
				r[v] -= alpha * ap[v]
			}
			node.ComputeFlops(4 * float64(len(mine)))
			rrNew := node.AllReduce(localDot(r, r), cmmd.OpSum)
			beta := rrNew / rr
			for _, v := range mine {
				p[v] = r[v] + beta*p[v]
			}
			node.ComputeFlops(2 * float64(len(mine)))
			rr = rrNew
			res = math.Sqrt(rr) / bNorm
		}
		for _, v := range mine {
			x[v] = xl[v]
		}
		iters[me] = it
		finalRes[me] = res
	}

	elapsed, err := mach.Run(program)
	if err != nil {
		return nil, err
	}
	return &Result{
		X:        x,
		Iters:    iters[0],
		Residual: finalRes[0],
		Elapsed:  elapsed,
		Pattern:  halo,
		Schedule: schedule,
	}, nil
}

func putFloat64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getFloat64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
