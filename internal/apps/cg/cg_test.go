package cg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/network"
)

func testMesh(t *testing.T, nv int) *mesh.Mesh {
	t.Helper()
	m := mesh.Generate(nv, 4)
	if err := m.Validate(); err != nil {
		t.Fatalf("mesh: %v", err)
	}
	return m
}

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func TestLaplacianPlusIStructure(t *testing.T) {
	m := testMesh(t, 100)
	a := BuildLaplacianPlusI(m)
	if a.N != m.NumVertices() {
		t.Fatalf("N = %d", a.N)
	}
	adj := m.Adjacency()
	for i := 0; i < a.N; i++ {
		row := a.RowPtr[i+1] - a.RowPtr[i]
		if row != len(adj[i])+1 {
			t.Fatalf("row %d has %d entries, want %d", i, row, len(adj[i])+1)
		}
		// Diagonal dominance: diag = degree+1, offdiags are -1.
		if a.Vals[a.RowPtr[i]] != float64(len(adj[i]))+1 {
			t.Fatalf("diag[%d] = %g", i, a.Vals[a.RowPtr[i]])
		}
	}
}

func TestLaplacianSymmetric(t *testing.T) {
	m := testMesh(t, 80)
	a := BuildLaplacianPlusI(m)
	dense := make([][]float64, a.N)
	for i := range dense {
		dense[i] = make([]float64, a.N)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			dense[i][a.ColIdx[k]] = a.Vals[k]
		}
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if dense[i][j] != dense[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatVecIdentityPart(t *testing.T) {
	// (L+I) applied to the all-ones vector: L*1 = 0, so result is 1.
	m := testMesh(t, 64)
	a := BuildLaplacianPlusI(m)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	a.MatVec(x, y)
	for i, v := range y {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("y[%d] = %g, want 1", i, v)
		}
	}
}

func TestSequentialCGSolves(t *testing.T) {
	m := testMesh(t, 200)
	a := BuildLaplacianPlusI(m)
	b := rhs(a.N, 1)
	x, iters := SolveSequential(a, b, 1e-10, 1000)
	if iters >= 1000 {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	// Verify A x == b.
	y := make([]float64, a.N)
	a.MatVec(x, y)
	worst := 0.0
	for i := range y {
		if d := math.Abs(y[i] - b[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-7 {
		t.Fatalf("residual %g", worst)
	}
}

func TestSequentialCGZeroRHS(t *testing.T) {
	m := testMesh(t, 64)
	a := BuildLaplacianPlusI(m)
	x, iters := SolveSequential(a, make([]float64, a.N), 1e-10, 100)
	if iters != 0 {
		t.Fatalf("iters = %d for zero rhs", iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	m := testMesh(t, 300)
	b := rhs(m.NumVertices(), 2)
	a := BuildLaplacianPlusI(m)
	want, _ := SolveSequential(a, b, 1e-9, 2000)
	res, err := Solve(8, m, b, Options{Alg: "GS", Tol: 1e-9, MaxIter: 2000}, network.DefaultConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Residual >= 1e-8 {
		t.Fatalf("residual %g", res.Residual)
	}
	worst := 0.0
	for i := range want {
		if d := math.Abs(res.X[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("distributed differs from sequential by %g", worst)
	}
}

func TestAllSchedulersGiveSameAnswer(t *testing.T) {
	m := testMesh(t, 200)
	b := rhs(m.NumVertices(), 3)
	var ref []float64
	for _, alg := range []string{"LS", "PS", "BS", "GS"} {
		res, err := Solve(8, m, b, Options{Alg: alg, Tol: 1e-9, MaxIter: 1000}, network.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no simulated time", alg)
		}
		if ref == nil {
			ref = res.X
			continue
		}
		for i := range ref {
			if math.Abs(ref[i]-res.X[i]) > 1e-9 {
				t.Fatalf("%s: solution differs at %d", alg, i)
			}
		}
	}
}

func TestGreedyFasterThanLinearHalo(t *testing.T) {
	// The halo pattern is sparse (well under 50% density), so the paper
	// predicts GS beats LS.
	m := testMesh(t, 1000)
	b := rhs(m.NumVertices(), 4)
	ls, err := Solve(16, m, b, Options{Alg: "LS", Tol: 1e-8, MaxIter: 300}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Solve(16, m, b, Options{Alg: "GS", Tol: 1e-8, MaxIter: 300}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gs.Elapsed >= ls.Elapsed {
		t.Fatalf("GS (%v) should beat LS (%v)", gs.Elapsed, ls.Elapsed)
	}
}

func TestSolveValidation(t *testing.T) {
	m := testMesh(t, 64)
	if _, err := Solve(8, m, make([]float64, 3), Options{Alg: "GS"}, network.DefaultConfig()); err == nil {
		t.Fatal("short rhs should fail")
	}
	if _, err := Solve(8, m, rhs(m.NumVertices(), 1), Options{Alg: "QQ"}, network.DefaultConfig()); err == nil {
		t.Fatal("bad scheduler should fail")
	}
}

func TestPatternReportedMatchesMeshPartition(t *testing.T) {
	m := testMesh(t, 500)
	b := rhs(m.NumVertices(), 5)
	res, err := Solve(8, m, b, Options{Alg: "PS", Tol: 1e-6, MaxIter: 50}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern.N() != 8 {
		t.Fatalf("pattern N = %d", res.Pattern.N())
	}
	if !res.Pattern.IsSymmetricShape() {
		t.Fatal("halo pattern must be symmetric in shape")
	}
	if res.Pattern.Density() <= 0 {
		t.Fatal("empty halo pattern")
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	var buf [8]byte
	for _, f := range []float64{0, 1.5, -3.75e10, math.Pi, math.Inf(1)} {
		putFloat64(buf[:], f)
		if got := getFloat64(buf[:]); got != f {
			t.Fatalf("round trip %g -> %g", f, got)
		}
	}
}
