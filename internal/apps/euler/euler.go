// Package euler implements the paper's unstructured-mesh Euler solver
// workload (Section 4.5, Table 12's Euler 545/2K/3K/9K columns): a
// two-dimensional compressible Euler solver on a vertex-centered
// median-dual finite-volume discretization with Rusanov fluxes and
// explicit time stepping.
//
// The paper used Mavriplis's 3-D meshes; we substitute synthetic planar
// meshes of the same vertex counts (see README.md). What the scheduling
// experiments consume is the per-iteration halo exchange of the four
// conserved variables (32 bytes per shared vertex), which this solver
// produces for any of the paper's four irregular schedulers.
package euler

import (
	"fmt"
	"math"

	"repro/internal/mesh"
)

// Gamma is the ratio of specific heats for air.
const Gamma = 1.4

// State is the vector of conserved variables [rho, rho*u, rho*v, E].
type State [4]float64

// Freestream builds a conserved-variable state from primitive values.
func Freestream(rho, u, v, p float64) State {
	return State{
		rho,
		rho * u,
		rho * v,
		p/(Gamma-1) + 0.5*rho*(u*u+v*v),
	}
}

// Primitives recovers (rho, u, v, p) from a conserved state.
func (s State) Primitives() (rho, u, v, p float64) {
	rho = s[0]
	u = s[1] / rho
	v = s[2] / rho
	p = (Gamma - 1) * (s[3] - 0.5*rho*(u*u+v*v))
	return
}

// SoundSpeed returns the local speed of sound.
func (s State) SoundSpeed() float64 {
	rho, _, _, p := s.Primitives()
	return math.Sqrt(Gamma * p / rho)
}

// flux returns the Euler flux dotted with the (non-normalized) normal n.
func flux(s State, nx, ny float64) State {
	rho, u, v, p := s.Primitives()
	vn := u*nx + v*ny
	return State{
		rho * vn,
		rho*u*vn + p*nx,
		rho*v*vn + p*ny,
		(s[3] + p) * vn,
	}
}

// Rusanov evaluates the Rusanov (local Lax-Friedrichs) numerical flux
// across a face with normal (nx, ny) between states a and b.
func Rusanov(a, b State, nx, ny float64) State {
	fa := flux(a, nx, ny)
	fb := flux(b, nx, ny)
	nlen := math.Hypot(nx, ny)
	if nlen == 0 {
		return State{}
	}
	lam := math.Max(waveSpeed(a, nx/nlen, ny/nlen), waveSpeed(b, nx/nlen, ny/nlen)) * nlen
	var out State
	for k := 0; k < 4; k++ {
		out[k] = 0.5*(fa[k]+fb[k]) - 0.5*lam*(b[k]-a[k])
	}
	return out
}

func waveSpeed(s State, nxu, nyu float64) float64 {
	rho, u, v, p := s.Primitives()
	return math.Abs(u*nxu+v*nyu) + math.Sqrt(Gamma*p/rho)
}

// Geometry holds the median-dual metrics for a mesh: one dual face per
// edge (with an area-weighted normal) and one dual cell per vertex.
type Geometry struct {
	Mesh *mesh.Mesh
	// EdgeNormal[i] is the dual-face normal for Edges()[i], oriented
	// from the lower-numbered vertex toward the higher.
	EdgeNormal [][2]float64
	// DualArea[v] is the area of vertex v's dual control volume.
	DualArea []float64
	// Boundary[v] marks vertices on the mesh boundary (held at Dirichlet
	// freestream during time stepping, since their dual cells do not
	// close).
	Boundary []bool
}

// NewGeometry computes the dual metrics. For an interior edge the dual
// face runs between the centroids of its two adjacent triangles; its
// normal is that segment rotated 90 degrees, oriented positively from
// edge endpoint a (lower index) to b. The dual faces around an interior
// vertex form a closed polygon, so a uniform flow produces exactly zero
// residual there — the freestream-preservation property the tests check.
func NewGeometry(m *mesh.Mesh) (*Geometry, error) {
	edges := m.Edges()
	g := &Geometry{
		Mesh:       m,
		EdgeNormal: make([][2]float64, len(edges)),
		DualArea:   make([]float64, m.NumVertices()),
		Boundary:   make([]bool, m.NumVertices()),
	}
	// Map each edge to its adjacent triangles.
	adjTris := make(map[[2]int][]int)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for ti, t := range m.Tris {
		area := triArea(m.Pts[t[0]], m.Pts[t[1]], m.Pts[t[2]])
		if area <= 0 {
			return nil, fmt.Errorf("euler: triangle %d has non-positive area %g", ti, area)
		}
		for _, v := range t {
			g.DualArea[v] += area / 3
		}
		adjTris[key(t[0], t[1])] = append(adjTris[key(t[0], t[1])], ti)
		adjTris[key(t[1], t[2])] = append(adjTris[key(t[1], t[2])], ti)
		adjTris[key(t[0], t[2])] = append(adjTris[key(t[0], t[2])], ti)
	}
	centroid := func(ti int) (float64, float64) {
		t := m.Tris[ti]
		return (m.Pts[t[0]].X + m.Pts[t[1]].X + m.Pts[t[2]].X) / 3,
			(m.Pts[t[0]].Y + m.Pts[t[1]].Y + m.Pts[t[2]].Y) / 3
	}
	for ei, e := range edges {
		tris := adjTris[e]
		switch len(tris) {
		case 2:
			x1, y1 := centroid(tris[0])
			x2, y2 := centroid(tris[1])
			// Rotate the centroid-to-centroid segment 90 degrees.
			nx, ny := y2-y1, x1-x2
			// Orient from a toward b.
			a, b := m.Pts[e[0]], m.Pts[e[1]]
			if nx*(b.X-a.X)+ny*(b.Y-a.Y) < 0 {
				nx, ny = -nx, -ny
			}
			g.EdgeNormal[ei] = [2]float64{nx, ny}
		case 1:
			// Boundary edge: both endpoints are boundary vertices; the
			// dual face from centroid to edge midpoint still
			// contributes, but since boundary vertices are Dirichlet we
			// only need a consistent normal for wave-speed estimates.
			x1, y1 := centroid(tris[0])
			a, b := m.Pts[e[0]], m.Pts[e[1]]
			mx, my := (a.X+b.X)/2, (a.Y+b.Y)/2
			nx, ny := my-y1, x1-mx
			if nx*(b.X-a.X)+ny*(b.Y-a.Y) < 0 {
				nx, ny = -nx, -ny
			}
			g.EdgeNormal[ei] = [2]float64{nx, ny}
			g.Boundary[e[0]] = true
			g.Boundary[e[1]] = true
		default:
			return nil, fmt.Errorf("euler: edge %v has %d adjacent triangles", e, len(tris))
		}
	}
	return g, nil
}

func triArea(a, b, c mesh.Point) float64 {
	return math.Abs((b.X-a.X)*(c.Y-a.Y)-(c.X-a.X)*(b.Y-a.Y)) / 2
}

// Residual accumulates the flux residual for every vertex: res[v] is the
// net outflow of conserved quantities from v's dual cell. Interior
// uniform flow yields zero residual at interior vertices.
func (g *Geometry) Residual(u []State, res []State) {
	for i := range res {
		res[i] = State{}
	}
	for ei, e := range g.Mesh.Edges() {
		a, b := e[0], e[1]
		n := g.EdgeNormal[ei]
		f := Rusanov(u[a], u[b], n[0], n[1])
		for k := 0; k < 4; k++ {
			res[a][k] += f[k]
			res[b][k] -= f[k]
		}
	}
}

// MaxStableDt returns a CFL-limited time step for the current state.
func (g *Geometry) MaxStableDt(u []State, cfl float64) float64 {
	dt := math.Inf(1)
	adj := g.Mesh.Adjacency()
	for v := range u {
		rho, uu, vv, p := u[v].Primitives()
		if rho <= 0 || p <= 0 {
			return 0
		}
		speed := math.Hypot(uu, vv) + math.Sqrt(Gamma*p/rho)
		h := math.Sqrt(g.DualArea[v])
		if len(adj[v]) == 0 || speed == 0 {
			continue
		}
		if cand := cfl * h / speed; cand < dt {
			dt = cand
		}
	}
	if math.IsInf(dt, 1) {
		return 0
	}
	return dt
}

// StepSequential advances the full mesh by one explicit Euler step of
// size dt, holding boundary vertices fixed. It is the single-machine
// oracle for the distributed solver.
func (g *Geometry) StepSequential(u []State, dt float64, res []State) {
	g.Residual(u, res)
	for v := range u {
		if g.Boundary[v] {
			continue
		}
		for k := 0; k < 4; k++ {
			u[v][k] -= dt / g.DualArea[v] * res[v][k]
		}
	}
}

// TotalConserved sums the conserved quantities weighted by dual areas.
func (g *Geometry) TotalConserved(u []State) State {
	var tot State
	for v := range u {
		for k := 0; k < 4; k++ {
			tot[k] += g.DualArea[v] * u[v][k]
		}
	}
	return tot
}
