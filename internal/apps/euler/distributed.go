package euler

import (
	"math"

	"repro/internal/cmmd"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Options configures a distributed Euler run.
type Options struct {
	Alg   string  // irregular scheduler: LS, PS, BS, GS
	Steps int     // explicit time steps
	CFL   float64 // CFL number (default 0.5)
	// TraceSink, when non-nil, receives every data-network message
	// event of the run (cmmd.Machine.SetTraceSink) — the recording
	// entry point of internal/trace. It never changes simulated timing.
	TraceSink func(cmmd.MsgEvent)
}

// Result reports a distributed run.
type Result struct {
	U        []State
	Elapsed  sim.Time
	Dts      []float64      // time step sizes taken
	Pattern  pattern.Matrix // halo pattern (32 bytes per shared vertex)
	Schedule *sched.Schedule
}

// BytesPerVertex is the halo payload per shared vertex: four conserved
// variables of 8 bytes.
const BytesPerVertex = 32

// Run advances the Euler solution opts.Steps explicit steps on nprocs
// simulated CM-5 nodes. The mesh is partitioned by recursive coordinate
// bisection; each step performs one halo exchange of the conserved
// variables through the chosen irregular schedule (built once, reused
// every iteration) and one control-network reduction for the global CFL
// time step.
func Run(nprocs int, m *mesh.Mesh, initFn func(mesh.Point) State, opts Options, cfg network.Config) (*Result, error) {
	if opts.Steps <= 0 {
		opts.Steps = 1
	}
	if opts.CFL <= 0 {
		opts.CFL = 0.5
	}
	geom, err := NewGeometry(m)
	if err != nil {
		return nil, err
	}
	owner := mesh.PartitionRCB(m, nprocs)
	pt, err := mesh.NewPartition(m, owner, nprocs)
	if err != nil {
		return nil, err
	}
	halo := pt.HaloPattern(BytesPerVertex)
	schedule, err := sched.Irregular(opts.Alg, halo)
	if err != nil {
		return nil, err
	}
	mach, err := cmmd.NewMachine(nprocs, cfg)
	if err != nil {
		return nil, err
	}
	if opts.TraceSink != nil {
		mach.SetTraceSink(opts.TraceSink)
	}

	nv := m.NumVertices()
	edges := m.Edges()
	// Per-processor edge lists: edges touching an owned vertex, in
	// global order (so per-vertex accumulation order matches the
	// sequential oracle bit for bit).
	myEdges := make([][]int, nprocs)
	for ei, e := range edges {
		oa, ob := owner[e[0]], owner[e[1]]
		myEdges[oa] = append(myEdges[oa], ei)
		if ob != oa {
			myEdges[ob] = append(myEdges[ob], ei)
		}
	}

	final := make([]State, nv)
	dts := make([]float64, opts.Steps)

	program := func(node *cmmd.Node) {
		me := node.ID()
		mine := pt.Owned[me]
		owned := make([]bool, nv)
		for _, v := range mine {
			owned[v] = true
		}
		u := make([]State, nv)
		for v := range u {
			u[v] = initFn(m.Pts[v]) // everyone can evaluate the initial condition
		}
		res := make([]State, nv)

		exchange := func() {
			hooks := sched.DataHooks{
				OnSend: func(step, src, dst int) []byte {
					verts := pt.SendVertices(me, dst)
					buf := make([]byte, BytesPerVertex*len(verts))
					for i, v := range verts {
						for k := 0; k < 4; k++ {
							putF64(buf[BytesPerVertex*i+8*k:], u[v][k])
						}
					}
					node.MemCopy(len(buf))
					return buf
				},
				OnRecv: func(step int, msg cmmd.Message) {
					verts := pt.SendVertices(msg.Src, me)
					for i, v := range verts {
						for k := 0; k < 4; k++ {
							u[v][k] = getF64(msg.Data[BytesPerVertex*i+8*k:])
						}
					}
					node.MemCopy(len(msg.Data))
				},
			}
			sched.ExecuteNode(node, schedule, hooks)
		}

		for step := 0; step < opts.Steps; step++ {
			exchange()
			// Residuals for owned vertices only.
			for _, v := range mine {
				res[v] = State{}
			}
			for _, ei := range myEdges[me] {
				e := edges[ei]
				a, b := e[0], e[1]
				n := geom.EdgeNormal[ei]
				f := Rusanov(u[a], u[b], n[0], n[1])
				if owned[a] {
					for k := 0; k < 4; k++ {
						res[a][k] += f[k]
					}
				}
				if owned[b] {
					for k := 0; k < 4; k++ {
						res[b][k] -= f[k]
					}
				}
			}
			node.ComputeFlops(90 * float64(len(myEdges[me])))

			// Global CFL step via the control network.
			localDt := math.Inf(1)
			for _, v := range mine {
				rho, uu, vv, p := u[v].Primitives()
				if rho <= 0 || p <= 0 {
					localDt = 0
					break
				}
				speed := math.Hypot(uu, vv) + math.Sqrt(Gamma*p/rho)
				if speed == 0 {
					continue
				}
				if cand := opts.CFL * math.Sqrt(geom.DualArea[v]) / speed; cand < localDt {
					localDt = cand
				}
			}
			node.ComputeFlops(12 * float64(len(mine)))
			dt := node.AllReduce(localDt, cmmd.OpMin)
			if me == 0 {
				dts[step] = dt
			}
			for _, v := range mine {
				if geom.Boundary[v] {
					continue
				}
				for k := 0; k < 4; k++ {
					u[v][k] -= dt / geom.DualArea[v] * res[v][k]
				}
			}
			node.ComputeFlops(12 * float64(len(mine)))
		}
		for _, v := range mine {
			final[v] = u[v]
		}
	}

	elapsed, err := mach.Run(program)
	if err != nil {
		return nil, err
	}
	return &Result{U: final, Elapsed: elapsed, Dts: dts, Pattern: halo, Schedule: schedule}, nil
}

// RunSequentialOracle advances the same problem on one machine with the
// identical time-step policy, for verifying the distributed solver.
func RunSequentialOracle(m *mesh.Mesh, initFn func(mesh.Point) State, steps int, cfl float64) ([]State, error) {
	geom, err := NewGeometry(m)
	if err != nil {
		return nil, err
	}
	u := make([]State, m.NumVertices())
	for v := range u {
		u[v] = initFn(m.Pts[v])
	}
	res := make([]State, len(u))
	for s := 0; s < steps; s++ {
		dt := geom.MaxStableDt(u, cfl)
		geom.StepSequential(u, dt, res)
	}
	return u, nil
}

func putF64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
