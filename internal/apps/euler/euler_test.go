package euler

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/network"
)

func uniformInit(p mesh.Point) State {
	return Freestream(1.0, 0.8, 0.3, 1.0)
}

// pulseInit is a smooth density bump on a uniform flow.
func pulseInit(center mesh.Point) func(mesh.Point) State {
	return func(p mesh.Point) State {
		dx, dy := p.X-center.X, p.Y-center.Y
		rho := 1.0 + 0.1*math.Exp(-(dx*dx+dy*dy)/4)
		return Freestream(rho, 0.5, 0.0, 1.0)
	}
}

func TestFreestreamPrimitivesRoundTrip(t *testing.T) {
	s := Freestream(1.2, 0.5, -0.3, 0.9)
	rho, u, v, p := s.Primitives()
	if math.Abs(rho-1.2) > 1e-14 || math.Abs(u-0.5) > 1e-14 ||
		math.Abs(v+0.3) > 1e-14 || math.Abs(p-0.9) > 1e-14 {
		t.Fatalf("round trip: %g %g %g %g", rho, u, v, p)
	}
	if s.SoundSpeed() <= 0 {
		t.Fatal("sound speed must be positive")
	}
}

func TestRusanovConsistency(t *testing.T) {
	// F(u,u,n) must equal the exact flux: no artificial dissipation for
	// equal states.
	s := Freestream(1.1, 0.4, 0.2, 1.3)
	f := Rusanov(s, s, 0.7, -0.2)
	want := flux(s, 0.7, -0.2)
	for k := 0; k < 4; k++ {
		if math.Abs(f[k]-want[k]) > 1e-14 {
			t.Fatalf("component %d: %g vs %g", k, f[k], want[k])
		}
	}
}

func TestRusanovAntisymmetry(t *testing.T) {
	// Swapping the states and flipping the normal negates the flux:
	// the conservation property the residual loop relies on.
	a := Freestream(1.0, 0.6, 0.1, 1.0)
	b := Freestream(0.9, 0.2, -0.4, 1.2)
	f1 := Rusanov(a, b, 0.3, 0.5)
	f2 := Rusanov(b, a, -0.3, -0.5)
	for k := 0; k < 4; k++ {
		if math.Abs(f1[k]+f2[k]) > 1e-13 {
			t.Fatalf("component %d: %g vs %g", k, f1[k], f2[k])
		}
	}
}

func TestGeometryDualAreasCoverMesh(t *testing.T) {
	m := mesh.Generate(300, 6)
	g, err := NewGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	var dualTotal, triTotal float64
	for _, a := range g.DualArea {
		if a <= 0 {
			t.Fatal("non-positive dual area")
		}
		dualTotal += a
	}
	for _, tri := range m.Tris {
		triTotal += triArea(m.Pts[tri[0]], m.Pts[tri[1]], m.Pts[tri[2]])
	}
	if math.Abs(dualTotal-triTotal) > 1e-9*triTotal {
		t.Fatalf("dual areas %g != mesh area %g", dualTotal, triTotal)
	}
}

func TestGeometryBoundaryDetection(t *testing.T) {
	m := mesh.Generate(100, 2)
	g, err := NewGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	nb := 0
	for _, b := range g.Boundary {
		if b {
			nb++
		}
	}
	// A planar grid-ish mesh has a perimeter's worth of boundary
	// vertices: more than 4, fewer than all.
	if nb <= 4 || nb >= m.NumVertices() {
		t.Fatalf("boundary count %d of %d", nb, m.NumVertices())
	}
}

// TestFreestreamPreservation is the classic FV sanity check: a uniform
// flow must produce zero residual at every interior vertex.
func TestFreestreamPreservation(t *testing.T) {
	m := mesh.Generate(400, 9)
	g, err := NewGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]State, m.NumVertices())
	for v := range u {
		u[v] = uniformInit(m.Pts[v])
	}
	res := make([]State, len(u))
	g.Residual(u, res)
	for v := range res {
		if g.Boundary[v] {
			continue
		}
		for k := 0; k < 4; k++ {
			if math.Abs(res[v][k]) > 1e-11 {
				t.Fatalf("interior vertex %d residual[%d] = %g", v, k, res[v][k])
			}
		}
	}
}

func TestFreestreamStaysUniformOverSteps(t *testing.T) {
	m := mesh.Generate(200, 3)
	u, err := RunSequentialOracle(m, uniformInit, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := uniformInit(mesh.Point{})
	for v := range u {
		for k := 0; k < 4; k++ {
			if math.Abs(u[v][k]-want[k]) > 1e-10 {
				t.Fatalf("vertex %d drifted: %v", v, u[v])
			}
		}
	}
}

func TestPulseStaysPhysical(t *testing.T) {
	m := mesh.Generate(300, 5)
	g, _ := NewGeometry(m)
	var center mesh.Point
	for _, p := range m.Pts {
		center.X += p.X / float64(len(m.Pts))
		center.Y += p.Y / float64(len(m.Pts))
	}
	u := make([]State, m.NumVertices())
	init := pulseInit(center)
	for v := range u {
		u[v] = init(m.Pts[v])
	}
	res := make([]State, len(u))
	for s := 0; s < 30; s++ {
		dt := g.MaxStableDt(u, 0.4)
		if dt <= 0 {
			t.Fatalf("unstable at step %d", s)
		}
		g.StepSequential(u, dt, res)
	}
	for v := range u {
		rho, _, _, p := u[v].Primitives()
		if rho <= 0 || p <= 0 || math.IsNaN(rho) || math.IsNaN(p) {
			t.Fatalf("unphysical state at %d: rho=%g p=%g", v, rho, p)
		}
	}
}

func TestMaxStableDtPositive(t *testing.T) {
	m := mesh.Generate(100, 1)
	g, _ := NewGeometry(m)
	u := make([]State, m.NumVertices())
	for v := range u {
		u[v] = uniformInit(m.Pts[v])
	}
	if dt := g.MaxStableDt(u, 0.5); dt <= 0 {
		t.Fatalf("dt = %g", dt)
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	m := mesh.Generate(300, 7)
	var center mesh.Point
	for _, p := range m.Pts {
		center.X += p.X / float64(len(m.Pts))
		center.Y += p.Y / float64(len(m.Pts))
	}
	init := pulseInit(center)
	want, err := RunSequentialOracle(m, init, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(8, m, init, Options{Alg: "GS", Steps: 10, CFL: 0.5}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		for k := 0; k < 4; k++ {
			if math.Abs(res.U[v][k]-want[v][k]) > 1e-12 {
				t.Fatalf("vertex %d component %d: distributed %g vs sequential %g",
					v, k, res.U[v][k], want[v][k])
			}
		}
	}
	if len(res.Dts) != 10 || res.Dts[0] <= 0 {
		t.Fatalf("Dts = %v", res.Dts)
	}
}

func TestAllSchedulersAgree(t *testing.T) {
	m := mesh.Generate(200, 11)
	init := pulseInit(mesh.Point{X: 7, Y: 7})
	var ref []State
	for _, alg := range []string{"LS", "PS", "BS", "GS"} {
		res, err := Run(8, m, init, Options{Alg: alg, Steps: 5}, network.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no simulated time", alg)
		}
		if ref == nil {
			ref = res.U
			continue
		}
		for v := range ref {
			for k := 0; k < 4; k++ {
				if ref[v][k] != res.U[v][k] {
					t.Fatalf("%s: differs at vertex %d", alg, v)
				}
			}
		}
	}
}

func TestHaloPatternIs32BytesPerVertex(t *testing.T) {
	m := mesh.Generate(545, 12)
	res, err := Run(32, m, uniformInit, Options{Alg: "GS", Steps: 1}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			if res.Pattern[i][j]%BytesPerVertex != 0 {
				t.Fatalf("pattern[%d][%d] = %d not a multiple of %d", i, j, res.Pattern[i][j], BytesPerVertex)
			}
		}
	}
	// The paper's Euler 545 pattern: a few dozen percent density, tens
	// of bytes per message on 32 processors.
	d := res.Pattern.Density()
	if d < 0.05 || d > 0.7 {
		t.Fatalf("density %.2f out of plausible range", d)
	}
}

func TestRunValidation(t *testing.T) {
	m := mesh.Generate(100, 1)
	if _, err := Run(8, m, uniformInit, Options{Alg: "nope", Steps: 1}, network.DefaultConfig()); err == nil {
		t.Fatal("bad scheduler should fail")
	}
}

func TestConservationWithFixedBoundary(t *testing.T) {
	// With Dirichlet boundaries the interior update conserves the total
	// integral up to the flux through the layer next to the boundary;
	// over a short horizon with a localized interior pulse, drift should
	// be tiny.
	m := mesh.Generate(400, 13)
	g, _ := NewGeometry(m)
	var center mesh.Point
	for _, p := range m.Pts {
		center.X += p.X / float64(len(m.Pts))
		center.Y += p.Y / float64(len(m.Pts))
	}
	init := pulseInit(center)
	u := make([]State, m.NumVertices())
	for v := range u {
		u[v] = init(m.Pts[v])
	}
	before := g.TotalConserved(u)
	res := make([]State, len(u))
	for s := 0; s < 5; s++ {
		g.StepSequential(u, g.MaxStableDt(u, 0.3), res)
	}
	after := g.TotalConserved(u)
	for k := 0; k < 4; k++ {
		// Normalize by the total-mass scale: momentum components start
		// near zero, so a pure relative test is ill-conditioned.
		rel := math.Abs(after[k]-before[k]) / math.Max(math.Abs(before[k]), before[0])
		if rel > 1e-3 {
			t.Fatalf("component %d drifted by %g", k, rel)
		}
	}
}
