// Package fft implements the paper's 2-D FFT application study
// (Section 3.5, Table 5): a row-distributed two-dimensional FFT whose
// transpose step is a complete exchange executed by any of the paper's
// four scheduling algorithms.
//
// The package contains a from-scratch radix-2 complex FFT, a naive DFT
// used as a test oracle, and the distributed driver. Array elements
// travel as single-precision complex numbers (8 bytes), matching the
// per-pair message sizes implied by the paper's table.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT performs an in-place radix-2 decimation-in-time FFT.
// len(x) must be a power of two.
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT performs the in-place inverse FFT (including the 1/N scaling).
func IFFT(x []complex128) {
	transform(x, true)
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		theta := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(theta), math.Sin(theta))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// DFTNaive computes the discrete Fourier transform directly in O(n^2);
// the test oracle for FFT.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(angle), math.Sin(angle))
		}
		out[k] = sum
	}
	return out
}

// FFT2D performs an in-place 2-D FFT on a rows x cols array (row FFTs
// then column FFTs). Both dimensions must be powers of two.
func FFT2D(a [][]complex128) {
	rows := len(a)
	if rows == 0 {
		return
	}
	cols := len(a[0])
	for _, row := range a {
		FFT(row)
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = a[r][c]
		}
		FFT(col)
		for r := 0; r < rows; r++ {
			a[r][c] = col[r]
		}
	}
}

// FFTFlops estimates the floating-point operations of a length-n radix-2
// FFT: the standard 5 n lg n count.
func FFTFlops(n int) float64 {
	if n < 2 {
		return 0
	}
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return 5 * float64(n) * float64(lg)
}

// encodeComplex64 serializes values as single-precision complex pairs —
// 8 bytes per element, the element size of the paper's arrays.
func encodeComplex64(vals []complex128) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putFloat32(buf[8*i:], float32(real(v)))
		putFloat32(buf[8*i+4:], float32(imag(v)))
	}
	return buf
}

func decodeComplex64(buf []byte) []complex128 {
	n := len(buf) / 8
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := getFloat32(buf[8*i:])
		im := getFloat32(buf[8*i+4:])
		out[i] = complex(float64(re), float64(im))
	}
	return out
}

func putFloat32(b []byte, f float32) {
	u := math.Float32bits(f)
	b[0] = byte(u)
	b[1] = byte(u >> 8)
	b[2] = byte(u >> 16)
	b[3] = byte(u >> 24)
}

func getFloat32(b []byte) float32 {
	u := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(u)
}
