package fft

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Result holds the outcome of a distributed 2-D FFT run.
type Result struct {
	// Out is the transform in transposed layout: Out[c][r] equals
	// FFT2D(input)[r][c]. The paper's implementation also stops after
	// the second set of row FFTs without transposing back.
	Out [][]complex128
	// Elapsed is the simulated wall time of the slowest node.
	Elapsed sim.Time
	// BytesPerPair is the transpose block size each processor pair
	// exchanged.
	BytesPerPair int
}

// Run2D executes the paper's distributed 2-D FFT on nprocs simulated
// nodes using the named complete-exchange algorithm (LEX, PEX, REX, BEX)
// for the transpose. The input array is rows x cols, both powers of two
// and divisible by nprocs.
func Run2D(nprocs int, input [][]complex128, alg string, cfg network.Config) (*Result, error) {
	return Run2DWithSink(nprocs, input, alg, cfg, nil)
}

// Run2DWithSink is Run2D with a message-trace sink attached to the
// machine (cmmd.Machine.SetTraceSink) — the recording entry point of
// internal/trace. The sink never changes simulated timing; nil behaves
// exactly like Run2D.
func Run2DWithSink(nprocs int, input [][]complex128, alg string, cfg network.Config, sink func(cmmd.MsgEvent)) (*Result, error) {
	rows := len(input)
	if rows == 0 {
		return nil, fmt.Errorf("fft: empty input")
	}
	cols := len(input[0])
	if rows%nprocs != 0 || cols%nprocs != 0 {
		return nil, fmt.Errorf("fft: %dx%d array not divisible by %d processors", rows, cols, nprocs)
	}
	if rows&(rows-1) != 0 || cols&(cols-1) != 0 {
		return nil, fmt.Errorf("fft: dimensions must be powers of two")
	}
	switch alg {
	case "LEX", "PEX", "REX", "BEX":
	default:
		return nil, fmt.Errorf("fft: unknown exchange algorithm %q", alg)
	}

	m, err := cmmd.NewMachine(nprocs, cfg)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		m.SetTraceSink(sink)
	}
	rpb := rows / nprocs // rows per block
	cpb := cols / nprocs // cols per block
	blockBytes := rpb * cpb * 8
	out := make([][]complex128, cols)

	program := func(n *cmmd.Node) {
		me := n.ID()
		// Local copy of this node's rows.
		local := make([][]complex128, rpb)
		for r := 0; r < rpb; r++ {
			local[r] = append([]complex128(nil), input[me*rpb+r]...)
		}
		// Phase 1: row FFTs.
		for r := 0; r < rpb; r++ {
			FFT(local[r])
			n.ComputeFlops(FFTFlops(cols))
		}
		// Phase 2: transpose via complete exchange. After this, node me
		// owns columns [me*cpb, (me+1)*cpb), each of length rows.
		newRows := make([][]complex128, cpb)
		for c := range newRows {
			newRows[c] = make([]complex128, rows)
		}
		packBlock := func(dst int) []byte {
			vals := make([]complex128, 0, rpb*cpb)
			for c := 0; c < cpb; c++ {
				for r := 0; r < rpb; r++ {
					vals = append(vals, local[r][dst*cpb+c])
				}
			}
			return encodeComplex64(vals)
		}
		placeBlock := func(src int, payload []byte) {
			vals := decodeComplex64(payload)
			i := 0
			for c := 0; c < cpb; c++ {
				for r := 0; r < rpb; r++ {
					newRows[c][src*rpb+r] = vals[i]
					i++
				}
			}
		}
		// The local block never touches the network.
		n.MemCopy(blockBytes)
		placeBlock(me, packBlock(me))

		if alg == "REX" {
			rexAllToAll(n, blockBytes, packBlock, placeBlock)
		} else {
			var s *sched.Schedule
			switch alg {
			case "LEX":
				s = sched.LEX(nprocs, blockBytes)
			case "PEX":
				s = sched.PEX(nprocs, blockBytes)
			case "BEX":
				s = sched.BEX(nprocs, blockBytes)
			}
			hooks := sched.DataHooks{
				OnSend: func(step, src, dst int) []byte {
					n.MemCopy(blockBytes) // pack
					return packBlock(dst)
				},
				OnRecv: func(step int, msg cmmd.Message) {
					n.MemCopy(len(msg.Data)) // unpack
					placeBlock(msg.Src, msg.Data)
				},
			}
			sched.ExecuteNode(n, s, hooks)
		}

		// Phase 3: row FFTs on the transposed data.
		for c := 0; c < cpb; c++ {
			FFT(newRows[c])
			n.ComputeFlops(FFTFlops(rows))
		}
		for c := 0; c < cpb; c++ {
			out[me*cpb+c] = newRows[c]
		}
	}

	elapsed, err := m.Run(program)
	if err != nil {
		return nil, err
	}
	return &Result{Out: out, Elapsed: elapsed, BytesPerPair: blockBytes}, nil
}

// rexAllToAll performs the store-and-forward recursive-exchange all-to-all
// of Figure 3 with real data: lg N steps; at step k a node exchanges with
// its partner every block (original or forwarded) whose final destination
// lies on the partner's side of the current bisection, as one combined
// message of about blockBytes*N/2 plus routing headers.
func rexAllToAll(n *cmmd.Node, blockBytes int, pack func(dst int) []byte, place func(src int, payload []byte)) {
	nprocs := n.N()
	me := n.ID()
	// Start with my blocks for everyone else.
	var items []rexItem
	for dst := 0; dst < nprocs; dst++ {
		if dst != me {
			n.MemCopy(blockBytes) // pack
			items = append(items, rexItem{origin: me, dest: dst, payload: pack(dst)})
		}
	}
	for k := 0; nprocs>>uint(k) >= 2; k++ {
		peer := sched.REXPartner(me, k, nprocs)
		bit := uint(sched.LgN(nprocs) - 1 - k)
		// Split items: those whose destination is on the peer's side of
		// bit move across; the rest stay.
		var keep, send []rexItem
		for _, it := range items {
			if (it.dest>>bit)&1 != (me>>bit)&1 {
				send = append(send, it)
			} else {
				keep = append(keep, it)
			}
		}
		msg := encodeItems(send)
		var incoming []byte
		if me < peer {
			n.MemCopy(len(msg)) // pack combined message
			n.Send(peer, k, msg)
			incoming = n.Recv(peer, k).Data
			n.MemCopy(len(incoming)) // unpack
		} else {
			incoming = n.Recv(peer, k).Data
			n.MemCopy(len(incoming))
			n.MemCopy(len(msg))
			n.Send(peer, k, msg)
		}
		items = append(keep, decodeItems(incoming)...)
	}
	for _, it := range items {
		if it.dest != me {
			panic(fmt.Sprintf("fft: REX left block %d->%d at node %d", it.origin, it.dest, me))
		}
		place(it.origin, it.payload)
	}
}

// rexItem is one routed block inside a combined REX message.
type rexItem struct {
	origin, dest int
	payload      []byte
}

func encodeItems(items []rexItem) []byte {
	size := 0
	for _, it := range items {
		size += 12 + len(it.payload)
	}
	buf := make([]byte, 0, size)
	var hdr [12]byte
	for _, it := range items {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(it.origin))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(it.dest))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(it.payload)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, it.payload...)
	}
	return buf
}

func decodeItems(buf []byte) []rexItem {
	var items []rexItem
	for off := 0; off < len(buf); {
		origin := int(binary.LittleEndian.Uint32(buf[off:]))
		dest := int(binary.LittleEndian.Uint32(buf[off+4:]))
		plen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		off += 12
		items = append(items, rexItem{origin, dest, append([]byte(nil), buf[off:off+plen]...)})
		off += plen
	}
	return items
}
