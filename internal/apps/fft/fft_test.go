package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
)

func randSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	max := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randSignal(n, int64(n))
		want := DFTNaive(x)
		FFT(x)
		if d := maxAbsDiff(x, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: FFT differs from DFT by %g", n, d)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 3 should panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestIFFTInvertsFFT(t *testing.T) {
	x := randSignal(128, 5)
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	if d := maxAbsDiff(x, orig); d > 1e-10 {
		t.Fatalf("round trip error %g", d)
	}
}

func TestFFTParseval(t *testing.T) {
	x := randSignal(256, 9)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	FFT(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqEnergy/float64(len(x))-timeEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", freqEnergy/256, timeEnergy)
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 64)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFT2DAgainstSeparableDFT(t *testing.T) {
	const n = 8
	a := make([][]complex128, n)
	for r := range a {
		a[r] = randSignal(n, int64(r+100))
	}
	// Reference: row DFTs then column DFTs.
	ref := make([][]complex128, n)
	for r := range a {
		ref[r] = DFTNaive(a[r])
	}
	for c := 0; c < n; c++ {
		col := make([]complex128, n)
		for r := 0; r < n; r++ {
			col[r] = ref[r][c]
		}
		col = DFTNaive(col)
		for r := 0; r < n; r++ {
			ref[r][c] = col[r]
		}
	}
	FFT2D(a)
	for r := 0; r < n; r++ {
		if d := maxAbsDiff(a[r], ref[r]); d > 1e-9 {
			t.Fatalf("row %d differs by %g", r, d)
		}
	}
}

func TestFFTFlops(t *testing.T) {
	if FFTFlops(1) != 0 {
		t.Error("FFTFlops(1)")
	}
	if FFTFlops(8) != 5*8*3 {
		t.Errorf("FFTFlops(8) = %g", FFTFlops(8))
	}
}

func TestEncodeDecodeComplex64RoundTrip(t *testing.T) {
	vals := randSignal(33, 3)
	got := decodeComplex64(encodeComplex64(vals))
	for i := range vals {
		if cmplx.Abs(got[i]-vals[i]) > 1e-5 {
			t.Fatalf("round trip lost precision at %d: %v vs %v", i, got[i], vals[i])
		}
	}
}

func distInput(rows, cols int, seed int64) [][]complex128 {
	a := make([][]complex128, rows)
	for r := range a {
		a[r] = randSignal(cols, seed+int64(r))
	}
	return a
}

func checkDistributedResult(t *testing.T, input [][]complex128, res *Result) {
	t.Helper()
	rows, cols := len(input), len(input[0])
	ref := make([][]complex128, rows)
	for r := range input {
		ref[r] = append([]complex128(nil), input[r]...)
	}
	FFT2D(ref)
	// res.Out is transposed: Out[c][r] == ref[r][c]. The wire format is
	// float32, so compare with a tolerance scaled to the data magnitude.
	maxMag := 0.0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if m := cmplx.Abs(ref[r][c]); m > maxMag {
				maxMag = m
			}
		}
	}
	tol := 1e-5 * maxMag * math.Sqrt(float64(rows*cols))
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if d := cmplx.Abs(res.Out[c][r] - ref[r][c]); d > tol {
				t.Fatalf("[%d][%d]: distributed %v vs sequential %v (diff %g, tol %g)",
					r, c, res.Out[c][r], ref[r][c], d, tol)
			}
		}
	}
}

func TestDistributedFFTAllAlgorithmsCorrect(t *testing.T) {
	input := distInput(32, 32, 77)
	for _, alg := range []string{"LEX", "PEX", "REX", "BEX"} {
		res, err := Run2D(8, input, alg, network.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no simulated time", alg)
		}
		checkDistributedResult(t, input, res)
	}
}

func TestDistributedFFTRectangular(t *testing.T) {
	input := distInput(16, 64, 31)
	res, err := Run2D(4, input, "PEX", network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkDistributedResult(t, input, res)
	if res.BytesPerPair != (16/4)*(64/4)*8 {
		t.Fatalf("BytesPerPair = %d", res.BytesPerPair)
	}
}

func TestDistributedFFTValidation(t *testing.T) {
	input := distInput(16, 16, 1)
	if _, err := Run2D(8, distInput(12, 16, 1), "PEX", network.DefaultConfig()); err == nil {
		t.Fatal("non-divisible rows should fail")
	}
	if _, err := Run2D(8, input, "ZZZ", network.DefaultConfig()); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := Run2D(8, nil, "PEX", network.DefaultConfig()); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestDistributedFFTTimingOrdering(t *testing.T) {
	// LEX should be the slowest transpose on 8 nodes at this size
	// (synchronous funnel), mirroring Table 5's 32-processor column.
	input := distInput(64, 64, 13)
	times := map[string]float64{}
	for _, alg := range []string{"LEX", "PEX", "BEX"} {
		res, err := Run2D(8, input, alg, network.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		times[alg] = res.Elapsed.Seconds()
	}
	if times["LEX"] <= times["PEX"] || times["LEX"] <= times["BEX"] {
		t.Fatalf("LEX (%g) should be slowest: PEX %g BEX %g", times["LEX"], times["PEX"], times["BEX"])
	}
}

// Property: FFT is linear: FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestQuickFFTLinearity(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		a := complex(float64(aRaw%7)-3, float64(aRaw%5)-2)
		x := randSignal(64, seed)
		y := randSignal(64, seed+1)
		combo := make([]complex128, 64)
		for i := range combo {
			combo[i] = a*x[i] + y[i]
		}
		FFT(combo)
		FFT(x)
		FFT(y)
		for i := range combo {
			if cmplx.Abs(combo[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: time shift corresponds to a frequency-domain phase ramp.
func TestQuickFFTShiftTheorem(t *testing.T) {
	f := func(seed int64, shiftRaw uint8) bool {
		n := 32
		s := int(shiftRaw) % n
		x := randSignal(n, seed)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+s)%n]
		}
		FFT(x)
		FFT(shifted)
		for k := 0; k < n; k++ {
			phase := cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(s)/float64(n)))
			if cmplx.Abs(shifted[k]-x[k]*phase) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
