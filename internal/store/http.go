package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"sort"
	"strings"
	"time"
)

// HTTPBackend is the remote store client: a Backend that speaks to the
// /v1/store API a cmserve daemon mounts over its disk store. Many
// worker processes — or machines — pointing their -store flag at one
// daemon URL share a single result store and claim space, which is
// what turns a sweep into a distributed computation: the records, the
// leases, and therefore the work partition all live on the server.
//
// Wire protocol (one route per Backend method, JSON bodies):
//
//	GET  /v1/store/objects/{hash}  -> Record        (404: miss)
//	PUT  /v1/store/objects/{hash}  <- Record        (204)
//	GET  /v1/store/index           -> {len, entries: [{hash,family,cell}]}
//	POST /v1/store/claims          <- {op, hash, owner, ttl_ms} -> Claim
//	POST /v1/store/invalidate     <- {pattern}     -> {removed}
//	POST /v1/store/flush                            -> {flushed}
type HTTPBackend struct {
	base string // scheme://host[:port], no trailing slash
	c    *http.Client
	// retries/retryDelay govern transient-failure retries (see doRetry);
	// fixed by NewHTTPBackend, overridable in tests.
	retries    int
	retryDelay time.Duration
}

// NewHTTPBackend returns a Backend speaking to the /v1/store API at
// base ("http://host:port" or "https://..."). No network traffic
// happens here; Ping checks reachability.
func NewHTTPBackend(base string) (*HTTPBackend, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: bad URL %q: %w", base, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: URL %q must be http(s)://host[:port]", base)
	}
	return &HTTPBackend{
		base:       strings.TrimRight(base, "/"),
		c:          &http.Client{Timeout: 60 * time.Second},
		retries:    3,
		retryDelay: 100 * time.Millisecond,
	}, nil
}

// doRetry performs one API call, retrying transport-level failures (a
// daemon restarting, a dropped connection) with exponential backoff
// before giving up. mk builds a fresh request per attempt, because a
// request body is consumed by the attempt that fails.
//
// Blanket retries are safe here because every /v1/store call is
// idempotent: Get and index trivially; Put because records are
// content-addressed (a replayed Put writes the same bytes under the
// same hash); claim because re-claiming under the same owner is a
// refresh; release and invalidate because removing twice removes once.
// Without this, one transient network error inside a leased sweep
// would become runCellLeased's firstErr and cancel every in-flight
// worker — a fleet built to survive worker deaths would die of a
// single dropped packet.
func (b *HTTPBackend) doRetry(mk func() (*http.Request, error)) (*http.Response, error) {
	retries := b.retries
	if retries < 1 {
		retries = 1
	}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			time.Sleep(b.retryDelay << (attempt - 1))
		}
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := b.c.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// getRetry is doRetry specialized to a bare GET of url.
func (b *HTTPBackend) getRetry(url string) (*http.Response, error) {
	return b.doRetry(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// Location implements Backend.Location: the server URL.
func (b *HTTPBackend) Location() string { return b.base }

// apiError lifts a non-2xx response into an error carrying the
// server's JSON error document when it sent one.
func apiError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return fmt.Errorf("store: %s: %s (HTTP %d)", op, doc.Error, resp.StatusCode)
	}
	return fmt.Errorf("store: %s: HTTP %d", op, resp.StatusCode)
}

// Ping verifies the server is reachable and serves the store API.
func (b *HTTPBackend) Ping() error {
	resp, err := b.getRetry(b.base + "/v1/store/index")
	if err != nil {
		return fmt.Errorf("store: ping %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return apiError("ping "+b.base, resp)
	}
	return nil
}

// Get implements Backend.Get over GET /v1/store/objects/{hash}.
func (b *HTTPBackend) Get(hash string) (*Record, bool, error) {
	if len(hash) < 2 {
		return nil, false, fmt.Errorf("store: bad hash %q", hash)
	}
	resp, err := b.getRetry(b.base + "/v1/store/objects/" + url.PathEscape(hash))
	if err != nil {
		return nil, false, fmt.Errorf("store: get %.12s: %w", hash, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, apiError(fmt.Sprintf("get %.12s", hash), resp)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return nil, false, fmt.Errorf("store: get %.12s: decode: %w", hash, err)
	}
	if rec.Schema != SchemaVersion {
		// Same rule as the disk store: a foreign-schema record misses.
		return nil, false, nil
	}
	return &rec, true, nil
}

// Put implements Backend.Put over PUT /v1/store/objects/{hash}. The
// record is validated client-side first, so a malformed one is
// rejected with per-field errors before any bytes hit the wire.
func (b *HTTPBackend) Put(rec *Record) error {
	rec.Schema = SchemaVersion
	if rec.Hash == "" {
		h, err := HashSpec(rec.Spec)
		if err != nil {
			return err
		}
		rec.Hash = h
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", rec.Cell, err)
	}
	resp, err := b.doRetry(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPut,
			b.base+"/v1/store/objects/"+url.PathEscape(rec.Hash), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("store: put %s: %w", rec.Cell, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return apiError("put "+rec.Cell, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// indexDoc is the wire form of GET /v1/store/index.
type indexDoc struct {
	Len     int          `json:"len"`
	Entries []IndexEntry `json:"entries"`
}

func (b *HTTPBackend) index() (*indexDoc, error) {
	resp, err := b.getRetry(b.base + "/v1/store/index")
	if err != nil {
		return nil, fmt.Errorf("store: index: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError("index", resp)
	}
	var doc indexDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: index: decode: %w", err)
	}
	return &doc, nil
}

// Len implements Backend.Len; unreachable servers count as empty (the
// gauges and banners that call Len must never fail a sweep).
func (b *HTTPBackend) Len() int {
	doc, err := b.index()
	if err != nil {
		return 0
	}
	return doc.Len
}

// Index implements Backend.Index; unreachable servers report empty for
// the same reason Len reports 0.
func (b *HTTPBackend) Index() []IndexEntry {
	doc, err := b.index()
	if err != nil {
		return nil
	}
	return doc.Entries
}

// All implements Backend.All: the index enumerates, Get fetches, and
// the result sorts by (family, cell, hash) exactly like the disk
// store's.
func (b *HTTPBackend) All() ([]*Record, error) {
	doc, err := b.index()
	if err != nil {
		return nil, err
	}
	recs := make([]*Record, 0, len(doc.Entries))
	for _, e := range doc.Entries {
		rec, ok, err := b.Get(e.Hash)
		if err != nil {
			return nil, err
		}
		if ok {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, c := recs[i], recs[j]
		if a.Family != c.Family {
			return a.Family < c.Family
		}
		if a.Cell != c.Cell {
			return a.Cell < c.Cell
		}
		return a.Hash < c.Hash
	})
	return recs, nil
}

// postJSON posts a JSON document and decodes the JSON reply into out.
func (b *HTTPBackend) postJSON(path, op string, in, out any) error {
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := b.doRetry(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, b.base+path, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("store: %s: %w", op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(op, resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("store: %s: decode: %w", op, err)
	}
	return nil
}

// claimRequest is the wire form of POST /v1/store/claims.
type claimRequest struct {
	Op    string `json:"op"` // "claim" or "release"
	Hash  string `json:"hash"`
	Owner string `json:"owner"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

// Claim implements Backend.Claim over POST /v1/store/claims; the
// server's disk store arbitrates, so workers on different machines
// contend exactly like local processes sharing a directory.
func (b *HTTPBackend) Claim(hash, owner string, ttl time.Duration) (Claim, error) {
	var cl Claim
	err := b.postJSON("/v1/store/claims", fmt.Sprintf("claim %.12s", hash),
		claimRequest{Op: "claim", Hash: hash, Owner: owner, TTLMS: ttl.Milliseconds()}, &cl)
	return cl, err
}

// Release implements Backend.Release over POST /v1/store/claims.
func (b *HTTPBackend) Release(hash, owner string) error {
	return b.postJSON("/v1/store/claims", fmt.Sprintf("release %.12s", hash),
		claimRequest{Op: "release", Hash: hash, Owner: owner}, nil)
}

// invalidateRequest is the wire form of POST /v1/store/invalidate.
type invalidateRequest struct {
	Pattern string `json:"pattern"`
}

// Invalidate implements Backend.Invalidate over POST
// /v1/store/invalidate; the regexp is applied server-side.
func (b *HTTPBackend) Invalidate(re *regexp.Regexp) (int, error) {
	var doc struct {
		Removed int `json:"removed"`
	}
	if err := b.postJSON("/v1/store/invalidate", "invalidate", invalidateRequest{Pattern: re.String()}, &doc); err != nil {
		return 0, err
	}
	return doc.Removed, nil
}

// Flush implements Backend.Flush over POST /v1/store/flush, asking the
// server to rewrite its index.json.
func (b *HTTPBackend) Flush() error {
	return b.postJSON("/v1/store/flush", "flush", struct{}{}, nil)
}

// Compile-time interface checks: both backends satisfy Backend.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*HTTPBackend)(nil)
)
