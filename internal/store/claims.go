package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Disk leases. A claim on hash h is one JSON file under
// claims/<hh>/<h>.json naming its owner and expiry. The file system is
// the arbiter, with the same discipline as object writes — content is
// only ever published whole:
//
//   - acquiring an unclaimed hash hard-links a fully written temp file
//     into place (link fails with EEXIST when someone else won);
//   - refreshing an owned, still-live lease replaces the file via
//     temp + rename (an owned lease that has already expired is
//     re-acquired through the steal path instead, so a rename-over
//     never clobbers a concurrent thief's fresh claim);
//   - stealing an expired lease first renames the corpse file away
//     (exactly one stealer's rename succeeds — the source vanishes),
//     then acquires the now-unclaimed hash.
//
// So any number of worker processes sharing a directory can Claim
// concurrently and exactly one wins each hash.

// claimFile is the on-disk lease document.
type claimFile struct {
	Schema        int    `json:"schema"`
	Hash          string `json:"hash"`
	Owner         string `json:"owner"`
	ExpiresUnixNS int64  `json:"expires_unix_ns"`
}

func (s *Store) claimPath(hash string) string {
	return filepath.Join(s.dir, "claims", hash[:2], hash+".json")
}

func readClaimFile(path string) (*claimFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c claimFile
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// writeClaimTemp writes a fully formed claim file next to path and
// returns its name; the caller publishes it by link or rename.
func writeClaimTemp(path string, c claimFile) (string, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-claim-*")
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(c)
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	data = append(data, '\n')
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return tmp.Name(), nil
}

// Claim implements Backend.Claim on the disk store (see the interface
// doc for the lease semantics). The loop retries lost publish races —
// another process linking the same hash first, or winning the steal
// rename — a bounded number of times; each retry re-reads the claim
// file, so a loser settles on reporting the winner as holder.
func (s *Store) Claim(hash, owner string, ttl time.Duration) (Claim, error) {
	if err := checkHash(hash); err != nil {
		return Claim{}, err
	}
	if owner == "" {
		return Claim{}, fmt.Errorf("store: claim needs an owner")
	}
	cl, err := s.claim(hash, owner, ttl)
	if s.met != nil && err == nil {
		switch {
		case cl.Stolen:
			s.met.claimSteals.Add(1)
		case cl.Acquired:
			s.met.claims.Add(1)
		default:
			s.met.claimConflicts.Add(1)
		}
	}
	return cl, err
}

func (s *Store) claim(hash, owner string, ttl time.Duration) (Claim, error) {
	path := s.claimPath(hash)
	stolen := false
	for attempt := 0; attempt < 16; attempt++ {
		cur, err := readClaimFile(path)
		now := time.Now()
		switch {
		case err == nil && cur.Owner == owner && now.UnixNano() < cur.ExpiresUnixNS:
			// Refresh our own live lease: an atomic content swap. An
			// expired own lease deliberately does NOT take this branch —
			// by then a stealer may be retiring it concurrently, and a
			// rename-over here could clobber the thief's fresh claim; it
			// falls through to the corpse case below and re-acquires via
			// the exclusive-link path like any other stealer. (A lease
			// that expires in the instant between this read and the
			// rename can still be refreshed over a same-instant steal —
			// the cost is both owners simulating one cell, whose Puts are
			// byte-identical, never a wrong result.)
			c := claimFile{Schema: SchemaVersion, Hash: hash, Owner: owner, ExpiresUnixNS: now.Add(ttl).UnixNano()}
			tmp, werr := writeClaimTemp(path, c)
			if werr != nil {
				return Claim{}, fmt.Errorf("store: claim %s: %w", hash[:12], werr)
			}
			if rerr := os.Rename(tmp, path); rerr != nil {
				os.Remove(tmp)
				return Claim{}, fmt.Errorf("store: claim %s: %w", hash[:12], rerr)
			}
			return Claim{Acquired: true, Stolen: stolen, ExpiresUnixNS: c.ExpiresUnixNS}, nil

		case err == nil && now.UnixNano() < cur.ExpiresUnixNS:
			// A live lease held by someone else.
			return Claim{Holder: cur.Owner, ExpiresUnixNS: cur.ExpiresUnixNS}, nil

		case err == nil || (err != nil && !os.IsNotExist(err)):
			// An expired lease (anyone's, including our own), or a
			// torn/foreign claim file (possible only if something other
			// than this code wrote it): retire the corpse. Exactly one
			// concurrent stealer's rename succeeds; losers loop and
			// re-read.
			corpse := path + fmt.Sprintf(".expired-%d", os.Getpid())
			if rerr := os.Rename(path, corpse); rerr != nil {
				if os.IsNotExist(rerr) {
					continue // someone else stole or released; re-read
				}
				return Claim{}, fmt.Errorf("store: claim %s: %w", hash[:12], rerr)
			}
			os.Remove(corpse)
			stolen = true
			continue

		default: // unclaimed: publish exclusively via hard link
			c := claimFile{Schema: SchemaVersion, Hash: hash, Owner: owner, ExpiresUnixNS: now.Add(ttl).UnixNano()}
			tmp, werr := writeClaimTemp(path, c)
			if werr != nil {
				return Claim{}, fmt.Errorf("store: claim %s: %w", hash[:12], werr)
			}
			lerr := os.Link(tmp, path)
			os.Remove(tmp)
			if lerr != nil {
				if os.IsExist(lerr) {
					continue // lost the publish race; re-read the winner
				}
				return Claim{}, fmt.Errorf("store: claim %s: %w", hash[:12], lerr)
			}
			return Claim{Acquired: true, Stolen: stolen, ExpiresUnixNS: c.ExpiresUnixNS}, nil
		}
	}
	return Claim{}, fmt.Errorf("store: claim %s: gave up after 16 publish races", hash[:12])
}

// Release implements Backend.Release on the disk store: it removes
// owner's claim file. A claim that is absent or (after a steal) held
// by another owner is left alone — releasing is idempotent and never
// disturbs a thief that legitimately expired this owner's lease.
//
// There is one unavoidable read-then-remove window: if the lease
// expires between readClaimFile and os.Remove and a thief links a
// fresh claim in exactly that instant, the remove deletes the thief's
// claim. A third worker can then also claim the hash, so two workers
// simulate it — wasteful, never wrong, because both Put the same
// content-addressed record. Workers release promptly after finishing,
// long before their TTL, so in practice the lease is live here.
func (s *Store) Release(hash, owner string) error {
	if err := checkHash(hash); err != nil {
		return err
	}
	path := s.claimPath(hash)
	cur, err := readClaimFile(path)
	if err != nil || cur.Owner != owner {
		return nil
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: release %s: %w", hash[:12], err)
	}
	return nil
}
