package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHashValidationBlocksPathMetacharacters pins the traversal
// defense: the hash is the only caller-controlled value that reaches
// filepath.Join, so anything outside lowercase hex — in particular
// '/', '\', '.' — must be rejected by every hash-taking operation
// before it can name a path, and ValidHash (the network boundary's
// stricter gate) must accept exactly the 64-hex form HashSpec emits.
func TestHashValidationBlocksPathMetacharacters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	evil := []string{
		"", "a", "..", "../../../../tmp/pwn", "ab/cd", `ab\cd`,
		"ab12..", "AB12CD", "ab12cd!",
	}
	for _, h := range evil {
		if _, _, err := s.Get(h); err == nil {
			t.Errorf("Get(%q) accepted a malformed hash", h)
		}
		if _, err := s.Claim(h, "w", time.Minute); err == nil {
			t.Errorf("Claim(%q) accepted a malformed hash", h)
		}
		if err := s.Release(h, "w"); err == nil {
			t.Errorf("Release(%q) accepted a malformed hash", h)
		}
	}

	h, err := HashSpec(Spec{"family": "fig5"})
	if err != nil || !ValidHash(h) {
		t.Fatalf("HashSpec output %q (err=%v) must satisfy ValidHash", h, err)
	}
	invalid := append(evil,
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
		strings.Repeat("A", 64),
		strings.Repeat("a", 63)+"/",
	)
	for _, h := range invalid {
		if ValidHash(h) {
			t.Errorf("ValidHash(%q) = true, want false", h)
		}
	}
}

func TestHashSpecStableAcrossFieldOrder(t *testing.T) {
	// Maps built in different insertion orders, and equivalent structs
	// with reordered fields, must hash identically: the hash is a
	// function of the content, never of declaration or insertion order.
	a := Spec{"family": "fig5", "cell": "fig5/LEX/N32/256B", "seed": "12345", "n": 32}
	b := Spec{"n": 32, "seed": "12345", "cell": "fig5/LEX/N32/256B", "family": "fig5"}
	ha, err := HashSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("insertion order changed the hash: %s vs %s", ha, hb)
	}

	type cfg1 struct {
		Rate    float64 `json:"rate"`
		Packets int     `json:"packets"`
	}
	type cfg2 struct {
		Packets int     `json:"packets"`
		Rate    float64 `json:"rate"`
	}
	h1, err := HashSpec(Spec{"config": cfg1{Rate: 20e6, Packets: 20}})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashSpec(Spec{"config": cfg2{Packets: 20, Rate: 20e6}})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("struct field order changed the hash: %s vs %s", h1, h2)
	}
}

func TestHashSpecDistinguishesContent(t *testing.T) {
	base := Spec{"family": "fig5", "cell": "fig5/LEX/N32/256B", "seed": "1"}
	h0, err := HashSpec(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]Spec{
		"cell":  {"family": "fig5", "cell": "fig5/PEX/N32/256B", "seed": "1"},
		"seed":  {"family": "fig5", "cell": "fig5/LEX/N32/256B", "seed": "2"},
		"extra": {"family": "fig5", "cell": "fig5/LEX/N32/256B", "seed": "1", "version": 2},
	} {
		h, err := HashSpec(other)
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestHashSpecPreservesInt64Precision(t *testing.T) {
	// Large int64s (beyond float64's 53-bit mantissa) must survive
	// canonicalization exactly: adjacent values must hash differently.
	a := Spec{"seed": int64(1<<62 + 1)}
	b := Spec{"seed": int64(1<<62 + 2)}
	ha, err := HashSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("adjacent int64 seeds collided: canonicalization lost precision")
	}
}

func testRecord(family, cell string, val string) *Record {
	return &Record{
		Family: family,
		Cell:   cell,
		Spec:   Spec{"family": family, "cell": cell},
		Writes: []Write{{Row: 0, Col: 0, Val: val}},
		Values: map[string]float64{"ms": 1.25},
	}
}

func TestStoreHitMissRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("fig5", "fig5/LEX/N32/256B", "1.234")
	h, err := HashSpec(rec.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(h); err != nil || ok {
		t.Fatalf("empty store hit: ok=%v err=%v", ok, err)
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Hash != h {
		t.Fatalf("Put filled hash %s, want %s", rec.Hash, h)
	}
	got, ok, err := s.Get(h)
	if err != nil || !ok {
		t.Fatalf("stored record missed: ok=%v err=%v", ok, err)
	}
	if got.Cell != rec.Cell || len(got.Writes) != 1 || got.Writes[0].Val != "1.234" {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
	if got.Values["ms"] != 1.25 {
		t.Fatalf("values lost: %v", got.Values)
	}

	// Reopening rebuilds the index from the object files.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d records, want 1", s2.Len())
	}
	if _, ok, err := s2.Get(h); err != nil || !ok {
		t.Fatalf("reopened store missed: ok=%v err=%v", ok, err)
	}
}

func TestStoreInvalidate(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{
		"fig5/LEX/N32/0B", "fig5/LEX/N32/256B", "fig10/REB/N32/0B",
	} {
		if err := s.Put(testRecord("x", cell, "1")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Invalidate(regexp.MustCompile(`^fig5/`))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s.Len() != 1 {
		t.Fatalf("invalidated %d (len %d), want 2 (len 1)", n, s.Len())
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Cell != "fig10/REB/N32/0B" {
		t.Fatalf("survivor = %+v", recs)
	}
	// Idempotent: a second pass removes nothing.
	if n, err := s.Invalidate(regexp.MustCompile(`^fig5/`)); err != nil || n != 0 {
		t.Fatalf("second invalidate: n=%d err=%v", n, err)
	}
}

func TestStoreConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, cells = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*cells)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cells; i++ {
				// Every worker writes the same cell set: concurrent Puts
				// of identical hashes race benignly on rename.
				if err := s.Put(testRecord("conc", fmt.Sprintf("conc/cell%d", i), "v")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != cells {
		t.Fatalf("store has %d records, want %d", s.Len(), cells)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cells {
		t.Fatalf("All returned %d records, want %d", len(recs), cells)
	}
}

func TestStoreIndexFileSortedAndValid(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"b/2", "a/1", "c/3"} {
		if err := s.Put(testRecord(cell[:1], cell, "v")); err != nil {
			t.Fatal(err)
		}
	}
	// Put defers index maintenance to one Flush per batch.
	if _, err := os.Stat(filepath.Join(s.Dir(), "index.json")); !os.IsNotExist(err) {
		t.Fatalf("index.json written before Flush (err=%v)", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(s.Dir(), "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatalf("index.json invalid: %v", err)
	}
	if idx.Schema != SchemaVersion || len(idx.Entries) != 3 {
		t.Fatalf("index = %+v", idx)
	}
	for i, want := range []string{"a/1", "b/2", "c/3"} {
		if idx.Entries[i].Cell != want {
			t.Fatalf("index entry %d = %q, want %q (sorted)", i, idx.Entries[i].Cell, want)
		}
	}
}

func TestStoreSchemaMismatchMisses(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("x", "x/1", "v")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Rewrite the object with a foreign schema version: it must read as
	// a miss, not as a hit with unknown semantics.
	path := s.objectPath(rec.Hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["schema"] = SchemaVersion + 1
	data, err = json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(rec.Hash); err != nil || ok {
		t.Fatalf("foreign-schema record should miss: ok=%v err=%v", ok, err)
	}
}

// TestStorePayloadRoundTrip covers the serving layer's use of records:
// an opaque pre-rendered payload survives Put/Get and a reopen, and
// compacting it restores the exact original compact bytes even though
// the object file stores it indented.
func TestStorePayloadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"schema":"cmserve-result/v1","result":{"elapsed_ns":42}}` + "\n")
	rec := &Record{
		Family:  "serve",
		Cell:    "serve/abc",
		Spec:    Spec{"kind": "serve-job", "seed": "7"},
		Payload: json.RawMessage(bytes.TrimRight(payload, "\n")),
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	for _, st := range []*Store{s, reopen(t, s.Dir())} {
		got, ok, err := st.Get(rec.Hash)
		if err != nil || !ok {
			t.Fatalf("payload record missed: ok=%v err=%v", ok, err)
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, got.Payload); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
		if !bytes.Equal(buf.Bytes(), payload) {
			t.Fatalf("payload mangled:\ngot  %q\nwant %q", buf.Bytes(), payload)
		}
	}
}

func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
