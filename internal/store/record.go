package store

import (
	"fmt"
	"math"
	"strings"
)

// NewRecord assembles and validates the skeleton of one store record:
// family, cell key, and the full content-address spec, with the hash
// computed from the spec. Every producer goes through here — the
// experiment runner attaches Writes/Values, the serving layer and the
// trace library attach a Payload — so a malformed record is rejected
// with per-field errors at the write site instead of surfacing later
// as an inexplicable cache miss. Put re-validates, so records built by
// hand are held to the same rules.
func NewRecord(family, cell string, spec Spec) (*Record, error) {
	rec := &Record{Schema: SchemaVersion, Family: family, Cell: cell, Spec: spec}
	if spec != nil {
		h, err := HashSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("store: record %s: %w", cell, err)
		}
		rec.Hash = h
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Validate checks every field of a record and reports all defects at
// once, one per line. The strongest rule is hash consistency: a
// non-empty Hash must equal HashSpec(Spec), so a record whose address
// drifted from its specification — the classic source of silent
// permanent cache misses — is caught at the write site.
func (r *Record) Validate() error {
	var defects []string
	if r.Family == "" {
		defects = append(defects, "family: empty")
	}
	if r.Cell == "" {
		defects = append(defects, "cell: empty")
	}
	if r.Schema != 0 && r.Schema != SchemaVersion {
		defects = append(defects, fmt.Sprintf("schema: %d, want %d", r.Schema, SchemaVersion))
	}
	if r.Spec == nil {
		defects = append(defects, "spec: nil (the record would be unaddressable)")
	} else if h, err := HashSpec(r.Spec); err != nil {
		defects = append(defects, fmt.Sprintf("spec: not hashable: %v", err))
	} else if r.Hash != "" && r.Hash != h {
		defects = append(defects, fmt.Sprintf("hash: %.12s does not match the spec's content hash %.12s", r.Hash, h))
	}
	if r.Hash != "" && len(r.Hash) < 2 {
		defects = append(defects, fmt.Sprintf("hash: %q too short to address an object file", r.Hash))
	}
	for i, w := range r.Writes {
		if w.Row < 0 || w.Col < 0 {
			defects = append(defects, fmt.Sprintf("writes[%d]: negative slot (%d,%d)", i, w.Row, w.Col))
		}
	}
	for name, v := range r.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			defects = append(defects, fmt.Sprintf("values[%s]: %v is not storable JSON", name, v))
		}
	}
	if len(defects) == 0 {
		return nil
	}
	return fmt.Errorf("store: invalid record %q:\n  %s", r.Cell, strings.Join(defects, "\n  "))
}
