package store

import (
	"math"
	"strings"
	"testing"
)

func TestNewRecordComputesHashAndValidates(t *testing.T) {
	spec := Spec{"family": "fig5", "cell": "fig5/LEX/N32/256B", "seed": "1"}
	rec, err := NewRecord("fig5", "fig5/LEX/N32/256B", spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HashSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hash != want {
		t.Fatalf("NewRecord hash = %s, want %s", rec.Hash, want)
	}
	if rec.Schema != SchemaVersion {
		t.Fatalf("NewRecord schema = %d, want %d", rec.Schema, SchemaVersion)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("fresh record invalid: %v", err)
	}
}

func TestRecordValidateRejectsPerField(t *testing.T) {
	goodSpec := Spec{"family": "f", "cell": "f/c"}
	goodHash, err := HashSpec(goodSpec)
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		rec  *Record
		want string // substring the per-field error must carry
	}{
		"empty family": {
			&Record{Cell: "f/c", Spec: goodSpec},
			"family: empty",
		},
		"empty cell": {
			&Record{Family: "f", Spec: goodSpec},
			"cell: empty",
		},
		"nil spec": {
			&Record{Family: "f", Cell: "f/c"},
			"spec: nil",
		},
		"foreign schema": {
			&Record{Schema: SchemaVersion + 7, Family: "f", Cell: "f/c", Spec: goodSpec},
			"schema:",
		},
		"hash drift": {
			&Record{Family: "f", Cell: "f/c", Spec: goodSpec,
				Hash: "0000000000000000000000000000000000000000000000000000000000000000"},
			"does not match the spec's content hash",
		},
		"unhashable spec": {
			&Record{Family: "f", Cell: "f/c", Spec: Spec{"ch": make(chan int)}},
			"spec: not hashable",
		},
		"negative write slot": {
			&Record{Family: "f", Cell: "f/c", Spec: goodSpec, Hash: goodHash,
				Writes: []Write{{Row: -1, Col: 0, Val: "x"}}},
			"writes[0]: negative slot",
		},
		"NaN value": {
			&Record{Family: "f", Cell: "f/c", Spec: goodSpec, Hash: goodHash,
				Values: map[string]float64{"ms": math.NaN()}},
			"values[ms]:",
		},
	} {
		err := tc.rec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a malformed record", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the defect %q", name, err, tc.want)
		}
	}
}

func TestRecordValidateCollectsAllDefects(t *testing.T) {
	rec := &Record{} // empty family, empty cell, nil spec: three defects
	err := rec.Validate()
	if err == nil {
		t.Fatal("empty record validated")
	}
	for _, want := range []string{"family: empty", "cell: empty", "spec: nil"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("multi-defect error %q missing %q", err, want)
		}
	}
}

func TestPutRejectsMalformedRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A record whose explicit hash does not match its spec would be a
	// permanent silent miss; Put must refuse it at the write site.
	rec := testRecord("fig5", "fig5/LEX/N32/0B", "1")
	rec.Hash = "1111111111111111111111111111111111111111111111111111111111111111"
	if err := s.Put(rec); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("Put accepted a hash-drifted record (err=%v)", err)
	}
	if s.Len() != 0 {
		t.Fatalf("rejected record was stored anyway (len %d)", s.Len())
	}
}
