// Package store is a content-addressed, on-disk experiment-result
// store. Each record is one experiment cell's output, keyed by a stable
// hash of the cell's full specification — experiment family, cell name,
// derived axes (workload, scheduler, topology, machine size), seed,
// network configuration, and a code-version salt — so a result is
// reusable exactly when everything that could influence it is
// unchanged, and invalidated for free when any of it changes (the hash
// changes, so the old entry simply never matches again).
//
// Layout on disk:
//
//	<dir>/objects/<hh>/<hash>.json   one record, canonical JSON
//	<dir>/index.json                 sorted {hash, family, cell} listing
//
// The object files are the source of truth; index.json is a rebuilt
// convenience for humans and external tools. Writes are atomic
// (unique temp file + rename into place), so any number of concurrent
// writers — worker goroutines of one sweep or separate processes
// sharing a directory — can Put safely: two writers storing the same
// hash race to rename byte-identical content.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the record-format version; it participates in every
// hash, so bumping it invalidates all stored results at once.
const SchemaVersion = 1

// Spec is the full specification of one cell result: every field that
// influences the result must be present. HashSpec canonicalizes it
// (sorted keys, exact number literals), so insertion order and struct
// field order never matter.
type Spec map[string]any

// Write is one recorded table write of a cell: the replayable unit a
// cache hit applies instead of re-simulating.
type Write struct {
	Row int    `json:"row"`
	Col int    `json:"col"`
	Val string `json:"val"`
}

// Record is one stored cell result.
type Record struct {
	Schema int    `json:"schema"`
	Hash   string `json:"hash"`
	Family string `json:"family"`
	Cell   string `json:"cell"`
	Spec   Spec   `json:"spec"`
	// Writes are the cell's table writes, replayed verbatim on a hit so
	// the rendered output is byte-identical to a fresh simulation.
	Writes []Write `json:"writes,omitempty"`
	// Values are the cell's named scalars (times, step counts) that
	// derived columns and Finish hooks consume.
	Values map[string]float64 `json:"values,omitempty"`
	// Payload is an opaque pre-rendered result document (the serving
	// layer stores each job's canonical Result JSON here and replays it
	// verbatim on a hit). Table-cell records leave it empty.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// HashSpec returns the content address of a spec: the hex SHA-256 of
// its canonical JSON. Canonicalization round-trips the spec through
// JSON into maps with json.Number values, then re-marshals — map keys
// come out sorted and number literals exact, so the hash is stable
// under map insertion order, struct field reordering, and int64 values
// beyond float64 precision.
func HashSpec(spec Spec) (string, error) {
	data, err := canonicalJSON(spec)
	if err != nil {
		return "", fmt.Errorf("store: canonicalize spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// ValidHash reports whether hash has exactly the form HashSpec emits:
// 64 lowercase hex characters. The /v1/store HTTP handlers gate every
// client-supplied hash on it before the hash goes anywhere near a file
// path, so a remote client cannot smuggle path elements ("../", "/",
// "\") into the object or claim directories.
func ValidHash(hash string) bool {
	return len(hash) == 64 && hexOnly(hash)
}

func hexOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// checkHash rejects hashes that cannot safely name an object or claim
// file: too short to shard into <hh>/ directories, or containing
// anything outside lowercase hex — which keeps path metacharacters
// ('/', '\', '.') out of every filepath.Join in this package.
func checkHash(hash string) error {
	if len(hash) < 2 || !hexOnly(hash) {
		return fmt.Errorf("store: bad hash %q", hash)
	}
	return nil
}

func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		return nil, err
	}
	// json.Marshal sorts map[string]... keys, and json.Number
	// re-marshals as its exact literal.
	return json.Marshal(generic)
}

// Store is an open result store rooted at a directory. Get reads the
// object file directly and takes no lock at all, so any number of
// concurrent readers — the serving layer answers every cache hit this
// way — proceed without contending with writers; the index mutex is
// read-write so listings (Len, All) also run concurrently.
type Store struct {
	dir string
	met *storeMetrics // nil unless SetMetrics attached a registry

	mu    sync.RWMutex
	index map[string]IndexEntry // hash -> entry
	dirty bool                  // index.json lags the in-memory index
}

// storeMetrics are the observability handles Get/Put/Claim update.
type storeMetrics struct {
	hits, misses                        *obs.Counter
	claims, claimConflicts, claimSteals *obs.Counter
	get, put                            *obs.Histogram
}

// SetMetrics attaches observability counters and latency histograms
// (hit/miss counts, get/put wall time) backed by r; nil detaches. Call
// before the store is used concurrently.
func (s *Store) SetMetrics(r *obs.Registry) {
	if r == nil {
		s.met = nil
		return
	}
	s.met = &storeMetrics{
		hits:           r.Counter("store_get_hits_total"),
		misses:         r.Counter("store_get_misses_total"),
		claims:         r.Counter("store_claims_acquired_total"),
		claimConflicts: r.Counter("store_claims_conflict_total"),
		claimSteals:    r.Counter("store_claims_stolen_total"),
		get:            r.Histogram("store_get_seconds", obs.SecondsBuckets()),
		put:            r.Histogram("store_put_seconds", obs.SecondsBuckets()),
	}
}

// IndexEntry is one line of the store index: enough to enumerate and
// address a record without reading its object file. It is also the
// wire shape of GET /v1/store/index entries.
type IndexEntry struct {
	Hash   string `json:"hash"`
	Family string `json:"family"`
	Cell   string `json:"cell"`
}

type indexFile struct {
	Schema  int          `json:"schema"`
	Entries []IndexEntry `json:"entries"`
}

// strandedTempMaxAge is how old a temp file must be before Open sweeps
// it: a crash between temp write and rename strands the file forever,
// but a file this young may belong to a concurrent writer about to
// rename it, so the sweep leaves fresh ones alone.
const strandedTempMaxAge = 15 * time.Minute

// Open opens (creating if needed) the store at dir. The in-memory
// index is rebuilt from the object files, which are the source of
// truth; a stale or missing index.json is repaired on the next Put.
// Temp files stranded by a crash between write and rename (and claim
// files whose leases expired long ago) are swept, aged ones only, so
// concurrent writers' in-flight temps survive.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: map[string]IndexEntry{}}
	cutoff := time.Now().Add(-strandedTempMaxAge)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".tmp-") || strings.HasPrefix(base, ".index-") {
			if info, ierr := d.Info(); ierr == nil && info.ModTime().Before(cutoff) {
				os.Remove(path)
			}
			return nil
		}
		if !strings.HasSuffix(path, ".json") || !strings.HasPrefix(path, filepath.Join(dir, "objects")) {
			return nil
		}
		rec, rerr := readRecord(path)
		if rerr != nil {
			// A torn or foreign file is not fatal: it can never be a
			// hit (Get re-validates), so skip it.
			return nil
		}
		s.index[rec.Hash] = IndexEntry{Hash: rec.Hash, Family: rec.Family, Cell: rec.Cell}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	s.sweepExpiredClaims(cutoff)
	return s, nil
}

// sweepExpiredClaims removes claim files whose leases expired before
// cutoff: a lease a worker will steal the moment it wants the hash, so
// removing the long-dead ones only keeps the claims tree tidy.
func (s *Store) sweepExpiredClaims(cutoff time.Time) {
	filepath.WalkDir(filepath.Join(s.dir, "claims"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		if c, cerr := readClaimFile(path); cerr == nil && c.ExpiresUnixNS < cutoff.UnixNano() {
			os.Remove(path)
		}
		return nil
	})
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Location implements Backend.Location: the store directory.
func (s *Store) Location() string { return s.dir }

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

func readRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	if rec.Hash == "" || len(rec.Hash) < 2 {
		return nil, fmt.Errorf("store: %s: record has no hash", path)
	}
	return &rec, nil
}

// Get returns the record stored under hash, or ok=false on a miss. It
// reads the object file directly, so records written by a concurrent
// process after Open are found too.
func (s *Store) Get(hash string) (*Record, bool, error) {
	if s.met == nil {
		return s.get(hash)
	}
	t0 := time.Now()
	rec, ok, err := s.get(hash)
	s.met.get.Observe(time.Since(t0).Seconds())
	if ok {
		s.met.hits.Add(1)
	} else if err == nil {
		s.met.misses.Add(1)
	}
	return rec, ok, err
}

func (s *Store) get(hash string) (*Record, bool, error) {
	if err := checkHash(hash); err != nil {
		return nil, false, err
	}
	rec, err := readRecord(s.objectPath(hash))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if rec.Schema != SchemaVersion {
		// A record from a different schema generation never hits.
		return nil, false, nil
	}
	return rec, true, nil
}

// Put stores a record under rec.Hash (computing it from rec.Spec when
// empty). Safe for any number of concurrent callers. The object file
// lands immediately (it is the source of truth); index.json is only
// marked stale — call Flush once after a batch of Puts, rather than
// paying an O(records) index rewrite per cell.
func (s *Store) Put(rec *Record) error {
	if s.met == nil {
		return s.put(rec)
	}
	t0 := time.Now()
	err := s.put(rec)
	s.met.put.Observe(time.Since(t0).Seconds())
	return err
}

func (s *Store) put(rec *Record) error {
	rec.Schema = SchemaVersion
	if rec.Hash == "" {
		h, err := HashSpec(rec.Spec)
		if err != nil {
			return err
		}
		rec.Hash = h
	}
	// Reject malformed records at the write site with per-field errors
	// (see Record.Validate) — never let them become silent misses.
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", rec.Cell, err)
	}
	data = append(data, '\n')
	path := s.objectPath(rec.Hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", rec.Cell, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", rec.Cell, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	s.index[rec.Hash] = IndexEntry{Hash: rec.Hash, Family: rec.Family, Cell: rec.Cell}
	s.dirty = true
	s.mu.Unlock()
	return nil
}

// Flush rewrites index.json when Puts have made it stale. A missed
// Flush (crash mid-sweep) costs nothing but an index rebuild on the
// next Open: the object files are the source of truth.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	if err := s.writeIndexLocked(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// writeIndexLocked rewrites index.json from the in-memory index,
// sorted by (family, cell, hash). Callers hold s.mu.
func (s *Store) writeIndexLocked() error {
	idx := indexFile{Schema: SchemaVersion, Entries: make([]IndexEntry, 0, len(s.index))}
	for _, e := range s.index {
		idx.Entries = append(idx.Entries, e)
	}
	sort.Slice(idx.Entries, func(i, j int) bool {
		a, b := idx.Entries[i], idx.Entries[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		return a.Hash < b.Hash
	})
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(s.dir, ".index-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, "index.json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Index returns a snapshot of the index entries, sorted by
// (family, cell, hash) — the same order Flush persists. It reads no
// object files, so it is cheap enough to serve on every request.
func (s *Store) Index() []IndexEntry {
	s.mu.RLock()
	entries := make([]IndexEntry, 0, len(s.index))
	for _, e := range s.index {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		return a.Hash < b.Hash
	})
	return entries
}

// All returns every stored record, sorted by (family, cell, hash) so
// listings and diffs are deterministic.
func (s *Store) All() ([]*Record, error) {
	s.mu.RLock()
	hashes := make([]string, 0, len(s.index))
	for h := range s.index {
		hashes = append(hashes, h)
	}
	s.mu.RUnlock()
	recs := make([]*Record, 0, len(hashes))
	for _, h := range hashes {
		rec, ok, err := s.Get(h)
		if err != nil {
			return nil, err
		}
		if ok {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		return a.Hash < b.Hash
	})
	return recs, nil
}

// Invalidate deletes every record whose cell key matches re and
// returns how many were removed.
func (s *Store) Invalidate(re *regexp.Regexp) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for h, e := range s.index {
		if !re.MatchString(e.Cell) {
			continue
		}
		if err := os.Remove(s.objectPath(h)); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("store: invalidate %s: %w", e.Cell, err)
		}
		delete(s.index, h)
		removed++
	}
	if removed > 0 {
		if err := s.writeIndexLocked(); err != nil {
			return removed, err
		}
		s.dirty = false
	}
	return removed, nil
}
