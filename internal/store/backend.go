package store

import (
	"regexp"
	"strings"
	"time"
)

// Backend is the persistence interface behind every sweep: the on-disk
// content-addressed store (Store) and the HTTP client that speaks to a
// cmserve-hosted one (HTTPBackend) both satisfy it, so the experiment
// runner, the serving layer, and the trace library are indifferent to
// whether results land in a local directory or on a shared daemon.
//
// Beyond the record operations, a backend is a coordination substrate:
// Claim and Release are lease primitives over the same content-hash
// address space. A worker process claims a cell's hash before
// simulating it, so concurrent workers sharing one backend partition a
// sweep without a scheduler; leases carry a TTL, so a worker that dies
// mid-cell is stolen from once its lease expires — any worker's death
// is survivable.
type Backend interface {
	// Location describes the backend for humans: the store directory,
	// or the server URL.
	Location() string
	// Len returns the number of indexed records (best effort for remote
	// backends: 0 when the server is unreachable).
	Len() int
	// Get returns the record stored under hash, or ok=false on a miss.
	Get(hash string) (*Record, bool, error)
	// Put stores a validated record under rec.Hash (computed from
	// rec.Spec when empty). Safe for any number of concurrent callers,
	// in-process or across processes.
	Put(rec *Record) error
	// Index enumerates the stored records' (hash, family, cell) triples,
	// sorted by (family, cell, hash), without reading any payloads (best
	// effort for remote backends: empty when the server is unreachable).
	Index() []IndexEntry
	// All returns every stored record, sorted by (family, cell, hash).
	All() ([]*Record, error)
	// Invalidate deletes every record whose cell key matches re and
	// returns how many were removed.
	Invalidate(re *regexp.Regexp) (int, error)
	// Flush persists any deferred index state; a no-op for backends
	// that index eagerly.
	Flush() error
	// Claim attempts to lease hash for owner until now+ttl. It succeeds
	// when the hash is unclaimed, leased live by this owner (the lease
	// is refreshed), or leased by any owner whose lease has expired
	// (the lease is stolen — Claim.Stolen reports it; an owner whose
	// own lease expired re-acquires through the same steal path). A
	// live lease held by another owner is not disturbed: the returned
	// claim has Acquired=false and names the holder. The one caveat is
	// a refresh or release racing a steal in the instant the lease
	// expires, which can briefly leave two owners each believing they
	// hold the lease; the consequence is bounded by the store's
	// content addressing — at worst one cell is simulated twice and
	// both workers Put the identical record.
	Claim(hash, owner string, ttl time.Duration) (Claim, error)
	// Release drops owner's lease on hash; releasing a lease that is
	// absent or held by another owner is a no-op.
	Release(hash, owner string) error
}

// Claim is the outcome of one Backend.Claim attempt.
type Claim struct {
	// Acquired reports whether owner now holds the lease.
	Acquired bool `json:"acquired"`
	// Stolen reports that acquiring required expiring another owner's
	// dead lease — the work-stealing path.
	Stolen bool `json:"stolen,omitempty"`
	// Holder names the live holder when the claim was not acquired.
	Holder string `json:"holder,omitempty"`
	// ExpiresUnixNS is the acquired lease's expiry (Unix nanoseconds).
	ExpiresUnixNS int64 `json:"expires_unix_ns,omitempty"`
}

// OpenBackend opens the backend a location string names, dispatching
// on scheme: "http://" and "https://" locations get an HTTPBackend
// speaking to a cmserve /v1/store API; anything else is a local store
// directory (created if missing). This is how every CLI -store flag
// resolves, so a sweep moves from a local directory to a shared daemon
// by changing one flag value.
func OpenBackend(location string) (Backend, error) {
	if strings.HasPrefix(location, "http://") || strings.HasPrefix(location, "https://") {
		return NewHTTPBackend(location)
	}
	return Open(location)
}
