package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestClaimAcquireConflictReleaseCycle(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const hash = "ab12cd34ef56"

	cl, err := s.Claim(hash, "w1", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Acquired || cl.Stolen {
		t.Fatalf("first claim = %+v, want acquired fresh", cl)
	}

	// A second owner bounces off the live lease and learns the holder.
	cl2, err := s.Claim(hash, "w2", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cl2.Acquired || cl2.Holder != "w1" {
		t.Fatalf("conflicting claim = %+v, want refused with holder w1", cl2)
	}

	// The holder refreshes: still acquired, expiry extended.
	cl3, err := s.Claim(hash, "w1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !cl3.Acquired || cl3.ExpiresUnixNS <= cl.ExpiresUnixNS {
		t.Fatalf("refresh = %+v (previous expiry %d), want later expiry", cl3, cl.ExpiresUnixNS)
	}

	// Release frees the hash for anyone.
	if err := s.Release(hash, "w1"); err != nil {
		t.Fatal(err)
	}
	cl4, err := s.Claim(hash, "w2", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !cl4.Acquired || cl4.Stolen {
		t.Fatalf("claim after release = %+v, want acquired fresh", cl4)
	}
}

func TestClaimStealsExpiredLease(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const hash = "deadbeef0001"
	if cl, err := s.Claim(hash, "dead-worker", time.Millisecond); err != nil || !cl.Acquired {
		t.Fatalf("seed claim: %+v err=%v", cl, err)
	}
	time.Sleep(5 * time.Millisecond)

	cl, err := s.Claim(hash, "thief", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Acquired || !cl.Stolen {
		t.Fatalf("claim on expired lease = %+v, want acquired with Stolen", cl)
	}

	// The dead worker's belated release must not disturb the thief.
	if err := s.Release(hash, "dead-worker"); err != nil {
		t.Fatal(err)
	}
	if cl, err := s.Claim(hash, "third", time.Minute); err != nil || cl.Acquired {
		t.Fatalf("thief's lease was disturbed: %+v err=%v", cl, err)
	}
}

// TestClaimExpiredOwnLeaseReacquiresViaSteal pins the rule that an
// owner returning to a lease that already expired does not rename-over
// it (a concurrent thief may be retiring it, and a rename-over could
// clobber the thief's fresh claim) but re-acquires through the same
// exclusive-link steal path as everyone else — so the re-claim reports
// Stolen.
func TestClaimExpiredOwnLeaseReacquiresViaSteal(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const hash = "feed00000001"
	if cl, err := s.Claim(hash, "w1", time.Millisecond); err != nil || !cl.Acquired || cl.Stolen {
		t.Fatalf("seed claim = %+v err=%v, want acquired fresh", cl, err)
	}
	time.Sleep(5 * time.Millisecond)
	cl, err := s.Claim(hash, "w1", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Acquired || !cl.Stolen {
		t.Fatalf("re-claim of own expired lease = %+v, want acquired via the steal path", cl)
	}
}

func TestClaimReleaseIdempotentAndForeign(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Releasing an absent claim is a no-op.
	if err := s.Release("cafe00000001", "w1"); err != nil {
		t.Fatal(err)
	}
	if cl, err := s.Claim("cafe00000001", "w1", time.Minute); err != nil || !cl.Acquired {
		t.Fatalf("claim after no-op release: %+v err=%v", cl, err)
	}
	// Releasing under the wrong owner leaves the lease alone.
	if err := s.Release("cafe00000001", "w2"); err != nil {
		t.Fatal(err)
	}
	if cl, err := s.Claim("cafe00000001", "w3", time.Minute); err != nil || cl.Acquired {
		t.Fatalf("foreign release freed the lease: %+v err=%v", cl, err)
	}
}

// TestClaimConcurrentRace hammers one hash from many goroutines:
// exactly one must win, the rest must all name the winner.
func TestClaimConcurrentRace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const hash, workers = "0123456789ab", 16
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		wins []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := s.Claim(hash, string(rune('a'+w)), time.Minute)
			if err != nil {
				t.Error(err)
				return
			}
			if cl.Acquired {
				mu.Lock()
				wins = append(wins, string(rune('a'+w)))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(wins) != 1 {
		t.Fatalf("%d claimants won (%v), want exactly 1", len(wins), wins)
	}
	if cl, _ := s.Claim(hash, "late", time.Minute); cl.Acquired || cl.Holder != wins[0] {
		t.Fatalf("late claim = %+v, want refused with holder %s", cl, wins[0])
	}
}

// TestOpenSweepsStrandedTempFiles seeds the failure the atomic-write
// discipline can leave behind — a crash between temp write and rename
// strands *.tmp files in objects/ forever — and verifies Open removes
// aged ones, keeps fresh ones (a live writer may still rename them),
// and leaves the index exactly as the real object files dictate.
func TestOpenSweepsStrandedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("fig5", "fig5/LEX/N32/256B", "1.234")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	old := time.Now().Add(-2 * strandedTempMaxAge)
	stale := []string{
		filepath.Join(dir, "objects", rec.Hash[:2], ".tmp-stranded1"),
		filepath.Join(dir, "objects", ".tmp-stranded2"),
		filepath.Join(dir, ".index-stranded"),
	}
	for _, p := range stale {
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	fresh := filepath.Join(dir, "objects", rec.Hash[:2], ".tmp-live")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stranded temp %s survived Open (err=%v)", p, err)
		}
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp %s was swept: %v", fresh, err)
	}
	if s2.Len() != 1 {
		t.Fatalf("index has %d records after sweep, want 1", s2.Len())
	}
	if _, ok, err := s2.Get(rec.Hash); err != nil || !ok {
		t.Fatalf("real record lost by sweep: ok=%v err=%v", ok, err)
	}
}

// TestOpenSweepsLongExpiredClaims verifies aged-out claim files are
// tidied on Open while live ones survive.
func TestOpenSweepsLongExpiredClaims(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Claim("aa00aa00aa00", "live", time.Hour); err != nil {
		t.Fatal(err)
	}
	// A lease that expired far before the sweep cutoff.
	deadPath := s.claimPath("bb00bb00bb00")
	tmp, err := writeClaimTemp(deadPath, claimFile{
		Schema: SchemaVersion, Hash: "bb00bb00bb00", Owner: "dead",
		ExpiresUnixNS: time.Now().Add(-2 * strandedTempMaxAge).UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, deadPath); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(deadPath); !os.IsNotExist(err) {
		t.Errorf("long-expired claim survived Open (err=%v)", err)
	}
	if _, err := os.Stat(s.claimPath("aa00aa00aa00")); err != nil {
		t.Errorf("live claim was swept: %v", err)
	}
}
