package store

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestStoreWriterHelperProcess is not a test: it is the body of the
// writer process TestStoreConcurrentProcesses spawns. It opens the
// store named by STORE_HELPER_DIR, writes the cell range
// [STORE_HELPER_START, STORE_HELPER_START+STORE_HELPER_COUNT), flushes,
// and exits 0.
func TestStoreWriterHelperProcess(t *testing.T) {
	dir := os.Getenv("STORE_HELPER_DIR")
	if dir == "" {
		t.Skip("helper process entry point; spawned by TestStoreConcurrentProcesses")
	}
	var start, count int
	fmt.Sscanf(os.Getenv("STORE_HELPER_START"), "%d", &start)
	fmt.Sscanf(os.Getenv("STORE_HELPER_COUNT"), "%d", &count)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := start; i < start+count; i++ {
		if err := s.Put(testRecord("proc", fmt.Sprintf("proc/cell%03d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentProcesses extends TestStoreConcurrentWriters
// beyond in-process concurrency: two real OS processes (this test and
// a re-exec of the test binary) write overlapping and disjoint cell
// ranges into one directory at the same time. Every record must
// survive, and the index both processes race to flush must parse and
// cover the union.
func TestStoreConcurrentProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process; skipped in -short")
	}
	dir := t.TempDir()
	const (
		helperStart, helperCount = 0, 60  // cells 0..59
		localStart, localCount   = 40, 60 // cells 40..99: 20 contended
	)
	cmd := exec.Command(os.Args[0], "-test.run=TestStoreWriterHelperProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"STORE_HELPER_DIR="+dir,
		fmt.Sprintf("STORE_HELPER_START=%d", helperStart),
		fmt.Sprintf("STORE_HELPER_COUNT=%d", helperCount),
	)
	done := make(chan error, 1)
	var helperOut []byte
	go func() {
		o, err := cmd.CombinedOutput()
		helperOut = o
		done <- err
	}()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := localStart; i < localStart+localCount; i++ {
		if err := s.Put(testRecord("proc", fmt.Sprintf("proc/cell%03d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("helper writer process failed: %v\n%s", err, helperOut)
	}

	// No lost records: a fresh Open rebuilds the index from the object
	// files and must see the union of both processes' ranges.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const total = 100 // cells 000..099
	if s2.Len() != total {
		t.Fatalf("store has %d records after two writer processes, want %d", s2.Len(), total)
	}
	recs, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("proc/cell%03d", i); rec.Cell != want {
			t.Fatalf("record %d = %q, want %q (lost or duplicated cells)", i, rec.Cell, want)
		}
	}

	// Index integrity: whichever process flushed last, index.json must
	// be whole, schema-stamped, and sorted.
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatalf("index.json torn by concurrent flushes: %v", err)
	}
	if idx.Schema != SchemaVersion {
		t.Fatalf("index schema = %d, want %d", idx.Schema, SchemaVersion)
	}
	for i := 1; i < len(idx.Entries); i++ {
		if idx.Entries[i-1].Cell > idx.Entries[i].Cell {
			t.Fatalf("index entries unsorted at %d: %q > %q", i, idx.Entries[i-1].Cell, idx.Entries[i].Cell)
		}
	}
}
