package sched

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/topo"
)

// Kind classifies a registered algorithm by the shape of work it runs.
type Kind string

// The four algorithm kinds of the registry.
const (
	KindExchange   Kind = "exchange"   // regular all-to-all / regular patterns
	KindBroadcast  Kind = "broadcast"  // one-to-all
	KindIrregular  Kind = "irregular"  // schedulers for arbitrary patterns
	KindCollective Kind = "collective" // CMMD collective node programs
)

// ErrUnknownAlgorithm is returned (wrapped, with the requested name and
// the registry's known names) by Lookup and everything built on it.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// Request carries every input a registered algorithm may consume. Which
// fields matter depends on the algorithm's kind: exchanges use N and
// Bytes (SHIFT also Offset), broadcasts add Root, irregular schedulers
// take Pattern instead of N/Bytes, and collectives use N and Bytes as
// the per-block size. Seed feeds stochastic planners (GSR); Async,
// Trace and Observer configure the machine the run executes on.
type Request struct {
	N       int            // machine size (power of two)
	Bytes   int            // bytes per message / pair / block
	Root    int            // broadcast root (default 0)
	Offset  int            // SHIFT offset (default 0: no traffic)
	Pattern pattern.Matrix // irregular pattern; implies the machine size
	Seed    int64          // tie-break seed for stochastic planners
	Cfg     network.Config
	Topo    topo.Topology        // data-network topology; nil = the CM-5 fat tree
	Async   bool                 // buffered (non-blocking) sends
	Trace   bool                 // collect per-message trace events
	Obs     network.FlowObserver // live flow observer, or nil
	Faults  *network.FaultPlan   // fault events injected into the run, or nil

	// Observability sinks, both passive and both optional: Met receives
	// engine/network/scheduler counters, Timeline records sim-time spans
	// and instants (flows, messages, steps, faults, AS re-plans).
	Met      *obs.SimMetrics
	Timeline *obs.Timeline
}

// Info describes one registered algorithm. At least one of plan/run is
// set: schedule-backed algorithms plan an explicit Schedule that the
// generic executor runs; program-backed algorithms (the broadcasts,
// the crystal router, the collectives) run a node program directly.
// When both are set (REX), Execute prefers run — the program carries
// costs the schedule view cannot express — while Plan uses plan.
type Info struct {
	Name string
	Kind Kind
	Doc  string // one-line description, paper reference included
	// Aux marks algorithms outside the paper's named comparison sets
	// (SHIFT, CRYSTAL, GSR): reachable through Lookup and Run, but not
	// listed by the classic family queries the old facade exposed.
	Aux bool

	plan func(Request) (*Schedule, error)
	run  func(Request) (*Metrics, error)
}

// registry lists every algorithm in canonical order: the paper's
// exchange, broadcast and irregular families, then the auxiliary
// regular/irregular algorithms, then the collectives.
var registry = []*Info{
	{Name: "LEX", Kind: KindExchange,
		Doc:  "Linear Exchange: N steps, step i funnels into processor i (Section 3.1)",
		plan: func(r Request) (*Schedule, error) { return LEX(r.N, r.Bytes), nil }},
	{Name: "PEX", Kind: KindExchange,
		Doc:  "Pairwise Exchange: N-1 XOR-pairing steps (Section 3.2, Figure 2)",
		plan: func(r Request) (*Schedule, error) { return PEX(r.N, r.Bytes), nil }},
	{Name: "REX", Kind: KindExchange,
		Doc:  "Recursive Exchange: lg N store-and-forward steps with pack/unpack costs (Section 3.3, Figure 3)",
		plan: func(r Request) (*Schedule, error) { return REX(r.N, r.Bytes), nil },
		run:  runREXMetrics},
	{Name: "BEX", Kind: KindExchange,
		Doc:  "Balanced Exchange: PEX over a virtual numbering, spreading root-crossing traffic (Section 3.4, Figure 4)",
		plan: func(r Request) (*Schedule, error) { return BEX(r.N, r.Bytes), nil }},
	{Name: "LIB", Kind: KindBroadcast,
		Doc: "Linear Broadcast: the root sends to the other N-1 nodes one by one (Section 3.6)",
		run: func(r Request) (*Metrics, error) {
			return runBroadcastMetrics(r, 1, libProgram(r.Root, r.Bytes))
		}},
	{Name: "REB", Kind: KindBroadcast,
		Doc: "Recursive Broadcast: lg N doubling steps over the data network (Section 3.6, Figure 9)",
		run: func(r Request) (*Metrics, error) {
			return runBroadcastMetrics(r, LgN(r.N), func(nd *cmmd.Node) {
				ExecuteREBNode(nd, r.Root, r.Bytes)
			})
		}},
	{Name: "SYS", Kind: KindBroadcast,
		Doc: "CMMD system broadcast over the control network's broadcast bandwidth",
		run: func(r Request) (*Metrics, error) {
			return runBroadcastMetrics(r, 1, sysProgram(r.Root, r.Bytes))
		}},
	{Name: "LS", Kind: KindIrregular,
		Doc:  "Linear Scheduling: linear exchange filtered by the communication matrix (Section 4.1)",
		plan: func(r Request) (*Schedule, error) { return LS(r.Pattern), nil }},
	{Name: "PS", Kind: KindIrregular,
		Doc:  "Pairwise Scheduling: pairwise-exchange pairings filtered by the matrix (Section 4.2)",
		plan: func(r Request) (*Schedule, error) { return PS(r.Pattern), nil }},
	{Name: "BS", Kind: KindIrregular,
		Doc:  "Balanced Scheduling: balanced-exchange pairings filtered by the matrix (Section 4.3)",
		plan: func(r Request) (*Schedule, error) { return BS(r.Pattern), nil }},
	{Name: "GS", Kind: KindIrregular,
		Doc:  "Greedy Scheduling: greedy matching with the deterministic next-available scan (Section 4.4, Figure 12)",
		plan: func(r Request) (*Schedule, error) { return GS(r.Pattern), nil }},
	{Name: "SHIFT", Kind: KindExchange, Aux: true,
		Doc: "Circular shift by Offset in two deadlock-free waves (Section 3's regular patterns)",
		plan: func(r Request) (*Schedule, error) {
			return Shift(r.N, r.Offset, r.Bytes), nil
		}},
	{Name: "CRYSTAL", Kind: KindIrregular, Aux: true,
		Doc: "Crystal router: hypercube store-and-forward baseline (Fox et al. 1988)",
		run: runCrystalMetrics},
	{Name: "GSR", Kind: KindIrregular, Aux: true,
		Doc: "Greedy Scheduling with seeded random tie-breaking (the paper's ablation variant)",
		plan: func(r Request) (*Schedule, error) {
			return GSWith(r.Pattern, GSOptions{RandomTieBreak: true, Seed: r.Seed}), nil
		}},
	{Name: "AS", Kind: KindIrregular, Aux: true,
		Doc: "Adaptive Scheduling: greedy-matching phases re-planned mid-run from observed wire and end-to-end transfer rates (fault-aware; beyond the paper)",
		run: runAdaptiveMetrics},
}

// collectiveDocs captures one line per collective for the registry.
var collectiveDocs = map[string]string{
	"scatter":   "root distributes one distinct block to every node (linear sends)",
	"gather":    "every node sends its block to the root (linear receives)",
	"allgather": "ring all-gather: every node ends holding all N blocks",
	"reduce":    "binomial-tree reduction of float64 vectors to the root",
	"allreduce": "recursive-doubling butterfly all-reduce of float64 vectors",
	"transpose": "all-to-all personalized exchange via PEX pairing",
	"cshift":    "circular shift by one in two deadlock-free waves",
	"halo":      "2-D stencil ghost exchange of the machine size",
}

var byName = map[string]*Info{}

func init() {
	for _, name := range cmmd.CollectiveNames() {
		name := name
		registry = append(registry, &Info{
			Name: name, Kind: KindCollective, Doc: collectiveDocs[name],
			run: func(r Request) (*Metrics, error) { return runCollectiveMetrics(name, r) },
		})
	}
	for _, inf := range registry {
		if _, dup := byName[inf.Name]; dup {
			panic("sched: duplicate algorithm " + inf.Name)
		}
		byName[inf.Name] = inf
	}
}

// Lookup resolves an algorithm name to its registry entry. The match is
// exact first, then case-folded, so "pex" and "PEX" both resolve. A miss
// returns an error wrapping ErrUnknownAlgorithm that lists every known
// name.
func Lookup(name string) (*Info, error) {
	if inf, ok := byName[name]; ok {
		return inf, nil
	}
	if inf, ok := byName[strings.ToUpper(name)]; ok {
		return inf, nil
	}
	if inf, ok := byName[strings.ToLower(name)]; ok {
		return inf, nil
	}
	return nil, fmt.Errorf("sched: %w %q (known: %s)",
		ErrUnknownAlgorithm, name, strings.Join(Names(), " "))
}

// Algorithms returns every registry entry in canonical order.
func Algorithms() []*Info { return append([]*Info(nil), registry...) }

// Names returns every registered algorithm name in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, inf := range registry {
		out[i] = inf.Name
	}
	return out
}

// FamilyNames returns the non-auxiliary names of one kind in canonical
// order — the paper's named comparison sets (LEX/PEX/REX/BEX and so on).
func FamilyNames(kind Kind) []string {
	var out []string
	for _, inf := range registry {
		if inf.Kind == kind && !inf.Aux {
			out = append(out, inf.Name)
		}
	}
	return out
}

// Plan builds the algorithm's explicit schedule for the request, without
// running it. Program-backed algorithms with no static schedule (the
// broadcasts, the crystal router, the collectives) return an error.
func (a *Info) Plan(req Request) (*Schedule, error) {
	if a.plan == nil {
		return nil, fmt.Errorf("sched: %s is program-backed and has no explicit schedule", a.Name)
	}
	if err := a.validate(req); err != nil {
		return nil, err
	}
	return a.plan(req)
}

// Execute runs the algorithm for the request and returns its metrics.
func (a *Info) Execute(req Request) (*Metrics, error) {
	if err := a.validate(req); err != nil {
		return nil, err
	}
	if a.run != nil {
		return a.run(req)
	}
	s, err := a.plan(req)
	if err != nil {
		return nil, err
	}
	return ExecuteSchedule(s, req)
}

// validate rejects requests the algorithm's planner or runner would
// otherwise panic on: machine sizes that are not powers of two, missing
// patterns, out-of-range broadcast roots.
func (a *Info) validate(req Request) error {
	if a.Kind == KindIrregular {
		if req.Pattern == nil {
			return fmt.Errorf("sched: %s needs a communication pattern", a.Name)
		}
		if n := req.Pattern.N(); !validMachineSize(n) {
			return fmt.Errorf("sched: %s pattern size %d must be a power of two >= 2", a.Name, n)
		}
		return nil
	}
	if !validMachineSize(req.N) {
		return fmt.Errorf("sched: %s machine size %d must be a power of two >= 2", a.Name, req.N)
	}
	if a.Kind == KindBroadcast && (req.Root < 0 || req.Root >= req.N) {
		return fmt.Errorf("sched: %s root %d out of range [0,%d)", a.Name, req.Root, req.N)
	}
	return nil
}

func validMachineSize(n int) bool { return n >= 2 && n&(n-1) == 0 }
