package sched

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/pattern"
)

func TestLookupKnownAndUnknown(t *testing.T) {
	for _, name := range Names() {
		inf, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if inf.Name != name {
			t.Errorf("Lookup(%s) returned %s", name, inf.Name)
		}
	}
	_, err := Lookup("NOPE")
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("want ErrUnknownAlgorithm, got %v", err)
	}
	for _, known := range []string{"LEX", "GS", "halo"} {
		if !strings.Contains(err.Error(), known) {
			t.Errorf("miss message should list %s: %v", known, err)
		}
	}
}

func TestFamilyNames(t *testing.T) {
	cases := map[Kind][]string{
		KindExchange:   {"LEX", "PEX", "REX", "BEX"},
		KindBroadcast:  {"LIB", "REB", "SYS"},
		KindIrregular:  {"LS", "PS", "BS", "GS"},
		KindCollective: {"scatter", "gather", "allgather", "reduce", "allreduce", "transpose", "cshift", "halo"},
	}
	for kind, want := range cases {
		if got := FamilyNames(kind); !reflect.DeepEqual(got, want) {
			t.Errorf("FamilyNames(%s) = %v, want %v", kind, got, want)
		}
	}
}

func TestKindLookupRejectsCrossKindAndAux(t *testing.T) {
	for _, c := range []struct {
		name string
		kind Kind
	}{
		{"GS", KindExchange},    // wrong kind
		{"SHIFT", KindExchange}, // aux
		{"CRYSTAL", KindIrregular} /* aux */, {"GSR", KindIrregular},
		{"PEX", KindBroadcast},
	} {
		if _, err := KindLookup(c.name, c.kind); !errors.Is(err, ErrUnknownAlgorithm) {
			t.Errorf("KindLookup(%s, %s): want ErrUnknownAlgorithm, got %v", c.name, c.kind, err)
		}
	}
	if _, err := KindLookup("pex", KindExchange); err != nil {
		t.Errorf("KindLookup should case-fold: %v", err)
	}
}

func TestExecuteValidates(t *testing.T) {
	cfg := network.DefaultConfig()
	pex, _ := Lookup("PEX")
	if _, err := pex.Execute(Request{N: 12, Bytes: 1, Cfg: cfg}); err == nil {
		t.Error("non-power-of-two N should error, not panic")
	}
	gs, _ := Lookup("GS")
	if _, err := gs.Execute(Request{N: 16, Cfg: cfg}); err == nil {
		t.Error("irregular without pattern should error")
	}
	reb, _ := Lookup("REB")
	if _, err := reb.Execute(Request{N: 16, Root: -1, Cfg: cfg}); err == nil {
		t.Error("negative root should error")
	}
}

// The registry's generic executor must agree exactly with the classic
// runners it replaced.
func TestExecuteMatchesClassicRunners(t *testing.T) {
	cfg := network.DefaultConfig()
	for _, name := range FamilyNames(KindExchange) {
		inf, _ := Lookup(name)
		met, err := inf.Execute(Request{N: 16, Bytes: 512, Cfg: cfg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := Exchange(name, 16, 512, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if met.Elapsed != want {
			t.Errorf("%s: Execute %v != Exchange %v", name, met.Elapsed, want)
		}
	}
	p := pattern.Synthetic(16, 0.3, 256, 5)
	crystal, _ := Lookup("CRYSTAL")
	met, err := crystal.Execute(Request{Pattern: p, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCrystalRouter(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.Elapsed != want {
		t.Errorf("CRYSTAL: Execute %v != RunCrystalRouter %v", met.Elapsed, want)
	}
}

func TestScheduleMaxFanIn(t *testing.T) {
	if got := LEX(8, 1).MaxFanIn(); got != 7 {
		t.Errorf("LEX(8) fan-in = %d, want 7", got)
	}
	for _, s := range []*Schedule{PEX(8, 1), BEX(8, 1), REX(8, 1)} {
		if got := s.MaxFanIn(); got != 1 {
			t.Errorf("%s fan-in = %d, want 1", s.Algorithm, got)
		}
	}
	if got := (&Schedule{N: 4}).MaxFanIn(); got != 0 {
		t.Errorf("empty schedule fan-in = %d, want 0", got)
	}
}

// A malformed hand-built schedule must come back as an error from the
// metrics executor, exactly like the classic Run path — never a panic
// from the stats pass.
func TestExecuteScheduleValidates(t *testing.T) {
	cfg := network.DefaultConfig()
	bad := &Schedule{Algorithm: "BAD", N: 4,
		Steps: []Step{{Transfer{Src: 0, Dst: 7, Bytes: 1}}}}
	if _, err := ExecuteSchedule(bad, Request{Cfg: cfg}); err == nil {
		t.Error("out-of-range transfer should error")
	}
	empty := &Schedule{Algorithm: "BAD", N: 4, Steps: []Step{{}}}
	if _, err := ExecuteSchedule(empty, Request{Cfg: cfg}); err == nil {
		t.Error("empty step should error")
	}
}

// Step completion times must be monotone and reach the makespan for a
// barrier-free pairwise schedule.
func TestExecuteScheduleStepTimes(t *testing.T) {
	cfg := network.DefaultConfig()
	s := BEX(16, 1024)
	met, err := ExecuteSchedule(s, Request{Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(met.StepDone) != s.NumSteps() {
		t.Fatalf("%d step times for %d steps", len(met.StepDone), s.NumSteps())
	}
	for i := 1; i < len(met.StepDone); i++ {
		if met.StepDone[i] <= met.StepDone[i-1] {
			t.Errorf("step %d done at %v, not after step %d at %v",
				i, met.StepDone[i], i-1, met.StepDone[i-1])
		}
	}
	last := met.StepDone[len(met.StepDone)-1]
	if last > met.Elapsed {
		t.Errorf("last step %v after makespan %v", last, met.Elapsed)
	}
}
