// Package sched implements the paper's contribution: communication
// schedules for regular and irregular patterns on the CM-5.
//
// Regular complete-exchange algorithms (Section 3):
//
//	LEX — Linear Exchange:    N steps, step i funnels into processor i
//	PEX — Pairwise Exchange:  N-1 steps of XOR pairings (Figure 2)
//	REX — Recursive Exchange: lg N store-and-forward steps (Figure 3)
//	BEX — Balanced Exchange:  PEX over virtual numbering (Figure 4),
//	      spreading root-crossing traffic evenly across steps
//
// Broadcast algorithms (Section 3.6): LIB (linear), REB (recursive
// doubling, Figure 9), and the CMMD system broadcast on the control
// network.
//
// Irregular schedulers (Section 4): LS, PS, BS (the three exchange
// algorithms filtered by a communication matrix) and GS (greedy matching,
// Figure 12).
//
// Beyond the paper, AS (adaptive.go) schedules the same irregular
// patterns in greedy-matching phases that are re-planned mid-run from
// observed wire and end-to-end transfer rates, so it reacts to link
// failures, degraded capacity and stragglers injected by a
// network.FaultPlan where the static schedulers cannot.
//
// A Schedule is an explicit list of steps, each an ordered list of
// point-to-point transfers; the executor in exec.go runs one on a
// simulated machine.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fattree"
	"repro/internal/pattern"
)

// Transfer is one point-to-point message within a step.
type Transfer struct {
	Src, Dst int
	Bytes    int
}

// Step is an ordered list of transfers. A node executes its transfers in
// list order: for an exchange pair listed [hi->lo, lo->hi], the lower
// rank receives before sending — the deadlock-free ordering of the
// paper's Figure 2.
type Step []Transfer

// Schedule is a complete communication schedule.
type Schedule struct {
	Algorithm string // "LEX", "PEX", ...
	N         int    // number of processors
	Steps     []Step
}

// NumSteps returns the number of (non-empty) steps.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// Messages returns the total number of transfers across all steps.
func (s *Schedule) Messages() int {
	total := 0
	for _, st := range s.Steps {
		total += len(st)
	}
	return total
}

// TotalBytes returns the sum of transfer sizes over the schedule.
func (s *Schedule) TotalBytes() int64 {
	var total int64
	for _, st := range s.Steps {
		for _, tr := range st {
			total += int64(tr.Bytes)
		}
	}
	return total
}

// MaxFanIn returns the largest number of transfers converging on one
// node within a single step — the receiver-side serialization bound
// under CMMD's synchronous sends (N-1 for LEX's funnel, 1 for the
// pairwise schedules).
func (s *Schedule) MaxFanIn() int {
	counts := make([]int, s.N)
	max := 0
	for _, st := range s.Steps {
		for _, tr := range st {
			counts[tr.Dst]++
			if counts[tr.Dst] > max {
				max = counts[tr.Dst]
			}
		}
		for _, tr := range st {
			counts[tr.Dst] = 0
		}
	}
	return max
}

// Validate checks structural sanity: endpoints in range, no self
// transfers, non-negative sizes, and no empty steps.
func (s *Schedule) Validate() error {
	for si, st := range s.Steps {
		if len(st) == 0 {
			return fmt.Errorf("sched: %s step %d is empty", s.Algorithm, si)
		}
		for _, tr := range st {
			if tr.Src < 0 || tr.Src >= s.N || tr.Dst < 0 || tr.Dst >= s.N {
				return fmt.Errorf("sched: %s step %d transfer %d->%d out of range",
					s.Algorithm, si, tr.Src, tr.Dst)
			}
			if tr.Src == tr.Dst {
				return fmt.Errorf("sched: %s step %d self transfer at node %d",
					s.Algorithm, si, tr.Src)
			}
			if tr.Bytes < 0 {
				return fmt.Errorf("sched: %s step %d negative size %d",
					s.Algorithm, si, tr.Bytes)
			}
		}
	}
	return nil
}

// CoversPattern verifies the schedule delivers exactly the messages of
// the given pattern: every m[i][j] > 0 appears as exactly one transfer of
// that size, and nothing else appears. Store-and-forward schedules (REX)
// do not satisfy this — their messages are combined — so this check
// applies to the direct algorithms only.
func (s *Schedule) CoversPattern(m pattern.Matrix) error {
	if m.N() != s.N {
		return fmt.Errorf("sched: pattern for %d processors, schedule for %d", m.N(), s.N)
	}
	seen := pattern.New(s.N)
	for si, st := range s.Steps {
		for _, tr := range st {
			if seen[tr.Src][tr.Dst] > 0 {
				return fmt.Errorf("sched: %s duplicates %d->%d at step %d",
					s.Algorithm, tr.Src, tr.Dst, si)
			}
			seen[tr.Src][tr.Dst] = tr.Bytes
		}
	}
	for i := 0; i < s.N; i++ {
		for j := 0; j < s.N; j++ {
			if seen[i][j] != m[i][j] {
				return fmt.Errorf("sched: %s schedules %d bytes for %d->%d, pattern wants %d",
					s.Algorithm, seen[i][j], i, j, m[i][j])
			}
		}
	}
	return nil
}

// CheckPairwise verifies that within every step each node communicates
// with at most one counterpart (the property of PEX/BEX/PS/BS/GS
// schedules; LEX/LS-style funnel schedules intentionally violate it).
func (s *Schedule) CheckPairwise() error {
	for si, st := range s.Steps {
		partner := make(map[int]int)
		for _, tr := range st {
			for node, other := range map[int]int{tr.Src: tr.Dst, tr.Dst: tr.Src} {
				if prev, ok := partner[node]; ok && prev != other {
					return fmt.Errorf("sched: %s step %d node %d talks to both %d and %d",
						s.Algorithm, si, node, prev, other)
				}
				partner[node] = other
			}
		}
	}
	return nil
}

// GlobalExchangesPerStep counts, for each step, the unordered
// communicating pairs whose traffic crosses the top of the fat tree.
// This is the metric behind the paper's Section 3.4 claim: PEX packs all
// global exchanges into 3N/4 of its steps while BEX spreads them evenly
// across all N-1 steps.
func (s *Schedule) GlobalExchangesPerStep(topo *fattree.Topology) []int {
	counts := make([]int, len(s.Steps))
	for si, st := range s.Steps {
		type pair struct{ a, b int }
		seen := make(map[pair]bool)
		for _, tr := range st {
			a, b := tr.Src, tr.Dst
			if a > b {
				a, b = b, a
			}
			p := pair{a, b}
			if seen[p] {
				continue
			}
			seen[p] = true
			if topo.CrossesTop(tr.Src, tr.Dst) {
				counts[si]++
			}
		}
	}
	return counts
}

// NodeOps returns the ordered transfers involving the given node in the
// given step (as the executor will run them).
func (s *Schedule) NodeOps(step, node int) []Transfer {
	var ops []Transfer
	for _, tr := range s.Steps[step] {
		if tr.Src == node || tr.Dst == node {
			ops = append(ops, tr)
		}
	}
	return ops
}

// Table renders the schedule in the style of the paper's schedule tables
// (Tables 1-4 and 7-10): one column per step, entries "i<->j" for
// exchanges and "i->j" for one-way transfers.
func (s *Schedule) Table() string {
	cols := make([][]string, len(s.Steps))
	height := 0
	for si, st := range s.Steps {
		cols[si] = stepEntries(st)
		if len(cols[si]) > height {
			height = len(cols[si])
		}
	}
	var b strings.Builder
	// Header.
	for si := range s.Steps {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-7s", fmt.Sprintf("Step %d", si+1))
	}
	b.WriteByte('\n')
	for r := 0; r < height; r++ {
		for si := range cols {
			if si > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if r < len(cols[si]) {
				cell = cols[si][r]
			}
			fmt.Fprintf(&b, "%-7s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// stepEntries folds a step's transfers into display entries, pairing
// opposite transfers into "a<->b" exchanges.
func stepEntries(st Step) []string {
	type pair struct{ a, b int }
	fwd := make(map[pair]bool)
	for _, tr := range st {
		fwd[pair{tr.Src, tr.Dst}] = true
	}
	var entries []string
	done := make(map[pair]bool)
	for _, tr := range st {
		p := pair{tr.Src, tr.Dst}
		if done[p] {
			continue
		}
		rp := pair{tr.Dst, tr.Src}
		if fwd[rp] {
			a, b := tr.Src, tr.Dst
			if a > b {
				a, b = b, a
			}
			entries = append(entries, fmt.Sprintf("%d<->%d", a, b))
			done[p], done[rp] = true, true
		} else {
			entries = append(entries, fmt.Sprintf("%d->%d", tr.Src, tr.Dst))
			done[p] = true
		}
	}
	sort.Strings(entries)
	return entries
}
