package sched

import (
	"fmt"
	"strings"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// DataHooks supply real payloads when a schedule moves application data.
// With nil hooks the executor sends size-only synthetic messages.
type DataHooks struct {
	// OnSend returns the payload for the transfer src->dst in the given
	// step. Its length overrides the schedule's byte count.
	OnSend func(step int, src, dst int) []byte
	// OnRecv consumes a delivered message.
	OnRecv func(step int, msg cmmd.Message)
	// OnStepDone fires after a node finishes its transfers of a step
	// (nodes with no work in the step never report it). The engine runs
	// exactly one node at a time, so callbacks never race; the metrics
	// executor folds them into per-step completion times.
	OnStepDone func(step, node int, at sim.Time)
}

// Run executes the schedule on a fresh machine with the given
// configuration and returns the simulated completion time of the slowest
// node. Steps are not barrier-separated — just like the paper's
// algorithms, the pairwise rendezvous themselves enforce ordering —
// so a node with no work in a step proceeds immediately.
func Run(s *Schedule, cfg network.Config) (sim.Time, error) {
	m, err := cmmd.NewMachine(s.N, cfg)
	if err != nil {
		return 0, err
	}
	return RunOn(m, s, DataHooks{})
}

// RunAsync is Run with buffered (non-blocking) sends — the what-if of
// the paper's Section 3.1, which the real CMMD of 1992 did not offer.
func RunAsync(s *Schedule, cfg network.Config) (sim.Time, error) {
	m, err := cmmd.NewMachine(s.N, cfg)
	if err != nil {
		return 0, err
	}
	m.SetAsyncSends(true)
	return RunOn(m, s, DataHooks{})
}

// RunOn executes the schedule on an existing (un-run) machine.
func RunOn(m *cmmd.Machine, s *Schedule, hooks DataHooks) (sim.Time, error) {
	if m.N() != s.N {
		return 0, fmt.Errorf("sched: machine has %d nodes, schedule wants %d", m.N(), s.N)
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return m.Run(func(n *cmmd.Node) { ExecuteNode(n, s, hooks) })
}

// ExecuteNode runs one node's part of the schedule; exposed so
// applications can interleave schedule execution with computation.
func ExecuteNode(n *cmmd.Node, s *Schedule, hooks DataHooks) {
	me := n.ID()
	for step, st := range s.Steps {
		acted := false
		for _, tr := range st {
			switch me {
			case tr.Src:
				if hooks.OnSend != nil {
					n.Send(tr.Dst, step, hooks.OnSend(step, tr.Src, tr.Dst))
				} else {
					n.SendN(tr.Dst, step, tr.Bytes)
				}
				acted = true
			case tr.Dst:
				msg := n.Recv(tr.Src, step)
				if hooks.OnRecv != nil {
					hooks.OnRecv(step, msg)
				}
				acted = true
			}
		}
		if acted && hooks.OnStepDone != nil {
			hooks.OnStepDone(step, me, n.Now())
		}
	}
}

// RunREX executes the Recursive Exchange complete exchange of
// bytesPerPair per processor pair on a fresh machine (paper Figure 3).
// Unlike the direct algorithms, REX is store-and-forward: each of the
// lg N steps moves a combined message of bytesPerPair*N/2 bytes and pays
// pack/unpack memory-copy costs for the reshuffle the paper describes.
func RunREX(n, bytesPerPair int, cfg network.Config) (sim.Time, error) {
	checkN(n)
	m, err := cmmd.NewMachine(n, cfg)
	if err != nil {
		return 0, err
	}
	return m.Run(func(node *cmmd.Node) { ExecuteREXNode(node, bytesPerPair) })
}

// ExecuteREXNode runs one node's recursive exchange with synthetic
// payloads, following Figure 3's ordering exactly: the lower-numbered
// partner packs and sends before receiving; the higher-numbered partner
// receives first.
func ExecuteREXNode(node *cmmd.Node, bytesPerPair int) {
	n := node.N()
	me := node.ID()
	msg := bytesPerPair * n / 2
	for k := 0; n>>uint(k) >= 2; k++ {
		peer := REXPartner(me, k, n)
		if me < peer {
			node.MemCopy(msg) // pack message to send
			node.SendN(peer, k, msg)
			node.Recv(peer, k)
			node.MemCopy(msg) // unpack received message
		} else {
			node.Recv(peer, k)
			node.MemCopy(msg)
			node.MemCopy(msg)
			node.SendN(peer, k, msg)
		}
	}
}

// Exchange runs the named complete-exchange algorithm for an n-processor
// machine at bytesPerPair bytes and returns the simulated time. Valid
// names: LEX, PEX, REX, BEX (a registry lookup).
func Exchange(alg string, n, bytesPerPair int, cfg network.Config) (sim.Time, error) {
	inf, err := KindLookup(alg, KindExchange)
	if err != nil {
		return 0, err
	}
	res, err := inf.Execute(Request{N: n, Bytes: bytesPerPair, Cfg: cfg})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// Irregular builds the named irregular schedule for a communication
// pattern. Valid names: LS, PS, BS, GS (a registry lookup).
func Irregular(alg string, m pattern.Matrix) (*Schedule, error) {
	inf, err := KindLookup(alg, KindIrregular)
	if err != nil {
		return nil, err
	}
	return inf.Plan(Request{Pattern: m})
}

// KindLookup resolves a name and insists on the paper's named family of
// the given kind — the contract of the classic helpers, which never
// accepted the auxiliary algorithms or other kinds' names.
func KindLookup(alg string, kind Kind) (*Info, error) {
	inf, err := Lookup(alg)
	if err != nil {
		return nil, err
	}
	if inf.Kind != kind || inf.Aux {
		return nil, fmt.Errorf("sched: %w %q for kind %s (known: %s)",
			ErrUnknownAlgorithm, alg, kind, strings.Join(FamilyNames(kind), " "))
	}
	return inf, nil
}
