package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

// TestLinearSchedulingTable7 reproduces the paper's Table 7: the LS
// schedule for pattern P completes in 8 steps, step i delivering into
// processor i.
func TestLinearSchedulingTable7(t *testing.T) {
	p := pattern.PaperP(1)
	s := LS(p)
	if s.NumSteps() != 8 {
		t.Fatalf("LS steps = %d, want 8 (paper Table 7)", s.NumSteps())
	}
	if err := s.CoversPattern(p); err != nil {
		t.Fatal(err)
	}
	// Every transfer in step k delivers into one fixed processor.
	for si, st := range s.Steps {
		dst := st[0].Dst
		for _, tr := range st {
			if tr.Dst != dst {
				t.Fatalf("LS step %d mixes destinations", si)
			}
		}
	}
}

// TestPairwiseSchedulingTable8 reproduces the paper's Table 8: the PS
// schedule for pattern P completes in 6 steps (PEX's step j=2 pairings
// have no traffic under P and are dropped).
func TestPairwiseSchedulingTable8(t *testing.T) {
	p := pattern.PaperP(1)
	s := PS(p)
	if s.NumSteps() != 6 {
		t.Fatalf("PS steps = %d, want 6 (paper Table 8)", s.NumSteps())
	}
	if err := s.CoversPattern(p); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckPairwise(); err != nil {
		t.Fatal(err)
	}
	// First step: the four cluster-neighbor exchanges of PEX step 1.
	checkPairs(t, s.Steps[0], map[[2]int]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true, {6, 7}: true})
}

// TestBalancedSchedulingTable9 reproduces the paper's Table 9: the BS
// schedule for pattern P completes in 7 steps.
func TestBalancedSchedulingTable9(t *testing.T) {
	p := pattern.PaperP(1)
	s := BS(p)
	if s.NumSteps() != 7 {
		t.Fatalf("BS steps = %d, want 7 (paper Table 9)", s.NumSteps())
	}
	if err := s.CoversPattern(p); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckPairwise(); err != nil {
		t.Fatal(err)
	}
}

// TestGreedySchedulingTable10 reproduces the paper's Table 10: the GS
// schedule for pattern P completes in 6 steps — the minimum possible,
// since processor 1 has six distinct communication partners.
func TestGreedySchedulingTable10(t *testing.T) {
	p := pattern.PaperP(1)
	s := GS(p)
	if err := s.CoversPattern(p); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckPairwise(); err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 6 {
		t.Fatalf("GS steps = %d, want 6 (paper Table 10)\n%s", s.NumSteps(), s.Table())
	}
}

func TestGSCompleteExchangeMatchesPairwiseStepCount(t *testing.T) {
	// Paper Section 4.4: "For a complete exchange operation this
	// algorithm creates the same communication schedule as pairwise
	// exchange" — N-1 steps, every node paired every step.
	for _, n := range []int{4, 8, 16} {
		p := pattern.CompleteExchange(n, 64)
		s := GS(p)
		if s.NumSteps() != n-1 {
			t.Fatalf("GS complete exchange on %d: %d steps, want %d", n, s.NumSteps(), n-1)
		}
		if err := s.CoversPattern(p); err != nil {
			t.Fatal(err)
		}
		for si, st := range s.Steps {
			if len(st) != n {
				t.Fatalf("GS step %d has %d transfers, want %d (all nodes paired)", si, len(st), n)
			}
		}
	}
}

func TestIrregularSchedulersEmptyPattern(t *testing.T) {
	p := pattern.New(8)
	for _, s := range []*Schedule{LS(p), PS(p), BS(p), GS(p)} {
		if s.NumSteps() != 0 {
			t.Fatalf("%s schedules %d steps for empty pattern", s.Algorithm, s.NumSteps())
		}
	}
}

func TestIrregularSchedulersSingleMessage(t *testing.T) {
	p := pattern.New(8)
	p[3][6] = 100
	for _, s := range []*Schedule{LS(p), PS(p), BS(p), GS(p)} {
		if s.NumSteps() != 1 || s.Messages() != 1 {
			t.Fatalf("%s: steps=%d msgs=%d, want 1/1", s.Algorithm, s.NumSteps(), s.Messages())
		}
		if err := s.CoversPattern(p); err != nil {
			t.Fatalf("%s: %v", s.Algorithm, err)
		}
	}
}

func TestGSNeverWorseThanMessagesBound(t *testing.T) {
	// Each GS step moves at least one message, so steps <= messages; and
	// steps >= the max number of distinct partners over nodes.
	p := pattern.Synthetic(16, 0.4, 64, 99)
	s := GS(p)
	if s.NumSteps() > p.Messages() {
		t.Fatalf("GS took %d steps for %d messages", s.NumSteps(), p.Messages())
	}
	maxPartners := 0
	for i := 0; i < 16; i++ {
		set := map[int]bool{}
		for j := 0; j < 16; j++ {
			if p[i][j] > 0 || p[j][i] > 0 {
				set[j] = true
			}
		}
		if len(set) > maxPartners {
			maxPartners = len(set)
		}
	}
	if s.NumSteps() < maxPartners {
		t.Fatalf("GS %d steps below partner bound %d — coverage must be broken", s.NumSteps(), maxPartners)
	}
}

func TestGSWithRandomTieBreakStillCovers(t *testing.T) {
	p := pattern.Synthetic(16, 0.5, 128, 5)
	for seed := int64(0); seed < 5; seed++ {
		s := GSWith(p, GSOptions{RandomTieBreak: true, Seed: seed})
		if err := s.CoversPattern(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.CheckPairwise(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestIrregularDispatcher(t *testing.T) {
	p := pattern.PaperP(64)
	for _, alg := range []string{"LS", "PS", "BS", "GS"} {
		s, err := Irregular(alg, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if s.Algorithm != alg {
			t.Fatalf("algorithm = %q, want %q", s.Algorithm, alg)
		}
	}
	if _, err := Irregular("XX", p); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

// Property: all four irregular schedulers cover arbitrary synthetic
// patterns exactly, and the pairwise ones respect one-partner-per-step.
func TestQuickIrregularCoverage(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		d := float64(dRaw%101) / 100
		p := pattern.Synthetic(8, d, 32, seed)
		for _, s := range []*Schedule{LS(p), PS(p), BS(p), GS(p)} {
			if s.CoversPattern(p) != nil || s.Validate() != nil {
				return false
			}
		}
		for _, s := range []*Schedule{PS(p), BS(p), GS(p)} {
			if s.CheckPairwise() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: GS never needs more steps than PS or BS need non-empty steps
// + a small slack... in fact the paper observes GS <= PS/BS below 50%
// density. Here we assert the hard invariants only: GS steps are bounded
// by N-1 when the pattern is a subset of complete exchange with
// symmetric shape... that is not guaranteed for asymmetric patterns, so
// bound by messages instead.
func TestQuickGSStepBound(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		d := float64(dRaw%101) / 100
		p := pattern.Synthetic(8, d, 16, seed)
		s := GS(p)
		if p.Messages() == 0 {
			return s.NumSteps() == 0
		}
		return s.NumSteps() >= 1 && s.NumSteps() <= p.Messages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
