package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/fattree"
	"repro/internal/pattern"
)

// TestLinearExchangeScheduleTable1 reproduces the paper's Table 1: the
// 8-processor LEX schedule where step i delivers into processor i from
// every other processor.
func TestLinearExchangeScheduleTable1(t *testing.T) {
	s := LEX(8, 1)
	if s.NumSteps() != 8 {
		t.Fatalf("steps = %d, want 8", s.NumSteps())
	}
	for i, st := range s.Steps {
		if len(st) != 7 {
			t.Fatalf("step %d has %d transfers, want 7", i, len(st))
		}
		for _, tr := range st {
			if tr.Dst != i {
				t.Fatalf("step %d delivers to %d, want %d", i, tr.Dst, i)
			}
		}
	}
	if err := s.CoversPattern(pattern.CompleteExchange(8, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestPairwiseScheduleTable2 reproduces the paper's Table 2: in step j
// processor i exchanges with i XOR j.
func TestPairwiseScheduleTable2(t *testing.T) {
	s := PEX(8, 1)
	if s.NumSteps() != 7 {
		t.Fatalf("steps = %d, want 7", s.NumSteps())
	}
	// Spot-check the table: step 1 pairs (0,1),(2,3),(4,5),(6,7);
	// step 7 pairs (0,7),(1,6),(2,5),(3,4).
	wantStep1 := map[[2]int]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true, {6, 7}: true}
	wantStep7 := map[[2]int]bool{{0, 7}: true, {1, 6}: true, {2, 5}: true, {3, 4}: true}
	checkPairs(t, s.Steps[0], wantStep1)
	checkPairs(t, s.Steps[6], wantStep7)
	if err := s.CheckPairwise(); err != nil {
		t.Fatal(err)
	}
	if err := s.CoversPattern(pattern.CompleteExchange(8, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestRecursiveScheduleTable3 reproduces the paper's Table 3: lg N steps
// pairing halves, quarters, then neighbors.
func TestRecursiveScheduleTable3(t *testing.T) {
	s := REX(8, 2)
	if s.NumSteps() != 3 {
		t.Fatalf("steps = %d, want 3", s.NumSteps())
	}
	checkPairs(t, s.Steps[0], map[[2]int]bool{{0, 4}: true, {1, 5}: true, {2, 6}: true, {3, 7}: true})
	checkPairs(t, s.Steps[1], map[[2]int]bool{{0, 2}: true, {1, 3}: true, {4, 6}: true, {5, 7}: true})
	checkPairs(t, s.Steps[2], map[[2]int]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true, {6, 7}: true})
	// Message size stays at n*N/2 at every step (the paper's point about
	// REX's store-and-forward overhead).
	for si, st := range s.Steps {
		for _, tr := range st {
			if tr.Bytes != 2*8/2 {
				t.Fatalf("step %d message %d bytes, want %d", si, tr.Bytes, 8)
			}
		}
	}
}

// TestBalancedScheduleTable4 reproduces the paper's Table 4: pairwise
// exchange over virtual numbering. Step 1 pairs (0,7),(1,2),(3,4),(5,6),
// mixing local and cross-cluster exchanges.
func TestBalancedScheduleTable4(t *testing.T) {
	s := BEX(8, 1)
	if s.NumSteps() != 7 {
		t.Fatalf("steps = %d, want 7", s.NumSteps())
	}
	checkPairs(t, s.Steps[0], map[[2]int]bool{{0, 7}: true, {1, 2}: true, {3, 4}: true, {5, 6}: true})
	if err := s.CheckPairwise(); err != nil {
		t.Fatal(err)
	}
	if err := s.CoversPattern(pattern.CompleteExchange(8, 1)); err != nil {
		t.Fatal(err)
	}
}

func checkPairs(t *testing.T, st Step, want map[[2]int]bool) {
	t.Helper()
	got := map[[2]int]bool{}
	for _, tr := range st {
		a, b := tr.Src, tr.Dst
		if a > b {
			a, b = b, a
		}
		got[[2]int{a, b}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v; got %v", p, got)
		}
	}
}

func TestBEXPartnerIsInvolution(t *testing.T) {
	for _, n := range []int{8, 32, 256} {
		for j := 1; j < n; j++ {
			for i := 0; i < n; i++ {
				p := BEXPartner(i, j, n)
				if p < 0 || p >= n || p == i {
					t.Fatalf("BEXPartner(%d,%d,%d) = %d", i, j, n, p)
				}
				if back := BEXPartner(p, j, n); back != i {
					t.Fatalf("BEXPartner not involution: (%d,%d,%d) -> %d -> %d", i, j, n, p, back)
				}
			}
		}
	}
}

func TestPEXCoversAllSizes(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		s := PEX(n, 10)
		if err := s.CoversPattern(pattern.CompleteExchange(n, 10)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := s.CheckPairwise(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBEXCoversAllSizes(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		s := BEX(n, 10)
		if err := s.CoversPattern(pattern.CompleteExchange(n, 10)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := s.CheckPairwise(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCheckNRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PEX(%d) should panic", n)
				}
			}()
			PEX(n, 1)
		}()
	}
}

// TestBEXSpreadsGlobalExchanges verifies the paper's Section 3.4 claim:
// on a 32-node machine PEX packs its root-crossing exchanges into 3N/4 of
// the steps (16 per step there, 0 elsewhere), while BEX spreads them
// across all N-1 steps.
func TestBEXSpreadsGlobalExchanges(t *testing.T) {
	topo := fattree.MustNew(32)
	pexCounts := PEX(32, 1).GlobalExchangesPerStep(topo)
	bexCounts := BEX(32, 1).GlobalExchangesPerStep(topo)

	// PEX is all-or-nothing: a step either crosses the top with every
	// pair (16 of them) or not at all. With the 16-node-half boundary of
	// a 32-node partition, 16 of the 31 steps are all-global. (The
	// paper's "3N/4 steps" figure counts crossings one binary level
	// lower; the concentration-vs-spread contrast is the same.)
	pexGlobalSteps, pexTotal := 0, 0
	for _, c := range pexCounts {
		pexTotal += c
		if c > 0 {
			pexGlobalSteps++
			if c != 16 {
				t.Fatalf("PEX global step has %d crossings, want 16 (all-or-nothing)", c)
			}
		}
	}
	if pexGlobalSteps != 16 {
		t.Fatalf("PEX has %d global steps, want 16", pexGlobalSteps)
	}

	bexTotal, bexStepsWithGlobal := 0, 0
	for _, c := range bexCounts {
		bexTotal += c
		if c > 0 {
			bexStepsWithGlobal++
		}
	}
	if bexTotal != pexTotal {
		t.Fatalf("total global exchanges differ: BEX %d vs PEX %d", bexTotal, pexTotal)
	}
	// BEX distributes global exchanges over every one of the N-1 steps.
	if bexStepsWithGlobal != 31 {
		t.Fatalf("BEX has global exchanges in %d steps, want all 31", bexStepsWithGlobal)
	}
}

func TestREXStepsAndSizes(t *testing.T) {
	for _, n := range []int{2, 8, 32, 256} {
		s := REX(n, 4)
		if s.NumSteps() != LgN(n) {
			t.Fatalf("REX(%d) steps = %d, want %d", n, s.NumSteps(), LgN(n))
		}
		for _, st := range s.Steps {
			if len(st) != n {
				t.Fatalf("REX(%d) step size %d, want %d transfers", n, len(st), n)
			}
			for _, tr := range st {
				if tr.Bytes != 4*n/2 {
					t.Fatalf("REX(%d) message %d, want %d", n, tr.Bytes, 4*n/2)
				}
			}
		}
		if err := s.CheckPairwise(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLgN(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 32: 5, 256: 8}
	for n, want := range cases {
		if got := LgN(n); got != want {
			t.Errorf("LgN(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestScheduleTableRendering(t *testing.T) {
	s := PEX(4, 1)
	table := s.Table()
	if table == "" {
		t.Fatal("empty table")
	}
	// Step 1 of PEX(4) pairs (0,1) and (2,3).
	if want := "0<->1"; !contains(table, want) {
		t.Fatalf("table missing %q:\n%s", want, table)
	}
	if want := "2<->3"; !contains(table, want) {
		t.Fatalf("table missing %q:\n%s", want, table)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: every regular schedule validates and PEX/BEX cover the
// complete exchange for random sizes.
func TestQuickRegularSchedulesValid(t *testing.T) {
	f := func(sizeRaw uint16, nIdx uint8) bool {
		ns := []int{2, 4, 8, 16, 32}
		n := ns[int(nIdx)%len(ns)]
		size := int(sizeRaw % 4096)
		for _, s := range []*Schedule{LEX(n, size), PEX(n, size), BEX(n, size), REX(n, size)} {
			if s.Validate() != nil {
				return false
			}
		}
		if PEX(n, size).CoversPattern(pattern.CompleteExchange(n, size)) != nil {
			return false
		}
		if BEX(n, size).CoversPattern(pattern.CompleteExchange(n, size)) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftSchedule(t *testing.T) {
	s := Shift(8, 3, 100)
	if s.NumSteps() != 1 || len(s.Steps[0]) != 8 {
		t.Fatalf("shift shape: %d steps", s.NumSteps())
	}
	want := pattern.New(8)
	for i := 0; i < 8; i++ {
		want[i][(i+3)%8] = 100
	}
	if err := s.CoversPattern(want); err != nil {
		t.Fatal(err)
	}
	// Negative and wrapped offsets normalize.
	if Shift(8, -1, 10).Steps[0][0].Dst != 7 {
		t.Fatal("negative offset should wrap")
	}
	if Shift(8, 8, 10).NumSteps() != 0 {
		t.Fatal("zero-offset shift should be empty")
	}
}

func TestShiftExecutesWithoutDeadlock(t *testing.T) {
	for _, offset := range []int{1, 3, 7, 15} {
		d, err := Run(Shift(16, offset, 512), cfg())
		if err != nil {
			t.Fatalf("offset %d: %v", offset, err)
		}
		if d <= 0 {
			t.Fatalf("offset %d: zero duration", offset)
		}
	}
}

func TestShiftNearNeighborFasterThanFar(t *testing.T) {
	// A shift by 1 stays mostly inside clusters; a shift by N/2 crosses
	// the root with every message and contends on the thinned links.
	near, err := Run(Shift(32, 1, 4096), cfg())
	if err != nil {
		t.Fatal(err)
	}
	far, err := Run(Shift(32, 16, 4096), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Fatalf("near shift (%v) should beat cross-root shift (%v)", near, far)
	}
}
