package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/pattern"
)

func TestCrystalRouterDeliversCompleteExchange(t *testing.T) {
	p := pattern.CompleteExchange(8, 128)
	d, err := RunCrystalRouter(p, network.DefaultConfig())
	if err != nil {
		t.Fatalf("RunCrystalRouter: %v", err)
	}
	if d <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestCrystalRouterDeliversSparse(t *testing.T) {
	p := pattern.New(16)
	p[0][15] = 100
	p[7][3] = 50
	p[12][1] = 200
	d, err := RunCrystalRouter(p, network.DefaultConfig())
	if err != nil {
		t.Fatalf("RunCrystalRouter: %v", err)
	}
	if d <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestCrystalRouterEmptyPattern(t *testing.T) {
	// Even an empty pattern performs the lg N exchange rounds (that is
	// the crystal router's fixed cost).
	d, err := RunCrystalRouter(pattern.New(8), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("rounds should still cost time")
	}
}

func TestCrystalRouterRejectsBadSize(t *testing.T) {
	if _, err := RunCrystalRouter(pattern.New(6), network.DefaultConfig()); err == nil {
		t.Fatal("non power of two should fail")
	}
}

func TestCrystalRouterVsGreedyRegimes(t *testing.T) {
	cfg := network.DefaultConfig()
	// Sparse pattern: direct greedy scheduling beats store-and-forward
	// (few messages, little to combine, forwarding is pure overhead).
	sparse := pattern.Synthetic(32, 0.10, 1024, 9)
	cr, err := RunCrystalRouter(sparse, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Run(GS(sparse), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gs >= cr {
		t.Fatalf("GS (%v) should beat the crystal router (%v) on sparse patterns", gs, cr)
	}
	// Dense small-message pattern: the router's lg N combined exchanges
	// amortize the 88 us per-message cost and win — the same trade that
	// makes REX win complete exchanges at small sizes.
	dense := pattern.Synthetic(32, 0.50, 256, 9)
	cr2, err := RunCrystalRouter(dense, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs2, err := Run(GS(dense), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cr2 >= gs2 {
		t.Fatalf("crystal router (%v) should beat GS (%v) on dense small-message patterns", cr2, gs2)
	}
}

func TestCrystalRouterDeterministic(t *testing.T) {
	p := pattern.Synthetic(16, 0.4, 256, 3)
	a, err := RunCrystalRouter(p, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrystalRouter(p, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// Property: the router's internal delivery verification passes for
// arbitrary synthetic patterns (it returns an error when any message is
// lost or corrupted).
func TestQuickCrystalRouterDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed int64, dRaw uint8) bool {
		d := float64(dRaw%101) / 100
		p := pattern.Synthetic(8, d, 64, seed)
		dur, err := RunCrystalRouter(p, network.DefaultConfig())
		return err == nil && dur > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
