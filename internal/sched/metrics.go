package sched

import (
	"fmt"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Metrics is the full measurement of one algorithm run: the makespan
// plus schedule statistics and the network-level signals the rich
// Result API surfaces.
type Metrics struct {
	Elapsed sim.Time // completion time of the slowest node

	// Schedule statistics. For schedule-backed algorithms they describe
	// the executed schedule exactly; for program-backed algorithms
	// Steps is the algorithm's logical step count (0 when it has none)
	// and Messages/TotalBytes count the wire messages the program
	// actually sent — which for store-and-forward algorithms (REX, the
	// crystal router) include forwarded traffic.
	Steps      int
	Messages   int
	TotalBytes int64
	MaxFanIn   int // max simultaneous inbound transfers at one node in a step

	// StepDone[i] is the virtual time at which the last node finished
	// step i's transfers. Non-nil only for schedule-backed runs.
	StepDone []sim.Time

	// LevelUtilization maps each topology level to carried bytes over
	// level capacity x makespan; level 0 is the node links. For the
	// default fat tree the levels are the tree levels.
	LevelUtilization map[int]float64

	// LinkUtilization lists every link that carried traffic, in
	// topology index order — the per-link view behind the per-level
	// aggregate above.
	LinkUtilization []network.LinkUtil

	// Data-network totals: flow count and wire bytes (user bytes plus
	// packetization overhead) across the run.
	Flows     int
	WireBytes int64

	// Faults reports what Request.Faults did to the run (the zero value
	// for a fault-free run): events applied, links killed/degraded,
	// stragglers, flows rerouted, background traffic injected.
	Faults network.FaultStats

	// Trace holds per-message events when Request.Trace was set.
	Trace *cmmd.Trace
}

// newMachine builds a machine configured per the request: the data
// topology (the CM-5 fat tree when unset), async sends, tracing, and
// the flow observer attached before anything runs.
func newMachine(n int, req Request) (*cmmd.Machine, error) {
	var (
		m   *cmmd.Machine
		err error
	)
	if req.Topo != nil {
		if req.Topo.N() != n {
			return nil, fmt.Errorf("sched: topology %s has %d nodes, run needs %d",
				req.Topo.Name(), req.Topo.N(), n)
		}
		m, err = cmmd.NewMachineOn(req.Topo, req.Cfg)
	} else {
		m, err = cmmd.NewMachine(n, req.Cfg)
	}
	if err != nil {
		return nil, err
	}
	if req.Async {
		m.SetAsyncSends(true)
	}
	if req.Trace {
		m.EnableTrace()
	}
	if req.Obs != nil {
		m.Net().SetObserver(req.Obs)
	}
	if req.Met != nil {
		m.SetMetrics(req.Met)
	}
	// Timeline before faults: ApplyFaults wraps its events with instant
	// recorders only when a timeline is already attached.
	if req.Timeline != nil {
		m.SetTimeline(req.Timeline)
	}
	if err := m.ApplyFaults(req.Faults); err != nil {
		return nil, err
	}
	return m, nil
}

// finishMetrics fills the network-side fields common to every run.
func finishMetrics(met *Metrics, m *cmmd.Machine, elapsed sim.Time) {
	met.Elapsed = elapsed
	met.LevelUtilization = m.Net().LevelUtilization(elapsed)
	met.LinkUtilization = m.Net().LinkUtilization(elapsed)
	met.Flows = m.Net().TotalFlows()
	met.WireBytes = m.Net().TotalWireBytes()
	met.Faults = m.FaultStats()
	met.Trace = m.Trace()
}

// ExecuteSchedule runs an explicit schedule on a fresh machine
// configured per the request and returns the full metrics. This is the
// generic executor behind every schedule-backed registry algorithm, and
// the path raw schedules (cm5.ScheduleJob) run through.
func ExecuteSchedule(s *Schedule, req Request) (*Metrics, error) {
	// Validate before computing stats: MaxFanIn indexes by transfer
	// endpoint, so a malformed schedule must error here, not panic.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, err := newMachine(s.N, req)
	if err != nil {
		return nil, err
	}
	met := &Metrics{
		Steps:      s.NumSteps(),
		Messages:   s.Messages(),
		TotalBytes: s.TotalBytes(),
		MaxFanIn:   s.MaxFanIn(),
		StepDone:   make([]sim.Time, len(s.Steps)),
	}
	hooks := DataHooks{OnStepDone: func(step, node int, at sim.Time) {
		if at > met.StepDone[step] {
			met.StepDone[step] = at
		}
	}}
	elapsed, err := RunOn(m, s, hooks)
	if err != nil {
		return nil, err
	}
	finishMetrics(met, m, elapsed)
	if req.Met != nil {
		req.Met.SchedSteps.Add(int64(met.Steps))
	}
	// Step spans derive from the executor's StepDone marks: step i runs
	// from the previous step's completion (the schedule is globally
	// step-synchronized) to its own.
	if req.Timeline != nil {
		prev := sim.Time(0)
		for i, at := range met.StepDone {
			if at > 0 {
				req.Timeline.RecordSpan(obs.Span{
					Cat: "sched", Name: fmt.Sprintf("step %d", i+1), Tid: -1,
					Start: int64(prev), End: int64(at),
				})
				prev = at
			}
		}
	}
	return met, nil
}

// runProgramMetrics runs a node program on a fresh machine configured
// per the request. steps is the algorithm's logical step count.
func runProgramMetrics(n, steps int, req Request, program func(*cmmd.Node)) (*Metrics, error) {
	m, err := newMachine(n, req)
	if err != nil {
		return nil, err
	}
	elapsed, err := m.Run(program)
	if err != nil {
		return nil, err
	}
	met := &Metrics{Steps: steps}
	met.Messages = m.Net().TotalFlows()
	met.TotalBytes = m.UserBytesSent()
	finishMetrics(met, m, elapsed)
	if req.Met != nil {
		req.Met.SchedSteps.Add(int64(steps))
	}
	return met, nil
}

// runBroadcastMetrics is runProgramMetrics for the broadcast programs
// (root already validated by the registry).
func runBroadcastMetrics(req Request, steps int, program func(*cmmd.Node)) (*Metrics, error) {
	return runProgramMetrics(req.N, steps, req, program)
}

// runREXMetrics executes the store-and-forward recursive exchange; the
// schedule view supplies the fan-in bound while the counters report the
// combined messages actually sent.
func runREXMetrics(req Request) (*Metrics, error) {
	met, err := runProgramMetrics(req.N, LgN(req.N), req, func(nd *cmmd.Node) {
		ExecuteREXNode(nd, req.Bytes)
	})
	if err != nil {
		return nil, err
	}
	met.MaxFanIn = 1 // pairwise at every step
	return met, nil
}

// runCrystalMetrics executes the crystal router on the request pattern.
func runCrystalMetrics(req Request) (*Metrics, error) {
	n := req.Pattern.N()
	m, err := newMachine(n, req)
	if err != nil {
		return nil, err
	}
	elapsed, err := runCrystalOn(m, req.Pattern)
	if err != nil {
		return nil, err
	}
	met := &Metrics{Steps: LgN(n), MaxFanIn: 1}
	met.Messages = m.Net().TotalFlows()
	met.TotalBytes = m.UserBytesSent()
	finishMetrics(met, m, elapsed)
	return met, nil
}

// runCollectiveMetrics executes a collective node program.
func runCollectiveMetrics(name string, req Request) (*Metrics, error) {
	program, err := cmmd.CollectiveProgram(name, req.N, req.Bytes)
	if err != nil {
		return nil, err
	}
	return runProgramMetrics(req.N, 0, req, program)
}
