package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sim"
)

func cfg() network.Config { return network.DefaultConfig() }

func mustRun(t *testing.T, s *Schedule) sim.Time {
	t.Helper()
	d, err := Run(s, cfg())
	if err != nil {
		t.Fatalf("Run(%s): %v", s.Algorithm, err)
	}
	return d
}

func TestRunPEXCompletes(t *testing.T) {
	d := mustRun(t, PEX(8, 256))
	if d <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestRunLEXCompletes(t *testing.T) {
	d := mustRun(t, LEX(8, 256))
	if d <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestRunBEXCompletes(t *testing.T) {
	mustRun(t, BEX(8, 256))
}

func TestLEXMuchSlowerThanPEX(t *testing.T) {
	// The paper's headline synchronous-communication effect: LEX
	// serializes each step at one receiver.
	lex := mustRun(t, LEX(32, 256))
	pex := mustRun(t, PEX(32, 256))
	if lex < 4*pex {
		t.Fatalf("LEX (%v) should be >= 4x PEX (%v)", lex, pex)
	}
}

func TestBEXNoSlowerThanPEXLargeMessages(t *testing.T) {
	pex := mustRun(t, PEX(32, 1920))
	bex := mustRun(t, BEX(32, 1920))
	// Paper Figure 5: BEX beats PEX for large messages on 32 nodes.
	if bex > pex {
		t.Fatalf("BEX (%v) slower than PEX (%v) at 1920B", bex, pex)
	}
}

func TestREXRunCompletes(t *testing.T) {
	d, err := RunREX(8, 256, cfg())
	if err != nil {
		t.Fatalf("RunREX: %v", err)
	}
	if d <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestREXBestAtZeroBytes(t *testing.T) {
	// Paper Figure 6: at 0 bytes REX wins for all machine sizes (lg N
	// rendezvous instead of N-1).
	rex, err := RunREX(32, 0, cfg())
	if err != nil {
		t.Fatal(err)
	}
	pex := mustRun(t, PEX(32, 0))
	bex := mustRun(t, BEX(32, 0))
	if rex >= pex || rex >= bex {
		t.Fatalf("REX (%v) should beat PEX (%v) and BEX (%v) at 0 bytes", rex, pex, bex)
	}
}

func TestExchangeDispatcher(t *testing.T) {
	for _, alg := range []string{"LEX", "PEX", "REX", "BEX"} {
		d, err := Exchange(alg, 8, 64, cfg())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d <= 0 {
			t.Fatalf("%s: zero duration", alg)
		}
	}
	if _, err := Exchange("WTF", 8, 64, cfg()); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestRunOnSizeMismatch(t *testing.T) {
	m := cmmd.MustNewMachine(4, cfg())
	if _, err := RunOn(m, PEX(8, 1), DataHooks{}); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestRunWithDataHooksDelivery(t *testing.T) {
	// Move real payloads through a PS schedule and verify every message
	// arrives with the right content.
	p := pattern.PaperP(8)
	s := PS(p)
	m := cmmd.MustNewMachine(8, cfg())
	received := make([][]bool, 8)
	for i := range received {
		received[i] = make([]bool, 8)
	}
	hooks := DataHooks{
		OnSend: func(step, src, dst int) []byte {
			b := make([]byte, p[src][dst])
			for k := range b {
				b[k] = byte(src*8 + dst)
			}
			return b
		},
		OnRecv: func(step int, msg cmmd.Message) {
			if len(msg.Data) == 0 {
				return
			}
			src := int(msg.Data[0]) / 8
			dst := int(msg.Data[0]) % 8
			received[src][dst] = true
		},
	}
	if _, err := RunOn(m, s, hooks); err != nil {
		t.Fatalf("RunOn: %v", err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if (p[i][j] > 0) != received[i][j] {
				t.Fatalf("message %d->%d: pattern %d, received %v", i, j, p[i][j], received[i][j])
			}
		}
	}
}

func TestIrregularSchedulesExecute(t *testing.T) {
	p := pattern.Synthetic(16, 0.4, 256, 11)
	for _, s := range []*Schedule{LS(p), PS(p), BS(p), GS(p)} {
		d, err := Run(s, cfg())
		if err != nil {
			t.Fatalf("%s: %v", s.Algorithm, err)
		}
		if d <= 0 {
			t.Fatalf("%s: zero duration", s.Algorithm)
		}
	}
}

func TestGreedyBeatsLinearOnSparsePatterns(t *testing.T) {
	// Paper Table 11 shape at low density: GS < PS/BS << LS.
	p := pattern.Synthetic(32, 0.25, 256, 7)
	ls := mustRun(t, LS(p))
	gs := mustRun(t, GS(p))
	if gs >= ls {
		t.Fatalf("GS (%v) should beat LS (%v) at 25%% density", gs, ls)
	}
}

func TestBroadcastAlgorithms(t *testing.T) {
	for _, alg := range []string{"LIB", "REB", "SYS"} {
		d, err := Broadcast(alg, 32, 0, 1024, cfg())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d <= 0 {
			t.Fatalf("%s: zero duration", alg)
		}
	}
	if _, err := Broadcast("NOPE", 32, 0, 1024, cfg()); err == nil {
		t.Fatal("unknown broadcast should error")
	}
	if _, err := Broadcast("REB", 32, 99, 0, cfg()); err == nil {
		t.Fatal("bad root should error")
	}
}

func TestLIBMuchSlowerThanREB(t *testing.T) {
	// Paper Figure 10: "the LIB algorithm performs much worse than the
	// REB algorithm".
	lib, err := RunLIB(32, 0, 1024, cfg())
	if err != nil {
		t.Fatal(err)
	}
	reb, err := RunREB(32, 0, 1024, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if lib < 3*reb {
		t.Fatalf("LIB (%v) should be >= 3x REB (%v)", lib, reb)
	}
}

func TestSystemBcastWinsSmallREBWinsLarge(t *testing.T) {
	// Paper Figures 10/11: the system broadcast wins for small messages;
	// REB overtakes beyond about 1 KB on 32 nodes.
	sysSmall, _ := RunSystemBcast(32, 0, 64, cfg())
	rebSmall, _ := RunREB(32, 0, 64, cfg())
	if sysSmall >= rebSmall {
		t.Fatalf("system bcast (%v) should beat REB (%v) at 64B", sysSmall, rebSmall)
	}
	sysBig, _ := RunSystemBcast(32, 0, 4096, cfg())
	rebBig, _ := RunREB(32, 0, 4096, cfg())
	if rebBig >= sysBig {
		t.Fatalf("REB (%v) should beat system bcast (%v) at 4KB", rebBig, sysBig)
	}
}

func TestREBCrossoverGrowsWithMachineSize(t *testing.T) {
	// Paper Figure 11: at 256 nodes REB only wins for messages over
	// ~2KB; the crossover moves right as N grows.
	crossover := func(n int) int {
		for _, size := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
			sys, _ := RunSystemBcast(n, 0, size, cfg())
			reb, _ := RunREB(n, 0, size, cfg())
			if reb < sys {
				return size
			}
		}
		return 1 << 20
	}
	c32, c256 := crossover(32), crossover(256)
	if c32 >= c256 {
		t.Fatalf("crossover should grow with N: 32 nodes %dB, 256 nodes %dB", c32, c256)
	}
}

func TestREBNonZeroRoot(t *testing.T) {
	d, err := RunREB(16, 5, 512, cfg())
	if err != nil {
		t.Fatalf("RunREB root 5: %v", err)
	}
	if d <= 0 {
		t.Fatal("zero duration")
	}
}

func TestREBPeerTable(t *testing.T) {
	// n=8: step 1 sends 0->4; step 2: 0->2, 4->6; step 3: evens->odds.
	cases := []struct {
		r, j, n  int
		peer     int
		send, ok bool
	}{
		{0, 1, 8, 4, true, true},
		{4, 1, 8, 0, false, true},
		{2, 1, 8, -1, false, false},
		{0, 2, 8, 2, true, true},
		{4, 2, 8, 6, true, true},
		{2, 2, 8, 0, false, true},
		{6, 3, 8, 7, true, true},
		{7, 3, 8, 6, false, true},
	}
	for _, c := range cases {
		peer, send := REBPeer(c.r, c.j, c.n)
		if !c.ok {
			if peer >= 0 {
				t.Fatalf("REBPeer(%d,%d,%d) = %d, want idle", c.r, c.j, c.n, peer)
			}
			continue
		}
		if peer != c.peer || send != c.send {
			t.Fatalf("REBPeer(%d,%d,%d) = (%d,%v), want (%d,%v)", c.r, c.j, c.n, peer, send, c.peer, c.send)
		}
	}
}

// Property: every irregular schedule for random patterns executes to
// completion (no rendezvous deadlock) with a positive makespan.
func TestQuickSchedulesExecuteWithoutDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed int64, dRaw uint8, algRaw uint8) bool {
		d := float64(dRaw%101) / 100
		p := pattern.Synthetic(8, d, 64, seed)
		if p.Messages() == 0 {
			return true
		}
		var s *Schedule
		switch algRaw % 4 {
		case 0:
			s = LS(p)
		case 1:
			s = PS(p)
		case 2:
			s = BS(p)
		default:
			s = GS(p)
		}
		dur, err := Run(s, cfg())
		return err == nil && dur > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
