package sched

import (
	"fmt"
	"sort"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// Adaptive Scheduling (registry entry AS) goes beyond the paper's
// static schedulers: instead of planning every step up front, it plans
// the pattern in phases and re-plans each phase mid-run from feedback.
// A phase covers about half the remaining transfers as a sequence of
// greedy matchings (every node in at most one pairwise exchange per
// round), chosen longest-estimated-first. Within a phase nodes run
// their rounds with no global synchronization — every round is a
// matching executed in a pairwise-consistent global order, so
// rendezvous waits only ever point at earlier rounds and can never
// cycle — and a control-network barrier separates phases, so each
// re-plan sees every measurement the finished phase produced.
//
// Two feedback signals size the estimates. The data network's
// FlowObserver reports each flow's achieved wire rate, which exposes
// dead-link detours, degraded links and cross-traffic congestion; the
// node programs time each transfer end to end (rendezvous wait and
// overheads included), which exposes stragglers — their slowdown is
// node-local and invisible to wire rates. A transfer's estimate uses
// the slower of the two signals for its pair, so a pair flagged slow
// by either gets front-loaded, overlapping with healthy pairs instead
// of stretching the schedule's tail.
//
// The planner is shared by every node program. The simulation engine
// runs exactly one process at an instant with happens-before edges on
// every control transfer, so the shared state needs no locking and the
// schedule stays bit-deterministic: plans are computed from
// deterministic simulation observations at deterministic points.

// pairKey addresses one directed (src, dst) pair.
type pairKey struct{ src, dst int }

// adaptivePlanner holds the shared re-planning state of one AS run.
type adaptivePlanner struct {
	cfg       network.Config
	n         int
	remaining []Transfer
	wireRate  map[pairKey]float64 // measured wire bytes/s, latest flow wins
	nodeRate  map[pairKey]float64 // end-to-end bytes/s timed by the sender
	phases    [][]Step            // memoized phase plans; last one empty
	starts    []int               // each phase's first global round number
	rounds    int                 // total rounds planned so far

	// Observability sinks (both nil-safe; see Request.Met/Timeline).
	met *obs.SimMetrics
	tl  *obs.Timeline
}

func newAdaptivePlanner(p pattern.Matrix, cfg network.Config) *adaptivePlanner {
	n := p.N()
	ad := &adaptivePlanner{
		cfg: cfg, n: n,
		wireRate: map[pairKey]float64{},
		nodeRate: map[pairKey]float64{},
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if p[i][j] > 0 {
				ad.remaining = append(ad.remaining, Transfer{Src: i, Dst: j, Bytes: p[i][j]})
			}
		}
	}
	return ad
}

// FlowStarted implements network.FlowObserver.
func (ad *adaptivePlanner) FlowStarted(network.FlowInfo) {}

// FlowFinished records the pair's achieved wire rate. Background
// cross-traffic flows count too: they carry the same information about
// the pair's path.
func (ad *adaptivePlanner) FlowFinished(f network.FlowInfo) {
	if d := (f.End - f.Start).Seconds(); d > 0 {
		ad.wireRate[pairKey{f.Src, f.Dst}] = float64(f.WireBytes) / d
	}
}

// transferTimed records a sender's end-to-end measurement of one
// transfer: user bytes over the full Send duration.
func (ad *adaptivePlanner) transferTimed(src, dst, bytes int, took sim.Time) {
	if d := took.Seconds(); d > 0 {
		ad.nodeRate[pairKey{src, dst}] = float64(bytes) / d
	}
}

// estimate returns the transfer's expected seconds under the slower of
// its pair's two measured rates (the node interface rate until a
// measurement exists). Wire rates apply to wire bytes, end-to-end
// rates to user bytes; the estimate only ranks transfers, so the two
// scales mixing is fine — slow is slow.
func (ad *adaptivePlanner) estimate(tr Transfer) float64 {
	k := pairKey{tr.Src, tr.Dst}
	est := float64(ad.cfg.WireBytes(tr.Bytes)) / ad.cfg.NodeLinkRate
	if r, ok := ad.wireRate[k]; ok && r > 0 {
		if e := float64(ad.cfg.WireBytes(tr.Bytes)) / r; e > est {
			est = e
		}
	}
	if r, ok := ad.nodeRate[k]; ok && r > 0 {
		if e := float64(tr.Bytes) / r; e > est {
			est = e
		}
	}
	return est
}

// phase returns phase k's rounds, planning on first request. Nodes
// only ask for phase k after the barrier that ends phase k-1, so the
// plan sees every flow and transfer measurement the previous phases
// produced. now is the asking node's current sim time, stamping the
// re-plan instant when this call plans. An empty phase means the
// schedule is complete.
func (ad *adaptivePlanner) phase(k int, now sim.Time) []Step {
	for len(ad.phases) <= k {
		ad.planPhase(now)
	}
	return ad.phases[k]
}

// planPhase plans the next phase: enough greedy-matching rounds to
// cover at least half the transfers still unscheduled, under the
// current rate estimates.
func (ad *adaptivePlanner) planPhase(now sim.Time) {
	ad.starts = append(ad.starts, ad.rounds)
	if len(ad.remaining) == 0 {
		ad.phases = append(ad.phases, nil)
		return
	}
	target := (len(ad.remaining) + 1) / 2
	var steps []Step
	for covered := 0; covered < target; {
		st := ad.planRound()
		if len(st) == 0 {
			break
		}
		steps = append(steps, st)
		covered += len(st)
	}
	ad.rounds += len(steps)
	ad.phases = append(ad.phases, steps)
	if ad.met != nil {
		ad.met.ASReplans.Add(1)
		ad.met.SchedPhases.Add(1)
	}
	ad.tl.RecordInstant(obs.Instant{
		Cat: "sched", Name: fmt.Sprintf("replan phase %d", len(ad.phases)), Tid: -1,
		At: int64(now), Args: []obs.Arg{{Key: "rounds", Val: int64(len(steps))}},
	})
}

// planRound builds one round: remaining transfers sorted longest
// estimate first (ties by (src, dst) so the order is total), then a
// greedy matching over free nodes. When both directions of a pair
// remain they travel together in the paper's Figure-2 order — the
// higher rank's send listed first, so the lower rank receives before
// sending and the exchange cannot deadlock.
func (ad *adaptivePlanner) planRound() Step {
	est := make([]float64, len(ad.remaining))
	order := make([]int, len(ad.remaining))
	for i, tr := range ad.remaining {
		est[i] = ad.estimate(tr)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if est[ia] != est[ib] {
			return est[ia] > est[ib]
		}
		ta, tb := ad.remaining[ia], ad.remaining[ib]
		if ta.Src != tb.Src {
			return ta.Src < tb.Src
		}
		return ta.Dst < tb.Dst
	})
	reverse := make(map[pairKey]int, len(ad.remaining))
	for i, tr := range ad.remaining {
		reverse[pairKey{tr.Src, tr.Dst}] = i
	}
	busy := make([]bool, ad.n)
	taken := make([]bool, len(ad.remaining))
	var st Step
	for _, i := range order {
		tr := ad.remaining[i]
		if taken[i] || busy[tr.Src] || busy[tr.Dst] {
			continue
		}
		busy[tr.Src], busy[tr.Dst] = true, true
		taken[i] = true
		if j, ok := reverse[pairKey{tr.Dst, tr.Src}]; ok && !taken[j] {
			taken[j] = true
			rev := ad.remaining[j]
			if tr.Src > tr.Dst {
				st = append(st, tr, rev)
			} else {
				st = append(st, rev, tr)
			}
		} else {
			st = append(st, tr)
		}
	}
	var rest []Transfer
	for i, tr := range ad.remaining {
		if !taken[i] {
			rest = append(rest, tr)
		}
	}
	ad.remaining = rest
	return st
}

// runNode executes one node's share of the adaptive schedule: its
// transfers of each phase, rounds in plan order (tagged by global
// round number, so both parties of a pair name the same rendezvous),
// then the control-network barrier that lets the planner fold the
// phase's measurements into the next plan.
func (ad *adaptivePlanner) runNode(nd *cmmd.Node) {
	me := nd.ID()
	for k := 0; ; k++ {
		start := nd.Now()
		steps := ad.phase(k, start)
		if len(steps) == 0 {
			return
		}
		base := ad.starts[k]
		for j, st := range steps {
			tag := base + j
			for _, tr := range st {
				switch me {
				case tr.Src:
					before := nd.Now()
					nd.SendN(tr.Dst, tag, tr.Bytes)
					ad.transferTimed(tr.Src, tr.Dst, tr.Bytes, nd.Now()-before)
				case tr.Dst:
					nd.Recv(tr.Src, tag)
				}
			}
		}
		nd.Barrier()
		// One node records the phase span — from its entry into the
		// phase to the barrier that ends it — on the run-scoped track.
		if me == 0 {
			ad.tl.RecordSpan(obs.Span{
				Cat: "sched", Name: fmt.Sprintf("phase %d", k+1), Tid: -1,
				Start: int64(start), End: int64(nd.Now()),
				Args: []obs.Arg{{Key: "rounds", Val: int64(len(steps))}},
			})
		}
	}
}

// teeObserver feeds the adaptive planner and the caller's observer (if
// any) from one flow event stream.
type teeObserver struct {
	planner *adaptivePlanner
	obs     network.FlowObserver
}

func (t *teeObserver) FlowStarted(f network.FlowInfo) {
	t.planner.FlowStarted(f)
	if t.obs != nil {
		t.obs.FlowStarted(f)
	}
}

func (t *teeObserver) FlowFinished(f network.FlowInfo) {
	t.planner.FlowFinished(f)
	if t.obs != nil {
		t.obs.FlowFinished(f)
	}
}

// runAdaptiveMetrics executes the adaptive scheduler on the request
// pattern. Messages and TotalBytes describe the pattern's direct
// deliveries (AS never forwards), so background fault traffic does not
// leak into the schedule statistics; Steps is the number of matching
// rounds the run actually took — under faults, usually different from
// GS's static step count.
func runAdaptiveMetrics(req Request) (*Metrics, error) {
	p := req.Pattern
	m, err := newMachine(p.N(), req)
	if err != nil {
		return nil, err
	}
	ad := newAdaptivePlanner(p, req.Cfg)
	ad.met = req.Met
	ad.tl = req.Timeline
	m.Net().SetObserver(&teeObserver{planner: ad, obs: req.Obs})
	elapsed, err := m.Run(func(nd *cmmd.Node) { ad.runNode(nd) })
	if err != nil {
		return nil, err
	}
	met := &Metrics{
		Steps:      ad.rounds,
		Messages:   p.Messages(),
		TotalBytes: p.TotalBytes(),
		MaxFanIn:   1, // every round is a matching
	}
	finishMetrics(met, m, elapsed)
	return met, nil
}
