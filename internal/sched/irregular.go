package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/pattern"
)

// LS builds the Linear Scheduling schedule for an irregular pattern
// (paper Section 4.1, Table 7): linear exchange restricted to the
// messages the communication matrix requires. In step i the processors
// with data for processor i send it; everyone else is idle. Steps with no
// communication are dropped.
func LS(m pattern.Matrix) *Schedule {
	n := m.N()
	s := &Schedule{Algorithm: "LS", N: n}
	for i := 0; i < n; i++ {
		var st Step
		for j := 0; j < n; j++ {
			if j != i && m[j][i] > 0 {
				st = append(st, Transfer{Src: j, Dst: i, Bytes: m[j][i]})
			}
		}
		if len(st) > 0 {
			s.Steps = append(s.Steps, st)
		}
	}
	return s
}

// PS builds the Pairwise Scheduling schedule (paper Section 4.2,
// Table 8): pairwise-exchange pairings, with each pair performing an
// exchange, a single send, or nothing, according to the communication
// matrix. Empty steps are dropped (the paper's pattern P completes in 6
// steps rather than PEX's 7).
func PS(m pattern.Matrix) *Schedule {
	return pairedIrregular(m, "PS", func(lo, j, n int) int { return PEXPartner(lo, j) })
}

// BS builds the Balanced Scheduling schedule (paper Section 4.3,
// Table 9): the balanced-exchange pairings filtered by the communication
// matrix.
func BS(m pattern.Matrix) *Schedule {
	return pairedIrregular(m, "BS", func(lo, j, n int) int { return BEXPartner(lo, j, n) })
}

func pairedIrregular(m pattern.Matrix, name string, partner func(lo, j, n int) int) *Schedule {
	n := m.N()
	checkN(n)
	s := &Schedule{Algorithm: name, N: n}
	for j := 1; j < n; j++ {
		var st Step
		for lo := 0; lo < n; lo++ {
			hi := partner(lo, j, n)
			if lo >= hi {
				continue
			}
			// Keep the exchange ordering [hi->lo, lo->hi] when both
			// directions exist; otherwise a single transfer.
			if m[hi][lo] > 0 {
				st = append(st, Transfer{Src: hi, Dst: lo, Bytes: m[hi][lo]})
			}
			if m[lo][hi] > 0 {
				st = append(st, Transfer{Src: lo, Dst: hi, Bytes: m[lo][hi]})
			}
		}
		if len(st) > 0 {
			s.Steps = append(s.Steps, st)
		}
	}
	return s
}

// GSOptions tunes the greedy scheduler.
type GSOptions struct {
	// RandomTieBreak selects candidate partners pseudo-randomly (seeded
	// by Seed) instead of the deterministic next-available scan. Used by
	// the ablation study.
	RandomTieBreak bool
	Seed           int64
}

// GS builds the Greedy Scheduling schedule (paper Section 4.4,
// Figure 12, Table 10) with default options.
func GS(m pattern.Matrix) *Schedule { return GSWith(m, GSOptions{}) }

// GSWith runs the greedy matching of Figure 12: in each iteration every
// processor, in rank order, grabs the next available processor it still
// has to send to; if that partner also has data queued in return, the
// pair performs an exchange. Matched processors are unavailable for the
// rest of the iteration. Iterations repeat until no messages remain.
//
// For a complete exchange this degenerates to pairwise exchange; for
// sparse patterns it usually needs fewer steps than PS/BS because idle
// pairings are never scheduled.
func GSWith(m pattern.Matrix, opts GSOptions) *Schedule {
	n := m.N()
	s := &Schedule{Algorithm: "GS", N: n}
	need := m.Clone()
	remaining := need.Messages()
	var rng *rand.Rand
	if opts.RandomTieBreak {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	guard := 0
	for remaining > 0 {
		guard++
		if guard > n*n+n {
			panic(fmt.Sprintf("sched: GS failed to converge with %d messages left", remaining))
		}
		avail := make([]bool, n)
		for i := range avail {
			avail[i] = true
		}
		var st Step
		for i := 0; i < n; i++ {
			if !avail[i] {
				continue
			}
			j := gsPick(need, avail, i, rng)
			if j < 0 {
				continue
			}
			st = append(st, Transfer{Src: i, Dst: j, Bytes: need[i][j]})
			need[i][j] = 0
			remaining--
			if need[j][i] > 0 {
				st = append(st, Transfer{Src: j, Dst: i, Bytes: need[j][i]})
				need[j][i] = 0
				remaining--
			}
			avail[i], avail[j] = false, false
		}
		if len(st) > 0 {
			s.Steps = append(s.Steps, st)
		}
	}
	return s
}

// gsPick selects the partner processor i sends to this iteration: the
// next available destination scanning upward from i+1 (wrapping), or a
// random available destination under RandomTieBreak. The ascending scan
// makes GS reduce to the round-robin pairwise schedule on a complete
// exchange, the equivalence the paper notes in Section 4.4.
func gsPick(need pattern.Matrix, avail []bool, i int, rng *rand.Rand) int {
	n := need.N()
	var candidates []int
	for off := 1; off < n; off++ {
		j := (i + off) % n
		if !avail[j] || need[i][j] == 0 {
			continue
		}
		if rng == nil {
			return j
		}
		candidates = append(candidates, j)
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}
