package sched

import (
	"fmt"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// crystalHeaderBytes is the per-message routing header the crystal
// router carries for each forwarded item (origin, destination, length).
const crystalHeaderBytes = 8

// RunCrystalRouter executes an irregular communication pattern with the
// crystal router of Fox et al. (Solving Problems on Concurrent
// Processors, 1988) — the hypercube store-and-forward baseline the paper
// cites for dynamic message scheduling (Section 4).
//
// In dimension-order rounds d = lg N - 1 .. 0, every node combines all
// messages it holds (original or forwarded) whose destination differs
// from it in bit d into one packet train and exchanges it with its
// dimension-d neighbor. After lg N rounds every message has arrived.
// Like REX, it trades per-message overhead (only lg N exchanges per
// node) for forwarded bytes and pack/unpack work — a trade that loses to
// the paper's direct schedulers on sparse patterns.
func RunCrystalRouter(p pattern.Matrix, cfg network.Config) (sim.Time, error) {
	n := p.N()
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("sched: crystal router needs a power-of-two machine, got %d", n)
	}
	m, err := cmmd.NewMachine(n, cfg)
	if err != nil {
		return 0, err
	}
	return runCrystalOn(m, p)
}

// runCrystalOn executes the crystal router on an existing (un-run)
// machine, so callers can attach tracing or observers first.
func runCrystalOn(m *cmmd.Machine, p pattern.Matrix) (sim.Time, error) {
	n := p.N()
	delivered := make([][]int, n) // delivered[dst] = bytes received per origin
	for i := range delivered {
		delivered[i] = make([]int, n)
	}
	dur, err := m.Run(func(node *cmmd.Node) {
		me := node.ID()
		var items []crystalItem
		for dst := 0; dst < n; dst++ {
			if p[me][dst] > 0 {
				items = append(items, crystalItem{origin: me, dest: dst, bytes: p[me][dst]})
			}
		}
		for d := LgN(n) - 1; d >= 0; d-- {
			peer := me ^ (1 << uint(d))
			var keep []crystalItem
			sendBytes := 0
			for _, it := range items {
				if (it.dest>>uint(d))&1 != (me>>uint(d))&1 {
					sendBytes += it.bytes + crystalHeaderBytes
				} else {
					keep = append(keep, it)
				}
			}
			node.MemCopy(sendBytes) // pack the outgoing train
			if me < peer {
				node.Recv(peer, d)
				node.SendN(peer, d, sendBytes)
			} else {
				node.SendN(peer, d, sendBytes)
				node.Recv(peer, d)
			}
			// The incoming train is the peer's crossing set for this
			// round; reconstruct it from the global pattern (host-side
			// bookkeeping; the simulated cost is the transfer above plus
			// this unpack copy).
			incoming := crystalCrossing(p, peer, d, n)
			inBytes := 0
			for _, it := range incoming {
				inBytes += it.bytes + crystalHeaderBytes
			}
			node.MemCopy(inBytes) // unpack
			items = append(keep, incoming...)
		}
		for _, it := range items {
			if it.dest != me {
				panic(fmt.Sprintf("sched: crystal router stranded %d->%d at %d", it.origin, it.dest, me))
			}
			delivered[me][it.origin] = it.bytes
		}
	})
	if err != nil {
		return 0, err
	}
	// Verify every message arrived intact.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if p[src][dst] > 0 && delivered[dst][src] != p[src][dst] {
				return 0, fmt.Errorf("sched: crystal router delivered %d of %d bytes for %d->%d",
					delivered[dst][src], p[src][dst], src, dst)
			}
		}
	}
	return dur, nil
}

// crystalCrossing reconstructs the item set node `owner` holds just
// before round d that must cross dimension d. This mirrors the routing
// recursion: a message origin->dest is held at round d by the node whose
// low bits (below the dimensions already routed) match origin and whose
// high routed bits match dest.

// crystalItem is one routed message inside a combined train.
type crystalItem struct{ origin, dest, bytes int }

func crystalCrossing(p pattern.Matrix, owner, d, n int) []crystalItem {
	var out []crystalItem
	lg := LgN(n)
	// Bits lg-1 .. d+1 have been routed: owner's those bits equal the
	// destination's; bits d..0 still equal the origin's.
	highMask := 0
	for b := d + 1; b < lg; b++ {
		highMask |= 1 << uint(b)
	}
	lowMask := (1 << uint(d+1)) - 1
	for src := 0; src < n; src++ {
		if src&lowMask != owner&lowMask {
			continue
		}
		for dst := 0; dst < n; dst++ {
			if p[src][dst] == 0 {
				continue
			}
			if dst&highMask != owner&highMask {
				continue
			}
			if (dst>>uint(d))&1 == (owner>>uint(d))&1 {
				continue // does not cross this round
			}
			out = append(out, crystalItem{src, dst, p[src][dst]})
		}
	}
	return out
}
