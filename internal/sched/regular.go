package sched

import "fmt"

// checkN validates a processor count for the regular algorithms.
func checkN(n int) {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("sched: processor count %d must be a power of two >= 2", n))
	}
}

// LEX builds the Linear Exchange schedule for a complete exchange of
// bytesPerPair bytes between every processor pair (paper Section 3.1,
// Table 1): N steps; in step i every other processor sends its message to
// processor i. Under CMMD's synchronous communication the receiver
// serializes the whole step, which is why LEX performs worst.
func LEX(n, bytesPerPair int) *Schedule {
	checkN(n)
	s := &Schedule{Algorithm: "LEX", N: n}
	for i := 0; i < n; i++ {
		var st Step
		for j := 0; j < n; j++ {
			if j != i {
				st = append(st, Transfer{Src: j, Dst: i, Bytes: bytesPerPair})
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// PEXPartner returns processor i's partner in step j (1 <= j <= N-1) of
// the Pairwise Exchange algorithm: the exclusive-or of its number with j.
func PEXPartner(i, j int) int { return i ^ j }

// PEX builds the Pairwise Exchange schedule (paper Section 3.2, Figure 2,
// Table 2): N-1 steps; in step j processor i exchanges with i XOR j. Each
// exchange is listed [hi->lo, lo->hi] so the lower rank receives first —
// Figure 2's deadlock-free ordering under synchronous sends.
func PEX(n, bytesPerPair int) *Schedule {
	checkN(n)
	s := &Schedule{Algorithm: "PEX", N: n}
	for j := 1; j < n; j++ {
		var st Step
		for lo := 0; lo < n; lo++ {
			hi := PEXPartner(lo, j)
			if lo < hi {
				st = append(st,
					Transfer{Src: hi, Dst: lo, Bytes: bytesPerPair},
					Transfer{Src: lo, Dst: hi, Bytes: bytesPerPair})
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// BEXPartner returns processor i's partner in step j of the Balanced
// Exchange algorithm (paper Section 3.4, Figure 4): pairwise exchange
// applied to the virtual numbering virtual = (physical+1) mod N, with the
// -1 result wrapping to N-1.
func BEXPartner(i, j, n int) int {
	virtual := (i + 1) % n
	node := (virtual ^ j) - 1
	if node == -1 {
		node = n - 1
	}
	return node
}

// BEX builds the Balanced Exchange schedule (paper Section 3.4, Figure 4,
// Table 4). The virtual renumbering staggers cluster boundaries so every
// step mixes intra-cluster and cross-cluster exchanges instead of
// saturating the fat-tree root in a block of steps as PEX does.
func BEX(n, bytesPerPair int) *Schedule {
	checkN(n)
	s := &Schedule{Algorithm: "BEX", N: n}
	for j := 1; j < n; j++ {
		var st Step
		for lo := 0; lo < n; lo++ {
			hi := BEXPartner(lo, j, n)
			if lo < hi {
				st = append(st,
					Transfer{Src: hi, Dst: lo, Bytes: bytesPerPair},
					Transfer{Src: lo, Dst: hi, Bytes: bytesPerPair})
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// REXPartner returns processor i's partner in step k (0-based) of the
// Recursive Exchange algorithm on n processors: the node k/2 positions
// away in the shrinking halves of Figure 3.
func REXPartner(i, k, n int) int {
	span := n >> uint(k) // N / 2^k
	if i%span < span/2 {
		return i + span/2
	}
	return i - span/2
}

// REX builds the Recursive Exchange schedule view (paper Section 3.3,
// Figure 3, Table 3): lg N steps; each message carries bytesPerPair*N/2
// bytes because data for half the machine is forwarded and reshuffled at
// every step. The returned schedule describes the message pattern; the
// executor RunREX additionally charges the store-and-forward pack and
// unpack costs.
func REX(n, bytesPerPair int) *Schedule {
	checkN(n)
	s := &Schedule{Algorithm: "REX", N: n}
	msg := bytesPerPair * n / 2
	for k := 0; n>>uint(k) >= 2; k++ {
		var st Step
		for lo := 0; lo < n; lo++ {
			hi := REXPartner(lo, k, n)
			if lo < hi {
				st = append(st,
					Transfer{Src: hi, Dst: lo, Bytes: msg},
					Transfer{Src: lo, Dst: hi, Bytes: msg})
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// Shift builds the circular-shift pattern the paper lists among the
// regular communications (Section 3): every processor sends bytes to
// (i + offset) mod N in a single step. Transfers are ordered two-phase
// around each cycle of the shift permutation (alternating send-first and
// receive-first processors), so the whole shift completes in two
// parallel waves under synchronous sends instead of cascading serially
// around the ring. N is a power of two, so every cycle has even length
// and the alternation is always consistent.
func Shift(n, offset, bytes int) *Schedule {
	checkN(n)
	offset = ((offset % n) + n) % n
	s := &Schedule{Algorithm: "SHIFT", N: n}
	if offset == 0 {
		return s
	}
	var wave0, wave1 []Transfer
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		for i, pos := start, 0; !seen[i]; i, pos = (i+offset)%n, pos+1 {
			seen[i] = true
			tr := Transfer{Src: i, Dst: (i + offset) % n, Bytes: bytes}
			if pos%2 == 0 {
				wave0 = append(wave0, tr)
			} else {
				wave1 = append(wave1, tr)
			}
		}
	}
	s.Steps = []Step{append(wave0, wave1...)}
	return s
}

// LgN returns log2(n) for power-of-two n.
func LgN(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return lg
}
