package sched

import (
	"testing"

	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/topo"
)

// butterflyOn builds the faults family's shape at test scale: the
// butterfly workload pattern and a hypercube to run it on.
func butterflyOn(t *testing.T, n int) (pattern.Matrix, topo.Topology) {
	t.Helper()
	w, ok := pattern.WorkloadByName("butterfly")
	if !ok {
		t.Fatal("butterfly workload missing from the catalogue")
	}
	tp, err := topo.New("hypercube", n, network.DefaultConfig().TopologyRates())
	if err != nil {
		t.Fatal(err)
	}
	return w.Gen(n, 256, int64(n)), tp
}

func linkDownPlan(t *testing.T, tp topo.Topology) *network.FaultPlan {
	t.Helper()
	plan, err := network.NewFaultPlan("link-down", tp, int64(tp.N()))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestASRegistered(t *testing.T) {
	a, err := Lookup("AS")
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindIrregular {
		t.Fatalf("AS kind = %s, want irregular", a.Kind)
	}
	if !a.Aux {
		t.Error("AS is beyond the paper and must be Aux")
	}
	if a.Doc == "" {
		t.Error("AS has no doc line")
	}
}

// countingObs counts finished flows — the delivered-transfer check for
// a program-backed scheduler with no schedule to cover-check.
type countingObs struct{ started, finished int }

func (c *countingObs) FlowStarted(network.FlowInfo)  { c.started++ }
func (c *countingObs) FlowFinished(network.FlowInfo) { c.finished++ }

// TestASDeliversEveryTransfer: a healthy AS run starts and finishes
// exactly one flow per pattern transfer — everything delivered, nothing
// forwarded, nothing lost.
func TestASDeliversEveryTransfer(t *testing.T) {
	p, tp := butterflyOn(t, 16)
	a, err := Lookup("AS")
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingObs{}
	met, err := a.Execute(Request{Pattern: p, Cfg: network.DefaultConfig(), Topo: tp, Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.finished != p.Messages() || obs.started != p.Messages() {
		t.Fatalf("observed %d/%d flows, want %d (one per transfer)",
			obs.started, obs.finished, p.Messages())
	}
	if met.Messages != p.Messages() || met.TotalBytes != p.TotalBytes() {
		t.Fatalf("metrics report %d msgs / %d bytes, want %d / %d",
			met.Messages, met.TotalBytes, p.Messages(), p.TotalBytes())
	}
	if met.Steps <= 0 {
		t.Fatalf("Steps = %d, want the executed matching-round count", met.Steps)
	}
	if met.MaxFanIn != 1 {
		t.Fatalf("MaxFanIn = %d, want 1 (every round is a matching)", met.MaxFanIn)
	}
}

// TestASDeterministicUnderFaults: two identical faulty runs produce
// identical metrics — the adaptive re-planning consumes only
// deterministic simulation observations.
func TestASDeterministicUnderFaults(t *testing.T) {
	run := func() *Metrics {
		p, tp := butterflyOn(t, 16)
		a, err := Lookup("AS")
		if err != nil {
			t.Fatal(err)
		}
		met, err := a.Execute(Request{
			Pattern: p, Cfg: network.DefaultConfig(), Topo: tp,
			Faults: linkDownPlan(t, tp),
		})
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	m1, m2 := run(), run()
	if m1.Elapsed != m2.Elapsed || m1.Steps != m2.Steps ||
		m1.Flows != m2.Flows || m1.WireBytes != m2.WireBytes || m1.Faults != m2.Faults {
		t.Fatalf("AS runs differ:\n%+v\n%+v", m1, m2)
	}
	if m1.Faults.Events == 0 {
		t.Fatal("fault plan applied no events")
	}
}

// TestASHealthyPlanIsIdentity: the zero-event plan leaves an AS run
// bit-identical to running with no plan at all.
func TestASHealthyPlanIsIdentity(t *testing.T) {
	run := func(plan *network.FaultPlan) *Metrics {
		p, tp := butterflyOn(t, 16)
		a, err := Lookup("AS")
		if err != nil {
			t.Fatal(err)
		}
		met, err := a.Execute(Request{Pattern: p, Cfg: network.DefaultConfig(), Topo: tp, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	bare, healthy := run(nil), run(network.NewHealthyPlan())
	if bare.Elapsed != healthy.Elapsed || bare.Steps != healthy.Steps ||
		bare.Flows != healthy.Flows || bare.WireBytes != healthy.WireBytes {
		t.Fatalf("healthy plan changed the run:\nbare    %+v\nhealthy %+v", bare, healthy)
	}
}

// TestASBeatsStaticSchedulersUnderLinkDown is the tentpole's acceptance
// bar: under the link-down profile on the hypercube butterfly, the
// adaptive scheduler's re-planning must finish ahead of the static LS
// and BS schedules, which keep their precomputed pairings no matter
// what the machine does.
func TestASBeatsStaticSchedulersUnderLinkDown(t *testing.T) {
	elapsed := map[string]int64{}
	for _, name := range []string{"LS", "BS", "AS"} {
		p, tp := butterflyOn(t, 64)
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		met, err := a.Execute(Request{
			Pattern: p, Cfg: network.DefaultConfig(), Topo: tp,
			Faults: linkDownPlan(t, tp),
		})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[name] = int64(met.Elapsed)
	}
	for _, static := range []string{"LS", "BS"} {
		if elapsed["AS"] >= elapsed[static] {
			t.Errorf("AS (%d ns) not faster than %s (%d ns) under link-down",
				elapsed["AS"], static, elapsed[static])
		}
	}
}
