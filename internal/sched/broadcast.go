package sched

import (
	"fmt"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/sim"
)

// RunLIB executes the Linear Broadcast (paper Section 3.6): the root
// sends the message to the other N-1 processors one by one. It returns
// the simulated time for every node to hold the message.
func RunLIB(n, root, nbytes int, cfg network.Config) (sim.Time, error) {
	checkN(n)
	if root < 0 || root >= n {
		return 0, fmt.Errorf("sched: broadcast root %d out of range", root)
	}
	m, err := cmmd.NewMachine(n, cfg)
	if err != nil {
		return 0, err
	}
	return m.Run(libProgram(root, nbytes))
}

// libProgram is the linear-broadcast node program.
func libProgram(root, nbytes int) func(*cmmd.Node) {
	return func(node *cmmd.Node) {
		if node.ID() == root {
			for j := 0; j < node.N(); j++ {
				if j != root {
					node.SendN(j, 0, nbytes)
				}
			}
		} else {
			node.Recv(root, 0)
		}
	}
}

// REBPeer returns, for the recursive broadcast relative rank r in a
// partition of n at step j (1-based), the action this node takes:
// send to peer, receive from peer, or idle (peer < 0). This follows the
// paper's Figure 9 with ranks taken relative to the root.
func REBPeer(r, j, n int) (peer int, send bool) {
	distance := n >> uint(j) // N / 2^j
	if distance == 0 || r%distance != 0 {
		return -1, false
	}
	if (r/distance)%2 == 0 {
		return r + distance, true
	}
	return r - distance, false
}

// RunREB executes the Recursive Broadcast (paper Section 3.6, Figure 9):
// lg N doubling steps over the data network. Unlike the system broadcast
// it does not require the whole partition to participate, and for large
// messages it outruns the control network's limited broadcast bandwidth.
func RunREB(n, root, nbytes int, cfg network.Config) (sim.Time, error) {
	checkN(n)
	if root < 0 || root >= n {
		return 0, fmt.Errorf("sched: broadcast root %d out of range", root)
	}
	m, err := cmmd.NewMachine(n, cfg)
	if err != nil {
		return 0, err
	}
	return m.Run(func(node *cmmd.Node) { ExecuteREBNode(node, root, nbytes) })
}

// ExecuteREBNode runs one node's part of the recursive broadcast.
func ExecuteREBNode(node *cmmd.Node, root, nbytes int) {
	n := node.N()
	r := (node.ID() - root + n) % n // rank relative to root
	steps := LgN(n)
	for j := 1; j <= steps; j++ {
		peer, send := REBPeer(r, j, n)
		if peer < 0 {
			continue
		}
		phys := (peer + root) % n
		if send {
			node.SendN(phys, j, nbytes)
		} else {
			node.Recv(phys, j)
		}
	}
}

// RunSystemBcast executes the CMMD system broadcast over the control
// network: all nodes participate; time is dominated by the control
// network's broadcast bandwidth.
func RunSystemBcast(n, root, nbytes int, cfg network.Config) (sim.Time, error) {
	checkN(n)
	if root < 0 || root >= n {
		return 0, fmt.Errorf("sched: broadcast root %d out of range", root)
	}
	m, err := cmmd.NewMachine(n, cfg)
	if err != nil {
		return 0, err
	}
	return m.Run(sysProgram(root, nbytes))
}

// sysProgram is the control-network system-broadcast node program.
func sysProgram(root, nbytes int) func(*cmmd.Node) {
	return func(node *cmmd.Node) {
		var data []byte
		if node.ID() == root && nbytes > 0 {
			data = make([]byte, nbytes)
		}
		node.Bcast(root, data)
	}
}

// Broadcast runs the named broadcast algorithm and returns the simulated
// completion time. Valid names: LIB, REB, SYS (a registry lookup).
func Broadcast(alg string, n, root, nbytes int, cfg network.Config) (sim.Time, error) {
	inf, err := KindLookup(alg, KindBroadcast)
	if err != nil {
		return 0, err
	}
	res, err := inf.Execute(Request{N: n, Bytes: nbytes, Root: root, Cfg: cfg})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}
