// Package pattern represents interprocessor communication patterns as the
// paper does: a two-dimensional matrix where element [i][j] is the number
// of bytes processor i must send to processor j.
//
// The package provides the paper's example 8-processor pattern 'P'
// (Table 6), synthetic generators producing patterns of a given density
// (Section 4.5 uses 10/25/50/75 % of complete exchange), and statistics
// (density, average message size) matching those reported in Table 12.
package pattern

import (
	"fmt"
	"math/rand"
	"strings"
)

// Matrix is a communication pattern: Matrix[i][j] bytes flow from
// processor i to processor j. The diagonal must be zero.
type Matrix [][]int

// New returns an n x n zero pattern.
func New(n int) Matrix {
	m := make(Matrix, n)
	cells := make([]int, n*n)
	for i := range m {
		m[i], cells = cells[:n], cells[n:]
	}
	return m
}

// N returns the number of processors the pattern spans.
func (m Matrix) N() int { return len(m) }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	c := New(m.N())
	for i := range m {
		copy(c[i], m[i])
	}
	return c
}

// Validate checks structural invariants: square, non-negative entries,
// zero diagonal.
func (m Matrix) Validate() error {
	n := m.N()
	for i, row := range m {
		if len(row) != n {
			return fmt.Errorf("pattern: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("pattern: negative entry [%d][%d] = %d", i, j, v)
			}
			if i == j && v != 0 {
				return fmt.Errorf("pattern: nonzero diagonal [%d][%d] = %d", i, j, v)
			}
		}
	}
	return nil
}

// Messages returns the number of nonzero entries (point-to-point
// messages the pattern requires).
func (m Matrix) Messages() int {
	count := 0
	for i := range m {
		for j := range m[i] {
			if m[i][j] > 0 {
				count++
			}
		}
	}
	return count
}

// TotalBytes returns the sum of all entries.
func (m Matrix) TotalBytes() int64 {
	var total int64
	for i := range m {
		for _, v := range m[i] {
			total += int64(v)
		}
	}
	return total
}

// Density returns the fraction of possible (src,dst) pairs that
// communicate, relative to a complete exchange: Messages / (N*(N-1)).
// This is the paper's "percentage of communication operations with
// respect to complete exchange".
func (m Matrix) Density() float64 {
	n := m.N()
	if n < 2 {
		return 0
	}
	return float64(m.Messages()) / float64(n*(n-1))
}

// AvgBytes returns the average bytes per message (0 for empty patterns) —
// the paper's "average number of bytes transferred per communication
// operation".
func (m Matrix) AvgBytes() float64 {
	msgs := m.Messages()
	if msgs == 0 {
		return 0
	}
	return float64(m.TotalBytes()) / float64(msgs)
}

// MaxEntry returns the largest single message size in the pattern.
func (m Matrix) MaxEntry() int {
	max := 0
	for i := range m {
		for _, v := range m[i] {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// IsSymmetricShape reports whether communication is bidirectional for
// every pair: m[i][j] > 0 iff m[j][i] > 0 (byte counts may differ).
// Halo-exchange patterns from meshes have this property; synthetic
// patterns generally do not.
func (m Matrix) IsSymmetricShape() bool {
	for i := range m {
		for j := range m[i] {
			if (m[i][j] > 0) != (m[j][i] > 0) {
				return false
			}
		}
	}
	return true
}

// String renders the pattern as the paper's Table 6 does: a matrix of
// byte counts (0/1 entries in the paper's example).
func (m Matrix) String() string {
	var b strings.Builder
	for i := range m {
		for j := range m[i] {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TraceMsg is one recorded message as FromTrace consumes it: who sent
// how many bytes to whom. internal/trace adapts its richer timed events
// down to this (pattern must not depend on the trace package).
type TraceMsg struct {
	Src, Dst, Bytes int
}

// FromTrace collapses a recorded communication trace into a schedulable
// traffic matrix over n processors: entry [i][j] sums the bytes of every
// traced message from i to j. Timing is deliberately discarded — the
// point of replay is to hand the *shape* of an application's real
// traffic to the paper's schedulers and let them find their own order.
// Messages must stay on the off-diagonal with src/dst in [0, n) and
// non-negative sizes.
func FromTrace(n int, msgs []TraceMsg) (Matrix, error) {
	m := New(n)
	for i, msg := range msgs {
		if msg.Src < 0 || msg.Src >= n || msg.Dst < 0 || msg.Dst >= n {
			return nil, fmt.Errorf("pattern: trace message %d endpoints %d->%d outside %d processors",
				i, msg.Src, msg.Dst, n)
		}
		if msg.Src == msg.Dst {
			return nil, fmt.Errorf("pattern: trace message %d is a self-send on processor %d", i, msg.Src)
		}
		if msg.Bytes < 0 {
			return nil, fmt.Errorf("pattern: trace message %d has negative size %d", i, msg.Bytes)
		}
		m[msg.Src][msg.Dst] += msg.Bytes
	}
	return m, nil
}

// CompleteExchange returns the pattern in which every processor sends
// bytesPerPair to every other processor (all-to-all personalized).
func CompleteExchange(n, bytesPerPair int) Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m[i][j] = bytesPerPair
			}
		}
	}
	return m
}

// PaperP returns the paper's example irregular communication pattern 'P'
// for 8 processors (Table 6). Entries are 0/1 flags in the paper; the
// returned matrix scales them by bytesPerMsg (use 1 to get Table 6
// verbatim).
func PaperP(bytesPerMsg int) Matrix {
	flags := [8][8]int{
		{0, 1, 0, 1, 0, 1, 1, 0},
		{1, 0, 1, 0, 1, 1, 1, 1},
		{0, 1, 0, 1, 0, 0, 0, 0},
		{1, 0, 1, 0, 1, 1, 1, 0},
		{0, 1, 1, 1, 0, 1, 0, 1},
		{0, 1, 0, 0, 1, 0, 1, 0},
		{1, 0, 1, 1, 0, 1, 0, 1},
		{1, 1, 0, 0, 1, 0, 1, 0},
	}
	m := New(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			m[i][j] = flags[i][j] * bytesPerMsg
		}
	}
	return m
}

// Synthetic returns a pattern with the requested density (fraction of
// the N*(N-1) possible messages, in [0,1]) where every present message
// carries bytesPerMsg bytes. This reproduces the paper's synthetic
// workloads: "communication densities of 10%, 25%, 50% and 75% of
// complete exchange ... for message sizes of 256 and 512 bytes".
//
// The generator is deterministic for a given seed. Message slots are
// chosen uniformly at random without replacement.
func Synthetic(n int, density float64, bytesPerMsg int, seed int64) Matrix {
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	total := n * (n - 1)
	want := int(density*float64(total) + 0.5)
	// Enumerate all off-diagonal slots and shuffle.
	type slot struct{ i, j int }
	slots := make([]slot, 0, total)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				slots = append(slots, slot{i, j})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	m := New(n)
	for _, s := range slots[:want] {
		m[s.i][s.j] = bytesPerMsg
	}
	return m
}

// SyntheticVariable is Synthetic with per-message sizes drawn uniformly
// from [minBytes, maxBytes]; useful for stress tests and ablations.
func SyntheticVariable(n int, density float64, minBytes, maxBytes int, seed int64) Matrix {
	m := Synthetic(n, density, 1, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	span := maxBytes - minBytes + 1
	if span < 1 {
		span = 1
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] > 0 {
				m[i][j] = minBytes + rng.Intn(span)
			}
		}
	}
	return m
}
