package pattern

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroMatrix(t *testing.T) {
	m := New(4)
	if m.N() != 4 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Messages() != 0 || m.TotalBytes() != 0 || m.Density() != 0 || m.AvgBytes() != 0 {
		t.Fatal("fresh matrix should be empty")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	m := New(3)
	m[1][1] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("nonzero diagonal should fail validation")
	}
	m = New(3)
	m[0][1] = -2
	if err := m.Validate(); err == nil {
		t.Fatal("negative entry should fail validation")
	}
	m = New(3)
	m[2] = m[2][:2]
	if err := m.Validate(); err == nil {
		t.Fatal("ragged matrix should fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(3)
	m[0][1] = 7
	c := m.Clone()
	c[0][1] = 9
	if m[0][1] != 7 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestCompleteExchange(t *testing.T) {
	m := CompleteExchange(8, 256)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Messages() != 8*7 {
		t.Fatalf("Messages = %d", m.Messages())
	}
	if m.Density() != 1.0 {
		t.Fatalf("Density = %g", m.Density())
	}
	if m.AvgBytes() != 256 {
		t.Fatalf("AvgBytes = %g", m.AvgBytes())
	}
	if m.TotalBytes() != 8*7*256 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	if m.MaxEntry() != 256 {
		t.Fatalf("MaxEntry = %d", m.MaxEntry())
	}
	if !m.IsSymmetricShape() {
		t.Fatal("complete exchange is symmetric")
	}
}

// TestPaperPatternP checks the pattern against the paper's Table 6.
func TestPaperPatternP(t *testing.T) {
	m := PaperP(1)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := strings.TrimLeft(`
0 1 0 1 0 1 1 0
1 0 1 0 1 1 1 1
0 1 0 1 0 0 0 0
1 0 1 0 1 1 1 0
0 1 1 1 0 1 0 1
0 1 0 0 1 0 1 0
1 0 1 1 0 1 0 1
1 1 0 0 1 0 1 0
`, "\n")
	if m.String() != want {
		t.Fatalf("pattern P mismatch:\n%s\nwant:\n%s", m.String(), want)
	}
	// 34 messages in Table 6.
	if m.Messages() != 34 {
		t.Fatalf("Messages = %d, want 34", m.Messages())
	}
	scaled := PaperP(256)
	if scaled.TotalBytes() != 34*256 {
		t.Fatalf("scaled TotalBytes = %d", scaled.TotalBytes())
	}
}

func TestPaperPatternPRow2MatchesTable(t *testing.T) {
	// Table 6 row for processor 2: sends only to 1 and 3.
	m := PaperP(1)
	for j := 0; j < 8; j++ {
		want := 0
		if j == 1 || j == 3 {
			want = 1
		}
		if m[2][j] != want {
			t.Fatalf("P[2][%d] = %d, want %d", j, m[2][j], want)
		}
	}
}

func TestSyntheticDensity(t *testing.T) {
	for _, d := range []float64{0.10, 0.25, 0.50, 0.75} {
		m := Synthetic(32, d, 256, 42)
		if err := m.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if got := m.Density(); math.Abs(got-d) > 0.001 {
			t.Fatalf("density %g, want %g", got, d)
		}
		if m.AvgBytes() != 256 {
			t.Fatalf("AvgBytes = %g", m.AvgBytes())
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(16, 0.3, 128, 7)
	b := Synthetic(16, 0.3, 128, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different patterns")
			}
		}
	}
	c := Synthetic(16, 0.3, 128, 8)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestSyntheticDensityClamps(t *testing.T) {
	if Synthetic(8, -0.5, 10, 1).Messages() != 0 {
		t.Fatal("negative density should yield empty pattern")
	}
	if Synthetic(8, 2.0, 10, 1).Density() != 1.0 {
		t.Fatal("density > 1 should clamp to complete exchange")
	}
}

func TestSyntheticVariableSizes(t *testing.T) {
	m := SyntheticVariable(16, 0.5, 100, 200, 3)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := range m {
		for j := range m[i] {
			if v := m[i][j]; v != 0 && (v < 100 || v > 200) {
				t.Fatalf("entry [%d][%d] = %d outside [100,200]", i, j, v)
			}
		}
	}
	if math.Abs(m.Density()-0.5) > 0.01 {
		t.Fatalf("density = %g", m.Density())
	}
}

func TestIsSymmetricShape(t *testing.T) {
	m := New(3)
	m[0][1], m[1][0] = 5, 9
	if !m.IsSymmetricShape() {
		t.Fatal("bidirectional pair should be symmetric in shape")
	}
	m[0][2] = 4
	if m.IsSymmetricShape() {
		t.Fatal("one-way message should break shape symmetry")
	}
}

// Property: synthetic patterns always validate and hit the requested
// message count exactly.
func TestQuickSyntheticInvariants(t *testing.T) {
	f := func(seed int64, dRaw uint8, sizeRaw uint16) bool {
		d := float64(dRaw%101) / 100
		size := int(sizeRaw%2048) + 1
		m := Synthetic(16, d, size, seed)
		if m.Validate() != nil {
			return false
		}
		want := int(d*float64(16*15) + 0.5)
		return m.Messages() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: density and average size are consistent with totals.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		m := SyntheticVariable(8, 0.4, 1, 64, seed)
		msgs := m.Messages()
		if msgs == 0 {
			return m.AvgBytes() == 0
		}
		return math.Abs(m.AvgBytes()*float64(msgs)-float64(m.TotalBytes())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
