package pattern

import (
	"reflect"
	"testing"
)

func TestGridFactorizations(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		r, c := Grid2D(n)
		if r*c != n || r > c {
			t.Fatalf("Grid2D(%d) = %dx%d", n, r, c)
		}
		x, y, z := Grid3D(n)
		if x*y*z != n || x > y || y > z {
			t.Fatalf("Grid3D(%d) = %dx%dx%d", n, x, y, z)
		}
	}
	if r, c := Grid2D(64); r != 8 || c != 8 {
		t.Fatalf("Grid2D(64) = %dx%d, want 8x8", r, c)
	}
	if x, y, z := Grid3D(64); x != 4 || y != 4 || z != 4 {
		t.Fatalf("Grid3D(64) = %dx%dx%d, want 4x4x4", x, y, z)
	}
}

func TestCatalogueShapesValidate(t *testing.T) {
	for _, w := range Workloads() {
		for _, n := range []int{4, 16, 32, 64, 256} {
			m := w.Gen(n, 256, 7)
			if err := m.Validate(); err != nil {
				t.Fatalf("%s at n=%d: %v", w.Name, n, err)
			}
			if m.Messages() == 0 {
				t.Fatalf("%s at n=%d: empty pattern", w.Name, n)
			}
		}
	}
}

func TestTransposeIsPermutationOffDiagonal(t *testing.T) {
	m := Transpose(16, 64) // 4x4 grid: 4 diagonal blocks stay local
	if got, want := m.Messages(), 12; got != want {
		t.Fatalf("messages = %d, want %d", got, want)
	}
	if m.MaxFanIn() != 1 {
		t.Fatalf("transpose fan-in = %d, want 1", m.MaxFanIn())
	}
	// Transpose is an involution: i sends to j iff j sends to i.
	if !m.IsSymmetricShape() {
		t.Fatal("transpose shape must be symmetric")
	}
}

func TestButterflyDegree(t *testing.T) {
	m := Butterfly(32, 128)
	if got, want := m.Messages(), 32*5; got != want {
		t.Fatalf("messages = %d, want %d", got, want)
	}
	for i := range m {
		out := 0
		for _, v := range m[i] {
			if v > 0 {
				out++
			}
		}
		if out != 5 {
			t.Fatalf("node %d has %d neighbors, want lg 32 = 5", i, out)
		}
	}
}

func TestHotSpotFunnels(t *testing.T) {
	m := HotSpot(64, 3, 256)
	if m.MaxFanIn() != 63 {
		t.Fatalf("fan-in = %d, want 63", m.MaxFanIn())
	}
	if m.Messages() != 63 {
		t.Fatalf("messages = %d, want 63", m.Messages())
	}
	for i := range m {
		for j, v := range m[i] {
			if v > 0 && j != 3 {
				t.Fatalf("unexpected message %d->%d", i, j)
			}
		}
	}
}

func TestRandomPermutationProperties(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := RandomPermutation(32, 512, seed)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Messages() != 32 {
			t.Fatalf("seed %d: %d messages, want 32", seed, m.Messages())
		}
		if m.MaxFanIn() != 1 {
			t.Fatalf("seed %d: fan-in %d, want 1", seed, m.MaxFanIn())
		}
	}
	a := RandomPermutation(32, 512, 5)
	b := RandomPermutation(32, 512, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give the same permutation")
	}
	c := RandomPermutation(32, 512, 6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should give different permutations")
	}
}

func TestStencilNeighborCounts(t *testing.T) {
	m := Stencil2D(64, 100) // 8x8 torus: 4 distinct neighbors everywhere
	for i := range m {
		out, bytes := 0, 0
		for _, v := range m[i] {
			if v > 0 {
				out++
				bytes += v
			}
		}
		if out != 4 || bytes != 400 {
			t.Fatalf("2-D node %d: %d neighbors %d bytes", i, out, bytes)
		}
	}
	if !m.IsSymmetricShape() {
		t.Fatal("stencil shape must be symmetric")
	}

	m3 := Stencil3D(64, 100) // 4x4x4 torus: 6 distinct neighbors
	for i := range m3 {
		out, bytes := 0, 0
		for _, v := range m3[i] {
			if v > 0 {
				out++
				bytes += v
			}
		}
		if out != 6 || bytes != 600 {
			t.Fatalf("3-D node %d: %d neighbors %d bytes", i, out, bytes)
		}
	}
}

func TestStencilDegenerateDimsFold(t *testing.T) {
	// 1x2 grid: both horizontal neighbors are the same node, and the
	// vertical wrap is the node itself (skipped). Bytes accumulate.
	m := Stencil2D(2, 10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 20 || m[1][0] != 20 {
		t.Fatalf("folded stencil = %v", m)
	}
}

func TestBisectionCrossesTop(t *testing.T) {
	m := BisectionStress(16, 256)
	if m.Messages() != 16 {
		t.Fatalf("messages = %d, want 16", m.Messages())
	}
	for i := range m {
		if m[i][i^8] != 256 {
			t.Fatalf("node %d missing cross-bisection message", i)
		}
	}
}

func TestStatsSummarizes(t *testing.T) {
	s := HotSpot(8, 0, 100).Stats()
	want := Stats{Procs: 8, Messages: 7, TotalBytes: 700, DensityPct: 12.5,
		AvgBytes: 100, MaxBytes: 100, MaxFanIn: 7, Symmetric: false}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
}

func TestWorkloadLookup(t *testing.T) {
	if len(WorkloadNames()) < 6 {
		t.Fatalf("catalogue has %d workloads, want >= 6", len(WorkloadNames()))
	}
	for _, name := range WorkloadNames() {
		if _, ok := WorkloadByName(name); !ok {
			t.Fatalf("lookup failed for %q", name)
		}
	}
	if _, ok := WorkloadByName("nope"); ok {
		t.Fatal("lookup of unknown name should fail")
	}
}
