package pattern

import (
	"fmt"
	"math/rand"
)

// This file is the workload catalogue: named generators for the
// communication shapes that stress a fat tree in distinct ways, beyond
// the paper's complete-exchange / broadcast / random-irregular trio.
// Every generator is deterministic for a given (n, nbytes, seed) and
// the returned matrices satisfy Validate.

// Grid2D factors n into the most-square rows x cols grid with
// rows <= cols and rows*cols == n. For power-of-two n both factors are
// powers of two.
func Grid2D(n int) (rows, cols int) {
	rows = largestDivisorAtMost(n, isqrt(n))
	return rows, n / rows
}

// Grid3D factors n into the most-cubic x <= y <= z grid with x*y*z == n.
func Grid3D(n int) (x, y, z int) {
	x = largestDivisorAtMost(n, icbrt(n))
	y, z = Grid2D(n / x)
	return x, y, z
}

// largestDivisorAtMost returns the largest divisor of n that is <= limit
// (at least 1).
func largestDivisorAtMost(n, limit int) int {
	for d := limit; d > 1; d-- {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func icbrt(n int) int {
	r := 0
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Transpose returns the grid-transpose permutation: the n processors are
// laid out row-major on the Grid2D(n) rows x cols grid, and processor
// (i,j) sends its whole block of nbytes to the processor holding the
// transposed block — position (j,i) of the cols x rows grid. Diagonal
// blocks stay local. This is the communication phase of a distributed
// matrix transpose when each processor owns one block.
func Transpose(n, nbytes int) Matrix {
	rows, cols := Grid2D(n)
	m := New(n)
	for p := 0; p < n; p++ {
		i, j := p/cols, p%cols
		dst := j*rows + i // (j,i) in the transposed cols x rows grid
		if dst != p {
			m[p][dst] = nbytes
		}
	}
	return m
}

// Butterfly returns the hypercube/butterfly pattern: every processor
// exchanges nbytes with each of its lg N hypercube neighbors (i XOR 2^k
// for every bit k). This is the union of all stages of an FFT butterfly
// or a recursive-doubling reduction. n must be a power of two.
func Butterfly(n, nbytes int) Matrix {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("pattern: butterfly size %d must be a power of two >= 2", n))
	}
	m := New(n)
	for i := 0; i < n; i++ {
		for bit := 1; bit < n; bit <<= 1 {
			m[i][i^bit] = nbytes
		}
	}
	return m
}

// HotSpot returns the many-to-one pattern: every processor sends nbytes
// to the single target. Under synchronous rendezvous the target
// serializes all n-1 transfers — the funnel that collapses LEX/LS,
// isolated as its own workload.
func HotSpot(n, target, nbytes int) Matrix {
	if target < 0 || target >= n {
		panic(fmt.Sprintf("pattern: hot-spot target %d out of range [0,%d)", target, n))
	}
	m := New(n)
	for i := 0; i < n; i++ {
		if i != target {
			m[i][target] = nbytes
		}
	}
	return m
}

// RandomPermutation returns a fixed-point-free random permutation
// pattern: every processor sends nbytes to exactly one distinct other
// processor and receives from exactly one. Deterministic for a given
// seed.
func RandomPermutation(n, nbytes int, seed int64) Matrix {
	if n < 2 {
		panic(fmt.Sprintf("pattern: permutation needs >= 2 processors, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	// Remove fixed points by rotating them among themselves (a derangement
	// of the fixed set); one leftover fixed point swaps with its neighbor.
	var fixed []int
	for i, d := range perm {
		if i == d {
			fixed = append(fixed, i)
		}
	}
	for k, i := range fixed {
		perm[i] = fixed[(k+1)%len(fixed)]
	}
	if len(fixed) == 1 {
		i := fixed[0]
		j := (i + 1) % n
		perm[i], perm[j] = perm[j], perm[i]
	}
	m := New(n)
	for i, d := range perm {
		m[i][d] = nbytes
	}
	return m
}

// Stencil2D returns the 4-point halo pattern of a periodic rows x cols
// processor grid (Grid2D(n)): every processor exchanges nbytes with its
// north/south/east/west torus neighbors. Degenerate dimensions fold:
// on a 2-wide torus both horizontal neighbors are the same processor
// and the byte counts accumulate.
func Stencil2D(n, nbytes int) Matrix {
	rows, cols := Grid2D(n)
	m := New(n)
	at := func(i, j int) int {
		return ((i+rows)%rows)*cols + (j+cols)%cols
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			p := at(i, j)
			for _, nb := range []int{at(i-1, j), at(i+1, j), at(i, j-1), at(i, j+1)} {
				if nb != p {
					m[p][nb] += nbytes
				}
			}
		}
	}
	return m
}

// Stencil3D returns the 6-point halo pattern of a periodic x*y*z
// processor grid (Grid3D(n)), the three-dimensional analogue of
// Stencil2D.
func Stencil3D(n, nbytes int) Matrix {
	x, y, z := Grid3D(n)
	m := New(n)
	at := func(a, b, c int) int {
		return ((a+x)%x)*y*z + ((b+y)%y)*z + (c+z)%z
	}
	for a := 0; a < x; a++ {
		for b := 0; b < y; b++ {
			for c := 0; c < z; c++ {
				p := at(a, b, c)
				for _, nb := range []int{
					at(a-1, b, c), at(a+1, b, c),
					at(a, b-1, c), at(a, b+1, c),
					at(a, b, c-1), at(a, b, c+1),
				} {
					if nb != p {
						m[p][nb] += nbytes
					}
				}
			}
		}
	}
	return m
}

// BisectionStress returns the pattern in which processor i exchanges
// nbytes with processor i XOR n/2: every single message crosses the top
// of the fat tree, so the workload is limited purely by the machine's
// bisection bandwidth. n must be a power of two.
func BisectionStress(n, nbytes int) Matrix {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("pattern: bisection size %d must be a power of two >= 2", n))
	}
	m := New(n)
	for i := 0; i < n; i++ {
		m[i][i^(n/2)] = nbytes
	}
	return m
}

// MaxFanIn returns the largest number of distinct senders converging on
// a single destination — the serialization bound of synchronous
// rendezvous receives (n-1 for a hot spot, 1 for a permutation).
func (m Matrix) MaxFanIn() int {
	maxIn := 0
	for j := 0; j < m.N(); j++ {
		in := 0
		for i := 0; i < m.N(); i++ {
			if m[i][j] > 0 {
				in++
			}
		}
		if in > maxIn {
			maxIn = in
		}
	}
	return maxIn
}

// Stats summarizes a pattern for the scenario catalogue tables.
type Stats struct {
	Procs      int
	Messages   int
	TotalBytes int64
	DensityPct float64 // percentage of complete exchange
	AvgBytes   float64
	MaxBytes   int
	MaxFanIn   int
	Symmetric  bool // bidirectional shape (m[i][j]>0 iff m[j][i]>0)
}

// Stats computes the summary statistics of the pattern.
func (m Matrix) Stats() Stats {
	return Stats{
		Procs:      m.N(),
		Messages:   m.Messages(),
		TotalBytes: m.TotalBytes(),
		DensityPct: 100 * m.Density(),
		AvgBytes:   m.AvgBytes(),
		MaxBytes:   m.MaxEntry(),
		MaxFanIn:   m.MaxFanIn(),
		Symmetric:  m.IsSymmetricShape(),
	}
}

// Workload is a named catalogue entry: a deterministic pattern generator
// parameterized by machine size, message size and seed (generators
// without a stochastic component ignore the seed).
type Workload struct {
	Name string
	Desc string
	Gen  func(n, nbytes int, seed int64) Matrix
}

// Workloads returns the scenario catalogue in canonical order.
func Workloads() []Workload {
	return []Workload{
		{"transpose", "grid block transpose (permutation)",
			func(n, nbytes int, _ int64) Matrix { return Transpose(n, nbytes) }},
		{"butterfly", "all lg N hypercube exchange stages",
			func(n, nbytes int, _ int64) Matrix { return Butterfly(n, nbytes) }},
		{"hotspot", "many-to-one funnel into node 0",
			func(n, nbytes int, _ int64) Matrix { return HotSpot(n, 0, nbytes) }},
		{"permutation", "random fixed-point-free permutation",
			RandomPermutation},
		{"stencil2d", "4-point halo on a periodic 2-D grid",
			func(n, nbytes int, _ int64) Matrix { return Stencil2D(n, nbytes) }},
		{"stencil3d", "6-point halo on a periodic 3-D grid",
			func(n, nbytes int, _ int64) Matrix { return Stencil3D(n, nbytes) }},
		{"bisection", "pairwise exchange across the root bisection",
			func(n, nbytes int, _ int64) Matrix { return BisectionStress(n, nbytes) }},
	}
}

// WorkloadByName looks a catalogue entry up by name.
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// WorkloadNames returns the catalogue names in canonical order.
func WorkloadNames() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}
