package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// completionSlack pads each flow-completion event by one nanosecond so
// floating-point rounding can never schedule a completion fractionally
// before the flow's remaining bytes reach zero.
const completionSlack = sim.Nanosecond

// remainingEpsilon is the residual byte count below which a flow counts
// as finished (absorbs float rounding across rate changes).
const remainingEpsilon = 1e-3

// link is one directed link of the topology graph with a finite
// capacity.
type link struct {
	idx     int
	cap     float64
	down    bool // dead link: routing avoids it, no flow may cross it
	flows   map[*Flow]struct{}
	carried float64 // total bytes carried, for utilization reports

	// maxmin water-filling scratch state (valid only within one call).
	avail   float64
	unfixed int
	touched bool
}

// Flow is one in-flight message transfer on the data network.
type Flow struct {
	Src, Dst  int
	WireBytes int
	seq       int // creation order; makes allocation order deterministic

	remaining float64
	rate      float64
	links     []*link
	done      func()
	active    bool
	fixed     bool // maxmin scratch (valid only within one call)
	started   sim.Time
}

// Rate returns the flow's current bandwidth allocation in bytes/s.
// It is only meaningful while the flow is active.
func (f *Flow) Rate() float64 { return f.rate }

// DataNet is the flow-level data-network simulator: each in-flight
// message is a flow routed over the topology's link graph, its
// instantaneous rate the max-min fair allocation subject to the
// per-link capacities. All methods must be called from engine context
// (an event callback or a running process).
type DataNet struct {
	eng   *sim.Engine
	top   topo.Topology
	cfg   Config
	links []*link // indexed by topology link index; nil until first touched
	flows map[*Flow]struct{}

	lastAdvance sim.Time
	tick        *sim.Timer // single re-armed earliest-completion event
	obs         FlowObserver
	met         *obs.SimMetrics
	tl          *obs.Timeline

	// Fault state: how many links are down (the routing fast path skips
	// the clean check while zero) and the fault counters FaultStats
	// reports.
	downLinks int
	fstats    FaultStats

	// Reusable scratch buffers: routing and reallocation run on every
	// flow start and finish, so they must not allocate.
	routeScratch []int
	flowScratch  []*Flow
	linkScratch  []*link

	// Stats.
	totalFlows     int
	totalWireBytes int64
}

// NewDataNet creates a data network over the given topology's link
// graph.
func NewDataNet(eng *sim.Engine, t topo.Topology, cfg Config) *DataNet {
	return &DataNet{
		eng:   eng,
		top:   t,
		cfg:   cfg,
		links: make([]*link, t.NumLinks()),
		flows: make(map[*Flow]struct{}),
	}
}

// Topology returns the link graph the network runs over.
func (d *DataNet) Topology() topo.Topology { return d.top }

// Config returns the timing constants in use.
func (d *DataNet) Config() Config { return d.cfg }

// ActiveFlows returns the number of in-flight flows.
func (d *DataNet) ActiveFlows() int { return len(d.flows) }

// TotalFlows returns the number of flows ever started.
func (d *DataNet) TotalFlows() int { return d.totalFlows }

// TotalWireBytes returns the sum of wire bytes over all started flows.
func (d *DataNet) TotalWireBytes() int64 { return d.totalWireBytes }

func (d *DataNet) linkFor(idx int) *link {
	l := d.links[idx]
	if l == nil {
		l = &link{idx: idx, cap: d.top.Link(idx).Cap, flows: make(map[*Flow]struct{})}
		d.links[idx] = l
	}
	return l
}

// Start begins transferring userBytes from src to dst. When the last byte
// arrives, done runs in engine context. Start returns the new flow.
// src must differ from dst: node-local copies never enter the network.
func (d *DataNet) Start(src, dst, userBytes int, done func()) *Flow {
	if src == dst {
		panic(fmt.Sprintf("network: self-flow %d->%d", src, dst))
	}
	wire := d.cfg.WireBytes(userBytes)
	f := &Flow{
		Src:       src,
		Dst:       dst,
		WireBytes: wire,
		seq:       d.totalFlows,
		remaining: float64(wire),
		done:      done,
		active:    true,
		started:   d.eng.Now(),
	}
	d.attach(f)
	d.advance()
	d.flows[f] = struct{}{}
	d.totalFlows++
	d.totalWireBytes += int64(wire)
	if d.obs != nil {
		d.obs.FlowStarted(FlowInfo{Src: src, Dst: dst, WireBytes: wire, Start: f.started})
	}
	if d.met != nil {
		d.met.FlowsStarted.Add(1)
	}
	d.reallocate()
	return f
}

// advance applies the current rates over the time elapsed since the last
// call, decrementing every active flow's remaining bytes.
func (d *DataNet) advance() {
	now := d.eng.Now()
	if now == d.lastAdvance {
		return
	}
	dt := (now - d.lastAdvance).Seconds()
	for f := range d.flows {
		moved := f.rate * dt
		f.remaining -= moved
		for _, l := range f.links {
			l.carried += moved
		}
	}
	d.lastAdvance = now
}

// LinkCarried returns the total wire bytes each link has carried so far,
// keyed by topology link index. Only links that ever carried traffic
// appear.
func (d *DataNet) LinkCarried() map[int]float64 {
	out := make(map[int]float64)
	for idx, l := range d.links {
		if l != nil && l.carried > 0 {
			out[idx] = l.carried
		}
	}
	return out
}

// LevelCarried aggregates LinkCarried by topology level (both
// directions combined): how many wire bytes crossed each tier of the
// network. For the fat tree the levels are the tree levels; other
// topologies define their own tiers (see topo.Link).
func (d *DataNet) LevelCarried() map[int]float64 {
	out := make(map[int]float64)
	for idx, l := range d.links {
		if l != nil && l.carried > 0 {
			out[d.top.Link(idx).Level] += l.carried
		}
	}
	return out
}

// LevelUtilization returns, per topology level, carried bytes divided
// by the level's aggregate capacity x elapsed time — the fraction of
// the level's capacity the run actually used. Elapsed must be the
// simulation's makespan. Only levels with traffic appear, and only
// links that carried traffic count toward a level's capacity.
func (d *DataNet) LevelUtilization(elapsed sim.Time) map[int]float64 {
	secs := elapsed.Seconds()
	out := make(map[int]float64)
	if secs <= 0 {
		return out
	}
	capacity := make(map[int]float64)
	for idx, l := range d.links {
		if l == nil || l.carried == 0 {
			continue
		}
		level := d.top.Link(idx).Level
		out[level] += l.carried
		capacity[level] += l.cap
	}
	for level := range out {
		out[level] /= capacity[level] * secs
	}
	return out
}

// LinkUtil is one link's utilization over a run, for the per-link view
// the Result API surfaces alongside the per-level aggregate.
type LinkUtil struct {
	Name        string  // topology link name, e.g. "L2/0/up" or "global/g0-g1"
	Level       int     // topology reporting tier (0 = node links)
	Cap         float64 // capacity, bytes/s
	Carried     float64 // wire bytes carried over the run
	Utilization float64 // Carried / (Cap * elapsed)
}

// LinkUtilization returns the per-link utilization of every link that
// carried traffic, in topology index order (deterministic). Elapsed
// must be the simulation's makespan.
func (d *DataNet) LinkUtilization(elapsed sim.Time) []LinkUtil {
	secs := elapsed.Seconds()
	var out []LinkUtil
	for idx, l := range d.links {
		if l == nil || l.carried == 0 {
			continue
		}
		meta := d.top.Link(idx)
		u := LinkUtil{Name: meta.Name, Level: meta.Level, Cap: l.cap, Carried: l.carried}
		if secs > 0 {
			u.Utilization = l.carried / (l.cap * secs)
		}
		out = append(out, u)
	}
	return out
}

// attach routes a flow over the surviving link graph and joins it to
// every link on the route. With no dead links this is the direct route,
// allocation-free; with failures the flow detours around them
// (topo.DetourRoute) and counts as rerouted.
func (d *DataNet) attach(f *Flow) {
	if d.downLinks == 0 {
		d.routeScratch = d.top.RouteAppend(d.routeScratch[:0], f.Src, f.Dst)
	} else {
		route, ok := topo.DetourRoute(d.top, d.routeScratch[:0], f.Src, f.Dst, d.linkDown)
		if !ok {
			panic(fmt.Sprintf("network: no fault-free route %d->%d: link failures cut the network",
				f.Src, f.Dst))
		}
		d.routeScratch = route
		if len(route) > 0 && !d.isDirect(route, f.Src, f.Dst) {
			d.fstats.Rerouted++
			if d.met != nil {
				d.met.Reroutes.Add(1)
			}
		}
	}
	for _, idx := range d.routeScratch {
		l := d.linkFor(idx)
		l.flows[f] = struct{}{}
		f.links = append(f.links, l)
	}
}

// isDirect reports whether route equals the topology's direct route for
// the pair (used only to count detours, off the healthy fast path).
func (d *DataNet) isDirect(route []int, src, dst int) bool {
	direct := d.top.RouteAppend(nil, src, dst)
	if len(direct) != len(route) {
		return false
	}
	for i := range direct {
		if direct[i] != route[i] {
			return false
		}
	}
	return true
}

// linkDown reports whether topology link idx is dead.
func (d *DataNet) linkDown(idx int) bool {
	l := d.links[idx]
	return l != nil && l.down
}

// FailLink kills a link: routing avoids it from now on, and every
// in-flight flow crossing it is rerouted over the surviving graph, the
// max-min solver re-solving over the new link set. Failing a dead link
// is a no-op. Must run in engine context, and panics if the failure
// disconnects an active flow's endpoints (plans validated against the
// topology only fail interior links, which the detour router can
// always route around short of a full partition).
func (d *DataNet) FailLink(idx int) {
	l := d.linkFor(idx)
	if l.down {
		return
	}
	d.advance()
	l.down = true
	d.downLinks++
	d.fstats.LinksDown++
	if d.met != nil {
		d.met.LinksDown.Add(1)
	}
	// Reroute the victims in creation order so reallocation stays
	// deterministic.
	var victims []*Flow
	for f := range l.flows {
		victims = append(victims, f)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, f := range victims {
		for _, fl := range f.links {
			delete(fl.flows, f)
		}
		f.links = f.links[:0]
		d.attach(f) // counts the detour via fstats.Rerouted
	}
	d.reallocate()
}

// DegradeLink multiplies a link's capacity by factor in (0, 1],
// re-solving the max-min allocation over the reduced capacity. Repeated
// degrades compound. Must run in engine context.
func (d *DataNet) DegradeLink(idx int, factor float64) {
	if !(factor > 0 && factor <= 1) {
		panic(fmt.Sprintf("network: degrade factor %v outside (0, 1]", factor))
	}
	d.advance()
	l := d.linkFor(idx)
	l.cap *= factor
	d.fstats.LinksDegraded++
	d.reallocate()
}

// InjectBackground starts a burst of seed-deterministic background
// cross-traffic: count flows of userBytes each between distinct random
// node pairs. Background flows compete with scheduled traffic for link
// bandwidth like any other flow (they appear in TotalFlows and the
// utilization reports) and are additionally counted in FaultStats.
// Must run in engine context.
func (d *DataNet) InjectBackground(count, userBytes int, seed int64) {
	n := d.top.N()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		src := rng.Intn(n)
		dst := (src + 1 + rng.Intn(n-1)) % n
		f := d.Start(src, dst, userBytes, nil)
		d.fstats.BackgroundFlows++
		d.fstats.BackgroundWireBytes += int64(f.WireBytes)
	}
}

// FaultStats returns the fault counters accumulated so far (the zero
// value for a fault-free run).
func (d *DataNet) FaultStats() FaultStats { return d.fstats }

// reallocate recomputes max-min fair rates, completes any finished flows,
// and schedules the next completion event.
func (d *DataNet) reallocate() {
	// Complete flows whose remaining bytes have hit zero.
	var finished []*Flow
	for f := range d.flows {
		if f.remaining <= remainingEpsilon {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		d.remove(f)
	}
	// Run completion callbacks in a deterministic order (start order is
	// not tracked; sort by src then dst, which is unique per in-flight
	// pair in all our workloads and stable regardless).
	sortFlows(finished)
	if d.met != nil {
		d.met.MaxminSolves.Add(1)
		if d.met.MaxminWall != nil {
			t0 := time.Now()
			d.maxmin()
			d.met.MaxminWall.Observe(time.Since(t0).Seconds())
		} else {
			d.maxmin()
		}
		d.met.FlowsFinished.Add(int64(len(finished)))
	} else {
		d.maxmin()
	}
	d.scheduleNextCompletion()
	for _, f := range finished {
		if d.obs != nil {
			d.obs.FlowFinished(FlowInfo{
				Src: f.Src, Dst: f.Dst, WireBytes: f.WireBytes,
				Start: f.started, End: d.eng.Now(),
			})
		}
		if d.tl != nil {
			d.tl.RecordSpan(obs.Span{
				Cat:  "flow",
				Name: "flow " + strconv.Itoa(f.Src) + "->" + strconv.Itoa(f.Dst),
				Tid:  f.Src, Start: int64(f.started), End: int64(d.eng.Now()),
				Args: []obs.Arg{{Key: "wire_bytes", Val: int64(f.WireBytes)}},
			})
		}
		if f.done != nil {
			f.done()
		}
	}
}

func (d *DataNet) remove(f *Flow) {
	f.active = false
	f.rate = 0
	delete(d.flows, f)
	for _, l := range f.links {
		delete(l.flows, f)
	}
}

// maxmin computes the max-min fair allocation by iterative water-filling
// over the links (each flow is additionally capped by its node links,
// which are part of its route, so no separate per-flow cap is needed).
// All iteration follows deterministic orders — flows by creation
// sequence, links by first touch — so floating-point results are
// bit-identical across runs.
func (d *DataNet) maxmin() {
	if len(d.flows) == 0 {
		return
	}
	flowList := d.flowScratch[:0]
	for f := range d.flows {
		flowList = append(flowList, f)
	}
	sort.Slice(flowList, func(i, j int) bool { return flowList[i].seq < flowList[j].seq })

	linkList := d.linkScratch[:0]
	unfixed := len(flowList)
	for _, f := range flowList {
		f.rate = 0
		f.fixed = false
		for _, l := range f.links {
			if !l.touched {
				l.touched = true
				l.avail = l.cap
				l.unfixed = 0
				linkList = append(linkList, l)
			}
			l.unfixed++
		}
	}
	for unfixed > 0 {
		// Find the bottleneck link: minimum fair share among links that
		// still carry unfixed flows (ties resolved by first touch).
		var bottleneck *link
		share := math.Inf(1)
		for _, l := range linkList {
			if l.unfixed == 0 {
				continue
			}
			s := l.avail / float64(l.unfixed)
			if s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// No constraining link (cannot happen: every flow crosses
			// its node links). Guard against an infinite loop anyway.
			for _, f := range flowList {
				if !f.fixed {
					f.rate = d.cfg.NodeLinkRate
					f.fixed = true
				}
			}
			break
		}
		// Fix every unfixed flow crossing the bottleneck at the share,
		// in creation order.
		for _, f := range flowList {
			if f.fixed {
				continue
			}
			if _, on := bottleneck.flows[f]; !on {
				continue
			}
			f.rate = share
			f.fixed = true
			unfixed--
			for _, l := range f.links {
				l.avail -= share
				if l.avail < 0 {
					l.avail = 0
				}
				l.unfixed--
			}
		}
	}
	for _, l := range linkList {
		l.touched = false
	}
	d.flowScratch = flowList
	d.linkScratch = linkList
}

// scheduleNextCompletion arms a single timer at the earliest projected
// flow completion. Rate changes re-arm the same timer in place, so no
// stale events ever sit in the engine's queue.
func (d *DataNet) scheduleNextCompletion() {
	if len(d.flows) == 0 {
		if d.tick != nil {
			d.tick.Stop()
		}
		return
	}
	soonest := math.Inf(1)
	for f := range d.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		// All rates zero with active flows: model bug.
		panic("network: active flows with zero total rate")
	}
	if d.tick == nil {
		d.tick = d.eng.NewTimer(func() {
			d.advance()
			d.reallocate()
		})
	}
	d.tick.Reset(d.eng.Now() + sim.FromSeconds(soonest) + completionSlack)
}

// sortFlows orders flows deterministically by (src, dst).
func sortFlows(fs []*Flow) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFlow(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFlow(a, b *Flow) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}
