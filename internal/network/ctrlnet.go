package network

import (
	"repro/internal/fattree"
	"repro/internal/sim"
)

// ControlNet models the CM-5 control network: a dedicated hardware tree
// for broadcasts, reductions, parallel-prefix operations, and barriers.
// It is contention-free (one collective at a time, which is how the
// synchronous CMMD programming model used it) and has 2-5 us latency.
//
// ControlNet computes collective durations; the coordination of node
// arrival is done by the messaging layer on top.
type ControlNet struct {
	topo *fattree.Topology
	cfg  Config
}

// NewControlNet creates a control network over the same partition as the
// data network.
func NewControlNet(topo *fattree.Topology, cfg Config) *ControlNet {
	return &ControlNet{topo: topo, cfg: cfg}
}

// base is the latency floor of any control-network operation: the base
// latency plus per-level propagation up and down the tree.
func (c *ControlNet) base() sim.Time {
	return c.cfg.CtrlBaseLatency + sim.Time(2*c.topo.Levels())*c.cfg.CtrlPerLevelTime
}

// BarrierTime returns the duration of a full-partition barrier.
func (c *ControlNet) BarrierTime() sim.Time { return c.base() }

// BcastTime returns the duration of the system broadcast of n user bytes
// from one node to all others. The control network's broadcast bandwidth
// is far below the data network's node rate, which is why the paper's
// Recursive Broadcast overtakes the system call for large messages.
func (c *ControlNet) BcastTime(userBytes int) sim.Time {
	if userBytes < 0 {
		userBytes = 0
	}
	return c.base() + sim.FromSeconds(float64(userBytes)/c.cfg.CtrlBcastRate)
}

// CombineTime returns the duration of a global reduction or parallel
// prefix over n user bytes per node.
func (c *ControlNet) CombineTime(userBytes int) sim.Time {
	if userBytes < 0 {
		userBytes = 0
	}
	return c.base() + sim.FromSeconds(float64(userBytes)/c.cfg.CtrlCombineRate)
}
