package network

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// FlowInfo describes one data-network flow for observers. Start is when
// the flow entered the network (after the sender's wire latency); End is
// when the last byte arrived, and is zero while the flow is in flight.
type FlowInfo struct {
	Src, Dst  int
	WireBytes int
	Start     sim.Time
	End       sim.Time
}

// FlowObserver receives flow lifecycle events from a DataNet. Callbacks
// run in engine context, synchronously with the simulation: they must
// not block, and they must not re-enter the network. Observation is
// passive — attaching an observer never changes simulated timing.
type FlowObserver interface {
	// FlowStarted fires when a flow enters the network (End is zero).
	FlowStarted(f FlowInfo)
	// FlowFinished fires when a flow's last byte arrives, before the
	// flow's completion callback runs.
	FlowFinished(f FlowInfo)
}

// SetObserver attaches a flow observer (nil detaches). Call before the
// simulation starts; flows already in flight are not replayed.
func (d *DataNet) SetObserver(o FlowObserver) { d.obs = o }

// SetMetrics attaches the observability counter bundle (nil detaches).
// Like observers, metrics are passive: attaching them never changes
// simulated timing.
func (d *DataNet) SetMetrics(m *obs.SimMetrics) { d.met = m }

// SetTimeline attaches a sim-time timeline recorder (nil detaches).
// Every finished flow is recorded as a span on its source node's track.
func (d *DataNet) SetTimeline(tl *obs.Timeline) { d.tl = tl }
