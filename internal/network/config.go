// Package network simulates the CM-5's two interprocessor networks.
//
// The data network is modeled at flow level: each in-flight message is a
// flow whose instantaneous rate is the max-min fair bandwidth allocation
// subject to the fat tree's aggregated link capacities. The capacities are
// chosen so the simulator reproduces the machine's published envelope:
// 20 MB/s per node inside a cluster of 4, 10 MB/s inside a cluster of 16,
// and 5 MB/s per node across the partition root — a single uncontended
// flow gets the full 20 MB/s node-interface rate at any distance, while
// saturating all-to-all traffic drops to 5 MB/s per node, exactly the
// behaviour the scheduling algorithms in the paper exploit.
//
// The control network is a separate, contention-free model of the CM-5's
// hardware broadcast/combine tree with microsecond-scale base latency and
// a far lower broadcast bandwidth than the data network.
//
// The package also defines the fault model (fault.go): a FaultPlan is a
// versioned, seed-deterministic list of timed events — link failures
// (in-flight flows detour and the residual graph is re-solved max-min),
// degraded link capacity, straggler nodes, and injected background
// cross-traffic — applied to a DataNet by cmmd.Machine.ApplyFaults.
// Named profiles (FaultProfiles) generate plans for any topology from a
// seed, so faulty runs stay cacheable in the result store.
package network

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Config holds the CM-5 timing constants used by the simulator. All rates
// are bytes per second; MB/s in the paper means 1e6 bytes/s.
type Config struct {
	// NodeLinkRate is the capacity of each node's injection and ejection
	// link (20 MB/s on the CM-5), and therefore the peak rate of any
	// single flow.
	NodeLinkRate float64

	// Cluster4UpRate is the aggregate capacity connecting a cluster of 4
	// nodes to the level above, one direction (40 MB/s: 10 MB/s per node
	// when all four stream outward).
	Cluster4UpRate float64

	// ThinRatePerNode is the per-node share guaranteed above level 1
	// (5 MB/s on the CM-5): a level-l cluster of 4^l nodes (l >= 2) has
	// 4^l * ThinRatePerNode of capacity toward the level above.
	ThinRatePerNode float64

	// PacketSize and PacketPayload describe data-network packetization:
	// 20-byte packets carrying 16 bytes of user data.
	PacketSize    int
	PacketPayload int

	// WireLatency is the fixed network traversal latency of a message
	// once its transfer begins.
	WireLatency sim.Time

	// SendOverhead and RecvOverhead are the per-message software costs on
	// the sending and receiving SPARC nodes (CMMD call overhead). They
	// are chosen so a zero-byte message costs the paper's measured 88 us
	// end to end: SendOverhead + RecvOverhead + WireLatency + one packet.
	SendOverhead sim.Time
	RecvOverhead sim.Time

	// MemCopyRate models node-local memcpy bandwidth (used for message
	// pack/unpack in the store-and-forward Recursive Exchange, and for
	// node-local "self" messages).
	MemCopyRate float64

	// FlopRate models sustained node floating-point throughput (flops/s)
	// for the application studies (2-D FFT, CG, Euler). The CM-5 node of
	// the paper ran without vector units.
	FlopRate float64

	// Control network.
	CtrlBaseLatency  sim.Time // barrier / 0-byte collective latency (2-5 us)
	CtrlBcastRate    float64  // system broadcast bandwidth (bytes/s)
	CtrlCombineRate  float64  // reduction/scan bandwidth (bytes/s)
	CtrlPerLevelTime sim.Time // extra latency per tree level
}

// DefaultConfig returns the calibrated CM-5 model constants.
func DefaultConfig() Config {
	return Config{
		NodeLinkRate:     20e6,
		Cluster4UpRate:   40e6,
		ThinRatePerNode:  5e6,
		PacketSize:       20,
		PacketPayload:    16,
		WireLatency:      7 * sim.Microsecond,
		SendOverhead:     40 * sim.Microsecond,
		RecvOverhead:     40 * sim.Microsecond,
		MemCopyRate:      50e6,
		FlopRate:         2.5e6,
		CtrlBaseLatency:  4 * sim.Microsecond,
		CtrlBcastRate:    0.85e6,
		CtrlCombineRate:  2e6,
		CtrlPerLevelTime: 500 * sim.Nanosecond,
	}
}

// Validate rejects configurations that would drive the flow solver to
// NaN rates or zero-progress allocations: every rate and packet size
// must be positive, latencies and overheads non-negative, and the
// packet payload must fit its packet. NewMachine validates its Config
// up front so a bad constant fails with a descriptive error instead of
// a panic deep in the solver.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"NodeLinkRate", c.NodeLinkRate},
		{"Cluster4UpRate", c.Cluster4UpRate},
		{"ThinRatePerNode", c.ThinRatePerNode},
		{"MemCopyRate", c.MemCopyRate},
		{"FlopRate", c.FlopRate},
		{"CtrlBcastRate", c.CtrlBcastRate},
		{"CtrlCombineRate", c.CtrlCombineRate},
	}
	for _, r := range rates {
		if !(r.v > 0) { // negated to also catch NaN
			return fmt.Errorf("network: config %s = %v; must be positive", r.name, r.v)
		}
	}
	if c.PacketSize <= 0 {
		return fmt.Errorf("network: config PacketSize = %d; must be positive", c.PacketSize)
	}
	if c.PacketPayload <= 0 || c.PacketPayload > c.PacketSize {
		return fmt.Errorf("network: config PacketPayload = %d; must be in [1, PacketSize=%d]",
			c.PacketPayload, c.PacketSize)
	}
	times := []struct {
		name string
		v    sim.Time
	}{
		{"WireLatency", c.WireLatency},
		{"SendOverhead", c.SendOverhead},
		{"RecvOverhead", c.RecvOverhead},
		{"CtrlBaseLatency", c.CtrlBaseLatency},
		{"CtrlPerLevelTime", c.CtrlPerLevelTime},
	}
	for _, t := range times {
		if t.v < 0 {
			return fmt.Errorf("network: config %s = %v; must be non-negative", t.name, t.v)
		}
	}
	return nil
}

// TopologyRates extracts the rate constants topology constructors
// consume.
func (c Config) TopologyRates() topo.Rates {
	return topo.Rates{
		NodeLink:    c.NodeLinkRate,
		Cluster4Up:  c.Cluster4UpRate,
		ThinPerNode: c.ThinRatePerNode,
	}
}

// FatTree builds the calibrated CM-5 fat tree over n nodes from this
// configuration's rates — the topology NewMachine uses by default.
func (c Config) FatTree(n int) (topo.Topology, error) {
	return topo.NewFatTree(n, c.TopologyRates())
}

// WireBytes returns the number of bytes a message of userBytes occupies on
// the wire after packetization: whole 20-byte packets of 16 bytes payload
// each. A zero-byte message still costs one packet.
func (c Config) WireBytes(userBytes int) int {
	if userBytes < 0 {
		userBytes = 0
	}
	packets := (userBytes + c.PacketPayload - 1) / c.PacketPayload
	if packets == 0 {
		packets = 1
	}
	return packets * c.PacketSize
}

// TransferSeconds returns wire bytes / rate as float seconds.
func TransferSeconds(bytes int, rate float64) float64 {
	if bytes <= 0 || rate <= 0 {
		return 0
	}
	return float64(bytes) / rate
}

// MemCopyTime returns the virtual time to copy n bytes node-locally.
func (c Config) MemCopyTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(n) / c.MemCopyRate)
}

// ComputeTime returns the virtual time to execute n floating-point
// operations at the configured node throughput.
func (c Config) ComputeTime(flops float64) sim.Time {
	if flops <= 0 {
		return 0
	}
	return sim.FromSeconds(flops / c.FlopRate)
}

// ClusterUpRate returns the aggregate one-direction capacity between a
// level-l cluster and the level above it.
func (c Config) ClusterUpRate(level int) float64 {
	if level <= 0 {
		return c.NodeLinkRate
	}
	if level == 1 {
		return c.Cluster4UpRate
	}
	nodes := 1 << (2 * uint(level))
	return float64(nodes) * c.ThinRatePerNode
}
