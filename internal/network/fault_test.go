package network

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// mustHypercube builds an n-node hypercube — the fault tests' topology
// of choice, because its path diversity makes link kills survivable.
func mustHypercube(n int) topo.Topology {
	tp, err := topo.New("hypercube", n, DefaultConfig().TopologyRates())
	if err != nil {
		panic(err)
	}
	return tp
}

// interiorOnRoute returns the first interior (level >= 1) link on the
// direct src -> dst route.
func interiorOnRoute(t *testing.T, tp topo.Topology, src, dst int) int {
	t.Helper()
	for _, l := range tp.RouteAppend(nil, src, dst) {
		if tp.Link(l).Level >= 1 {
			return l
		}
	}
	t.Fatalf("no interior link on route %d->%d of %s", src, dst, tp.Name())
	return -1
}

func TestHealthyPlanIsEmpty(t *testing.T) {
	p := NewHealthyPlan()
	if p.Version != FaultPlanVersion {
		t.Fatalf("Version = %d, want %d", p.Version, FaultPlanVersion)
	}
	if len(p.Events) != 0 {
		t.Fatalf("healthy plan has %d events", len(p.Events))
	}
	if err := p.Validate(mustFatTree(8)); err != nil {
		t.Fatal(err)
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(mustFatTree(8)); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
}

func TestFaultPlanValidateRejects(t *testing.T) {
	tp := mustFatTree(8)
	nodeLink := 0 // link 2*node is node 0's injection link, level 0
	interior := interiorOnRoute(t, tp, 0, 7)
	cases := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"bad version", FaultPlan{Version: FaultPlanVersion + 1}, "version"},
		{"negative time", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{At: -1, Kind: FaultDegrade, Link: interior, Factor: 0.5}}}, "negative time"},
		{"unknown kind", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: "meteor"}}}, "unknown kind"},
		{"link out of range", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultLinkDown, Link: tp.NumLinks()}}}, "outside"},
		{"node link down", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultLinkDown, Link: nodeLink}}}, "interior"},
		{"degrade factor zero", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultDegrade, Link: interior, Factor: 0}}}, "factor"},
		{"degrade factor above one", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultDegrade, Link: interior, Factor: 1.5}}}, "factor"},
		{"straggler node out of range", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultStraggler, Node: 8, Factor: 2}}}, "outside"},
		{"straggler speedup", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultStraggler, Node: 1, Factor: 0.5}}}, ">= 1"},
		{"empty background burst", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultBackground, Flows: 0}}}, "flows"},
		{"negative background bytes", FaultPlan{Version: FaultPlanVersion,
			Events: []FaultEvent{{Kind: FaultBackground, Flows: 1, Bytes: -1}}}, "negative"},
	}
	for _, c := range cases {
		err := c.plan.Validate(tp)
		if err == nil {
			t.Errorf("%s: Validate accepted the plan", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNewFaultPlanUnknownProfile(t *testing.T) {
	_, err := NewFaultPlan("meteor", mustFatTree(8), 1)
	if !errors.Is(err, ErrUnknownFaultProfile) {
		t.Fatalf("err = %v, want ErrUnknownFaultProfile", err)
	}
	for _, name := range FaultProfiles() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list profile %q", err, name)
		}
	}
}

func TestFaultProfileDocs(t *testing.T) {
	names := FaultProfiles()
	if len(names) != 5 {
		t.Fatalf("FaultProfiles() = %v, want 5 names", names)
	}
	for _, name := range names {
		if FaultProfileDoc(name) == "" {
			t.Errorf("profile %q has no doc", name)
		}
	}
	if FaultProfileDoc("meteor") != "" {
		t.Error("unknown profile has a doc")
	}
}

// TestFaultProfilesDeterministic pins the profile contract the result
// store depends on: the same (profile, topology, seed) always builds
// the identical plan, down to the canonical JSON bytes that feed the
// content hash.
func TestFaultProfilesDeterministic(t *testing.T) {
	for _, tp := range []topo.Topology{mustFatTree(64), mustHypercube(64)} {
		for _, name := range FaultProfiles() {
			a, err := NewFaultPlan(name, tp, 42)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, tp.Name(), err)
			}
			b, err := NewFaultPlan(name, tp, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s on %s: plans differ across builds", name, tp.Name())
			}
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Errorf("%s on %s: JSON differs across builds", name, tp.Name())
			}
			if name == "healthy" {
				continue
			}
			c, err := NewFaultPlan(name, tp, 43)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a, c) {
				t.Errorf("%s on %s: seeds 42 and 43 build the same plan", name, tp.Name())
			}
		}
	}
}

// TestLinkDownProfileFatTreeBrownsOut: the fat tree is a tree, so every
// interior link is a cut edge — the link-down profile must demote every
// kill there to a 20% brown-out instead of cutting the network.
func TestLinkDownProfileFatTreeBrownsOut(t *testing.T) {
	tp := mustFatTree(64)
	p, err := NewFaultPlan("link-down", tp, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 64/64; len(p.Events) != want {
		t.Fatalf("%d events, want %d", len(p.Events), want)
	}
	for i, ev := range p.Events {
		if ev.Kind != FaultDegrade {
			t.Errorf("event %d on the fat tree is %s, want the degrade fallback", i, ev.Kind)
		}
		if ev.Factor != 0.2 {
			t.Errorf("event %d brown-out factor %v, want 0.2", i, ev.Factor)
		}
	}
}

// TestLinkDownProfileHypercubeKills: with path diversity the profile
// kills links for real, the last one mid-run.
func TestLinkDownProfileHypercubeKills(t *testing.T) {
	tp := mustHypercube(64)
	p, err := NewFaultPlan("link-down", tp, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 64/64; len(p.Events) != want {
		t.Fatalf("%d events, want %d", len(p.Events), want)
	}
	kills := 0
	for i, ev := range p.Events {
		if ev.Kind == FaultLinkDown {
			kills++
		}
		wantAt := sim.Time(0)
		if i == len(p.Events)-1 {
			wantAt = 100 * sim.Microsecond
		}
		if ev.At != wantAt {
			t.Errorf("event %d at %d, want %d", i, ev.At, wantAt)
		}
	}
	if kills == 0 {
		t.Fatal("no real link kills on the hypercube")
	}
}

// startFlow schedules one src -> dst flow at time 0 and returns a
// pointer to its completion time (set when the flow's done callback
// fires).
func startFlow(eng *sim.Engine, net *DataNet, src, dst, bytes int) *sim.Time {
	doneAt := new(sim.Time)
	*doneAt = -1
	eng.Schedule(0, func() {
		net.Start(src, dst, bytes, func() { *doneAt = eng.Now() })
	})
	return doneAt
}

func TestFailLinkBeforeStartDetours(t *testing.T) {
	tp := mustHypercube(8)
	link := interiorOnRoute(t, tp, 0, 1)
	eng := sim.NewEngine()
	net := NewDataNet(eng, tp, DefaultConfig())
	net.FailLink(link)
	doneAt := startFlow(eng, net, 0, 1, 65536)
	run(t, eng)
	if *doneAt < 0 {
		t.Fatal("flow never completed")
	}
	st := net.FaultStats()
	if st.LinksDown != 1 || st.Rerouted != 1 {
		t.Fatalf("stats = %+v, want 1 link down, 1 reroute", st)
	}
}

func TestFailLinkReroutesInFlight(t *testing.T) {
	tp := mustHypercube(8)
	link := interiorOnRoute(t, tp, 0, 1)

	// Healthy baseline.
	eng := sim.NewEngine()
	net := NewDataNet(eng, tp, DefaultConfig())
	healthyAt := startFlow(eng, net, 0, 1, 65536)
	run(t, eng)

	// Same flow, its link dying under it mid-transfer.
	eng2 := sim.NewEngine()
	net2 := NewDataNet(eng2, tp, DefaultConfig())
	doneAt := startFlow(eng2, net2, 0, 1, 65536)
	eng2.Schedule(*healthyAt/2, func() { net2.FailLink(link) })
	run(t, eng2)

	if *doneAt < 0 {
		t.Fatal("flow never completed after reroute")
	}
	st := net2.FaultStats()
	if st.LinksDown != 1 || st.Rerouted != 1 {
		t.Fatalf("stats = %+v, want 1 link down, 1 in-flight reroute", st)
	}
	// The detour relays through a via node's interface links, so the
	// rerouted flow cannot finish earlier than the direct one.
	if *doneAt < *healthyAt {
		t.Fatalf("rerouted flow finished at %d, before the healthy %d", *doneAt, *healthyAt)
	}
}

// TestFailLinkCutPanics: routing a flow over a cut network is a
// programming error (plans that can do this never validate), and the
// data network fails loudly rather than silently dropping traffic.
func TestFailLinkCutPanics(t *testing.T) {
	tp := mustFatTree(8) // a tree: any interior link cut disconnects it
	link := interiorOnRoute(t, tp, 0, 7)
	eng := sim.NewEngine()
	net := NewDataNet(eng, tp, DefaultConfig())
	net.FailLink(link)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Start over a cut network did not panic")
		}
		if !strings.Contains(toString(r), "no fault-free route") {
			t.Fatalf("panic = %v, want a no-fault-free-route message", r)
		}
	}()
	eng.Schedule(0, func() { net.Start(0, 7, 1024, nil) })
	run(t, eng)
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}

func TestDegradeLinkStretchesFlow(t *testing.T) {
	tp := mustFatTree(8)
	link := interiorOnRoute(t, tp, 0, 7)

	eng := sim.NewEngine()
	net := NewDataNet(eng, tp, DefaultConfig())
	healthyAt := startFlow(eng, net, 0, 7, 65536)
	run(t, eng)

	eng2 := sim.NewEngine()
	net2 := NewDataNet(eng2, tp, DefaultConfig())
	net2.DegradeLink(link, 0.25)
	slowAt := startFlow(eng2, net2, 0, 7, 65536)
	run(t, eng2)

	if !(*slowAt > *healthyAt) {
		t.Fatalf("degraded flow at %d, healthy at %d: degrade did not slow it", *slowAt, *healthyAt)
	}
	st := net2.FaultStats()
	if st.LinksDegraded != 1 {
		t.Fatalf("stats = %+v, want 1 degraded link", st)
	}
}

func TestInjectBackgroundDeterministic(t *testing.T) {
	runOnce := func() (sim.Time, int64, FaultStats) {
		eng := sim.NewEngine()
		net := NewDataNet(eng, mustHypercube(16), DefaultConfig())
		eng.Schedule(0, func() { net.InjectBackground(16, 2048, 7) })
		end := run(t, eng)
		return end, net.TotalWireBytes(), net.FaultStats()
	}
	end1, bytes1, st1 := runOnce()
	end2, bytes2, st2 := runOnce()
	if end1 != end2 || bytes1 != bytes2 || st1 != st2 {
		t.Fatalf("background runs differ: (%d %d %+v) vs (%d %d %+v)",
			end1, bytes1, st1, end2, bytes2, st2)
	}
	if st1.BackgroundFlows != 16 {
		t.Fatalf("stats = %+v, want 16 background flows", st1)
	}
	if bytes1 == 0 {
		t.Fatal("background traffic carried no wire bytes")
	}
}

// TestMaxMinFairnessOnResidualGraph re-checks the max-min bottleneck
// property after link failures and degradations: the solver must be
// max-min fair over the surviving graph — actual (possibly detoured)
// routes and effective (possibly degraded) capacities — not the
// original one.
func TestMaxMinFairnessOnResidualGraph(t *testing.T) {
	const n = 32
	tp := mustHypercube(n)
	interior := interiorLinks(tp)
	for trial := 0; trial < 10; trial++ {
		seed := int64(100 + trial)
		plan, err := NewFaultPlan("link-down", tp, seed)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		net := NewDataNet(eng, tp, DefaultConfig())
		for _, ev := range plan.Events {
			switch ev.Kind {
			case FaultLinkDown:
				net.FailLink(ev.Link)
			case FaultDegrade:
				net.DegradeLink(ev.Link, ev.Factor)
			}
		}
		// Degrade a few more links so both fault kinds shape the residual
		// graph at once.
		net.DegradeLink(interior[trial%len(interior)], 0.5)
		eng.Schedule(0, func() {
			var flows []*Flow
			for i := 0; i < 24; i++ {
				src := (i * 7) % n
				dst := (i*13 + 5) % n
				if src == dst {
					continue
				}
				flows = append(flows, net.Start(src, dst, 4096, nil))
			}
			checkResidualMaxMin(t, net, flows)
		})
		if _, err := eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// checkResidualMaxMin is checkMaxMin over the network's live state:
// each flow's actual route (detours included) and each link's effective
// capacity (degradations included).
func checkResidualMaxMin(t *testing.T, net *DataNet, flows []*Flow) {
	t.Helper()
	const tol = 1e-6
	usage := map[*link]float64{}
	maxRate := map[*link]float64{}
	for _, f := range flows {
		for _, l := range f.links {
			usage[l] += f.Rate()
			if f.Rate() > maxRate[l] {
				maxRate[l] = f.Rate()
			}
		}
	}
	for l, u := range usage {
		if l.down {
			t.Fatalf("link %d carries flows while down", l.idx)
		}
		if u > l.cap*(1+tol) {
			t.Fatalf("link %d oversubscribed on residual graph: %g > %g", l.idx, u, l.cap)
		}
	}
	for _, f := range flows {
		if f.Rate() <= 0 {
			t.Fatalf("flow %d->%d has non-positive rate %g", f.Src, f.Dst, f.Rate())
		}
		hasBottleneck := false
		for _, l := range f.links {
			if usage[l] >= l.cap*(1-tol) && f.Rate() >= maxRate[l]*(1-tol) {
				hasBottleneck = true
				break
			}
		}
		if !hasBottleneck {
			t.Fatalf("flow %d->%d (rate %g) has no saturated bottleneck on the residual graph",
				f.Src, f.Dst, f.Rate())
		}
	}
}
