package network

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fattree"
	"repro/internal/sim"
	"repro/internal/topo"
)

// mustFatTree builds the calibrated CM-5 fat tree over n nodes.
func mustFatTree(n int) topo.Topology {
	ft, err := DefaultConfig().FatTree(n)
	if err != nil {
		panic(err)
	}
	return ft
}

func newNet(t *testing.T, n int) (*sim.Engine, *DataNet) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewDataNet(eng, mustFatTree(n), DefaultConfig())
}

func run(t *testing.T, eng *sim.Engine) sim.Time {
	t.Helper()
	end, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return end
}

func TestWireBytes(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct{ user, wire int }{
		{0, 20}, {1, 20}, {15, 20}, {16, 20}, {17, 40},
		{32, 40}, {256, 320}, {512, 640}, {1920, 2400}, {-5, 20},
	}
	for _, c := range cases {
		if got := cfg.WireBytes(c.user); got != c.wire {
			t.Errorf("WireBytes(%d) = %d, want %d", c.user, got, c.wire)
		}
	}
}

func TestClusterUpRate(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ClusterUpRate(0) != 20e6 {
		t.Error("level 0")
	}
	if cfg.ClusterUpRate(1) != 40e6 {
		t.Error("level 1 should be 40 MB/s")
	}
	if cfg.ClusterUpRate(2) != 16*5e6 {
		t.Error("level 2 should be 80 MB/s")
	}
	if cfg.ClusterUpRate(3) != 64*5e6 {
		t.Error("level 3 should be 320 MB/s")
	}
}

func TestMemCopyAndComputeTime(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MemCopyTime(0) != 0 || cfg.MemCopyTime(-4) != 0 {
		t.Error("non-positive copies cost nothing")
	}
	want := sim.FromSeconds(1000 / cfg.MemCopyRate)
	if cfg.MemCopyTime(1000) != want {
		t.Error("MemCopyTime(1000)")
	}
	if cfg.ComputeTime(0) != 0 {
		t.Error("zero flops")
	}
	if cfg.ComputeTime(cfg.FlopRate) != sim.Second {
		t.Error("FlopRate flops should take 1s")
	}
}

func TestSingleFlowGetsNodeRate(t *testing.T) {
	eng, net := newNet(t, 32)
	var doneAt sim.Time
	var rate float64
	eng.Schedule(0, func() {
		f := net.Start(0, 16, 16000, func() { doneAt = eng.Now() })
		rate = f.Rate()
	})
	run(t, eng)
	// A single flow, even across the root, runs at the 20 MB/s node rate.
	if math.Abs(rate-20e6) > 1 {
		t.Fatalf("single flow rate = %g, want 20e6", rate)
	}
	wire := DefaultConfig().WireBytes(16000) // 16000/16*20 = 20000
	wantSec := float64(wire) / 20e6
	if got := doneAt.Seconds(); math.Abs(got-wantSec) > 1e-6 {
		t.Fatalf("completion at %gs, want %gs", got, wantSec)
	}
}

func TestSelfFlowPanics(t *testing.T) {
	eng, net := newNet(t, 8)
	eng.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("self flow should panic")
			}
		}()
		net.Start(3, 3, 100, nil)
	})
	run(t, eng)
}

func TestTwoFlowsShareNodeLink(t *testing.T) {
	eng, net := newNet(t, 8)
	var r1, r2 float64
	eng.Schedule(0, func() {
		f1 := net.Start(0, 1, 100000, nil)
		f2 := net.Start(0, 2, 100000, nil)
		r1, r2 = f1.Rate(), f2.Rate()
	})
	run(t, eng)
	// Both flows leave node 0: its 20 MB/s injection link is the bottleneck.
	if math.Abs(r1-10e6) > 1 || math.Abs(r2-10e6) > 1 {
		t.Fatalf("rates = %g, %g, want 10e6 each", r1, r2)
	}
}

func TestFourFlowsOutOfClusterGet10Each(t *testing.T) {
	// All 4 nodes of cluster 0 send to cluster 1: the 40 MB/s cluster
	// uplink caps each at 10 MB/s - the CM-5's published cluster-of-16
	// figure emerges from contention.
	eng, net := newNet(t, 32)
	rates := make([]float64, 4)
	eng.Schedule(0, func() {
		flows := make([]*Flow, 4)
		for i := 0; i < 4; i++ {
			flows[i] = net.Start(i, i+4, 100000, nil)
		}
		for i, f := range flows {
			rates[i] = f.Rate()
		}
	})
	run(t, eng)
	for i, r := range rates {
		if math.Abs(r-10e6) > 1 {
			t.Fatalf("flow %d rate = %g, want 10e6", i, r)
		}
	}
}

func TestRootContentionGives5PerNode(t *testing.T) {
	// All 16 nodes of the left half of a 32-node partition send across
	// the root: the level-2 uplink (80 MB/s) caps each at 5 MB/s - the
	// machine's guaranteed minimum emerges.
	eng, net := newNet(t, 32)
	rates := make([]float64, 16)
	eng.Schedule(0, func() {
		flows := make([]*Flow, 16)
		for i := 0; i < 16; i++ {
			flows[i] = net.Start(i, i+16, 100000, nil)
		}
		for i, f := range flows {
			rates[i] = f.Rate()
		}
	})
	run(t, eng)
	for i, r := range rates {
		if math.Abs(r-5e6) > 1 {
			t.Fatalf("flow %d rate = %g, want 5e6", i, r)
		}
	}
}

func TestIntraClusterPairsFullRate(t *testing.T) {
	// Pairwise exchange inside clusters: no shared links, all flows at 20.
	eng, net := newNet(t, 32)
	var rates []float64
	eng.Schedule(0, func() {
		for c := 0; c < 8; c++ {
			base := 4 * c
			f := net.Start(base, base+1, 100000, nil)
			rates = append(rates, f.Rate())
		}
	})
	run(t, eng)
	for i, r := range rates {
		if math.Abs(r-20e6) > 1 {
			t.Fatalf("flow %d rate = %g, want 20e6", i, r)
		}
	}
}

func TestRateReallocationOnCompletion(t *testing.T) {
	// Two flows share node 0's uplink at 10 MB/s each; when the short one
	// finishes, the long one speeds up to 20 MB/s. Total time for the
	// long flow (wire 40000B): phase 1 transfers 20000B in 2ms, remaining
	// 20000B at 20 MB/s takes 1ms: total 3ms.
	eng, net := newNet(t, 8)
	var longDone sim.Time
	eng.Schedule(0, func() {
		net.Start(0, 1, 16000, nil)                             // wire 20000
		net.Start(0, 2, 32000, func() { longDone = eng.Now() }) // wire 40000
	})
	run(t, eng)
	want := 3e-3
	if got := longDone.Seconds(); math.Abs(got-want) > 1e-5 {
		t.Fatalf("long flow done at %gs, want %gs", got, want)
	}
}

func TestCompletionCallbackOrderDeterministic(t *testing.T) {
	results := func() []int {
		eng, net := newNet(t, 8)
		var order []int
		eng.Schedule(0, func() {
			// Same size, same start: all finish simultaneously.
			for i := 1; i < 8; i++ {
				i := i
				net.Start(0, i, 160, func() { order = append(order, i) })
			}
		})
		run(t, eng)
		return order
	}
	a := results()
	b := results()
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic completion order: %v vs %v", a, b)
		}
	}
}

func TestZeroByteFlowStillOnePacket(t *testing.T) {
	eng, net := newNet(t, 8)
	var doneAt sim.Time
	eng.Schedule(0, func() {
		net.Start(0, 1, 0, func() { doneAt = eng.Now() })
	})
	run(t, eng)
	want := 20.0 / 20e6 // one packet at node rate
	if got := doneAt.Seconds(); math.Abs(got-want) > 1e-7 {
		t.Fatalf("0-byte flow done at %gs, want %gs", got, want)
	}
}

func TestStats(t *testing.T) {
	eng, net := newNet(t, 8)
	eng.Schedule(0, func() {
		net.Start(0, 1, 16, nil)
		net.Start(2, 3, 32, nil)
		if net.ActiveFlows() != 2 {
			t.Errorf("ActiveFlows = %d", net.ActiveFlows())
		}
	})
	run(t, eng)
	if net.ActiveFlows() != 0 {
		t.Errorf("flows still active at end")
	}
	if net.TotalFlows() != 2 {
		t.Errorf("TotalFlows = %d", net.TotalFlows())
	}
	if net.TotalWireBytes() != 20+40 {
		t.Errorf("TotalWireBytes = %d", net.TotalWireBytes())
	}
}

func TestControlNetTimes(t *testing.T) {
	topo := fattree.MustNew(32)
	ctrl := NewControlNet(topo, DefaultConfig())
	bt := ctrl.BarrierTime()
	if bt < 2*sim.Microsecond || bt > 10*sim.Microsecond {
		t.Fatalf("barrier = %v ns, want a few microseconds", int64(bt))
	}
	if ctrl.BcastTime(0) != bt {
		t.Error("0-byte bcast should equal barrier time")
	}
	if ctrl.BcastTime(1024) <= ctrl.BcastTime(128) {
		t.Error("bcast time must grow with size")
	}
	if ctrl.CombineTime(8) <= 0 {
		t.Error("combine must take time")
	}
	if ctrl.BcastTime(-1) != bt {
		t.Error("negative bytes clamp to zero")
	}
}

func TestControlNetLatencyGrowsWithMachine(t *testing.T) {
	cfg := DefaultConfig()
	small := NewControlNet(fattree.MustNew(16), cfg)
	big := NewControlNet(fattree.MustNew(1024), cfg)
	if big.BarrierTime() <= small.BarrierTime() {
		t.Fatal("bigger machine should have slightly higher control latency")
	}
}

// Property: for any flow set on a 32-node machine, the max-min allocation
// never exceeds any link capacity and every flow gets a positive rate.
func TestQuickMaxMinFeasible(t *testing.T) {
	f := func(pairsRaw []uint16) bool {
		if len(pairsRaw) == 0 || len(pairsRaw) > 64 {
			return true
		}
		eng := sim.NewEngine()
		ft := mustFatTree(32)
		net := NewDataNet(eng, ft, DefaultConfig())
		ok := true
		eng.Schedule(0, func() {
			var flows []*Flow
			for _, pr := range pairsRaw {
				src := int(pr) % 32
				dst := int(pr>>5) % 32
				if src == dst {
					continue
				}
				flows = append(flows, net.Start(src, dst, 1000, nil))
			}
			if len(flows) == 0 {
				return
			}
			// Check per-link feasibility.
			usage := make(map[int]float64)
			for _, fl := range flows {
				if fl.Rate() <= 0 {
					ok = false
				}
				for _, idx := range ft.RouteAppend(nil, fl.Src, fl.Dst) {
					usage[idx] += fl.Rate()
				}
			}
			for idx, u := range usage {
				if u > ft.Link(idx).Cap*(1+1e-9) {
					ok = false
				}
			}
		})
		if _, err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: total transfer time of a lone flow equals wire bytes / node
// rate regardless of distance.
func TestQuickLoneFlowTime(t *testing.T) {
	f := func(sr, dr uint8, sizeRaw uint16) bool {
		src, dst := int(sr)%64, int(dr)%64
		if src == dst {
			return true
		}
		size := int(sizeRaw)
		eng := sim.NewEngine()
		net := NewDataNet(eng, mustFatTree(64), DefaultConfig())
		var doneAt sim.Time
		eng.Schedule(0, func() {
			net.Start(src, dst, size, func() { doneAt = eng.Now() })
		})
		if _, err := eng.Run(); err != nil {
			return false
		}
		want := float64(net.Config().WireBytes(size)) / 20e6
		return math.Abs(doneAt.Seconds()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkCarriedAccounting(t *testing.T) {
	eng, net := newNet(t, 8)
	eng.Schedule(0, func() {
		net.Start(0, 1, 16000, nil) // wire 20000, intra-cluster
	})
	end := run(t, eng)
	carried := net.LinkCarried()
	up := carried[2*0]     // node 0's injection link
	down := carried[2*1+1] // node 1's ejection link
	if math.Abs(up-20000) > 1 || math.Abs(down-20000) > 1 {
		t.Fatalf("carried: up %g down %g, want 20000", up, down)
	}
	levels := net.LevelCarried()
	if math.Abs(levels[0]-40000) > 2 {
		t.Fatalf("level 0 carried %g", levels[0])
	}
	util := net.LevelUtilization(end)
	// One flow at full node rate on 2 of 16 node links: the level-0
	// utilization is carried/(totalcap*T) where only touched links count.
	if util[0] <= 0 || util[0] > 1.01 {
		t.Fatalf("level-0 utilization %g out of range", util[0])
	}
}

func TestLevelUtilizationCrossCluster(t *testing.T) {
	eng, net := newNet(t, 32)
	eng.Schedule(0, func() {
		for i := 0; i < 16; i++ {
			net.Start(i, i+16, 100000, nil)
		}
	})
	end := run(t, eng)
	util := net.LevelUtilization(end)
	// Saturating cross-root traffic: the level-2 uplinks/downlinks run
	// at essentially full utilization for the whole makespan.
	if util[2] < 0.95 || util[2] > 1.01 {
		t.Fatalf("level-2 utilization %g, want ~1.0", util[2])
	}
	if util[0] >= util[2] {
		t.Fatalf("node links (%g) cannot be busier than the bottleneck (%g)", util[0], util[2])
	}
	if net.LevelUtilization(0)[2] != 0 {
		t.Fatal("zero elapsed must yield empty utilization")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	mutate := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"zero node rate", mutate(func(c *Config) { c.NodeLinkRate = 0 })},
		{"negative cluster rate", mutate(func(c *Config) { c.Cluster4UpRate = -1 })},
		{"zero thin rate", mutate(func(c *Config) { c.ThinRatePerNode = 0 })},
		{"NaN flop rate", mutate(func(c *Config) { c.FlopRate = math.NaN() })},
		{"zero memcpy", mutate(func(c *Config) { c.MemCopyRate = 0 })},
		{"zero packet", mutate(func(c *Config) { c.PacketSize = 0 })},
		{"payload over packet", mutate(func(c *Config) { c.PacketPayload = 64 })},
		{"negative latency", mutate(func(c *Config) { c.WireLatency = -1 })},
		{"zero ctrl bcast", mutate(func(c *Config) { c.CtrlBcastRate = 0 })},
	}
	for _, c := range bad {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", c.name)
		}
	}
}
