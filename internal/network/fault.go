package network

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/sim"
	"repro/internal/topo"
)

// The fault model: a FaultPlan is a versioned, seed-deterministic list
// of events injected into a run at scheduled simulation times. Four
// fault kinds cover an unreliable machine's failure surface:
//
//	link-down   an interior link dies; routes avoid it (detour via an
//	            intermediate node) and in-flight flows crossing it are
//	            rerouted over the surviving graph, with the max-min
//	            solver re-solving over the new link set
//	degrade     a link's capacity is multiplied by a factor in (0, 1]
//	straggler   a node's CPU slows: send/recv overheads, memory copies
//	            and compute all stretch by the factor from the event
//	            time onward
//	background  a burst of seed-deterministic cross-traffic flows
//	            enters the data network, competing with the schedule's
//	            traffic for link bandwidth
//
// Plans serialize to canonical JSON (fixed field order, no maps), so a
// plan hashes stably into a result-store cell specification: faulty
// runs are exactly as cacheable and replayable as healthy ones.

// FaultPlanVersion is the plan format version; it participates in every
// stored cell hash that carries a plan, so changing fault semantics
// invalidates previously stored faulty results at once.
const FaultPlanVersion = 1

// FaultKind names one fault event type.
type FaultKind string

// The fault kinds.
const (
	FaultLinkDown   FaultKind = "link-down"
	FaultDegrade    FaultKind = "degrade"
	FaultStraggler  FaultKind = "straggler"
	FaultBackground FaultKind = "background"
)

// FaultEvent is one scheduled fault. Which fields matter depends on
// Kind: link-down uses Link; degrade uses Link and Factor; straggler
// uses Node and Factor; background uses Flows, Bytes and Seed.
type FaultEvent struct {
	// At is the simulation time the fault takes effect, in nanoseconds
	// of virtual time from the start of the run.
	At sim.Time `json:"at_ns"`
	// Kind selects the fault type.
	Kind FaultKind `json:"kind"`
	// Link is the topology link index a link-down or degrade targets.
	Link int `json:"link,omitempty"`
	// Node is the straggler's node rank.
	Node int `json:"node,omitempty"`
	// Factor is the degrade capacity multiplier in (0, 1], or the
	// straggler slowdown multiplier >= 1.
	Factor float64 `json:"factor,omitempty"`
	// Flows is the background burst's flow count.
	Flows int `json:"flows,omitempty"`
	// Bytes is the background burst's user bytes per flow.
	Bytes int `json:"bytes,omitempty"`
	// Seed derives the background burst's src/dst pairs.
	Seed int64 `json:"seed,omitempty"`
}

// FaultPlan is a versioned schedule of fault events for one run.
// The zero-event plan is the all-healthy plan: applying it changes
// nothing, bit for bit.
type FaultPlan struct {
	Version int          `json:"version"`
	Events  []FaultEvent `json:"events,omitempty"`
}

// NewHealthyPlan returns the current-version plan with no events.
func NewHealthyPlan() *FaultPlan { return &FaultPlan{Version: FaultPlanVersion} }

// Validate checks the plan against the topology it will be applied to:
// known version and kinds, link indices in range, link-down restricted
// to interior links (downing a node's injection or ejection link would
// disconnect it — model that as a degrade or straggler instead),
// degrade factors in (0, 1], straggler factors >= 1, and background
// bursts non-empty.
func (p *FaultPlan) Validate(t topo.Topology) error {
	if p == nil {
		return nil
	}
	if p.Version != FaultPlanVersion {
		return fmt.Errorf("network: fault plan version %d, want %d", p.Version, FaultPlanVersion)
	}
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("network: fault event %d at negative time %d", i, ev.At)
		}
		switch ev.Kind {
		case FaultLinkDown:
			if ev.Link < 0 || ev.Link >= t.NumLinks() {
				return fmt.Errorf("network: fault event %d link %d outside [0,%d)", i, ev.Link, t.NumLinks())
			}
			if t.Link(ev.Link).Level < 1 {
				return fmt.Errorf("network: fault event %d downs node link %s; only interior links (level >= 1) may fail",
					i, t.Link(ev.Link).Name)
			}
		case FaultDegrade:
			if ev.Link < 0 || ev.Link >= t.NumLinks() {
				return fmt.Errorf("network: fault event %d link %d outside [0,%d)", i, ev.Link, t.NumLinks())
			}
			if !(ev.Factor > 0 && ev.Factor <= 1) {
				return fmt.Errorf("network: fault event %d degrade factor %v outside (0, 1]", i, ev.Factor)
			}
		case FaultStraggler:
			if ev.Node < 0 || ev.Node >= t.N() {
				return fmt.Errorf("network: fault event %d straggler node %d outside [0,%d)", i, ev.Node, t.N())
			}
			if !(ev.Factor >= 1) {
				return fmt.Errorf("network: fault event %d straggler factor %v must be >= 1", i, ev.Factor)
			}
		case FaultBackground:
			if ev.Flows < 1 {
				return fmt.Errorf("network: fault event %d background burst of %d flows", i, ev.Flows)
			}
			if ev.Bytes < 0 {
				return fmt.Errorf("network: fault event %d background bytes %d negative", i, ev.Bytes)
			}
			if t.N() < 2 {
				return fmt.Errorf("network: fault event %d background traffic needs >= 2 nodes", i)
			}
		default:
			return fmt.Errorf("network: fault event %d has unknown kind %q (known: %s %s %s %s)",
				i, ev.Kind, FaultLinkDown, FaultDegrade, FaultStraggler, FaultBackground)
		}
	}
	return nil
}

// FaultStats summarizes what a plan actually did to a run. The zero
// value is a fault-free run.
type FaultStats struct {
	// Events is the number of plan events applied (events scheduled
	// after the run drained still count: they fired, into an idle
	// machine).
	Events int `json:"events,omitempty"`
	// LinksDown and LinksDegraded count distinct link state changes.
	LinksDown     int `json:"links_down,omitempty"`
	LinksDegraded int `json:"links_degraded,omitempty"`
	// Stragglers counts straggler events applied.
	Stragglers int `json:"stragglers,omitempty"`
	// Rerouted counts flows that could not use their direct route: new
	// flows detoured around dead links plus in-flight flows rerouted
	// when their link died under them.
	Rerouted int `json:"rerouted,omitempty"`
	// Background traffic injected: flow count and wire bytes.
	BackgroundFlows     int   `json:"background_flows,omitempty"`
	BackgroundWireBytes int64 `json:"background_wire_bytes,omitempty"`
}

// ErrUnknownFaultProfile is returned (wrapped, with the requested name
// and the known names) by NewFaultPlan on a profile miss.
var ErrUnknownFaultProfile = errors.New("unknown fault profile")

// faultProfile is one named plan generator.
type faultProfile struct {
	name  string
	doc   string
	build func(t topo.Topology, seed int64) *FaultPlan
}

// faultProfiles lists the named profiles in canonical order. Every
// generator is a pure function of (topology, seed): the same inputs
// always produce the same plan, so profile-built plans hash stably.
var faultProfiles = []faultProfile{
	{"healthy", "no faults: the control profile, byte-identical to running without a plan",
		func(t topo.Topology, seed int64) *FaultPlan { return NewHealthyPlan() }},
	{"link-down", "interior link failures with detour reroute: 1+N/64 links dead at start, one more dies mid-run; a kill that would cut the network browns the link out to 20% instead",
		func(t topo.Topology, seed int64) *FaultPlan {
			interior := interiorLinks(t)
			rng := rand.New(rand.NewSource(seed ^ 0x6c696e6b)) // "link"
			want := 2 + t.N()/64                               // the last pick fails mid-run
			perm := rng.Perm(len(interior))
			down := map[int]bool{}
			p := NewHealthyPlan()
			for picked := 0; picked < want && picked < len(perm); picked++ {
				link := interior[perm[picked]]
				var at sim.Time
				if picked == want-1 {
					at = 100 * sim.Microsecond
				}
				if killSurvivable(t, down, link) {
					down[link] = true
					p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultLinkDown, Link: link})
				} else {
					// No detour survives this kill — on topologies with no
					// path diversity (the fat tree is a tree: every
					// interior link is a cut edge) the victim link browns
					// out instead, modeling the loss of some of the
					// parallel physical channels its capacity aggregates.
					p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultDegrade, Link: link, Factor: 0.2})
				}
			}
			return p
		}},
	{"degrade", "capacity brownout: ~1/8 of interior links at quarter capacity from the start",
		func(t topo.Topology, seed int64) *FaultPlan {
			interior := interiorLinks(t)
			rng := rand.New(rand.NewSource(seed ^ 0x64656772)) // "degr"
			hit := len(interior)/8 + 1
			perm := rng.Perm(len(interior))
			p := NewHealthyPlan()
			for i := 0; i < hit && i < len(perm); i++ {
				p.Events = append(p.Events, FaultEvent{
					At: 0, Kind: FaultDegrade, Link: interior[perm[i]], Factor: 0.25,
				})
			}
			return p
		}},
	{"straggler", "slow nodes: 1 + N/32 nodes compute and drive their interfaces 6x slower from the start",
		func(t topo.Topology, seed int64) *FaultPlan {
			n := t.N()
			rng := rand.New(rand.NewSource(seed ^ 0x73747261)) // "stra"
			count := 1 + n/32
			perm := rng.Perm(n)
			p := NewHealthyPlan()
			for i := 0; i < count && i < len(perm); i++ {
				p.Events = append(p.Events, FaultEvent{
					At: 0, Kind: FaultStraggler, Node: perm[i], Factor: 6,
				})
			}
			return p
		}},
	{"crosstraffic", "background load: N-flow bursts of 2 KB cross-traffic at 0, 1 and 2 ms",
		func(t topo.Topology, seed int64) *FaultPlan {
			p := NewHealthyPlan()
			for i, at := range []sim.Time{0, sim.Millisecond, 2 * sim.Millisecond} {
				p.Events = append(p.Events, FaultEvent{
					At: at, Kind: FaultBackground, Flows: t.N(), Bytes: 2048,
					Seed: seed ^ int64(i+1),
				})
			}
			return p
		}},
}

// killSurvivable reports whether every (src, dst) pair still has a
// fault-free route (direct or single-via detour) after downing
// candidate on top of the already-down set — the link-down profile's
// guarantee that a plan it builds can always be routed.
func killSurvivable(t topo.Topology, down map[int]bool, candidate int) bool {
	isDown := func(l int) bool { return l == candidate || down[l] }
	n := t.N()
	var buf []int
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			var ok bool
			if buf, ok = topo.DetourRoute(t, buf[:0], src, dst, isDown); !ok {
				return false
			}
		}
	}
	return true
}

// interiorLinks returns the indices of every level >= 1 link.
func interiorLinks(t topo.Topology) []int {
	var out []int
	for i := 0; i < t.NumLinks(); i++ {
		if t.Link(i).Level >= 1 {
			out = append(out, i)
		}
	}
	return out
}

// FaultProfiles returns the named fault profiles in canonical order.
func FaultProfiles() []string {
	out := make([]string, len(faultProfiles))
	for i, p := range faultProfiles {
		out[i] = p.name
	}
	return out
}

// FaultProfileDoc returns the one-line description of a profile name,
// or "" for an unknown name.
func FaultProfileDoc(name string) string {
	for _, p := range faultProfiles {
		if p.name == name {
			return p.doc
		}
	}
	return ""
}

// NewFaultPlan builds the named profile's plan for the given topology
// and seed. The result is deterministic in (profile, topology shape,
// seed) and already validated against t. A name miss returns an error
// wrapping ErrUnknownFaultProfile that lists every known name.
func NewFaultPlan(profile string, t topo.Topology, seed int64) (*FaultPlan, error) {
	for _, fp := range faultProfiles {
		if fp.name == profile {
			p := fp.build(t, seed)
			if err := p.Validate(t); err != nil {
				return nil, err
			}
			return p, nil
		}
	}
	return nil, fmt.Errorf("network: %w %q (known: %s)",
		ErrUnknownFaultProfile, profile, strings.Join(FaultProfiles(), " "))
}
