package network

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// maxminTopologies builds one instance of every registered topology
// family at n nodes.
func maxminTopologies(t *testing.T, n int) []topo.Topology {
	t.Helper()
	rates := DefaultConfig().TopologyRates()
	var out []topo.Topology
	for _, name := range topo.Names() {
		tp, err := topo.New(name, n, rates)
		if err != nil {
			t.Fatalf("New(%s, %d): %v", name, n, err)
		}
		out = append(out, tp)
	}
	return out
}

// TestMaxMinFairnessProperty checks the defining property of a max-min
// fair allocation on every topology family, over randomized flow sets:
// no flow's rate can be increased without decreasing the rate of some
// flow with an equal-or-smaller rate. Concretely, every flow must have
// a bottleneck link on its path that is (a) saturated and (b) carries
// no flow with a larger rate — if no such link existed, the flow could
// grow at nobody's expense (slack everywhere) or only at the expense of
// strictly larger flows (not max-min).
func TestMaxMinFairnessProperty(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(7))
	for _, tp := range maxminTopologies(t, n) {
		for trial := 0; trial < 20; trial++ {
			eng := sim.NewEngine()
			net := NewDataNet(eng, tp, DefaultConfig())
			nflows := 1 + rng.Intn(48)
			eng.Schedule(0, func() {
				var flows []*Flow
				for i := 0; i < nflows; i++ {
					src := rng.Intn(n)
					dst := rng.Intn(n)
					if src == dst {
						continue
					}
					flows = append(flows, net.Start(src, dst, 4000+rng.Intn(8000), nil))
				}
				checkMaxMin(t, tp, flows)
			})
			if _, err := eng.Run(); err != nil {
				t.Fatalf("%s: %v", tp.Name(), err)
			}
		}
	}
}

// checkMaxMin asserts the bottleneck characterization of max-min
// fairness for the given active flows.
func checkMaxMin(t *testing.T, tp topo.Topology, flows []*Flow) {
	t.Helper()
	const tol = 1e-6 // relative float tolerance
	// Aggregate per-link usage and the max rate crossing each link.
	usage := map[int]float64{}
	maxRate := map[int]float64{}
	routes := make([][]int, len(flows))
	for i, f := range flows {
		routes[i] = tp.RouteAppend(nil, f.Src, f.Dst)
		for _, l := range routes[i] {
			usage[l] += f.Rate()
			if f.Rate() > maxRate[l] {
				maxRate[l] = f.Rate()
			}
		}
	}
	// Feasibility: no link oversubscribed.
	for l, u := range usage {
		if c := tp.Link(l).Cap; u > c*(1+tol) {
			t.Fatalf("%s: link %s oversubscribed: %g > cap %g", tp.Name(), tp.Link(l).Name, u, c)
		}
	}
	// Max-min: every flow has a saturated bottleneck where it is maximal.
	for i, f := range flows {
		if f.Rate() <= 0 {
			t.Fatalf("%s: flow %d->%d has non-positive rate %g", tp.Name(), f.Src, f.Dst, f.Rate())
		}
		hasBottleneck := false
		for _, l := range routes[i] {
			c := tp.Link(l).Cap
			saturated := usage[l] >= c*(1-tol)
			maximal := f.Rate() >= maxRate[l]*(1-tol)
			if saturated && maximal {
				hasBottleneck = true
				break
			}
		}
		if !hasBottleneck {
			t.Fatalf("%s: flow %d->%d (rate %g) has no saturated bottleneck link where it is maximal — allocation is not max-min fair",
				tp.Name(), f.Src, f.Dst, f.Rate())
		}
	}
}
