package sim

import "testing"

// BenchmarkLockstepProcs measures the process hand-off path: n procs in
// lockstep sleeps, the dominant pattern under the cmmd rendezvous model.
func BenchmarkLockstepProcs(b *testing.B) {
	for _, n := range []int{1, 32, 256} {
		b.Run(map[int]string{1: "1proc", 32: "32procs", 256: "256procs"}[n], func(b *testing.B) {
			steps := b.N
			e := NewEngine()
			for i := 0; i < n; i++ {
				e.Spawn("p", func(p *Proc) {
					for s := 0; s < steps; s++ {
						p.Sleep(Microsecond)
					}
				})
			}
			b.ResetTimer()
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkEventChurn measures pure event scheduling: chained callbacks
// through the pooled-event path.
func BenchmarkEventChurn(b *testing.B) {
	e := NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			e.After(1, chain)
		}
	}
	e.Schedule(0, chain)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSameInstantBurst measures the same-instant FIFO fast path:
// each fired event immediately schedules another at the current time.
func BenchmarkSameInstantBurst(b *testing.B) {
	e := NewEngine()
	n := 0
	var burst func()
	burst = func() {
		n++
		if n < b.N {
			e.After(0, burst)
		}
	}
	e.Schedule(0, burst)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerReset measures re-arming one timer, the data network's
// completion-tick pattern.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine()
	tm := e.NewTimer(func() {})
	n := 0
	var rearm func()
	rearm = func() {
		n++
		tm.Reset(e.Now() + 10)
		if n < b.N {
			e.After(1, rearm)
		}
	}
	e.Schedule(0, rearm)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
