package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyEngineRuns(t *testing.T) {
	e := NewEngine()
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 0 {
		t.Fatalf("end = %d, want 0", end)
	}
}

func TestRunTwiceErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 30 {
		t.Fatalf("end = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestEventsChainedFromEvents(t *testing.T) {
	e := NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 100 {
			e.After(1, chain)
		}
	}
	e.Schedule(0, chain)
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 100 || end != 99 {
		t.Fatalf("n=%d end=%d, want 100, 99", n, end)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * Microsecond)
			ticks = append(ticks, p.Now())
		}
	})
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 50*Microsecond {
		t.Fatalf("end = %d, want 50us", end)
	}
	for i, tk := range ticks {
		if want := Time(i+1) * 10 * Microsecond; tk != want {
			t.Fatalf("tick %d at %d, want %d", i, tk, want)
		}
	}
}

func TestProcZeroSleepYields(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		ran = true
		if p.Now() != 0 {
			t.Errorf("zero sleep advanced time to %d", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("process did not resume after zero sleep")
	}
}

func TestNegativeSleepClamps(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("negative sleep moved time to %d", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		mk := func(name string, d Time) func(*Proc) {
			return func(p *Proc) {
				for i := 0; i < 4; i++ {
					p.Sleep(d)
					log = append(log, name)
				}
			}
		}
		e.Spawn("a", mk("a", 3))
		e.Spawn("b", mk("b", 5))
		if _, err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	// a at 3,6,9,12; b at 5,10,15,20 -> a b a a b a b b
	want := []string{"a", "b", "a", "a", "b", "a", "b", "b"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("interleaving = %v, want %v", first, want)
		}
	}
}

func TestParkAndReady(t *testing.T) {
	e := NewEngine()
	var wokeAt Time
	p := e.Spawn("sleeper", func(p *Proc) {
		p.Park()
		wokeAt = p.Now()
	})
	e.Schedule(42, func() { e.Ready(p) })
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 42 {
		t.Fatalf("woke at %d, want 42", wokeAt)
	}
}

func TestProcWakesAnotherProc(t *testing.T) {
	e := NewEngine()
	var order []string
	var waiter *Proc
	waiter = e.Spawn("waiter", func(p *Proc) {
		p.Park()
		order = append(order, "waiter")
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "waker")
		e.Ready(waiter)
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "waker" || order[1] != "waiter" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck-a", func(p *Proc) { p.Park() })
	e.Spawn("stuck-b", func(p *Proc) { p.Park() })
	_, err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if de.Pending != 2 {
		t.Fatalf("Pending = %d, want 2", de.Pending)
	}
	if len(de.Parked) != 2 || de.Parked[0] != "stuck-a" || de.Parked[1] != "stuck-b" {
		t.Fatalf("Parked = %v", de.Parked)
	}
	if de.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestPartialDeadlockStillReported(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Sleep(5) })
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	_, err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok || de.Pending != 1 || de.Parked[0] != "stuck" {
		t.Fatalf("err = %v", err)
	}
}

func TestManyProcsAllFinish(t *testing.T) {
	e := NewEngine()
	const n = 256
	fin := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(Time(i))
			fin++
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fin != n {
		t.Fatalf("finished = %d, want %d", fin, n)
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	e := NewEngine()
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Run should panic")
		}
	}()
	e.Spawn("late", func(p *Proc) {})
}

func TestReadyNonParkedPanics(t *testing.T) {
	e := NewEngine()
	var p2 *Proc
	p2 = e.Spawn("b", func(p *Proc) { p.Park() })
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1) // let b reach Park
		defer func() {
			if recover() == nil {
				t.Error("Ready on runnable proc should panic")
			}
		}()
		e.Ready(p2) // legal wake
		e.Ready(p2) // b already runnable: must panic
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReadyDuringSleepPanics(t *testing.T) {
	e := NewEngine()
	var p2 *Proc
	p2 = e.Spawn("b", func(p *Proc) { p.Sleep(100) })
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("Ready on sleeping proc should panic")
			}
		}()
		e.Ready(p2)
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestProcIdentity(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("alpha", func(p *Proc) {
		if p.ID() != 0 || p.Name() != "alpha" || p.Engine() != e {
			t.Errorf("identity wrong: id=%d name=%q", p.ID(), p.Name())
		}
	})
	if p.ID() != 0 {
		t.Fatalf("ID = %d", p.ID())
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Error("Second.Seconds")
	}
	if Millisecond.Millis() != 1.0 {
		t.Error("Millisecond.Millis")
	}
	if Microsecond.Micros() != 1.0 {
		t.Error("Microsecond.Micros")
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Error("FromSeconds(1.5)")
	}
	if FromSeconds(-1) != 0 {
		t.Error("FromSeconds negative should clamp to 0")
	}
	if FromSeconds(0) != 0 {
		t.Error("FromSeconds(0)")
	}
}

// Property: running a random batch of events always executes them in
// nondecreasing time order and ends at the max scheduled time.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		times := make([]Time, n)
		var fired []Time
		for i := 0; i < n; i++ {
			times[i] = Time(rng.Intn(1000))
			at := times[i]
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		end, err := e.Run()
		if err != nil {
			return false
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != n {
			return false
		}
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return end == times[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N procs each sleeping k times by random positive deltas finish
// at the sum of their deltas, and the engine ends at the max.
func TestQuickProcFinishTimes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := rng.Intn(8) + 1
		ends := make([]Time, n)
		var max Time
		for i := 0; i < n; i++ {
			i := i
			k := rng.Intn(5) + 1
			var total Time
			deltas := make([]Time, k)
			for j := range deltas {
				deltas[j] = Time(rng.Intn(100) + 1)
				total += deltas[j]
			}
			if total > max {
				max = total
			}
			want := total
			e.Spawn("p", func(p *Proc) {
				for _, d := range deltas {
					p.Sleep(d)
				}
				ends[i] = p.Now()
				if p.Now() != want {
					panic("wrong finish time")
				}
			})
		}
		end, err := e.Run()
		return err == nil && end == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetMovesSingleEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tm := e.NewTimer(func() { fired = append(fired, e.Now()) })
	e.Schedule(0, func() {
		tm.Reset(100)
		tm.Reset(40) // earlier: must move, not duplicate
	})
	e.Schedule(60, func() { tm.Reset(70) }) // re-arm after firing
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 || fired[0] != 40 || fired[1] != 70 {
		t.Fatalf("fired = %v, want [40 70]", fired)
	}
	if end != 70 {
		t.Fatalf("end = %d, want 70", end)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer(func() { fired = true })
	e.Schedule(0, func() {
		tm.Reset(50)
		if !tm.Active() {
			t.Error("timer should be active after Reset")
		}
		tm.Stop()
		tm.Stop() // stopping a stopped timer is a no-op
		if tm.Active() {
			t.Error("timer should be inactive after Stop")
		}
	})
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if end != 0 {
		t.Fatalf("end = %d, want 0", end)
	}
}

func TestTimerInterleavesWithEventsBySeq(t *testing.T) {
	// A timer Reset to the same instant as an existing event must fire
	// after it (the event was registered first).
	e := NewEngine()
	var order []string
	tm := e.NewTimer(func() { order = append(order, "timer") })
	e.Schedule(10, func() { order = append(order, "event") })
	e.Schedule(0, func() { tm.Reset(10) })
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "timer" {
		t.Fatalf("order = %v, want [event timer]", order)
	}
}

func TestTimerResetPastPanics(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func() {})
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset into the past should panic")
			}
		}()
		tm.Reset(50)
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventPoolReuseKeepsOrdering(t *testing.T) {
	// Heavy schedule/fire churn through the pool must not disturb the
	// (at, seq) ordering contract.
	e := NewEngine()
	var got []int
	n := 0
	for round := 0; round < 50; round++ {
		round := round
		e.Schedule(Time(round), func() {
			for k := 0; k < 4; k++ {
				v := n
				n++
				e.After(0, func() { got = append(got, v) })
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 200 {
		t.Fatalf("got %d events, want 200", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant burst out of order at %d: %v...", i, got[:i+1])
		}
	}
}

func TestSelfResumeNeedsNoOtherProcs(t *testing.T) {
	// A lone process sleeping repeatedly exercises the self-resume fast
	// path (dispatch returns control without a channel hand-off).
	e := NewEngine()
	var at Time
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(1)
		}
		at = p.Now()
	})
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 1000 || end != 1000 {
		t.Fatalf("at=%d end=%d, want 1000", at, end)
	}
}
