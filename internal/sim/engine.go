// Package sim provides a deterministic discrete-event simulation engine
// with a cooperative process model.
//
// Each simulated processor runs as its own goroutine, but exactly one
// goroutine executes at any instant. The scheduler runs inline on
// whichever goroutine is yielding: a parking process drains the event
// queue itself and hands control directly to the next runnable process
// (one channel operation), or — when its own timer is next — simply keeps
// running with no channel traffic at all. Control transfer is therefore
// strictly sequential and a simulation is fully deterministic: the same
// inputs always produce the same virtual-time trace.
//
// Virtual time is measured in integer nanoseconds (type Time).
package sim

import (
	"fmt"
	"sort"
)

// Time is virtual simulation time in nanoseconds.
type Time int64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest nanosecond. Negative and non-finite inputs are clamped to zero.
func FromSeconds(s float64) Time {
	if !(s > 0) {
		return 0
	}
	return Time(s*1e9 + 0.5)
}

// event is a scheduled callback or a timed process wakeup. Events are
// pooled: the engine recycles them instead of allocating one per
// Schedule/Sleep call.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	idx   int    // heap position, -1 when not queued
	fn    func()
	proc  *Proc  // timed wakeup: ready proc directly, no closure
	timer *Timer // owned by a Timer: reusable, never pooled
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procParked
	procDone
)

// Proc is a simulated process (one per simulated processor). Its body
// function runs on a dedicated goroutine, scheduled cooperatively by the
// Engine. All Proc methods must be called from the body goroutine.
type Proc struct {
	id       int
	name     string
	eng      *Engine
	body     func(*Proc)
	resume   chan struct{}
	state    procState
	wakeable bool // parked via Park (Ready allowed), not via Sleep
}

// ID returns the process's index in the engine (0-based, creation order).
func (p *Proc) ID() int { return p.id }

// Name returns the process's debug name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances the process's virtual time by d. A non-positive d yields
// without advancing time (the process re-runs in the same instant after
// pending same-time events).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	eng := p.eng
	ev := eng.getEvent()
	ev.proc = p
	eng.enqueue(eng.now+d, ev)
	p.park(false)
}

// Park blocks the process until another component calls Engine.Ready(p)
// (typically from an event callback or another process). A Sleep-parked
// process cannot be woken by Ready; only its own timer resumes it.
func (p *Proc) Park() { p.park(true) }

func (p *Proc) park(wakeable bool) {
	p.state = procParked
	p.wakeable = wakeable
	if !p.eng.dispatch(p) {
		<-p.resume
	}
	p.state = procRunning
}

// Engine is a deterministic discrete-event simulator.
type Engine struct {
	now      Time
	events   []*event // binary heap ordered by (at, seq)
	nowq     []*event // FIFO of events scheduled for the current instant
	nowqHead int
	seq      uint64
	procs    []*Proc
	runq     []*Proc
	runqHead int
	free     []*event      // event pool
	idle     chan struct{} // wakes Run when the simulation exhausts
	done     int           // finished processes
	running  bool
	ran      bool
	stats    Stats
}

// Stats are the engine's internal event-machinery counters, maintained
// unconditionally (plain integer increments on paths that already
// touch the same cache lines) and folded into the observability layer
// after the run.
type Stats struct {
	EventsFired     int64 // events executed, including timed wakeups
	EventsPooled    int64 // events recycled from the free pool
	EventsAllocated int64 // events allocated because the pool was empty
	HeapHighWater   int   // maximum heap depth reached
}

// Stats returns the engine's event counters.
func (e *Engine) Stats() Stats { return e.stats }

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{idle: make(chan struct{}, 1)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) getEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.stats.EventsPooled++
		return ev
	}
	e.stats.EventsAllocated++
	return &event{idx: -1}
}

func (e *Engine) putEvent(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.idx = -1
	e.free = append(e.free, ev)
}

// enqueue stamps the event with the next sequence number and queues it.
// Events for the current instant go to a plain FIFO instead of the heap
// when no queued event shares the instant (queued ones carry smaller
// sequence numbers and must fire first, which only the heap can order).
func (e *Engine) enqueue(at Time, ev *event) {
	e.seq++
	ev.at = at
	ev.seq = e.seq
	if e.running && at == e.now && (len(e.events) == 0 || e.events[0].at != e.now) {
		e.nowq = append(e.nowq, ev)
		return
	}
	e.heapPush(ev)
}

// Schedule registers fn to run at virtual time at. Events scheduled for
// the same instant run in registration order. Scheduling in the past is an
// error that panics (it indicates a model bug).
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := e.getEvent()
	ev.fn = fn
	e.enqueue(at, ev)
}

// After schedules fn to run d from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Spawn creates a process with the given debug name and body. It must be
// called before Run.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	if e.ran {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(e.procs),
		name:   name,
		eng:    e,
		body:   body,
		resume: make(chan struct{}, 1),
		state:  procNew,
	}
	e.procs = append(e.procs, p)
	return p
}

// Ready marks a parked process runnable. It must be called from engine
// context (an event callback or a running process). Readying a process
// that is not parked panics — it indicates a lost-wakeup or double-wakeup
// bug in the model.
func (e *Engine) Ready(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: Ready(%s) in state %d", p.name, p.state))
	}
	if !p.wakeable {
		panic(fmt.Sprintf("sim: Ready(%s) while in timed sleep", p.name))
	}
	e.ready(p)
}

func (e *Engine) ready(p *Proc) {
	p.state = procRunnable
	e.runq = append(e.runq, p)
}

// fire runs one due event on the calling goroutine.
func (e *Engine) fire(ev *event) {
	e.stats.EventsFired++
	if ev.proc != nil {
		e.ready(ev.proc)
		e.putEvent(ev)
		return
	}
	if ev.timer != nil {
		ev.fn() // reusable: the timer keeps owning the event
		return
	}
	fn := ev.fn
	e.putEvent(ev)
	fn()
}

// dispatch runs the scheduler inline on the calling goroutine until the
// next runnable process is found. It returns true when that process is
// self, meaning the caller continues with no context switch at all.
// Otherwise control has been handed to the next process (or back to Run
// when the simulation is exhausted) and the caller must wait on its own
// resume channel — or simply return, if it is finished.
func (e *Engine) dispatch(self *Proc) bool {
	for {
		// Run-queue first: woken processes run before the clock moves.
		if e.runqHead < len(e.runq) {
			next := e.runq[e.runqHead]
			e.runq[e.runqHead] = nil
			e.runqHead++
			if next == self {
				return true
			}
			next.resume <- struct{}{}
			return false
		}
		e.runq = e.runq[:0]
		e.runqHead = 0

		// Same-instant events appended while processing this instant.
		if e.nowqHead < len(e.nowq) {
			ev := e.nowq[e.nowqHead]
			e.nowq[e.nowqHead] = nil
			e.nowqHead++
			e.fire(ev)
			continue
		}
		e.nowq = e.nowq[:0]
		e.nowqHead = 0

		if len(e.events) == 0 {
			e.idle <- struct{}{}
			return false
		}
		ev := e.heapPop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.fire(ev)
	}
}

// DeadlockError reports that the simulation stalled with live processes.
type DeadlockError struct {
	At      Time
	Parked  []string // names of parked processes
	Pending int      // processes not yet finished
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v ns: %d process(es) parked forever: %v",
		int64(d.At), d.Pending, d.Parked)
}

// Run executes the simulation to completion: all processes finished and no
// events remain, or — if there are no processes — until the event queue
// drains. It returns the final virtual time. If processes remain parked
// with no pending events, Run returns a *DeadlockError.
func (e *Engine) Run() (Time, error) {
	if e.ran {
		return e.now, fmt.Errorf("sim: Run called twice")
	}
	e.ran = true
	e.running = true

	// Launch all process goroutines; they block until first resumed. A
	// finishing process dispatches onward itself, then its goroutine exits.
	for _, p := range e.procs {
		p := p
		go func() {
			<-p.resume
			p.state = procRunning
			p.body(p)
			p.state = procDone
			e.done++
			e.dispatch(nil)
		}()
		e.ready(p)
	}

	e.dispatch(nil)
	<-e.idle
	e.running = false

	if e.done != len(e.procs) {
		var parked []string
		for _, p := range e.procs {
			if p.state != procDone {
				parked = append(parked, p.name)
			}
		}
		sort.Strings(parked)
		return e.now, &DeadlockError{At: e.now, Parked: parked, Pending: len(parked)}
	}
	return e.now, nil
}

// Timer is a reusable, reschedulable event. It exists for the
// schedule-then-supersede pattern (e.g. the data network's
// earliest-completion tick, re-armed on every rate change): Reset moves
// the timer's single heap entry instead of abandoning a stale event and
// allocating a fresh closure each time.
type Timer struct {
	eng *Engine
	ev  *event
}

// NewTimer returns a stopped timer that runs fn in engine context when it
// fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e, ev: &event{idx: -1, fn: fn}}
	t.ev.timer = t
	return t
}

// Active reports whether the timer is currently scheduled.
func (t *Timer) Active() bool { return t.ev.idx >= 0 }

// Reset schedules the timer to fire at the given time, rescheduling it if
// already pending. Like Schedule, resetting into the past panics.
func (t *Timer) Reset(at Time) {
	e := t.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: timer reset at %d before now %d", at, e.now))
	}
	e.seq++
	ev := t.ev
	ev.at = at
	ev.seq = e.seq
	if ev.idx >= 0 {
		e.heapFix(ev)
	} else {
		e.heapPush(ev)
	}
}

// Stop unschedules the timer if pending. Stopping a stopped timer is a
// no-op.
func (t *Timer) Stop() {
	if t.ev.idx >= 0 {
		t.eng.heapRemove(t.ev)
	}
}

// Event heap: a hand-rolled binary heap over (at, seq) with position
// tracking, avoiding container/heap's interface boxing on the hottest
// path in the simulator.

func (e *Engine) heapLess(i, j int) bool {
	a, b := e.events[i], e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapSwap(i, j int) {
	e.events[i], e.events[j] = e.events[j], e.events[i]
	e.events[i].idx = i
	e.events[j].idx = j
}

func (e *Engine) heapPush(ev *event) {
	ev.idx = len(e.events)
	e.events = append(e.events, ev)
	if len(e.events) > e.stats.HeapHighWater {
		e.stats.HeapHighWater = len(e.events)
	}
	e.siftUp(ev.idx)
}

func (e *Engine) heapPop() *event {
	top := e.events[0]
	last := len(e.events) - 1
	e.events[0] = e.events[last]
	e.events[0].idx = 0
	e.events[last] = nil
	e.events = e.events[:last]
	if last > 0 {
		e.siftDown(0)
	}
	top.idx = -1
	return top
}

func (e *Engine) heapRemove(ev *event) {
	i := ev.idx
	last := len(e.events) - 1
	if i != last {
		e.events[i] = e.events[last]
		e.events[i].idx = i
	}
	e.events[last] = nil
	e.events = e.events[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.idx = -1
}

func (e *Engine) heapFix(ev *event) {
	i := ev.idx
	e.siftDown(i)
	if e.events[i] == ev {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(i, parent) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.events)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		small := left
		if right := left + 1; right < n && e.heapLess(right, left) {
			small = right
		}
		if !e.heapLess(small, i) {
			break
		}
		e.heapSwap(i, small)
		i = small
	}
}
