// Package sim provides a deterministic discrete-event simulation engine
// with a cooperative process model.
//
// Each simulated processor runs as its own goroutine, but exactly one
// goroutine — the engine or a single process — executes at any instant.
// Control passes by strict channel hand-off, so no locks are needed and a
// simulation is fully deterministic: the same inputs always produce the
// same virtual-time trace.
//
// Virtual time is measured in integer nanoseconds (type Time).
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is virtual simulation time in nanoseconds.
type Time int64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest nanosecond. Negative and non-finite inputs are clamped to zero.
func FromSeconds(s float64) Time {
	if !(s > 0) {
		return 0
	}
	return Time(s*1e9 + 0.5)
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procParked
	procDone
)

// Proc is a simulated process (one per simulated processor). Its body
// function runs on a dedicated goroutine, scheduled cooperatively by the
// Engine. All Proc methods must be called from the body goroutine.
type Proc struct {
	id       int
	name     string
	eng      *Engine
	body     func(*Proc)
	resume   chan struct{}
	state    procState
	wakeable bool // parked via Park (Ready allowed), not via Sleep
}

// ID returns the process's index in the engine (0-based, creation order).
func (p *Proc) ID() int { return p.id }

// Name returns the process's debug name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances the process's virtual time by d. A non-positive d yields
// without advancing time (the process re-runs in the same instant after
// pending same-time events).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	eng := p.eng
	eng.Schedule(eng.now+d, func() { eng.ready(p) })
	p.park(false)
}

// Park blocks the process until another component calls Engine.Ready(p)
// (typically from an event callback or another process). A Sleep-parked
// process cannot be woken by Ready; only its own timer resumes it.
func (p *Proc) Park() { p.park(true) }

func (p *Proc) park(wakeable bool) {
	p.state = procParked
	p.wakeable = wakeable
	p.eng.yield <- p
	<-p.resume
	p.state = procRunning
}

// Engine is a deterministic discrete-event simulator.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	procs  []*Proc
	runq   []*Proc
	yield  chan *Proc
	ran    bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan *Proc)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at virtual time at. Events scheduled for
// the same instant run in registration order. Scheduling in the past is an
// error that panics (it indicates a model bug).
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Spawn creates a process with the given debug name and body. It must be
// called before Run.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	if e.ran {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(e.procs),
		name:   name,
		eng:    e,
		body:   body,
		resume: make(chan struct{}),
		state:  procNew,
	}
	e.procs = append(e.procs, p)
	return p
}

// Ready marks a parked process runnable. It must be called from engine
// context (an event callback or a running process). Readying a process
// that is not parked panics — it indicates a lost-wakeup or double-wakeup
// bug in the model.
func (e *Engine) Ready(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: Ready(%s) in state %d", p.name, p.state))
	}
	if !p.wakeable {
		panic(fmt.Sprintf("sim: Ready(%s) while in timed sleep", p.name))
	}
	e.ready(p)
}

func (e *Engine) ready(p *Proc) {
	p.state = procRunnable
	e.runq = append(e.runq, p)
}

// DeadlockError reports that the simulation stalled with live processes.
type DeadlockError struct {
	At      Time
	Parked  []string // names of parked processes
	Pending int      // processes not yet finished
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v ns: %d process(es) parked forever: %v",
		int64(d.At), d.Pending, d.Parked)
}

// Run executes the simulation to completion: all processes finished and no
// events remain, or — if there are no processes — until the event queue
// drains. It returns the final virtual time. If processes remain parked
// with no pending events, Run returns a *DeadlockError.
func (e *Engine) Run() (Time, error) {
	if e.ran {
		return e.now, fmt.Errorf("sim: Run called twice")
	}
	e.ran = true

	done := 0
	// Launch all process goroutines; they block until first resumed.
	for _, p := range e.procs {
		p := p
		go func() {
			<-p.resume
			p.state = procRunning
			p.body(p)
			p.state = procDone
			e.yield <- p
		}()
		e.ready(p)
	}

	for {
		// Drain the run queue: run each process until it parks or finishes.
		for len(e.runq) > 0 {
			p := e.runq[0]
			e.runq = e.runq[1:]
			p.resume <- struct{}{}
			q := <-e.yield // p (or a proc it transitively woke... always p)
			if q.state == procDone {
				done++
			}
		}
		if len(e.events) == 0 {
			break
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}

	if done != len(e.procs) {
		var parked []string
		for _, p := range e.procs {
			if p.state != procDone {
				parked = append(parked, p.name)
			}
		}
		sort.Strings(parked)
		return e.now, &DeadlockError{At: e.now, Parked: parked, Pending: len(parked)}
	}
	return e.now, nil
}
