package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fill exercises every metric type against r the way instrumented code
// does: handles first, then updates.
func fill(r *Registry) {
	c := r.Counter("requests_total", Label{"route", "/v1/jobs"}, Label{"status", "200"})
	c.Add(3)
	r.Counter("requests_total", Label{"status", "429"}, Label{"route", "/v1/jobs"}).Inc()
	g := r.Gauge("queue_depth")
	g.Set(2)
	g.Add(3)
	hw := r.Gauge("heap_high_water")
	hw.SetMax(10)
	hw.SetMax(7) // lower: must not win
	h := r.Histogram("latency_seconds", []float64{0.001, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(42)
	r.GaugeFunc("live_value", func() float64 { return 6.5 })
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	fill(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE heap_high_water gauge
heap_high_water 10
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.001"} 1
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 42.0505
latency_seconds_count 3
# TYPE live_value gauge
live_value 6.5
# TYPE queue_depth gauge
queue_depth 5
# TYPE requests_total counter
requests_total{route="/v1/jobs",status="200"} 3
requests_total{route="/v1/jobs",status="429"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestExpositionDeterminism: the same updates against two fresh
// registries render byte-identical text.
func TestExpositionDeterminism(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		fill(r)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two identical runs rendered differently:\n%s\n---\n%s", a, b)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", Label{"a", "1"}, Label{"b", "2"})
	b := r.Counter("x_total", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Fatal("label order produced distinct series")
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	fill(r)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if m[`requests_total{route="/v1/jobs",status="200"}`] != float64(3) {
		t.Errorf("snapshot counter = %v, want 3", m[`requests_total{route="/v1/jobs",status="200"}`])
	}
	if m["queue_depth"] != float64(5) {
		t.Errorf("snapshot gauge = %v, want 5", m["queue_depth"])
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

// TestNilSafety: a nil registry hands out nil handles and every method
// on them is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", SecondsBuckets())
	r.GaugeFunc("f", func() float64 { return 1 })
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles reported non-zero values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var sm *SimMetrics
	_ = sm // a nil bundle's fields are nil handles; Sim(nil) is nil
	if Sim(nil) != nil {
		t.Fatal("Sim(nil) != nil")
	}
}

// BenchmarkDisabledRegistry is the no-op-overhead guard: the disabled
// path — nil handles obtained once at construction, updated per event —
// must cost only nil checks and zero allocations.
func BenchmarkDisabledRegistry(b *testing.B) {
	var r *Registry
	c := r.Counter("events_total")
	g := r.Gauge("high_water")
	h := r.Histogram("latency_seconds", SecondsBuckets())
	var tl *Timeline
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.SetMax(float64(i))
		h.Observe(0.01)
		tl.RecordSpan(Span{Start: int64(i), End: int64(i + 1)})
		tl.RecordInstant(Instant{At: int64(i)})
	}
}

func TestDisabledRegistryAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("events_total")
	h := r.Histogram("latency_seconds", SecondsBuckets())
	var tl *Timeline
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(0.5)
		tl.RecordSpan(Span{})
		tl.RecordInstant(Instant{})
	})
	if allocs != 0 {
		t.Errorf("disabled observability allocated %.1f per op, want 0", allocs)
	}
}

// TestConcurrentFirstUse hammers first-use creation of the same series
// from many goroutines: every caller must receive the same handle
// (handle initialization happens under the registry lock), so the
// final count equals the total adds. Run under -race this also pins
// the synchronization itself.
func TestConcurrentFirstUse(t *testing.T) {
	r := NewRegistry()
	const workers, adds = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				r.Counter("shared_total").Add(1)
				r.Histogram("shared_seconds", SecondsBuckets()).Observe(0.001)
				r.Gauge("shared_gauge").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*adds {
		t.Fatalf("counter lost updates under concurrent first use: %d, want %d", got, workers*adds)
	}
	if got := r.Histogram("shared_seconds", SecondsBuckets()).Count(); got != workers*adds {
		t.Fatalf("histogram lost updates under concurrent first use: %d, want %d", got, workers*adds)
	}
}
