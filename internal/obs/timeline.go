package obs

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Arg is one integer annotation on a timeline event (byte counts, step
// indices). Values are int64 because everything the simulator knows —
// sim times, wire bytes, node ids — is integral; keeping args integral
// keeps the encoded JSON trivially deterministic.
type Arg struct {
	Key string
	Val int64
}

// Span is a closed interval of simulated time on one track: a flow
// lifetime, a message wait or transfer, a scheduler step or phase.
type Span struct {
	Cat        string // track category: "flow", "msg", "sched"
	Name       string
	Tid        int   // track id: node/source id, or -1 for run-scoped events
	Start, End int64 // simulated nanoseconds
	Args       []Arg
}

// Instant is a point event in simulated time: a fault firing, an AS
// re-plan.
type Instant struct {
	Cat  string
	Name string
	Tid  int
	At   int64 // simulated nanoseconds
	Args []Arg
}

// Timeline records spans and instants in simulated nanoseconds and
// encodes them as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing). Sim time is deterministic, so a timeline is too:
// the encoded bytes of a fixed run can be pinned in a golden test.
//
// A nil *Timeline is valid: every method is a no-op, which is how the
// stack stays unobserved by default.
type Timeline struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant
}

// NewTimeline returns an empty recorder.
func NewTimeline() *Timeline { return &Timeline{} }

// RecordSpan appends a span. No-op on a nil timeline.
func (t *Timeline) RecordSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// RecordInstant appends an instant. No-op on a nil timeline.
func (t *Timeline) RecordInstant(i Instant) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.instants = append(t.instants, i)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in insertion order.
func (t *Timeline) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Instants returns a copy of the recorded instants in insertion order.
func (t *Timeline) Instants() []Instant {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Instant, len(t.instants))
	copy(out, t.instants)
	return out
}

// Len returns the number of recorded spans and instants.
func (t *Timeline) Len() (spans, instants int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans), len(t.instants)
}

// usec renders simulated nanoseconds as the trace format's fractional
// microseconds with exact nanosecond precision (88125 ns -> "88.125").
func usec(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

func writeArgs(b *strings.Builder, args []Arg) {
	if len(args) == 0 {
		return
	}
	b.WriteString(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(a.Val, 10))
	}
	b.WriteByte('}')
}

// Encode renders the timeline as Chrome trace-event JSON: spans as
// ph="X" duration events, instants as ph="i". Events are stably sorted
// by start time (insertion order breaks ties), timestamps are sim
// nanoseconds rendered as microsecond floats, and every map is emitted
// in a fixed field order — the bytes are fully deterministic.
func (t *Timeline) Encode() []byte {
	if t == nil {
		return []byte("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n")
	}
	t.mu.Lock()
	type ev struct {
		at   int64
		ord  int
		span bool
		idx  int
	}
	evs := make([]ev, 0, len(t.spans)+len(t.instants))
	for i, s := range t.spans {
		evs = append(evs, ev{at: s.Start, ord: len(evs), span: true, idx: i})
	}
	for i, in := range t.instants {
		evs = append(evs, ev{at: in.At, ord: len(evs), span: false, idx: i})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].ord < evs[j].ord
	})
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	for i, e := range evs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n")
		if e.span {
			s := t.spans[e.idx]
			fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s`,
				strconv.Quote(s.Name), strconv.Quote(s.Cat), s.Tid, usec(s.Start), usec(s.End-s.Start))
			writeArgs(&b, s.Args)
		} else {
			in := t.instants[e.idx]
			fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"i","s":"g","pid":0,"tid":%d,"ts":%s`,
				strconv.Quote(in.Name), strconv.Quote(in.Cat), in.Tid, usec(in.At))
			writeArgs(&b, in.Args)
		}
		b.WriteByte('}')
	}
	t.mu.Unlock()
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// WriteFile encodes the timeline to path.
func (t *Timeline) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}
