package obs

import "context"

// SimMetrics bundles the handles the simulation stack writes to. The
// sim engine, the data network, and the schedulers hold one of these
// and update it unconditionally: a nil *SimMetrics — or any nil handle
// inside — is a no-op, so a run without a registry pays only nil
// checks on its hot paths.
type SimMetrics struct {
	// Engine (folded in after the run from Engine.Stats).
	EventsFired     *Counter // sim_events_fired_total
	EventsPooled    *Counter // sim_events_pooled_total
	EventsAllocated *Counter // sim_events_allocated_total
	HeapHighWater   *Gauge   // sim_heap_depth_high_water

	// Data network.
	FlowsStarted  *Counter   // net_flows_started_total
	FlowsFinished *Counter   // net_flows_finished_total
	MaxminSolves  *Counter   // net_maxmin_solves_total
	MaxminWall    *Histogram // net_maxmin_solve_seconds
	Reroutes      *Counter   // net_reroutes_total
	LinksDown     *Counter   // net_links_down_total

	// Scheduler executor.
	SchedSteps  *Counter // sched_steps_total
	SchedPhases *Counter // sched_phases_total
	ASReplans   *Counter // sched_as_replans_total
}

// Sim returns the simulation-side metric bundle backed by r, creating
// the series on first use. A nil registry returns nil — the bundle
// itself is nil-safe at every call site.
func Sim(r *Registry) *SimMetrics {
	if r == nil {
		return nil
	}
	return &SimMetrics{
		EventsFired:     r.Counter("sim_events_fired_total"),
		EventsPooled:    r.Counter("sim_events_pooled_total"),
		EventsAllocated: r.Counter("sim_events_allocated_total"),
		HeapHighWater:   r.Gauge("sim_heap_depth_high_water"),
		FlowsStarted:    r.Counter("net_flows_started_total"),
		FlowsFinished:   r.Counter("net_flows_finished_total"),
		MaxminSolves:    r.Counter("net_maxmin_solves_total"),
		MaxminWall:      r.Histogram("net_maxmin_solve_seconds", SecondsBuckets()),
		Reroutes:        r.Counter("net_reroutes_total"),
		LinksDown:       r.Counter("net_links_down_total"),
		SchedSteps:      r.Counter("sched_steps_total"),
		SchedPhases:     r.Counter("sched_phases_total"),
		ASReplans:       r.Counter("sched_as_replans_total"),
	}
}

type ctxKey int

const (
	registryKey ctxKey = iota
	timelineKey
)

// ContextWithRegistry attaches a metrics registry to ctx so layers that
// only see a context (the experiment runner's cell functions) can reach
// the sweep's registry.
func ContextWithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the registry attached to ctx, or nil.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// ContextWithTimeline attaches a timeline recorder to ctx (one per
// experiment cell when `cmexp -timeline` is on).
func ContextWithTimeline(ctx context.Context, tl *Timeline) context.Context {
	return context.WithValue(ctx, timelineKey, tl)
}

// TimelineFrom returns the timeline attached to ctx, or nil.
func TimelineFrom(ctx context.Context) *Timeline {
	tl, _ := ctx.Value(timelineKey).(*Timeline)
	return tl
}
