package obs

import (
	"encoding/json"
	"testing"
)

func TestTimelineEncode(t *testing.T) {
	tl := NewTimeline()
	tl.RecordSpan(Span{Cat: "msg", Name: "msg 0->1", Tid: 0, Start: 2000, End: 88125,
		Args: []Arg{{"bytes", 64}, {"tag", 7}}})
	tl.RecordInstant(Instant{Cat: "fault", Name: "fault link-down", Tid: -1, At: 500})
	tl.RecordSpan(Span{Cat: "sched", Name: "step 1", Tid: -1, Start: 0, End: 90000})
	got := string(tl.Encode())
	want := `{"displayTimeUnit":"ns","traceEvents":[
{"name":"step 1","cat":"sched","ph":"X","pid":0,"tid":-1,"ts":0.000,"dur":90.000},
{"name":"fault link-down","cat":"fault","ph":"i","s":"g","pid":0,"tid":-1,"ts":0.500},
{"name":"msg 0->1","cat":"msg","ph":"X","pid":0,"tid":0,"ts":2.000,"dur":86.125,"args":{"bytes":64,"tag":7}}
]}
`
	if got != want {
		t.Errorf("encode mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The output must be valid JSON with the trace-event shape.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("encoded timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 || doc.TraceEvents[0].Name != "step 1" {
		t.Errorf("decoded %d events, first %q", len(doc.TraceEvents), doc.TraceEvents[0].Name)
	}

	if spans, instants := tl.Len(); spans != 2 || instants != 1 {
		t.Errorf("Len() = %d, %d; want 2, 1", spans, instants)
	}
}

func TestTimelineNil(t *testing.T) {
	var tl *Timeline
	tl.RecordSpan(Span{})
	tl.RecordInstant(Instant{})
	if s, i := tl.Len(); s != 0 || i != 0 {
		t.Fatal("nil timeline recorded events")
	}
	var doc map[string]any
	if err := json.Unmarshal(tl.Encode(), &doc); err != nil {
		t.Fatalf("nil timeline encoding invalid: %v", err)
	}
}

func TestUsec(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{{0, "0.000"}, {84, "0.084"}, {1000, "1.000"}, {88125, "88.125"}, {1234567, "1234.567"}}
	for _, c := range cases {
		if got := usec(c.ns); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}
