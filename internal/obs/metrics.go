// Package obs is the repo's observability layer: a zero-dependency
// metrics registry with deterministic Prometheus text exposition, and a
// sim-time timeline recorder that exports Chrome trace-event JSON.
//
// Everything in this package is nil-safe by design: a nil *Registry
// hands out nil metric handles, and every method on a nil handle is a
// no-op. Instrumented code therefore obtains its handles once at
// construction and calls them unconditionally — when observability is
// off the calls compile down to a nil check and cost no allocations,
// which is what keeps the sim hot path inside the perf gate.
//
// Exposition is deterministic: families and series are emitted in
// sorted order, so two identical runs against fresh registries produce
// byte-identical text. That determinism is load-bearing — it is what
// lets tests pin metrics output the same way the repo pins simulated
// results.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value dimension on a metric series.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n.Add(d)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a floating-point series that can go up and down. A gauge
// registered with GaugeFunc reads its value from the callback instead.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
	fn   func() float64
}

// Set replaces the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by d. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger than the current value —
// the high-water-mark operation. No-op on a nil gauge.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: cumulative bucket counts in
// the Prometheus style (le = upper bound, +Inf implicit), plus sum and
// count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of samples observed (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// SecondsBuckets are the default wall-time buckets (1µs .. 10s) used by
// the latency histograms across the stack.
func SecondsBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (name, labels) instance.
type series struct {
	labels string // rendered {k="v",...}, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	kind   metricKind
	series map[string]*series // keyed by rendered labels
}

// Registry holds metric families and renders them. The zero registry
// (nil pointer) is valid and hands out nil handles; use NewRegistry to
// collect for real.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels returns the canonical {k="v",...} form, keys sorted.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// getOrCreate returns the series for (name, labels), creating family
// and series on first use. The caller must hold r.mu — handle
// initialization has to happen under the same critical section, or two
// goroutines racing on first use would each install their own handle.
// Re-registering a name with a different kind panics: it is a
// programming error that would corrupt exposition.
func (r *Registry) getOrCreate(name string, kind metricKind, labels []Label) *series {
	ls := renderLabels(labels)
	f := r.families[name]
	if f == nil {
		f = &family{kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, kind))
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreate(name, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
// A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreate(name, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — live values like queue depth. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreate(name, kindGauge, labels)
	s.g = &Gauge{fn: fn}
}

// Histogram returns the histogram for (name, labels) with the given
// ascending bucket upper bounds (+Inf implied), creating it on first
// use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreate(name, kindHistogram, labels)
	if s.h == nil {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		s.h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
	}
	return s.h
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// appendLabel splices one extra label into an already-rendered label
// set (used for histogram le= buckets).
func appendLabel(rendered, key, value string) string {
	extra := key + "=" + strconv.Quote(value)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Families are sorted by name and series by
// label set, so output is deterministic. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# TYPE %s %v\n", name, f.kind)
		ids := make([]string, 0, len(f.series))
		for id := range f.series {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			s := f.series[id]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", name, id, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, id, fmtFloat(s.g.Value()))
			case kindHistogram:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, appendLabel(id, "le", fmtFloat(bound)), cum)
				}
				cum += s.h.inf.Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, appendLabel(id, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, id, fmtFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, id, s.h.Count())
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// histSnapshot is the JSON form of one histogram series.
type histSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // le -> cumulative count
}

// Snapshot returns every series as a flat map keyed by
// name{labels...}: counters as int64, gauges as float64, histograms as
// {count, sum, buckets}. Nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for id, s := range f.series {
			key := name + id
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindGauge:
				out[key] = s.g.Value()
			case kindHistogram:
				hs := histSnapshot{Count: s.h.Count(), Sum: s.h.Sum(), Buckets: make(map[string]int64)}
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					hs.Buckets[fmtFloat(bound)] = cum
				}
				hs.Buckets["+Inf"] = cum + s.h.inf.Load()
				out[key] = hs
			}
		}
	}
	return out
}

// WriteJSON renders Snapshot as JSON (keys sorted by encoding/json, so
// output is deterministic). No-op on a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}
