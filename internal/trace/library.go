package trace

import (
	"bytes"
	"encoding/json"
	"sync"

	"repro/internal/network"
	"repro/internal/store"
)

// Library resolves traces by their identifying inputs, cheapest source
// first: an in-memory memo (one recording serves every cell of a
// sweep), then the content-addressed store (recordings persist across
// processes under their input hash, payload records like the serving
// layer's), then a fresh recording — which is memoized and persisted
// for the next caller. Concurrent Gets of the same trace coalesce:
// exactly one records, the rest wait. A nil store means memo-only.
// The store is any backend — a local directory or a cmserve-hosted
// HTTP store — so distributed workers share one recording of each app.
type Library struct {
	st store.Backend

	mu      sync.Mutex
	entries map[string]*libEntry
}

type libEntry struct {
	once sync.Once
	tr   *Trace
	err  error
}

// NewLibrary returns a library over st (nil for memo-only). A typed
// nil backend pointer is normalized to memo-only, so callers may pass
// an optional *store.Store straight through.
func NewLibrary(st store.Backend) *Library {
	if b, ok := st.(*store.Store); ok && b == nil {
		st = nil
	}
	if b, ok := st.(*store.HTTPBackend); ok && b == nil {
		st = nil
	}
	return &Library{st: st, entries: map[string]*libEntry{}}
}

// Get returns the trace for (app, size, nprocs, seed, cfg) — size 0
// means the app's default — plus its content hash. Every error path
// still resolves the hash when the app name is known.
func (l *Library) Get(app string, size, nprocs int, seed int64, cfg network.Config) (*Trace, string, error) {
	a, err := Lookup(app)
	if err != nil {
		return nil, "", err
	}
	if size == 0 {
		size = a.DefaultSize
	}
	hash, err := HashFor(a.Name, size, nprocs, seed, cfg)
	if err != nil {
		return nil, "", err
	}
	l.mu.Lock()
	e := l.entries[hash]
	if e == nil {
		e = &libEntry{}
		l.entries[hash] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		e.tr, e.err = l.load(a.Name, size, nprocs, seed, cfg, hash)
	})
	return e.tr, hash, e.err
}

// load resolves one trace from the store or a fresh recording.
func (l *Library) load(app string, size, nprocs int, seed int64, cfg network.Config, hash string) (*Trace, error) {
	if tr, ok := l.storeGet(hash); ok {
		return tr, nil
	}
	tr, err := Record(app, size, nprocs, seed, cfg)
	if err != nil {
		return nil, err
	}
	l.storePut(tr, cfg, hash)
	return tr, nil
}

// storeGet decodes a stored trace payload. The object file holds the
// payload re-indented inside the record; compacting restores the exact
// canonical bytes Encode produced.
func (l *Library) storeGet(hash string) (*Trace, bool) {
	if l.st == nil {
		return nil, false
	}
	rec, ok, err := l.st.Get(hash)
	if err != nil || !ok || len(rec.Payload) == 0 {
		return nil, false
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, rec.Payload); err != nil {
		return nil, false
	}
	tr, err := Decode(buf.Bytes())
	if err != nil {
		// A stale or corrupt payload falls through to a fresh recording,
		// never to a failed sweep.
		return nil, false
	}
	return tr, true
}

// storePut persists a freshly recorded trace under its input hash;
// failures are swallowed — the store can only ever cost a re-recording.
func (l *Library) storePut(tr *Trace, cfg network.Config, hash string) {
	if l.st == nil {
		return
	}
	payload, err := tr.Encode()
	if err != nil {
		return
	}
	// NewRecord recomputes the hash from the spec and validates; a
	// drift between HashFor and SpecFor would be caught right here.
	rec, err := store.NewRecord("trace", CellKey(tr.App, tr.Size, tr.Procs, tr.Seed),
		SpecFor(tr.App, tr.Size, tr.Procs, tr.Seed, cfg))
	if err != nil || rec.Hash != hash {
		return
	}
	rec.Payload = json.RawMessage(payload)
	if l.st.Put(rec) == nil {
		l.st.Flush()
	}
}
