package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/store"
)

// The recorder tees the machine's event stream without touching the
// simulation, and the simulator is fully deterministic — so a recording
// is a pure function of (app, size, nprocs, seed, cfg), down to the
// nanosecond. These tables pin the exact recorded events of the
// smallest instance of each application; any drift in the apps, the
// CMMD layer, or the network model shows up here as a changed
// timestamp (and requires a TraceVersion bump if intended).
func TestRecordPinnedEvents(t *testing.T) {
	cfg := network.DefaultConfig()
	cases := []struct {
		app        string
		size, n    int
		seed       int64
		totalBytes int64
		events     []Event
	}{
		{
			// One 4x4 FFT on 2 nodes: the transpose exchanges one
			// half-array block in each direction, nothing else.
			app: "fft", size: 4, n: 2, seed: 1, totalBytes: 64,
			events: []Event{
				{Src: 1, Dst: 0, Tag: 0, Bytes: 32, Posted: 73280, Started: 73280, Ended: 82281},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 32, Posted: 163561, Started: 163561, Ended: 172562},
			},
		},
		{
			// A 12-vertex Euler mesh split across 2 nodes: one halo
			// message each way per time step, 4 steps, 96 B of conserved
			// state per message.
			app: "euler", size: 12, n: 2, seed: 1, totalBytes: 768,
			events: []Event{
				{Src: 1, Dst: 0, Tag: 0, Bytes: 96, Posted: 41920, Started: 41920, Ended: 54921},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 96, Posted: 138761, Started: 138761, Ended: 151762},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 96, Posted: 806202, Started: 806202, Ended: 819203},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 96, Posted: 903043, Started: 903043, Ended: 916044},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 96, Posted: 1570484, Started: 1570484, Ended: 1583485},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 96, Posted: 1667325, Started: 1667325, Ended: 1680326},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 96, Posted: 2334766, Started: 2334766, Ended: 2347767},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 96, Posted: 2431607, Started: 2431607, Ended: 2444608},
			},
		},
		{
			// A 12-vertex CG mesh across 2 nodes: one halo message each
			// way per iteration, 8 fixed iterations, 24 B each.
			app: "cg", size: 12, n: 2, seed: 1, totalBytes: 384,
			events: []Event{
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 68080, Started: 68080, Ended: 77081},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 158041, Started: 158041, Ended: 167042},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 313202, Started: 313202, Ended: 322203},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 403163, Started: 403163, Ended: 412164},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 558324, Started: 558324, Ended: 567325},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 648285, Started: 648285, Ended: 657286},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 803446, Started: 803446, Ended: 812447},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 893407, Started: 893407, Ended: 902408},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 1048568, Started: 1048568, Ended: 1057569},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 1138529, Started: 1138529, Ended: 1147530},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 1293690, Started: 1293690, Ended: 1302691},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 1383651, Started: 1383651, Ended: 1392652},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 1538812, Started: 1538812, Ended: 1547813},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 1628773, Started: 1628773, Ended: 1637774},
				{Src: 1, Dst: 0, Tag: 0, Bytes: 24, Posted: 1783934, Started: 1783934, Ended: 1792935},
				{Src: 0, Dst: 1, Tag: 0, Bytes: 24, Posted: 1873895, Started: 1873895, Ended: 1882896},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.app, func(t *testing.T) {
			tr, err := Record(c.app, c.size, c.n, c.seed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tr.App != c.app || tr.Size != c.size || tr.Procs != c.n || tr.Seed != c.seed {
				t.Errorf("identifying inputs = (%s, %d, %d, %d), want (%s, %d, %d, %d)",
					tr.App, tr.Size, tr.Procs, tr.Seed, c.app, c.size, c.n, c.seed)
			}
			if tr.Version != TraceVersion {
				t.Errorf("Version = %d, want %d", tr.Version, TraceVersion)
			}
			if len(tr.Events) != len(c.events) {
				t.Fatalf("%d events, want %d:\n%v", len(tr.Events), len(c.events), tr.Events)
			}
			for i, want := range c.events {
				if tr.Events[i] != want {
					t.Errorf("event %d = %+v, want %+v", i, tr.Events[i], want)
				}
			}
			if tb := tr.TotalBytes(); tb != c.totalBytes {
				t.Errorf("TotalBytes = %d, want %d", tb, c.totalBytes)
			}
			if span := tr.Span(); span != c.events[len(c.events)-1].Ended {
				t.Errorf("Span = %d, want the last event's end %d", span, c.events[len(c.events)-1].Ended)
			}
		})
	}
}

// Recording the same tuple twice yields byte-identical canonical
// encodings — the determinism contract behind input-addressed hashes.
func TestRecordDeterministic(t *testing.T) {
	cfg := network.DefaultConfig()
	for _, app := range Apps() {
		t.Run(app, func(t *testing.T) {
			first, err := Record(app, 0, 4, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Record(app, 0, 4, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			a, err := first.Encode()
			if err != nil {
				t.Fatal(err)
			}
			b, err := second.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("double recording of %s differs:\n%s\n%s", app, a, b)
			}
			if len(first.Events) == 0 {
				t.Errorf("%s recorded no events", app)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := network.DefaultConfig()
	tr, err := Record("fft", 4, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("canonical encoding should end in a newline")
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("round trip not lossless:\n%s\n%s", data, again)
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	ok := func() *Trace {
		return &Trace{
			Version: TraceVersion, App: "cg", Size: 12, Procs: 2, Seed: 1,
			Events: []Event{{Src: 0, Dst: 1, Bytes: 8, Posted: 1, Started: 2, Ended: 3}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"version", func(tr *Trace) { tr.Version = TraceVersion + 1 }, "version"},
		{"no app", func(tr *Trace) { tr.App = "" }, "app"},
		{"tiny machine", func(tr *Trace) { tr.Procs = 1 }, "processors"},
		{"no size", func(tr *Trace) { tr.Size = 0 }, "size"},
		{"src out of range", func(tr *Trace) { tr.Events[0].Src = 2 }, "endpoints"},
		{"dst out of range", func(tr *Trace) { tr.Events[0].Dst = -1 }, "endpoints"},
		{"self-send", func(tr *Trace) { tr.Events[0].Dst = 0 }, "self"},
		{"negative bytes", func(tr *Trace) { tr.Events[0].Bytes = -8 }, "negative size"},
		{"time order", func(tr *Trace) { tr.Events[0].Started = 5 }, "order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := ok()
			if err := tr.Validate(); err != nil {
				t.Fatalf("baseline trace should validate: %v", err)
			}
			c.mutate(tr)
			err := tr.Validate()
			if err == nil {
				t.Fatal("mutated trace should not validate")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q should mention %q", err, c.want)
			}
		})
	}
}

func TestLookupUnknownAppListsNames(t *testing.T) {
	_, err := Lookup("bogus")
	if !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("err = %v, want ErrUnknownApp", err)
	}
	for _, name := range Apps() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list %q", err, name)
		}
	}
	if _, err := Record("bogus", 0, 4, 1, network.DefaultConfig()); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("Record should wrap ErrUnknownApp, got %v", err)
	}
}

// The input-addressed hash is computable without recording and is
// sensitive to every identifying input.
func TestHashForAddressesInputs(t *testing.T) {
	cfg := network.DefaultConfig()
	base, err := HashFor("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same, err := HashFor("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Errorf("hash not stable: %s vs %s", base, same)
	}
	for name, h := range map[string]func() (string, error){
		"app":    func() (string, error) { return HashFor("fft", 12, 2, 1, cfg) },
		"size":   func() (string, error) { return HashFor("cg", 16, 2, 1, cfg) },
		"nprocs": func() (string, error) { return HashFor("cg", 12, 4, 1, cfg) },
		"seed":   func() (string, error) { return HashFor("cg", 12, 2, 2, cfg) },
	} {
		other, err := h()
		if err != nil {
			t.Fatal(err)
		}
		if other == base {
			t.Errorf("hash insensitive to %s", name)
		}
	}
}

// The library records once, persists the recording, and serves every
// later request — same process or a fresh one over the same store —
// from the stored bytes.
func TestLibraryPersistsRecordings(t *testing.T) {
	cfg := network.DefaultConfig()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(st)
	tr, hash, err := lib.Get("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HashFor("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hash != want {
		t.Errorf("library hash %s, want input-addressed %s", hash, want)
	}
	again, hash2, err := lib.Get("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != tr || hash2 != hash {
		t.Error("second Get should memoize the first recording")
	}

	// A fresh library over the same directory loads the stored record
	// instead of re-recording: the traces must be byte-identical.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", st2.Len())
	}
	loaded, _, err := NewLibrary(st2).Get("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tr.Encode()
	b, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("store round trip differs:\n%s\n%s", a, b)
	}

	// A memo-only library still works, it just re-records per process.
	memo, _, err := NewLibrary(nil).Get("cg", 12, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := memo.Encode(); !bytes.Equal(a, c) {
		t.Errorf("memo-only library differs from stored recording:\n%s\n%s", a, c)
	}
}

// A trace collapses to the traffic matrix the schedulers plan from:
// n x n, one entry per ordered pair, byte counts summed over events.
func TestPatternCollapse(t *testing.T) {
	tr := &Trace{
		Version: TraceVersion, App: "cg", Size: 12, Procs: 4, Seed: 1,
		Events: []Event{
			{Src: 0, Dst: 1, Bytes: 8, Posted: 0, Started: 0, Ended: 1},
			{Src: 0, Dst: 1, Bytes: 16, Posted: 1, Started: 1, Ended: 2},
			{Src: 3, Dst: 2, Bytes: 32, Posted: 2, Started: 2, Ended: 3},
		},
	}
	p, err := tr.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("pattern is %d x %d, want 4 x 4", len(p), len(p))
	}
	if p[0][1] != 24 || p[3][2] != 32 {
		t.Errorf("collapsed entries = %d, %d; want 24, 32", p[0][1], p[3][2])
	}
	st := p.Stats()
	if st.Messages != 2 || st.TotalBytes != 56 {
		t.Errorf("stats = %d msgs %d bytes, want 2 msgs 56 bytes", st.Messages, st.TotalBytes)
	}
}
