package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/apps/cg"
	"repro/internal/apps/euler"
	"repro/internal/apps/fft"
	"repro/internal/cmmd"
	"repro/internal/mesh"
	"repro/internal/network"
)

// Recorder accumulates message events from a cmmd machine. Attach its
// Sink to the run (cmmd.Machine.SetTraceSink, or the apps' trace-sink
// options), then Finalize into a canonical Trace. The sink is called
// from the single engine goroutine, so the Recorder needs no lock.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Sink returns the callback that tees the machine's MsgEvent stream
// into the recorder.
func (r *Recorder) Sink() func(cmmd.MsgEvent) {
	return func(ev cmmd.MsgEvent) {
		r.events = append(r.events, Event{
			Src: ev.Src, Dst: ev.Dst, Tag: ev.Tag, Bytes: ev.Bytes,
			Posted: ev.Posted, Started: ev.Started, Ended: ev.Ended,
		})
	}
}

// Finalize stamps the recorded events into a canonical Trace: events
// sorted into canonical order, current format version, identifying
// inputs attached.
func (r *Recorder) Finalize(app string, size, nprocs int, seed int64) *Trace {
	events := append([]Event(nil), r.events...)
	sortEvents(events)
	return &Trace{
		Version: TraceVersion,
		App:     app, Size: size, Procs: nprocs, Seed: seed,
		Events: events,
	}
}

// The recording baselines: which execution schedule each app runs under
// while being recorded, and how much work it does. These are part of
// the trace semantics — the collapsed pattern is independent of the
// baseline scheduler, but the recorded nanosecond times are not — so
// changing any of them requires bumping TraceVersion.
const (
	cgTraceAlg      = "BS"  // halo-exchange schedule of the recorded CG run
	cgTraceIters    = 8     // fixed CG iteration budget (tolerance set unreachably tight)
	fftTraceAlg     = "PEX" // transpose algorithm of the recorded FFT run
	eulerTraceAlg   = "BS"  // halo-exchange schedule of the recorded Euler run
	eulerTraceSteps = 4     // explicit time steps of the recorded Euler run
)

// App is one recordable application: a real distributed program of
// internal/apps whose communication Record captures.
type App struct {
	// Name is the registry key ("cg", "fft", "euler").
	Name string
	// Doc is the one-line description listings print.
	Doc string
	// DefaultSize is the canonical problem size (mesh vertices for cg
	// and euler, array edge for fft) used when callers pass size 0.
	DefaultSize int

	record func(size, nprocs int, seed int64, cfg network.Config, sink func(cmmd.MsgEvent)) error
}

// apps is the registry, in canonical order.
var apps = []App{
	{
		Name: "cg",
		Doc: "distributed conjugate gradient on an unstructured mesh: " +
			"8 fixed iterations, one BS-scheduled halo exchange each (size = mesh vertices)",
		DefaultSize: 512,
		record:      recordCG,
	},
	{
		Name: "fft",
		Doc: "distributed 2-D FFT of a size x size complex array: " +
			"row FFTs, one PEX-scheduled transpose, row FFTs (size = array edge, power of two)",
		DefaultSize: 64,
		record:      recordFFT,
	},
	{
		Name: "euler",
		Doc: "explicit unstructured-mesh Euler solver: " +
			"4 time steps, one BS-scheduled halo exchange each (size = mesh vertices)",
		DefaultSize: 256,
		record:      recordEuler,
	},
}

// ErrUnknownApp is returned (wrapped, with the requested name and the
// known names) by Record and Lookup on an app-name miss.
var ErrUnknownApp = errors.New("unknown trace app")

// Apps returns the recordable application names in canonical order.
func Apps() []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// AppDoc returns the one-line description of a recordable app, or ""
// for an unknown name.
func AppDoc(name string) string {
	for _, a := range apps {
		if a.Name == name {
			return a.Doc
		}
	}
	return ""
}

// Lookup resolves an app name; a miss returns an error wrapping
// ErrUnknownApp that lists every known name.
func Lookup(name string) (App, error) {
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("trace: %w %q (known: %s)",
		ErrUnknownApp, name, strings.Join(Apps(), " "))
}

// Record runs the named application for real on nprocs simulated CM-5
// nodes and captures its communication. size 0 means the app's default.
// The result is a pure function of (app, size, nprocs, seed, cfg):
// recording the same tuple twice yields byte-identical Encode output.
func Record(app string, size, nprocs int, seed int64, cfg network.Config) (*Trace, error) {
	a, err := Lookup(app)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		size = a.DefaultSize
	}
	if size < 0 {
		return nil, fmt.Errorf("trace: negative problem size %d", size)
	}
	rec := NewRecorder()
	if err := a.record(size, nprocs, seed, cfg, rec.Sink()); err != nil {
		return nil, fmt.Errorf("trace: record %s: %w", app, err)
	}
	return rec.Finalize(a.Name, size, nprocs, seed), nil
}

// recordCG runs the distributed CG solver on the seed's mesh of size
// vertices. The iteration budget is fixed and the tolerance unreachably
// tight, so every recording runs exactly cgTraceIters halo exchanges.
func recordCG(size, nprocs int, seed int64, cfg network.Config, sink func(cmmd.MsgEvent)) error {
	m := mesh.Generate(size, seed)
	b := make([]float64, m.NumVertices())
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	_, err := cg.Solve(nprocs, m, b, cg.Options{
		Alg: cgTraceAlg, Tol: 1e-300, MaxIter: cgTraceIters, TraceSink: sink,
	}, cfg)
	return err
}

// recordFFT runs the distributed 2-D FFT on a size x size array filled
// from the seed's generator.
func recordFFT(size, nprocs int, seed int64, cfg network.Config, sink func(cmmd.MsgEvent)) error {
	rng := rand.New(rand.NewSource(seed))
	input := make([][]complex128, size)
	for r := range input {
		row := make([]complex128, size)
		for c := range row {
			row[c] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		input[r] = row
	}
	_, err := fft.Run2DWithSink(nprocs, input, fftTraceAlg, cfg, sink)
	return err
}

// recordEuler advances the Euler solver on the seed's mesh: freestream
// flow with a smooth density perturbation, eulerTraceSteps steps.
func recordEuler(size, nprocs int, seed int64, cfg network.Config, sink func(cmmd.MsgEvent)) error {
	m := mesh.Generate(size, seed)
	initFn := func(p mesh.Point) euler.State {
		rho := 1 + 0.1*math.Sin(math.Pi*p.X)*math.Cos(math.Pi*p.Y)
		return euler.Freestream(rho, 0.5, 0, 1)
	}
	_, err := euler.Run(nprocs, m, initFn, euler.Options{
		Alg: eulerTraceAlg, Steps: eulerTraceSteps, TraceSink: sink,
	}, cfg)
	return err
}
