// Package trace records the real communication of the paper's
// applications (CG, 2-D FFT, unstructured-mesh Euler) and replays it as
// a schedulable workload. A Trace is a versioned, seed-deterministic
// artifact: the full lifecycle of every data-network message a run sent
// (src, dst, bytes, posted/started/ended nanoseconds), in canonical
// order, encoded as canonical JSON. The same (app, size, nprocs, seed,
// config) tuple always records byte-identical trace files, so traces
// are stored content-addressed in internal/store exactly like
// experiment cells — and because the address is a hash of those inputs
// (not of the recorded bytes), a trace's hash is computable without
// recording it, which is what lets warm sweeps skip recording entirely.
//
// The lifecycle is record -> collapse -> replay: a Recorder tees off
// the cmmd MsgEvent stream while the application really runs; Pattern
// collapses the recorded messages into a traffic matrix
// (pattern.FromTrace); any registered scheduler then replays that
// matrix on any topology. TraceVersion salts every trace hash — bump it
// whenever the recording semantics change (baseline algorithms,
// iteration counts, event ordering), so stale traces invalidate at
// once.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/store"
)

// TraceVersion is the trace format and recording-semantics version; it
// participates in every trace hash and in every apps-family cell hash.
const TraceVersion = 1

// Event is one recorded message lifecycle, nanosecond-exact: when the
// sender finished its software overhead and entered the rendezvous
// (Posted), when the wire transfer began (Started), and when the last
// byte arrived (Ended). Field order is fixed — Encode relies on struct
// order for canonical JSON.
type Event struct {
	Src     int      `json:"src"`
	Dst     int      `json:"dst"`
	Tag     int      `json:"tag"`
	Bytes   int      `json:"bytes"`
	Posted  sim.Time `json:"posted_ns"`
	Started sim.Time `json:"started_ns"`
	Ended   sim.Time `json:"ended_ns"`
}

// Trace is one recorded application run: its identifying inputs and
// every data-network message, in canonical order (AllReduce rides the
// control network, so it never appears here). Traces are plain data;
// build them with Record or decode stored ones with Decode.
type Trace struct {
	Version int     `json:"version"`
	App     string  `json:"app"`
	Size    int     `json:"size"`
	Procs   int     `json:"nprocs"`
	Seed    int64   `json:"seed"`
	Events  []Event `json:"events"`
}

// Validate checks structural invariants: current version, a named app,
// a sensible machine size, and every event on the off-diagonal with
// in-range endpoints and ordered non-negative times.
func (t *Trace) Validate() error {
	if t.Version != TraceVersion {
		return fmt.Errorf("trace: version %d, want %d", t.Version, TraceVersion)
	}
	if t.App == "" {
		return fmt.Errorf("trace: missing app name")
	}
	if t.Procs < 2 {
		return fmt.Errorf("trace: %d processors, need >= 2", t.Procs)
	}
	if t.Size <= 0 {
		return fmt.Errorf("trace: non-positive problem size %d", t.Size)
	}
	for i, e := range t.Events {
		if e.Src < 0 || e.Src >= t.Procs || e.Dst < 0 || e.Dst >= t.Procs {
			return fmt.Errorf("trace: event %d endpoints %d->%d outside %d processors",
				i, e.Src, e.Dst, t.Procs)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("trace: event %d is a self-send on processor %d", i, e.Src)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("trace: event %d has negative size %d", i, e.Bytes)
		}
		if e.Posted < 0 || e.Started < e.Posted || e.Ended < e.Started {
			return fmt.Errorf("trace: event %d times not ordered: posted %d, started %d, ended %d",
				i, e.Posted, e.Started, e.Ended)
		}
	}
	return nil
}

// sortEvents puts events into the canonical order every encoded trace
// uses: by posted time, then endpoints, tag, and the remaining times.
// Recording order is engine-arrival order, which is deterministic but
// an artifact of simulator internals; sorting makes equality of two
// recordings mean equality of the communication itself.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		switch {
		case a.Posted != b.Posted:
			return a.Posted < b.Posted
		case a.Src != b.Src:
			return a.Src < b.Src
		case a.Dst != b.Dst:
			return a.Dst < b.Dst
		case a.Tag != b.Tag:
			return a.Tag < b.Tag
		case a.Started != b.Started:
			return a.Started < b.Started
		default:
			return a.Ended < b.Ended
		}
	})
}

// Encode renders the canonical trace file bytes: compact JSON with
// fixed field order plus a trailing newline. Two recordings of the same
// inputs encode byte-identically.
func (t *Trace) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses and validates trace file bytes.
func Decode(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Pattern collapses the trace into the schedulable traffic matrix the
// paper's irregular schedulers consume: entry [i][j] sums the bytes of
// every recorded message from i to j.
func (t *Trace) Pattern() (pattern.Matrix, error) {
	msgs := make([]pattern.TraceMsg, len(t.Events))
	for i, e := range t.Events {
		msgs[i] = pattern.TraceMsg{Src: e.Src, Dst: e.Dst, Bytes: e.Bytes}
	}
	return pattern.FromTrace(t.Procs, msgs)
}

// Span returns the recorded application's own communication makespan:
// the latest event end time (zero for an empty trace).
func (t *Trace) Span() sim.Time {
	var span sim.Time
	for _, e := range t.Events {
		if e.Ended > span {
			span = e.Ended
		}
	}
	return span
}

// TotalBytes sums the recorded message sizes.
func (t *Trace) TotalBytes() int64 {
	var total int64
	for _, e := range t.Events {
		total += int64(e.Bytes)
	}
	return total
}

// SpecFor is the full content-address specification of a trace: the
// identifying inputs, the format version, and the machine configuration
// the recording ran under. The address hashes the *inputs*, not the
// recorded bytes, so it is computable without recording — warm sweeps
// resolve trace hashes for free.
func SpecFor(app string, size, nprocs int, seed int64, cfg network.Config) store.Spec {
	return store.Spec{
		"kind":          "trace",
		"trace_version": TraceVersion,
		"app":           app,
		"size":          size,
		"nprocs":        nprocs,
		// Seeds are 64-bit: decimal string, like exp.Runner's cell specs.
		"seed":   strconv.FormatInt(seed, 10),
		"config": cfg,
	}
}

// HashFor returns the content address of the trace SpecFor describes.
func HashFor(app string, size, nprocs int, seed int64, cfg network.Config) (string, error) {
	return store.HashSpec(SpecFor(app, size, nprocs, seed, cfg))
}

// CellKey names a trace's store record, e.g. "trace/cg/S512/P8/seed1".
func CellKey(app string, size, nprocs int, seed int64) string {
	return fmt.Sprintf("trace/%s/S%d/P%d/seed%d", app, size, nprocs, seed)
}
