package fattree

import (
	"testing"
	"testing/quick"
)

func TestNewValidSizes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 16384} {
		topo, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if topo.N() != n {
			t.Fatalf("N() = %d, want %d", topo.N(), n)
		}
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 1, 3, 6, 12, 100, 1000, 32768} {
		if _, err := New(n); err == nil {
			t.Fatalf("New(%d) should fail", n)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) should panic")
		}
	}()
	MustNew(3)
}

func TestLevels(t *testing.T) {
	cases := map[int]int{2: 1, 4: 1, 8: 2, 16: 2, 32: 3, 64: 3, 128: 4, 256: 4, 1024: 5}
	for n, want := range cases {
		if got := MustNew(n).Levels(); got != want {
			t.Errorf("Levels(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestGroup(t *testing.T) {
	topo := MustNew(32)
	// Level 1: clusters of 4.
	if topo.Group(0, 1) != 0 || topo.Group(3, 1) != 0 || topo.Group(4, 1) != 1 || topo.Group(31, 1) != 7 {
		t.Error("level-1 grouping wrong")
	}
	// Level 2: clusters of 16.
	if topo.Group(15, 2) != 0 || topo.Group(16, 2) != 1 || topo.Group(31, 2) != 1 {
		t.Error("level-2 grouping wrong")
	}
}

func TestGroupSizeAndNumGroups(t *testing.T) {
	topo := MustNew(32)
	if topo.GroupSize(1) != 4 || topo.GroupSize(2) != 16 || topo.GroupSize(3) != 64 {
		t.Error("GroupSize wrong")
	}
	if topo.NumGroups(1) != 8 || topo.NumGroups(2) != 2 || topo.NumGroups(3) != 1 {
		t.Error("NumGroups wrong")
	}
}

func TestLCALevel(t *testing.T) {
	topo := MustNew(64)
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},
		{0, 4, 2},
		{0, 15, 2},
		{0, 16, 3},
		{0, 63, 3},
		{5, 7, 1},
		{17, 30, 2},
		{20, 52, 3},
	}
	for _, c := range cases {
		if got := topo.LCALevel(c.a, c.b); got != c.want {
			t.Errorf("LCALevel(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCALevelSymmetric(t *testing.T) {
	topo := MustNew(32)
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			if topo.LCALevel(a, b) != topo.LCALevel(b, a) {
				t.Fatalf("LCALevel not symmetric for (%d,%d)", a, b)
			}
		}
	}
}

func TestDistanceClass(t *testing.T) {
	topo := MustNew(256)
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},   // same cluster of 4 -> 20 MB/s class
		{0, 5, 2},   // same cluster of 16 -> 10 MB/s class
		{0, 17, 3},  // beyond -> 5 MB/s class
		{0, 255, 3}, // LCA level 4 clamps to class 3
	}
	for _, c := range cases {
		if got := topo.DistanceClass(c.a, c.b); got != c.want {
			t.Errorf("DistanceClass(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteLocalIsNil(t *testing.T) {
	topo := MustNew(8)
	if r := topo.Route(3, 3); r != nil {
		t.Fatalf("Route(3,3) = %v, want nil", r)
	}
}

func TestRouteNeighbors(t *testing.T) {
	topo := MustNew(8)
	r := topo.Route(0, 1)
	want := []LinkID{
		{Level: 0, Group: 0, Up: true},
		{Level: 0, Group: 1, Up: false},
	}
	if len(r) != len(want) {
		t.Fatalf("Route(0,1) = %v", r)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Route(0,1)[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestRouteCrossCluster(t *testing.T) {
	topo := MustNew(32)
	// 0 -> 20: LCA level 3 (different 16-clusters).
	r := topo.Route(0, 20)
	want := []LinkID{
		{Level: 0, Group: 0, Up: true},
		{Level: 1, Group: 0, Up: true},
		{Level: 2, Group: 0, Up: true},
		{Level: 2, Group: 1, Up: false},
		{Level: 1, Group: 5, Up: false},
		{Level: 0, Group: 20, Up: false},
	}
	if len(r) != len(want) {
		t.Fatalf("Route(0,20) = %v", r)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Route(0,20)[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestRouteEndpointsAlwaysPresent(t *testing.T) {
	topo := MustNew(64)
	for a := 0; a < 64; a += 7 {
		for b := 0; b < 64; b += 5 {
			if a == b {
				continue
			}
			r := topo.Route(a, b)
			if len(r) < 2 {
				t.Fatalf("Route(%d,%d) too short: %v", a, b, r)
			}
			if r[0] != (LinkID{Level: 0, Group: a, Up: true}) {
				t.Fatalf("Route(%d,%d) first link %v", a, b, r[0])
			}
			if r[len(r)-1] != (LinkID{Level: 0, Group: b, Up: false}) {
				t.Fatalf("Route(%d,%d) last link %v", a, b, r[len(r)-1])
			}
		}
	}
}

func TestRouteLengthMatchesLCA(t *testing.T) {
	topo := MustNew(256)
	for a := 0; a < 256; a += 13 {
		for b := 0; b < 256; b += 11 {
			if a == b {
				continue
			}
			lca := topo.LCALevel(a, b)
			if got, want := len(topo.Route(a, b)), 2*lca; got != want {
				t.Fatalf("len(Route(%d,%d)) = %d, want %d (lca %d)", a, b, got, want, lca)
			}
		}
	}
}

func TestCrossesTop(t *testing.T) {
	topo := MustNew(32)
	if topo.CrossesTop(0, 0) {
		t.Error("self never crosses")
	}
	if topo.CrossesTop(0, 3) {
		t.Error("intra-cluster should not cross top")
	}
	if topo.CrossesTop(0, 12) {
		t.Error("within first 16 should not cross top")
	}
	if !topo.CrossesTop(0, 16) {
		t.Error("0<->16 must cross top on 32 nodes")
	}
	if !topo.CrossesTop(15, 31) {
		t.Error("15<->31 must cross top on 32 nodes")
	}
}

func TestCrossesTopCountCompleteExchange(t *testing.T) {
	// On 32 nodes, for each node 16 of the other 31 are across the top.
	topo := MustNew(32)
	for a := 0; a < 32; a++ {
		count := 0
		for b := 0; b < 32; b++ {
			if topo.CrossesTop(a, b) {
				count++
			}
		}
		if count != 16 {
			t.Fatalf("node %d crosses top to %d peers, want 16", a, count)
		}
	}
}

func TestLinkIDString(t *testing.T) {
	up := LinkID{Level: 2, Group: 7, Up: true}
	down := LinkID{Level: 0, Group: 3, Up: false}
	if up.String() != "L2/7/up" || down.String() != "L0/3/down" {
		t.Fatalf("String() = %q, %q", up.String(), down.String())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	topo := MustNew(8)
	for _, fn := range []func(){
		func() { topo.LCALevel(-1, 0) },
		func() { topo.LCALevel(0, 8) },
		func() { topo.Route(8, 0) },
		func() { topo.Group(9, 1) },
		func() { topo.Group(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: LCA level is within [1, Levels] for distinct nodes, and the
// distance class never exceeds 3.
func TestQuickLCABounds(t *testing.T) {
	topo := MustNew(256)
	f := func(ar, br uint16) bool {
		a, b := int(ar)%256, int(br)%256
		if a == b {
			return topo.LCALevel(a, b) == 0 && topo.DistanceClass(a, b) == 0
		}
		l := topo.LCALevel(a, b)
		dc := topo.DistanceClass(a, b)
		return l >= 1 && l <= topo.Levels() && dc >= 1 && dc <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: routes of a->b and b->a are mirror images (same levels, up and
// down swapped, endpoint groups swapped).
func TestQuickRouteMirror(t *testing.T) {
	topo := MustNew(64)
	f := func(ar, br uint8) bool {
		a, b := int(ar)%64, int(br)%64
		fwd := topo.Route(a, b)
		rev := topo.Route(b, a)
		if len(fwd) != len(rev) {
			return false
		}
		n := len(fwd)
		for i := 0; i < n; i++ {
			m := rev[n-1-i]
			if fwd[i].Level != m.Level || fwd[i].Group != m.Group || fwd[i].Up == m.Up {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
