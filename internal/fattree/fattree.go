// Package fattree models the CM-5 data-network topology: a 4-ary fat tree
// over the processing nodes of a partition.
//
// Nodes are grouped in clusters of 4, clusters of 4 clusters (16 nodes),
// and so on. The least-common-ancestor (LCA) level of two nodes determines
// both the route a message takes and the peak bandwidth available to it:
// the CM-5 delivered 20 MB/s between nodes in the same cluster of 4,
// 10 MB/s within a cluster of 16, and a guaranteed 5 MB/s system-wide
// (the tree "thins" toward the root).
package fattree

import "fmt"

// Arity is the branching factor of the CM-5 data network.
const Arity = 4

// Topology describes a fat tree over N leaves (processing nodes).
// N need not be a power of 4 — CM-5 partitions came in powers of two —
// but must be a power of 2 and at least 2.
type Topology struct {
	n      int
	levels int // number of grouping levels: smallest L with Arity^L >= n
}

// New returns the fat-tree topology for an n-node partition.
// n must be a power of two, 2 <= n <= 16384 (the CM-5's maximum).
func New(n int) (*Topology, error) {
	if n < 2 || n > 16384 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fattree: invalid partition size %d (need power of 2 in [2,16384])", n)
	}
	levels := 0
	for c := 1; c < n; c *= Arity {
		levels++
	}
	return &Topology{n: n, levels: levels}, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(n int) *Topology {
	t, err := New(n)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of nodes.
func (t *Topology) N() int { return t.n }

// Levels returns the number of grouping levels above the leaves.
// A node's cluster-of-4 is level 1, cluster-of-16 level 2, and so on;
// level Levels() contains the whole partition.
func (t *Topology) Levels() int { return t.levels }

// Group returns the index of the cluster containing node at the given
// level (level >= 1). Nodes a and b share a cluster at level l exactly
// when Group(a,l) == Group(b,l).
func (t *Topology) Group(node, level int) int {
	t.checkNode(node)
	if level < 1 {
		panic(fmt.Sprintf("fattree: level %d < 1", level))
	}
	return node >> (2 * uint(level))
}

// GroupSize returns the number of node slots in one level-l cluster
// (Arity^l). The top cluster may be only partially populated when N is
// not a power of 4.
func (t *Topology) GroupSize(level int) int {
	if level < 0 {
		panic("fattree: negative level")
	}
	return 1 << (2 * uint(level))
}

// NumGroups returns how many level-l clusters the partition spans.
func (t *Topology) NumGroups(level int) int {
	gs := t.GroupSize(level)
	return (t.n + gs - 1) / gs
}

// LCALevel returns the level of the least common ancestor of nodes a and
// b: the smallest l >= 1 such that a and b are in the same level-l
// cluster. LCALevel(a, a) is 0 by convention (no network traversal).
func (t *Topology) LCALevel(a, b int) int {
	t.checkNode(a)
	t.checkNode(b)
	if a == b {
		return 0
	}
	for l := 1; ; l++ {
		if a>>(2*uint(l)) == b>>(2*uint(l)) {
			return l
		}
	}
}

// DistanceClass buckets an LCA level into the CM-5's three published
// bandwidth regimes: 1 = same cluster of 4 (20 MB/s), 2 = same cluster of
// 16 (10 MB/s), 3 = beyond (5 MB/s). Class 0 means a == b.
func (t *Topology) DistanceClass(a, b int) int {
	l := t.LCALevel(a, b)
	if l > 3 {
		return 3
	}
	return l
}

// LinkID identifies one aggregated link group in the tree: the bundle of
// wires connecting a level-l cluster to the level above, in one direction.
type LinkID struct {
	Level int  // 0 = node injection/ejection link, >=1 = cluster uplinks
	Group int  // node index for level 0, cluster index otherwise
	Up    bool // true = toward root, false = toward leaves
}

// String renders a LinkID for diagnostics.
func (l LinkID) String() string {
	dir := "down"
	if l.Up {
		dir = "up"
	}
	return fmt.Sprintf("L%d/%d/%s", l.Level, l.Group, dir)
}

// Route returns the ordered list of aggregated links a message from src to
// dst traverses: src's injection link, the uplinks of src's clusters below
// the LCA, the downlinks of dst's clusters below the LCA, and dst's
// ejection link. Route(a, a) returns nil: node-local data never enters the
// network.
func (t *Topology) Route(src, dst int) []LinkID {
	t.checkNode(src)
	t.checkNode(dst)
	if src == dst {
		return nil
	}
	lca := t.LCALevel(src, dst)
	route := make([]LinkID, 0, 2*lca)
	route = append(route, LinkID{Level: 0, Group: src, Up: true})
	for l := 1; l < lca; l++ {
		route = append(route, LinkID{Level: l, Group: t.Group(src, l), Up: true})
	}
	for l := lca - 1; l >= 1; l-- {
		route = append(route, LinkID{Level: l, Group: t.Group(dst, l), Up: false})
	}
	route = append(route, LinkID{Level: 0, Group: dst, Up: false})
	return route
}

// CrossesTop reports whether a message between a and b traverses the top
// of the partition's tree (its LCA is the partition root). For BEX-style
// schedule analysis this is the "global exchange" predicate of the paper.
func (t *Topology) CrossesTop(a, b int) bool {
	if a == b {
		return false
	}
	return t.LCALevel(a, b) >= t.topLevel()
}

// topLevel is the level at which the whole partition is one cluster,
// in terms of the binary-prefix grouping. For power-of-4 sizes this is
// Levels(); for sizes 2*4^k the two half-partition clusters meet at
// Levels() as well (the partial top level).
func (t *Topology) topLevel() int { return t.levels }

func (t *Topology) checkNode(node int) {
	if node < 0 || node >= t.n {
		panic(fmt.Sprintf("fattree: node %d out of range [0,%d)", node, t.n))
	}
}
