package exp

import (
	"context"
	"fmt"
	"math/rand"

	"repro/cm5"
	"repro/internal/apps/fft"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// Fig5MessageSizes are the message sizes swept in Figure 5.
var Fig5MessageSizes = []int{0, 16, 64, 256, 512, 1024, 2048}

// MachineSizes is the machine-size sweep of Figures 6-8 and 11.
var MachineSizes = []int{16, 32, 64, 128, 256}

// Fig5 reproduces Figure 5: complete-exchange time versus message size
// on a 32-node machine for all four algorithms.
func Fig5(cfg network.Config) (*Table, error) { return runSpec(Fig5Spec(cfg)) }

// Fig5Spec builds Figure 5 as one cell per (algorithm, message size).
func Fig5Spec(cfg network.Config) *TableSpec {
	return exchangeSweepBySizeSpec("fig5",
		"Figure 5: Complete exchange on 32 nodes (ms)", 32, Fig5MessageSizes, cfg)
}

func exchangeSweepBySizeSpec(name, title string, n int, sizes []int, cfg network.Config) *TableSpec {
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	t := NewTable(title, rows, ExchangeAlgs)
	spec := &TableSpec{Name: name, Table: t}
	for r, size := range sizes {
		for c, alg := range ExchangeAlgs {
			spec.AddCell(fmt.Sprintf("%s/%s/N%d/%dB", name, alg, n, size),
				func(ctx context.Context, _ int64, rec *Rec) error {
					a, err := cm5.LookupAlgorithm(alg)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.NewJob(a, n, size, cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.Set(r, c, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	t.Note = "Expected shape (paper): LEX worst throughout; for large messages BEX < PEX < REX."
	return spec
}

// Fig6 reproduces Figure 6: complete exchange versus machine size at 0
// and 256 bytes.
func Fig6(cfg network.Config) (*Table, error) { return runSpec(Fig6Spec(cfg)) }

// Fig6Spec builds Figure 6 as one cell per (machine size, message size,
// algorithm).
func Fig6Spec(cfg network.Config) *TableSpec {
	return exchangeSweepByMachineSpec("fig6",
		"Figure 6: Complete exchange vs machine size, 0 B and 256 B (ms)", []int{0, 256}, cfg)
}

// Fig7 reproduces Figure 7 (512-byte messages).
func Fig7(cfg network.Config) (*Table, error) { return runSpec(Fig7Spec(cfg)) }

// Fig7Spec builds Figure 7.
func Fig7Spec(cfg network.Config) *TableSpec {
	return exchangeSweepByMachineSpec("fig7",
		"Figure 7: Complete exchange vs machine size, 512 B (ms)", []int{512}, cfg)
}

// Fig8 reproduces Figure 8 (1920-byte messages).
func Fig8(cfg network.Config) (*Table, error) { return runSpec(Fig8Spec(cfg)) }

// Fig8Spec builds Figure 8.
func Fig8Spec(cfg network.Config) *TableSpec {
	return exchangeSweepByMachineSpec("fig8",
		"Figure 8: Complete exchange vs machine size, 1920 B (ms)", []int{1920}, cfg)
}

var scalingAlgs = []string{"PEX", "REX", "BEX"}

func exchangeSweepByMachineSpec(name, title string, sizes []int, cfg network.Config) *TableSpec {
	var cols []string
	for _, size := range sizes {
		for _, alg := range scalingAlgs {
			cols = append(cols, fmt.Sprintf("%s@%dB", alg, size))
		}
	}
	rows := make([]string, len(MachineSizes))
	for i, n := range MachineSizes {
		rows[i] = fmt.Sprintf("N=%d", n)
	}
	t := NewTable(title, rows, cols)
	spec := &TableSpec{Name: name, Table: t}
	for r, n := range MachineSizes {
		c := 0
		for _, size := range sizes {
			for _, alg := range scalingAlgs {
				col := c
				spec.AddCell(fmt.Sprintf("%s/%s/N%d/%dB", name, alg, n, size),
					func(ctx context.Context, _ int64, rec *Rec) error {
						a, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.NewJob(a, n, size, cm5.WithConfig(cfg)))
						if err != nil {
							return err
						}
						rec.Set(r, col, "%.3f", res.Elapsed.Millis())
						return nil
					})
				c++
			}
		}
	}
	t.Note = "Expected shape (paper): at 0 B REX wins everywhere; at larger sizes PEX/BEX win on small machines and REX overtakes as N grows."
	return spec
}

// Table5Sizes are the array sizes of the paper's Table 5.
var Table5Sizes = []int{256, 512, 1024, 2048}

// Table5 reproduces Table 5: 2-D FFT wall time for every exchange
// algorithm on the given machine size. Array sizes above maxSize are
// skipped (the 2048x2048 runs are host-expensive).
func Table5(nprocs int, maxSize int, cfg network.Config) (*Table, error) {
	return runSpec(Table5Spec(nprocs, maxSize, cfg))
}

// Table5Spec builds Table 5 as one cell per (array size, algorithm).
// Each cell regenerates its own input matrix from the size-derived seed,
// so cells share no mutable state.
func Table5Spec(nprocs int, maxSize int, cfg network.Config) *TableSpec {
	var sizes []int
	for _, s := range Table5Sizes {
		if maxSize <= 0 || s <= maxSize {
			sizes = append(sizes, s)
		}
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%dx%d", s, s)
	}
	var cols []string
	for _, alg := range ExchangeAlgs {
		cols = append(cols, alg, alg+"(paper)")
	}
	t := NewTable(fmt.Sprintf("Table 5: 2-D FFT on %d processors (seconds)", nprocs), rows, cols)
	spec := &TableSpec{Name: fmt.Sprintf("table5-%d", nprocs), Table: t}
	for r, size := range sizes {
		for a, alg := range ExchangeAlgs {
			spec.AddCell(fmt.Sprintf("table5/P%d/%s/%dx%d", nprocs, alg, size, size),
				func(ctx context.Context, _ int64, rec *Rec) error {
					input := fftInput(size, size, int64(size))
					res, err := fft.Run2D(nprocs, input, alg, cfg)
					if err != nil {
						return err
					}
					rec.Set(r, 2*a, "%.3f", res.Elapsed.Seconds())
					if paper, ok := PaperTable5[nprocs][size][alg]; ok {
						rec.Set(r, 2*a+1, "%.3f", paper)
					} else {
						rec.Set(r, 2*a+1, "-")
					}
					return nil
				})
		}
	}
	t.Note = "Expected shape (paper): LEX worst (catastrophically at 256 procs); PEX~BEX; BEX best at 2048^2."
	return spec
}

func fftInput(rows, cols int, seed int64) [][]complex128 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]complex128, rows)
	for r := range a {
		a[r] = make([]complex128, cols)
		for c := range a[r] {
			a[r][c] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	return a
}

// Fig10Sizes are the broadcast message sizes swept in Figure 10.
var Fig10Sizes = []int{0, 64, 256, 1024, 2048, 4096, 8192}

// Fig10 reproduces Figure 10: broadcast time versus message size on 32
// nodes for LIB, REB and the system broadcast.
func Fig10(cfg network.Config) (*Table, error) { return runSpec(Fig10Spec(cfg)) }

// Fig10Spec builds Figure 10 as one cell per (algorithm, message size).
func Fig10Spec(cfg network.Config) *TableSpec {
	algs := []string{"LIB", "REB", "SYS"}
	rows := make([]string, len(Fig10Sizes))
	for i, s := range Fig10Sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	t := NewTable("Figure 10: Broadcast on 32 nodes (ms)", rows, algs)
	spec := &TableSpec{Name: "fig10", Table: t}
	for r, size := range Fig10Sizes {
		for c, alg := range algs {
			spec.AddCell(fmt.Sprintf("fig10/%s/N32/%dB", alg, size),
				func(ctx context.Context, _ int64, rec *Rec) error {
					a, err := cm5.LookupAlgorithm(alg)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.NewJob(a, 32, size, cm5.WithRoot(0), cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.Set(r, c, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	t.Note = "Expected shape (paper): LIB >> REB; system broadcast wins below ~1 KB, REB above."
	return spec
}

// Fig11 reproduces Figure 11: REB versus the system broadcast across
// machine sizes for several message sizes.
func Fig11(cfg network.Config) (*Table, error) { return runSpec(Fig11Spec(cfg)) }

// Fig11Spec builds Figure 11 as one cell per (algorithm, machine size,
// message size).
func Fig11Spec(cfg network.Config) *TableSpec {
	sizes := []int{256, 1024, 4096}
	var cols []string
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("REB@%dB", s))
	}
	cols = append(cols, "SYS@256B", "SYS@1024B", "SYS@4096B")
	rows := make([]string, len(MachineSizes))
	for i, n := range MachineSizes {
		rows[i] = fmt.Sprintf("N=%d", n)
	}
	t := NewTable("Figure 11: Recursive vs system broadcast across machine sizes (ms)", rows, cols)
	spec := &TableSpec{Name: "fig11", Table: t}
	for r, n := range MachineSizes {
		for ci, alg := range []string{"REB", "SYS"} {
			for c, s := range sizes {
				col := ci*len(sizes) + c
				spec.AddCell(fmt.Sprintf("fig11/%s/N%d/%dB", alg, n, s),
					func(ctx context.Context, _ int64, rec *Rec) error {
						a, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.NewJob(a, n, s, cm5.WithRoot(0), cm5.WithConfig(cfg)))
						if err != nil {
							return err
						}
						rec.Set(r, col, "%.3f", res.Elapsed.Millis())
						return nil
					})
			}
		}
	}
	t.Note = "Expected shape (paper): system broadcast ~flat in N; REB's crossover size grows with N."
	return spec
}

// Table11Densities and Table11Sizes are the synthetic sweep parameters.
var (
	Table11Densities = []int{10, 25, 50, 75}
	Table11Sizes     = []int{256, 512}
)

// Table11 reproduces Table 11: the four irregular schedulers on synthetic
// patterns of 10/25/50/75 % density with 256- and 512-byte messages on 32
// processors, with the paper's milliseconds alongside.
func Table11(cfg network.Config) (*Table, error) { return runSpec(Table11Spec(cfg)) }

// Table11Spec builds Table 11 as one cell per (algorithm, density,
// message size). Pattern seeds stay fixed so the table is canonical.
func Table11Spec(cfg network.Config) *TableSpec {
	var cols []string
	for _, d := range Table11Densities {
		for _, s := range Table11Sizes {
			cols = append(cols, fmt.Sprintf("%d%%/%dB", d, s))
		}
	}
	var rows []string
	for _, alg := range IrregularAlgs {
		rows = append(rows, alg, alg+"(paper)")
	}
	t := NewTable("Table 11: Irregular scheduling of synthetic patterns on 32 processors (ms)", rows, cols)
	spec := &TableSpec{Name: "table11", Table: t}
	for a, alg := range IrregularAlgs {
		c := 0
		for _, density := range Table11Densities {
			for _, size := range Table11Sizes {
				col := c
				spec.AddCell(fmt.Sprintf("table11/%s/%d%%/%dB", alg, density, size),
					func(ctx context.Context, _ int64, rec *Rec) error {
						p := pattern.Synthetic(32, float64(density)/100, size, int64(density*1000+size))
						algo, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.PatternJob(algo, p, cm5.WithConfig(cfg)))
						if err != nil {
							return err
						}
						rec.Set(2*a, col, "%.3f", res.Elapsed.Millis())
						rec.Set(2*a+1, col, "%.3f", PaperTable11[alg][density][size])
						return nil
					})
				c++
			}
		}
	}
	t.Note = "Expected shape (paper): LS worst everywhere; GS best below 50% density; BS best at 75%."
	return spec
}

// RealPatternResult carries one Table 12 column's measurements.
type RealPatternResult struct {
	Problem    RealProblem
	Pattern    pattern.Matrix
	DensityPct float64
	AvgBytes   float64
	TimesMs    map[string]float64
	StepCounts map[string]int
}

// RealPatterns builds the halo patterns for the paper's five real
// problems from synthetic meshes of matching vertex counts partitioned
// over nprocs processors (see README.md for the substitution argument).
// The Euler problems use a distance-2 halo: the paper's meshes are
// three-dimensional, with far denser processor connectivity than a
// planar one-hop halo produces.
func RealPatterns(nprocs int) ([]pattern.Matrix, error) {
	var out []pattern.Matrix
	for _, prob := range PaperTable12 {
		m := mesh.Generate(prob.Vertices, int64(prob.Vertices))
		owner := mesh.PartitionRCB(m, nprocs)
		pt, err := mesh.NewPartition(m, owner, nprocs)
		if err != nil {
			return nil, err
		}
		if prob.BytesPerVertex == 32 { // Euler problems
			out = append(out, pt.WideHaloPattern(prob.BytesPerVertex))
		} else {
			out = append(out, pt.HaloPattern(prob.BytesPerVertex))
		}
	}
	return out, nil
}

// Table12 reproduces Table 12: the four schedulers on the real halo
// patterns (CG 16K and the four Euler meshes) on 32 processors.
func Table12(cfg network.Config) (*Table, []RealPatternResult, error) {
	spec, results, err := Table12Spec(cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := runSpec(spec); err != nil {
		return nil, nil, err
	}
	return spec.Table, *results, nil
}

// Table12Spec builds Table 12 as one cell per (problem, algorithm). The
// halo patterns are generated up front (deterministically) and shared
// read-only by the cells; the per-problem result structs are assembled
// by the Finish hook. The results slice is populated once the spec has
// run.
func Table12Spec(cfg network.Config) (*TableSpec, *[]RealPatternResult, error) {
	patterns, err := RealPatterns(32)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(PaperTable12))
	for i, prob := range PaperTable12 {
		cols[i] = prob.Name
	}
	var rows []string
	for _, alg := range IrregularAlgs {
		rows = append(rows, alg, alg+"(paper)")
	}
	rows = append(rows, "density %", "density(paper) %", "avg bytes", "avg bytes(paper)")
	t := NewTable("Table 12: Irregular scheduling of real patterns on 32 processors (ms)", rows, cols)

	// Cells record their time and step count as named scalars; the
	// Finish hook reads them back (CellFloat/CellInt) and folds them
	// into the map-based RealPatternResult form — so a result-store
	// replay feeds the derived rows exactly like a fresh simulation.
	results := &[]RealPatternResult{}

	spec := &TableSpec{Name: "table12", Table: t}
	cellKey := func(prob RealProblem, alg string) string {
		return fmt.Sprintf("table12/%s/%s", sanitizeKey(prob.Name), alg)
	}
	for c, prob := range PaperTable12 {
		p := patterns[c]
		for a, alg := range IrregularAlgs {
			spec.AddCell(cellKey(prob, alg),
				func(ctx context.Context, _ int64, rec *Rec) error {
					algo, err := cm5.LookupAlgorithm(alg)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.PatternJob(algo, p, cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.PutFloat("ms", res.Elapsed.Millis())
					rec.PutInt("steps", res.Steps)
					rec.Set(2*a, c, "%.3f", res.Elapsed.Millis())
					rec.Set(2*a+1, c, "%.3f", prob.PaperMs[alg])
					return nil
				})
		}
	}
	spec.Finish = func() error {
		*results = (*results)[:0]
		for c, prob := range PaperTable12 {
			p := patterns[c]
			res := RealPatternResult{
				Problem:    prob,
				Pattern:    p,
				DensityPct: 100 * p.Density(),
				AvgBytes:   p.AvgBytes(),
				TimesMs:    map[string]float64{},
				StepCounts: map[string]int{},
			}
			for _, alg := range IrregularAlgs {
				res.TimesMs[alg] = spec.CellFloat(cellKey(prob, alg), "ms")
				res.StepCounts[alg] = spec.CellInt(cellKey(prob, alg), "steps")
			}
			t.Set(2*len(IrregularAlgs), c, "%.0f", res.DensityPct)
			t.Set(2*len(IrregularAlgs)+1, c, "%d", prob.PaperDensityPct)
			t.Set(2*len(IrregularAlgs)+2, c, "%.0f", res.AvgBytes)
			t.Set(2*len(IrregularAlgs)+3, c, "%d", prob.PaperAvgBytes)
			*results = append(*results, res)
		}
		return nil
	}
	t.Note = "Expected shape (paper): all real densities < 50% so GS wins every column; LS worst. " +
		"Patterns come from synthetic planar meshes of the paper's vertex counts (README.md)."
	return spec, results, nil
}

// sanitizeKey makes a problem name usable inside a cell key.
func sanitizeKey(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == ' ':
			out = append(out, '_')
		case c == '.':
			// drop
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// ScheduleTables renders the paper's schedule tables 1-4 (8-processor
// complete exchange) and 7-10 (pattern P).
func ScheduleTables() string {
	p := pattern.PaperP(1)
	out := ""
	for _, s := range []*sched.Schedule{
		sched.LEX(8, 1), sched.PEX(8, 1), sched.REX(8, 1), sched.BEX(8, 1),
		sched.LS(p), sched.PS(p), sched.BS(p), sched.GS(p),
	} {
		out += fmt.Sprintf("%s schedule (%d steps):\n%s\n", s.Algorithm, s.NumSteps(), s.Table())
	}
	return out
}
