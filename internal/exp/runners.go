package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/apps/fft"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// Fig5MessageSizes are the message sizes swept in Figure 5.
var Fig5MessageSizes = []int{0, 16, 64, 256, 512, 1024, 2048}

// MachineSizes is the machine-size sweep of Figures 6-8 and 11.
var MachineSizes = []int{16, 32, 64, 128, 256}

// Fig5 reproduces Figure 5: complete-exchange time versus message size
// on a 32-node machine for all four algorithms.
func Fig5(cfg network.Config) (*Table, error) {
	return exchangeSweepBySize("Figure 5: Complete exchange on 32 nodes (ms)", 32, Fig5MessageSizes, cfg)
}

func exchangeSweepBySize(title string, n int, sizes []int, cfg network.Config) (*Table, error) {
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	t := NewTable(title, rows, ExchangeAlgs)
	for r, size := range sizes {
		for c, alg := range ExchangeAlgs {
			d, err := sched.Exchange(alg, n, size, cfg)
			if err != nil {
				return nil, err
			}
			t.Set(r, c, "%.3f", d.Millis())
		}
	}
	t.Note = "Expected shape (paper): LEX worst throughout; for large messages BEX < PEX < REX."
	return t, nil
}

// Fig6 reproduces Figure 6: complete exchange versus machine size at 0
// and 256 bytes.
func Fig6(cfg network.Config) (*Table, error) {
	return exchangeSweepByMachine("Figure 6: Complete exchange vs machine size, 0 B and 256 B (ms)",
		[]int{0, 256}, cfg)
}

// Fig7 reproduces Figure 7 (512-byte messages).
func Fig7(cfg network.Config) (*Table, error) {
	return exchangeSweepByMachine("Figure 7: Complete exchange vs machine size, 512 B (ms)",
		[]int{512}, cfg)
}

// Fig8 reproduces Figure 8 (1920-byte messages).
func Fig8(cfg network.Config) (*Table, error) {
	return exchangeSweepByMachine("Figure 8: Complete exchange vs machine size, 1920 B (ms)",
		[]int{1920}, cfg)
}

func exchangeSweepByMachine(title string, sizes []int, cfg network.Config) (*Table, error) {
	var cols []string
	for _, size := range sizes {
		for _, alg := range []string{"PEX", "REX", "BEX"} {
			cols = append(cols, fmt.Sprintf("%s@%dB", alg, size))
		}
	}
	rows := make([]string, len(MachineSizes))
	for i, n := range MachineSizes {
		rows[i] = fmt.Sprintf("N=%d", n)
	}
	t := NewTable(title, rows, cols)
	for r, n := range MachineSizes {
		c := 0
		for _, size := range sizes {
			for _, alg := range []string{"PEX", "REX", "BEX"} {
				d, err := sched.Exchange(alg, n, size, cfg)
				if err != nil {
					return nil, err
				}
				t.Set(r, c, "%.3f", d.Millis())
				c++
			}
		}
	}
	t.Note = "Expected shape (paper): at 0 B REX wins everywhere; at larger sizes PEX/BEX win on small machines and REX overtakes as N grows."
	return t, nil
}

// Table5Sizes are the array sizes of the paper's Table 5.
var Table5Sizes = []int{256, 512, 1024, 2048}

// Table5 reproduces Table 5: 2-D FFT wall time for every exchange
// algorithm on the given machine size. Array sizes above maxSize are
// skipped (the 2048x2048 runs are host-expensive).
func Table5(nprocs int, maxSize int, cfg network.Config) (*Table, error) {
	var sizes []int
	for _, s := range Table5Sizes {
		if maxSize <= 0 || s <= maxSize {
			sizes = append(sizes, s)
		}
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%dx%d", s, s)
	}
	var cols []string
	for _, alg := range ExchangeAlgs {
		cols = append(cols, alg, alg+"(paper)")
	}
	t := NewTable(fmt.Sprintf("Table 5: 2-D FFT on %d processors (seconds)", nprocs), rows, cols)
	for r, size := range sizes {
		input := fftInput(size, size, int64(size))
		for a, alg := range ExchangeAlgs {
			res, err := fft.Run2D(nprocs, input, alg, cfg)
			if err != nil {
				return nil, err
			}
			t.Set(r, 2*a, "%.3f", res.Elapsed.Seconds())
			if paper, ok := PaperTable5[nprocs][size][alg]; ok {
				t.Set(r, 2*a+1, "%.3f", paper)
			} else {
				t.Set(r, 2*a+1, "-")
			}
		}
	}
	t.Note = "Expected shape (paper): LEX worst (catastrophically at 256 procs); PEX~BEX; BEX best at 2048^2."
	return t, nil
}

func fftInput(rows, cols int, seed int64) [][]complex128 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]complex128, rows)
	for r := range a {
		a[r] = make([]complex128, cols)
		for c := range a[r] {
			a[r][c] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	return a
}

// Fig10Sizes are the broadcast message sizes swept in Figure 10.
var Fig10Sizes = []int{0, 64, 256, 1024, 2048, 4096, 8192}

// Fig10 reproduces Figure 10: broadcast time versus message size on 32
// nodes for LIB, REB and the system broadcast.
func Fig10(cfg network.Config) (*Table, error) {
	algs := []string{"LIB", "REB", "SYS"}
	rows := make([]string, len(Fig10Sizes))
	for i, s := range Fig10Sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	t := NewTable("Figure 10: Broadcast on 32 nodes (ms)", rows, algs)
	for r, size := range Fig10Sizes {
		for c, alg := range algs {
			d, err := sched.Broadcast(alg, 32, 0, size, cfg)
			if err != nil {
				return nil, err
			}
			t.Set(r, c, "%.3f", d.Millis())
		}
	}
	t.Note = "Expected shape (paper): LIB >> REB; system broadcast wins below ~1 KB, REB above."
	return t, nil
}

// Fig11 reproduces Figure 11: REB versus the system broadcast across
// machine sizes for several message sizes.
func Fig11(cfg network.Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	var cols []string
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("REB@%dB", s))
	}
	cols = append(cols, "SYS@256B", "SYS@1024B", "SYS@4096B")
	rows := make([]string, len(MachineSizes))
	for i, n := range MachineSizes {
		rows[i] = fmt.Sprintf("N=%d", n)
	}
	t := NewTable("Figure 11: Recursive vs system broadcast across machine sizes (ms)", rows, cols)
	for r, n := range MachineSizes {
		for c, s := range sizes {
			d, err := sched.Broadcast("REB", n, 0, s, cfg)
			if err != nil {
				return nil, err
			}
			t.Set(r, c, "%.3f", d.Millis())
		}
		for c, s := range sizes {
			d, err := sched.Broadcast("SYS", n, 0, s, cfg)
			if err != nil {
				return nil, err
			}
			t.Set(r, len(sizes)+c, "%.3f", d.Millis())
		}
	}
	t.Note = "Expected shape (paper): system broadcast ~flat in N; REB's crossover size grows with N."
	return t, nil
}

// Table11Densities and Table11Sizes are the synthetic sweep parameters.
var (
	Table11Densities = []int{10, 25, 50, 75}
	Table11Sizes     = []int{256, 512}
)

// Table11 reproduces Table 11: the four irregular schedulers on synthetic
// patterns of 10/25/50/75 % density with 256- and 512-byte messages on 32
// processors, with the paper's milliseconds alongside.
func Table11(cfg network.Config) (*Table, error) {
	var cols []string
	for _, d := range Table11Densities {
		for _, s := range Table11Sizes {
			cols = append(cols, fmt.Sprintf("%d%%/%dB", d, s))
		}
	}
	var rows []string
	for _, alg := range IrregularAlgs {
		rows = append(rows, alg, alg+"(paper)")
	}
	t := NewTable("Table 11: Irregular scheduling of synthetic patterns on 32 processors (ms)", rows, cols)
	for a, alg := range IrregularAlgs {
		c := 0
		for _, density := range Table11Densities {
			for _, size := range Table11Sizes {
				p := pattern.Synthetic(32, float64(density)/100, size, int64(density*1000+size))
				s, err := sched.Irregular(alg, p)
				if err != nil {
					return nil, err
				}
				d, err := sched.Run(s, cfg)
				if err != nil {
					return nil, err
				}
				t.Set(2*a, c, "%.3f", d.Millis())
				t.Set(2*a+1, c, "%.3f", PaperTable11[alg][density][size])
				c++
			}
		}
	}
	t.Note = "Expected shape (paper): LS worst everywhere; GS best below 50% density; BS best at 75%."
	return t, nil
}

// RealPatternResult carries one Table 12 column's measurements.
type RealPatternResult struct {
	Problem    RealProblem
	Pattern    pattern.Matrix
	DensityPct float64
	AvgBytes   float64
	TimesMs    map[string]float64
	StepCounts map[string]int
}

// RealPatterns builds the halo patterns for the paper's five real
// problems from synthetic meshes of matching vertex counts partitioned
// over nprocs processors (see DESIGN.md for the substitution argument).
// The Euler problems use a distance-2 halo: the paper's meshes are
// three-dimensional, with far denser processor connectivity than a
// planar one-hop halo produces.
func RealPatterns(nprocs int) ([]pattern.Matrix, error) {
	var out []pattern.Matrix
	for _, prob := range PaperTable12 {
		m := mesh.Generate(prob.Vertices, int64(prob.Vertices))
		owner := mesh.PartitionRCB(m, nprocs)
		pt, err := mesh.NewPartition(m, owner, nprocs)
		if err != nil {
			return nil, err
		}
		if prob.BytesPerVertex == 32 { // Euler problems
			out = append(out, pt.WideHaloPattern(prob.BytesPerVertex))
		} else {
			out = append(out, pt.HaloPattern(prob.BytesPerVertex))
		}
	}
	return out, nil
}

// Table12 reproduces Table 12: the four schedulers on the real halo
// patterns (CG 16K and the four Euler meshes) on 32 processors.
func Table12(cfg network.Config) (*Table, []RealPatternResult, error) {
	patterns, err := RealPatterns(32)
	if err != nil {
		return nil, nil, err
	}
	var results []RealPatternResult
	cols := make([]string, len(PaperTable12))
	for i, prob := range PaperTable12 {
		cols[i] = prob.Name
	}
	var rows []string
	for _, alg := range IrregularAlgs {
		rows = append(rows, alg, alg+"(paper)")
	}
	rows = append(rows, "density %", "density(paper) %", "avg bytes", "avg bytes(paper)")
	t := NewTable("Table 12: Irregular scheduling of real patterns on 32 processors (ms)", rows, cols)

	for c, prob := range PaperTable12 {
		p := patterns[c]
		res := RealPatternResult{
			Problem:    prob,
			Pattern:    p,
			DensityPct: 100 * p.Density(),
			AvgBytes:   p.AvgBytes(),
			TimesMs:    map[string]float64{},
			StepCounts: map[string]int{},
		}
		for a, alg := range IrregularAlgs {
			s, err := sched.Irregular(alg, p)
			if err != nil {
				return nil, nil, err
			}
			d, err := sched.Run(s, cfg)
			if err != nil {
				return nil, nil, err
			}
			res.TimesMs[alg] = d.Millis()
			res.StepCounts[alg] = s.NumSteps()
			t.Set(2*a, c, "%.3f", d.Millis())
			t.Set(2*a+1, c, "%.3f", prob.PaperMs[alg])
		}
		t.Set(2*len(IrregularAlgs), c, "%.0f", res.DensityPct)
		t.Set(2*len(IrregularAlgs)+1, c, "%d", prob.PaperDensityPct)
		t.Set(2*len(IrregularAlgs)+2, c, "%.0f", res.AvgBytes)
		t.Set(2*len(IrregularAlgs)+3, c, "%d", prob.PaperAvgBytes)
		results = append(results, res)
	}
	t.Note = "Expected shape (paper): all real densities < 50% so GS wins every column; LS worst. " +
		"Patterns come from synthetic planar meshes of the paper's vertex counts (DESIGN.md)."
	return t, results, nil
}

// ScheduleTables renders the paper's schedule tables 1-4 (8-processor
// complete exchange) and 7-10 (pattern P).
func ScheduleTables() string {
	p := pattern.PaperP(1)
	out := ""
	for _, s := range []*sched.Schedule{
		sched.LEX(8, 1), sched.PEX(8, 1), sched.REX(8, 1), sched.BEX(8, 1),
		sched.LS(p), sched.PS(p), sched.BS(p), sched.GS(p),
	} {
		out += fmt.Sprintf("%s schedule (%d steps):\n%s\n", s.Algorithm, s.NumSteps(), s.Table())
	}
	return out
}
