package exp

import (
	"context"
	"fmt"
	"regexp"
	"sync/atomic"
	"testing"

	"repro/internal/network"
	"repro/internal/store"
)

// countingSpec builds a deterministic 4x4 spec whose cells count their
// executions, with a Finish-derived final column — the full shape of
// the real experiment families, minus the simulation cost.
func countingSpec(ran *atomic.Int64) *TableSpec {
	rows := []string{"r0", "r1", "r2", "r3"}
	cols := []string{"a", "b", "c", "derived"}
	t := NewTable("counting", rows, cols)
	spec := &TableSpec{Name: "counting", Table: t}
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			key := fmt.Sprintf("counting/alg%d/N%d", c, r)
			spec.AddCell(key, func(ctx context.Context, seed int64, rec *Rec) error {
				ran.Add(1)
				rec.Set(r, c, "%d.%d", r, c)
				rec.PutFloat("v", float64(10*r+c))
				return nil
			})
		}
	}
	spec.Finish = func() error {
		for r := 0; r < 4; r++ {
			sum := 0.0
			for c := 0; c < 3; c++ {
				sum += spec.CellFloat(fmt.Sprintf("counting/alg%d/N%d", c, r), "v")
			}
			t.Set(r, 3, "%.0f", sum)
		}
		return nil
	}
	return spec
}

func storeRunner(t *testing.T, dir string, workers int) *Runner {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(workers)
	r.Store = st
	r.StoreBase = StoreBase(network.DefaultConfig())
	return r
}

// TestStoreReplayByteIdentical is the core cache contract: a storeless
// run, a cold store run, and a warm store run must render
// byte-identical tables — and the warm run must not execute a single
// cell function.
func TestStoreReplayByteIdentical(t *testing.T) {
	var ran atomic.Int64

	baseline, err := NewRunner(4).RunTable(context.Background(), countingSpec(&ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Fatalf("storeless run executed %d cells, want 12", ran.Load())
	}

	dir := t.TempDir()
	ran.Store(0)
	cold := storeRunner(t, dir, 4)
	coldTab, err := cold.RunTable(context.Background(), countingSpec(&ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 || cold.CacheMisses() != 12 || cold.CacheHits() != 0 {
		t.Fatalf("cold run: ran=%d misses=%d hits=%d, want 12/12/0",
			ran.Load(), cold.CacheMisses(), cold.CacheHits())
	}
	if coldTab.Render() != baseline.Render() {
		t.Fatalf("cold store run differs from storeless run:\n%s\nvs\n%s",
			coldTab.Render(), baseline.Render())
	}

	ran.Store(0)
	warm := storeRunner(t, dir, 4)
	warmTab, err := warm.RunTable(context.Background(), countingSpec(&ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Fatalf("warm run executed %d cell functions, want 0 (all cached)", ran.Load())
	}
	if warm.CacheHits() != 12 || warm.CacheMisses() != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 12/0", warm.CacheHits(), warm.CacheMisses())
	}
	if warmTab.Render() != baseline.Render() {
		t.Fatalf("warm store run differs from storeless run:\n%s\nvs\n%s",
			warmTab.Render(), baseline.Render())
	}
}

// TestStoreResumeAfterPartialSweep models an interrupted sweep: a run
// that completed only a subset of cells (filter standing in for a
// mid-sweep kill — the store state is identical), then a full re-run
// that must reuse every completed cell and simulate only the rest.
func TestStoreResumeAfterPartialSweep(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Int64

	partial := storeRunner(t, dir, 2)
	partial.Filter = regexp.MustCompile(`alg[01]/`)
	if err := partial.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("partial run executed %d cells, want 8", ran.Load())
	}

	ran.Store(0)
	resume := storeRunner(t, dir, 2)
	tab, err := resume.RunTable(context.Background(), countingSpec(&ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("resume executed %d cells, want only the 4 missing ones", ran.Load())
	}
	if resume.CacheHits() != 8 || resume.CacheMisses() != 4 {
		t.Fatalf("resume: hits=%d misses=%d, want 8/4", resume.CacheHits(), resume.CacheMisses())
	}

	var ran2 atomic.Int64
	want, err := NewRunner(1).RunTable(context.Background(), countingSpec(&ran2))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Render() != want.Render() {
		t.Fatalf("resumed table differs from a fresh full run:\n%s\nvs\n%s", tab.Render(), want.Render())
	}
}

// TestStoreSeedAndBaseChangeKeys: perturbing the runner seed or any
// StoreBase field (config, code version) must miss the cache — stored
// results are only reusable when everything they depend on matches.
func TestStoreSeedAndBaseChangeKeys(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Int64
	first := storeRunner(t, dir, 2)
	if err := first.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}

	reseeded := storeRunner(t, dir, 2)
	reseeded.Seed = 99
	if err := reseeded.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	if reseeded.CacheHits() != 0 || reseeded.CacheMisses() != 12 {
		t.Fatalf("reseeded run: hits=%d misses=%d, want 0/12", reseeded.CacheHits(), reseeded.CacheMisses())
	}

	rebased := storeRunner(t, dir, 2)
	rebased.StoreBase = store.Spec{"config": "other", "code_version": ResultsVersion + 1}
	if err := rebased.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	if rebased.CacheHits() != 0 {
		t.Fatalf("rebased run hit %d cells across a base change", rebased.CacheHits())
	}

	same := storeRunner(t, dir, 2)
	if err := same.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	if same.CacheHits() != 12 {
		t.Fatalf("identical spec hit only %d/12 cells", same.CacheHits())
	}
}

// TestStoreInvalidateForcesResimulation wires the store's Invalidate
// through a sweep: invalidated cells simulate again, the rest replay.
func TestStoreInvalidateForcesResimulation(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Int64
	if err := storeRunner(t, dir, 2).Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := st.Invalidate(regexp.MustCompile(`alg0/`))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("invalidated %d records, want 4", n)
	}

	ran.Store(0)
	again := storeRunner(t, dir, 2)
	if err := again.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 || again.CacheHits() != 8 {
		t.Fatalf("post-invalidate: ran=%d hits=%d, want 4/8", ran.Load(), again.CacheHits())
	}
}

// TestStoreRealFamilyByteIdentical runs a real (cheap) experiment
// family — including its Finish-derived columns — through the store
// twice and against a storeless run: all three renders must match, and
// the warm run must be all hits.
func TestStoreRealFamilyByteIdentical(t *testing.T) {
	cfg := network.DefaultConfig()
	baseline, err := NewRunner(4).RunTable(context.Background(), AblationFatTreeSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cold := storeRunner(t, dir, 4)
	coldTab, err := cold.RunTable(context.Background(), AblationFatTreeSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	warm := storeRunner(t, dir, 4)
	warmTab, err := warm.RunTable(context.Background(), AblationFatTreeSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheMisses() != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", warm.CacheMisses())
	}
	if coldTab.Render() != baseline.Render() || warmTab.Render() != baseline.Render() {
		t.Fatalf("store changed a real family's output:\nbaseline:\n%s\ncold:\n%s\nwarm:\n%s",
			baseline.Render(), coldTab.Render(), warmTab.Render())
	}
}

// TestStoreProgressMarksCachedCells: OnProgress must distinguish
// replayed cells so cmexp -v can report the resume split.
func TestStoreProgressMarksCachedCells(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Int64
	if err := storeRunner(t, dir, 1).Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	warm := storeRunner(t, dir, 1)
	cached := 0
	warm.OnProgress = func(p Progress) {
		if p.Cached {
			cached++
		}
	}
	if err := warm.Run(context.Background(), countingSpec(&ran)); err != nil {
		t.Fatal(err)
	}
	if cached != 12 {
		t.Fatalf("progress marked %d cells cached, want 12", cached)
	}
}

func TestKeyFields(t *testing.T) {
	for key, want := range map[string]map[string]any{
		"fig5/LEX/N32/256B": {
			"family": "fig5", "scheduler": "LEX", "n": 32, "bytes": 256,
		},
		"topology/stencil2d/torus2d/GS/N256": {
			"family": "topology", "workload": "stencil2d", "topology": "torus2d",
			"scheduler": "GS", "n": 256,
		},
		"table11/LS/10%/256B": {
			"family": "table11", "scheduler": "LS", "density_pct": 10, "bytes": 256,
		},
		"ablation-async/LEX-async/0B": {
			"family": "ablation-async", "scheduler": "LEX", "variant": "LEX-async", "bytes": 0,
		},
	} {
		got := KeyFields(key)
		for k, v := range want {
			if fmt.Sprint(got[k]) != fmt.Sprint(v) {
				t.Errorf("KeyFields(%q)[%s] = %v, want %v (all: %v)", key, k, got[k], v, got)
			}
		}
	}
}
