package exp

import (
	"regexp"
	"strconv"
	"strings"
	"sync"

	"repro/cm5"
	"repro/internal/pattern"
	"repro/internal/trace"
)

// Cell keys are structured paths — "topology/stencil2d/torus2d/GS/N256",
// "fig5/LEX/N32/256B" — whose segments name the axes of the sweep.
// KeyFields parses them back out so the result store can address each
// record by (experiment family, workload, scheduler, topology, machine
// size, message size) rather than by an opaque string, which is what
// makes cmexp -invalidate and expdiff's per-axis reporting possible.

var (
	axisOnce      sync.Once
	algNames      map[string]bool
	workloadNames map[string]bool
	topoNames     map[string]bool
	faultNames    map[string]bool
	appNames      map[string]bool
)

func axisSets() (algs, workloads, topos, faults, traceApps map[string]bool) {
	axisOnce.Do(func() {
		algNames = map[string]bool{}
		for _, a := range cm5.Algorithms() {
			algNames[a.Name()] = true
		}
		workloadNames = map[string]bool{}
		for _, w := range pattern.Workloads() {
			workloadNames[w.Name] = true
		}
		topoNames = map[string]bool{}
		for _, n := range TopologyNames {
			topoNames[n] = true
		}
		faultNames = map[string]bool{}
		for _, n := range cm5.FaultProfiles() {
			faultNames[n] = true
		}
		appNames = map[string]bool{}
		for _, n := range trace.Apps() {
			appNames[n] = true
		}
	})
	return algNames, workloadNames, topoNames, faultNames, appNames
}

var (
	sizeSeg    = regexp.MustCompile(`^[NP](\d+)$`)
	bytesSeg   = regexp.MustCompile(`^(\d+)B$`)
	densitySeg = regexp.MustCompile(`^(\d+)%$`)
)

// KeyFields derives the named axes of a cell key: "family" (the first
// segment), and — where the key encodes them — "n" (machine size),
// "bytes", "density_pct", "workload", "scheduler", "topology",
// "fault_profile", and "app" (a recorded-trace application). The
// fields are redundant with the key itself, so callers may fold them
// into a content hash freely.
func KeyFields(key string) map[string]any {
	algs, workloads, topos, faults, traceApps := axisSets()
	fields := map[string]any{}
	for i, seg := range strings.Split(key, "/") {
		if i == 0 {
			fields["family"] = seg
			continue
		}
		switch {
		case sizeSeg.MatchString(seg):
			n, _ := strconv.Atoi(sizeSeg.FindStringSubmatch(seg)[1])
			fields["n"] = n
		case bytesSeg.MatchString(seg):
			b, _ := strconv.Atoi(bytesSeg.FindStringSubmatch(seg)[1])
			fields["bytes"] = b
		case densitySeg.MatchString(seg):
			d, _ := strconv.Atoi(densitySeg.FindStringSubmatch(seg)[1])
			fields["density_pct"] = d
		case topos[seg]:
			fields["topology"] = seg
		case faults[seg]:
			fields["fault_profile"] = seg
		case traceApps[seg]:
			fields["app"] = seg
		case workloads[seg]:
			fields["workload"] = seg
		case algs[seg]:
			fields["scheduler"] = seg
		default:
			// Ablation variants name the algorithm with a suffix, e.g.
			// "LEX-async" or "PEX-flat".
			if base, _, ok := strings.Cut(seg, "-"); ok && algs[base] {
				fields["scheduler"] = base
				fields["variant"] = seg
			}
		}
	}
	return fields
}
