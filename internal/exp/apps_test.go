package exp

import (
	"context"
	"fmt"
	"regexp"
	"testing"

	"repro/internal/network"
	"repro/internal/store"
	"repro/internal/trace"
)

func TestAppsDeterministicAcrossPoolWidths(t *testing.T) {
	cfg := network.DefaultConfig()
	filter := ""
	if testing.Short() {
		filter = "/P8$"
	}
	// Each build gets its own memo-only library: determinism must not
	// depend on two runs sharing recordings.
	build := func() []*TableSpec {
		specs, err := AppsSpecs(cfg, trace.NewLibrary(nil))
		if err != nil {
			t.Fatal(err)
		}
		return specs
	}
	serial := renderWith(t, 1, filter, build)
	wide := renderWith(t, 8, filter, build)
	if serial != wide {
		t.Fatal("apps tables differ between 1 and 8 workers")
	}
	if serial == "" {
		t.Fatal("empty render")
	}
}

func TestAppsCoverage(t *testing.T) {
	specs, err := AppsSpecs(network.DefaultConfig(), trace.NewLibrary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(AppsProcs)+1 {
		t.Fatalf("%d table specs, want one per processor count plus stats", len(specs))
	}
	apps := len(trace.Apps())
	for i, n := range AppsProcs {
		spec := specs[i]
		if spec.Name != "apps" {
			t.Fatalf("spec %d name %q", i, spec.Name)
		}
		want := apps * len(AppsTopologies) * len(AppsSchedulers)
		if len(spec.Cells) != want {
			t.Fatalf("P=%d: %d cells, want %d", n, len(spec.Cells), want)
		}
	}
	stats := specs[len(specs)-1]
	if stats.Name != "apps-stats" {
		t.Fatalf("last spec name %q, want apps-stats", stats.Name)
	}
	if len(stats.Cells) != apps*len(AppsProcs) {
		t.Fatalf("stats: %d cells, want %d", len(stats.Cells), apps*len(AppsProcs))
	}
	found := false
	for _, name := range FamilyNames() {
		if name == "apps" {
			found = true
		}
	}
	if !found {
		t.Fatalf("apps missing from FamilyNames %v", FamilyNames())
	}
	// Every cell carries its trace's input hash and the format version,
	// so cells replaying different recordings can never collide in the
	// store — and a format bump invalidates them all.
	for _, spec := range specs {
		for _, c := range spec.Cells {
			if c.Spec["trace"] == nil || c.Spec["trace"] == "" {
				t.Fatalf("cell %s has no trace hash in its spec", c.Key)
			}
			if c.Spec["trace_version"] != trace.TraceVersion {
				t.Fatalf("cell %s does not pin the trace version", c.Key)
			}
		}
	}
}

func TestAppsKeyFields(t *testing.T) {
	got := KeyFields("apps/cg/hypercube/BS/P16")
	for k, v := range map[string]any{
		"family": "apps", "app": "cg", "topology": "hypercube",
		"scheduler": "BS", "n": 16,
	} {
		if fmt.Sprint(got[k]) != fmt.Sprint(v) {
			t.Errorf("KeyFields[%s] = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

// TestAppsStoreReplay: the apps family honors the cache contract — a
// warm store replays every cell without touching the applications,
// byte-identically — and the recordings themselves persist as
// family-"trace" store records, so the warm sweep's library loads them
// instead of re-running CG/FFT/Euler.
func TestAppsStoreReplay(t *testing.T) {
	cfg := network.DefaultConfig()
	filter := regexp.MustCompile("/P8$")
	dir := t.TempDir()

	cold := storeRunner(t, dir, 4)
	cold.Filter = filter
	coldLib := trace.NewLibrary(cold.Store)
	coldSpecs, err := AppsSpecs(cfg, coldLib)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Run(context.Background(), coldSpecs...); err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits() != 0 {
		t.Fatalf("cold run hit the cache %d times", cold.CacheHits())
	}

	apps := len(trace.Apps())
	recs, err := cold.Store.All()
	if err != nil {
		t.Fatal(err)
	}
	traces := 0
	for _, rec := range recs {
		if rec.Family == "trace" {
			traces++
		}
	}
	if traces != apps { // one recording per app at P=8
		t.Fatalf("store holds %d trace records after the cold run, want %d", traces, apps)
	}

	warm := storeRunner(t, dir, 4)
	warm.Filter = filter
	warmLib := trace.NewLibrary(warm.Store)
	warmSpecs, err := AppsSpecs(cfg, warmLib)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Run(context.Background(), warmSpecs...); err != nil {
		t.Fatal(err)
	}
	wantCells := apps*len(AppsTopologies)*len(AppsSchedulers) + apps // P8 table + P8 stats rows
	if warm.CacheHits() != wantCells {
		t.Fatalf("warm run hit %d cells, want all %d", warm.CacheHits(), wantCells)
	}
	for i := range coldSpecs {
		if coldSpecs[i].Table.Render() != warmSpecs[i].Table.Render() {
			t.Fatalf("warm replay of table %d is not byte-identical to the cold run", i)
		}
	}
}

// TestAppsTracesAddressTheStore: two cells identical in every
// key-derived axis but replaying different recordings (a different
// trace hash, or the same trace under a bumped format version) must
// hash to different store addresses.
func TestAppsTracesAddressTheStore(t *testing.T) {
	base := StoreBase(network.DefaultConfig())
	hash := func(extra store.Spec) string {
		s := store.Spec{}
		for k, v := range base {
			s[k] = v
		}
		for k, v := range KeyFields("apps/cg/hypercube/BS/P16") {
			s[k] = v
		}
		for k, v := range extra {
			s[k] = v
		}
		h, err := store.HashSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a := hash(store.Spec{"trace": "aaaa", "trace_version": trace.TraceVersion})
	b := hash(store.Spec{"trace": "bbbb", "trace_version": trace.TraceVersion})
	v := hash(store.Spec{"trace": "aaaa", "trace_version": trace.TraceVersion + 1})
	if a == b {
		t.Fatal("different trace hashes address the same store record")
	}
	if a == v {
		t.Fatal("a trace-version bump does not change the store address")
	}
}
