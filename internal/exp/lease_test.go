package exp

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

func leasedRunner(t *testing.T, dir, owner string, workers int) *Runner {
	t.Helper()
	r := storeRunner(t, dir, workers)
	r.Metrics = obs.NewRegistry()
	r.Lease = &LeaseConfig{Owner: owner, TTL: time.Minute, Poll: time.Millisecond}
	return r
}

// cellHash computes the content hash a leased runner claims for one
// cell — the same spec assembly runCellLeased uses.
func cellHash(t *testing.T, r *Runner, spec *TableSpec, i int) string {
	t.Helper()
	bc := boundCell{spec: spec, cell: spec.Cells[i]}
	h, err := store.HashSpec(r.cellSpec(bc, CellSeed(bc.cell.Key)^r.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestLeasedWorkersPartitionSweep runs two leased workers concurrently
// over one shared backend: every cell must be simulated exactly once
// across the fleet, both workers must render complete tables, and both
// renders must be byte-identical to a storeless single-process run —
// the determinism contract distribution must not break.
func TestLeasedWorkersPartitionSweep(t *testing.T) {
	var baseRan atomic.Int64
	baseline, err := NewRunner(2).RunTable(context.Background(), countingSpec(&baseRan))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var ran atomic.Int64
	w1 := leasedRunner(t, dir, "w1", 2)
	w2 := leasedRunner(t, dir, "w2", 2)
	spec1, spec2 := countingSpec(&ran), countingSpec(&ran)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, pair := range []struct {
		r    *Runner
		spec *TableSpec
	}{{w1, spec1}, {w2, spec2}} {
		wg.Add(1)
		go func(i int, r *Runner, spec *TableSpec) {
			defer wg.Done()
			errs[i] = r.Run(context.Background(), spec)
		}(i, pair.r, pair.spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}

	// The lease protocol guarantees each cell simulates once: a worker
	// only simulates under an acquired lease, and re-checks the store
	// after acquiring.
	if ran.Load() != 12 {
		t.Fatalf("fleet executed %d cell functions, want exactly 12 (each cell once)", ran.Load())
	}
	for _, w := range []*Runner{w1, w2} {
		if w.CacheHits()+w.CacheMisses() != 12 {
			t.Fatalf("worker resolved %d+%d cells, want 12 total", w.CacheHits(), w.CacheMisses())
		}
	}
	if w1.CacheMisses()+w2.CacheMisses() != 12 {
		t.Fatalf("fleet simulated %d+%d cells, want 12 across both workers",
			w1.CacheMisses(), w2.CacheMisses())
	}
	if got := spec1.Table.Render(); got != baseline.Render() {
		t.Fatalf("worker 1 table differs from storeless baseline:\n%s\nvs\n%s", got, baseline.Render())
	}
	if got := spec2.Table.Render(); got != baseline.Render() {
		t.Fatalf("worker 2 table differs from storeless baseline:\n%s\nvs\n%s", got, baseline.Render())
	}
}

// TestLeaseExpiryWorkStealing pins the crash-recovery path: a cell
// whose lease belongs to a dead worker is stolen once the lease
// expires, the sweep completes, and the steal is counted.
func TestLeaseExpiryWorkStealing(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Int64
	r := leasedRunner(t, dir, "survivor", 2)
	spec := countingSpec(&ran)

	// A "worker" that claimed the first cell and died: its lease is
	// real, but no record will ever appear under it.
	dead := cellHash(t, r, spec, 0)
	if cl, err := r.Store.Claim(dead, "dead-worker", time.Millisecond); err != nil || !cl.Acquired {
		t.Fatalf("seed claim = %+v err=%v", cl, err)
	}
	time.Sleep(5 * time.Millisecond)

	tab, err := r.RunTable(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Fatalf("executed %d cells, want 12 (the orphaned cell must be stolen and run)", ran.Load())
	}
	if stolen := r.Metrics.Counter("exp_cells_stolen_total").Value(); stolen != 1 {
		t.Fatalf("exp_cells_stolen_total = %v, want 1", stolen)
	}
	if claimed := r.Metrics.Counter("exp_cells_claimed_total").Value(); claimed != 12 {
		t.Fatalf("exp_cells_claimed_total = %v, want 12", claimed)
	}

	var baseRan atomic.Int64
	baseline, err := NewRunner(1).RunTable(context.Background(), countingSpec(&baseRan))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Render() != baseline.Render() {
		t.Fatalf("post-steal table differs from baseline:\n%s\nvs\n%s", tab.Render(), baseline.Render())
	}
}

// TestLeasedDeferralReplaysLiveHoldersResult covers the other half of
// contention: a cell leased by a live worker is deferred, not stolen,
// and completes here by replaying the holder's result the moment it
// lands in the store.
func TestLeasedDeferralReplaysLiveHoldersResult(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Int64
	r := leasedRunner(t, dir, "waiter", 2)
	spec := countingSpec(&ran)

	// A live holder: long TTL, so the lease can never be stolen during
	// the test. The holder "finishes" 30ms in by persisting its result.
	held := cellHash(t, r, spec, 0)
	if cl, err := r.Store.Claim(held, "live-holder", time.Hour); err != nil || !cl.Acquired {
		t.Fatalf("seed claim = %+v err=%v", cl, err)
	}
	bc := boundCell{spec: spec, cell: spec.Cells[0]}
	go func() {
		time.Sleep(30 * time.Millisecond)
		// The exact record the holder's simulateCell would Put for
		// counting/alg0/N0 (see countingSpec).
		r.Store.Put(&store.Record{
			Hash:   held,
			Family: spec.Name,
			Cell:   bc.cell.Key,
			Spec:   r.cellSpec(bc, CellSeed(bc.cell.Key)^r.Seed),
			Writes: []store.Write{{Row: 0, Col: 0, Val: "0.0"}},
			Values: map[string]float64{"v": 0},
		})
	}()

	tab, err := r.RunTable(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 11 {
		t.Fatalf("executed %d cells, want 11 (the held cell must be replayed, never run here)", ran.Load())
	}
	if r.Metrics.Counter("exp_cells_deferred_total").Value() < 1 {
		t.Fatal("the held cell was never deferred")
	}
	if r.Metrics.Counter("exp_cells_stolen_total").Value() != 0 {
		t.Fatal("a live lease was stolen")
	}
	if got := tab.Cells[0][0]; got != "0.0" {
		t.Fatalf("held cell rendered %q, want the holder's 0.0", got)
	}
}
