package exp

import (
	"context"
	"fmt"

	"repro/cm5"
	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
)

// The scenario and collective experiment families go beyond the paper's
// evaluation: the workload catalogue of internal/pattern swept through
// all four irregular schedulers, and every collective operation run both
// as a direct CMMD node program and as a scheduled communication matrix.

// ScenarioSizes are the machine sizes of the scenario catalogue sweep.
var ScenarioSizes = []int{16, 64, 256}

// ScenarioBytes is the per-message size of the scenario sweep.
const ScenarioBytes = 256

// scenarioSeed fixes each (workload, machine size) pattern so the tables
// are canonical; only the stochastic generators consume it.
func scenarioSeed(n int) int64 { return int64(n) }

// Scenarios runs the scenario catalogue sweep serially.
func Scenarios(cfg network.Config) (*Table, error) { return runSpec(ScenariosSpec(cfg)) }

// ScenariosSpec builds the scenario sweep: every catalogue workload
// scheduled with each of LS/PS/BS/GS at every scenario machine size,
// one cell per (workload, size, algorithm).
func ScenariosSpec(cfg network.Config) *TableSpec {
	workloads := pattern.Workloads()
	rows := make([]string, len(workloads))
	for i, w := range workloads {
		rows[i] = w.Name
	}
	var cols []string
	for _, n := range ScenarioSizes {
		for _, alg := range IrregularAlgs {
			cols = append(cols, fmt.Sprintf("%s@N%d", alg, n))
		}
	}
	t := NewTable(fmt.Sprintf("Scenarios: catalogue workloads x irregular schedulers, %d B messages (ms)",
		ScenarioBytes), rows, cols)
	spec := &TableSpec{Name: "scenarios", Table: t}
	for r, w := range workloads {
		c := 0
		for _, n := range ScenarioSizes {
			for _, alg := range IrregularAlgs {
				w, col, n, alg := w, c, n, alg
				spec.AddCell(fmt.Sprintf("scenarios/%s/%s/N%d", w.Name, alg, n),
					func(ctx context.Context, _ int64, rec *Rec) error {
						p := w.Gen(n, ScenarioBytes, scenarioSeed(n))
						a, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.PatternJob(a, p, cm5.WithConfig(cfg)))
						if err != nil {
							return err
						}
						rec.Set(r, col, "%.3f", res.Elapsed.Millis())
						return nil
					})
				c++
			}
		}
	}
	t.Note = "Expected shape: LS collapses on hotspot (funnel serialization) and degrades with " +
		"density; GS stays at or near the best time everywhere; the permutation workloads need " +
		"only a handful of steps under the pairwise schedulers."
	return spec
}

// ScenarioStatsSize is the machine size of the per-pattern statistics
// table.
const ScenarioStatsSize = 64

// ScenarioStats runs the per-workload statistics table serially.
func ScenarioStats(cfg network.Config) (*Table, error) { return runSpec(ScenarioStatsSpec(cfg)) }

// ScenarioStatsSpec builds the per-pattern statistics table of the
// catalogue at ScenarioStatsSize nodes: message count, density, sizes,
// fan-in, shape symmetry, and the greedy schedule's step count.
func ScenarioStatsSpec(cfg network.Config) *TableSpec {
	workloads := pattern.Workloads()
	rows := make([]string, len(workloads))
	for i, w := range workloads {
		rows[i] = w.Name
	}
	cols := []string{"msgs", "density %", "avg B", "max B", "fan-in", "symmetric", "GS steps"}
	t := NewTable(fmt.Sprintf("Scenario patterns at N=%d, %d B messages", ScenarioStatsSize, ScenarioBytes),
		rows, cols)
	spec := &TableSpec{Name: "scenario-stats", Table: t}
	for r, w := range workloads {
		r, w := r, w
		spec.AddCell(fmt.Sprintf("scenario-stats/%s", w.Name),
			func(ctx context.Context, _ int64, rec *Rec) error {
				p := w.Gen(ScenarioStatsSize, ScenarioBytes, scenarioSeed(ScenarioStatsSize))
				st := p.Stats()
				s, err := cm5.Plan(cm5.PatternJob(cm5.MustAlgorithm("GS"), p))
				if err != nil {
					return err
				}
				rec.Set(r, 0, "%d", st.Messages)
				rec.Set(r, 1, "%.1f", st.DensityPct)
				rec.Set(r, 2, "%.0f", st.AvgBytes)
				rec.Set(r, 3, "%d", st.MaxBytes)
				rec.Set(r, 4, "%d", st.MaxFanIn)
				rec.Set(r, 5, "%v", st.Symmetric)
				rec.Set(r, 6, "%d", s.NumSteps())
				return nil
			})
	}
	t.Note = "fan-in bounds rendezvous serialization (n-1 for hotspot, 1 for permutations); " +
		"GS steps lower-bounded by both fan-in and the densest node's degree."
	return spec
}

// CollectiveSizes is the machine-size scaling sweep of the collectives
// family; the dense collectives (allgather, transpose) stop at
// CollectiveDenseMax because their N^2 traffic is host-expensive to
// simulate beyond it.
var CollectiveSizes = []int{16, 64, 256, 1024}

// CollectiveDenseMax caps the dense collectives' sweep.
const CollectiveDenseMax = 256

// CollectiveBytes is the per-block size of the collectives sweep.
const CollectiveBytes = 256

// denseCollectives move Theta(N^2) messages.
var denseCollectives = map[string]bool{"allgather": true, "transpose": true}

// Collectives runs the collectives scaling sweep serially.
func Collectives(cfg network.Config) (*Table, error) { return runSpec(CollectivesSpec(cfg)) }

// CollectivesSpec builds the collectives sweep: every collective run
// both as a direct CMMD node program and as its traffic matrix scheduled
// with BS (the balanced pairing handles arbitrary matrices in O(N^2)
// build time), across the scaling sizes. One cell per
// (collective, size, form).
func CollectivesSpec(cfg network.Config) *TableSpec {
	names := cmmd.CollectiveNames()
	var cols []string
	for _, n := range CollectiveSizes {
		cols = append(cols, fmt.Sprintf("CMMD@N%d", n), fmt.Sprintf("BS@N%d", n))
	}
	t := NewTable(fmt.Sprintf("Collectives: direct CMMD program vs BS-scheduled matrix, %d B blocks (ms)",
		CollectiveBytes), names, cols)
	spec := &TableSpec{Name: "collectives", Table: t}
	for r, name := range names {
		for ci, n := range CollectiveSizes {
			if denseCollectives[name] && n > CollectiveDenseMax {
				t.Set(r, 2*ci, "-")
				t.Set(r, 2*ci+1, "-")
				continue
			}
			r, name, n, ci := r, name, n, ci
			spec.AddCell(fmt.Sprintf("collectives/%s/N%d/cmmd", name, n),
				func(ctx context.Context, _ int64, rec *Rec) error {
					a, err := cm5.LookupAlgorithm(name)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.NewJob(a, n, CollectiveBytes, cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.Set(r, 2*ci, "%.3f", res.Elapsed.Millis())
					return nil
				})
			spec.AddCell(fmt.Sprintf("collectives/%s/N%d/sched", name, n),
				func(ctx context.Context, _ int64, rec *Rec) error {
					p, err := cmmd.CollectivePattern(name, n, CollectiveBytes)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.PatternJob(cm5.MustAlgorithm("BS"), p, cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.Set(r, 2*ci+1, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	t.Note = fmt.Sprintf("Dense collectives (allgather, transpose) stop at N=%d: their Theta(N^2) "+
		"traffic is host-expensive beyond it. CMMD programs use the natural algorithm (ring, "+
		"binomial tree, butterfly); BS schedules the collective's direct-delivery matrix, so for "+
		"forwarding algorithms like the ring allgather the two columns compare different wire "+
		"traffic for the same logical operation.", CollectiveDenseMax)
	return spec
}
