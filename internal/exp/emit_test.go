package exp

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func emitDemoTables() []*Table {
	a := NewTable("A", []string{"r1", "r2"}, []string{"x", "y"})
	a.Set(0, 0, "%d", 1)
	a.Set(0, 1, "%.3f", 2.5)
	a.Set(1, 0, "%s", "has,comma")
	a.Note = "note"
	b := NewTable("B", []string{"only"}, []string{"z"})
	b.Set(0, 0, "%s", "v")
	return []*Table{a, b}
}

func TestWriteTablesText(t *testing.T) {
	var sb strings.Builder
	if err := WriteTables(&sb, FormatText, emitDemoTables()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"A\n=", "B\n=", "2.500", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text emit missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTablesJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteTables(&sb, FormatJSON, emitDemoTables()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Tables []struct {
			Title   string     `json:"title"`
			Note    string     `json:"note"`
			Rows    []string   `json:"rows"`
			Columns []string   `json:"columns"`
			Cells   [][]string `json:"cells"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("JSON emit invalid: %v\n%s", err, sb.String())
	}
	if doc.Schema != TablesSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, TablesSchema)
	}
	if len(doc.Tables) != 2 || doc.Tables[0].Title != "A" || doc.Tables[1].Title != "B" {
		t.Fatalf("tables = %+v", doc.Tables)
	}
	if doc.Tables[0].Cells[0][1] != "2.500" || doc.Tables[0].Note != "note" {
		t.Fatalf("table A content wrong: %+v", doc.Tables[0])
	}
}

func TestWriteTablesCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteTables(&sb, FormatCSV, emitDemoTables()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV emit invalid: %v\n%s", err, sb.String())
	}
	// header + 2x2 cells of A + 1 cell of B
	if len(recs) != 1+4+1 {
		t.Fatalf("%d CSV records, want 6:\n%s", len(recs), sb.String())
	}
	if got := strings.Join(recs[0], "|"); got != "table|row|column|value" {
		t.Fatalf("header = %q", got)
	}
	if got := recs[3]; got[0] != "A" || got[1] != "r2" || got[2] != "x" || got[3] != "has,comma" {
		t.Fatalf("comma-bearing cell mangled: %v", got)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"text": FormatText, "JSON": FormatJSON, "csv": FormatCSV,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat should reject unknown formats")
	}
}
