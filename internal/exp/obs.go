package exp

import (
	"context"
	"path/filepath"
	"strings"

	"repro/cm5"
	"repro/internal/obs"
)

// runJob runs one cell's cm5 job with the sweep's observability sinks
// attached from ctx: the per-cell timeline recorder (Runner.TimelineDir
// / `cmexp -timeline`) and the sweep-wide metrics registry
// (Runner.Metrics / the serving layer's /v1/metrics). Every cell
// function routes its simulations through here, so observability
// threads the whole experiment catalogue without any family knowing
// about it. With neither sink in ctx this is exactly cm5.Run.
func runJob(ctx context.Context, job cm5.Job) (cm5.Result, error) {
	if tl := obs.TimelineFrom(ctx); tl != nil {
		job = job.With(cm5.WithTimeline(tl))
	}
	if reg := obs.RegistryFrom(ctx); reg != nil {
		job = job.With(cm5.WithMetrics(reg))
	}
	return cm5.Run(job)
}

// timelinePath maps a cell key to its timeline file: slashes flatten to
// underscores ("fig5/LEX/N32/256B" -> "fig5_LEX_N32_256B.trace.json"),
// keeping one flat directory of Perfetto-loadable files.
func timelinePath(dir, key string) string {
	return filepath.Join(dir, strings.ReplaceAll(key, "/", "_")+".trace.json")
}
