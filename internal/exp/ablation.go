package exp

import (
	"context"
	"fmt"

	"repro/cm5"
	"repro/internal/network"
	"repro/internal/pattern"
)

// AblationAsync quantifies the paper's Section 3.1 remark: how much of
// LEX's collapse is the synchronous-send constraint? It reruns LEX and
// PEX on 32 nodes with buffered (non-blocking) sends alongside the real
// CMMD synchronous semantics.
func AblationAsync(cfg network.Config) (*Table, error) { return runSpec(AblationAsyncSpec(cfg)) }

// AblationAsyncSpec builds the ablation as one cell per
// (algorithm, send mode, message size).
func AblationAsyncSpec(cfg network.Config) *TableSpec {
	sizes := []int{0, 256, 1024, 2048}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	cols := []string{"LEX sync", "LEX async", "PEX sync", "PEX async"}
	t := NewTable("Ablation: synchronous vs buffered sends on 32 nodes (ms)", rows, cols)
	spec := &TableSpec{Name: "ablation-async", Table: t}
	variants := []struct {
		alg   string
		async bool
	}{{"LEX", false}, {"LEX", true}, {"PEX", false}, {"PEX", true}}
	for r, size := range sizes {
		for c, v := range variants {
			mode := "sync"
			if v.async {
				mode = "async"
			}
			spec.AddCell(fmt.Sprintf("ablation-async/%s-%s/%dB", v.alg, mode, size),
				func(ctx context.Context, _ int64, rec *Rec) error {
					a, err := cm5.LookupAlgorithm(v.alg)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.NewJob(a, 32, size,
						cm5.WithConfig(cfg), cm5.WithAsync(v.async)))
					if err != nil {
						return err
					}
					rec.Set(r, c, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	t.Note = "Buffered sends recover much of LEX's loss (its funnel still serializes at the\n" +
		"receiver) and help PEX little — scheduling matters even with better primitives."
	return spec
}

// FlatTreeConfig returns a hypothetical machine whose fat tree does not
// thin toward the root: every cluster uplink matches the full node
// bandwidth. BEX's advantage over PEX should vanish on it.
func FlatTreeConfig() network.Config {
	cfg := network.DefaultConfig()
	cfg.Cluster4UpRate = 4 * cfg.NodeLinkRate
	cfg.ThinRatePerNode = cfg.NodeLinkRate
	return cfg
}

// AblationFatTree compares PEX and BEX on the real thinned fat tree and
// on a hypothetical full-bandwidth tree: the balanced schedule's win is
// a property of the thinning, not of the pairing order itself.
func AblationFatTree(cfg network.Config) (*Table, error) { return runSpec(AblationFatTreeSpec(cfg)) }

// AblationFatTreeSpec builds the ablation as one cell per
// (algorithm, tree, message size); the gain columns derive from the
// measurement cells in the Finish hook.
func AblationFatTreeSpec(cfg network.Config) *TableSpec {
	sizes := []int{512, 1024, 2048}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	cols := []string{"PEX thin", "BEX thin", "gain %", "PEX flat", "BEX flat", "gain %"}
	t := NewTable("Ablation: BEX's advantage vs fat-tree thinning, 32 nodes (ms)", rows, cols)
	spec := &TableSpec{Name: "ablation-fattree", Table: t}
	flat := FlatTreeConfig()

	variants := []struct {
		alg  string
		cfg  network.Config
		tree string
		col  int
	}{
		{"PEX", cfg, "thin", 0}, {"BEX", cfg, "thin", 1},
		{"PEX", flat, "flat", 3}, {"BEX", flat, "flat", 4},
	}
	for r, size := range sizes {
		for _, v := range variants {
			spec.AddCell(fmt.Sprintf("ablation-fattree/%s-%s/%dB", v.alg, v.tree, size),
				func(ctx context.Context, _ int64, rec *Rec) error {
					a, err := cm5.LookupAlgorithm(v.alg)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.NewJob(a, 32, size, cm5.WithConfig(v.cfg)))
					if err != nil {
						return err
					}
					rec.PutFloat("secs", res.Elapsed.Seconds())
					rec.Set(r, v.col, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	spec.Finish = func() error {
		secs := func(alg, tree string, size int) float64 {
			return spec.CellFloat(fmt.Sprintf("ablation-fattree/%s-%s/%dB", alg, tree, size), "secs")
		}
		for r, size := range sizes {
			t.Set(r, 2, "%.1f", 100*(1-secs("BEX", "thin", size)/secs("PEX", "thin", size)))
			t.Set(r, 5, "%.1f", 100*(1-secs("BEX", "flat", size)/secs("PEX", "flat", size)))
		}
		return nil
	}
	t.Note = "gain % = BEX improvement over PEX. On the flat tree the schedules tie."
	return spec
}

// AblationGreedy compares the deterministic next-available greedy
// scheduler with randomized tie-breaking across densities: step counts
// and simulated times.
func AblationGreedy(cfg network.Config) (*Table, error) { return runSpec(AblationGreedySpec(cfg)) }

// AblationGreedySpec builds the ablation as one cell per
// (density, deterministic|randomized). The best-of-5 randomized scan
// stays inside one cell so its fixed seed sequence is preserved.
func AblationGreedySpec(cfg network.Config) *TableSpec {
	densities := []int{10, 25, 50, 75, 90}
	rows := make([]string, len(densities))
	for i, d := range densities {
		rows[i] = fmt.Sprintf("%d%%", d)
	}
	cols := []string{"GS steps", "GS ms", "GS-rand steps", "GS-rand ms (best of 5)"}
	t := NewTable("Ablation: greedy tie-breaking on 32 processors, 256 B (ms)", rows, cols)
	spec := &TableSpec{Name: "ablation-greedy", Table: t}
	for r, density := range densities {
		spec.AddCell(fmt.Sprintf("ablation-greedy/det/%d%%", density),
			func(ctx context.Context, _ int64, rec *Rec) error {
				p := pattern.Synthetic(32, float64(density)/100, 256, int64(density))
				res, err := runJob(ctx, cm5.PatternJob(cm5.MustAlgorithm("GS"), p, cm5.WithConfig(cfg)))
				if err != nil {
					return err
				}
				rec.Set(r, 0, "%d", res.Steps)
				rec.Set(r, 1, "%.3f", res.Elapsed.Millis())
				return nil
			})
		randKey := fmt.Sprintf("ablation-greedy/rand/%d%%", density)
		spec.AddCell(randKey,
			func(ctx context.Context, cellSeed int64, rec *Rec) error {
				p := pattern.Synthetic(32, float64(density)/100, 256, int64(density))
				// base is 0 under the canonical Runner.Seed of 0 (the
				// runner hands the cell CellSeed(key) exactly), keeping
				// the published table's 0..4 scan; cmexp -seed shifts it.
				base := cellSeed ^ CellSeed(randKey)
				gsr := cm5.MustAlgorithm("GSR")
				bestSteps, bestMs := 0, -1.0
				for trial := int64(0); trial < 5; trial++ {
					res, err := runJob(ctx, cm5.PatternJob(gsr, p,
						cm5.WithConfig(cfg), cm5.WithSeed(base^trial)))
					if err != nil {
						return err
					}
					if bestMs < 0 || res.Elapsed.Millis() < bestMs {
						bestMs = res.Elapsed.Millis()
						bestSteps = res.Steps
					}
				}
				rec.Set(r, 2, "%d", bestSteps)
				rec.Set(r, 3, "%.3f", bestMs)
				return nil
			})
	}
	t.Note = "Randomized tie-breaking rarely beats the deterministic scan by much:\n" +
		"the step count is dominated by the busiest processor's degree."
	return spec
}

// AblationCrystal compares the paper's direct irregular schedulers with
// the crystal router — the hypercube store-and-forward baseline the
// paper cites (Fox et al. 1988) — across densities and message sizes.
func AblationCrystal(cfg network.Config) (*Table, error) { return runSpec(AblationCrystalSpec(cfg)) }

// AblationCrystalSpec builds the comparison as one cell per
// (case, scheduler); the "best" column derives in the Finish hook.
func AblationCrystalSpec(cfg network.Config) *TableSpec {
	type cse struct {
		density int
		size    int
	}
	cases := []cse{{10, 256}, {10, 1024}, {25, 256}, {25, 1024}, {50, 256}, {50, 1024}, {75, 256}}
	rows := make([]string, len(cases))
	for i, c := range cases {
		rows[i] = fmt.Sprintf("%d%%/%dB", c.density, c.size)
	}
	algs := []string{"GS", "BS", "Crystal"}
	cols := []string{"GS", "BS", "Crystal", "best"}
	t := NewTable("Extension: direct scheduling vs crystal router, 32 processors (ms)", rows, cols)
	spec := &TableSpec{Name: "ablation-crystal", Table: t}
	cellKey := func(alg string, c cse) string {
		return fmt.Sprintf("ablation-crystal/%s/%d%%/%dB", alg, c.density, c.size)
	}
	for r, c := range cases {
		for a, alg := range algs {
			spec.AddCell(cellKey(alg, c),
				func(ctx context.Context, _ int64, rec *Rec) error {
					p := pattern.Synthetic(32, float64(c.density)/100, c.size, int64(c.density+c.size))
					name := alg
					if alg == "Crystal" {
						name = "CRYSTAL"
					}
					algo, err := cm5.LookupAlgorithm(name)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.PatternJob(algo, p, cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.PutFloat("ms", res.Elapsed.Millis())
					rec.Set(r, a, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	spec.Finish = func() error {
		for r, c := range cases {
			best := 0
			for a := 1; a < len(algs); a++ {
				if spec.CellFloat(cellKey(algs[a], c), "ms") < spec.CellFloat(cellKey(algs[best], c), "ms") {
					best = a
				}
			}
			t.Set(r, 3, "%s", algs[best])
		}
		return nil
	}
	t.Note = "Store-and-forward routing wins only on dense patterns of small messages\n" +
		"(overhead amortization); the paper's direct schedules win everywhere else."
	return spec
}

// AblationCrossover sweeps pattern density finely to locate where the
// greedy scheduler loses to the fixed pairwise/balanced schedules — the
// paper places the crossover at 50%.
func AblationCrossover(cfg network.Config) (*Table, error) {
	return runSpec(AblationCrossoverSpec(cfg))
}

// AblationCrossoverSpec builds the sweep as one cell per
// (density, scheduler); the "best" column derives in the Finish hook.
func AblationCrossoverSpec(cfg network.Config) *TableSpec {
	densities := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	rows := make([]string, len(densities))
	for i, d := range densities {
		rows[i] = fmt.Sprintf("%d%%", d)
	}
	algs := []string{"PS", "BS", "GS"}
	cols := []string{"PS", "BS", "GS", "best"}
	t := NewTable("Ablation: GS-vs-BS density crossover, 32 processors, 256 B (ms)", rows, cols)
	spec := &TableSpec{Name: "ablation-crossover", Table: t}
	cellKey := func(alg string, density int) string {
		return fmt.Sprintf("ablation-crossover/%s/%d%%", alg, density)
	}
	for r, density := range densities {
		for a, alg := range algs {
			spec.AddCell(cellKey(alg, density),
				func(ctx context.Context, _ int64, rec *Rec) error {
					p := pattern.Synthetic(32, float64(density)/100, 256, int64(7000+density))
					algo, err := cm5.LookupAlgorithm(alg)
					if err != nil {
						return err
					}
					res, err := runJob(ctx, cm5.PatternJob(algo, p, cm5.WithConfig(cfg)))
					if err != nil {
						return err
					}
					rec.PutFloat("ms", res.Elapsed.Millis())
					rec.Set(r, a, "%.3f", res.Elapsed.Millis())
					return nil
				})
		}
	}
	spec.Finish = func() error {
		for r, density := range densities {
			best := 0
			for a := 1; a < len(algs); a++ {
				if spec.CellFloat(cellKey(algs[a], density), "ms") < spec.CellFloat(cellKey(algs[best], density), "ms") {
					best = a
				}
			}
			t.Set(r, 3, "%s", algs[best])
		}
		return nil
	}
	t.Note = "The paper's rule of thumb: greedy below ~50% density, balanced above."
	return spec
}
