package exp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// AblationAsync quantifies the paper's Section 3.1 remark: how much of
// LEX's collapse is the synchronous-send constraint? It reruns LEX and
// PEX on 32 nodes with buffered (non-blocking) sends alongside the real
// CMMD synchronous semantics.
func AblationAsync(cfg network.Config) (*Table, error) {
	sizes := []int{0, 256, 1024, 2048}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	cols := []string{"LEX sync", "LEX async", "PEX sync", "PEX async"}
	t := NewTable("Ablation: synchronous vs buffered sends on 32 nodes (ms)", rows, cols)
	for r, size := range sizes {
		for c, spec := range []struct {
			build func() *sched.Schedule
			async bool
		}{
			{func() *sched.Schedule { return sched.LEX(32, size) }, false},
			{func() *sched.Schedule { return sched.LEX(32, size) }, true},
			{func() *sched.Schedule { return sched.PEX(32, size) }, false},
			{func() *sched.Schedule { return sched.PEX(32, size) }, true},
		} {
			var d interface{ Millis() float64 }
			var err error
			if spec.async {
				d, err = sched.RunAsync(spec.build(), cfg)
			} else {
				d, err = sched.Run(spec.build(), cfg)
			}
			if err != nil {
				return nil, err
			}
			t.Set(r, c, "%.3f", d.Millis())
		}
	}
	t.Note = "Buffered sends recover much of LEX's loss (its funnel still serializes at the\n" +
		"receiver) and help PEX little — scheduling matters even with better primitives."
	return t, nil
}

// FlatTreeConfig returns a hypothetical machine whose fat tree does not
// thin toward the root: every cluster uplink matches the full node
// bandwidth. BEX's advantage over PEX should vanish on it.
func FlatTreeConfig() network.Config {
	cfg := network.DefaultConfig()
	cfg.Cluster4UpRate = 4 * cfg.NodeLinkRate
	cfg.ThinRatePerNode = cfg.NodeLinkRate
	return cfg
}

// AblationFatTree compares PEX and BEX on the real thinned fat tree and
// on a hypothetical full-bandwidth tree: the balanced schedule's win is
// a property of the thinning, not of the pairing order itself.
func AblationFatTree(cfg network.Config) (*Table, error) {
	sizes := []int{512, 1024, 2048}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d B", s)
	}
	cols := []string{"PEX thin", "BEX thin", "gain %", "PEX flat", "BEX flat", "gain %"}
	t := NewTable("Ablation: BEX's advantage vs fat-tree thinning, 32 nodes (ms)", rows, cols)
	flat := FlatTreeConfig()
	for r, size := range sizes {
		pexT, err := sched.Run(sched.PEX(32, size), cfg)
		if err != nil {
			return nil, err
		}
		bexT, err := sched.Run(sched.BEX(32, size), cfg)
		if err != nil {
			return nil, err
		}
		pexF, err := sched.Run(sched.PEX(32, size), flat)
		if err != nil {
			return nil, err
		}
		bexF, err := sched.Run(sched.BEX(32, size), flat)
		if err != nil {
			return nil, err
		}
		t.Set(r, 0, "%.3f", pexT.Millis())
		t.Set(r, 1, "%.3f", bexT.Millis())
		t.Set(r, 2, "%.1f", 100*(1-bexT.Seconds()/pexT.Seconds()))
		t.Set(r, 3, "%.3f", pexF.Millis())
		t.Set(r, 4, "%.3f", bexF.Millis())
		t.Set(r, 5, "%.1f", 100*(1-bexF.Seconds()/pexF.Seconds()))
	}
	t.Note = "gain % = BEX improvement over PEX. On the flat tree the schedules tie."
	return t, nil
}

// AblationGreedy compares the deterministic next-available greedy
// scheduler with randomized tie-breaking across densities: step counts
// and simulated times.
func AblationGreedy(cfg network.Config) (*Table, error) {
	densities := []int{10, 25, 50, 75, 90}
	rows := make([]string, len(densities))
	for i, d := range densities {
		rows[i] = fmt.Sprintf("%d%%", d)
	}
	cols := []string{"GS steps", "GS ms", "GS-rand steps", "GS-rand ms (best of 5)"}
	t := NewTable("Ablation: greedy tie-breaking on 32 processors, 256 B (ms)", rows, cols)
	for r, density := range densities {
		p := pattern.Synthetic(32, float64(density)/100, 256, int64(density))
		det := sched.GS(p)
		dDet, err := sched.Run(det, cfg)
		if err != nil {
			return nil, err
		}
		bestSteps, bestMs := 0, -1.0
		for seed := int64(0); seed < 5; seed++ {
			s := sched.GSWith(p, sched.GSOptions{RandomTieBreak: true, Seed: seed})
			d, err := sched.Run(s, cfg)
			if err != nil {
				return nil, err
			}
			if bestMs < 0 || d.Millis() < bestMs {
				bestMs = d.Millis()
				bestSteps = s.NumSteps()
			}
		}
		t.Set(r, 0, "%d", det.NumSteps())
		t.Set(r, 1, "%.3f", dDet.Millis())
		t.Set(r, 2, "%d", bestSteps)
		t.Set(r, 3, "%.3f", bestMs)
	}
	t.Note = "Randomized tie-breaking rarely beats the deterministic scan by much:\n" +
		"the step count is dominated by the busiest processor's degree."
	return t, nil
}

// AblationCrystal compares the paper's direct irregular schedulers with
// the crystal router — the hypercube store-and-forward baseline the
// paper cites (Fox et al. 1988) — across densities and message sizes.
func AblationCrystal(cfg network.Config) (*Table, error) {
	type cse struct {
		density int
		size    int
	}
	cases := []cse{{10, 256}, {10, 1024}, {25, 256}, {25, 1024}, {50, 256}, {50, 1024}, {75, 256}}
	rows := make([]string, len(cases))
	for i, c := range cases {
		rows[i] = fmt.Sprintf("%d%%/%dB", c.density, c.size)
	}
	cols := []string{"GS", "BS", "Crystal", "best"}
	t := NewTable("Extension: direct scheduling vs crystal router, 32 processors (ms)", rows, cols)
	for r, c := range cases {
		p := pattern.Synthetic(32, float64(c.density)/100, c.size, int64(c.density+c.size))
		gs, err := sched.Run(sched.GS(p), cfg)
		if err != nil {
			return nil, err
		}
		bs, err := sched.Run(sched.BS(p), cfg)
		if err != nil {
			return nil, err
		}
		cr, err := sched.RunCrystalRouter(p, cfg)
		if err != nil {
			return nil, err
		}
		times := map[string]float64{"GS": gs.Millis(), "BS": bs.Millis(), "Crystal": cr.Millis()}
		best := "GS"
		for _, alg := range []string{"BS", "Crystal"} {
			if times[alg] < times[best] {
				best = alg
			}
		}
		t.Set(r, 0, "%.3f", times["GS"])
		t.Set(r, 1, "%.3f", times["BS"])
		t.Set(r, 2, "%.3f", times["Crystal"])
		t.Set(r, 3, "%s", best)
	}
	t.Note = "Store-and-forward routing wins only on dense patterns of small messages\n" +
		"(overhead amortization); the paper's direct schedules win everywhere else."
	return t, nil
}

// AblationCrossover sweeps pattern density finely to locate where the
// greedy scheduler loses to the fixed pairwise/balanced schedules — the
// paper places the crossover at 50%.
func AblationCrossover(cfg network.Config) (*Table, error) {
	densities := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	rows := make([]string, len(densities))
	for i, d := range densities {
		rows[i] = fmt.Sprintf("%d%%", d)
	}
	cols := []string{"PS", "BS", "GS", "best"}
	t := NewTable("Ablation: GS-vs-BS density crossover, 32 processors, 256 B (ms)", rows, cols)
	for r, density := range densities {
		p := pattern.Synthetic(32, float64(density)/100, 256, int64(7000+density))
		times := map[string]float64{}
		for _, alg := range []string{"PS", "BS", "GS"} {
			s, err := sched.Irregular(alg, p)
			if err != nil {
				return nil, err
			}
			d, err := sched.Run(s, cfg)
			if err != nil {
				return nil, err
			}
			times[alg] = d.Millis()
		}
		best := "PS"
		for _, alg := range []string{"BS", "GS"} {
			if times[alg] < times[best] {
				best = alg
			}
		}
		t.Set(r, 0, "%.3f", times["PS"])
		t.Set(r, 1, "%.3f", times["BS"])
		t.Set(r, 2, "%.3f", times["GS"])
		t.Set(r, 3, "%s", best)
	}
	t.Note = "The paper's rule of thumb: greedy below ~50% density, balanced above."
	return t, nil
}
