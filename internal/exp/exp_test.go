package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/network"
)

func cell(t *testing.T, tab *Table, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Cells[r][c], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", r, c, tab.Cells[r][c], err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", []string{"r1", "r2"}, []string{"a", "b"})
	tab.Set(0, 0, "%d", 1)
	tab.Set(1, 1, "%.1f", 2.5)
	tab.Note = "note here"
	out := tab.Render()
	for _, want := range []string{"Demo", "r1", "r2", "a", "b", "1", "2.5", "note here"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: LEX PEX REX BEX. Rows ordered by Fig5MessageSizes.
	for r := range Fig5MessageSizes {
		lex, pex, bex := cell(t, tab, r, 0), cell(t, tab, r, 1), cell(t, tab, r, 3)
		if lex <= pex || lex <= bex {
			t.Fatalf("row %d: LEX %.3f must be worst (PEX %.3f, BEX %.3f)", r, lex, pex, bex)
		}
	}
	// Large-message ordering: BEX <= PEX < REX at 2048 B on 32 nodes.
	last := len(Fig5MessageSizes) - 1
	pex, rex, bex := cell(t, tab, last, 1), cell(t, tab, last, 2), cell(t, tab, last, 3)
	if !(bex <= pex && pex < rex) {
		t.Fatalf("2048B ordering: BEX %.3f <= PEX %.3f < REX %.3f violated", bex, pex, rex)
	}
}

func TestFig6ShapeZeroBytes(t *testing.T) {
	tab, err := Fig6(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns 0..2 are PEX/REX/BEX at 0B: REX must win at every machine
	// size (paper: only lg N rendezvous).
	for r := range MachineSizes {
		pex, rex, bex := cell(t, tab, r, 0), cell(t, tab, r, 1), cell(t, tab, r, 2)
		if rex >= pex || rex >= bex {
			t.Fatalf("N=%d at 0B: REX %.3f should beat PEX %.3f and BEX %.3f",
				MachineSizes[r], rex, pex, bex)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab, err := Fig10(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At 0 B the system broadcast crushes both data-network algorithms.
	if sys := cell(t, tab, 0, 2); sys >= cell(t, tab, 0, 1) {
		t.Fatalf("system broadcast should win at 0 B")
	}
	// At 8 KB REB wins.
	lastRow := len(Fig10Sizes) - 1
	if reb := cell(t, tab, lastRow, 1); reb >= cell(t, tab, lastRow, 2) {
		t.Fatalf("REB should win at 8 KB")
	}
	// LIB always worst.
	for r := range Fig10Sizes {
		if lib := cell(t, tab, r, 0); lib <= cell(t, tab, r, 1) {
			t.Fatalf("LIB should be worse than REB at row %d", r)
		}
	}
}

func TestTable11Shape(t *testing.T) {
	tab, err := Table11(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: LS, LS(paper), PS, PS(paper), BS, ..., GS at 2*3.
	lsRow, psRow, bsRow, gsRow := 0, 2, 4, 6
	cols := len(tab.ColHeaders)
	for c := 0; c < cols; c++ {
		ls := cell(t, tab, lsRow, c)
		for _, r := range []int{psRow, bsRow, gsRow} {
			if ls <= cell(t, tab, r, c) {
				t.Fatalf("col %s: LS %.3f must be worst", tab.ColHeaders[c], ls)
			}
		}
	}
	// GS best at 10% and 25% density (first four columns).
	for c := 0; c < 4; c++ {
		gs := cell(t, tab, gsRow, c)
		if gs >= cell(t, tab, psRow, c) || gs >= cell(t, tab, bsRow, c) {
			t.Fatalf("col %s: GS %.3f should beat PS/BS", tab.ColHeaders[c], gs)
		}
	}
	// At 75% density GS loses its lead (paper: BS best there).
	for c := 6; c < 8; c++ {
		gs := cell(t, tab, gsRow, c)
		bs := cell(t, tab, bsRow, c)
		if gs < bs {
			t.Fatalf("col %s: GS %.3f should not beat BS %.3f at 75%%", tab.ColHeaders[c], gs, bs)
		}
	}
}

func TestTable12Shape(t *testing.T) {
	tab, results, err := Table12(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperTable12) {
		t.Fatalf("%d results", len(results))
	}
	lsRow, gsRow := 0, 6
	for c := range PaperTable12 {
		ls, gs := cell(t, tab, lsRow, c), cell(t, tab, gsRow, c)
		if gs >= ls {
			t.Fatalf("col %s: GS %.3f should beat LS %.3f", tab.ColHeaders[c], gs, ls)
		}
	}
	for _, r := range results {
		// All real problems are under 50% density, the regime where the
		// paper's conclusion says GS wins.
		if r.DensityPct >= 50 {
			t.Fatalf("%s: density %.0f%% >= 50%%", r.Problem.Name, r.DensityPct)
		}
		for _, alg := range []string{"PS", "BS"} {
			if r.TimesMs["GS"] >= r.TimesMs[alg] {
				t.Fatalf("%s: GS %.3f should beat %s %.3f",
					r.Problem.Name, r.TimesMs["GS"], alg, r.TimesMs[alg])
			}
		}
	}
}

func TestScheduleTablesRender(t *testing.T) {
	out := ScheduleTables()
	for _, want := range []string{"LEX schedule (8 steps)", "PEX schedule (7 steps)",
		"REX schedule (3 steps)", "BEX schedule (7 steps)", "LS schedule (8 steps)",
		"PS schedule (6 steps)", "BS schedule (7 steps)", "GS schedule (6 steps)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in schedule tables", want)
		}
	}
}

func TestTable5SmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("FFT sweep is host-expensive")
	}
	tab, err := Table5(32, 512, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// LEX must be worst at every size.
	for r := range tab.RowHeaders {
		lex := cell(t, tab, r, 0)
		for _, c := range []int{2, 4, 6} {
			if lex <= cell(t, tab, r, c) {
				t.Fatalf("row %s: LEX %.3f not worst", tab.RowHeaders[r], lex)
			}
		}
	}
}

func TestFig11SystemFlat(t *testing.T) {
	tab, err := Fig11(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// System broadcast time barely changes across machine sizes.
	first := cell(t, tab, 0, 3)
	lastRow := len(MachineSizes) - 1
	last := cell(t, tab, lastRow, 3)
	if last > first*1.5 {
		t.Fatalf("system broadcast should be ~flat in N: %.3f -> %.3f", first, last)
	}
}
