package exp

import (
	"context"
	"fmt"

	"repro/cm5"
	"repro/internal/network"
	"repro/internal/store"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The apps family closes the paper's actual loop: instead of synthetic
// patterns, it records the *real* communication of the three paper
// applications (CG, 2-D FFT, unstructured-mesh Euler — see
// internal/trace) and replays each recorded trace, collapsed to its
// traffic matrix, through every registered scheduler on several
// interconnects. Recording happens at most once per (app, nprocs) per
// process — the trace library memoizes, and with a store attached the
// recording itself persists content-addressed, so warm sweeps never
// touch the applications at all. Each cell's spec carries its trace's
// input hash plus trace.TraceVersion, so -resume/expdiff/the perf gate
// address trace-driven cells exactly like synthetic ones.

// AppsProcs are the processor counts of the apps sweep.
var AppsProcs = []int{8, 16}

// AppsTopologies are the interconnects of the apps sweep.
var AppsTopologies = []string{"fat-tree", "hypercube"}

// AppsSchedulers are the column algorithms: the paper's irregular
// schedulers plus the adaptive scheduler.
var AppsSchedulers = []string{"LS", "PS", "BS", "GS", "AS"}

// AppsSeed fixes the recorded traces (mesh generation, FFT input) so
// the tables are canonical.
const AppsSeed int64 = 1

// AppsSpecs builds the apps sweep against a trace library: one table
// per processor count (rows = applications, columns = scheduler x
// interconnect) plus the per-trace statistics table. Pass the library
// the sweep's runner store is attached to, so recordings persist; a
// memo-only library (trace.NewLibrary(nil)) still records each trace
// just once per sweep.
func AppsSpecs(cfg network.Config, lib *trace.Library) ([]*TableSpec, error) {
	var specs []*TableSpec
	for _, n := range AppsProcs {
		spec, err := appsSpec(cfg, lib, n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	stats, err := appsStatsSpec(cfg, lib)
	if err != nil {
		return nil, err
	}
	return append(specs, stats), nil
}

// appsSpec builds one processor count of the apps sweep. The trace
// hashes in the cell specs are input-addressed (trace.HashFor), so
// building the spec never records anything.
func appsSpec(cfg network.Config, lib *trace.Library, n int) (*TableSpec, error) {
	appNames := trace.Apps()
	var cols []string
	for _, tn := range AppsTopologies {
		for _, alg := range AppsSchedulers {
			cols = append(cols, fmt.Sprintf("%s@%s", alg, tn))
		}
	}
	t := NewTable(fmt.Sprintf("Apps: recorded application traces x schedulers x interconnects, P=%d (ms)", n),
		appNames, cols)
	spec := &TableSpec{Name: "apps", Table: t}
	for r, app := range appNames {
		thash, err := appsTraceHash(cfg, app, n)
		if err != nil {
			return nil, err
		}
		c := 0
		for _, tn := range AppsTopologies {
			for _, alg := range AppsSchedulers {
				r, col, app, tn, alg, thash := r, c, app, tn, alg, thash
				key := fmt.Sprintf("apps/%s/%s/%s/P%d", app, tn, alg, n)
				extra := store.Spec{"trace": thash, "trace_version": trace.TraceVersion}
				spec.AddCellSpec(key, extra,
					func(ctx context.Context, _ int64, rec *Rec) error {
						tr, _, err := lib.Get(app, 0, n, AppsSeed, cfg)
						if err != nil {
							return err
						}
						p, err := tr.Pattern()
						if err != nil {
							return err
						}
						tp, err := topo.New(tn, n, cfg.TopologyRates())
						if err != nil {
							return err
						}
						a, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.PatternJob(a, p,
							cm5.WithConfig(cfg), cm5.WithTopology(tp)))
						if err != nil {
							return err
						}
						rec.Set(r, col, "%.3f", res.Elapsed.Millis())
						rec.PutFloat("elapsed_ms", res.Elapsed.Millis())
						rec.PutInt("steps", res.Steps)
						rec.PutInt("messages", res.Messages)
						return nil
					})
				c++
			}
		}
	}
	t.Note = "Each row replays one recorded application trace — the app's real halo/transpose " +
		"traffic collapsed to a matrix — so schedule choice is measured on the paper's actual " +
		"irregular workloads. The replayed makespan covers the communication only; the stats " +
		"table's \"app ms\" column shows the span inside the recorded run itself."
	return spec, nil
}

// appsStatsSpec builds the per-trace statistics table: what each
// recorded application's communication actually looks like at each
// processor count.
func appsStatsSpec(cfg network.Config, lib *trace.Library) (*TableSpec, error) {
	appNames := trace.Apps()
	var rows []string
	for _, app := range appNames {
		for _, n := range AppsProcs {
			rows = append(rows, fmt.Sprintf("%s@P%d", app, n))
		}
	}
	cols := []string{"size", "events", "msgs", "density %", "avg B", "fan-in", "app ms"}
	t := NewTable("App traces: recorded communication per (application, processor count)", rows, cols)
	spec := &TableSpec{Name: "apps-stats", Table: t}
	r := 0
	for _, app := range appNames {
		for _, n := range AppsProcs {
			thash, err := appsTraceHash(cfg, app, n)
			if err != nil {
				return nil, err
			}
			row, app, n, thash := r, app, n, thash
			key := fmt.Sprintf("apps-stats/%s/P%d", app, n)
			extra := store.Spec{"trace": thash, "trace_version": trace.TraceVersion}
			spec.AddCellSpec(key, extra,
				func(ctx context.Context, _ int64, rec *Rec) error {
					tr, _, err := lib.Get(app, 0, n, AppsSeed, cfg)
					if err != nil {
						return err
					}
					p, err := tr.Pattern()
					if err != nil {
						return err
					}
					st := p.Stats()
					rec.Set(row, 0, "%d", tr.Size)
					rec.Set(row, 1, "%d", len(tr.Events))
					rec.Set(row, 2, "%d", st.Messages)
					rec.Set(row, 3, "%.1f", st.DensityPct)
					rec.Set(row, 4, "%.0f", st.AvgBytes)
					rec.Set(row, 5, "%d", st.MaxFanIn)
					rec.Set(row, 6, "%.3f", tr.Span().Millis())
					return nil
				})
			r++
		}
	}
	t.Note = "events = recorded wire messages (every halo exchange of every iteration); msgs = " +
		"nonzero entries after collapsing to a matrix. CG and Euler repeat one halo shape, so " +
		"events/msgs equals the iteration count; the FFT transpose sends each pair once per run. " +
		"app ms is the communication span inside the recorded run under its baseline schedule."
	return spec, nil
}

// appsTraceHash resolves the input-addressed content hash of one
// canonical apps-family trace (default problem size, AppsSeed).
func appsTraceHash(cfg network.Config, app string, nprocs int) (string, error) {
	a, err := trace.Lookup(app)
	if err != nil {
		return "", err
	}
	return trace.HashFor(a.Name, a.DefaultSize, nprocs, AppsSeed, cfg)
}
