package exp

import (
	"context"
	"fmt"

	"repro/cm5"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/topo"
)

// The topology family goes beyond the paper's single machine: every
// catalogue workload scheduled with each irregular scheduler over each
// interconnect of internal/topo — the paper's central claim (schedule
// choice interacts with network structure) swept across network
// structures the CM-5 never had.

// TopologySizes are the machine sizes of the topology sweep.
var TopologySizes = []int{64, 256}

// TopologyNames are the interconnects of the sweep, in print order.
var TopologyNames = []string{"fat-tree", "torus2d", "hypercube", "dragonfly"}

// TopologyBytes is the per-message size of the topology sweep.
const TopologyBytes = 256

// Topology runs one machine size of the topology sweep serially.
func Topology(cfg network.Config, n int) (*Table, error) { return runSpec(TopologySpec(cfg, n)) }

// TopologySpecs builds the topology sweep, one table per machine size.
func TopologySpecs(cfg network.Config) []*TableSpec {
	specs := make([]*TableSpec, len(TopologySizes))
	for i, n := range TopologySizes {
		specs[i] = TopologySpec(cfg, n)
	}
	return specs
}

// TopologySpec builds one machine size of the topology sweep: every
// catalogue workload scheduled with each of LS/PS/BS/GS over each
// topology, one cell per (workload, topology, algorithm). Patterns are
// the same seeded matrices the scenario family uses, so the fat-tree
// column doubles as a cross-check against "scenarios".
func TopologySpec(cfg network.Config, n int) *TableSpec {
	workloads := pattern.Workloads()
	rows := make([]string, len(workloads))
	for i, w := range workloads {
		rows[i] = w.Name
	}
	var cols []string
	for _, tn := range TopologyNames {
		for _, alg := range IrregularAlgs {
			cols = append(cols, fmt.Sprintf("%s@%s", alg, tn))
		}
	}
	t := NewTable(fmt.Sprintf("Topologies: catalogue workloads x schedulers x interconnects, N=%d, %d B messages (ms)",
		n, TopologyBytes), rows, cols)
	spec := &TableSpec{Name: "topology", Table: t}
	for r, w := range workloads {
		c := 0
		for _, tn := range TopologyNames {
			for _, alg := range IrregularAlgs {
				w, col, tn, alg := w, c, tn, alg
				spec.AddCell(fmt.Sprintf("topology/%s/%s/%s/N%d", w.Name, tn, alg, n),
					func(ctx context.Context, _ int64, rec *Rec) error {
						tp, err := topo.New(tn, n, cfg.TopologyRates())
						if err != nil {
							return err
						}
						p := w.Gen(n, TopologyBytes, scenarioSeed(n))
						a, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.PatternJob(a, p,
							cm5.WithConfig(cfg), cm5.WithTopology(tp)))
						if err != nil {
							return err
						}
						rec.Set(r, col, "%.3f", res.Elapsed.Millis())
						return nil
					})
				c++
			}
		}
	}
	t.Note = "The fat-tree columns match the scenario family exactly (same seeded patterns, same " +
		"solver). Expected shape: the torus punishes non-neighbor traffic (every hop holds a " +
		"link), the hypercube flatters the butterfly and bisection workloads (their pairs are " +
		"cube edges), and the dragonfly's tapered global links make cross-group schedules the " +
		"bottleneck just as the thinned tree does on the CM-5."
	return spec
}
