package exp

import (
	"context"
	"fmt"

	"repro/cm5"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/store"
	"repro/internal/topo"
)

// The faults family goes beyond the paper's evaluation: the butterfly
// workload run under an unreliable machine. Every cell injects one
// named fault profile (healthy, link-down, degrade, straggler,
// crosstraffic) into the run and compares the paper's static
// schedulers LS/PS/BS/GS against the adaptive scheduler AS, which
// re-plans the remaining transfers phase by phase from observed
// transfer rates. The sweep runs
// over the hypercube interconnect: its path diversity is what lets the
// link-down profile kill links outright and reroute around them — on
// the fat tree every interior link is a cut edge, so failures there
// only brown out (see the link-down profile doc).

// FaultSizes are the machine sizes of the faults sweep.
var FaultSizes = []int{16, 64, 256}

// FaultBytes is the per-message size of the faults sweep (the scenario
// sweep's, so healthy rows cross-check against the other families).
const FaultBytes = ScenarioBytes

// FaultWorkload is the communication pattern of the faults sweep.
const FaultWorkload = "butterfly"

// FaultTopology is the interconnect of the faults sweep.
const FaultTopology = "hypercube"

// FaultSchedulers are the column algorithms: the paper's irregular
// schedulers plus the adaptive scheduler.
var FaultSchedulers = []string{"LS", "PS", "BS", "GS", "AS"}

// faultSeed fixes each machine size's fault plan so the tables are
// canonical; it matches scenarioSeed, so the healthy row replays the
// other families' patterns exactly.
func faultSeed(n int) int64 { return int64(n) }

// Faults runs the fault-injection sweep serially.
func Faults(cfg network.Config) (*Table, error) {
	spec, err := FaultsSpec(cfg)
	if err != nil {
		return nil, err
	}
	return runSpec(spec)
}

// FaultsSpec builds the fault-injection sweep: the butterfly workload
// over the hypercube under every named fault profile, scheduled with
// each of LS/PS/BS/GS/AS at every fault machine size. One cell per
// (profile, size, algorithm); each cell's seed-deterministic fault
// plan is built eagerly against the run's topology and filed into the
// cell's content-hash spec, so plans address store records the same
// way machine sizes do.
func FaultsSpec(cfg network.Config) (*TableSpec, error) {
	var workload pattern.Workload
	for _, w := range pattern.Workloads() {
		if w.Name == FaultWorkload {
			workload = w
		}
	}
	if workload.Gen == nil {
		return nil, fmt.Errorf("faults: workload %q not in the pattern catalogue", FaultWorkload)
	}
	profiles := cm5.FaultProfiles()
	var cols []string
	for _, n := range FaultSizes {
		for _, alg := range FaultSchedulers {
			cols = append(cols, fmt.Sprintf("%s@N%d", alg, n))
		}
	}
	t := NewTable(fmt.Sprintf("Faults: %s on the %s under fault profiles x schedulers, %d B messages (ms)",
		FaultWorkload, FaultTopology, FaultBytes), profiles, cols)
	spec := &TableSpec{Name: "faults", Table: t}
	for r, profile := range profiles {
		c := 0
		for _, n := range FaultSizes {
			tp, err := topo.New(FaultTopology, n, cfg.TopologyRates())
			if err != nil {
				return nil, err
			}
			plan, err := cm5.NewFaultPlan(profile, tp, faultSeed(n))
			if err != nil {
				return nil, err
			}
			for _, alg := range FaultSchedulers {
				r, col, n, alg, plan := r, c, n, alg, plan
				key := fmt.Sprintf("faults/%s/%s/%s/%s/N%d", FaultWorkload, FaultTopology, profile, alg, n)
				extra := store.Spec{"faults": plan, "fault_plan_version": network.FaultPlanVersion}
				spec.AddCellSpec(key, extra,
					func(ctx context.Context, _ int64, rec *Rec) error {
						tp, err := topo.New(FaultTopology, n, cfg.TopologyRates())
						if err != nil {
							return err
						}
						p := workload.Gen(n, FaultBytes, scenarioSeed(n))
						a, err := cm5.LookupAlgorithm(alg)
						if err != nil {
							return err
						}
						res, err := runJob(ctx, cm5.PatternJob(a, p,
							cm5.WithConfig(cfg), cm5.WithTopology(tp), cm5.WithFaults(plan)))
						if err != nil {
							return err
						}
						rec.Set(r, col, "%.3f", res.Elapsed.Millis())
						rec.PutFloat("elapsed_ms", res.Elapsed.Millis())
						rec.PutInt("steps", res.Steps)
						rec.PutInt("fault_events", res.Faults.Events)
						rec.PutInt("links_down", res.Faults.LinksDown)
						rec.PutInt("links_degraded", res.Faults.LinksDegraded)
						rec.PutInt("stragglers", res.Faults.Stragglers)
						rec.PutInt("rerouted", res.Faults.Rerouted)
						rec.PutInt("background_flows", res.Faults.BackgroundFlows)
						return nil
					})
				c++
			}
		}
	}
	t.Note = "The healthy row is the control: its LS/PS/BS/GS cells at N=64 and N=256 match the " +
		"topology family's hypercube butterfly cells exactly. Under faults the static schedulers " +
		"keep their precomputed pairings regardless of what the machine does; AS re-plans the " +
		"remaining transfers after each phase from observed wire and end-to-end rates, " +
		"front-loading the pairs the faults slowed so they overlap with healthy ones."
	return spec, nil
}
