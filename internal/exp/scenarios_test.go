package exp

import (
	"context"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/network"
)

// renderWith runs freshly-built specs under the given pool width and
// returns the concatenated rendered tables.
func renderWith(t *testing.T, workers int, filter string, build func() []*TableSpec) string {
	t.Helper()
	r := &Runner{Workers: workers}
	if filter != "" {
		r.Filter = regexp.MustCompile(filter)
	}
	specs := build()
	if err := r.Run(context.Background(), specs...); err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, s := range specs {
		out += s.Table.Render()
	}
	return out
}

func TestScenariosDeterministicAcrossPoolWidths(t *testing.T) {
	cfg := network.DefaultConfig()
	filter := "" // full sweep unless -short
	if testing.Short() {
		filter = "/N(16|64)$|scenario-stats"
	}
	build := func() []*TableSpec {
		return []*TableSpec{ScenariosSpec(cfg), ScenarioStatsSpec(cfg)}
	}
	serial := renderWith(t, 1, filter, build)
	wide := renderWith(t, 8, filter, build)
	if serial != wide {
		t.Fatal("scenario tables differ between 1 and 8 workers")
	}
	if serial == "" {
		t.Fatal("empty render")
	}
}

func TestScenariosCoverage(t *testing.T) {
	spec := ScenariosSpec(network.DefaultConfig())
	if len(spec.Table.RowHeaders) < 6 {
		t.Fatalf("only %d workloads, want >= 6", len(spec.Table.RowHeaders))
	}
	if len(ScenarioSizes) < 3 {
		t.Fatalf("only %d machine sizes, want >= 3", len(ScenarioSizes))
	}
	if want := len(spec.Table.RowHeaders) * len(ScenarioSizes) * len(IrregularAlgs); len(spec.Cells) != want {
		t.Fatalf("%d cells, want %d", len(spec.Cells), want)
	}
}

func TestScenarioStatsValues(t *testing.T) {
	cfg := network.DefaultConfig()
	tab, err := ScenarioStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := func(name string) int {
		for i, h := range tab.RowHeaders {
			if h == name {
				return i
			}
		}
		t.Fatalf("no row %q", name)
		return -1
	}
	// hotspot at N=64: 63 messages funneling into one node.
	if got := tab.Cells[row("hotspot")][4]; got != "63" {
		t.Fatalf("hotspot fan-in = %q, want 63", got)
	}
	// permutation: one message per node, fan-in 1.
	if got := tab.Cells[row("permutation")][0]; got != "64" {
		t.Fatalf("permutation msgs = %q, want 64", got)
	}
	if got := tab.Cells[row("permutation")][4]; got != "1" {
		t.Fatalf("permutation fan-in = %q, want 1", got)
	}
	// stencil2d on the 8x8 torus: 4 neighbors per node, symmetric.
	if got := tab.Cells[row("stencil2d")][0]; got != "256" {
		t.Fatalf("stencil2d msgs = %q, want 256", got)
	}
	if got := tab.Cells[row("stencil2d")][5]; got != "true" {
		t.Fatalf("stencil2d symmetric = %q", got)
	}
}

func TestScenariosHotspotShape(t *testing.T) {
	// LS must be dramatically worse than GS on the funnel at N=64: the
	// whole point of isolating the hot-spot workload.
	cfg := network.DefaultConfig()
	spec := ScenariosSpec(cfg)
	r := &Runner{Workers: 4, Filter: regexp.MustCompile("scenarios/hotspot/(LS|GS)/N64")}
	if err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	tab := spec.Table
	var rowIdx, lsCol, gsCol int
	for i, h := range tab.RowHeaders {
		if h == "hotspot" {
			rowIdx = i
		}
	}
	for c, h := range tab.ColHeaders {
		switch h {
		case "LS@N64":
			lsCol = c
		case "GS@N64":
			gsCol = c
		}
	}
	ls, err := strconv.ParseFloat(tab.Cells[rowIdx][lsCol], 64)
	if err != nil {
		t.Fatalf("LS cell %q: %v", tab.Cells[rowIdx][lsCol], err)
	}
	gs, err := strconv.ParseFloat(tab.Cells[rowIdx][gsCol], 64)
	if err != nil {
		t.Fatalf("GS cell %q: %v", tab.Cells[rowIdx][gsCol], err)
	}
	// Both serialize on the single receiver; LS additionally idles
	// senders behind the funnel, so it must not beat GS.
	if ls < gs {
		t.Fatalf("LS %.3f beat GS %.3f on the hotspot", ls, gs)
	}
}

func TestCollectivesSpecSmallSizes(t *testing.T) {
	cfg := network.DefaultConfig()
	spec := CollectivesSpec(cfg)
	r := &Runner{Workers: 8, Filter: regexp.MustCompile("/N(16|64)/")}
	if err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	tab := spec.Table
	for ri, name := range tab.RowHeaders {
		for ci, h := range tab.ColHeaders {
			if h == "CMMD@N16" || h == "BS@N16" || h == "CMMD@N64" || h == "BS@N64" {
				v, err := strconv.ParseFloat(tab.Cells[ri][ci], 64)
				if err != nil || v <= 0 {
					t.Fatalf("%s %s = %q, want positive time", name, h, tab.Cells[ri][ci])
				}
			}
		}
	}
	// Dense collectives are pre-marked "-" beyond CollectiveDenseMax.
	for ri, name := range tab.RowHeaders {
		for ci, h := range tab.ColHeaders {
			if (name == "allgather" || name == "transpose") && (h == "CMMD@N1024" || h == "BS@N1024") {
				if tab.Cells[ri][ci] != "-" {
					t.Fatalf("%s %s = %q, want -", name, h, tab.Cells[ri][ci])
				}
			}
		}
	}
}
