// Package exp is the experiment harness: one TableSpec per table and
// figure of the paper's evaluation, producing aligned text tables with
// the paper's published values alongside the simulator's measurements
// where the paper reports numbers (Tables 5, 11, 12).
//
// A spec decomposes its experiment into independent cells — one
// simulation per (figure, algorithm, machine size, message size) tuple —
// which Runner fans across a bounded worker pool. Each cell writes only
// its own pre-assigned table slot, so results are deterministic and the
// rendered tables byte-identical regardless of pool width or completion
// order.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title      string
	Note       string
	ColHeaders []string
	RowHeaders []string
	Cells      [][]string
}

// NewTable allocates a rows x cols table with empty cells.
func NewTable(title string, rowHeaders, colHeaders []string) *Table {
	cells := make([][]string, len(rowHeaders))
	for i := range cells {
		cells[i] = make([]string, len(colHeaders))
	}
	return &Table{Title: title, RowHeaders: rowHeaders, ColHeaders: colHeaders, Cells: cells}
}

// Set writes a cell.
func (t *Table) Set(row, col int, format string, args ...interface{}) {
	t.Cells[row][col] = fmt.Sprintf(format, args...)
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(t.Title)))
	b.WriteByte('\n')

	// Column widths.
	rowHeadW := 0
	for _, h := range t.RowHeaders {
		if len(h) > rowHeadW {
			rowHeadW = len(h)
		}
	}
	colW := make([]int, len(t.ColHeaders))
	for c, h := range t.ColHeaders {
		colW[c] = len(h)
		for r := range t.RowHeaders {
			if len(t.Cells[r][c]) > colW[c] {
				colW[c] = len(t.Cells[r][c])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", rowHeadW, "")
	for c, h := range t.ColHeaders {
		fmt.Fprintf(&b, "  %*s", colW[c], h)
	}
	b.WriteByte('\n')
	for r, h := range t.RowHeaders {
		fmt.Fprintf(&b, "%-*s", rowHeadW, h)
		for c := range t.ColHeaders {
			fmt.Fprintf(&b, "  %*s", colW[c], t.Cells[r][c])
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		b.WriteByte('\n')
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	return b.String()
}
