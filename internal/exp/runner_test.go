package exp

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/network"
)

// fastSpecs builds every spec cheap enough for the unit-test loop; in
// -short mode (the CI race job) only the cheapest families run.
func fastSpecs(cfg network.Config) []*TableSpec {
	specs := []*TableSpec{
		Fig5Spec(cfg),
		Fig10Spec(cfg),
		AblationAsyncSpec(cfg),
		AblationFatTreeSpec(cfg),
		AblationCrossoverSpec(cfg),
	}
	if testing.Short() {
		return specs
	}
	t12, _, err := Table12Spec(cfg)
	if err != nil {
		panic(err)
	}
	return append(specs,
		Table11Spec(cfg),
		t12,
		AblationGreedySpec(cfg),
		AblationCrystalSpec(cfg),
	)
}

// TestParallelMatchesSerial renders every (fast) figure and table with a
// one-worker pool and an eight-worker pool: the output must be
// byte-identical — the orchestrator may not leak completion order into
// the results.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := network.DefaultConfig()
	render := func(workers int) []string {
		var out []string
		for _, spec := range fastSpecs(cfg) {
			r := &Runner{Workers: workers}
			tab, err := r.RunTable(context.Background(), spec)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, spec.Name, err)
			}
			out = append(out, tab.Render())
		}
		return out
	}
	serial := render(1)
	parallel := render(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("table %d differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
				i, serial[i], parallel[i])
		}
	}
}

// TestRunnerMatchesScalingSweep checks the machine-size sweeps stay
// deterministic across pool widths at reduced scale (full Fig6-8 sweeps
// run in the integration path).
func TestRunnerMatchesScalingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("machine-size sweep is host-expensive")
	}
	cfg := network.DefaultConfig()
	run := func(workers int) string {
		spec := Fig7Spec(cfg)
		tab, err := (&Runner{Workers: workers}).RunTable(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return tab.Render()
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("fig7 differs across widths:\n%s\nvs\n%s", a, b)
	}
}

func TestRunnerAllCellsRun(t *testing.T) {
	var ran atomic.Int64
	spec := &TableSpec{Name: "t", Table: NewTable("t", []string{"r"}, []string{"c"})}
	for i := 0; i < 100; i++ {
		spec.AddCell(fmt.Sprintf("t/%d", i), func(ctx context.Context, _ int64, rec *Rec) error {
			ran.Add(1)
			return nil
		})
	}
	if err := (&Runner{Workers: 7}).Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d cells, want 100", ran.Load())
	}
}

func TestRunnerFilter(t *testing.T) {
	var ran atomic.Int64
	spec := &TableSpec{Name: "t"}
	for i := 0; i < 10; i++ {
		spec.AddCell(fmt.Sprintf("t/alg%d/case", i), func(ctx context.Context, _ int64, rec *Rec) error {
			ran.Add(1)
			return nil
		})
	}
	r := &Runner{Workers: 4, Filter: regexp.MustCompile(`alg[0-2]/`)}
	if err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("filter ran %d cells, want 3", ran.Load())
	}
}

func TestRunnerErrorPropagatesWithCellKey(t *testing.T) {
	boom := errors.New("boom")
	spec := &TableSpec{Name: "t"}
	spec.AddCell("t/good", func(ctx context.Context, _ int64, rec *Rec) error { return nil })
	spec.AddCell("t/bad", func(ctx context.Context, _ int64, rec *Rec) error { return boom })
	err := (&Runner{Workers: 2}).Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "t/bad") {
		t.Fatalf("err %q does not name the failing cell", err)
	}
}

// TestRunnerCancellationStopsWorkers parks every in-flight cell on
// ctx.Done and fails one: the error must cancel the shared context,
// unblock the parked workers, and prevent any further cell from
// starting — without waiting on timeouts.
func TestRunnerCancellationStopsWorkers(t *testing.T) {
	const workers = 4
	var started, lateStarts atomic.Int64
	boom := errors.New("boom")
	spec := &TableSpec{Name: "t"}
	// Workers 2..4 park until cancelled; worker 1 errors immediately
	// after the others are in flight.
	for i := 0; i < workers-1; i++ {
		spec.AddCell(fmt.Sprintf("t/parked%d", i), func(ctx context.Context, _ int64, rec *Rec) error {
			started.Add(1)
			<-ctx.Done()
			return nil
		})
	}
	spec.AddCell("t/fails", func(ctx context.Context, _ int64, rec *Rec) error {
		for started.Load() < workers-1 {
			runtime.Gosched()
		}
		return boom
	})
	for i := 0; i < 100; i++ {
		spec.AddCell(fmt.Sprintf("t/late%d", i), func(ctx context.Context, _ int64, rec *Rec) error {
			lateStarts.Add(1)
			return nil
		})
	}
	err := (&Runner{Workers: workers}).Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if lateStarts.Load() != 0 {
		t.Fatalf("%d cells started after cancellation", lateStarts.Load())
	}
}

func TestRunnerPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	spec := &TableSpec{Name: "t"}
	for i := 0; i < 10; i++ {
		spec.AddCell(fmt.Sprintf("t/%d", i), func(ctx context.Context, _ int64, rec *Rec) error {
			ran.Add(1)
			return nil
		})
	}
	err := (&Runner{Workers: 2}).Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells ran under a pre-cancelled context", ran.Load())
	}
}

func TestRunnerProgress(t *testing.T) {
	var events []Progress
	spec := &TableSpec{Name: "t"}
	for i := 0; i < 25; i++ {
		spec.AddCell(fmt.Sprintf("t/%d", i), func(ctx context.Context, _ int64, rec *Rec) error { return nil })
	}
	r := &Runner{Workers: 5, OnProgress: func(p Progress) { events = append(events, p) }}
	if err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if len(events) != 25 {
		t.Fatalf("got %d progress events, want 25", len(events))
	}
	maxDone := 0
	for _, p := range events {
		if p.Total != 25 {
			t.Fatalf("Total = %d, want 25", p.Total)
		}
		if p.Done > maxDone {
			maxDone = p.Done
		}
	}
	if maxDone != 25 {
		t.Fatalf("max Done = %d, want 25", maxDone)
	}
}

func TestRunnerFinishRunsAfterCells(t *testing.T) {
	var cells atomic.Int64
	finished := false
	spec := &TableSpec{Name: "t"}
	for i := 0; i < 20; i++ {
		spec.AddCell(fmt.Sprintf("t/%d", i), func(ctx context.Context, _ int64, rec *Rec) error {
			cells.Add(1)
			return nil
		})
	}
	spec.Finish = func() error {
		if cells.Load() != 20 {
			t.Errorf("Finish ran with %d/20 cells done", cells.Load())
		}
		finished = true
		return nil
	}
	if err := (&Runner{Workers: 8}).Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("Finish hook did not run")
	}
}

// TestRunnerFinishSkippedWhenFiltered: derived columns must stay blank
// (not NaN or bogus winners) when a filter excluded any of the spec's
// cells.
func TestRunnerFinishSkippedWhenFiltered(t *testing.T) {
	cfg := network.DefaultConfig()
	spec := AblationFatTreeSpec(cfg)
	r := &Runner{Workers: 2, Filter: regexp.MustCompile(`nomatch`)}
	tab, err := r.RunTable(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out := tab.Render(); strings.Contains(out, "NaN") {
		t.Fatalf("filtered table leaked derived NaN values:\n%s", out)
	}
	for r := range tab.RowHeaders {
		for c := range tab.ColHeaders {
			if tab.Cells[r][c] != "" {
				t.Fatalf("cell (%d,%d) = %q, want blank under all-excluding filter", r, c, tab.Cells[r][c])
			}
		}
	}
	// A partial filter must also suppress the Finish hook.
	spec2 := AblationCrossoverSpec(cfg)
	r2 := &Runner{Workers: 2, Filter: regexp.MustCompile(`ablation-crossover/GS/10%$`)}
	tab2, err := r2.RunTable(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if best := tab2.Cells[0][3]; best != "" {
		t.Fatalf("partially-filtered 'best' column = %q, want blank", best)
	}
	if tab2.Cells[0][2] == "" {
		t.Fatal("the selected GS cell should still have run")
	}
}

func TestRunnerFinishSkippedOnError(t *testing.T) {
	spec := &TableSpec{Name: "t"}
	spec.AddCell("t/bad", func(ctx context.Context, _ int64, rec *Rec) error { return errors.New("x") })
	spec.Finish = func() error {
		t.Error("Finish ran despite a cell error")
		return nil
	}
	if err := (&Runner{Workers: 1}).Run(context.Background(), spec); err == nil {
		t.Fatal("want error")
	}
}

func TestCellSeed(t *testing.T) {
	if CellSeed("a") != CellSeed("a") {
		t.Fatal("CellSeed not deterministic")
	}
	if CellSeed("a") == CellSeed("b") {
		t.Fatal("CellSeed collides on trivial keys")
	}
	if CellSeed("a") < 0 || CellSeed("b") < 0 {
		t.Fatal("CellSeed must be non-negative")
	}
	// The runner feeds the per-cell seed, perturbed by Runner.Seed.
	var got []int64
	spec := &TableSpec{Name: "t"}
	spec.AddCell("t/x", func(ctx context.Context, seed int64, rec *Rec) error {
		got = append(got, seed)
		return nil
	})
	for _, rs := range []int64{0, 7} {
		if err := (&Runner{Workers: 1, Seed: rs}).Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	if got[0] != CellSeed("t/x") {
		t.Fatalf("seed = %d, want CellSeed", got[0])
	}
	if got[1] != CellSeed("t/x")^7 {
		t.Fatalf("perturbed seed = %d, want CellSeed^7", got[1])
	}
}

func TestNewRunnerDefaults(t *testing.T) {
	if NewRunner(0).Workers < 1 {
		t.Fatal("NewRunner(0) must pick at least one worker")
	}
	if NewRunner(3).Workers != 3 {
		t.Fatal("NewRunner(3) must keep the requested width")
	}
}
