package exp

import (
	"context"
	"fmt"
	"regexp"
	"testing"

	"repro/internal/network"
	"repro/internal/store"
)

func TestFaultsDeterministicAcrossPoolWidths(t *testing.T) {
	cfg := network.DefaultConfig()
	filter := ""
	if testing.Short() {
		filter = "/N16$"
	}
	build := func() []*TableSpec {
		spec, err := FaultsSpec(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return []*TableSpec{spec}
	}
	serial := renderWith(t, 1, filter, build)
	wide := renderWith(t, 8, filter, build)
	if serial != wide {
		t.Fatal("faults tables differ between 1 and 8 workers")
	}
	if serial == "" {
		t.Fatal("empty render")
	}
}

func TestFaultsCoverage(t *testing.T) {
	spec, err := FaultsSpec(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "faults" {
		t.Fatalf("spec name %q", spec.Name)
	}
	profiles := len(spec.Table.RowHeaders)
	if profiles != 5 {
		t.Fatalf("%d fault profiles, want 5", profiles)
	}
	want := profiles * len(FaultSizes) * len(FaultSchedulers)
	if len(spec.Cells) != want {
		t.Fatalf("%d cells, want %d", len(spec.Cells), want)
	}
	found := false
	for _, name := range FamilyNames() {
		if name == "faults" {
			found = true
		}
	}
	if !found {
		t.Fatalf("faults missing from FamilyNames %v", FamilyNames())
	}
	// Every cell files its fault plan into the content-hash spec, so
	// two cells differing only in their plans can never collide.
	for _, c := range spec.Cells {
		if c.Spec["faults"] == nil {
			t.Fatalf("cell %s has no fault plan in its spec", c.Key)
		}
		if c.Spec["fault_plan_version"] != network.FaultPlanVersion {
			t.Fatalf("cell %s does not pin the fault plan version", c.Key)
		}
	}
}

func TestFaultsKeyFields(t *testing.T) {
	got := KeyFields("faults/butterfly/hypercube/link-down/AS/N64")
	for k, v := range map[string]any{
		"family": "faults", "workload": "butterfly", "topology": "hypercube",
		"fault_profile": "link-down", "scheduler": "AS", "n": 64,
	} {
		if fmt.Sprint(got[k]) != fmt.Sprint(v) {
			t.Errorf("KeyFields[%s] = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

// TestFaultsHealthyMatchesTopologyFamily: the healthy row is the
// family's control — its static-scheduler cells must reproduce the
// topology family's hypercube butterfly cells exactly (same seeded
// pattern, same machine, same solver, and a fault plan that does
// nothing).
func TestFaultsHealthyMatchesTopologyFamily(t *testing.T) {
	cfg := network.DefaultConfig()
	n := 64 // a size both families sweep
	faultSpec, err := FaultsSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topoSpec := TopologySpec(cfg, n)
	r := &Runner{Workers: 4, Filter: regexp.MustCompile(
		fmt.Sprintf(`^faults/butterfly/hypercube/healthy/.*/N%d$|^topology/butterfly/hypercube/`, n))}
	if err := r.Run(context.Background(), faultSpec, topoSpec); err != nil {
		t.Fatal(err)
	}
	// Column bases: faults columns are (size, alg) blocks in FaultSizes
	// order; topology columns are (topo, alg) blocks in TopologyNames
	// order.
	faultBase := -1
	for i, size := range FaultSizes {
		if size == n {
			faultBase = i * len(FaultSchedulers)
		}
	}
	topoBase := -1
	for i, name := range TopologyNames {
		if name == "hypercube" {
			topoBase = i * len(IrregularAlgs)
		}
	}
	topoRow := -1
	for i, w := range topoSpec.Table.RowHeaders {
		if w == "butterfly" {
			topoRow = i
		}
	}
	if faultBase < 0 || topoBase < 0 || topoRow < 0 {
		t.Fatalf("axes not found: faultBase=%d topoBase=%d topoRow=%d", faultBase, topoBase, topoRow)
	}
	for a, alg := range IrregularAlgs { // AS has no topology-family counterpart
		got := faultSpec.Table.Cells[0][faultBase+a] // row 0: healthy
		want := topoSpec.Table.Cells[topoRow][topoBase+a]
		if got != want || got == "" {
			t.Errorf("healthy %s at N=%d: faults %q != topology %q", alg, n, got, want)
		}
	}
}

// TestFaultsStoreReplay: the faults family honors the cache contract —
// a warm store replays every cell without running it, byte-identically,
// with the fault plans hashed into the cell addresses.
func TestFaultsStoreReplay(t *testing.T) {
	cfg := network.DefaultConfig()
	build := func() *TableSpec {
		spec, err := FaultsSpec(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	filter := regexp.MustCompile("/N16$")
	dir := t.TempDir()

	cold := storeRunner(t, dir, 4)
	cold.Filter = filter
	coldSpec := build()
	if err := cold.Run(context.Background(), coldSpec); err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits() != 0 {
		t.Fatalf("cold run hit the cache %d times", cold.CacheHits())
	}

	warm := storeRunner(t, dir, 4)
	warm.Filter = filter
	warmSpec := build()
	if err := warm.Run(context.Background(), warmSpec); err != nil {
		t.Fatal(err)
	}
	wantCells := 5 * len(FaultSchedulers) // every profile x alg at N=16
	if warm.CacheHits() != wantCells {
		t.Fatalf("warm run hit %d cells, want all %d", warm.CacheHits(), wantCells)
	}
	if coldSpec.Table.Render() != warmSpec.Table.Render() {
		t.Fatal("warm replay is not byte-identical to the cold run")
	}
}

// TestFaultsPlansAddressTheStore: two cells identical in every
// key-derived axis but carrying different fault plans must hash to
// different store addresses.
func TestFaultsPlansAddressTheStore(t *testing.T) {
	base := StoreBase(network.DefaultConfig())
	hash := func(extra store.Spec) string {
		s := store.Spec{}
		for k, v := range base {
			s[k] = v
		}
		for k, v := range KeyFields("faults/butterfly/hypercube/link-down/AS/N64") {
			s[k] = v
		}
		for k, v := range extra {
			s[k] = v
		}
		h, err := store.HashSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	planA := network.NewHealthyPlan()
	planB := network.NewHealthyPlan()
	planB.Events = append(planB.Events, network.FaultEvent{Kind: network.FaultStraggler, Node: 1, Factor: 2})
	a := hash(store.Spec{"faults": planA, "fault_plan_version": network.FaultPlanVersion})
	b := hash(store.Spec{"faults": planB, "fault_plan_version": network.FaultPlanVersion})
	if a == b {
		t.Fatal("different fault plans hash to the same store address")
	}
}

// TestFaultsAdaptiveBeatsStaticUnderLinkDown holds the family to the
// tentpole's acceptance bar, through the real experiment cells: under
// the link-down profile the adaptive scheduler finishes ahead of the
// static LS and BS at every swept size.
func TestFaultsAdaptiveBeatsStaticUnderLinkDown(t *testing.T) {
	cfg := network.DefaultConfig()
	sizes := FaultSizes
	if testing.Short() {
		sizes = []int{64}
	}
	spec, err := FaultsSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 4, Filter: regexp.MustCompile(`/link-down/(LS|BS|AS)/`)}
	if err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	for _, n := range sizes {
		key := func(alg string) string {
			return fmt.Sprintf("faults/%s/%s/link-down/%s/N%d", FaultWorkload, FaultTopology, alg, n)
		}
		as := spec.CellFloat(key("AS"), "elapsed_ms")
		if as <= 0 {
			t.Fatalf("AS cell at N=%d did not record elapsed_ms", n)
		}
		for _, static := range []string{"LS", "BS"} {
			if st := spec.CellFloat(key(static), "elapsed_ms"); as >= st {
				t.Errorf("N=%d: AS (%.3f ms) not faster than %s (%.3f ms) under link-down",
					n, as, static, st)
			}
		}
	}
}
