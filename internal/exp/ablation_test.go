package exp

import (
	"testing"

	"repro/internal/network"
)

func TestAblationAsyncShape(t *testing.T) {
	tab, err := AblationAsync(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: LEX sync, LEX async, PEX sync, PEX async.
	for r := range tab.RowHeaders {
		lexSync, lexAsync := cell(t, tab, r, 0), cell(t, tab, r, 1)
		pexSync, pexAsync := cell(t, tab, r, 2), cell(t, tab, r, 3)
		if lexAsync >= lexSync {
			t.Fatalf("row %d: async must help LEX (%.3f vs %.3f)", r, lexAsync, lexSync)
		}
		// PEX barely changes: async gains are bounded.
		if pexAsync > pexSync {
			t.Fatalf("row %d: async should not hurt PEX", r)
		}
		if pexSync-pexAsync > pexSync/2 {
			t.Fatalf("row %d: async gain on PEX suspiciously large", r)
		}
		// Even with async sends, LEX stays worse than PEX: scheduling
		// still matters.
		if lexAsync <= pexAsync {
			t.Fatalf("row %d: async LEX (%.3f) should remain worse than PEX (%.3f)",
				r, lexAsync, pexAsync)
		}
	}
}

func TestAblationFatTreeShape(t *testing.T) {
	tab, err := AblationFatTree(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.RowHeaders {
		thinGain := cell(t, tab, r, 2)
		flatGain := cell(t, tab, r, 5)
		if thinGain <= 0 {
			t.Fatalf("row %d: BEX must gain on the thinned tree (%.1f%%)", r, thinGain)
		}
		if flatGain > 1.0 || flatGain < -1.0 {
			t.Fatalf("row %d: BEX gain on flat tree should vanish, got %.1f%%", r, flatGain)
		}
	}
}

func TestFlatTreeConfig(t *testing.T) {
	cfg := FlatTreeConfig()
	if cfg.ClusterUpRate(1) != 4*cfg.NodeLinkRate {
		t.Fatal("flat tree level 1")
	}
	if cfg.ClusterUpRate(2) != 16*cfg.NodeLinkRate {
		t.Fatal("flat tree level 2")
	}
}

func TestAblationGreedyRuns(t *testing.T) {
	tab, err := AblationGreedy(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.RowHeaders {
		if cell(t, tab, r, 1) <= 0 || cell(t, tab, r, 3) <= 0 {
			t.Fatalf("row %d: zero times", r)
		}
	}
}

func TestAblationCrossoverShape(t *testing.T) {
	tab, err := AblationCrossover(network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// GS wins at low density; the fixed pairings win at high density.
	if tab.Cells[0][3] != "GS" {
		t.Fatalf("10%% best = %s, want GS", tab.Cells[0][3])
	}
	lastTwo := []string{tab.Cells[len(tab.RowHeaders)-1][3], tab.Cells[len(tab.RowHeaders)-2][3]}
	for _, best := range lastTwo {
		if best == "GS" {
			t.Fatalf("high density best = %v, GS should lose", lastTwo)
		}
	}
}
