package exp

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/store"
	"repro/internal/trace"
)

// The experiment families — which names exist, how the grouping
// aliases expand, and which TableSpecs a name builds — used to live in
// cmd/cmexp's switch. They are shared here so every front end (cmexp,
// the cmserve sweep endpoint) resolves the same catalogue and rejects
// unknown names with the same error text.

// Table5DefaultMaxSize is the largest FFT array edge of the canonical
// table5 sweep (cmexp -maxsize overrides it).
const Table5DefaultMaxSize = 2048

// Table5DefaultSizes are the processor counts of the canonical table5
// sweep (cmexp -procs overrides them).
var Table5DefaultSizes = []int{32, 256}

// FamilyNames returns every sweepable experiment family in canonical
// print order. The static "schedules" listing and the "all"/"ablations"
// aliases are not families; ExpandFamilies handles them.
func FamilyNames() []string {
	return []string{
		"fig5", "fig6", "fig7", "fig8", "table5", "fig10", "fig11",
		"table11", "table12", "scenarios", "collectives", "topology", "faults",
		"apps",
		"ablation-async", "ablation-fattree", "ablation-greedy",
		"ablation-crossover", "ablation-crystal",
	}
}

// AblationFamilyNames returns the families the "ablations" alias
// expands to.
func AblationFamilyNames() []string {
	return []string{
		"ablation-async", "ablation-fattree", "ablation-greedy",
		"ablation-crossover", "ablation-crystal",
	}
}

// ExpandFamilies expands the grouping aliases ("all" = schedules plus
// every family, "ablations" = the ablation families) and deduplicates,
// preserving the canonical print order. Unknown names are rejected with
// an error listing every known name; "schedules" passes through (it is
// a valid cmexp argument even though it builds no TableSpec).
func ExpandFamilies(args []string) ([]string, error) {
	known := map[string]bool{"schedules": true}
	for _, n := range FamilyNames() {
		known[n] = true
	}
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, arg := range args {
		switch arg {
		case "all":
			add("schedules")
			for _, n := range FamilyNames() {
				add(n)
			}
		case "ablations":
			for _, n := range AblationFamilyNames() {
				add(n)
			}
		default:
			if !known[arg] {
				return nil, fmt.Errorf("unknown experiment %q (known: schedules %s ablations all)",
					arg, strings.Join(FamilyNames(), " "))
			}
			add(arg)
		}
	}
	return names, nil
}

// FamilySpecs builds the TableSpecs of one experiment family in its
// canonical shape (table5 at both default processor counts). The
// static "schedules" listing builds no spec and is rejected here; so
// is any unknown name, with the same error text ExpandFamilies uses.
func FamilySpecs(name string, cfg network.Config) ([]*TableSpec, error) {
	return FamilySpecsStore(name, cfg, nil)
}

// FamilySpecsStore is FamilySpecs with a result store backend threaded
// through to the families that persist more than cell records — the
// apps family's trace library records into it, so recorded application
// traces survive across processes (and, with an HTTP backend, are
// shared by every worker of a distributed sweep). A nil backend
// degrades gracefully (traces are memoized for the sweep and
// re-recorded next process).
func FamilySpecsStore(name string, cfg network.Config, st store.Backend) ([]*TableSpec, error) {
	switch name {
	case "fig5":
		return []*TableSpec{Fig5Spec(cfg)}, nil
	case "fig6":
		return []*TableSpec{Fig6Spec(cfg)}, nil
	case "fig7":
		return []*TableSpec{Fig7Spec(cfg)}, nil
	case "fig8":
		return []*TableSpec{Fig8Spec(cfg)}, nil
	case "fig10":
		return []*TableSpec{Fig10Spec(cfg)}, nil
	case "fig11":
		return []*TableSpec{Fig11Spec(cfg)}, nil
	case "table5":
		var specs []*TableSpec
		for _, n := range Table5DefaultSizes {
			specs = append(specs, Table5Spec(n, Table5DefaultMaxSize, cfg))
		}
		return specs, nil
	case "table11":
		return []*TableSpec{Table11Spec(cfg)}, nil
	case "table12":
		spec, _, err := Table12Spec(cfg)
		if err != nil {
			return nil, err
		}
		return []*TableSpec{spec}, nil
	case "scenarios":
		return []*TableSpec{ScenariosSpec(cfg), ScenarioStatsSpec(cfg)}, nil
	case "collectives":
		return []*TableSpec{CollectivesSpec(cfg)}, nil
	case "topology":
		return TopologySpecs(cfg), nil
	case "faults":
		spec, err := FaultsSpec(cfg)
		if err != nil {
			return nil, err
		}
		return []*TableSpec{spec}, nil
	case "apps":
		return AppsSpecs(cfg, trace.NewLibrary(st))
	case "ablation-async":
		return []*TableSpec{AblationAsyncSpec(cfg)}, nil
	case "ablation-fattree":
		return []*TableSpec{AblationFatTreeSpec(cfg)}, nil
	case "ablation-greedy":
		return []*TableSpec{AblationGreedySpec(cfg)}, nil
	case "ablation-crossover":
		return []*TableSpec{AblationCrossoverSpec(cfg)}, nil
	case "ablation-crystal":
		return []*TableSpec{AblationCrystalSpec(cfg)}, nil
	case "schedules":
		return nil, fmt.Errorf("experiment %q is a static listing, not a sweepable family", name)
	}
	return nil, fmt.Errorf("unknown experiment %q (known: schedules %s ablations all)",
		name, strings.Join(FamilyNames(), " "))
}
