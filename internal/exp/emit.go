package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Format selects how rendered experiment tables are emitted.
type Format string

const (
	// FormatText is the aligned human-readable rendering (the default).
	FormatText Format = "text"
	// FormatJSON emits one machine-readable document for all tables.
	FormatJSON Format = "json"
	// FormatCSV emits one flat record per table cell.
	FormatCSV Format = "csv"
)

// TablesSchema versions the JSON emitter's document format.
const TablesSchema = "cmexp-tables/v1"

// ParseFormat parses a -format flag value; empty means text.
func ParseFormat(s string) (Format, error) {
	switch Format(strings.ToLower(s)) {
	case FormatText, "":
		return FormatText, nil
	case FormatJSON:
		return FormatJSON, nil
	case FormatCSV:
		return FormatCSV, nil
	}
	return "", fmt.Errorf("unknown format %q (known: text json csv)", s)
}

type tableDoc struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Rows    []string   `json:"rows"`
	Columns []string   `json:"columns"`
	Cells   [][]string `json:"cells"`
}

type tablesDoc struct {
	Schema string     `json:"schema"`
	Tables []tableDoc `json:"tables"`
}

// WriteTables emits the tables in the given format. Text is the
// existing aligned rendering, one table per block; JSON is a single
// schema-versioned document; CSV is one "table,row,column,value"
// record per cell. All three are deterministic: table, row, and column
// order are the specs' own, never a map iteration's.
func WriteTables(w io.Writer, format Format, tables []*Table) error {
	switch format {
	case FormatText, "":
		for _, t := range tables {
			if _, err := fmt.Fprintln(w, t.Render()); err != nil {
				return err
			}
		}
		return nil
	case FormatJSON:
		doc := tablesDoc{Schema: TablesSchema, Tables: make([]tableDoc, 0, len(tables))}
		for _, t := range tables {
			doc.Tables = append(doc.Tables, tableDoc{
				Title:   t.Title,
				Note:    t.Note,
				Rows:    t.RowHeaders,
				Columns: t.ColHeaders,
				Cells:   t.Cells,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	case FormatCSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"table", "row", "column", "value"}); err != nil {
			return err
		}
		for _, t := range tables {
			for r, rh := range t.RowHeaders {
				for c, ch := range t.ColHeaders {
					if err := cw.Write([]string{t.Title, rh, ch, t.Cells[r][c]}); err != nil {
						return err
					}
				}
			}
		}
		cw.Flush()
		return cw.Error()
	}
	return fmt.Errorf("unknown format %q", format)
}
