package exp

import (
	"context"
	"fmt"
	"hash/fnv"
	"regexp"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one independent unit of a sweep — a single
// (figure, algorithm, machine size, message size) tuple. Fn runs one
// simulation and stores its result through the closure it was built
// with. Cells of one table must write disjoint, pre-assigned slots so
// the worker pool needs no locks and results land deterministically
// regardless of completion order.
type Cell struct {
	// Key names the cell, e.g. "fig5/LEX/N32/256B". The -run flag of
	// cmd/cmexp and Runner.Filter match against it, and the per-cell
	// seed is derived from it.
	Key string
	// Fn computes the cell. seed is the runner's deterministic per-cell
	// seed (CellSeed(Key) xor Runner.Seed); cells with no stochastic
	// component may ignore it. ctx is cancelled when the sweep aborts.
	Fn func(ctx context.Context, seed int64) error
}

// TableSpec couples a table with the independent cells that fill it.
type TableSpec struct {
	Name  string // experiment name, e.g. "fig5"
	Table *Table
	Cells []Cell
	// Finish, if non-nil, runs serially after every cell of the spec
	// completed — for derived columns that combine several cells'
	// results (ablation gain percentages, "best" columns). It is
	// skipped when a Filter excluded any of the spec's cells: derived
	// values computed from partially-filled slots would be garbage, so
	// they stay blank like the unselected cells themselves.
	Finish func() error
}

// AddCell appends a cell to the spec.
func (s *TableSpec) AddCell(key string, fn func(ctx context.Context, seed int64) error) {
	s.Cells = append(s.Cells, Cell{Key: key, Fn: fn})
}

// Progress reports one completed cell. Done counts completions so far
// (including this one) out of Total selected cells.
type Progress struct {
	Done  int
	Total int
	Key   string
}

// CellSeed derives the deterministic seed for a cell key.
func CellSeed(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64() &^ (1 << 63))
}

// Runner fans independent experiment cells across a bounded worker pool.
// Every sweep it runs is deterministic: each cell writes only its own
// pre-assigned slot, so the rendered tables are byte-identical whether
// the pool has one worker or many.
//
// The zero value is a serial runner; NewRunner(0) uses every CPU.
type Runner struct {
	// Workers is the pool size; values < 1 mean one worker.
	Workers int
	// Filter, when non-nil, selects which cells run; non-matching cells
	// are skipped and their table slots keep their zero value.
	Filter *regexp.Regexp
	// Seed perturbs every cell's derived seed (0 = the canonical
	// tables). Cells without a stochastic component ignore it.
	Seed int64
	// OnProgress, when non-nil, is called after each cell completes.
	// Calls are serialized but may come from any worker goroutine.
	OnProgress func(Progress)
}

// NewRunner returns a runner with the given pool size; workers < 1 uses
// GOMAXPROCS workers.
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{Workers: workers}
}

// Run executes every selected cell of the given specs on the pool, then
// the specs' Finish hooks in order. The first cell error cancels the
// remaining work and is returned (wrapped with the cell key); a
// cancelled ctx stops the sweep between cells.
func (r *Runner) Run(ctx context.Context, specs ...*TableSpec) error {
	var cells []Cell
	complete := make([]bool, len(specs))
	for i, s := range specs {
		selected := 0
		for _, c := range s.Cells {
			if r.Filter == nil || r.Filter.MatchString(c.Key) {
				cells = append(cells, c)
				selected++
			}
		}
		complete[i] = selected == len(s.Cells)
	}
	if err := r.runCells(ctx, cells); err != nil {
		return err
	}
	for i, s := range specs {
		if s.Finish != nil && complete[i] {
			if err := s.Finish(); err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
		}
	}
	return nil
}

// RunTable runs a single spec and returns its table.
func (r *Runner) RunTable(ctx context.Context, spec *TableSpec) (*Table, error) {
	if err := r.Run(ctx, spec); err != nil {
		return nil, err
	}
	return spec.Table, nil
}

func (r *Runner) runCells(ctx context.Context, cells []Cell) error {
	total := len(cells)
	if total == 0 {
		return ctx.Err()
	}
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards firstErr, done, and OnProgress calls
		firstErr error
		next     atomic.Int64
		done     int
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(total) || cctx.Err() != nil {
					return
				}
				c := cells[i]
				if err := c.Fn(cctx, CellSeed(c.Key)^r.Seed); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cell %s: %w", c.Key, err)
					}
					mu.Unlock()
					cancel()
					return
				}
				if r.OnProgress != nil {
					mu.Lock()
					done++
					r.OnProgress(Progress{Done: done, Total: total, Key: c.Key})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runSpec is the serial-compatible entry used by the per-figure helper
// functions: run the spec on all CPUs and return its table.
func runSpec(spec *TableSpec) (*Table, error) {
	return NewRunner(0).RunTable(context.Background(), spec)
}
