package exp

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Cell is one independent unit of a sweep — a single
// (figure, algorithm, machine size, message size) tuple. Fn runs one
// simulation and records its output through rec. Cells of one table
// record disjoint, pre-assigned slots so the worker pool needs no
// locks and results land deterministically regardless of completion
// order.
type Cell struct {
	// Key names the cell, e.g. "fig5/LEX/N32/256B". The -run flag of
	// cmd/cmexp and Runner.Filter match against it, the per-cell seed is
	// derived from it, and the result store's content hash includes it.
	Key string
	// Spec holds extra key fields mixed into the cell's content hash on
	// top of the key-derived axes — the faults family files each cell's
	// full fault plan here, so two cells differing only in their plans
	// can never collide in the store. Nil for most cells; ignored
	// without a Store.
	Spec store.Spec
	// Fn computes the cell. seed is the runner's deterministic per-cell
	// seed (CellSeed(Key) xor Runner.Seed); cells with no stochastic
	// component may ignore it. ctx is cancelled when the sweep aborts.
	// All output goes through rec — table writes via rec.Set, scalars
	// consumed by the spec's Finish hook via rec.PutFloat/PutInt — so a
	// result-store hit can replay it without re-simulating.
	Fn func(ctx context.Context, seed int64, rec *Rec) error
}

// Rec is one cell's recorded output: the table writes that render it
// and the named scalars its spec's Finish hook derives from. The
// runner applies the writes to the spec's table after the cell
// completes (or replays them from the result store on a hit), so a
// cached cell is byte-identical to a freshly simulated one.
type Rec struct {
	writes []store.Write
	values map[string]float64
}

// Set records a table write at (row, col).
func (rec *Rec) Set(row, col int, format string, args ...interface{}) {
	rec.writes = append(rec.writes, store.Write{Row: row, Col: col, Val: fmt.Sprintf(format, args...)})
}

// PutFloat records a named scalar for the spec's Finish hook.
func (rec *Rec) PutFloat(name string, v float64) {
	if rec.values == nil {
		rec.values = map[string]float64{}
	}
	rec.values[name] = v
}

// PutInt records a named integer scalar for the spec's Finish hook.
func (rec *Rec) PutInt(name string, v int) { rec.PutFloat(name, float64(v)) }

// Float returns a recorded scalar (zero when absent).
func (rec *Rec) Float(name string) float64 { return rec.values[name] }

// Int returns a recorded integer scalar (zero when absent).
func (rec *Rec) Int(name string) int { return int(rec.values[name]) }

// TableSpec couples a table with the independent cells that fill it.
type TableSpec struct {
	Name  string // experiment name, e.g. "fig5"
	Table *Table
	Cells []Cell
	// Finish, if non-nil, runs serially after every cell of the spec
	// completed — for derived columns that combine several cells'
	// results (ablation gain percentages, "best" columns), read back
	// through CellFloat/CellInt. It is skipped when a Filter excluded
	// any of the spec's cells: derived values computed from
	// partially-filled slots would be garbage, so they stay blank like
	// the unselected cells themselves.
	Finish func() error

	mu   sync.Mutex
	recs map[string]*Rec
}

// AddCell appends a cell to the spec.
func (s *TableSpec) AddCell(key string, fn func(ctx context.Context, seed int64, rec *Rec) error) {
	s.Cells = append(s.Cells, Cell{Key: key, Fn: fn})
}

// AddCellSpec appends a cell carrying extra content-hash key fields
// (see Cell.Spec).
func (s *TableSpec) AddCellSpec(key string, extra store.Spec, fn func(ctx context.Context, seed int64, rec *Rec) error) {
	s.Cells = append(s.Cells, Cell{Key: key, Spec: extra, Fn: fn})
}

func (s *TableSpec) putRec(key string, rec *Rec) {
	s.mu.Lock()
	if s.recs == nil {
		s.recs = map[string]*Rec{}
	}
	s.recs[key] = rec
	s.mu.Unlock()
}

// CellFloat returns the named scalar the cell recorded, or zero when
// the cell has not run. Finish hooks only run when every cell of the
// spec completed, so inside them every recorded scalar is present.
func (s *TableSpec) CellFloat(key, name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.recs[key]; ok {
		return rec.Float(name)
	}
	return 0
}

// CellInt returns the named integer scalar the cell recorded.
func (s *TableSpec) CellInt(key, name string) int { return int(s.CellFloat(key, name)) }

// Progress reports one completed cell. Done counts completions so far
// (including this one) out of Total selected cells. Cached marks cells
// replayed from the result store instead of simulated.
type Progress struct {
	Done   int
	Total  int
	Key    string
	Cached bool
}

// CellSeed derives the deterministic seed for a cell key.
func CellSeed(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64() &^ (1 << 63))
}

// Runner fans independent experiment cells across a bounded worker pool.
// Every sweep it runs is deterministic: each cell records only its own
// pre-assigned slots, so the rendered tables are byte-identical whether
// the pool has one worker or many.
//
// With a Store attached the runner is cache-aware: before simulating a
// cell it hashes the cell's full specification (family, cell key,
// derived axes, seed, plus the caller's StoreBase fields — network
// config and code version) and replays the stored record on a hit;
// misses simulate and persist. Replay applies the exact recorded
// strings, so output stays byte-identical with the store on, off, warm
// or cold.
//
// The zero value is a serial, storeless runner; NewRunner(0) uses
// every CPU.
type Runner struct {
	// Workers is the pool size; values < 1 mean one worker.
	Workers int
	// Filter, when non-nil, selects which cells run; non-matching cells
	// are skipped and their table slots keep their zero value.
	Filter *regexp.Regexp
	// Seed perturbs every cell's derived seed (0 = the canonical
	// tables). Cells without a stochastic component ignore it.
	Seed int64
	// OnProgress, when non-nil, is called after each cell completes.
	// Calls are serialized but may come from any worker goroutine.
	OnProgress func(Progress)
	// Store, when non-nil, enables cache-aware execution. Any backend
	// works: a local directory (*store.Store) or a cmserve-hosted HTTP
	// store (*store.HTTPBackend) shared by a fleet of workers.
	Store store.Backend
	// StoreBase holds the sweep-wide key fields mixed into every cell's
	// content hash (see StoreBase); ignored without a Store.
	StoreBase store.Spec
	// Lease, when non-nil (it requires a Store), turns this runner into
	// one worker of a fleet: before simulating a cell it leases the
	// cell's content hash through the backend, so any number of worker
	// processes sharing one backend partition a sweep among themselves
	// with no scheduler. Cells another live worker holds are deferred
	// and re-checked every Poll until they appear in the store (the
	// holder finished) or their lease expires (the holder died — the
	// lease is stolen and the cell simulated here). Every worker still
	// fills its whole table, replaying the cells others computed, so
	// each one renders byte-identical complete output.
	Lease *LeaseConfig
	// Metrics, when non-nil, receives sweep observability — per-cell
	// wall-time histograms and replayed/simulated counters — and is
	// handed to every cell's simulations through the context, so
	// sim-level counters (engine events, flows, solver re-solves)
	// accumulate into the same registry. Purely passive: attaching a
	// registry never changes any cell's output.
	Metrics *obs.Registry
	// TimelineDir, when non-empty, records a sim-time timeline for every
	// simulated cell and writes it as Chrome trace-event JSON into this
	// directory (created if missing), one file per cell. Replayed cells
	// are skipped — a store hit has no simulation to record.
	TimelineDir string

	hits, misses atomic.Int64
}

// NewRunner returns a runner with the given pool size; workers < 1 uses
// GOMAXPROCS workers.
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{Workers: workers}
}

// CacheHits returns how many cells the last Run replayed from the
// store; CacheMisses how many it simulated.
func (r *Runner) CacheHits() int   { return int(r.hits.Load()) }
func (r *Runner) CacheMisses() int { return int(r.misses.Load()) }

// ResultsVersion is the code-version salt of every stored cell hash.
// Bump it whenever cell semantics, table layouts, or the simulation
// model change in a way that should invalidate previously stored
// results.
const ResultsVersion = 1

// StoreBase returns the sweep-wide key fields every cell's content
// hash mixes in: the network configuration and the experiment-code
// version. Pass it to Runner.StoreBase alongside Runner.Store.
func StoreBase(cfg interface{}) store.Spec {
	return store.Spec{"config": cfg, "code_version": ResultsVersion}
}

// LeaseConfig configures leased (multi-worker) execution; see
// Runner.Lease.
type LeaseConfig struct {
	// Owner is this worker's identity in the shared claim space; it must
	// be unique per live process across the whole fleet — with the HTTP
	// backend that fleet spans machines, where pids alone collide
	// (empty: "<hostname>-<pid>-<starttime>").
	Owner string
	// TTL is how long a claimed cell stays leased. It must comfortably
	// exceed one cell's simulation time: a lease that expires mid-cell
	// invites a steal and the work is done twice (never wrongly — both
	// Put the same record — just wastefully). Empty: one minute.
	TTL time.Duration
	// Poll is how often deferred cells (leased by another live worker)
	// are re-checked. Empty: 100ms.
	Poll time.Duration
}

// defaultOwner is the process-wide default lease identity, computed
// once: hostname + pid + first-use time. Pid alone is not unique when
// the fleet spans machines (HTTP backend) and can be reused on one
// host; two workers silently sharing an identity would each treat the
// other's live lease as refreshable and simulate the same cells.
var defaultOwner = sync.OnceValue(func() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "anon"
	}
	return fmt.Sprintf("%s-%d-%x", host, os.Getpid(), time.Now().UnixNano())
})

// withDefaults fills the zero fields.
func (lc LeaseConfig) withDefaults() LeaseConfig {
	if lc.Owner == "" {
		lc.Owner = defaultOwner()
	}
	if lc.TTL <= 0 {
		lc.TTL = time.Minute
	}
	if lc.Poll <= 0 {
		lc.Poll = 100 * time.Millisecond
	}
	return lc
}

// boundCell pairs a selected cell with its spec so workers can apply
// writes and file records against the right table.
type boundCell struct {
	spec *TableSpec
	cell Cell
}

// Run executes every selected cell of the given specs on the pool, then
// the specs' Finish hooks in order. The first cell error cancels the
// remaining work and is returned (wrapped with the cell key); a
// cancelled ctx stops the sweep between cells.
func (r *Runner) Run(ctx context.Context, specs ...*TableSpec) error {
	r.hits.Store(0)
	r.misses.Store(0)
	if r.TimelineDir != "" {
		if err := os.MkdirAll(r.TimelineDir, 0o755); err != nil {
			return err
		}
	}
	var cells []boundCell
	complete := make([]bool, len(specs))
	for i, s := range specs {
		selected := 0
		for _, c := range s.Cells {
			if r.Filter == nil || r.Filter.MatchString(c.Key) {
				cells = append(cells, boundCell{spec: s, cell: c})
				selected++
			}
		}
		complete[i] = selected == len(s.Cells)
	}
	var err error
	if r.Lease != nil && r.Store != nil {
		err = r.runCellsLeased(ctx, cells)
	} else {
		err = r.runCells(ctx, cells)
	}
	if r.Store != nil {
		// One index write per sweep, not per cell — and even a failed
		// sweep indexes the cells it did complete (that is what -resume
		// picks up).
		if ferr := r.Store.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}
	for i, s := range specs {
		if s.Finish != nil && complete[i] {
			if err := s.Finish(); err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
		}
	}
	return nil
}

// RunTable runs a single spec and returns its table.
func (r *Runner) RunTable(ctx context.Context, spec *TableSpec) (*Table, error) {
	if err := r.Run(ctx, spec); err != nil {
		return nil, err
	}
	return spec.Table, nil
}

func (r *Runner) runCells(ctx context.Context, cells []boundCell) error {
	total := len(cells)
	if total == 0 {
		return ctx.Err()
	}
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards firstErr, done, and OnProgress calls
		firstErr error
		next     atomic.Int64
		done     int
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(total) || cctx.Err() != nil {
					return
				}
				bc := cells[i]
				cached, err := r.runCell(cctx, bc)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cell %s: %w", bc.cell.Key, err)
					}
					mu.Unlock()
					cancel()
					return
				}
				if r.OnProgress != nil {
					mu.Lock()
					done++
					r.OnProgress(Progress{Done: done, Total: total, Key: bc.cell.Key, Cached: cached})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runCell executes one cell — store hit, or simulate and persist —
// applies its recorded writes to the spec's table, and files the
// record for the Finish hook. Returns whether the cell was a cache
// hit.
func (r *Runner) runCell(ctx context.Context, bc boundCell) (bool, error) {
	seed := CellSeed(bc.cell.Key) ^ r.Seed
	var hash string
	if r.Store != nil {
		h, err := store.HashSpec(r.cellSpec(bc, seed))
		if err != nil {
			return false, err
		}
		hash = h
		if ok, err := r.replayCell(bc, hash); err != nil || ok {
			return ok, err
		}
	}
	return false, r.simulateCell(ctx, bc, seed, hash)
}

// replayCell applies the record stored under hash, if any. A read error
// reports a clean miss: the store must never be able to break a sweep
// it could only speed up. A record that no longer fits the table is a
// hard error — it means stale results, not a recoverable miss.
func (r *Runner) replayCell(bc boundCell, hash string) (bool, error) {
	stored, ok, err := r.Store.Get(hash)
	if err != nil || !ok {
		return false, nil
	}
	rec := &Rec{writes: stored.Writes, values: stored.Values}
	if err := applyWrites(bc.spec.Table, rec.writes); err != nil {
		return false, fmt.Errorf("stale store record %s (invalidate it or bump exp.ResultsVersion): %w",
			hash[:12], err)
	}
	bc.spec.putRec(bc.cell.Key, rec)
	r.hits.Add(1)
	r.Metrics.Counter("exp_cells_replayed_total").Add(1)
	return true, nil
}

// simulateCell runs the cell's Fn, applies its writes, files its
// record, and (when hash is non-empty, i.e. a store is attached)
// persists the result under hash.
func (r *Runner) simulateCell(ctx context.Context, bc boundCell, seed int64, hash string) error {
	if r.Metrics != nil {
		ctx = obs.ContextWithRegistry(ctx, r.Metrics)
	}
	var tl *obs.Timeline
	if r.TimelineDir != "" {
		tl = obs.NewTimeline()
		ctx = obs.ContextWithTimeline(ctx, tl)
	}
	rec := &Rec{}
	t0 := time.Now()
	if err := bc.cell.Fn(ctx, seed, rec); err != nil {
		return err
	}
	if r.Metrics != nil {
		r.Metrics.Counter("exp_cells_simulated_total").Add(1)
		r.Metrics.Histogram("exp_cell_seconds", obs.SecondsBuckets()).Observe(time.Since(t0).Seconds())
	}
	if tl != nil {
		if err := tl.WriteFile(timelinePath(r.TimelineDir, bc.cell.Key)); err != nil {
			return err
		}
	}
	if err := applyWrites(bc.spec.Table, rec.writes); err != nil {
		return err
	}
	bc.spec.putRec(bc.cell.Key, rec)
	if r.Store != nil && hash != "" {
		err := r.Store.Put(&store.Record{
			Hash:   hash,
			Family: bc.spec.Name,
			Cell:   bc.cell.Key,
			Spec:   r.cellSpec(bc, seed),
			Writes: rec.writes,
			Values: rec.values,
		})
		if err != nil {
			return err
		}
		r.misses.Add(1)
	}
	return nil
}

// cellSpec assembles the full specification a cell result is addressed
// by: experiment family, cell key, the axes derived from the key
// (workload, scheduler, topology, machine size, message size), the
// effective seed, and the caller's StoreBase fields (network
// configuration, code version).
func (r *Runner) cellSpec(bc boundCell, seed int64) store.Spec {
	s := store.Spec{}
	for k, v := range KeyFields(bc.cell.Key) {
		s[k] = v
	}
	for k, v := range bc.cell.Spec {
		s[k] = v
	}
	for k, v := range r.StoreBase {
		s[k] = v
	}
	// The explicit fields win over anything key-derived: the spec name
	// is the authoritative family (they differ for e.g. "table5-32").
	s["family"] = bc.spec.Name
	s["cell"] = bc.cell.Key
	// Seeds are 63-bit: encoded as a decimal string so canonical JSON
	// keeps every bit (see store.HashSpec).
	s["seed"] = strconv.FormatInt(seed, 10)
	return s
}

func applyWrites(t *Table, writes []store.Write) error {
	if len(writes) == 0 {
		return nil
	}
	if t == nil {
		return fmt.Errorf("cell recorded %d table writes but its spec has no table", len(writes))
	}
	for _, w := range writes {
		if w.Row < 0 || w.Row >= len(t.Cells) || w.Col < 0 || w.Col >= len(t.ColHeaders) {
			return fmt.Errorf("table write (%d,%d) outside %dx%d table",
				w.Row, w.Col, len(t.RowHeaders), len(t.ColHeaders))
		}
		t.Cells[w.Row][w.Col] = w.Val
	}
	return nil
}

// runSpec is the serial-compatible entry used by the per-figure helper
// functions: run the spec on all CPUs and return its table.
func runSpec(spec *TableSpec) (*Table, error) {
	return NewRunner(0).RunTable(context.Background(), spec)
}
