package exp

// Published measurements from the paper, used for side-by-side
// comparison. Times are in the paper's units: seconds for Table 5,
// milliseconds for Tables 11 and 12.

// ExchangeAlgs is the paper's complete-exchange algorithm order.
var ExchangeAlgs = []string{"LEX", "PEX", "REX", "BEX"}

// IrregularAlgs is the paper's irregular-scheduler order.
var IrregularAlgs = []string{"LS", "PS", "BS", "GS"}

// PaperTable5 holds Table 5: 2-D FFT times in seconds, indexed by
// [procs][arraySize][algorithm].
var PaperTable5 = map[int]map[int]map[string]float64{
	32: {
		256:  {"LEX": 0.215, "PEX": 0.152, "REX": 0.112, "BEX": 0.114},
		512:  {"LEX": 0.845, "PEX": 0.470, "REX": 0.467, "BEX": 0.470},
		1024: {"LEX": 3.135, "PEX": 2.007, "REX": 2.480, "BEX": 2.005},
		2048: {"LEX": 14.780, "PEX": 9.032, "REX": 9.245, "BEX": 8.509},
	},
	256: {
		256:  {"LEX": 4.340, "PEX": 0.076, "REX": 0.077, "BEX": 0.076},
		512:  {"LEX": 4.750, "PEX": 0.120, "REX": 0.120, "BEX": 0.120},
		1024: {"LEX": 5.968, "PEX": 0.314, "REX": 0.313, "BEX": 0.312},
		2048: {"LEX": 18.087, "PEX": 1.738, "REX": 2.160, "BEX": 1.668},
	},
}

// PaperTable11 holds Table 11: synthetic irregular patterns on 32
// processors, times in milliseconds, indexed by
// [algorithm][densityPercent][messageBytes].
var PaperTable11 = map[string]map[int]map[int]float64{
	"LS": {
		10: {256: 4.723, 512: 6.116},
		25: {256: 11.67, 512: 15.34},
		50: {256: 29.01, 512: 38.27},
		75: {256: 50.14, 512: 66.63},
	},
	"PS": {
		10: {256: 1.766, 512: 2.275},
		25: {256: 3.977, 512: 5.193},
		50: {256: 6.324, 512: 8.360},
		75: {256: 7.882, 512: 10.52},
	},
	"BS": {
		10: {256: 1.933, 512: 2.494},
		25: {256: 3.724, 512: 4.861},
		50: {256: 6.034, 512: 8.013},
		75: {256: 7.856, 512: 10.50},
	},
	"GS": {
		10: {256: 1.597, 512: 2.044},
		25: {256: 3.266, 512: 4.192},
		50: {256: 6.009, 512: 7.934},
		75: {256: 9.241, 512: 12.29},
	},
}

// RealProblem describes one column of Table 12.
type RealProblem struct {
	Name     string
	Vertices int
	// BytesPerVertex: 8 for the CG solver (one float64 per ghost), 32
	// for the Euler solver (four conserved variables).
	BytesPerVertex int
	// The paper's reported pattern statistics.
	PaperDensityPct int
	PaperAvgBytes   int
	// Paper times in ms by algorithm.
	PaperMs map[string]float64
}

// PaperTable12 holds Table 12: real irregular patterns on 32 processors.
var PaperTable12 = []RealProblem{
	{
		Name: "Conj. Grad. 16K", Vertices: 16384, BytesPerVertex: 8,
		PaperDensityPct: 9, PaperAvgBytes: 643,
		PaperMs: map[string]float64{"LS": 8.046, "PS": 6.623, "BS": 7.188, "GS": 5.799},
	},
	{
		Name: "Euler 545", Vertices: 545, BytesPerVertex: 32,
		PaperDensityPct: 37, PaperAvgBytes: 85,
		PaperMs: map[string]float64{"LS": 25.87, "PS": 7.374, "BS": 7.386, "GS": 5.656},
	},
	{
		Name: "Euler 2K", Vertices: 2048, BytesPerVertex: 32,
		PaperDensityPct: 44, PaperAvgBytes: 226,
		PaperMs: map[string]float64{"LS": 48.88, "PS": 15.04, "BS": 15.07, "GS": 12.30},
	},
	{
		Name: "Euler 3K", Vertices: 3072, BytesPerVertex: 32,
		PaperDensityPct: 29, PaperAvgBytes: 612,
		PaperMs: map[string]float64{"LS": 50.78, "PS": 19.98, "BS": 17.57, "GS": 14.34},
	},
	{
		Name: "Euler 9K", Vertices: 9216, BytesPerVertex: 32,
		PaperDensityPct: 44, PaperAvgBytes: 505,
		PaperMs: map[string]float64{"LS": 77.13, "PS": 21.91, "BS": 20.19, "GS": 17.01},
	},
}
