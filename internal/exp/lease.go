package exp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Leased (multi-worker) execution: the distributed half of the runner.
// Each worker process runs the same sweep over the same shared backend;
// before simulating a cell it leases the cell's content hash, so the
// fleet partitions cells dynamically — whoever claims first computes,
// everyone else replays the stored result. A worker that dies holds its
// leases only until they expire, at which point any other worker
// steals them, so no single death can strand a cell.

// cellStatus is the outcome of one leased cell attempt.
type cellStatus int

const (
	cellReplayed  cellStatus = iota // stored result applied
	cellSimulated                   // computed (and stored) here
	cellDeferred                    // another live worker holds the lease
)

// runCellsLeased executes cells as one worker of a fleet. Each cell
// token lives in the queue (or a pending requeue timer) at most once,
// so the channel — sized to hold every cell — can never block a send.
func (r *Runner) runCellsLeased(ctx context.Context, cells []boundCell) error {
	total := len(cells)
	if total == 0 {
		return ctx.Err()
	}
	lc := r.Lease.withDefaults()
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}

	queue := make(chan boundCell, total)
	for _, bc := range cells {
		queue <- bc
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex // guards firstErr, done, and OnProgress calls
		firstErr  error
		done      int
		remaining atomic.Int64
	)
	remaining.Store(int64(total))
	allDone := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-cctx.Done():
					return
				case <-allDone:
					return
				case bc := <-queue:
					st, err := r.runCellLeased(cctx, bc, lc)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("cell %s: %w", bc.cell.Key, err)
						}
						mu.Unlock()
						cancel()
						return
					}
					if st == cellDeferred {
						// A live worker owns this cell; its result will
						// appear in the store (or its lease will expire).
						// Put the token back after a poll interval.
						time.AfterFunc(lc.Poll, func() {
							select {
							case queue <- bc:
							case <-cctx.Done():
							}
						})
						continue
					}
					if r.OnProgress != nil {
						mu.Lock()
						done++
						r.OnProgress(Progress{Done: done, Total: total,
							Key: bc.cell.Key, Cached: st == cellReplayed})
						mu.Unlock()
					}
					if remaining.Add(-1) == 0 {
						close(allDone)
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runCellLeased resolves one cell under the lease protocol:
//
//	replay ── hit ─────────────────────────────→ done (replayed)
//	   │ miss
//	claim ── held by a live worker ────────────→ deferred (re-queued)
//	   │ acquired (fresh, refreshed, or stolen)
//	replay ── hit (holder finished in between) → release, done (replayed)
//	   │ miss
//	simulate, persist, release ────────────────→ done (simulated)
func (r *Runner) runCellLeased(ctx context.Context, bc boundCell, lc LeaseConfig) (cellStatus, error) {
	seed := CellSeed(bc.cell.Key) ^ r.Seed
	hash, err := store.HashSpec(r.cellSpec(bc, seed))
	if err != nil {
		return 0, err
	}
	if ok, err := r.replayCell(bc, hash); err != nil {
		return 0, err
	} else if ok {
		return cellReplayed, nil
	}
	cl, err := r.Store.Claim(hash, lc.Owner, lc.TTL)
	if err != nil {
		return 0, err
	}
	if !cl.Acquired {
		r.Metrics.Counter("exp_cells_deferred_total").Add(1)
		return cellDeferred, nil
	}
	r.Metrics.Counter("exp_cells_claimed_total").Add(1)
	if cl.Stolen {
		r.Metrics.Counter("exp_cells_stolen_total").Add(1)
	}
	defer r.Store.Release(hash, lc.Owner)
	// The holder may have finished between our miss and the claim (its
	// release made the hash claimable again); one more replay check
	// under the lease avoids simulating a cell that is already stored.
	if ok, err := r.replayCell(bc, hash); err != nil {
		return 0, err
	} else if ok {
		return cellReplayed, nil
	}
	if err := r.simulateCell(ctx, bc, seed, hash); err != nil {
		return 0, err
	}
	return cellSimulated, nil
}
