package exp

import (
	"context"
	"testing"

	"repro/internal/network"
)

func TestTopologyDeterministicAcrossPoolWidths(t *testing.T) {
	cfg := network.DefaultConfig()
	filter := ""
	if testing.Short() {
		filter = "/N64$"
	}
	build := func() []*TableSpec { return TopologySpecs(cfg) }
	serial := renderWith(t, 1, filter, build)
	wide := renderWith(t, 8, filter, build)
	if serial != wide {
		t.Fatal("topology tables differ between 1 and 8 workers")
	}
	if serial == "" {
		t.Fatal("empty render")
	}
}

func TestTopologyCoverage(t *testing.T) {
	specs := TopologySpecs(network.DefaultConfig())
	if len(specs) != len(TopologySizes) {
		t.Fatalf("%d specs, want one per size (%d)", len(specs), len(TopologySizes))
	}
	for _, spec := range specs {
		want := len(spec.Table.RowHeaders) * len(TopologyNames) * len(IrregularAlgs)
		if len(spec.Cells) != want {
			t.Fatalf("%s: %d cells, want %d", spec.Name, len(spec.Cells), want)
		}
	}
}

// The fat-tree columns of the topology family must agree with the
// scenario family: same seeded patterns, same machine, same solver.
func TestTopologyFatTreeMatchesScenarios(t *testing.T) {
	cfg := network.DefaultConfig()
	n := 64 // a size both families sweep
	topoSpec := TopologySpec(cfg, n)
	scenSpec := ScenariosSpec(cfg)
	r := &Runner{Workers: 4}
	if err := r.Run(context.Background(), topoSpec, scenSpec); err != nil {
		t.Fatal(err)
	}
	// Column indices: topology tables are (topo, alg) pairs with
	// fat-tree first; scenario tables are (size, alg) with sizes in
	// ScenarioSizes order.
	scenBase := -1
	for i, size := range ScenarioSizes {
		if size == n {
			scenBase = i * len(IrregularAlgs)
		}
	}
	if scenBase < 0 {
		t.Fatalf("size %d not in ScenarioSizes %v", n, ScenarioSizes)
	}
	for r, w := range topoSpec.Table.RowHeaders {
		for a := range IrregularAlgs {
			got := topoSpec.Table.Cells[r][a]
			want := scenSpec.Table.Cells[r][scenBase+a]
			if got != want || got == "" {
				t.Errorf("%s/%s at N=%d: topology fat-tree %q != scenarios %q",
					w, IrregularAlgs[a], n, got, want)
			}
		}
	}
}
