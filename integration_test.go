package repro

// Full-stack integration tests tying the public API, the simulator, and
// the experiment harness together.

import (
	"testing"

	"repro/cm5"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/sched"
)

// TestEndToEndDeterminism re-runs a representative slice of every
// experiment family and requires bit-identical simulated times: the
// whole stack (engine, flow network, rendezvous, schedulers) must be
// deterministic.
func TestEndToEndDeterminism(t *testing.T) {
	cfg := cm5.DefaultConfig()
	sample := func() []cm5.Duration {
		var out []cm5.Duration
		for _, alg := range cm5.ExchangeAlgorithms() {
			d, err := cm5.CompleteExchange(alg, 16, 512, cfg)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
		for _, alg := range cm5.BroadcastAlgorithms() {
			d, err := cm5.Broadcast(alg, 16, 0, 2048, cfg)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
		p := cm5.SyntheticPattern(16, 0.4, 256, 11)
		for _, alg := range cm5.IrregularAlgorithms() {
			s, err := cm5.ScheduleIrregular(alg, p)
			if err != nil {
				t.Fatal(err)
			}
			d, err := cm5.RunSchedule(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
		d, err := cm5.CrystalRouter(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
		return out
	}
	a := sample()
	b := sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic result %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPaperConclusionsHold asserts the paper's Section 5 conclusions as
// a single executable statement over the simulator.
func TestPaperConclusionsHold(t *testing.T) {
	cfg := network.DefaultConfig()

	// "For a large number of processors, the Recursive Exchange
	// algorithm performs the best" — true at small message sizes, where
	// the per-message overhead dominates.
	rex, _ := sched.Exchange("REX", 256, 0, cfg)
	pex, _ := sched.Exchange("PEX", 256, 0, cfg)
	if rex >= pex {
		t.Errorf("REX (%v) should beat PEX (%v) at 0 B on 256 procs", rex, pex)
	}

	// "Balanced exchange performs the best for small message sizes" (on
	// 32 nodes, among the N-1-step algorithms).
	bex256, _ := sched.Exchange("BEX", 32, 256, cfg)
	pex256, _ := sched.Exchange("PEX", 32, 256, cfg)
	if bex256 > pex256 {
		t.Errorf("BEX (%v) should not lose to PEX (%v) at 256 B", bex256, pex256)
	}

	// "For large message sizes in a small multiprocessor system,
	// pairwise exchange performs better than [recursive]".
	pexBig, _ := sched.Exchange("PEX", 16, 1920, cfg)
	rexBig, _ := sched.Exchange("REX", 16, 1920, cfg)
	if pexBig >= rexBig {
		t.Errorf("PEX (%v) should beat REX (%v) at 1920 B on 16 procs", pexBig, rexBig)
	}

	// "The recursive broadcast algorithm ... is also better than the
	// system broadcast functions when the message size is large."
	reb, _ := sched.Broadcast("REB", 32, 0, 8192, cfg)
	sys, _ := sched.Broadcast("SYS", 32, 0, 8192, cfg)
	if reb >= sys {
		t.Errorf("REB (%v) should beat system broadcast (%v) at 8 KB", reb, sys)
	}

	// "The linear scheduling algorithm suffers because of the
	// synchronous communication constraint."
	p := cm5.SyntheticPattern(32, 0.25, 256, 3)
	ls, _ := cm5.RunSchedule(mustSched(t, "LS", p), cfg)
	gs, _ := cm5.RunSchedule(mustSched(t, "GS", p), cfg)
	if ls < 2*gs {
		t.Errorf("LS (%v) should be at least 2x GS (%v)", ls, gs)
	}
}

func mustSched(t *testing.T, alg string, p cm5.Pattern) *cm5.Schedule {
	t.Helper()
	s, err := cm5.ScheduleIrregular(alg, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExperimentIndexComplete checks that every table/figure the paper
// reports has a working runner (the README.md experiment catalogue).
func TestExperimentIndexComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	cfg := network.DefaultConfig()
	runners := map[string]func() error{
		"fig5":  func() error { _, err := exp.Fig5(cfg); return err },
		"fig10": func() error { _, err := exp.Fig10(cfg); return err },
		"fig11": func() error { _, err := exp.Fig11(cfg); return err },
		"table11": func() error {
			_, err := exp.Table11(cfg)
			return err
		},
		"table12": func() error {
			_, _, err := exp.Table12(cfg)
			return err
		},
		"table5-small": func() error {
			_, err := exp.Table5(32, 256, cfg)
			return err
		},
	}
	for name, run := range runners {
		if err := run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if exp.ScheduleTables() == "" {
		t.Fatal("schedule tables empty")
	}
}
