package cm5

import (
	"fmt"

	"repro/internal/trace"
)

// AppTrace is a recorded application communication trace: every data-
// network message one of the bundled applications (see Traces) sent
// during a real simulated run, in canonical order, stamped with the
// inputs that produced it. Traces are seed-deterministic — recording
// the same (app, size, nprocs, seed, config) tuple twice yields
// byte-identical Encode output — and versioned by AppTraceVersion.
// Record one with RecordTrace and replay it through any scheduler with
// WithTraceWorkload.
type AppTrace = trace.Trace

// AppTraceEvent is one recorded message of an AppTrace.
type AppTraceEvent = trace.Event

// AppTraceVersion is the trace format/semantics version stamped into
// every recorded trace and mixed into trace content hashes.
const AppTraceVersion = trace.TraceVersion

// ErrUnknownTraceApp is wrapped by RecordTrace on an application-name
// miss; the error text lists the known names.
var ErrUnknownTraceApp = trace.ErrUnknownApp

// Traces returns the recordable application names in canonical order:
// cg, fft, euler.
func Traces() []string { return trace.Apps() }

// TraceDoc returns the one-line description of a recordable
// application, or "" for an unknown name.
func TraceDoc(name string) string { return trace.AppDoc(name) }

// RecordTrace runs the named application for real on nprocs simulated
// CM-5 nodes and captures its communication. size 0 means the app's
// default problem size (mesh vertices for cg and euler, array edge for
// fft). The result is a pure function of its inputs: the same tuple
// always records the same trace.
func RecordTrace(app string, size, nprocs int, seed int64, cfg Config) (*AppTrace, error) {
	return trace.Record(app, size, nprocs, seed, cfg)
}

// DecodeTrace parses a canonical trace file (AppTrace.Encode output)
// and validates it: format version, endpoint ranges, event ordering.
func DecodeTrace(data []byte) (*AppTrace, error) { return trace.Decode(data) }

// WithTraceWorkload replays a recorded application trace as the job's
// communication pattern: the trace collapses to its traffic matrix
// (who sends how many bytes to whom), which any irregular scheduler
// can then plan. Use with the pattern-driven algorithms the same way
// as WithPattern:
//
//	tr, _ := cm5.RecordTrace("cg", 0, 16, 1, cm5.DefaultConfig())
//	res, _ := cm5.Run(cm5.NewJob(alg, 0, 0, cm5.WithTraceWorkload(tr)))
//
// An invalid or nil trace surfaces as an error from Run/Plan.
func WithTraceWorkload(t *AppTrace) JobOption {
	return func(j *Job) {
		if t == nil {
			j.optErr = fmt.Errorf("cm5: WithTraceWorkload: nil trace")
			return
		}
		p, err := t.Pattern()
		if err != nil {
			j.optErr = fmt.Errorf("cm5: WithTraceWorkload: %w", err)
			return
		}
		j.pattern = p
	}
}
