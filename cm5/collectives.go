package cm5

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cmmd"
	"repro/internal/pattern"
)

// ReduceOp is the reduction operator of Node.AllReduce, Node.ReduceData
// and Node.AllReduceData.
type ReduceOp = cmmd.ReduceOp

// Supported reduction operators.
const (
	OpSum = cmmd.OpSum
	OpMax = cmmd.OpMax
	OpMin = cmmd.OpMin
)

// Collectives lists the collective operations in canonical order:
// scatter, gather, allgather, reduce, allreduce, transpose (all-to-all
// personalized), cshift (circular shift) and halo (stencil ghost
// exchange) — a registry query for the KindCollective names. Each
// exists in two interchangeable forms: a registered algorithm run
// through Run (backed by the Node methods Scatter, Gather, AllGather,
// ReduceData, AllReduceData, Transpose, CShift and GhostExchange), and
// the equivalent traffic matrix from CollectivePattern, which can be
// planned with an irregular scheduler and executed the same way.
func Collectives() []string {
	var out []string
	for _, a := range AlgorithmsOf(KindCollective) {
		out = append(out, a.Name())
	}
	return out
}

// CollectivePattern returns the communication matrix of the named
// collective on n nodes with nbytes per block: the collective's logical
// direct-delivery traffic, which for forwarding algorithms (the ring
// allgather) differs from the node program's hop-by-hop wire traffic.
// Roots default to node 0,
// the circular shift to offset 1, the halo to the 2-D stencil of the
// machine size, and the reduction vectors to whole float64 elements.
func CollectivePattern(name string, n, nbytes int) (Pattern, error) {
	return cmmd.CollectivePattern(name, n, nbytes)
}

// RunCollective executes the named collective as a CMMD node program on
// a fresh n-node machine (n a power of two) and returns the simulated
// completion time of the slowest node.
//
// Deprecated: Use Run with a KindCollective registry Algorithm, which
// also returns message counts and network metrics.
func RunCollective(name string, n, nbytes int, cfg Config) (Duration, error) {
	a, err := kindAlgorithm(name, KindCollective)
	if err != nil {
		return 0, err
	}
	return runElapsed(NewJob(a, n, nbytes, WithConfig(cfg)))
}

// GhostExchange runs the halo exchange of an arbitrary symmetric-shape
// pattern as a node program: node i sends p[i][j] bytes to every
// neighbor j and receives p[j][i] back. Stencil halos from the workload
// catalogue (stencil2d, stencil3d) and mesh partitions all qualify.
func GhostExchange(p Pattern, cfg Config) (Duration, error) {
	return cmmd.RunGhostExchange(p, cfg)
}

// ErrUnknownWorkload is wrapped by WorkloadPattern on a name miss;
// errors.Is(err, ErrUnknownWorkload) detects it, and the error text
// lists the catalogue's known names.
var ErrUnknownWorkload = errors.New("unknown workload")

// Workloads lists the scenario catalogue's pattern generators:
// transpose, butterfly, hotspot, permutation, stencil2d, stencil3d and
// bisection. Use WorkloadPattern to generate one.
func Workloads() []string { return pattern.WorkloadNames() }

// WorkloadPattern generates the named catalogue workload for n
// processors (a power of two, like every machine size) with nbytes per
// message. Only the stochastic generators (permutation) consume the
// seed.
func WorkloadPattern(name string, n, nbytes int, seed int64) (Pattern, error) {
	w, ok := pattern.WorkloadByName(name)
	if !ok {
		return nil, fmt.Errorf("cm5: %w %q (known: %s)",
			ErrUnknownWorkload, name, strings.Join(pattern.WorkloadNames(), " "))
	}
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cm5: workload size %d must be a power of two >= 2", n)
	}
	return w.Gen(n, nbytes, seed), nil
}
