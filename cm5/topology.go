package cm5

import (
	"repro/internal/network"
	"repro/internal/topo"
)

// Topology is a pluggable data-network model: a directed link-capacity
// graph plus a deterministic routing function. Attach one to a Job with
// WithTopology; the default (nil) is the calibrated CM-5 fat tree.
// Build named topologies with NewTopology, or implement the interface
// directly for a custom interconnect — the max-min flow solver only
// sees link indices and capacities.
type Topology = topo.Topology

// TopologyLink describes one directed link of a Topology (capacity,
// reporting level, diagnostic name).
type TopologyLink = topo.Link

// LinkUtil is one link's utilization over a run: carried wire bytes
// against capacity x makespan. See Result.LinkUtilization.
type LinkUtil = network.LinkUtil

// ErrUnknownTopology is wrapped by NewTopology on a name miss;
// errors.Is(err, ErrUnknownTopology) detects it, and the error text
// lists the known names.
var ErrUnknownTopology = topo.ErrUnknownTopology

// Topologies returns the named topology families NewTopology builds, in
// canonical order: fat-tree (the calibrated CM-5 default), tapered,
// torus2d, torus3d, hypercube, dragonfly.
func Topologies() []string { return topo.Names() }

// TopologyDoc returns the one-line description of a named topology
// family, or "" for an unknown name.
func TopologyDoc(name string) string { return topo.Doc(name) }

// NewTopology builds the named topology in its default shape for an
// n-node machine (n a power of two >= 2), using the calibrated CM-5
// rate constants: node links at 20 MB/s everywhere, the fat tree's
// published 20/10/5 MB/s envelope, and tapered global tiers for the
// dragonfly. Running any Job over NewTopology("fat-tree", n) is
// byte-identical to running it with no topology at all.
func NewTopology(name string, n int) (Topology, error) {
	return topo.New(name, n, DefaultConfig().TopologyRates())
}
