package cm5

import (
	"repro/internal/sched"
)

// Kind classifies a registered algorithm: KindExchange (regular
// all-to-all and other regular patterns), KindBroadcast (one-to-all),
// KindIrregular (schedulers for arbitrary communication matrices), and
// KindCollective (CMMD collective node programs).
type Kind = sched.Kind

// The four algorithm kinds.
const (
	KindExchange   = sched.KindExchange
	KindBroadcast  = sched.KindBroadcast
	KindIrregular  = sched.KindIrregular
	KindCollective = sched.KindCollective
)

// ErrUnknownAlgorithm is wrapped by every registry miss, whichever
// entry point hit it: errors.Is(err, ErrUnknownAlgorithm) detects it,
// and the error text lists the registry's known names.
var ErrUnknownAlgorithm = sched.ErrUnknownAlgorithm

// Algorithm is a typed identifier for one registered scheduling
// algorithm. The zero value is invalid; obtain one from
// LookupAlgorithm, MustAlgorithm, Algorithms or AlgorithmsOf and pass
// it to NewJob or PatternJob.
type Algorithm struct {
	info *sched.Info
}

// Name returns the registry name, e.g. "PEX" or "allgather".
func (a Algorithm) Name() string {
	if a.info == nil {
		return ""
	}
	return a.info.Name
}

// Kind returns the algorithm's kind.
func (a Algorithm) Kind() Kind {
	if a.info == nil {
		return ""
	}
	return a.info.Kind
}

// Doc returns the one-line registry description, with the paper
// reference where one exists.
func (a Algorithm) Doc() string {
	if a.info == nil {
		return ""
	}
	return a.info.Doc
}

// String returns the registry name.
func (a Algorithm) String() string { return a.Name() }

// IsZero reports whether a is the invalid zero Algorithm.
func (a Algorithm) IsZero() bool { return a.info == nil }

// LookupAlgorithm resolves a name (case-insensitively) through the
// registry. A miss returns an error wrapping ErrUnknownAlgorithm that
// lists every known name.
func LookupAlgorithm(name string) (Algorithm, error) {
	inf, err := sched.Lookup(name)
	if err != nil {
		return Algorithm{}, err
	}
	return Algorithm{info: inf}, nil
}

// MustAlgorithm is LookupAlgorithm for names known at compile time; it
// panics on a miss.
func MustAlgorithm(name string) Algorithm {
	a, err := LookupAlgorithm(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Algorithms returns every registered algorithm in canonical order:
// the paper's exchange, broadcast and irregular families, the
// auxiliary algorithms (SHIFT, CRYSTAL, GSR), then the collectives.
func Algorithms() []Algorithm {
	infos := sched.Algorithms()
	out := make([]Algorithm, len(infos))
	for i, inf := range infos {
		out[i] = Algorithm{info: inf}
	}
	return out
}

// AlgorithmsOf returns the registered algorithms of one kind, in
// canonical order.
func AlgorithmsOf(kind Kind) []Algorithm {
	var out []Algorithm
	for _, a := range Algorithms() {
		if a.Kind() == kind {
			out = append(out, a)
		}
	}
	return out
}

// kindAlgorithm resolves a name for one of the deprecated
// family-specific wrappers: the name must be a non-auxiliary member of
// the kind, exactly as the old facade accepted.
func kindAlgorithm(name string, kind Kind) (Algorithm, error) {
	inf, err := sched.KindLookup(name, kind)
	if err != nil {
		return Algorithm{}, err
	}
	return Algorithm{info: inf}, nil
}
