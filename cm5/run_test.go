package cm5_test

import (
	"errors"
	"strings"
	"testing"

	"repro/cm5"
)

func TestRegistryQueries(t *testing.T) {
	all := cm5.Algorithms()
	if len(all) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.IsZero() {
			t.Fatal("registry returned a zero Algorithm")
		}
		if a.Doc() == "" {
			t.Errorf("%s: empty doc string", a.Name())
		}
		if seen[a.Name()] {
			t.Errorf("%s: duplicate registry name", a.Name())
		}
		seen[a.Name()] = true
		got, err := cm5.LookupAlgorithm(a.Name())
		if err != nil {
			t.Errorf("LookupAlgorithm(%s): %v", a.Name(), err)
		}
		if got.Name() != a.Name() || got.Kind() != a.Kind() {
			t.Errorf("LookupAlgorithm(%s) round trip mismatch", a.Name())
		}
	}
	// Every kind is populated and AlgorithmsOf partitions the registry.
	total := 0
	for _, k := range []cm5.Kind{cm5.KindExchange, cm5.KindBroadcast, cm5.KindIrregular, cm5.KindCollective} {
		of := cm5.AlgorithmsOf(k)
		if len(of) == 0 {
			t.Errorf("no algorithms of kind %s", k)
		}
		for _, a := range of {
			if a.Kind() != k {
				t.Errorf("%s: kind %s in AlgorithmsOf(%s)", a.Name(), a.Kind(), k)
			}
		}
		total += len(of)
	}
	if total != len(all) {
		t.Errorf("kinds partition %d algorithms, registry has %d", total, len(all))
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"pex", "PEX", "Pex"} {
		a, err := cm5.LookupAlgorithm(name)
		if err != nil {
			t.Fatalf("LookupAlgorithm(%q): %v", name, err)
		}
		if a.Name() != "PEX" {
			t.Errorf("LookupAlgorithm(%q) = %s", name, a.Name())
		}
	}
	_, err := cm5.LookupAlgorithm("QEX")
	if !errors.Is(err, cm5.ErrUnknownAlgorithm) {
		t.Fatalf("want ErrUnknownAlgorithm, got %v", err)
	}
	if !strings.Contains(err.Error(), "PEX") || !strings.Contains(err.Error(), "allgather") {
		t.Errorf("miss should list known names, got: %v", err)
	}
}

func TestRunResultMetrics(t *testing.T) {
	res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("BEX"), 16, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if res.Steps != 15 || res.Messages != 16*15 || res.TotalBytes != int64(16*15*1024) {
		t.Errorf("schedule stats: steps=%d msgs=%d bytes=%d", res.Steps, res.Messages, res.TotalBytes)
	}
	if res.MaxFanIn != 1 {
		t.Errorf("BEX fan-in = %d, want 1", res.MaxFanIn)
	}
	if len(res.StepTimes) != res.Steps {
		t.Fatalf("StepTimes has %d entries, want %d", len(res.StepTimes), res.Steps)
	}
	prev := cm5.Duration(0)
	for i, at := range res.StepTimes {
		if at <= prev {
			t.Errorf("step %d completion %v not after previous %v", i, at, prev)
		}
		prev = at
	}
	if got := res.StepTimes[len(res.StepTimes)-1]; got > res.Elapsed {
		t.Errorf("last step done at %v, after makespan %v", got, res.Elapsed)
	}
	if len(res.LevelUtilization) == 0 {
		t.Error("no level utilization")
	}
	for level, u := range res.LevelUtilization {
		if u <= 0 || u > 1 {
			t.Errorf("level %d utilization %f out of (0,1]", level, u)
		}
	}
	if res.Flows != res.Messages {
		t.Errorf("synchronous schedule: flows %d != messages %d", res.Flows, res.Messages)
	}
	if res.WireBytes <= res.TotalBytes {
		t.Errorf("wire bytes %d should exceed user bytes %d (packetization)", res.WireBytes, res.TotalBytes)
	}
	if res.Trace != nil {
		t.Error("trace collected without WithTrace")
	}
	if res.Algorithm.Name() != "BEX" {
		t.Errorf("result algorithm %q", res.Algorithm.Name())
	}
}

func TestRunLEXFanIn(t *testing.T) {
	res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("LEX"), 16, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFanIn != 15 {
		t.Errorf("LEX fan-in = %d, want 15", res.MaxFanIn)
	}
}

func TestRunWithTrace(t *testing.T) {
	res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 16, 256, cm5.WithTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	if got := len(res.Trace.Events); got != res.Messages {
		t.Errorf("trace has %d events, schedule has %d messages", got, res.Messages)
	}
	// Observation must not change the simulation.
	plain, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 16, 256))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != res.Elapsed {
		t.Errorf("tracing changed the makespan: %v vs %v", res.Elapsed, plain.Elapsed)
	}
}

type countingObserver struct {
	started, finished int
	lastEnd           cm5.Duration
}

func (o *countingObserver) FlowStarted(f cm5.FlowInfo) { o.started++ }
func (o *countingObserver) FlowFinished(f cm5.FlowInfo) {
	o.finished++
	if f.End < f.Start {
		panic("flow finished before it started")
	}
	o.lastEnd = f.End
}

func TestRunWithObserver(t *testing.T) {
	obs := &countingObserver{}
	res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 16, 256, cm5.WithObserver(obs)))
	if err != nil {
		t.Fatal(err)
	}
	if obs.started != res.Messages || obs.finished != res.Messages {
		t.Errorf("observer saw %d/%d flows, schedule has %d messages",
			obs.started, obs.finished, res.Messages)
	}
	if obs.lastEnd > res.Elapsed {
		t.Errorf("last flow ended at %v, after makespan %v", obs.lastEnd, res.Elapsed)
	}
	// Observation must not change the simulation.
	plain, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 16, 256))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != res.Elapsed {
		t.Errorf("observing changed the makespan: %v vs %v", res.Elapsed, plain.Elapsed)
	}
}

func TestRunGSRSeeded(t *testing.T) {
	p := cm5.SyntheticPattern(16, 0.5, 256, 11)
	gsr := cm5.MustAlgorithm("GSR")
	a1, err := cm5.Run(cm5.PatternJob(gsr, p, cm5.WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cm5.Run(cm5.PatternJob(gsr, p, cm5.WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Elapsed != a2.Elapsed || a1.Steps != a2.Steps {
		t.Error("GSR not deterministic for a fixed seed")
	}
	// Some seed in a small scan must produce a different schedule.
	differs := false
	for seed := int64(2); seed < 12 && !differs; seed++ {
		b, err := cm5.Run(cm5.PatternJob(gsr, p, cm5.WithSeed(seed)))
		if err != nil {
			t.Fatal(err)
		}
		differs = b.Elapsed != a1.Elapsed || b.Steps != a1.Steps
	}
	if !differs {
		t.Error("GSR ignored its seed across 10 values")
	}
}

func TestRunProgramBacked(t *testing.T) {
	// REX: program-backed with a logical step count and no step times.
	rex, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("REX"), 16, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rex.Steps != 4 { // lg 16
		t.Errorf("REX steps = %d, want 4", rex.Steps)
	}
	if rex.StepTimes != nil {
		t.Error("REX should have no per-step times")
	}
	if rex.Messages != 16*4 {
		t.Errorf("REX messages = %d, want 64 combined trains", rex.Messages)
	}
	// Collectives run through the same path.
	red, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("reduce"), 16, 256))
	if err != nil {
		t.Fatal(err)
	}
	if red.Messages != 15 || red.Elapsed <= 0 {
		t.Errorf("reduce: %d messages in %v", red.Messages, red.Elapsed)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := cm5.Run(cm5.Job{}); err == nil {
		t.Error("empty job should error")
	}
	if _, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 15, 64)); err == nil {
		t.Error("non-power-of-two machine should error")
	}
	if _, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("GS"), 16, 64)); err == nil {
		t.Error("irregular algorithm without a pattern should error")
	}
	if _, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("REB"), 16, 64, cm5.WithRoot(16))); err == nil {
		t.Error("out-of-range root should error")
	}
	if _, err := cm5.Plan(cm5.NewJob(cm5.MustAlgorithm("SYS"), 16, 64)); err == nil {
		t.Error("Plan of a program-backed algorithm should error")
	}
}

func TestScheduleJobNamesAlgorithm(t *testing.T) {
	s, err := cm5.Plan(cm5.NewJob(cm5.MustAlgorithm("PEX"), 16, 128))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cm5.Run(cm5.ScheduleJob(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm.Name() != "PEX" {
		t.Errorf("ScheduleJob result algorithm %q, want PEX", res.Algorithm.Name())
	}
}
