package cm5

import "repro/internal/obs"

// MetricsRegistry collects counters, gauges and histograms from a run
// (and anything else instrumented with it — the serving layer shares
// one registry across requests). Render it with WritePrometheus or
// WriteJSON; both are deterministic (name-sorted). Attach one to a job
// with WithMetrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Timeline records a run's spans and instants in simulated nanoseconds:
// flow lifetimes, message rendezvous waits and wire transfers,
// scheduler steps and phases, fault events, AS re-plans. Encode renders
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
// Attach one with WithTimeline; it is returned in Result.Timeline.
type Timeline = obs.Timeline

// NewTimeline returns an empty timeline recorder — pass it to several
// jobs via WithTimeline to merge their events onto one trace.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// TimelineSpan is one closed interval of simulated time on a timeline.
type TimelineSpan = obs.Span

// TimelineInstant is one point event on a timeline.
type TimelineInstant = obs.Instant

// WithMetrics attaches a metrics registry to the run: engine event
// counters, data-network flow/solver counters and histograms, and
// scheduler step/phase counters accumulate into it. Registries are
// passive — attaching one never changes simulated timing or results —
// and shareable: point several jobs at one registry to aggregate.
func WithMetrics(r *MetricsRegistry) JobOption {
	return func(j *Job) { j.reg = r }
}

// WithTimeline records the run's sim-time timeline into tl (a fresh
// recorder when nil) and returns it in Result.Timeline. Sim time is
// deterministic, so the timeline — and its Encode bytes — are too.
func WithTimeline(tl *Timeline) JobOption {
	return func(j *Job) {
		if tl == nil {
			tl = obs.NewTimeline()
		}
		j.timeline = tl
	}
}

// With returns a copy of the job with the extra options applied — the
// hook for wrappers (the experiment runner, the serving layer) that
// receive a fully built Job and need to attach their own observability
// sinks before running it.
func (j Job) With(opts ...JobOption) Job {
	for _, opt := range opts {
		opt(&j)
	}
	return j
}
