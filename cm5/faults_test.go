package cm5_test

import (
	"errors"
	"strings"
	"testing"

	"repro/cm5"
)

func TestFaultProfilesListed(t *testing.T) {
	names := cm5.FaultProfiles()
	if len(names) != 5 || names[0] != "healthy" {
		t.Fatalf("FaultProfiles() = %v, want 5 names starting with healthy", names)
	}
	for _, name := range names {
		if cm5.FaultProfileDoc(name) == "" {
			t.Errorf("profile %q has no doc", name)
		}
	}
	if cm5.FaultProfileDoc("meteor") != "" {
		t.Error("unknown profile has a doc")
	}
}

func TestNewFaultPlanUnknown(t *testing.T) {
	tp, err := cm5.NewTopology("hypercube", 16)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cm5.NewFaultPlan("meteor", tp, 1)
	if !errors.Is(err, cm5.ErrUnknownFaultProfile) {
		t.Fatalf("err = %v, want ErrUnknownFaultProfile", err)
	}
	if !strings.Contains(err.Error(), "healthy") {
		t.Errorf("error %q does not list the known profiles", err)
	}
}

// TestWithFaultsHealthyIsIdentity: a job run under the healthy plan is
// identical to the same job run with no plan — the fault machinery is
// pay-for-what-you-inject.
func TestWithFaultsHealthyIsIdentity(t *testing.T) {
	run := func(opts ...cm5.JobOption) cm5.Result {
		t.Helper()
		gs, err := cm5.LookupAlgorithm("GS")
		if err != nil {
			t.Fatal(err)
		}
		p, err := cm5.WorkloadPattern("butterfly", 16, 256, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cm5.Run(cm5.PatternJob(gs, p, opts...))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tp, err := cm5.NewTopology("hypercube", 16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cm5.NewFaultPlan("healthy", tp, 16)
	if err != nil {
		t.Fatal(err)
	}
	bare := run(cm5.WithTopology(tp))
	tp2, _ := cm5.NewTopology("hypercube", 16)
	healthy := run(cm5.WithTopology(tp2), cm5.WithFaults(plan))
	if bare.Elapsed != healthy.Elapsed || bare.Steps != healthy.Steps ||
		bare.Flows != healthy.Flows || bare.WireBytes != healthy.WireBytes {
		t.Fatalf("healthy plan changed the run:\nbare    %+v\nhealthy %+v", bare, healthy)
	}
	if healthy.Faults != (cm5.FaultStats{}) {
		t.Fatalf("healthy run reports fault stats %+v", healthy.Faults)
	}
}

// TestWithFaultsReportsStats: a faulty run surfaces what the plan did
// through Result.Faults.
func TestWithFaultsReportsStats(t *testing.T) {
	gs, err := cm5.LookupAlgorithm("GS")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := cm5.NewTopology("hypercube", 16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cm5.NewFaultPlan("straggler", tp, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cm5.WorkloadPattern("butterfly", 16, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cm5.Run(cm5.PatternJob(gs, p, cm5.WithTopology(tp), cm5.WithFaults(plan)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Events != len(plan.Events) || res.Faults.Stragglers == 0 {
		t.Fatalf("Faults = %+v, want %d events applied with stragglers counted",
			res.Faults, len(plan.Events))
	}
}

// TestWithFaultsValidatesAgainstRunTopology: a plan built for one
// machine cannot silently attach to a different one.
func TestWithFaultsValidatesAgainstRunTopology(t *testing.T) {
	gs, err := cm5.LookupAlgorithm("GS")
	if err != nil {
		t.Fatal(err)
	}
	big, err := cm5.NewTopology("hypercube", 256)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cm5.NewFaultPlan("straggler", big, 256)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cm5.WorkloadPattern("butterfly", 16, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 16-node run, plan full of 256-node straggler ranks: must error.
	if _, err := cm5.Run(cm5.PatternJob(gs, p, cm5.WithFaults(plan))); err == nil {
		t.Fatal("mismatched fault plan accepted")
	}
}
