package cm5

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lsN8TimelineJob is the golden run: the LS scheduler over the
// canonical synthetic pattern at N=8. Small enough to eyeball in
// Perfetto, rich enough to exercise message waits, wire transfers,
// flows and step spans.
func lsN8TimelineJob(t *testing.T) Job {
	t.Helper()
	a, err := LookupAlgorithm("LS")
	if err != nil {
		t.Fatal(err)
	}
	return PatternJob(a, SyntheticPattern(8, 0.25, 64, 1), WithTimeline(nil))
}

// TestTimelineGolden pins the full Chrome trace-event encoding of the
// LS N=8 run byte-for-byte: sim time is deterministic, so the timeline
// is too. Regenerate testdata/timeline_ls_n8.golden.json from
// Result.Timeline.Encode() if the simulator's timing model changes
// deliberately.
func TestTimelineGolden(t *testing.T) {
	res, err := Run(lsN8TimelineJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("Run(WithTimeline) returned a nil Result.Timeline")
	}
	got := res.Timeline.Encode()

	want, err := os.ReadFile(filepath.Join("testdata", "timeline_ls_n8.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("timeline drifted from golden file (got %d bytes, want %d):\n%s",
			len(got), len(want), firstDiffLine(got, want))
	}

	spans, instants := res.Timeline.Len()
	if spans != 44 || instants != 0 {
		t.Fatalf("LS N=8 timeline recorded %d spans, %d instants; want 44, 0", spans, instants)
	}
}

// firstDiffLine locates the first differing line of two encodings for
// a readable failure message.
func firstDiffLine(got, want []byte) string {
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return "line " + string(rune('0'+i%10)) + ": got " + gl[i] + "\nwant " + wl[i]
		}
	}
	return "encodings differ only in length"
}

// TestTimelineDeterministic runs the same job twice and demands
// byte-identical encodings — the property the golden file relies on.
func TestTimelineDeterministic(t *testing.T) {
	enc := func() []byte {
		res, err := Run(lsN8TimelineJob(t))
		if err != nil {
			t.Fatal(err)
		}
		return res.Timeline.Encode()
	}
	if a, b := enc(), enc(); !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different timeline encodings")
	}
}

// TestTimelineFaultInstants checks that a fault plan shows up as
// instant events on the timeline.
func TestTimelineFaultInstants(t *testing.T) {
	tp, err := NewTopology("hypercube", 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewFaultPlan("link-down", tp, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := LookupAlgorithm("LS")
	if err != nil {
		t.Fatal(err)
	}
	job := PatternJob(a, SyntheticPattern(8, 0.25, 64, 1),
		WithTimeline(nil), WithFaults(plan), WithTopology(tp))
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var faults int
	for _, in := range res.Timeline.Instants() {
		if in.Cat == "fault" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("fault plan left no fault instants on the timeline")
	}
}

// TestMetricsExpositionDeterministic runs the same job against two
// fresh registries and demands identical Prometheus renderings: every
// sim-driven counter must land on the same values, and the exposition
// order is name-sorted. The one wall-clock series
// (net_maxmin_solve_seconds, real time spent in the solver) is
// excluded — it is the only metric allowed to vary between identical
// runs.
func TestMetricsExpositionDeterministic(t *testing.T) {
	render := func() string {
		reg := NewMetricsRegistry()
		a, err := LookupAlgorithm("LS")
		if err != nil {
			t.Fatal(err)
		}
		job := PatternJob(a, SyntheticPattern(8, 0.25, 64, 1), WithMetrics(reg))
		if _, err := Run(job); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		var kept []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, "net_maxmin_solve_seconds") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two identical runs rendered different expositions:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for _, series := range []string{
		"sim_events_fired_total",
		"net_flows_started_total",
		"net_flows_finished_total",
		"net_maxmin_solves_total",
		"sched_steps_total",
	} {
		if !strings.Contains(a, series+" ") {
			t.Errorf("exposition is missing %s:\n%s", series, a)
		}
	}
}

// TestMetricsPassive checks that attaching observability changes
// nothing about the simulated outcome: same makespan, steps, messages
// and wire bytes with and without a registry and timeline.
func TestMetricsPassive(t *testing.T) {
	a, err := LookupAlgorithm("LS")
	if err != nil {
		t.Fatal(err)
	}
	p := SyntheticPattern(8, 0.25, 64, 1)
	plain, err := Run(PatternJob(a, p))
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(PatternJob(a, p, WithMetrics(NewMetricsRegistry()), WithTimeline(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != observed.Elapsed || plain.Steps != observed.Steps ||
		plain.Messages != observed.Messages || plain.WireBytes != observed.WireBytes {
		t.Fatalf("observability changed the result: plain %+v, observed %+v", plain, observed)
	}
}
